package metaprobe

// Benchmark harness: one benchmark per paper table/figure (DESIGN.md's
// experiment index) plus the ablations and micro-benchmarks. Each
// figure benchmark regenerates the corresponding table and prints it
// once, so `go test -bench=.` reproduces the paper's evaluation
// artifacts end to end.
//
// Benchmarks run on a scaled-down testbed (see experiments.SmallConfig)
// so the full suite finishes in minutes; run cmd/experiments for the
// larger default configuration.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/estimate"
	"metaprobe/internal/experiments"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

// benchEnv is shared across figure benchmarks (setup trains a model
// and builds a golden standard; rebuilding it per benchmark would
// dominate every measurement).
var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error

	printOnce sync.Map
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvVal, benchEnvErr = experiments.Setup(experiments.SmallConfig())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// printTable prints an experiment table once per benchmark name.
func printTable(name string, tables ...*experiments.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	for _, t := range tables {
		fmt.Printf("\n%s\n", t)
	}
}

// BenchmarkFigure07SamplingGoodnessPerDB regenerates Figure 7: the
// chi-square goodness of sampled error distributions per database.
func BenchmarkFigure07SamplingGoodnessPerDB(b *testing.B) {
	cfg := experiments.SmallSamplingConfig()
	for i := 0; i < b.N; i++ {
		perDB, _, err := experiments.SamplingStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("F7", perDB)
	}
}

// BenchmarkFigure08SamplingGoodnessAvg regenerates Figure 8: average
// goodness over the 20 newsgroup databases.
func BenchmarkFigure08SamplingGoodnessAvg(b *testing.B) {
	cfg := experiments.SmallSamplingConfig()
	for i := 0; i < b.N; i++ {
		_, avg, err := experiments.SamplingStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("F8", avg)
	}
}

// BenchmarkFigure09QueryTypeEDs regenerates Figure 9: the per-type
// error distributions of one database.
func BenchmarkFigure09QueryTypeEDs(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Figure9(env, "OncoLink")
		if err != nil {
			b.Fatal(err)
		}
		printTable("F9", table)
	}
}

// BenchmarkFigure14DatabaseInventory regenerates Figure 14: the
// mediated-database table.
func BenchmarkFigure14DatabaseInventory(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		printTable("F14", experiments.Figure14(env))
	}
}

// BenchmarkFigure15RDVsBaseline regenerates Figure 15: RD-based
// selection vs. the term-independence baseline at k ∈ {1, 3}.
func BenchmarkFigure15RDVsBaseline(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Figure15(env, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		printTable("F15", table)
	}
}

// BenchmarkFigure16CorrectnessVsProbes regenerates Figure 16: average
// correctness after 0..p probes for the three panels.
func BenchmarkFigure16CorrectnessVsProbes(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Figure16(env, 6)
		if err != nil {
			b.Fatal(err)
		}
		printTable("F16", table)
	}
}

// BenchmarkFigure17ProbesVsThreshold regenerates Figure 17: average
// probes needed per user-required certainty level.
func BenchmarkFigure17ProbesVsThreshold(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Figure17(env, []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95})
		if err != nil {
			b.Fatal(err)
		}
		printTable("F17", table)
	}
}

// BenchmarkAblationProbePolicies regenerates ablation A1: greedy vs
// random vs by-estimate vs max-entropy probing.
func BenchmarkAblationProbePolicies(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationPolicies(env, 0.8, 1)
		if err != nil {
			b.Fatal(err)
		}
		printTable("A1", table)
	}
}

// BenchmarkAblationTypeThreshold regenerates ablation A2: the
// query-type split threshold θ.
func BenchmarkAblationTypeThreshold(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationTypeThreshold(env, []float64{10, 50, 100, 500}, 1)
		if err != nil {
			b.Fatal(err)
		}
		printTable("A2", table)
	}
}

// BenchmarkAblationEDBins regenerates ablation A3: histogram
// resolution and bin representative.
func BenchmarkAblationEDBins(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationEDBins(env, 1)
		if err != nil {
			b.Fatal(err)
		}
		printTable("A3", table)
	}
}

// BenchmarkAblationTrainingSize regenerates ablation A4: error-model
// quality vs training-set size.
func BenchmarkAblationTrainingSize(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationTrainingSize(env, []int{50, 100, 200, 300}, 1)
		if err != nil {
			b.Fatal(err)
		}
		printTable("A4", table)
	}
}

// BenchmarkAblationProbeCosts regenerates ablation A5: cost-aware vs
// cost-blind greedy probing under non-uniform probe costs.
func BenchmarkAblationProbeCosts(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationProbeCosts(env, 0.8, 1)
		if err != nil {
			b.Fatal(err)
		}
		printTable("A5", table)
	}
}

// BenchmarkExtensionBaselineComparison regenerates E-BASE: classical
// selectors (term-independence, CORI) against RD-based selection and
// fixed-budget APro.
func BenchmarkExtensionBaselineComparison(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.BaselineComparison(env, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		printTable("EBASE", table)
	}
}

// --- Micro-benchmarks: the hot paths behind the figures. ---

// BenchmarkEstimate measures one Eq. 1 estimate from a summary.
func BenchmarkEstimate(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0].String()
	sum := env.Summaries.Summaries[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Rel.Estimate(sum, q)
	}
}

// BenchmarkProbe measures one live probe (boolean-AND match count) on
// the largest database of the testbed.
func BenchmarkProbe(b *testing.B) {
	env := benchEnv(b)
	big := 0
	for i, s := range env.Summaries.Summaries {
		if s.Size > env.Summaries.Summaries[big].Size {
			big = i
		}
	}
	q := env.Test[0].String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Rel.Probe(env.Testbed.DB(big), q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionBest measures one best-set search (k=3, absolute
// metric) over 20 database RDs.
func BenchmarkSelectionBest(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := env.Selection(q, core.Absolute, 3)
		sel.Best()
	}
}

// BenchmarkGreedyProbeStep measures one greedy policy decision (the
// dominant cost of APro).
func BenchmarkGreedyProbeStep(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0]
	g := &core.Greedy{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := env.Selection(q, core.Absolute, 1)
		if _, err := g.Next(sel, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAProSelect measures one full adaptive-probing selection:
// build the per-query state (RD convolution) and run greedy APro to a
// 0.9 certainty, probes answered from a precomputed table so the
// number measures selection compute, not index lookups. This is the
// primary perf-regression gate (ns/op, B/op, allocs/op against the
// committed BENCH_seed.json).
func BenchmarkAProSelect(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0]
	actual := make([]float64, env.Testbed.Len())
	for i := range actual {
		v, err := env.Rel.Probe(env.Testbed.DB(i), q.String())
		if err != nil {
			b.Fatal(err)
		}
		actual[i] = v
	}
	probe := func(db int) (float64, error) { return actual[db], nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := env.Selection(q, core.Absolute, 3)
		if _, err := core.APro(sel, probe, &core.Greedy{}, 0.9, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAProSelectSteady measures the steady-state serving path:
// the per-query state is Reuse'd from a prebuilt template and APro
// writes into a reused Outcome, so after warm-up the whole selection —
// incremental E[Cor], greedy ranking, probe application — runs out of
// pooled scratch. CI gates this benchmark's allocs/op at ≤ 2 absolute
// (cmd/bench/compare.go), not just ratio-vs-baseline.
func BenchmarkAProSelectSteady(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0]
	actual := make([]float64, env.Testbed.Len())
	for i := range actual {
		v, err := env.Rel.Probe(env.Testbed.DB(i), q.String())
		if err != nil {
			b.Fatal(err)
		}
		actual[i] = v
	}
	probe := func(db int) (float64, error) { return actual[db], nil }
	template := env.Selection(q, core.Absolute, 3)
	sel := env.Selection(q, core.Absolute, 3)
	g := &core.Greedy{}
	var out core.Outcome
	for i := 0; i < 3; i++ { // warm-up: grow buffers, fill the pool
		sel.Reuse(template)
		if err := core.AProInto(sel, probe, g, 0.9, -1, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Reuse(template)
		if err := core.AProInto(sel, probe, g, 0.9, -1, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveProbe measures folding one observed (estimate,
// actual) pair back into the model's error distributions — the
// per-probe cost of online refinement.
func BenchmarkObserveProbe(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0]
	actual, err := env.Rel.Probe(env.Testbed.DB(0), q.String())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := i % env.Testbed.Len()
		if err := env.Model.ObserveProbe(db, q.String(), q.NumTerms(), actual); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRDConvolve measures deriving every database's relevancy
// distribution for a fresh query (estimate → classify → convolve the
// error distribution) — the rd_convolve stage in isolation.
func BenchmarkRDConvolve(b *testing.B) {
	env := benchEnv(b)
	q := env.Test[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sel := env.Model.NewSelection(q.String(), q.NumTerms(), core.Absolute, 3); sel == nil {
			b.Fatal("nil selection")
		}
	}
}

// BenchmarkNewSelection measures building the per-query state through
// a ModelVersion's precomputed RD table into a recycled shell — the
// table-lookup serving path that replaced per-query RD derivation.
// BenchmarkRDConvolve above is kept unchanged as the from-scratch
// comparator: the gap between the two is what precomputation buys.
func BenchmarkNewSelection(b *testing.B) {
	env := benchEnv(b)
	ver := core.NewModelVersion(env.Model, "bench", time.Now())
	qs := env.Test
	sel := &core.Selection{}
	for i := 0; i < 3; i++ {
		q := qs[i%len(qs)]
		ver.FillSelection(sel, q.String(), q.NumTerms(), core.Absolute, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if ver.FillSelection(sel, q.String(), q.NumTerms(), core.Absolute, 3) == nil {
			b.Fatal("nil selection")
		}
	}
}

// BenchmarkTrainPerDatabase measures learning one database's EDs from
// 300 training queries.
func BenchmarkTrainPerDatabase(b *testing.B) {
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(0.01)[:1], 5)
	if err != nil {
		b.Fatal(err)
	}
	sums, err := summary.BuildExact(tb)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		b.Fatal(err)
	}
	train, err := gen.Pool(stats.NewRNG(1), 150, 150)
	if err != nil {
		b.Fatal(err)
	}
	rel := estimate.NewDocFrequency()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(tb, sums, rel, train, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures indexing a 1 000-document database.
func BenchmarkIndexBuild(b *testing.B) {
	world := corpus.HealthWorld()
	spec := corpus.DatabaseSpec{
		Name: "bench", NumDocs: 1000, MeanDocLen: 25,
		TopicWeights:    map[string]float64{"oncology": 1},
		ConceptAffinity: 0.4,
	}
	docs, err := world.Generate(spec, stats.NewRNG(9))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hidden.BuildLocal("bench", docs)
	}
}

// BenchmarkExtensionCalibration regenerates E-CAL: certainty
// calibration of RD-based selection.
func BenchmarkExtensionCalibration(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.CalibrationStudy(env, 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ECAL", table)
	}
}

// BenchmarkExtensionDrift regenerates E-DRIFT: online refinement under
// content drift (each iteration builds its own environment — the study
// mutates a database).
func BenchmarkExtensionDrift(b *testing.B) {
	cfg := experiments.SmallConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.DriftStudy(cfg, "CNNHealthNews", 8, 400)
		if err != nil {
			b.Fatal(err)
		}
		printTable("EDRIFT", table)
	}
}

// BenchmarkExtensionFusion regenerates E-FUSE: result-fusion quality
// against the global top-N ground truth.
func BenchmarkExtensionFusion(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := experiments.FusionStudy(env, 3, 10)
		if err != nil {
			b.Fatal(err)
		}
		printTable("EFUSE", table)
	}
}

// BenchmarkExtensionSampledSummaries regenerates E-SAMP: the pipeline
// under query-based-sampled content summaries.
func BenchmarkExtensionSampledSummaries(b *testing.B) {
	cfg := experiments.SmallConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.SampledSummariesStudy(cfg, 60)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ESAMP", table)
	}
}
