package metaprobe

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"metaprobe/internal/hidden"
)

// delayDB adds a fixed latency to every search, so probe I/O time is
// deterministic enough to compare stage sums against the root span.
type delayDB struct {
	Database
	d time.Duration
}

func (d *delayDB) Search(query string, topK int) (hidden.Result, error) {
	time.Sleep(d.d)
	return d.Database.Search(query, topK)
}

// TestStageTotalsSumToSelectionSpan drives a traced selection with
// injected probe latency and checks the per-stage attribution: the
// root "selection" span carries one "stage" event per hot-path stage,
// every algorithmic stage is present, and the stage durations sum to
// approximately the root span's duration — nothing material is left
// unattributed, and nothing is double-counted.
func TestStageTotalsSumToSelectionSpan(t *testing.T) {
	reg := NewMetrics()
	tracer := NewSpanTracer(64)
	cfg := &Config{Metrics: reg, Spans: tracer}
	ms, queries := buildTestMetasearcherWith(t, cfg, func(i int, db Database) Database {
		return &delayDB{Database: db, d: 3 * time.Millisecond}
	})

	var res *SelectionResult
	var err error
	for _, q := range queries {
		res, err = ms.SelectWithCertaintyContext(context.Background(), q, 2, Partial, 0.999, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Probes > 0 {
			break
		}
	}
	if res == nil || res.Probes == 0 {
		t.Fatal("no query needed probing; cannot exercise the probe stage")
	}

	roots := tracer.Tree(res.TraceID)
	if len(roots) != 1 || roots[0].Span.Name != "selection" {
		t.Fatalf("want one selection root, got %v", roots)
	}
	root := roots[0].Span
	stages := map[string]float64{}
	for _, ev := range root.Events {
		if ev.Name != "stage" {
			continue
		}
		sec, perr := strconv.ParseFloat(ev.Attrs["seconds"], 64)
		if perr != nil {
			t.Fatalf("stage event with bad seconds %q", ev.Attrs["seconds"])
		}
		if _, aerr := strconv.ParseUint(ev.Attrs["allocs"], 10, 64); aerr != nil {
			t.Fatalf("stage event with bad allocs %q", ev.Attrs["allocs"])
		}
		stages[ev.Attrs["stage"]] = sec
	}
	for _, want := range []string{"rd_convolve", "ecor_dp", "rank", "probe"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("root span missing stage event %q (have %v)", want, stages)
		}
	}

	var sum float64
	for _, sec := range stages {
		sum += sec
	}
	rootSec := root.Duration().Seconds()
	if sum > rootSec*1.10 {
		t.Errorf("stage sum %.4fs exceeds root span %.4fs — double counting", sum, rootSec)
	}
	// With 3ms injected probe latency the probe stage dominates the
	// span, so the attributed fraction must be high; a large gap means
	// some stage boundary was dropped.
	if sum < rootSec*0.70 {
		t.Errorf("stage sum %.4fs attributes only %.0f%% of root span %.4fs",
			sum, 100*sum/rootSec, rootSec)
	}

	// Acceptance: the stage histograms appear in the /metrics
	// exposition for every algorithmic stage.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, stage := range []string{"rd_convolve", "ecor_dp", "rank", "probe"} {
		for _, fam := range []string{"mp_selection_stage_seconds", "mp_selection_stage_allocs"} {
			if !strings.Contains(expo, fam+`{stage="`+stage+`"`) {
				t.Errorf("exposition missing %s{stage=%q}", fam, stage)
			}
		}
	}
}

// TestStageAttributionDisabledByDefault: with no observability sink
// configured, no stage recorder is created and selections run with
// the observer nil — the zero-overhead path.
func TestStageAttributionDisabledByDefault(t *testing.T) {
	ms, queries := buildTestMetasearcher(t)
	if rec := ms.stageRecorder(); rec != nil {
		t.Fatal("stage recorder created with observability disabled")
	}
	sel, _, err := ms.selection(queries[0], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m := sel.BeginStage()
		sel.EndStage(m, "ecor_dp")
	}); allocs != 0 {
		t.Fatalf("disabled stage boundary allocates %v objects per op", allocs)
	}
	// The sequential path still works and reports no IDs.
	res, err := ms.SelectWithCertainty(queries[0], 2, Absolute, 0.9, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "" {
		t.Fatalf("disabled path minted selection ID %q", res.ID)
	}
}
