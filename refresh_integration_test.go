package metaprobe

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/leakcheck"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

// TestRefreshEndToEnd is the acceptance test for the closed drift
// loop: a database's collection grows ~10× (uniformly — the same topic
// profile at ten times the volume, so every query's match count scales
// while summaries and the error model go stale), the drift detector
// alerts, the background refresher re-probes the alerted (database,
// query type) keys within its budget, validates the retrained EDs on a
// holdout, and hot-swaps a successor model — all while concurrent
// selections keep running with zero failures (run under -race).
func TestRefreshEndToEnd(t *testing.T) {
	// The refresher spawns a background retraining goroutine per alert
	// burst; none may outlive the metasearcher's Close.
	leakcheck.Check(t)
	world := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.01)[:6]
	tb, err := hidden.BuildTestbed(world, specs, 23)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := ExactSummaries(dbs)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := gen.TrainTest(stats.NewRNG(4), 150, 150, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	// The refresher's probe-query source: a held-out workload-like pool,
	// disjoint from both training and the driving workload.
	pool, err := gen.Pool(stats.NewRNG(77), 600, 600)
	if err != nil {
		t.Fatal(err)
	}
	source := func(numTerms, n int) []string {
		var out []string
		for _, q := range pool {
			if q.NumTerms() == numTerms {
				out = append(out, q.String())
				if len(out) >= n {
					break
				}
			}
		}
		return out
	}

	var alertMu sync.Mutex
	alerted := make(map[string]bool) // "db|queryType"
	reg := NewMetrics()
	cfg := &Config{
		Metrics: reg,
		Drift:   &DriftConfig{WindowSize: 16, MinSamples: 16, Interval: 8},
		OnDrift: func(a DriftAlert) {
			alertMu.Lock()
			alerted[a.DB+"|"+a.QueryType] = true
			alertMu.Unlock()
		},
		Refresh: &RefreshConfig{
			ProbeBudget:  64,
			MinProbes:    12,
			HoldoutEvery: 4,
			// Short cooldown so a rolled-back attempt retries as the
			// detector re-alerts on the still-drifted key.
			Cooldown: 50 * time.Millisecond,
			Queries:  source,
		},
	}
	ms, err := New(dbs, sums, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	trainStrs := make([]string, len(train))
	for i, q := range train {
		trainStrs[i] = q.String()
	}
	if err := ms.Train(trainStrs); err != nil {
		t.Fatal(err)
	}
	if info := ms.ModelInfo(); info.Version != 1 || info.Source != "train" {
		t.Fatalf("post-train ModelInfo = %+v", info)
	}

	// Snapshot the trained model's ED pointers: with OnlineRefinement
	// off, any pointer that differs afterwards was replaced by a refresh
	// commit — and must belong to an alerted key.
	trained := ms.serving()
	origED := make(map[string]*core.ED)
	for i, dm := range trained.DBs {
		for key, ed := range dm.EDs {
			origED[tb.DB(i).Name()+"|"+key.String()] = ed
		}
	}

	// The drift: NeuroBase grows to ~10× its size with documents drawn
	// from its own spec — same topic profile, ten times the volume — so
	// every query's match count scales while the model serves stale.
	const driftDB = "NeuroBase"
	dbIdx := tb.IndexOf(driftDB)
	if dbIdx < 0 {
		t.Fatalf("testbed lost %s", driftDB)
	}
	local, ok := tb.DB(dbIdx).(*hidden.Local)
	if !ok {
		t.Fatalf("%s is not a local database", driftDB)
	}
	grown := specs[dbIdx]
	grown.Name = driftDB + "-x10"
	grown.NumDocs = local.Size() * 9
	newDocs, err := world.Generate(grown, stats.NewRNG(23).Fork(999))
	if err != nil {
		t.Fatal(err)
	}
	tok := textindex.DefaultTokenizer()
	for _, d := range newDocs {
		terms := make([]string, 0, len(d.Terms))
		for _, term := range d.Terms {
			terms = append(terms, tok.Tokenize(term)...)
		}
		local.Index().AddTerms(d.ID, terms)
		local.StoreText(d.ID, d.Text())
	}

	// Concurrent selections run throughout detection, retraining and the
	// version swaps; every one of them must succeed (the swap is a
	// pointer store, never a lock a selection can observe half-way).
	stop := make(chan struct{})
	var selWG sync.WaitGroup
	var selCount int64
	var selErr error
	var selErrOnce sync.Once
	for g := 0; g < 3; g++ {
		selWG.Add(1)
		go func(g int) {
			defer selWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := test[(g*31+i)%len(test)]
				if _, err := ms.SelectWithCertainty(q.String(), 2, Absolute, 0.9, -1); err != nil {
					selErrOnce.Do(func() { selErr = err })
					return
				}
				alertMu.Lock()
				selCount++
				alertMu.Unlock()
			}
		}(g)
	}

	// Drive the workload over the drifted corpus until a refresh
	// commits: probes fill the drift windows, alerts queue refreshes,
	// and rolled-back attempts retry after the cooldown.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && ms.RefreshStats().Refreshes == 0 {
		for _, q := range test {
			if _, err := ms.SelectWithCertainty(q.String(), 2, Absolute, 0.99, -1); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	selWG.Wait()
	if selErr != nil {
		t.Fatalf("a selection failed during the refresh window: %v", selErr)
	}
	if selCount == 0 {
		t.Fatal("the concurrent selectors never completed a selection")
	}

	st := ms.RefreshStats()
	if st.Refreshes == 0 {
		t.Fatalf("no refresh was accepted before the deadline: %+v", st)
	}
	if st.Queued == 0 {
		t.Fatal("refresher received no alerts")
	}
	tasks := st.Refreshes + st.Rollbacks + st.Aborted + st.Superseded
	if st.ProbesSpent > tasks*64 {
		t.Errorf("refresh tasks spent %d probes over %d tasks, budget 64 each", st.ProbesSpent, tasks)
	}
	if v := st.LastValidation; v == nil {
		t.Error("no validation recorded")
	} else if v.ProbesSpent > 64 {
		t.Errorf("last task spent %d probes, budget 64", v.ProbesSpent)
	}

	info := ms.ModelInfo()
	if info.Version != 1+st.Refreshes {
		t.Errorf("model version %d after %d accepted refreshes", info.Version, st.Refreshes)
	}
	if info.Source != "refresh" {
		t.Errorf("serving version source = %q, want refresh", info.Source)
	}
	if info.RefreshedAt[driftDB].IsZero() {
		t.Errorf("ModelInfo records no refresh for %s: %+v", driftDB, info.RefreshedAt)
	}

	// Only alerted keys were retrained: every ED pointer that changed
	// since training maps to a recorded drift alert, and at least one
	// did change (the committed refresh).
	alertMu.Lock()
	alertedCopy := make(map[string]bool, len(alerted))
	for k := range alerted {
		alertedCopy[k] = true
	}
	alertMu.Unlock()
	cur := ms.serving()
	changed := 0
	for i, dm := range cur.DBs {
		name := tb.DB(i).Name()
		for key, ed := range dm.EDs {
			id := name + "|" + key.String()
			if origED[id] == ed {
				continue
			}
			changed++
			// Undrifted databases may still be retrained — repeated KS
			// testing eventually raises a false-positive alert — but
			// nothing is ever retrained without an alert.
			if !alertedCopy[id] {
				t.Errorf("ED %s was replaced without a drift alert", id)
			}
		}
	}
	if changed == 0 {
		t.Error("an accepted refresh left every ED pointer unchanged")
	}
	// The trained snapshot itself was never mutated (copy-on-write).
	for key, ed := range trained.DBs[dbIdx].EDs {
		if origED[driftDB+"|"+key.String()] != ed {
			t.Errorf("refresh mutated the original model's ED %s", key)
		}
	}

	// The refresh outcome counters surface in the exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `mp_refresh_total{outcome="ok"}`) {
		t.Errorf("metrics output lacks mp_refresh_total{outcome=\"ok\"}:\n%s", grepLines(sb.String(), "mp_refresh"))
	}

	// Hot reload round-trip: persist the refreshed model and swap it
	// back in from disk without interrupting traffic.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := ms.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	if err := ms.ReloadModel(path); err != nil {
		t.Fatal(err)
	}
	info = ms.ModelInfo()
	if info.Source != "reload" {
		t.Errorf("post-reload source = %q", info.Source)
	}
	if _, err := ms.SelectWithCertainty(test[0].String(), 2, Absolute, 0.9, -1); err != nil {
		t.Fatalf("selection after hot reload: %v", err)
	}
}
