package metaprobe

import (
	"strings"
	"testing"
)

// buildObservedMetasearcher is buildTestMetasearcher with metrics and
// tracing switched on.
func buildObservedMetasearcher(t testing.TB) (*Metasearcher, []string, *Metrics, *RingTracer) {
	t.Helper()
	ms, queries := buildTestMetasearcher(t)
	reg := NewMetrics()
	tracer := NewRingTracer(32)
	ms.cfg.Metrics = reg
	ms.cfg.Tracer = tracer
	return ms, queries, reg, tracer
}

func TestSelectionMetricsRecorded(t *testing.T) {
	ms, queries, reg, _ := buildObservedMetasearcher(t)
	for _, q := range queries[:8] {
		if _, err := ms.SelectWithCertainty(q, 2, Absolute, 0.9, -1); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE metaprobe_select_latency_seconds summary",
		`metaprobe_select_latency_seconds{quantile="0.5"}`,
		"metaprobe_select_latency_seconds_count 8",
		"# TYPE metaprobe_selections_total counter",
		"# TYPE metaprobe_selection_certainty summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// All 8 selections are accounted for across the reached label.
	var total int64
	for _, reached := range []string{"true", "false"} {
		total += reg.Counter("metaprobe_selections_total", map[string]string{"reached": reached}).Value()
	}
	if total != 8 {
		t.Errorf("selections_total = %d, want 8", total)
	}
}

func TestSelectionTracesEmitted(t *testing.T) {
	ms, queries, _, tracer := buildObservedMetasearcher(t)
	res, err := ms.SelectWithCertainty(queries[0], 2, Partial, 0.95, -1)
	if err != nil {
		t.Fatal(err)
	}
	traces := tracer.Last(0)
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Query != queries[0] || tr.K != 2 || tr.Metric != "partial" || tr.Threshold != 0.95 {
		t.Errorf("trace header = %+v", tr)
	}
	if len(tr.Databases) != len(ms.Databases()) || len(tr.Estimates) != len(tr.Databases) {
		t.Errorf("trace estimates misaligned: %d dbs, %d estimates", len(tr.Databases), len(tr.Estimates))
	}
	if len(tr.Selected) != len(res.Databases) {
		t.Errorf("trace selected %v, result %v", tr.Selected, res.Databases)
	}
	if tr.Certainty != res.Certainty || tr.Reached != res.Reached {
		t.Errorf("trace certainty/reached mismatch: %+v vs %+v", tr, res)
	}
	if len(tr.Probes) != res.Probes {
		// Probes in the result counts successful ones only; the trace
		// has every step. The trace can only have more.
		if len(tr.Probes) < res.Probes {
			t.Errorf("trace has %d probe steps, result reports %d", len(tr.Probes), res.Probes)
		}
	}
	for i, p := range tr.Probes {
		if p.DB == "" {
			t.Errorf("probe %d has no database name", i)
		}
		if p.CertaintyAfter < 0 || p.CertaintyAfter > 1 {
			t.Errorf("probe %d certainty-after %v outside [0,1]", i, p.CertaintyAfter)
		}
	}
	// The trajectory starts at the RD-based certainty and ends at the
	// final one.
	if len(tr.Probes) > 0 {
		last := tr.Probes[len(tr.Probes)-1]
		if last.CertaintyAfter != tr.Certainty {
			t.Errorf("trajectory end %v ≠ final certainty %v", last.CertaintyAfter, tr.Certainty)
		}
	} else if tr.InitialCertainty != tr.Certainty {
		t.Errorf("no probes but initial %v ≠ final %v", tr.InitialCertainty, tr.Certainty)
	}
}

func TestPlainSelectTraced(t *testing.T) {
	ms, queries, reg, tracer := buildObservedMetasearcher(t)
	if _, _, err := ms.Select(queries[0], 1, Absolute); err != nil {
		t.Fatal(err)
	}
	traces := tracer.Last(0)
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(traces))
	}
	if tr := traces[0]; tr.Threshold != 0 || len(tr.Probes) != 0 || tr.InitialCertainty != tr.Certainty {
		t.Errorf("plain Select trace = %+v", tr)
	}
	if got := reg.Histogram("metaprobe_select_latency_seconds", nil).Count(); got != 1 {
		t.Errorf("latency observations = %d, want 1", got)
	}
}

func TestNilObservabilityUnaffected(t *testing.T) {
	// The default config must behave exactly as before: no metrics, no
	// traces, identical results.
	ms, queries := buildTestMetasearcher(t)
	res, err := ms.SelectWithCertainty(queries[0], 2, Absolute, 0.9, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Databases) != 2 {
		t.Errorf("selected %v", res.Databases)
	}
}

func TestMetasearchEmitsTrace(t *testing.T) {
	ms, queries, _, tracer := buildObservedMetasearcher(t)
	if _, _, err := ms.Metasearch(queries[0], 2, Partial, 0.9, 5); err != nil {
		t.Fatal(err)
	}
	if n := len(tracer.Last(0)); n != 1 {
		t.Errorf("Metasearch recorded %d traces, want 1", n)
	}
}
