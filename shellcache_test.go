package metaprobe

import (
	"testing"
)

// TestShellCacheRecycling pins the selection-shell cache's ownership
// rules: a shell handed out by selection() is never handed out again
// until it is recycled, and recycled shells are reused for later
// queries instead of allocating fresh selections.
func TestShellCacheRecycling(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	s1, v1, err := ms.selection(test[0], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != ms.version.Load() {
		t.Fatal("selection filled from a non-serving version")
	}
	s2, v2, err := ms.selection(test[1], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("two live selections share one shell")
	}
	ms.recycleSelection(v1, s1)
	ms.recycleSelection(v2, s2)
	s3, v3, err := ms.selection(test[2], Absolute, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 && s3 != s2 {
		t.Fatal("recycled shell not reused")
	}
	s4, v4, err := ms.selection(test[3], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s4 == s3 {
		t.Fatal("held shell handed out twice")
	}
	ms.recycleSelection(v3, s3)
	ms.recycleSelection(v4, s4)
}

// TestShellCacheInvalidatedOnSwap checks that publishing a new model
// version drops cached shells: a shell filled (and recycled) under the
// old version must not be served again after the swap, since it would
// pin the old version's RD tables and could alias released state.
func TestShellCacheInvalidatedOnSwap(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	held, v0, err := ms.selection(test[0], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	cached, v1, err := ms.selection(test[1], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms.recycleSelection(v1, cached)

	ms.modelMu.Lock()
	ms.publish(ms.serving().Clone(), "reload", "")
	ms.modelMu.Unlock()
	// A shell still held across the swap recycles without harm; the
	// cache must refuse it (stale version) rather than serve it later.
	ms.recycleSelection(v0, held)

	after, v2, err := ms.selection(test[0], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2 == v0 {
		t.Fatal("publish did not advance the serving version")
	}
	if after == cached || after == held {
		t.Fatal("stale shell served across a version swap")
	}
	ms.recycleSelection(v2, after)
	again, v3, err := ms.selection(test[1], Absolute, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != after {
		t.Fatal("new-version shell not recycled")
	}
	ms.recycleSelection(v3, again)
}

// TestSelectionSteadyStateAllocs guards the template-reuse serving
// path: once shells are warm, one selection() → Best → recycle cycle
// must allocate nothing beyond the relevancy estimator's one-per-query
// tokenization (measured as the baseline below, not hard-coded).
func TestSelectionSteadyStateAllocs(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	qs := test[:4]
	for _, q := range qs {
		sel, ver, err := ms.selection(q, Absolute, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sel.BestView()
		ms.recycleSelection(ver, sel)
	}
	var qi int
	baseline := testing.AllocsPerRun(200, func() {
		q := qs[qi%len(qs)]
		qi++
		for i := range ms.sums.Summaries {
			ms.rel.Estimate(ms.sums.Summaries[i], q)
		}
	})
	qi = 0
	cycle := testing.AllocsPerRun(200, func() {
		q := qs[qi%len(qs)]
		qi++
		sel, ver, err := ms.selection(q, Absolute, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sel.BestView()
		ms.recycleSelection(ver, sel)
	})
	if cycle > baseline {
		t.Fatalf("steady-state selection cycle allocates %v objects per op, want at most the estimator's %v", cycle, baseline)
	}
}
