package metaprobe

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaprobe/internal/hidden"
)

// toggleFail wraps a database with a switchable outage: while down,
// every search fails with ErrUnavailable (and is counted).
type toggleFail struct {
	Database
	down      atomic.Bool
	downCalls atomic.Int64
}

func (f *toggleFail) Search(query string, topK int) (hidden.Result, error) {
	if f.down.Load() {
		f.downCalls.Add(1)
		return hidden.Result{}, fmt.Errorf("%w: %s is down", hidden.ErrUnavailable, f.Name())
	}
	return f.Database.Search(query, topK)
}

// TestSelectContextMatchesSequential: with default configuration
// (Speculation ≤ 1) and healthy backends, the context path must return
// exactly what the sequential paper algorithm returns — same set, same
// certainty, same probe count.
func TestSelectContextMatchesSequential(t *testing.T) {
	ms, testQueries := buildTestMetasearcher(t)
	for _, q := range testQueries[:12] {
		seq, err := ms.SelectWithCertainty(q, 2, Absolute, 0.9, -1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ms.SelectWithCertaintyContext(context.Background(), q, 2, Absolute, 0.9, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || len(res.ExcludedDBs) != 0 {
			t.Fatalf("%q: healthy run degraded: %+v", q, res)
		}
		if fmt.Sprintf("%v", res.Databases) != fmt.Sprintf("%v", seq.Databases) {
			t.Errorf("%q: context set %v != sequential %v", q, res.Databases, seq.Databases)
		}
		if res.Certainty != seq.Certainty || res.Probes != seq.Probes || res.Reached != seq.Reached {
			t.Errorf("%q: context (cert=%v probes=%d reached=%v) != sequential (cert=%v probes=%d reached=%v)",
				q, res.Certainty, res.Probes, res.Reached, seq.Certainty, seq.Probes, seq.Reached)
		}
	}
}

// TestConcurrentSelectionsRace drives a shared Metasearcher — with
// metrics, tracing, drift detection, online refinement and speculative
// probing all enabled — from many goroutines mixing the sequential and
// context paths. Run under -race (CI does), this is the concurrency-
// safety proof for the probe-feedback path.
func TestConcurrentSelectionsRace(t *testing.T) {
	reg := NewMetrics()
	tracer := NewRingTracer(64)
	cfg := &Config{
		Metrics:          reg,
		Tracer:           tracer,
		Drift:            &DriftConfig{},
		OnlineRefinement: true,
		Speculation:      2,
		ProbeConcurrency: ProbeLimits{Global: 8, PerBackend: 2},
	}
	ms, testQueries := buildTestMetasearcherWith(t, cfg, nil)
	cal := NewCalibration(10)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for qi := 0; qi < 8; qi++ {
				q := testQueries[(g*8+qi)%len(testQueries)]
				var res *SelectionResult
				var err error
				if qi%2 == 0 {
					res, err = ms.SelectWithCertainty(q, 2, Absolute, 0.9, -1)
				} else {
					res, err = ms.SelectWithCertaintyContext(context.Background(), q, 2, Absolute, 0.9, -1)
				}
				if err != nil {
					errs <- err
					return
				}
				if qi == 3 {
					if _, err := ms.Audit(cal, q, Absolute, res.Databases, res.Certainty); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tracer.Total() == 0 {
		t.Error("no selection traces recorded")
	}
	if cal.Snapshot().Samples == 0 {
		t.Error("no calibration observations recorded")
	}
}

// TestSelectContextDegradesOnDeadBackend takes one backend down after
// training: context selections must keep answering (Degraded, the dead
// backend excluded), and once its circuit breaker opens the dead
// backend must stop being contacted at all.
func TestSelectContextDegradesOnDeadBackend(t *testing.T) {
	var failers []*toggleFail
	cfg := &Config{Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}}
	ms, testQueries := buildTestMetasearcherWith(t, cfg, func(i int, db Database) Database {
		f := &toggleFail{Database: db}
		failers = append(failers, f)
		return f
	})
	dead := failers[0]
	dead.down.Store(true)

	degraded := 0
	for _, q := range testQueries {
		res, err := ms.SelectWithCertaintyContext(context.Background(), q, 2, Absolute, 0.99, -1)
		if err != nil {
			t.Fatalf("%q: degraded selection must not error: %v", q, err)
		}
		if len(res.Databases) != 2 {
			t.Fatalf("%q: returned %d databases, want 2", q, len(res.Databases))
		}
		if !res.Degraded {
			continue
		}
		degraded++
		found := false
		for _, name := range res.ExcludedDBs {
			if name == dead.Name() {
				found = true
			}
		}
		if !found {
			t.Fatalf("%q: degraded without excluding %s: %+v", q, dead.Name(), res)
		}
	}
	if degraded == 0 {
		t.Fatal("no selection ever touched the dead backend")
	}
	// FailureThreshold=2 with a long cooldown: the dead backend may be
	// contacted at most twice before the breaker eats every further
	// probe without a network attempt.
	if calls := dead.downCalls.Load(); calls > 2 {
		t.Errorf("dead backend contacted %d times; breaker should cap at 2", calls)
	}
}
