package metaprobe_test

import (
	"fmt"

	"metaprobe"
)

// Example demonstrates the three selection tiers on a miniature
// metasearcher. The oncology archive is the right answer for the
// query, and the probabilistic model knows it with certainty 1 because
// the other databases cannot match both terms.
func Example() {
	onco := metaprobe.NewLocalDatabase("onco", map[string]string{
		"o1": "breast cancer screening guidelines",
		"o2": "breast cancer treatment outcomes",
		"o3": "lung cancer staging",
	})
	news := metaprobe.NewLocalDatabase("news", map[string]string{
		"n1": "local election coverage",
		"n2": "weather report for tuesday",
	})
	dbs := []metaprobe.Database{onco, news}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		fmt.Println(err)
		return
	}
	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := ms.Train([]string{
		"breast cancer", "cancer treatment", "cancer screening",
		"election coverage", "weather report", "lung cancer",
	}); err != nil {
		fmt.Println(err)
		return
	}

	fmt.Println("baseline:", ms.SelectBaseline("breast cancer", 1))
	set, certainty, err := ms.Select("breast cancer", 1, metaprobe.Absolute)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("RD-based: %v with certainty %.2f\n", set, certainty)
	// Output:
	// baseline: [onco]
	// RD-based: [onco] with certainty 1.00
}
