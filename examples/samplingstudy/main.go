// Command samplingstudy reruns the paper's Section 4.2 experiment
// (Figures 7 and 8): how many sample queries does an error
// distribution need before it reliably predicts the errors of future
// queries? It builds 20 newsgroup-like databases, derives the ideal ED
// of each from a large query pool, and chi-square-tests sampled EDs of
// increasing size against it.
//
// Usage:
//
//	go run ./examples/samplingstudy [-scale 0.1] [-pool 6000] [-reps 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"metaprobe/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.1, "newsgroup collection size multiplier")
	pool := flag.Int("pool", 6000, "size of the 2-term query pool")
	reps := flag.Int("reps", 5, "repetitions per sampling size")
	flag.Parse()

	cfg := experiments.DefaultSamplingConfig()
	cfg.Scale = *scale
	cfg.PoolSize = *pool
	cfg.Reps = *reps
	cfg.Sizes = []int{100, 200, 500, 1000, 2000}
	cfg.ShowDBs = 5
	// The paper's threshold of 100 assumed full-size collections; keep
	// the same relative split point on a scaled testbed.
	cfg.Threshold = 100 * *scale
	if cfg.Threshold < 3 {
		cfg.Threshold = 3
	}

	fmt.Println("running the sampling-size study (this builds 20 databases and")
	fmt.Printf("issues %d pool queries to each)...\n\n", *pool)
	perDB, avg, err := experiments.SamplingStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(perDB)
	fmt.Println(avg)
	fmt.Println("reading the tables: values are chi-square p-values (goodness);")
	fmt.Println("anything above 0.05 means the sampled ED is statistically")
	fmt.Println("indistinguishable from the ideal one — the paper's conclusion is")
	fmt.Println("that 100-200 sample queries per type already suffice.")
}
