// Command quickstart is the smallest end-to-end use of metaprobe's
// public API: three tiny hand-written databases, a handful of training
// queries, then database selection with and without adaptive probing.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"metaprobe"
)

func main() {
	// Three "Hidden-Web databases": an oncology archive, a cardiology
	// archive, and a general health news site. In real use these would
	// be metaprobe.NewHTTPDatabase clients pointed at remote search
	// forms; here they are in-process collections.
	onco := metaprobe.NewLocalDatabase("OncoArchive", map[string]string{
		"o1": "breast cancer screening guidelines for early detection",
		"o2": "breast cancer chemotherapy and radiation therapy outcomes",
		"o3": "lung cancer biopsy procedures and staging",
		"o4": "skin cancer melanoma risk factors",
		"o5": "breast cancer survivor support programs",
		"o6": "prostate cancer screening controversy",
	})
	cardio := metaprobe.NewLocalDatabase("HeartJournal", map[string]string{
		"c1": "heart attack symptoms and emergency response",
		"c2": "blood pressure medication and hypertension control",
		"c3": "coronary artery bypass surgery recovery",
		"c4": "heart disease prevention through diet",
		"c5": "cardiac arrest survival statistics",
	})
	news := metaprobe.NewLocalDatabase("HealthDaily", map[string]string{
		"n1": "new study links diet to heart disease risk",
		"n2": "breast cancer awareness month events announced",
		"n3": "hospital funding debate continues",
		"n4": "flu vaccine available at local clinics",
	})
	dbs := []metaprobe.Database{onco, cardio, news}

	// The metasearcher keeps a content summary of each database. These
	// databases cooperate, so summaries are exact; remote sources
	// would use metaprobe.SampleSummaries.
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Learn each database's estimation-error behaviour from a small
	// training workload (in production: your query log).
	training := []string{
		"breast cancer", "cancer screening", "heart attack",
		"blood pressure", "heart disease", "cancer therapy",
		"diet disease", "cancer awareness", "surgery recovery",
		"cancer staging", "emergency response", "disease prevention",
	}
	if err := ms.Train(training); err != nil {
		log.Fatal(err)
	}

	query := "breast cancer"
	fmt.Printf("query: %q\n\n", query)

	// Tier 1: the classic estimator baseline.
	fmt.Println("baseline (term-independence estimator):",
		ms.SelectBaseline(query, 1))

	// Tier 2: probabilistic selection, no probing.
	set, certainty, err := ms.Select(query, 1, metaprobe.Absolute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RD-based selection: %v (certainty %.2f)\n", set, certainty)

	// Tier 3: adaptive probing until 95% certainty.
	res, err := ms.SelectWithCertainty(query, 1, metaprobe.Absolute, 0.95, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("APro selection: %v (certainty %.2f after %d probes)\n\n",
		res.Databases, res.Certainty, res.Probes)

	// Full metasearch: select, forward, fuse.
	items, sel, err := ms.Metasearch(query, 2, metaprobe.Partial, 0.8, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metasearch over %v:\n", sel.Databases)
	for i, it := range items {
		fmt.Printf("  %d. [%s] %s (score %.3f)\n", i+1, it.Database, it.Doc.ID, it.Score)
	}
}
