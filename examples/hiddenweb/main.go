// Command hiddenweb demonstrates the fully remote path: it launches
// HTTP servers that behave like real Hidden-Web search sites (HTML
// answer pages stating "Results 1 - 10 of about N documents"), then
// drives a metasearcher that only ever talks to them over the network —
// scraping answer pages, sampling content summaries through the search
// interface, learning error distributions, and probing adaptively.
//
// Run it with:
//
//	go run ./examples/hiddenweb
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

func main() {
	// Generate four topical collections and put each behind its own
	// HTTP search interface on a loopback port.
	world := corpus.HealthWorld()
	specs := []corpus.DatabaseSpec{
		{Name: "OncoSite", NumDocs: 800, MeanDocLen: 25, ConceptAffinity: 0.5,
			TopicWeights: map[string]float64{"oncology": 8, "pharma": 1}},
		{Name: "CardioSite", NumDocs: 700, MeanDocLen: 25, ConceptAffinity: 0.45,
			TopicWeights: map[string]float64{"cardiology": 8, "nutrition": 1}},
		{Name: "PediSite", NumDocs: 500, MeanDocLen: 25, ConceptAffinity: 0.35,
			TopicWeights: map[string]float64{"pediatrics": 8, "infectious": 2}},
		{Name: "NewsSite", NumDocs: 400, MeanDocLen: 25, ConceptAffinity: 0.15,
			TopicWeights: map[string]float64{"news": 6, "oncology": 1, "cardiology": 1}},
	}
	rng := stats.NewRNG(7)
	var dbs []metaprobe.Database
	for i, spec := range specs {
		docs, err := world.Generate(spec, rng.Fork(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		local := hidden.BuildLocal(spec.Name, docs)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: hidden.NewServer(local)}
		go srv.Serve(ln)
		defer srv.Close()
		url := "http://" + ln.Addr().String()
		fmt.Printf("serving %-10s at %s (%d docs)\n", spec.Name, url, local.Size())

		// The metasearcher side: an HTML-scraping client, exactly how
		// the paper's metasearcher reads real answer pages.
		dbs = append(dbs, metaprobe.NewHTTPDatabase(spec.Name, url, true))
	}

	// The remote databases do not export statistics: build content
	// summaries by query-based sampling through the search interface.
	fmt.Println("\nsampling content summaries through the search interfaces...")
	sums, err := metaprobe.SampleSummaries(dbs,
		[]string{"cancer", "heart", "child", "health", "report"}, 60, 11)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range sums {
		fmt.Printf("  %-10s: sampled %d docs, %d distinct terms, size estimate %d\n",
			s.Database, s.DocCount, len(s.DF), s.Size)
		_ = i
	}

	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntraining the error model over the wire...")
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := gen.Pool(stats.NewRNG(3), 120, 120)
	if err != nil {
		log.Fatal(err)
	}
	train := make([]string, len(pool))
	for i, q := range pool {
		train[i] = q.String()
	}
	if err := ms.Train(train); err != nil {
		log.Fatal(err)
	}

	for _, query := range []string{"breast cancer", "heart attack", "child asthma"} {
		res, err := ms.SelectWithCertainty(query, 1, metaprobe.Absolute, 0.9, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-14q → %v (certainty %.2f, %d live probes)\n",
			query, res.Databases, res.Certainty, res.Probes)
		items, _, err := ms.Metasearch(query, 2, metaprobe.Partial, 0.8, 3)
		if err != nil {
			log.Fatal(err)
		}
		for i, it := range items {
			fmt.Printf("  %d. [%s] %s\n", i+1, it.Database, it.Doc.ID)
		}
	}
}
