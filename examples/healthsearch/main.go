// Command healthsearch recreates the paper's evaluation scenario as an
// interactive tool: a metasearcher mediating 20 health-related
// databases (Figure 14), trained on a synthetic query log, answering
// ad-hoc queries with all three selection tiers side by side.
//
// Usage:
//
//	go run ./examples/healthsearch [-k 3] [-t 0.9] [-scale 0.02] [query terms...]
//
// Without query arguments it runs a demonstration batch.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

func main() {
	k := flag.Int("k", 3, "number of databases to select")
	t := flag.Float64("t", 0.9, "user-required certainty level")
	scale := flag.Float64("scale", 0.02, "testbed size multiplier")
	seed := flag.Int64("seed", 2004, "random seed")
	train := flag.Int("train", 400, "training queries per term-count")
	flag.Parse()

	fmt.Printf("building the 20-database health testbed (scale %g)...\n", *scale)
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(*scale), *seed)
	if err != nil {
		log.Fatal(err)
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training the error model on %d queries...\n", 2**train)
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := gen.Pool(stats.NewRNG(*seed).Fork(1), *train, *train)
	if err != nil {
		log.Fatal(err)
	}
	trainStrs := make([]string, len(pool))
	for i, q := range pool {
		trainStrs[i] = q.String()
	}
	if err := ms.Train(trainStrs); err != nil {
		log.Fatal(err)
	}

	var batch []string
	if flag.NArg() > 0 {
		batch = []string{strings.Join(flag.Args(), " ")}
	} else {
		batch = []string{
			"breast cancer", "heart attack", "blood pressure",
			"clinical trial", "weight loss", "bone marrow transplant",
		}
	}
	for _, query := range batch {
		answer(ms, query, *k, *t)
	}
}

// answer prints the three selection tiers for one query.
func answer(ms *metaprobe.Metasearcher, query string, k int, t float64) {
	fmt.Printf("\n=== %q (k=%d, t=%.2f) ===\n", query, k, t)
	fmt.Printf("  baseline:  %v\n", ms.SelectBaseline(query, k))

	set, certainty, err := ms.Select(query, k, metaprobe.Absolute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RD-based:  %v (certainty %.3f)\n", set, certainty)

	res, err := ms.SelectWithCertainty(query, k, metaprobe.Absolute, t, -1)
	if err != nil {
		log.Fatal(err)
	}
	status := "reached"
	if !res.Reached {
		status = "NOT reached"
	}
	fmt.Printf("  APro:      %v (certainty %.3f, %d probes, %s)\n",
		res.Databases, res.Certainty, res.Probes, status)

	items, _, err := ms.Metasearch(query, k, metaprobe.Partial, t, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  top fused results:")
	for i, it := range items {
		fmt.Printf("    %d. [%s] %s (%.3f)\n", i+1, it.Database, it.Doc.ID, it.Score)
	}
}
