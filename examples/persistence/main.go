// Command persistence demonstrates the train-once / reload workflow
// and online refinement: a metasearcher is trained and saved to disk,
// a second process-like instance reloads it without re-training, and
// live probes keep refining the error model during operation.
//
// Run it with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

func main() {
	dir, err := os.MkdirTemp("", "metaprobe-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.json")

	// --- Session 1: build, train, save. ---
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(0.01), 2004)
	if err != nil {
		log.Fatal(err)
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := gen.Pool(stats.NewRNG(1), 200, 200)
	if err != nil {
		log.Fatal(err)
	}
	train := make([]string, len(pool))
	for i, q := range pool {
		train[i] = q.String()
	}
	fmt.Printf("session 1: training on %d queries and saving the model...\n", len(train))
	if err := ms.Train(train); err != nil {
		log.Fatal(err)
	}
	if err := ms.SaveModel(modelPath); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(modelPath)
	fmt.Printf("session 1: model saved (%d KiB)\n\n", info.Size()/1024)

	// --- Session 2: reload without training, refine online. ---
	fmt.Println("session 2: reloading the model (no training)...")
	ms2, err := metaprobe.NewFromModel(dbs, modelPath, &metaprobe.Config{
		OnlineRefinement: true, // every live probe refines the EDs
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, query := range []string{"breast cancer", "blood pressure", "weight loss"} {
		res, err := ms2.SelectWithCertainty(query, 2, metaprobe.Absolute, 0.9, -1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16q → %v (certainty %.2f, %d probes fed back into the model)\n",
			query, res.Databases, res.Certainty, res.Probes)
	}
	fmt.Println("\nthe probes above doubled as training observations: the reloaded")
	fmt.Println("model keeps learning while it serves (Section 8's future work).")
}
