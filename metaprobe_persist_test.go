package metaprobe

import (
	"path/filepath"
	"testing"
)

func TestFacadeSaveAndReloadModel(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := ms.SaveModel(path); err != nil {
		t.Fatal(err)
	}

	// Rebuild the metasearcher from the file (no re-training).
	dbs := make([]Database, ms.tb.Len())
	for i := range dbs {
		dbs[i] = ms.tb.DB(i)
	}
	loaded, err := NewFromModel(dbs, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Trained() {
		t.Fatal("loaded metasearcher is not trained")
	}
	// Same selections as the original on a sample of queries.
	for _, q := range test[:20] {
		a, ea, err := ms.Select(q, 2, Absolute)
		if err != nil {
			t.Fatal(err)
		}
		b, eb, err := loaded.Select(q, 2, Absolute)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] || ea != eb {
			t.Fatalf("selection diverged for %q: %v@%v vs %v@%v", q, a, ea, b, eb)
		}
	}

	// Mismatched databases are rejected.
	if _, err := NewFromModel(dbs[:3], path, nil); err == nil {
		t.Error("database-count mismatch must fail")
	}
	swapped := append([]Database(nil), dbs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := NewFromModel(swapped, path, nil); err == nil {
		t.Error("database-name mismatch must fail")
	}
	if _, err := NewFromModel(dbs, filepath.Join(t.TempDir(), "none.json"), nil); err == nil {
		t.Error("missing model file must fail")
	}
}

func TestSaveModelUntrained(t *testing.T) {
	db := NewLocalDatabase("d", map[string]string{"a": "text here"})
	sums, err := ExactSummaries([]Database{db})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := New([]Database{db}, sums, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.SaveModel(filepath.Join(t.TempDir(), "m.json")); err == nil {
		t.Error("saving an untrained model must fail")
	}
}

// TestOnlineRefinement verifies that probes feed the model when the
// option is on: the per-type observation counts grow during selection.
func TestOnlineRefinement(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	ms.cfg.OnlineRefinement = true

	countObservations := func() int64 {
		var total int64
		for _, dm := range ms.serving().DBs {
			for _, ed := range dm.EDs {
				total += ed.Observations()
			}
		}
		return total
	}
	before := countObservations()
	var probes int
	for _, q := range test {
		res, err := ms.SelectWithCertainty(q, 1, Absolute, 0.99, 2)
		if err != nil {
			t.Fatal(err)
		}
		probes += res.Probes
		if probes > 10 {
			break
		}
	}
	if probes == 0 {
		t.Skip("no query required probing; cannot exercise refinement")
	}
	after := countObservations()
	if after != before+int64(probes) {
		t.Errorf("observations grew by %d for %d probes", after-before, probes)
	}
}

// TestDocSimilarityPipeline runs the alternative relevancy definition
// end to end: training, selection and probing under best-document
// cosine relevancy.
func TestDocSimilarityPipeline(t *testing.T) {
	onco := NewLocalDatabase("onco", map[string]string{
		"o1": "breast cancer screening", "o2": "breast cancer therapy",
		"o3": "lung cancer staging", "o4": "tumor biopsy results",
	})
	cardio := NewLocalDatabase("cardio", map[string]string{
		"c1": "heart attack response", "c2": "blood pressure control",
		"c3": "cardiac surgery recovery",
	})
	dbs := []Database{onco, cardio}
	sums, err := ExactSummaries(dbs)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := New(dbs, sums, &Config{
		Relevancy: DocSimilarityRelevancy(),
		Model:     SimilarityModelConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	train := []string{
		"breast cancer", "cancer therapy", "heart attack", "blood pressure",
		"tumor biopsy", "cardiac surgery", "cancer staging", "pressure control",
		"breast screening", "attack response",
	}
	if err := ms.Train(train); err != nil {
		t.Fatal(err)
	}
	set, certainty, err := ms.Select("breast cancer", 1, Absolute)
	if err != nil {
		t.Fatal(err)
	}
	if set[0] != "onco" {
		t.Errorf("similarity selection picked %v for 'breast cancer'", set)
	}
	if certainty <= 0 || certainty > 1 {
		t.Errorf("certainty %v out of range", certainty)
	}
	res, err := ms.SelectWithCertainty("heart attack", 1, Absolute, 0.9, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Databases[0] != "cardio" {
		t.Errorf("similarity APro picked %v for 'heart attack'", res.Databases)
	}
}

func TestExplain(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	expl, err := ms.Explain(test[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(expl) != len(ms.Databases()) {
		t.Fatalf("explanations for %d of %d databases", len(expl), len(ms.Databases()))
	}
	var totalMembership float64
	for _, e := range expl {
		if e.Database == "" || e.QueryType == "" {
			t.Errorf("incomplete explanation %+v", e)
		}
		if e.MembershipProb < 0 || e.MembershipProb > 1 {
			t.Errorf("membership %v out of range", e.MembershipProb)
		}
		if e.Estimate < 0 || e.ExpectedRelevancy < 0 {
			t.Errorf("negative relevancy fields %+v", e)
		}
		totalMembership += e.MembershipProb
	}
	// Membership probabilities over all databases sum to exactly k.
	if totalMembership < 1.99 || totalMembership > 2.01 {
		t.Errorf("membership probabilities sum to %v, want 2 (k)", totalMembership)
	}
	// Untrained metasearchers cannot explain.
	db := NewLocalDatabase("d", map[string]string{"a": "words here"})
	sums, _ := ExactSummaries([]Database{db})
	fresh, _ := New([]Database{db}, sums, nil)
	if _, err := fresh.Explain("words", 1); err == nil {
		t.Error("untrained Explain must fail")
	}
}

// TestMetasearchSnippets: fused results from fetchable databases carry
// query-centered snippets.
func TestMetasearchSnippets(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	for _, q := range test {
		items, _, err := ms.Metasearch(q, 2, Partial, 0.7, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if it.Snippet == "" {
				t.Fatalf("item %s/%s missing snippet", it.Database, it.Doc.ID)
			}
		}
		if len(items) > 0 {
			return
		}
	}
	t.Error("no query produced results")
}
