// Command metaprobed is the metaprobe selection daemon: a long-running
// multi-tenant service that answers database-selection requests over
// HTTP/JSON. It fronts the paper's adaptive-probing algorithm with the
// service machinery heavy traffic needs — batch coalescing of
// concurrent identical requests, per-tenant token buckets, global
// admission control with graceful load-shedding tiers (full APro →
// RD-only → r̂-only), per-tenant hot-swappable models, and graceful
// drain on SIGTERM.
//
//	metaprobed -addr :8091 -scale 0.02 -tenants default,acme
//	curl 'localhost:8091/v1/select?q=breast+cancer&k=3&t=0.9'
//	curl -s localhost:8091/debug/model | jq .skew
//
// Every response carries a "tier" field naming the service level it
// was computed at; under overload the daemon degrades tiers instead of
// erroring, so availability stays 100% with honestly-labeled answers.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"metaprobe"
	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/queries"
	"metaprobe/internal/server"
	"metaprobe/internal/stats"
)

var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}

func main() {
	fs := flag.NewFlagSet("metaprobed", flag.ExitOnError)
	addr := fs.String("addr", ":8091", "listen address")
	scale := fs.Float64("scale", 0.02, "testbed size multiplier")
	trainN := fs.Int("train", 300, "training queries per term count")
	seed := fs.Int64("seed", 2004, "random seed")
	tenants := fs.String("tenants", server.DefaultTenant, "comma-separated tenant names to serve")
	soft := fs.Int64("soft-inflight", 64, "inflight requests above which service degrades to rd_only")
	hard := fs.Int64("hard-inflight", 0, "inflight requests above which service degrades to rhat_only (0: 4x soft)")
	rate := fs.Float64("tenant-rate", 0, "per-tenant full-service budget in req/s (0: unmetered)")
	burst := fs.Int("tenant-burst", 32, "per-tenant full-service burst (token-bucket depth)")
	runTimeout := fs.Duration("run-timeout", 30*time.Second, "cap on one coalesced selection run")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGTERM")
	fs.Parse(os.Args[1:])

	names := splitTenants(*tenants)
	if len(names) == 0 {
		fatal(fmt.Errorf("need at least one tenant name"))
	}

	reg := metaprobe.NewMetrics()
	spans := metaprobe.NewSpanTracer(0)
	spans.Bind(reg)
	obs.RegisterBuildInfo(reg, "metaprobed", fmt.Sprint(core.FormatVersion))

	logger.Info("building testbed and training the shared model",
		"scale", *scale, "tenants", names)
	srv, err := buildServer(names, *scale, *seed, *trainN, server.Config{
		Metrics:      reg,
		Spans:        spans,
		SoftInflight: *soft,
		HardInflight: *hard,
		TenantRate:   *rate,
		TenantBurst:  *burst,
		RunTimeout:   *runTimeout,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("metaprobed serving",
		"addr", *addr, "tenants", len(names),
		"endpoints", "/v1/select /v1/tenants /metrics /debug/model /debug/server /debug/spans /debug/pprof /healthz /readyz")

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		// Drain first so /readyz flips not-ready and in-flight requests
		// finish, then stop the listener, then tear down the tenants.
		logger.Info("draining", "reason", "signal", "inflight", srv.Stats().Inflight)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			logger.Error("drain", "err", err)
		}
		if err := hs.Shutdown(dctx); err != nil {
			logger.Error("listener shutdown", "err", err)
		}
		srv.Close()
		st := srv.Stats()
		logger.Info("metaprobed stopped", "peak_inflight", st.PeakInflight)
	}
}

// splitTenants parses the -tenants flag.
func splitTenants(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// buildServer assembles the multi-tenant service over the synthetic
// health testbed: one shared training pass, then one metasearcher per
// tenant loaded from the same snapshot — each with its own RCU model
// chain, drift detector and refresh loop, so tenants hot-swap models
// independently from the moment they start.
func buildServer(names []string, scale float64, seed int64, trainN int, cfg server.Config) (*server.Server, error) {
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(scale), seed)
	if err != nil {
		return nil, err
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		return nil, err
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		return nil, err
	}
	pool, err := gen.Pool(stats.NewRNG(seed).Fork(1), trainN, trainN)
	if err != nil {
		return nil, err
	}
	train := make([]string, len(pool))
	for i, q := range pool {
		train[i] = q.String()
	}
	// The refresh pool feeds each tenant's drift-triggered retraining
	// (disjoint seed fork from the training pool).
	refreshPool, err := gen.Pool(stats.NewRNG(seed).Fork(2), trainN, trainN)
	if err != nil {
		return nil, err
	}
	refreshQueries := func(numTerms, n int) []string {
		var out []string
		for _, q := range refreshPool {
			if q.NumTerms() == numTerms {
				out = append(out, q.String())
				if len(out) >= n {
					break
				}
			}
		}
		return out
	}
	tenantCfg := func() *metaprobe.Config {
		return &metaprobe.Config{
			Metrics: cfg.Metrics,
			Spans:   cfg.Spans,
			Drift:   &metaprobe.DriftConfig{},
			Refresh: &metaprobe.RefreshConfig{Queries: refreshQueries},
		}
	}

	// Train once, snapshot, then give every tenant its own metasearcher
	// loaded from that snapshot: identical models at boot, independent
	// version chains afterwards.
	trained, err := metaprobe.New(dbs, sums, tenantCfg())
	if err != nil {
		return nil, err
	}
	if err := trained.Train(train); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "metaprobed-model-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	snapshot := filepath.Join(dir, "model.mpb")
	if err := trained.SaveModel(snapshot); err != nil {
		return nil, err
	}

	srv := server.New(cfg)
	for i, name := range names {
		var ms *metaprobe.Metasearcher
		if i == 0 {
			// The first tenant serves the freshly trained model directly.
			ms = trained
		} else {
			ms, err = metaprobe.NewFromModel(dbs, snapshot, tenantCfg())
			if err != nil {
				srv.Close()
				return nil, err
			}
		}
		if err := srv.AddTenant(name, ms); err != nil {
			ms.Close()
			srv.Close()
			return nil, err
		}
		info := ms.ModelInfo()
		logger.Info("tenant ready", "tenant", name, "model_version", info.Version, "source", info.Source)
	}
	return srv, nil
}
