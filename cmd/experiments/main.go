// Command experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index):
//
//	F7/F8  sampling-size goodness study (Section 4.2)
//	F9     per-query-type error distributions (Figure 9)
//	F14    database inventory (Figure 14)
//	F15    RD-based selection vs. baseline (Figure 15)
//	F16    correctness vs. number of probes (Figure 16)
//	F17    probes vs. certainty threshold (Figure 17)
//	A1–A5  ablations (probe policies, type threshold, ED bins,
//	       training size, probe costs)
//
// Usage:
//
//	go run ./cmd/experiments [-run all|F15,F16,...] [-scale 0.05]
//	    [-train 1000] [-test 1000] [-probes 10] [-out results]
//
// Tables are printed to stdout and, with -out, also written as .txt
// and .csv files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"metaprobe/internal/experiments"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiment ids (F7,F8,F9,F14,F15,F16,F17,A1,A1B,A2,A3,A4,A5,ESIM,EBASE,ECAL,EDRIFT,EFUSE,ESAMP,EPRUNE) or 'all'")
	scale := flag.Float64("scale", 0.05, "health-testbed size multiplier")
	trainN := flag.Int("train", 1000, "training queries per term-count (2-term and 3-term)")
	testN := flag.Int("test", 1000, "test queries per term-count")
	probes := flag.Int("probes", 10, "max probes for Figure 16")
	seed := flag.Int64("seed", 2004, "random seed")
	outDir := flag.String("out", "", "directory to write .txt/.csv tables (optional)")
	samplingScale := flag.Float64("sampling-scale", 0.2, "newsgroup-testbed size multiplier for F7/F8")
	samplingPool := flag.Int("sampling-pool", 50000, "query-pool size for F7/F8")
	samplingKS := flag.Bool("sampling-ks", false, "use the Kolmogorov-Smirnov statistic for F7/F8 instead of chi-square")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(strings.ToUpper(*runList), ",") {
		want[strings.TrimSpace(id)] = true
	}
	wanted := func(id string) bool { return want["ALL"] || want[id] }

	var tables []*experiments.Table
	emit := func(t *experiments.Table) {
		fmt.Printf("\n%s\n", t)
		tables = append(tables, t)
	}

	// F7/F8 use their own newsgroup testbed.
	if wanted("F7") || wanted("F8") {
		cfg := experiments.DefaultSamplingConfig()
		cfg.Scale = *samplingScale
		cfg.PoolSize = *samplingPool
		cfg.UseKS = *samplingKS
		step("sampling-size study (F7/F8)", func() error {
			perDB, avg, err := experiments.SamplingStudy(cfg)
			if err != nil {
				return err
			}
			if wanted("F7") {
				emit(perDB)
			}
			if wanted("F8") {
				emit(avg)
			}
			return nil
		})
	}

	cfg := experiments.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Train2, cfg.Train3 = *trainN, *trainN
	cfg.Test2, cfg.Test3 = *testN, *testN

	// A1b builds its own truncated testbed; E-SIM its own
	// similarity-trained one.
	if wanted("A1B") {
		step("Ablation A1b (optimal policy, truncated testbed)", func() error {
			t, err := experiments.AblationOptimalPolicy(cfg, 5, 0.85)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("ESIM") {
		step("E-SIM (document-similarity relevancy)", func() error {
			simCfg := experiments.SimilarityVariant(cfg)
			env, err := experiments.Setup(simCfg)
			if err != nil {
				return err
			}
			t, err := experiments.Figure15(env, []int{1, 3})
			if err != nil {
				return err
			}
			t.ID = "ESIM"
			t.Title = "E-SIM: Figure 15 under the document-similarity relevancy definition"
			emit(t)
			return nil
		})
	}

	needEnv := false
	for _, id := range []string{"F9", "F14", "F15", "F16", "F17", "A1", "A2", "A3", "A4", "A5", "EBASE", "ECAL", "EDRIFT", "EFUSE", "ESAMP", "EPRUNE"} {
		if wanted(id) {
			needEnv = true
		}
	}
	if !needEnv {
		writeOut(*outDir, tables)
		return
	}

	var env *experiments.Env
	step(fmt.Sprintf("building testbed + training (%d train, %d test queries)",
		cfg.Train2+cfg.Train3, cfg.Test2+cfg.Test3), func() error {
		var err error
		env, err = experiments.Setup(cfg)
		return err
	})

	if wanted("F14") {
		emit(experiments.Figure14(env))
	}
	if wanted("F9") {
		step("Figure 9", func() error {
			t, err := experiments.Figure9(env, "OncoLink")
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("F15") {
		step("Figure 15", func() error {
			t, err := experiments.Figure15(env, []int{1, 3})
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("F16") {
		step("Figure 16", func() error {
			t, err := experiments.Figure16(env, *probes)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("F17") {
		step("Figure 17", func() error {
			t, err := experiments.Figure17(env, nil)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("A1") {
		step("Ablation A1", func() error {
			t, err := experiments.AblationPolicies(env, 0.8, 1)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("A2") {
		step("Ablation A2", func() error {
			t, err := experiments.AblationTypeThreshold(env, []float64{10, 50, 100, 500}, 1)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("A3") {
		step("Ablation A3", func() error {
			t, err := experiments.AblationEDBins(env, 1)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("A4") {
		step("Ablation A4", func() error {
			t, err := experiments.AblationTrainingSize(env, []int{100, 250, 500, 1000, 2000}, 1)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("EPRUNE") {
		step("E-PRUNE (summary term budgets)", func() error {
			t, err := experiments.PrunedSummariesStudy(env, nil)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("ESAMP") {
		step("E-SAMP (query-sampled summaries)", func() error {
			t, err := experiments.SampledSummariesStudy(cfg, 80)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("EFUSE") {
		step("E-FUSE (result-fusion quality)", func() error {
			t, err := experiments.FusionStudy(env, 3, 10)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("ECAL") {
		step("E-CAL (certainty calibration)", func() error {
			t, err := experiments.CalibrationStudy(env, 1, 5)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("EDRIFT") {
		step("E-DRIFT (online refinement under drift)", func() error {
			t, err := experiments.DriftStudy(cfg, "CNNHealthNews", 8, 1000)
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("EBASE") {
		step("E-BASE (selector comparison incl. CORI)", func() error {
			t, err := experiments.BaselineComparison(env, []int{1, 3})
			if err == nil {
				emit(t)
			}
			return err
		})
	}
	if wanted("A5") {
		step("Ablation A5", func() error {
			t, err := experiments.AblationProbeCosts(env, 0.8, 1)
			if err == nil {
				emit(t)
			}
			return err
		})
	}

	writeOut(*outDir, tables)
}

// step runs one stage with progress and timing on stderr.
func step(name string, f func() error) {
	fmt.Fprintf(os.Stderr, "[%s] %s...\n", time.Now().Format("15:04:05"), name)
	start := time.Now()
	if err := f(); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Fprintf(os.Stderr, "[%s] %s done in %v\n", time.Now().Format("15:04:05"), name, time.Since(start).Round(time.Millisecond))
}

// writeOut persists the tables when -out is set.
func writeOut(dir string, tables []*experiments.Table) {
	if dir == "" || len(tables) == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		base := filepath.Join(dir, strings.ToLower(t.ID))
		if err := os.WriteFile(base+".txt", []byte(t.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(base+".csv", []byte(t.CSV()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d tables to %s\n", len(tables), dir)
}
