// Command corpusgen materializes a synthetic testbed to disk: one
// JSON-Lines file per database plus a manifest, so external tools (or
// repeated experiment runs) can reuse identical collections.
//
// Usage:
//
//	go run ./cmd/corpusgen -out corpus/ [-testbed health|newsgroup]
//	    [-scale 0.05] [-seed 2004]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"metaprobe/internal/corpus"
	"metaprobe/internal/stats"
)

// manifest records how a materialized testbed was produced.
type manifest struct {
	Testbed string                `json:"testbed"`
	Seed    int64                 `json:"seed"`
	Scale   float64               `json:"scale"`
	Specs   []corpus.DatabaseSpec `json:"specs"`
	Files   []string              `json:"files"`
}

func main() {
	out := flag.String("out", "corpus", "output directory")
	testbed := flag.String("testbed", "health", "testbed preset: health or newsgroup")
	scale := flag.Float64("scale", 0.05, "collection size multiplier")
	seed := flag.Int64("seed", 2004, "random seed")
	flag.Parse()

	var world *corpus.World
	var specs []corpus.DatabaseSpec
	switch *testbed {
	case "health":
		world = corpus.HealthWorld()
		specs = corpus.HealthTestbed(*scale)
	case "newsgroup":
		world = corpus.NewsgroupWorld(*seed)
		specs = corpus.NewsgroupTestbed(world, *scale)
	default:
		log.Fatalf("unknown testbed %q (want health or newsgroup)", *testbed)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	m := manifest{Testbed: *testbed, Seed: *seed, Scale: *scale, Specs: specs}
	totalDocs := 0
	for i, spec := range specs {
		// Derive the stream exactly like hidden.BuildTestbed so the
		// materialized collections match in-memory experiment runs.
		docs, err := world.Generate(spec, stats.NewRNG(*seed).Fork(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		file := spec.Name + ".jsonl"
		if err := corpus.SaveFile(filepath.Join(*out, file), docs); err != nil {
			log.Fatal(err)
		}
		m.Files = append(m.Files, file)
		totalDocs += len(docs)
		log.Printf("wrote %-32s %6d docs", file, len(docs))
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "manifest.json"), data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d databases (%d documents) in %s\n", len(specs), totalDocs, *out)
}
