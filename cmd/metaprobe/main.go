// Command metaprobe is the CLI for the metaprobe metasearcher.
//
// Subcommands:
//
//	serve  — generate a synthetic health testbed and serve every
//	         database over HTTP (real Hidden-Web-style answer pages),
//	         for use as a target by `query` or by external tools.
//	query  — run database selection against remote metaprobe servers:
//	         sample their summaries, train an error model, then answer
//	         queries with baseline / RD-based / adaptive-probing tiers.
//	demo   — the all-in-one local demonstration (serve + query without
//	         the network hop).
//
// Examples:
//
//	metaprobe serve -addr :8080 -scale 0.02
//	metaprobe query -base http://localhost:8080 -t 0.9 "breast cancer"
//	metaprobe demo "heart attack"
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// logger is the process-wide structured logger. Human-facing report
// tables still print with fmt; everything operational goes through
// slog so log lines carry machine-readable fields (notably the
// per-selection correlation ID also present in SelectionTrace.ID).
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

// fatal logs err and exits non-zero.
func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "query":
		remoteQuery(os.Args[2:])
	case "web":
		web(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: metaprobe <serve|web|query|demo> [flags] [query terms...]")
	os.Exit(2)
}

// serve generates the health testbed and exposes every database under
// /db/<name>/search on one listener.
func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	scale := fs.Float64("scale", 0.02, "testbed size multiplier")
	seed := fs.Int64("seed", 2004, "random seed")
	fs.Parse(args)

	logger.Info("generating the 20-database health testbed", "scale", *scale)
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(*scale), *seed)
	if err != nil {
		fatal(err)
	}
	for _, db := range tb.Databases() {
		local := db.(*hidden.Local)
		logger.Info("database ready", "db", db.Name(), "docs", local.Size(), "path", "/db/"+db.Name()+"/search")
	}
	logger.Info("serving", "addr", *addr)
	fatal(http.ListenAndServe(*addr, hidden.ServeTestbed(tb)))
}

// remoteQuery drives selection against a running `metaprobe serve`.
func remoteQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	base := fs.String("base", "http://localhost:8080", "base URL of a metaprobe serve instance")
	k := fs.Int("k", 3, "databases to select")
	t := fs.Float64("t", 0.9, "certainty threshold")
	trainN := fs.Int("train", 200, "training queries per term count")
	sampleN := fs.Int("sample", 60, "sampling probes per database for summaries")
	html := fs.Bool("html", true, "scrape HTML answer pages (false: JSON)")
	spec := fs.Int("speculation", 1, "probes dispatched per adaptive-probing round")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe deadline (0 = none)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("query: need query terms"))
	}
	query := strings.Join(fs.Args(), " ")

	// The databases a metaprobe server exposes are the Figure 14
	// roster; connect a client to each.
	var dbs []metaprobe.Database
	for _, spec := range corpus.HealthTestbed(1) {
		dbs = append(dbs, metaprobe.NewHTTPDatabase(spec.Name,
			strings.TrimRight(*base, "/")+"/db/"+spec.Name, *html))
	}
	logger.Info("sampling summaries", "databases", len(dbs))
	sums, err := metaprobe.SampleSummaries(dbs,
		[]string{"cancer", "heart", "health", "drug", "child", "report", "diet"},
		*sampleN, 1)
	if err != nil {
		fatal(err)
	}
	ms, err := metaprobe.New(dbs, sums, &metaprobe.Config{Speculation: *spec, ProbeTimeout: *probeTimeout})
	if err != nil {
		fatal(err)
	}

	logger.Info("training the error model", "queries", 2**trainN)
	gen, err := queries.NewGenerator(corpus.HealthWorld(), queries.Config{})
	if err != nil {
		fatal(err)
	}
	pool, err := gen.Pool(stats.NewRNG(1), *trainN, *trainN)
	if err != nil {
		fatal(err)
	}
	train := make([]string, len(pool))
	for i, q := range pool {
		train[i] = q.String()
	}
	if err := ms.Train(train); err != nil {
		fatal(err)
	}
	report(ms, query, *k, *t, *spec > 1 || *probeTimeout > 0)
}

// demo is serve+query fused into one process.
func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	k := fs.Int("k", 3, "databases to select")
	t := fs.Float64("t", 0.9, "certainty threshold")
	scale := fs.Float64("scale", 0.02, "testbed size multiplier")
	trainN := fs.Int("train", 300, "training queries per term count")
	seed := fs.Int64("seed", 2004, "random seed")
	modelPath := fs.String("model", "", "model file: loaded when present, written after training otherwise")
	trainLog := fs.String("trainlog", "", "file with training queries (one per line) instead of generated ones")
	spec := fs.Int("speculation", 1, "probes dispatched per adaptive-probing round")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe deadline (0 = none)")
	fs.Parse(args)
	query := "breast cancer"
	if fs.NArg() > 0 {
		query = strings.Join(fs.Args(), " ")
	}

	logger.Info("building the health testbed", "scale", *scale)
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(*scale), *seed)
	if err != nil {
		fatal(err)
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}

	cfg := &metaprobe.Config{Speculation: *spec, ProbeTimeout: *probeTimeout}
	ctxPath := *spec > 1 || *probeTimeout > 0

	// A persisted model skips both summary building and training.
	if *modelPath != "" {
		if _, statErr := os.Stat(*modelPath); statErr == nil {
			logger.Info("loading model", "path", *modelPath)
			ms, err := metaprobe.NewFromModel(dbs, *modelPath, cfg)
			if err != nil {
				fatal(err)
			}
			report(ms, query, *k, *t, ctxPath)
			return
		}
	}

	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		fatal(err)
	}
	ms, err := metaprobe.New(dbs, sums, cfg)
	if err != nil {
		fatal(err)
	}
	var train []string
	if *trainLog != "" {
		qs, err := queries.LoadLog(*trainLog)
		if err != nil {
			fatal(err)
		}
		for _, q := range qs {
			train = append(train, q.String())
		}
	} else {
		gen, err := queries.NewGenerator(world, queries.Config{})
		if err != nil {
			fatal(err)
		}
		pool, err := gen.Pool(stats.NewRNG(*seed).Fork(1), *trainN, *trainN)
		if err != nil {
			fatal(err)
		}
		for _, q := range pool {
			train = append(train, q.String())
		}
	}
	logger.Info("training", "queries", len(train))
	if err := ms.Train(train); err != nil {
		fatal(err)
	}
	if *modelPath != "" {
		if err := ms.SaveModel(*modelPath); err != nil {
			fatal(err)
		}
		logger.Info("saved model", "path", *modelPath)
	}
	report(ms, query, *k, *t, ctxPath)
}

// report prints the three tiers and the fused results for one query.
// With ctxPath the adaptive-probing tier goes through the concurrent
// probe-execution engine (SelectWithCertaintyContext) and reports
// degradation when backends had to be excluded.
func report(ms *metaprobe.Metasearcher, query string, k int, t float64, ctxPath bool) {
	fmt.Printf("\nquery: %q  (k=%d, certainty %.2f)\n\n", query, k, t)

	expl, err := ms.Explain(query, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-18s %10s %12s %10s %14s\n", "database", "estimate", "E[relevancy]", "P(top-k)", "query type")
	for _, e := range expl {
		if e.MembershipProb < 0.01 && e.Estimate == 0 {
			continue // keep the table readable
		}
		fmt.Printf("%-18s %10.1f %12.1f %10.3f %14s\n",
			e.Database, e.Estimate, e.ExpectedRelevancy, e.MembershipProb, e.QueryType)
	}
	fmt.Println()
	fmt.Printf("baseline:  %v\n", ms.SelectBaseline(query, k))
	set, e, err := ms.Select(query, k, metaprobe.Absolute)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("RD-based:  %v (certainty %.3f)\n", set, e)
	var res *metaprobe.SelectionResult
	if ctxPath {
		res, err = ms.SelectWithCertaintyContext(context.Background(), query, k, metaprobe.Absolute, t, -1)
	} else {
		res, err = ms.SelectWithCertainty(query, k, metaprobe.Absolute, t, -1)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("APro:      %v (certainty %.3f, %d probes)\n", res.Databases, res.Certainty, res.Probes)
	if res.Degraded {
		fmt.Printf("           degraded: excluded %v\n", res.ExcludedDBs)
	}
	fmt.Println()

	items, _, err := ms.Metasearch(query, k, metaprobe.Partial, t, 10)
	if err != nil {
		fatal(err)
	}
	fmt.Println("fused results:")
	for i, it := range items {
		fmt.Printf("  %2d. [%s] %s (%.3f)\n", i+1, it.Database, it.Doc.ID, it.Score)
	}
}
