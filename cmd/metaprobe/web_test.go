package main

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWebUIEndToEnd(t *testing.T) {
	ms, err := buildDemoMetasearcher(0.005, 7, 80)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWebUI(ms))
	defer srv.Close()

	get := func(url string) string {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// The landing page shows the form, no results.
	home := get(srv.URL + "/")
	if !strings.Contains(home, "metaprobe") || !strings.Contains(home, "<form") {
		t.Error("landing page missing form")
	}
	if strings.Contains(home, "selected <b>") {
		t.Error("landing page should not show a selection")
	}

	// A query renders results, selection metadata and diagnostics.
	page := get(srv.URL + "/?q=breast+cancer&k=2&t=0.8")
	for _, want := range []string{"selected <b>", "certainty", "probes", "Why these databases?"} {
		if !strings.Contains(page, want) {
			t.Errorf("result page missing %q", want)
		}
	}

	// Out-of-range parameters fall back to defaults instead of failing.
	page = get(srv.URL + "/?q=cancer&k=999&t=7")
	if !strings.Contains(page, "selected <b>") {
		t.Error("fallback parameters did not produce a result page")
	}

	// Script injection in the query must be escaped by the template.
	page = get(srv.URL + "/?q=" + strings.ReplaceAll("<script>alert(1)</script>", " ", "+"))
	if strings.Contains(page, "<script>alert(1)</script>") {
		t.Error("query text not HTML-escaped")
	}
}
