package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"metaprobe"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/prof"
)

func TestWebUIEndToEnd(t *testing.T) {
	ms, env, err := buildDemoMetasearcher(0.005, 7, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	// Attach the profiling subsystem the way web() does, without the
	// background loops: one manual heap capture and one runtime sample
	// give the endpoints and the telemetry panel data to serve.
	env.captor, err = prof.New(prof.Config{Metrics: env.reg})
	if err != nil {
		t.Fatal(err)
	}
	if c := env.captor.CaptureHeap(); c == nil {
		t.Fatal("heap capture failed")
	}
	env.sampler = prof.NewSampler(prof.SamplerConfig{Metrics: env.reg})
	env.sampler.Sample()
	srv := httptest.NewServer(newWebMux(ms, env))
	defer srv.Close()

	get := func(url string) string {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// The landing page shows the form, no results.
	home := get(srv.URL + "/")
	if !strings.Contains(home, "metaprobe") || !strings.Contains(home, "<form") {
		t.Error("landing page missing form")
	}
	if strings.Contains(home, "selected <b>") {
		t.Error("landing page should not show a selection")
	}

	// Before any query the metrics endpoint already exposes the
	// selection and per-database series, at zero.
	pre := get(srv.URL + "/metrics")
	for _, want := range []string{
		"# TYPE metaprobe_select_latency_seconds summary",
		"# TYPE metaprobe_probes_total counter",
		"# TYPE metaprobe_db_search_latency_seconds summary",
		"# TYPE metaprobe_db_cache_hits_total counter",
	} {
		if !strings.Contains(pre, want) {
			t.Errorf("/metrics missing %q before first query", want)
		}
	}

	// Liveness and readiness probes answer immediately; the searcher is
	// trained, so /readyz reports ready.
	if body := get(srv.URL + "/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q, want ok", body)
	}
	if body := get(srv.URL + "/readyz"); !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %q, want ready", body)
	}

	// A query renders results, selection metadata and diagnostics —
	// including the audited correctness and the calibration panel fed
	// by the post-selection audit.
	page := get(srv.URL + "/?q=breast+cancer&k=2&t=0.8")
	for _, want := range []string{"selected <b>", "certainty", "probes", "Why these databases?",
		"Result caches", "hit rate", "audited correctness", "Certainty calibration", "Brier"} {
		if !strings.Contains(page, want) {
			t.Errorf("result page missing %q", want)
		}
	}

	// Out-of-range parameters fall back to defaults instead of failing.
	page = get(srv.URL + "/?q=cancer&k=999&t=7")
	if !strings.Contains(page, "selected <b>") {
		t.Error("fallback parameters did not produce a result page")
	}

	// Script injection in the query must be escaped by the template.
	page = get(srv.URL + "/?q=" + strings.ReplaceAll("<script>alert(1)</script>", " ", "+"))
	if strings.Contains(page, "<script>alert(1)</script>") {
		t.Error("query text not HTML-escaped")
	}

	// After the queries above, /metrics carries live values: selection
	// latency quantiles, per-database search latency, cache traffic.
	metrics := get(srv.URL + "/metrics")
	for _, want := range []string{
		`metaprobe_select_latency_seconds{quantile="0.5"}`,
		`metaprobe_select_latency_seconds{quantile="0.99"}`,
		`metaprobe_db_search_latency_seconds{db="`,
		"metaprobe_db_cache_misses_total{db=",
		"metaprobe_selections_total{reached=",
		"metaprobe_traces_recorded_total",
		"mp_calibration_samples_total",
		"mp_calibration_brier_score",
		"mp_ed_drift_tests_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q after queries", want)
		}
	}
	if !strings.Contains(metrics, "metaprobe_select_latency_seconds_count") {
		t.Error("/metrics missing selection latency count")
	}

	// /debug/trace returns the recent selections as JSON, newest first.
	var traces []obs.SelectionTrace
	if err := json.Unmarshal([]byte(get(srv.URL+"/debug/trace?n=3")), &traces); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v", err)
	}
	if len(traces) != 3 {
		t.Fatalf("/debug/trace returned %d traces, want 3", len(traces))
	}
	// Newest first: the oldest of the three is the first real query.
	if traces[2].Query != "breast cancer" {
		t.Errorf("oldest trace = %q, want the first real query", traces[2].Query)
	}
	if len(traces[2].Estimates) != len(ms.Databases()) {
		t.Errorf("trace estimates %d, want one per database", len(traces[2].Estimates))
	}

	// A malformed trace limit is rejected, not ignored.
	resp, err := srv.Client().Get(srv.URL + "/debug/trace?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("/debug/trace?n=bogus status = %d, want 400", resp.StatusCode)
	}

	// /debug/calibration serves the per-bin reliability data recorded
	// by the audits above.
	var snap obs.CalibrationSnapshot
	if err := json.Unmarshal([]byte(get(srv.URL+"/debug/calibration")), &snap); err != nil {
		t.Fatalf("/debug/calibration is not JSON: %v", err)
	}
	if snap.Samples == 0 {
		t.Error("/debug/calibration shows no audited selections")
	}
	if len(snap.Bins) == 0 {
		t.Error("/debug/calibration has no bins")
	}

	// /debug/model reports the serving model version: trained once, so
	// version 1 from "train", with the refresher counters present (the
	// demo wires Config.Refresh).
	var model metaprobe.ModelInfo
	if err := json.Unmarshal([]byte(get(srv.URL+"/debug/model")), &model); err != nil {
		t.Fatalf("/debug/model is not JSON: %v", err)
	}
	if !model.Trained || model.Version != 1 || model.Source != "train" {
		t.Errorf("/debug/model = %+v, want trained v1 from train", model)
	}
	if model.Databases != len(ms.Databases()) {
		t.Errorf("/debug/model reports %d databases, want %d", model.Databases, len(ms.Databases()))
	}
	if model.Refresh == nil {
		t.Error("/debug/model missing refresher stats despite Config.Refresh")
	}
	// The UI home page surfaces the serving version too.
	if home := get(srv.URL + "/"); !strings.Contains(home, "serving model v1") {
		t.Error("home page missing the serving-model line")
	}

	// pprof is mounted.
	if body := get(srv.URL + "/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Error("/debug/pprof/ index missing")
	}

	// The continuous-profile store lists the heap capture taken above
	// and serves its raw blob.
	var captures []prof.Capture
	if err := json.Unmarshal([]byte(get(srv.URL+"/debug/profiles")), &captures); err != nil {
		t.Fatalf("/debug/profiles is not JSON: %v", err)
	}
	if len(captures) == 0 || captures[0].Kind != prof.KindHeap {
		t.Fatalf("/debug/profiles = %+v, want one heap capture", captures)
	}
	if blob := get(srv.URL + "/debug/profiles?latest=heap"); len(blob) == 0 {
		t.Error("/debug/profiles?latest=heap returned an empty blob")
	}
	if dump := get(srv.URL + "/debug/goroutines"); !strings.Contains(dump, "goroutine") {
		t.Error("/debug/goroutines missing goroutine dump")
	}

	// Runtime telemetry shows on the page and in /metrics; the queries
	// above also populated the per-stage attribution histograms.
	if home := get(srv.URL + "/"); !strings.Contains(home, "Runtime telemetry") ||
		!strings.Contains(home, "heap in use") {
		t.Error("home page missing the runtime-telemetry panel")
	}
	metrics = get(srv.URL + "/metrics")
	for _, want := range []string{
		"mp_runtime_heap_inuse_bytes",
		"mp_runtime_goroutines",
		`mp_prof_captures_total{kind="heap"}`,
		`mp_selection_stage_seconds{stage="rd_convolve"`,
		`mp_selection_stage_seconds{stage="ecor_dp"`,
		`mp_selection_stage_allocs{stage="rd_convolve"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
