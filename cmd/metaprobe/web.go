package main

import (
	"context"
	"flag"
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"metaprobe"
	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/prof"
	"metaprobe/internal/obs/span"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// web serves a browser front-end over a trained metasearcher: a search
// form, the fused results with snippets, the selection diagnostics
// (which databases were chosen, at what certainty, with how many
// probes) with a span waterfall of the request path, plus the
// operational endpoints /metrics (Prometheus text format with trace
// exemplars), /debug/trace, /debug/spans, /debug/slo,
// /debug/calibration and /debug/model (JSON), /debug/pprof, and the
// /healthz + /readyz probes (readiness covers training state and
// refresher health).
func web(args []string) {
	fs := flag.NewFlagSet("web", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	scale := fs.Float64("scale", 0.02, "testbed size multiplier")
	trainN := fs.Int("train", 300, "training queries per term count")
	seed := fs.Int64("seed", 2004, "random seed")
	profInterval := fs.Duration("prof-interval", 30*time.Second, "continuous-profiling capture interval (0 disables)")
	fs.Parse(args)

	logger.Info("building and training the metasearcher", "scale", *scale)
	ms, env, err := buildDemoMetasearcher(*scale, *seed, *trainN)
	if err != nil {
		fatal(err)
	}

	// Continuous profiling and runtime telemetry run for the lifetime
	// of the server; SIGINT/SIGTERM drains the listener, then stops the
	// captor (flushing one final heap profile) and the sampler (one
	// final runtime sample), so the last captures reflect shutdown
	// state rather than whenever the ticker last fired.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *profInterval > 0 {
		captor, err := prof.New(prof.Config{Interval: *profInterval, Metrics: env.reg})
		if err != nil {
			fatal(err)
		}
		env.captor = captor
		env.sampler = prof.NewSampler(prof.SamplerConfig{Metrics: env.reg})
		env.captor.Start(ctx)
		env.sampler.Start(ctx)
	}

	srv := &http.Server{Addr: *addr, Handler: newWebMux(ms, env)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving the metasearch UI",
		"addr", *addr,
		"endpoints", "/metrics /debug/trace /debug/spans /debug/slo /debug/calibration /debug/model /debug/profiles /debug/goroutines /debug/pprof /healthz /readyz")
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("server shutdown", "err", err)
		}
		env.captor.Stop()
		env.sampler.Stop()
		logger.Info("profiler stopped", "captures_retained", len(env.captor.List()))
	}
}

// webEnv bundles the observability state behind the demo server: the
// metrics registry and trace ring the metasearcher writes into, the
// certainty-calibration accumulator fed by post-selection audits, and
// direct handles on the per-database result caches for the
// diagnostics panel.
type webEnv struct {
	reg    *metaprobe.Metrics
	tracer *metaprobe.RingTracer
	spans  *metaprobe.SpanTracer
	slo    *metaprobe.SLO
	cal    *metaprobe.Calibration
	caches []webCache
	// captor and sampler are the continuous profiler and the
	// runtime-metrics sampler; nil when profiling is disabled (the
	// /debug/profiles handler and the telemetry panel degrade
	// gracefully).
	captor  *prof.Captor
	sampler *prof.Sampler
}

// webCache pairs a database name with its cache wrapper.
type webCache struct {
	name  string
	cache *hidden.Cached
}

// buildDemoMetasearcher assembles the health testbed behind the web
// UI. Each database is wrapped with a result cache and metric
// instrumentation; summaries are computed from the raw databases, but
// training traffic flows through the wrappers, so the metrics start
// with the training workload already recorded. Drift detection runs
// with default settings — every UI-triggered probe doubles as a drift
// sample.
func buildDemoMetasearcher(scale float64, seed int64, trainN int) (*metaprobe.Metasearcher, *webEnv, error) {
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(scale), seed)
	if err != nil {
		return nil, nil, err
	}
	raw := make([]metaprobe.Database, tb.Len())
	for i := range raw {
		raw[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(raw)
	if err != nil {
		return nil, nil, err
	}
	env := &webEnv{
		reg:    metaprobe.NewMetrics(),
		tracer: metaprobe.NewRingTracer(256),
		spans:  metaprobe.NewSpanTracer(0),
		slo:    metaprobe.NewSLO(metaprobe.SLOConfig{}),
		cal:    metaprobe.NewCalibration(0),
	}
	env.tracer.Bind(env.reg)
	env.spans.Bind(env.reg)
	env.slo.Bind(env.reg)
	env.cal.Bind(env.reg)
	obs.RegisterBuildInfo(env.reg, "metaprobe", strconv.Itoa(core.FormatVersion))
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		cached := hidden.NewCached(tb.DB(i), 512)
		env.caches = append(env.caches, webCache{name: tb.DB(i).Name(), cache: cached})
		dbs[i] = metaprobe.InstrumentDatabase(cached, env.reg)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		return nil, nil, err
	}
	// A held-out workload-like pool feeds the online refresher's
	// retraining probes (disjoint seed fork from the training pool).
	refreshPool, err := gen.Pool(stats.NewRNG(seed).Fork(2), 400, 400)
	if err != nil {
		return nil, nil, err
	}
	refreshQueries := func(numTerms, n int) []string {
		var out []string
		for _, q := range refreshPool {
			if q.NumTerms() == numTerms {
				out = append(out, q.String())
				if len(out) >= n {
					break
				}
			}
		}
		return out
	}
	ms, err := metaprobe.New(dbs, sums, &metaprobe.Config{
		Metrics: env.reg,
		Tracer:  env.tracer,
		Spans:   env.spans,
		SLO:     env.slo,
		Drift:   &metaprobe.DriftConfig{},
		OnDrift: func(a metaprobe.DriftAlert) {
			logger.Warn("error-distribution drift detected",
				"db", a.DB, "type", a.QueryType,
				"statistic", a.Statistic, "pvalue", a.PValue, "samples", a.Samples)
		},
		// Close the loop: drift alerts trigger background retraining of
		// the affected error distributions with a hot model swap; follow
		// it at /debug/model.
		Refresh: &metaprobe.RefreshConfig{Queries: refreshQueries},
	})
	if err != nil {
		return nil, nil, err
	}
	pool, err := gen.Pool(stats.NewRNG(seed).Fork(1), trainN, trainN)
	if err != nil {
		return nil, nil, err
	}
	train := make([]string, len(pool))
	for i, q := range pool {
		train[i] = q.String()
	}
	if err := ms.Train(train); err != nil {
		return nil, nil, err
	}
	return ms, env, nil
}

// newWebMux routes the UI alongside the operational endpoints.
func newWebMux(ms *metaprobe.Metasearcher, env *webEnv) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", NewWebUI(ms, env))
	mux.Handle("/metrics", obs.MetricsHandler(env.reg))
	mux.Handle("/debug/trace", obs.TraceHandler(env.tracer))
	mux.Handle("/debug/spans", span.Handler(env.spans))
	mux.Handle("/debug/slo", obs.SLOHandler(env.slo))
	mux.Handle("/debug/calibration", obs.CalibrationHandler(env.cal))
	mux.Handle("/debug/model", obs.JSONHandler(func() any { return ms.ModelInfo() }))
	mux.Handle("/healthz", obs.HealthzHandler())
	mux.Handle("/readyz", obs.ReadyzCheckHandler(ms.Ready))
	mux.Handle("/debug/profiles", prof.Handler(env.captor))
	mux.Handle("/debug/goroutines", prof.GoroutineDumpHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WebUI is the HTTP handler of the metasearch front-end.
type WebUI struct {
	ms  *metaprobe.Metasearcher
	env *webEnv
	tpl *template.Template
}

// NewWebUI wraps a trained metasearcher as a browser UI. env may be
// nil when the server runs without observability.
func NewWebUI(ms *metaprobe.Metasearcher, env *webEnv) *WebUI {
	return &WebUI{ms: ms, env: env, tpl: template.Must(template.New("page").Parse(webPage))}
}

// cacheRow is one line of the cache diagnostics panel.
type cacheRow struct {
	Database     string
	Hits, Misses int64
	// HitRate is a percentage in [0, 100].
	HitRate float64
}

// waterfallRow is one span bar of the selection-waterfall panel:
// name and detail to label it, depth to indent it, and percentages to
// position the bar on a 100%-wide track.
type waterfallRow struct {
	Name       string
	Detail     string
	Indent     float64
	DurationMs float64
	LeftPct    float64
	WidthPct   float64
	Err        bool
}

// webData feeds the page template.
type webData struct {
	Query       string
	K           int
	T           float64
	Ran         bool
	Elapsed     string
	Selection   *metaprobe.SelectionResult
	Realized    float64
	Audited     bool
	Items       []metaprobe.MergedResult
	Explain     []metaprobe.Explanation
	Error       string
	Databases   []string
	Caches      []cacheRow
	Runtime     []runtimeRow
	Calibration *metaprobe.CalibrationSnapshot
	Model       metaprobe.ModelInfo
	TraceID     string
	Waterfall   []waterfallRow
	Cost        *metaprobe.CostSummary
}

// ServeHTTP implements http.Handler.
func (u *WebUI) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	data := webData{K: 3, T: 0.9, Databases: u.ms.Databases(), Model: u.ms.ModelInfo()}
	if u.env != nil {
		data.Runtime = runtimeRows(u.env.sampler)
	}
	q := r.URL.Query().Get("q")
	if kStr := r.URL.Query().Get("k"); kStr != "" {
		if k, err := strconv.Atoi(kStr); err == nil && k >= 1 && k <= len(data.Databases) {
			data.K = k
		}
	}
	if tStr := r.URL.Query().Get("t"); tStr != "" {
		if t, err := strconv.ParseFloat(tStr, 64); err == nil && t >= 0 && t <= 1 {
			data.T = t
		}
	}
	if q != "" {
		data.Query = q
		data.Ran = true
		start := time.Now()
		items, sel, err := u.ms.MetasearchContext(r.Context(), q, data.K, metaprobe.Partial, data.T, 10)
		if err != nil {
			data.Error = err.Error()
			logger.Error("metasearch failed", "query", q, "err", err)
		} else {
			data.Items = items
			data.Selection = sel
			data.TraceID = sel.TraceID
			data.Waterfall = u.waterfall(sel.TraceID)
			data.Cost = sel.Cost
			logger.Info("metasearch",
				"selection", sel.ID, "query", q, "k", data.K,
				"certainty", sel.Certainty, "probes", sel.Probes, "results", len(items))
			// The audit live-probes every database for the realized
			// correctness of this selection — the ground truth the
			// certainty claims to predict. The result caches make the
			// extra probes cheap.
			if u.env != nil && u.env.cal != nil {
				if realized, err := u.ms.Audit(u.env.cal, q, metaprobe.Partial, sel.Databases, sel.Certainty); err == nil {
					data.Realized = realized
					data.Audited = true
				} else {
					logger.Error("calibration audit failed", "selection", sel.ID, "query", q, "err", err)
				}
			}
			if expl, err := u.ms.Explain(q, data.K); err == nil {
				// Show only databases with some signal, most likely first.
				for _, e := range expl {
					if e.MembershipProb >= 0.01 || e.Estimate > 0 {
						data.Explain = append(data.Explain, e)
					}
				}
			}
		}
		data.Elapsed = time.Since(start).Round(time.Millisecond).String()
		data.Caches = u.cacheRows()
		if u.env != nil && u.env.cal != nil {
			snap := u.env.cal.Snapshot()
			data.Calibration = &snap
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := u.tpl.Execute(w, data); err != nil {
		logger.Error("rendering page failed", "err", err)
	}
}

// waterfall renders the stored span tree of one trace as indented
// bars scaled to the trace's total duration. Spans still open when the
// page renders (a cancelled hedge loser, say) are simply absent — the
// store only holds ended spans.
func (u *WebUI) waterfall(traceID string) []waterfallRow {
	if u.env == nil || u.env.spans == nil || traceID == "" {
		return nil
	}
	roots := u.env.spans.Tree(traceID)
	nodes := span.Flatten(roots)
	if len(nodes) == 0 {
		return nil
	}
	var total float64
	for _, n := range roots {
		if end := n.OffsetMs + n.DurationMs; end > total {
			total = end
		}
	}
	if total <= 0 {
		total = 1
	}
	rows := make([]waterfallRow, 0, len(nodes))
	for _, n := range nodes {
		row := waterfallRow{
			Name:       n.Name,
			Indent:     0.9 * float64(n.Depth),
			DurationMs: n.DurationMs,
			LeftPct:    100 * n.OffsetMs / total,
			WidthPct:   100 * n.DurationMs / total,
			Err:        n.Span.Error != "",
		}
		if row.WidthPct < 0.4 {
			row.WidthPct = 0.4 // keep instant spans visible
		}
		if d, ok := n.Span.Attrs["backend"]; ok {
			row.Detail = d
		} else if d, ok := n.Span.Attrs["db"]; ok {
			row.Detail = d
		}
		rows = append(rows, row)
	}
	return rows
}

// runtimeRow is one line of the runtime-telemetry panel.
type runtimeRow struct {
	Name  string
	Value string
}

// runtimeRows renders the sampler's latest snapshot as a short,
// curated table: memory, GC pressure, and scheduler health. Series a
// Go version does not expose are simply absent.
func runtimeRows(sampler *prof.Sampler) []runtimeRow {
	if sampler == nil {
		return nil
	}
	// Refresh so the panel shows "now", not the last ticker fire.
	sampler.Sample()
	snap := sampler.Snapshot()
	ms := func(sec float64) string { return fmt.Sprintf("%.3f ms", sec*1e3) }
	mib := func(b float64) string { return fmt.Sprintf("%.1f MiB", b/(1<<20)) }
	count := func(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
	specs := []struct {
		key    string
		label  string
		format func(float64) string
	}{
		{"mp_runtime_heap_inuse_bytes", "heap in use", mib},
		{"mp_runtime_gc_goal_bytes", "GC goal", mib},
		{"mp_runtime_goroutines", "goroutines", count},
		{"mp_runtime_gc_cycles_total", "GC cycles", count},
		{"mp_runtime_gc_pause_seconds{q=0.5}", "GC pause p50", ms},
		{"mp_runtime_gc_pause_seconds{q=0.99}", "GC pause p99", ms},
		{"mp_runtime_sched_latency_seconds{q=0.5}", "sched latency p50", ms},
		{"mp_runtime_sched_latency_seconds{q=0.99}", "sched latency p99", ms},
	}
	var rows []runtimeRow
	for _, s := range specs {
		if v, ok := snap[s.key]; ok {
			rows = append(rows, runtimeRow{Name: s.label, Value: s.format(v)})
		}
	}
	return rows
}

// cacheRows snapshots the per-database result-cache statistics.
func (u *WebUI) cacheRows() []cacheRow {
	if u.env == nil {
		return nil
	}
	rows := make([]cacheRow, 0, len(u.env.caches))
	for _, c := range u.env.caches {
		hits, misses := c.cache.Stats()
		row := cacheRow{Database: c.name, Hits: hits, Misses: misses}
		if total := hits + misses; total > 0 {
			row.HitRate = 100 * float64(hits) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// webPage is the single-page template (no external assets: the tool
// must work offline).
const webPage = `<!DOCTYPE html>
<html><head><title>metaprobe</title><style>
body { font-family: system-ui, sans-serif; max-width: 60rem; margin: 2rem auto; padding: 0 1rem; }
input[type=text] { width: 24rem; padding: .4rem; }
table { border-collapse: collapse; margin: 1rem 0; }
td, th { border: 1px solid #ccc; padding: .25rem .6rem; text-align: left; }
.result { margin: .8rem 0; }
.db { color: #567; font-size: .85em; }
.snippet { color: #333; }
.err { color: #a00; }
.meta { color: #666; font-size: .9em; }
.track { width: 22rem; position: relative; }
.bar { height: .65em; background: #68a; border-radius: 2px; }
.errbar { background: #a33; }
.wf td { border: none; border-bottom: 1px solid #eee; font-size: .85em; white-space: nowrap; }
</style></head><body>
<h1>metaprobe</h1>
<p class="meta">probabilistic metasearch over {{len .Databases}} Hidden-Web databases
(Liu, Luo, Cho, Chu — ICDE 2004)</p>
{{if .Model.Trained}}<p class="meta">serving model v{{.Model.Version}} ({{.Model.Source}})
{{- if .Model.Refresh}} · {{.Model.Refresh.Refreshes}} online refreshes, {{.Model.Refresh.Rollbacks}} rollbacks{{end}}
· details at <a href="/debug/model">/debug/model</a></p>{{end}}
<form method="GET" action="/">
<input type="text" name="q" value="{{.Query}}" placeholder="breast cancer" autofocus>
k=<input type="number" name="k" value="{{.K}}" min="1" style="width:3rem">
certainty=<input type="number" name="t" value="{{.T}}" min="0" max="1" step="0.05" style="width:4rem">
<button type="submit">Search</button>
</form>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{if .Ran}}{{if .Selection}}
<p class="meta">selected <b>{{range $i, $d := .Selection.Databases}}{{if $i}}, {{end}}{{$d}}{{end}}</b>
with certainty {{printf "%.3f" .Selection.Certainty}} after {{.Selection.Probes}} probes
({{.Elapsed}}{{if not .Selection.Reached}}; requested certainty not reachable{{end}})
{{if .Audited}}· audited correctness {{printf "%.3f" .Realized}}{{end}}</p>
{{range .Items}}
<div class="result">
<div><b>{{.Doc.ID}}</b> <span class="db">{{.Database}} · score {{printf "%.3f" .Score}}</span></div>
<div class="snippet">{{.Snippet}}</div>
</div>
{{else}}<p>No results.</p>{{end}}
{{if .Waterfall}}
<h3>Selection waterfall</h3>
<p class="meta">trace <a href="/debug/spans?trace={{.TraceID}}">{{.TraceID}}</a>
{{- if .Cost}} · {{.Cost.ProbesIssued}} probes, {{.Cost.HedgesWasted}} wasted hedges,
{{.Cost.CacheHits}} cache hits, {{.Cost.BytesFetched}} bytes fetched{{end}}</p>
<table class="wf">{{range .Waterfall}}<tr>
<td style="padding-left:{{printf "%.1f" .Indent}}rem">{{.Name}}{{if .Detail}} <span class="db">{{.Detail}}</span>{{end}}</td>
<td>{{printf "%.1f" .DurationMs}} ms</td>
<td class="track"><div class="bar{{if .Err}} errbar{{end}}" style="margin-left:{{printf "%.2f" .LeftPct}}%;width:{{printf "%.2f" .WidthPct}}%"></div></td>
</tr>{{end}}</table>
{{end}}
{{if .Explain}}
<h3>Why these databases?</h3>
<table><tr><th>database</th><th>estimate r̂</th><th>E[relevancy]</th><th>P(top-k)</th><th>query type</th></tr>
{{range .Explain}}<tr><td>{{.Database}}</td><td>{{printf "%.1f" .Estimate}}</td>
<td>{{printf "%.1f" .ExpectedRelevancy}}</td><td>{{printf "%.3f" .MembershipProb}}</td>
<td>{{.QueryType}}</td></tr>{{end}}
</table>
{{end}}
{{if .Calibration}}{{if .Calibration.Samples}}
<h3>Certainty calibration</h3>
<p class="meta">{{.Calibration.Samples}} audited selections · Brier {{printf "%.3f" .Calibration.Brier}}
· ECE {{printf "%.3f" .Calibration.ECE}} · mean gap {{printf "%+.3f" .Calibration.Gap}}
(observed − predicted; details at <a href="/debug/calibration">/debug/calibration</a>)</p>
<table><tr><th>certainty bin</th><th>selections</th><th>mean predicted</th><th>mean observed</th><th>gap</th></tr>
{{range .Calibration.Bins}}{{if .Count}}<tr><td>{{printf "%.1f–%.1f" .Lo .Hi}}</td><td>{{.Count}}</td>
<td>{{printf "%.3f" .MeanPredicted}}</td><td>{{printf "%.3f" .MeanObserved}}</td>
<td>{{printf "%+.3f" .Gap}}</td></tr>{{end}}{{end}}
</table>
{{end}}{{end}}
{{if .Caches}}
<h3>Result caches</h3>
<table><tr><th>database</th><th>hits</th><th>misses</th><th>hit rate</th></tr>
{{range .Caches}}<tr><td>{{.Database}}</td><td>{{.Hits}}</td><td>{{.Misses}}</td>
<td>{{printf "%.1f%%" .HitRate}}</td></tr>{{end}}
</table>
<p class="meta">full metrics at <a href="/metrics">/metrics</a>; recent selection traces at
<a href="/debug/trace">/debug/trace</a>; span store at <a href="/debug/spans">/debug/spans</a>;
SLO burn rates at <a href="/debug/slo">/debug/slo</a>; profiles at <a href="/debug/pprof/">/debug/pprof</a></p>
{{end}}{{end}}{{end}}
{{if .Runtime}}
<h3>Runtime telemetry</h3>
<table><tr>{{range .Runtime}}<th>{{.Name}}</th>{{end}}</tr>
<tr>{{range .Runtime}}<td>{{.Value}}</td>{{end}}</tr></table>
<p class="meta">continuous profiles at <a href="/debug/profiles">/debug/profiles</a>
(<a href="/debug/profiles?latest=cpu">latest cpu</a>, <a href="/debug/profiles?latest=heap">latest heap</a>);
goroutine dump at <a href="/debug/goroutines">/debug/goroutines</a>;
per-stage selection timing in <a href="/metrics">/metrics</a> (mp_selection_stage_seconds)</p>
{{end}}
</body></html>`
