package main

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// parseGoBenchFile reads `go test -bench -benchmem` output and
// returns one microResult per benchmark name. Lines look like
//
//	BenchmarkSelectAbsolute-8   1220   961482 ns/op   210433 B/op   2531 allocs/op
//
// The -GOMAXPROCS suffix is stripped so baselines compare across
// machines with different core counts, and with -count > 1 each
// benchmark keeps its fastest run (ns/op minimum) — the standard way
// to reduce scheduler noise; allocs/op and B/op are deterministic and
// identical across runs anyway. Non-benchmark lines (ok, PASS, goos:
// headers) are ignored.
func parseGoBenchFile(path string) (map[string]microResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]microResult)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, res, ok := parseGoBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// parseGoBenchLine parses one benchmark result line; ok is false for
// anything that is not one.
func parseGoBenchLine(line string) (string, microResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", microResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// fields[1] is the iteration count; the rest are "value unit" pairs.
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", microResult{}, false
	}
	var res microResult
	var sawNs bool
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", microResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp, sawNs = v, true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	if !sawNs {
		return "", microResult{}, false
	}
	return name, res, true
}
