package main

import (
	"fmt"
	"log/slog"
	"testing"
	"time"

	"metaprobe/internal/core"
	"metaprobe/internal/experiments"
)

// runMicro measures the algorithmic hot paths in-process with
// testing.Benchmark (callable from a main program): a full greedy
// APro selection, one online ObserveProbe refinement, and the RD
// convolution that builds a selection's initial state. The
// environment is fixed (health preset, small scale, fixed seed)
// independent of the workload flags, so micro numbers are comparable
// across runs regardless of how the workload tiers were configured.
func runMicro(cfg benchConfig, log *slog.Logger) (map[string]microResult, error) {
	ecfg := experiments.SmallConfig()
	ecfg.Scale = 0.008
	ecfg.Train2, ecfg.Train3 = 80, 80
	ecfg.Test2, ecfg.Test3 = 40, 40
	log.Info("building micro environment", "scale", ecfg.Scale, "seed", ecfg.Seed)
	env, err := experiments.Setup(ecfg)
	if err != nil {
		return nil, err
	}
	k, t := 3, 0.9

	// Precompute per-query probe answers so the probe closure inside
	// the select benchmark measures selection compute, not index
	// lookups with a cold cache.
	qs := env.Test
	if len(qs) == 0 {
		return nil, fmt.Errorf("micro environment has no test queries")
	}
	actuals := make([][]float64, len(qs))
	for qi, q := range qs {
		actuals[qi] = make([]float64, env.Testbed.Len())
		for i := 0; i < env.Testbed.Len(); i++ {
			v, err := env.Rel.Probe(env.Testbed.DB(i), q.String())
			if err != nil {
				return nil, err
			}
			actuals[qi][i] = v
		}
	}

	out := make(map[string]microResult)
	record := func(name string, fn func(b *testing.B)) {
		log.Info("micro benchmark", "name", name)
		r := testing.Benchmark(fn)
		out[name] = microResult{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		log.Info("micro benchmark done", "name", name, "iters", r.N,
			"ns_per_op", r.NsPerOp(), "allocs_per_op", r.AllocsPerOp())
	}

	// Full selection: build the per-query state and run greedy APro to
	// the certainty threshold, probes answered from the precomputed
	// table. This is the end-to-end algorithmic cost of one query.
	record("select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qi := i % len(qs)
			q := qs[qi]
			sel := env.Selection(q, core.Absolute, k)
			probe := func(db int) (float64, error) { return actuals[qi][db], nil }
			if _, err := core.APro(sel, probe, &core.Greedy{}, t, -1); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Online refinement: fold one observed (estimate, actual) pair
	// back into the model's error distributions.
	record("observe_probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qi := i % len(qs)
			q := qs[qi]
			db := i % env.Testbed.Len()
			if err := env.Model.ObserveProbe(db, q.String(), q.NumTerms(), actuals[qi][db]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// RD convolution: derive every database's relevancy distribution
	// for a fresh query (estimate → classify → convolve the ED) —
	// the rd_convolve stage in isolation. Kept as the from-scratch
	// comparator for new_selection below.
	record("rd_convolve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if sel := env.Model.NewSelection(q.String(), q.NumTerms(), core.Absolute, k); sel == nil {
				b.Fatal("nil selection")
			}
		}
	})

	// Table-lookup selection build: the same per-query state served
	// from a ModelVersion's precomputed RD table into a recycled
	// shell — the refactored serving path.
	record("new_selection", func(b *testing.B) {
		ver := core.NewModelVersion(env.Model, "bench", time.Now())
		sel := &core.Selection{}
		for i := 0; i < 3; i++ {
			q := qs[i%len(qs)]
			ver.FillSelection(sel, q.String(), q.NumTerms(), core.Absolute, k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			if ver.FillSelection(sel, q.String(), q.NumTerms(), core.Absolute, k) == nil {
				b.Fatal("nil selection")
			}
		}
	})
	return out, nil
}
