// Command bench is the continuous benchmark harness of metaprobe: it
// runs standardized selection workloads over the corpus presets and
// writes a machine-readable BENCH_<label>.json so the repository keeps
// a performance *and* accuracy trajectory across changes — selection
// latency percentiles (from the shared obs histogram, the same
// estimator /metrics exposes), probes per query, achieved correctness
// against a freshly built golden standard, and a calibration summary
// of the reported certainty.
//
// Usage:
//
//	go run ./cmd/bench -label nightly [-out results] [-preset health|newsgroup|all]
//	    [-scale 0.02] [-queries 200] [-k 3] [-t 0.9] [-seed 2004]
//	go run ./cmd/bench -smoke -label ci    # CI-sized run, health preset only
//
// Each preset runs nine selection tiers over one workload: baseline
// (term-independence top-k), rd (probabilistic, no probing), apro
// (adaptive probing to the certainty threshold), two context-aware
// tiers on a latency-injected copy of the testbed — apro-ctx-m1
// (sequential, through the probe-execution engine) and apro-ctx-m2
// (speculation 2, two candidates probed concurrently per round) — two
// service tiers that measure the metaprobed daemon path (service:
// waves of identical concurrent requests through the batch coalescer
// at idle limits, answers asserted identical to the direct engine;
// service-overload: the same traffic under starved admission limits,
// recording shed counts by reason and availability), and
// two drift tiers that grow one database ~20× mid-run and measure
// RD-based selection against a rebuilt golden standard, first with the
// stale model served as-is (drift-stale), then after the online
// refresher has detected the drift and hot-swapped retrained error
// distributions (drift-refreshed). The report therefore tracks the
// wall-clock effect of speculative probing, probes-in-flight and
// degraded-selection counts, and what the closed drift loop buys back
// in correctness.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"metaprobe"
	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/eval"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/prof"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

// benchConfig parameterizes one harness run.
type benchConfig struct {
	label       string
	outDir      string
	preset      string
	smoke       bool
	scale       float64
	seed        int64
	trainN      int
	queries     int
	k           int
	t           float64
	probeDelay  time.Duration
	micro       bool
	gobench     string
	baseline    string
	compareOnly bool
	profOut     string
}

// latencySummary reports selection latency in milliseconds.
type latencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
}

// workloadResult is one (preset, tier) measurement.
type workloadResult struct {
	Preset         string                   `json:"preset"`
	Name           string                   `json:"name"`
	Queries        int                      `json:"queries"`
	LatencyMs      latencySummary           `json:"latency_ms"`
	ProbesPerQuery float64                  `json:"probes_per_query"`
	AvgCorA        float64                  `json:"avg_cor_a"`
	AvgCorP        float64                  `json:"avg_cor_p"`
	ReachedFrac    float64                  `json:"reached_frac"`
	Calibration    *obs.CalibrationSnapshot `json:"calibration,omitempty"`
	// InflightP99 is the p99 of probes in flight sampled at each probe's
	// slot acquisition (context tiers only).
	InflightP99 float64 `json:"probe_inflight_p99,omitempty"`
	// DegradedSelections counts selections that excluded a backend
	// (context tiers only; expected 0 on a healthy testbed).
	DegradedSelections int64 `json:"degraded_selections,omitempty"`
	// SpeedupVsM1 is the m1 tier's mean latency divided by this tier's
	// (set on apro-ctx-m2 only): > 1 means speculation bought wall-clock.
	SpeedupVsM1 float64 `json:"speedup_vs_m1,omitempty"`
	// SpanOverheadFrac is (traced − untraced)/untraced mean latency of
	// this tier re-measured with span tracing enabled (apro-ctx-m2
	// only). The injected probe delay dominates the tier, so values
	// should sit well within ±5% — CI asserts that bound.
	SpanOverheadFrac *float64 `json:"span_overhead_frac,omitempty"`
	// Refreshes counts accepted online model refreshes before the
	// measurement (drift-refreshed tier only).
	Refreshes int64 `json:"refreshes,omitempty"`
	// ProfOverheadFrac is (profiled − unprofiled)/unprofiled mean
	// latency of this tier re-measured with the continuous profiler
	// (CPU + heap captures) and the runtime-metrics sampler active
	// (apro-ctx-m2 only). CI asserts ≤ 5%; the injected probe delay
	// dominates the tier, so the profiler's CPU duty cycle should
	// vanish in the mean.
	ProfOverheadFrac *float64 `json:"prof_overhead_frac,omitempty"`
	// Stages breaks the tier's selection time down by hot-path stage
	// (context tiers only), from the mp_selection_stage_* histograms.
	Stages map[string]stageSummary `json:"stages,omitempty"`
	// CoalesceRatio is requests per probe trajectory on the daemon path
	// (service tiers only): > 1 means the batch coalescer merged
	// concurrent identical requests.
	CoalesceRatio float64 `json:"coalesce_ratio,omitempty"`
	// MeanFanout is the average number of requests served per
	// trajectory, as reported on each response (service tiers only).
	MeanFanout float64 `json:"mean_fanout,omitempty"`
	// TierCounts counts answered requests by serving tier — full,
	// rd_only, rhat_only (service tiers only).
	TierCounts map[string]int64 `json:"tier_counts,omitempty"`
	// ShedCounts counts degraded requests by shed reason — overload,
	// tenant_rate (service tiers only; the idle tier must be empty).
	ShedCounts map[string]int64 `json:"shed_counts,omitempty"`
	// Availability is answered/requests (service tiers only). Shedding
	// degrades the tier but still answers, so this must stay 1.0 even
	// on the overload tier.
	Availability float64 `json:"availability,omitempty"`
	// MatchesDirect reports whether every full-tier daemon answer was
	// identical to the direct engine's (idle service tier only).
	MatchesDirect *bool `json:"matches_direct,omitempty"`
}

// stageSummary is one hot-path stage's aggregate over a tier.
type stageSummary struct {
	// Count is the number of selections that recorded the stage.
	Count int64 `json:"count"`
	// TotalSeconds is wall time summed over all selections.
	TotalSeconds float64 `json:"total_seconds"`
	// AllocsP50 is the median per-selection heap objects allocated
	// while the stage ran.
	AllocsP50 float64 `json:"allocs_p50"`
}

// benchReport is the BENCH_<label>.json document.
type benchReport struct {
	Label     string           `json:"label"`
	Time      time.Time        `json:"time"`
	Smoke     bool             `json:"smoke"`
	GoVersion string           `json:"go_version"`
	Config    benchConfigJSON  `json:"config"`
	Workloads []workloadResult `json:"workloads"`
	// Micro holds in-process testing.Benchmark measurements of the
	// algorithmic hot paths (-micro).
	Micro map[string]microResult `json:"micro,omitempty"`
	// GoBench holds measurements parsed from `go test -bench
	// -benchmem` output (-gobench FILE); with -count > 1 each
	// benchmark keeps its fastest run.
	GoBench map[string]microResult `json:"gobench,omitempty"`
}

// microResult is one microbenchmark measurement. AllocsPerOp and
// BytesPerOp are machine-independent — the primary regression gates;
// NsPerOp compares with a generous tolerance to absorb runner
// variance.
type microResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// benchConfigJSON is the serialized slice of benchConfig.
type benchConfigJSON struct {
	Preset  string  `json:"preset"`
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	TrainN  int     `json:"train_per_type"`
	Queries int     `json:"queries"`
	K       int     `json:"k"`
	T       float64 `json:"t"`
}

func main() {
	cfg := benchConfig{}
	flag.StringVar(&cfg.label, "label", "local", "run label; output file is BENCH_<label>.json")
	flag.StringVar(&cfg.outDir, "out", ".", "output directory")
	flag.StringVar(&cfg.preset, "preset", "health", "corpus preset: health, newsgroup or all")
	flag.BoolVar(&cfg.smoke, "smoke", false, "CI-sized run: tiny corpus, short workload, health preset only")
	flag.Float64Var(&cfg.scale, "scale", 0.02, "testbed size multiplier")
	flag.Int64Var(&cfg.seed, "seed", 2004, "random seed")
	flag.IntVar(&cfg.trainN, "train", 300, "training queries per term count")
	flag.IntVar(&cfg.queries, "queries", 200, "workload queries (split between 2- and 3-term)")
	flag.IntVar(&cfg.k, "k", 3, "databases to select")
	flag.Float64Var(&cfg.t, "t", 0.9, "certainty threshold for the apro tier")
	flag.DurationVar(&cfg.probeDelay, "probe-delay", 25*time.Millisecond, "injected per-probe latency for the context tiers")
	flag.BoolVar(&cfg.micro, "micro", false, "run in-process microbenchmarks (Select, ObserveProbe, RD convolution, table-lookup selection build) into the report's micro section")
	flag.StringVar(&cfg.gobench, "gobench", "", "parse `go test -bench -benchmem` output from this file into the report's gobench section")
	flag.StringVar(&cfg.baseline, "baseline", "", "compare the report against this baseline BENCH_<label>.json and exit 1 on regression")
	flag.BoolVar(&cfg.compareOnly, "compare-only", false, "skip the workload tiers; only run -micro / parse -gobench and diff against -baseline")
	flag.StringVar(&cfg.profOut, "profout", "", "dump pprof blobs captured during the prof-overhead tier into this directory")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	path, err := runBench(cfg, log)
	if err != nil {
		log.Error("bench failed", "err", err)
		os.Exit(1)
	}
	if path != "" {
		fmt.Println(path)
	}
}

// runBench executes the configured workloads and writes the report,
// returning the report path.
func runBench(cfg benchConfig, log *slog.Logger) (string, error) {
	if cfg.smoke {
		// Small enough for a CI job, large enough that correctness and
		// calibration numbers are non-degenerate.
		cfg.preset = "health"
		cfg.scale = 0.006
		cfg.trainN = 80
		cfg.queries = 40
	}
	presets := []string{cfg.preset}
	if cfg.preset == "all" {
		presets = []string{"health", "newsgroup"}
	}
	rep := benchReport{
		Label:     cfg.label,
		Time:      time.Now().UTC(),
		Smoke:     cfg.smoke,
		GoVersion: runtime.Version(),
		Config: benchConfigJSON{
			Preset: cfg.preset, Scale: cfg.scale, Seed: cfg.seed,
			TrainN: cfg.trainN, Queries: cfg.queries, K: cfg.k, T: cfg.t,
		},
	}
	if !cfg.compareOnly {
		for _, preset := range presets {
			results, err := runPreset(preset, cfg, log)
			if err != nil {
				return "", fmt.Errorf("bench: preset %s: %w", preset, err)
			}
			rep.Workloads = append(rep.Workloads, results...)
		}
	}
	if cfg.micro {
		micro, err := runMicro(cfg, log)
		if err != nil {
			return "", fmt.Errorf("bench: micro: %w", err)
		}
		rep.Micro = micro
	}
	if cfg.gobench != "" {
		gb, err := parseGoBenchFile(cfg.gobench)
		if err != nil {
			return "", fmt.Errorf("bench: gobench: %w", err)
		}
		if len(gb) == 0 {
			return "", fmt.Errorf("bench: gobench: no benchmark lines in %s", cfg.gobench)
		}
		rep.GoBench = gb
	}
	path := filepath.Join(cfg.outDir, "BENCH_"+cfg.label+".json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	log.Info("report written", "path", path, "workloads", len(rep.Workloads))
	if cfg.baseline != "" {
		if err := diffAgainstBaseline(rep, cfg.baseline, os.Stdout); err != nil {
			return "", err
		}
	}
	return path, nil
}

// presetEnv is a built-and-trained benchmark environment.
type presetEnv struct {
	ms       *metaprobe.Metasearcher
	tb       *hidden.Testbed
	world    *corpus.World
	specs    []corpus.DatabaseSpec
	workload []queries.Query
	golden   []eval.Golden
}

// buildPreset assembles the named corpus preset: testbed, summaries,
// trained metasearcher, workload queries and their golden standard.
func buildPreset(preset string, cfg benchConfig, log *slog.Logger) (*presetEnv, error) {
	var world *corpus.World
	var specs []corpus.DatabaseSpec
	switch preset {
	case "health":
		world = corpus.HealthWorld()
		specs = corpus.HealthTestbed(cfg.scale)
	case "newsgroup":
		world = corpus.NewsgroupWorld(cfg.seed)
		specs = corpus.NewsgroupTestbed(world, cfg.scale)
	default:
		return nil, fmt.Errorf("unknown preset %q (want health, newsgroup or all)", preset)
	}
	log.Info("building testbed", "preset", preset, "databases", len(specs), "scale", cfg.scale)
	tb, err := hidden.BuildTestbed(world, specs, cfg.seed)
	if err != nil {
		return nil, err
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		return nil, err
	}
	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		return nil, err
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		return nil, err
	}
	train, test, err := gen.TrainTest(stats.NewRNG(cfg.seed).Fork(1),
		cfg.trainN, cfg.trainN, (cfg.queries+1)/2, cfg.queries/2)
	if err != nil {
		return nil, err
	}
	trainStrs := make([]string, len(train))
	for i, q := range train {
		trainStrs[i] = q.String()
	}
	log.Info("training", "preset", preset, "queries", len(trainStrs))
	if err := ms.Train(trainStrs); err != nil {
		return nil, err
	}
	log.Info("building golden standard", "preset", preset, "queries", len(test))
	golden, err := eval.BuildGolden(tb, metaprobe.DocFrequencyRelevancy(), test)
	if err != nil {
		return nil, err
	}
	return &presetEnv{ms: ms, tb: tb, world: world, specs: specs, workload: test, golden: golden}, nil
}

// answer is one workload query's outcome, scored later against golden.
type answer struct {
	set       []int
	certainty float64
	probes    int
	reached   bool
}

// runPreset measures the three selection tiers on one preset.
func runPreset(preset string, cfg benchConfig, log *slog.Logger) ([]workloadResult, error) {
	env, err := buildPreset(preset, cfg, log)
	if err != nil {
		return nil, err
	}
	tiers := []struct {
		name       string
		calibrated bool
		probing    bool
		run        func(q string) (answer, error)
	}{
		{"baseline", false, false, func(q string) (answer, error) {
			names := env.ms.SelectBaseline(q, cfg.k)
			return answer{set: env.indices(names), reached: true}, nil
		}},
		{"rd", true, false, func(q string) (answer, error) {
			names, e, err := env.ms.Select(q, cfg.k, metaprobe.Absolute)
			if err != nil {
				return answer{}, err
			}
			return answer{set: env.indices(names), certainty: e, reached: true}, nil
		}},
		{"apro", true, true, func(q string) (answer, error) {
			res, err := env.ms.SelectWithCertainty(q, cfg.k, metaprobe.Absolute, cfg.t, -1)
			if err != nil {
				return answer{}, err
			}
			return answer{set: env.indices(res.Databases), certainty: res.Certainty,
				probes: res.Probes, reached: res.Reached}, nil
		}},
	}
	var out []workloadResult
	for _, tier := range tiers {
		log.Info("running workload", "preset", preset, "tier", tier.name, "queries", len(env.workload))
		res, err := env.measure(preset, tier.name, tier.calibrated, cfg, tier.run)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	ctxResults, err := runContextTiers(preset, cfg, env, log)
	if err != nil {
		return nil, err
	}
	out = append(out, ctxResults...)
	svcResults, err := runServiceTiers(preset, cfg, env, log)
	if err != nil {
		return nil, err
	}
	out = append(out, svcResults...)
	// The drift tiers mutate the testbed in place, so they must run
	// after every other tier.
	driftResults, err := runDriftTiers(preset, cfg, env, log)
	if err != nil {
		return nil, err
	}
	return append(out, driftResults...), nil
}

// runContextTiers measures the context-aware engine on a latency-
// injected copy of the testbed, once sequential (m1) and once with
// speculation 2 (m2). The trained model is reused via a temp file so
// the slow databases are only ever probed, never re-trained.
func runContextTiers(preset string, cfg benchConfig, env *presetEnv, log *slog.Logger) ([]workloadResult, error) {
	tmp, err := os.CreateTemp("", "metaprobe-bench-model-*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	if err := env.ms.SaveModel(tmp.Name()); err != nil {
		return nil, err
	}
	var out []workloadResult
	var m1Mean float64
	ctxRun := func(cenv *presetEnv) func(q string) (answer, error) {
		return func(q string) (answer, error) {
			res, err := cenv.ms.SelectWithCertaintyContext(context.Background(), q, cfg.k, metaprobe.Absolute, cfg.t, -1)
			if err != nil {
				return answer{}, err
			}
			return answer{set: cenv.indices(res.Databases), certainty: res.Certainty,
				probes: res.Probes, reached: res.Reached}, nil
		}
	}
	for _, m := range []int{1, 2} {
		name := fmt.Sprintf("apro-ctx-m%d", m)
		cenv, reg, err := buildCtxEnv(env, cfg, tmp.Name(), m, false)
		if err != nil {
			return nil, err
		}
		log.Info("running workload", "preset", preset, "tier", name,
			"queries", len(env.workload), "probe_delay", cfg.probeDelay)
		res, err := cenv.measure(preset, name, true, cfg, ctxRun(cenv))
		if err != nil {
			return nil, err
		}
		res.InflightP99 = reg.Histogram("mp_probe_inflight_at_acquire", nil).Quantile(0.99)
		res.DegradedSelections = reg.Counter("mp_selections_degraded_total", nil).Value()
		res.Stages = stagesFrom(reg)
		if m == 1 {
			m1Mean = res.LatencyMs.Mean
		} else if res.LatencyMs.Mean > 0 {
			res.SpeedupVsM1 = m1Mean / res.LatencyMs.Mean
			// Re-measure the same tier with span tracing on to bound the
			// tracer's cost. Every selection records a full span tree
			// (root, probes, attempts, db.search children), so the delta
			// against the run above is the tracing overhead; the injected
			// probe delay dominates, so it should vanish in the mean.
			tenv, _, err := buildCtxEnv(env, cfg, tmp.Name(), m, true)
			if err != nil {
				return nil, err
			}
			log.Info("running workload", "preset", preset, "tier", name+"-traced",
				"queries", len(env.workload), "probe_delay", cfg.probeDelay)
			traced, err := tenv.measure(preset, name+"-traced", true, cfg, ctxRun(tenv))
			if err != nil {
				return nil, err
			}
			frac := (traced.LatencyMs.Mean - res.LatencyMs.Mean) / res.LatencyMs.Mean
			res.SpanOverheadFrac = &frac
			// Re-measure once more with the continuous profiler and the
			// runtime-metrics sampler live, to bound the performance-
			// observability layer's cost the same way. The captor's CPU
			// duty cycle (200ms of profiling per second) is deliberately
			// harsher than a production Interval, so the asserted ≤ 5%
			// budget holds margin.
			pfrac, err := profOverheadTier(preset, cfg, env, tmp.Name(), m, res.LatencyMs.Mean, ctxRun, log)
			if err != nil {
				return nil, err
			}
			res.ProfOverheadFrac = &pfrac
		}
		out = append(out, res)
	}
	return out, nil
}

// profOverheadTier re-measures the context tier with a running
// profile captor and runtime sampler bound to the tier's registry and
// returns the fractional mean-latency overhead versus baseMean. With
// -profout set, the captured pprof blobs are dumped for artifact
// upload.
func profOverheadTier(preset string, cfg benchConfig, env *presetEnv, modelPath string, m int, baseMean float64, ctxRun func(*presetEnv) func(string) (answer, error), log *slog.Logger) (float64, error) {
	penv, preg, err := buildCtxEnv(env, cfg, modelPath, m, false)
	if err != nil {
		return 0, err
	}
	captor, err := prof.New(prof.Config{
		Interval:    time.Second,
		CPUDuration: 200 * time.Millisecond,
		Capacity:    16,
		Metrics:     preg,
	})
	if err != nil {
		return 0, err
	}
	sampler := prof.NewSampler(prof.SamplerConfig{Interval: 200 * time.Millisecond, Metrics: preg})
	name := fmt.Sprintf("apro-ctx-m%d-profiled", m)
	log.Info("running workload", "preset", preset, "tier", name,
		"queries", len(env.workload), "probe_delay", cfg.probeDelay)
	captor.Start(context.Background())
	sampler.Start(context.Background())
	profiled, err := penv.measure(preset, name, true, cfg, ctxRun(penv))
	captor.Stop()
	sampler.Stop()
	if err != nil {
		return 0, err
	}
	if cfg.profOut != "" {
		if err := dumpProfiles(captor, cfg.profOut); err != nil {
			return 0, err
		}
	}
	caps := captor.List()
	log.Info("prof overhead tier done", "captures", len(caps),
		"goroutines", sampler.Snapshot()["mp_runtime_goroutines"])
	if len(caps) == 0 {
		return 0, fmt.Errorf("prof-overhead tier recorded no profile captures")
	}
	if baseMean <= 0 {
		return 0, fmt.Errorf("prof-overhead tier has no baseline mean")
	}
	return (profiled.LatencyMs.Mean - baseMean) / baseMean, nil
}

// dumpProfiles writes every retained capture as <kind>-<id>.pb.gz
// under dir (created if missing), so CI can upload them as artifacts.
func dumpProfiles(c *prof.Captor, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, cp := range c.List() {
		name := filepath.Join(dir, fmt.Sprintf("%s-%d.pb.gz", cp.Kind, cp.ID))
		if err := os.WriteFile(name, cp.Blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// stagesFrom summarizes the mp_selection_stage_* histograms a context
// tier filled in its private registry.
func stagesFrom(reg *metaprobe.Metrics) map[string]stageSummary {
	out := make(map[string]stageSummary)
	for _, stage := range []string{core.StageRDConvolve, core.StageECorDP, core.StageRank, core.StageProbe} {
		lbl := obs.Labels{"stage": stage}
		secs := reg.Histogram("mp_selection_stage_seconds", lbl)
		if secs.Count() == 0 {
			continue
		}
		out[stage] = stageSummary{
			Count:        secs.Count(),
			TotalSeconds: secs.Sum(),
			AllocsP50:    reg.Histogram("mp_selection_stage_allocs", lbl).Quantile(0.5),
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// runDriftTiers measures what model staleness costs and what the
// closed drift loop buys back. One database grows to ~20× its size
// with documents from its own spec — same topic profile, ten times the
// volume — the golden standard is rebuilt over the drifted corpus, and
// RD-based selection (no probing, so the numbers isolate pure model
// quality) is measured twice: with the stale model served as-is
// (drift-stale), and after the online refresher has detected the drift
// and hot-swapped retrained error distributions (drift-refreshed).
//
// The drifted database is chosen so the drift is visible to selection:
// among databases large enough that the growth makes them the biggest
// collection, the one appearing in the fewest pre-drift golden top-k
// sets. Growing a database that already tops every answer set changes
// nothing a selector can get wrong; growing one that was mostly absent
// moves it INTO the true top-k, which the stale model misses and the
// refreshed model recovers.
func runDriftTiers(preset string, cfg benchConfig, env *presetEnv, log *slog.Logger) ([]workloadResult, error) {
	tmp, err := os.CreateTemp("", "metaprobe-bench-drift-model-*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	if err := env.ms.SaveModel(tmp.Name()); err != nil {
		return nil, err
	}

	// Pick the drift database (see the function comment): least golden
	// top-k membership among those that ×10 growth would make dominant.
	maxSize := 0
	for i := 0; i < env.tb.Len(); i++ {
		if l, ok := env.tb.DB(i).(*hidden.Local); ok && l.Size() > maxSize {
			maxSize = l.Size()
		}
	}
	membership := make([]int, env.tb.Len())
	for qi := range env.golden {
		for _, i := range env.golden[qi].TopK(cfg.k) {
			membership[i]++
		}
	}
	idx := -1
	for i := 0; i < env.tb.Len(); i++ {
		l, ok := env.tb.DB(i).(*hidden.Local)
		if !ok || l.Size()*20 <= maxSize {
			continue
		}
		if idx < 0 || membership[i] < membership[idx] {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("bench: no database large enough to drift in preset %s", preset)
	}
	// Grow it in place; summaries and the saved model now describe a
	// collection that no longer exists.
	local := env.tb.DB(idx).(*hidden.Local)
	spec := env.specs[idx]
	spec.Name += "-grown"
	spec.NumDocs = local.Size() * 19
	log.Info("injecting corpus drift", "preset", preset, "db", local.Name(),
		"docs_before", local.Size(), "docs_added", spec.NumDocs,
		"golden_topk_hits_before", membership[idx], "queries", len(env.workload))
	docs, err := env.world.Generate(spec, stats.NewRNG(cfg.seed).Fork(9))
	if err != nil {
		return nil, err
	}
	tok := textindex.DefaultTokenizer()
	for _, d := range docs {
		terms := make([]string, 0, len(d.Terms))
		for _, term := range d.Terms {
			terms = append(terms, tok.Tokenize(term)...)
		}
		local.Index().AddTerms(d.ID, terms)
		local.StoreText(d.ID, d.Text())
	}
	golden, err := eval.BuildGolden(env.tb, metaprobe.DocFrequencyRelevancy(), env.workload)
	if err != nil {
		return nil, err
	}

	dbs := make([]metaprobe.Database, env.tb.Len())
	for i := range dbs {
		dbs[i] = env.tb.DB(i)
	}
	rdRun := func(ms *metaprobe.Metasearcher) func(q string) (answer, error) {
		return func(q string) (answer, error) {
			names, e, err := ms.Select(q, cfg.k, metaprobe.Absolute)
			if err != nil {
				return answer{}, err
			}
			return answer{set: indicesIn(env.tb, names), certainty: e, reached: true}, nil
		}
	}

	// Tier 1: the stale model served unchanged over the drifted corpus.
	staleMs, err := metaprobe.NewFromModel(dbs, tmp.Name(), nil)
	if err != nil {
		return nil, err
	}
	denv := &presetEnv{ms: staleMs, tb: env.tb, workload: env.workload, golden: golden}
	log.Info("running workload", "preset", preset, "tier", "drift-stale", "queries", len(env.workload))
	stale, err := denv.measure(preset, "drift-stale", true, cfg, rdRun(staleMs))
	if err != nil {
		return nil, err
	}

	// Tier 2: the same stale model, but with the drift loop closed —
	// detection alerts the background refresher, which re-probes the
	// drifted keys and hot-swaps retrained EDs before measurement.
	gen, err := queries.NewGenerator(env.world, queries.Config{})
	if err != nil {
		return nil, err
	}
	pool, err := gen.Pool(stats.NewRNG(cfg.seed).Fork(10), 400, 400)
	if err != nil {
		return nil, err
	}
	source := func(numTerms, n int) []string {
		var out []string
		for _, q := range pool {
			if q.NumTerms() == numTerms {
				out = append(out, q.String())
				if len(out) >= n {
					break
				}
			}
		}
		return out
	}
	// 32-sample windows arm slower than the drifted database's busiest
	// key but give the KS test enough resolution that the injected
	// drift's p-value sits orders of magnitude below alpha; testing
	// every 8 observations keeps the sparser 3-term keys alerting
	// within a few passes. False alarms on undrifted databases are
	// statistically inevitable at this test cadence, but the hour-long
	// refresh cooldown below bounds each one to a single no-op commit.
	refreshedMs, err := metaprobe.NewFromModel(dbs, tmp.Name(), &metaprobe.Config{
		Drift: &metaprobe.DriftConfig{WindowSize: 32, MinSamples: 32, Interval: 8},
		Refresh: &metaprobe.RefreshConfig{
			ProbeBudget: 128, MinProbes: 12,
			// Longer than the whole drive loop: every alerted key
			// commits exactly once, so the measured model is the same
			// regardless of how alert timing interleaves with passes.
			Cooldown: time.Hour,
			Queries:  source,
			Logger:   log,
		},
	})
	if err != nil {
		return nil, err
	}
	defer refreshedMs.Close()
	// Drive the workload at certainty 1.0: the threshold is only reached
	// once every database has been probed, so every database — including
	// the drifted one, whose stale estimate is too low for any cheaper
	// threshold to ever probe it — feeds the drift detector. Replay
	// until the drifted database's first refresh commits, then a few
	// more passes so its remaining (query type, band) keys — the drift
	// hits 2- and 3-term, low- and zero-band estimates alike — alert and
	// commit too (rolled-back attempts retry after the cooldown).
	pass := func() error {
		for _, q := range env.workload {
			if _, err := refreshedMs.SelectWithCertainty(q.String(), cfg.k, metaprobe.Absolute, 1.0, -1); err != nil {
				return err
			}
		}
		return nil
	}
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) && refreshedMs.ModelInfo().RefreshedAt[local.Name()].IsZero() {
		if err := pass(); err != nil {
			return nil, err
		}
	}
	// Then drive to quiescence: with the hour-long cooldown each alerted
	// key commits once, so once six consecutive passes commit nothing
	// new, every key the detector can flag — the drifted database's
	// sparser 3-term keys arm their 32-sample windows slowly — has been
	// refreshed.
	deadline = time.Now().Add(120 * time.Second)
	for stable := 0; stable < 6 && time.Now().Before(deadline); {
		before := refreshedMs.RefreshStats().Refreshes
		if err := pass(); err != nil {
			return nil, err
		}
		if refreshedMs.RefreshStats().Refreshes == before {
			stable++
		} else {
			stable = 0
		}
	}
	st := refreshedMs.RefreshStats()
	info := refreshedMs.ModelInfo()
	log.Info("drift loop closed", "preset", preset, "db", local.Name(),
		"refreshes", st.Refreshes, "rollbacks", st.Rollbacks,
		"refresh_probes", st.ProbesSpent, "model_version", info.Version)
	denv.ms = refreshedMs
	log.Info("running workload", "preset", preset, "tier", "drift-refreshed", "queries", len(env.workload))
	refreshed, err := denv.measure(preset, "drift-refreshed", true, cfg, rdRun(refreshedMs))
	if err != nil {
		return nil, err
	}
	refreshed.Refreshes = st.Refreshes
	return []workloadResult{stale, refreshed}, nil
}

// indicesIn maps database names to sorted testbed indices.
func indicesIn(tb *hidden.Testbed, names []string) []int {
	e := presetEnv{tb: tb}
	return e.indices(names)
}

// buildCtxEnv reloads the trained model over a latency-injected view
// of the testbed and configures the probe-execution engine with the
// given speculation width. With traced set, every selection records a
// full span tree into a fresh tracer (the overhead-measurement
// configuration).
func buildCtxEnv(env *presetEnv, cfg benchConfig, modelPath string, m int, traced bool) (*presetEnv, *metaprobe.Metrics, error) {
	dbs := make([]metaprobe.Database, env.tb.Len())
	for i := range dbs {
		dbs[i] = hidden.NewLatency(env.tb.DB(i), cfg.probeDelay)
	}
	reg := metaprobe.NewMetrics()
	obs.RegisterBuildInfo(reg, "bench", strconv.Itoa(core.FormatVersion))
	c := &metaprobe.Config{
		Speculation: m,
		Metrics:     reg,
	}
	if traced {
		c.Spans = metaprobe.NewSpanTracer(0)
		c.Spans.Bind(reg)
	}
	ms, err := metaprobe.NewFromModel(dbs, modelPath, c)
	if err != nil {
		return nil, nil, err
	}
	return &presetEnv{ms: ms, tb: env.tb, workload: env.workload, golden: env.golden}, reg, nil
}

// indices maps database names back to testbed indices (sorted).
func (e *presetEnv) indices(names []string) []int {
	out := make([]int, 0, len(names))
	for _, n := range names {
		if i := e.tb.IndexOf(n); i >= 0 {
			out = append(out, i)
		}
	}
	// Selection results come back in testbed order already; keep the
	// contract explicit for CorA's sorted-set comparison.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// measure replays the workload through one tier, collecting latency
// quantiles (shared obs histogram), probe counts, correctness against
// the golden standard, and — for certainty-reporting tiers — the
// calibration of the reported certainty.
func (e *presetEnv) measure(preset, name string, calibrated bool, cfg benchConfig, run func(q string) (answer, error)) (workloadResult, error) {
	hist := obs.NewHistogram()
	cal := obs.NewCalibration(0)
	res := workloadResult{Preset: preset, Name: name, Queries: len(e.workload)}
	var probes, corA, corP, reached float64
	for qi, q := range e.workload {
		start := time.Now()
		a, err := run(q.String())
		if err != nil {
			return workloadResult{}, err
		}
		hist.Observe(time.Since(start).Seconds())
		topk := e.golden[qi].TopK(cfg.k)
		ca, cp := eval.CorA(a.set, topk), eval.CorP(a.set, topk)
		corA += ca
		corP += cp
		probes += float64(a.probes)
		if a.reached {
			reached++
		}
		if calibrated {
			cal.Observe(a.certainty, ca)
		}
	}
	n := float64(len(e.workload))
	qs := hist.Quantiles(0.50, 0.90, 0.99)
	res.LatencyMs = latencySummary{
		P50:  qs[0] * 1000,
		P90:  qs[1] * 1000,
		P99:  qs[2] * 1000,
		Mean: hist.Sum() / n * 1000,
	}
	res.ProbesPerQuery = probes / n
	res.AvgCorA = corA / n
	res.AvgCorP = corP / n
	res.ReachedFrac = reached / n
	if calibrated {
		snap := cal.Snapshot()
		res.Calibration = &snap
	}
	return res, nil
}
