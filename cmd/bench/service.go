// Service tiers: measure the metaprobed daemon path — batching,
// admission, and load shedding — against the same workload and golden
// standard as the direct tiers.
//
// Two tiers are produced:
//
//   - "service": an in-process server at idle limits. Every query is
//     fired as a wave of identical concurrent requests, so the batch
//     coalescer has mergeable work. Records the coalesce ratio
//     (requests per probe trajectory), mean fan-out, per-request
//     latency quantiles, and whether the served answers are identical
//     to the direct engine (they must be: the daemon adds transport
//     and batching, not approximation).
//
//   - "service-overload": the same engine behind deliberately tiny
//     admission limits (inflight caps plus a near-zero tenant rate).
//     Most requests are shed to degraded tiers, but every one of them
//     still gets an answer — the tier records shed counts by reason
//     and availability, which CI asserts stays at 100%.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"metaprobe"
	"metaprobe/internal/eval"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/server"
)

// serviceRepeat is the wave width: identical concurrent requests per
// workload query. The coalescer should merge most of each wave.
const serviceRepeat = 4

// runServiceTiers measures the daemon path on a latency-injected view
// of the testbed. Must run before the drift tiers (which mutate the
// testbed in place).
func runServiceTiers(preset string, cfg benchConfig, env *presetEnv, log *slog.Logger) ([]workloadResult, error) {
	tmp, err := os.CreateTemp("", "metaprobe-bench-service-model-*.json")
	if err != nil {
		return nil, err
	}
	tmp.Close()
	defer os.Remove(tmp.Name())
	if err := env.ms.SaveModel(tmp.Name()); err != nil {
		return nil, err
	}
	dbs := make([]metaprobe.Database, env.tb.Len())
	for i := range dbs {
		dbs[i] = hidden.NewLatency(env.tb.DB(i), cfg.probeDelay)
	}
	reg := metaprobe.NewMetrics()
	ms, err := metaprobe.NewFromModel(dbs, tmp.Name(), &metaprobe.Config{Metrics: reg})
	if err != nil {
		return nil, err
	}
	senv := &presetEnv{ms: ms, tb: env.tb, workload: env.workload, golden: env.golden}

	log.Info("running workload", "preset", preset, "tier", "service",
		"queries", len(env.workload), "repeat", serviceRepeat, "probe_delay", cfg.probeDelay)
	idle, err := measureService(preset, "service", cfg, senv, reg, server.Config{Metrics: reg}, log)
	if err != nil {
		return nil, err
	}
	// Stage attribution rides the tenant's shared metrics registry, so
	// the service tier reports where its selection time goes (the
	// rd_convolve lookup cost, the DP, ranking, probes) like the
	// direct tiers do.
	idle.result.Stages = stagesFrom(reg)
	// The daemon must not change answers: replay the workload through
	// the engine directly and require set-and-certainty equality.
	match, err := serviceMatchesDirect(cfg, senv, idle.answers)
	if err != nil {
		return nil, err
	}
	idle.result.MatchesDirect = &match
	if !match {
		return nil, fmt.Errorf("service tier answers diverge from the direct engine")
	}

	overReg := metaprobe.NewMetrics()
	overCfg := server.Config{
		Metrics:      overReg,
		SoftInflight: 1,
		HardInflight: 2,
		TenantRate:   0.001,
		TenantBurst:  1,
	}
	log.Info("running workload", "preset", preset, "tier", "service-overload",
		"queries", len(env.workload), "repeat", serviceRepeat)
	over, err := measureService(preset, "service-overload", cfg, senv, overReg, overCfg, log)
	if err != nil {
		return nil, err
	}
	if shedTotal(over.result.ShedCounts) == 0 {
		return nil, fmt.Errorf("service-overload tier shed nothing under starved limits")
	}
	if over.result.Availability != 1.0 {
		return nil, fmt.Errorf("service-overload availability %.4f, want 1.0 (shedding must degrade, not drop)",
			over.result.Availability)
	}
	return []workloadResult{idle.result, over.result}, nil
}

// serviceRun is one service tier's measurement plus the per-query
// leader answers kept for the direct-equality check.
type serviceRun struct {
	result  workloadResult
	answers []*server.SelectResponse
}

// measureService boots a server over senv.ms with the given config and
// drives the workload in waves of serviceRepeat identical concurrent
// requests. Every response within a wave must be identical — the
// coalescer's fan-out contract — and every request must be answered.
func measureService(preset, name string, cfg benchConfig, senv *presetEnv, reg *metaprobe.Metrics, scfg server.Config, log *slog.Logger) (serviceRun, error) {
	srv := server.New(scfg)
	defer srv.Close()
	if err := srv.AddTenant(server.DefaultTenant, senv.ms); err != nil {
		return serviceRun{}, err
	}
	hist := obs.NewHistogram()
	cal := obs.NewCalibration(0)
	res := workloadResult{Preset: preset, Name: name, Queries: len(senv.workload)}
	res.TierCounts = make(map[string]int64)
	res.ShedCounts = make(map[string]int64)
	answers := make([]*server.SelectResponse, len(senv.workload))
	var probes, corA, corP, reached float64
	var requests, answered, coalesced int64
	var fanoutSum float64
	for qi, q := range senv.workload {
		req := server.SelectRequest{
			Query:     q.String(),
			K:         cfg.k,
			Threshold: cfg.t,
		}
		wave := make([]*server.SelectResponse, serviceRepeat)
		errs := make([]error, serviceRepeat)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < serviceRepeat; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				t0 := time.Now()
				wave[i], errs[i] = srv.Do(context.Background(), req)
				hist.Observe(time.Since(t0).Seconds())
			}(i)
		}
		close(start)
		wg.Wait()
		for i := 0; i < serviceRepeat; i++ {
			requests++
			if errs[i] != nil {
				return serviceRun{}, fmt.Errorf("%s: query %d request %d: %w", name, qi, i, errs[i])
			}
			r := wave[i]
			answered++
			res.TierCounts[r.Tier]++
			if r.ShedReason != "" {
				res.ShedCounts[r.ShedReason]++
			}
			if r.Coalesced {
				coalesced++
			}
			fanoutSum += float64(r.Fanout)
		}
		// Waiters joined to one trajectory must all see the same answer.
		for i := 1; i < serviceRepeat; i++ {
			if wave[i].Tier == wave[0].Tier && !sameAnswer(wave[i], wave[0]) {
				return serviceRun{}, fmt.Errorf("%s: query %d: same-tier wave answers diverge", name, qi)
			}
		}
		lead := wave[0]
		answers[qi] = lead
		set := senv.indices(lead.Databases)
		topk := senv.golden[qi].TopK(cfg.k)
		ca, cp := eval.CorA(set, topk), eval.CorP(set, topk)
		corA += ca
		corP += cp
		probes += float64(lead.Probes)
		if lead.Reached {
			reached++
		}
		cal.Observe(lead.Certainty, ca)
	}
	n := float64(len(senv.workload))
	qs := hist.Quantiles(0.50, 0.90, 0.99)
	res.LatencyMs = latencySummary{
		P50:  qs[0] * 1000,
		P90:  qs[1] * 1000,
		P99:  qs[2] * 1000,
		Mean: hist.Sum() / float64(requests) * 1000,
	}
	res.ProbesPerQuery = probes / n
	res.AvgCorA = corA / n
	res.AvgCorP = corP / n
	res.ReachedFrac = reached / n
	snap := cal.Snapshot()
	res.Calibration = &snap
	runs := reg.Counter("mp_batch_runs_total", obs.Labels{"tenant": server.DefaultTenant}).Value()
	if runs > 0 {
		res.CoalesceRatio = float64(requests) / float64(runs)
	}
	if answered > 0 {
		res.MeanFanout = fanoutSum / float64(answered)
		res.Availability = float64(answered) / float64(requests)
	}
	st := srv.Stats()
	log.Info("service tier done", "tier", name,
		"requests", requests, "runs", runs, "coalesced", coalesced,
		"coalesce_ratio", res.CoalesceRatio,
		"tiers", res.TierCounts, "sheds", res.ShedCounts,
		"peak_inflight", st.PeakInflight)
	return serviceRun{result: res, answers: answers}, nil
}

// serviceMatchesDirect replays the workload through the engine without
// the daemon and reports whether every full-tier service answer is
// identical (database set, certainty, probe count). Degraded answers
// are skipped: they intentionally diverge.
func serviceMatchesDirect(cfg benchConfig, senv *presetEnv, answers []*server.SelectResponse) (bool, error) {
	for qi, q := range senv.workload {
		a := answers[qi]
		if a == nil || a.Tier != "full" {
			continue
		}
		res, err := senv.ms.SelectWithCertaintyContext(context.Background(), q.String(), cfg.k, metaprobe.Absolute, cfg.t, -1)
		if err != nil {
			return false, err
		}
		if a.Certainty != res.Certainty || a.Probes != res.Probes ||
			len(a.Databases) != len(res.Databases) {
			return false, nil
		}
		for i := range a.Databases {
			if a.Databases[i] != res.Databases[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// sameAnswer reports whether two responses carry the same selection.
func sameAnswer(a, b *server.SelectResponse) bool {
	if a.Certainty != b.Certainty || a.Probes != b.Probes || len(a.Databases) != len(b.Databases) {
		return false
	}
	for i := range a.Databases {
		if a.Databases[i] != b.Databases[i] {
			return false
		}
	}
	return true
}

// shedTotal sums shed counts across reasons.
func shedTotal(sheds map[string]int64) int64 {
	var n int64
	for _, v := range sheds {
		n += v
	}
	return n
}
