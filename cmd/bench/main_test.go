package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSmokeRun exercises the full harness in -smoke mode — the exact
// configuration CI runs — and validates the report it writes.
func TestSmokeRun(t *testing.T) {
	dir := t.TempDir()
	// probeDelay mirrors CI's -probe-delay flag (scaled down to keep the
	// test fast): the service tier's coalesce assertion needs leader
	// runs to outlast goroutine-scheduling skew, which pure compute no
	// longer does.
	cfg := benchConfig{label: "smoketest", outDir: dir, smoke: true, seed: 2004, k: 3, t: 0.9,
		probeDelay: 2 * time.Millisecond}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	path, err := runBench(cfg, log)
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	if want := filepath.Join(dir, "BENCH_smoketest.json"); path != want {
		t.Fatalf("report path = %q, want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Label != "smoketest" || !rep.Smoke {
		t.Errorf("report header = label %q smoke %v, want smoketest/true", rep.Label, rep.Smoke)
	}
	if len(rep.Workloads) != 9 {
		t.Fatalf("got %d workloads, want 9 (baseline, rd, apro, apro-ctx-m1, apro-ctx-m2, service, service-overload, drift-stale, drift-refreshed)", len(rep.Workloads))
	}
	names := map[string]workloadResult{}
	for _, w := range rep.Workloads {
		names[w.Name] = w
		if w.Preset != "health" {
			t.Errorf("workload %s preset = %q, want health (smoke forces health)", w.Name, w.Preset)
		}
		if w.Queries <= 0 {
			t.Errorf("workload %s ran %d queries", w.Name, w.Queries)
		}
		if w.LatencyMs.P50 <= 0 || w.LatencyMs.P99 < w.LatencyMs.P50 {
			t.Errorf("workload %s latency p50=%v p99=%v is not sane", w.Name, w.LatencyMs.P50, w.LatencyMs.P99)
		}
		if w.AvgCorA < 0 || w.AvgCorA > 1 || w.AvgCorP < 0 || w.AvgCorP > 1 {
			t.Errorf("workload %s correctness out of [0,1]: CorA=%v CorP=%v", w.Name, w.AvgCorA, w.AvgCorP)
		}
	}
	for _, want := range []string{"baseline", "rd", "apro", "apro-ctx-m1", "apro-ctx-m2",
		"service", "service-overload", "drift-stale", "drift-refreshed"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing workload %q", want)
		}
	}
	if names["baseline"].Calibration != nil {
		t.Error("baseline tier should not report calibration (it has no certainty)")
	}
	for _, tier := range []string{"rd", "apro"} {
		c := names[tier].Calibration
		if c == nil {
			t.Fatalf("%s tier missing calibration summary", tier)
		}
		if c.Samples != int64(names[tier].Queries) {
			t.Errorf("%s calibration samples = %d, want %d", tier, c.Samples, names[tier].Queries)
		}
	}
	if names["apro"].ProbesPerQuery <= 0 {
		t.Error("apro tier recorded no probes; adaptive probing did not run")
	}
	if names["baseline"].ProbesPerQuery != 0 || names["rd"].ProbesPerQuery != 0 {
		t.Error("non-probing tiers recorded probes")
	}
	// Probing should not hurt: apro's absolute correctness must be at
	// least rd's on the same fixed-seed workload.
	if names["apro"].AvgCorA < names["rd"].AvgCorA {
		t.Errorf("apro CorA %v < rd CorA %v on the same workload", names["apro"].AvgCorA, names["rd"].AvgCorA)
	}
	// The context tiers run the same model on the same workload through
	// the probe-execution engine; the probe trajectory is byte-identical
	// to the sequential algorithm at any speculation level, so
	// correctness and probe counts must match apro exactly.
	for _, tier := range []string{"apro-ctx-m1", "apro-ctx-m2"} {
		if names[tier].AvgCorA != names["apro"].AvgCorA {
			t.Errorf("%s CorA %v != apro CorA %v", tier, names[tier].AvgCorA, names["apro"].AvgCorA)
		}
		if names[tier].ProbesPerQuery != names["apro"].ProbesPerQuery {
			t.Errorf("%s probes/query %v != apro %v", tier, names[tier].ProbesPerQuery, names["apro"].ProbesPerQuery)
		}
		if names[tier].DegradedSelections != 0 {
			t.Errorf("%s reported %d degraded selections on healthy backends", tier, names[tier].DegradedSelections)
		}
	}
	if names["apro-ctx-m2"].SpeedupVsM1 <= 0 {
		t.Errorf("apro-ctx-m2 speedup_vs_m1 = %v, want > 0", names["apro-ctx-m2"].SpeedupVsM1)
	}
	if names["apro-ctx-m2"].InflightP99 < 1 {
		t.Errorf("apro-ctx-m2 probe_inflight_p99 = %v, want ≥ 1", names["apro-ctx-m2"].InflightP99)
	}
	// The service tiers measure the daemon path. At idle limits every
	// request must be answered at full tier with answers identical to
	// the direct engine, and the wave-shaped workload must coalesce.
	svc, over := names["service"], names["service-overload"]
	if svc.CoalesceRatio <= 1 {
		t.Errorf("service coalesce_ratio = %v, want > 1", svc.CoalesceRatio)
	}
	if svc.MatchesDirect == nil || !*svc.MatchesDirect {
		t.Error("service tier answers were not verified identical to the direct engine")
	}
	if len(svc.ShedCounts) != 0 || svc.Availability != 1.0 {
		t.Errorf("service tier shed at idle: sheds=%v availability=%v", svc.ShedCounts, svc.Availability)
	}
	if svc.TierCounts["full"] == 0 || len(svc.TierCounts) != 1 {
		t.Errorf("service tier counts = %v, want all full", svc.TierCounts)
	}
	// Under starved admission limits most requests are shed — but every
	// one of them is still answered.
	var shed int64
	for _, n := range over.ShedCounts {
		shed += n
	}
	if shed == 0 {
		t.Error("service-overload tier shed nothing under starved limits")
	}
	if over.Availability != 1.0 {
		t.Errorf("service-overload availability = %v, want 1.0", over.Availability)
	}
	// The drift tiers close the loop: staleness must cost correctness
	// against the post-drift golden standard relative to the pre-drift
	// rd tier, the refresher must actually have committed, and the
	// refreshed model must recover correctness above the drifted
	// baseline.
	stale, refreshed := names["drift-stale"], names["drift-refreshed"]
	if stale.AvgCorP >= names["rd"].AvgCorP {
		t.Errorf("drift-stale CorP %v did not drop below the pre-drift rd tier's %v",
			stale.AvgCorP, names["rd"].AvgCorP)
	}
	if stale.Refreshes != 0 {
		t.Errorf("drift-stale reports %d refreshes; it serves the stale model", stale.Refreshes)
	}
	if refreshed.Refreshes <= 0 {
		t.Error("drift-refreshed tier measured without a single committed refresh")
	}
	if refreshed.AvgCorP <= stale.AvgCorP {
		t.Errorf("drift-refreshed CorP %v did not recover above drift-stale's %v",
			refreshed.AvgCorP, stale.AvgCorP)
	}
	if refreshed.AvgCorA < stale.AvgCorA {
		t.Errorf("drift-refreshed CorA %v fell below drift-stale's %v",
			refreshed.AvgCorA, stale.AvgCorA)
	}
	for _, tier := range []string{"drift-stale", "drift-refreshed"} {
		if names[tier].ProbesPerQuery != 0 {
			t.Errorf("%s is an RD-only tier but recorded probes", tier)
		}
	}
}

// TestUnknownPreset checks the error path for a bad -preset value.
func TestUnknownPreset(t *testing.T) {
	cfg := benchConfig{label: "x", outDir: t.TempDir(), preset: "nope", scale: 0.01, queries: 2, trainN: 2, k: 2, t: 0.5, seed: 1}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	if _, err := runBench(cfg, log); err == nil {
		t.Fatal("runBench accepted unknown preset")
	}
}
