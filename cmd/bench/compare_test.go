package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metaprobe/internal/obs/prof"
)

func TestParseGoBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		want microResult
		ok   bool
	}{
		{
			line: "BenchmarkSelectAbsolute-8   1220   961482 ns/op   210433 B/op   2531 allocs/op",
			name: "BenchmarkSelectAbsolute",
			want: microResult{NsPerOp: 961482, BytesPerOp: 210433, AllocsPerOp: 2531},
			ok:   true,
		},
		{
			// No -GOMAXPROCS suffix and no benchmem columns.
			line: "BenchmarkObserveProbe 50000 30421 ns/op",
			name: "BenchmarkObserveProbe",
			want: microResult{NsPerOp: 30421},
			ok:   true,
		},
		{
			// A hyphen in the name that is not a GOMAXPROCS suffix stays.
			line: "BenchmarkFoo-bar-16 10 5 ns/op",
			name: "BenchmarkFoo-bar",
			want: microResult{NsPerOp: 5},
			ok:   true,
		},
		{line: "goos: linux", ok: false},
		{line: "PASS", ok: false},
		{line: "ok  \tmetaprobe\t12.3s", ok: false},
		{line: "BenchmarkBroken-8 notanumber 5 ns/op", ok: false},
		{line: "", ok: false},
	}
	for _, c := range cases {
		name, res, ok := parseGoBenchLine(c.line)
		if ok != c.ok {
			t.Errorf("parse(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != c.name || res != c.want {
			t.Errorf("parse(%q) = %q %+v, want %q %+v", c.line, name, res, c.name, c.want)
		}
	}
}

func TestParseGoBenchFileKeepsFastestRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	content := strings.Join([]string{
		"goos: linux",
		"BenchmarkSelect-8 100 2000 ns/op 500 B/op 10 allocs/op",
		"BenchmarkSelect-8 100 1500 ns/op 500 B/op 10 allocs/op",
		"BenchmarkSelect-8 100 1800 ns/op 500 B/op 10 allocs/op",
		"PASS",
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseGoBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1", len(got))
	}
	if got["BenchmarkSelect"].NsPerOp != 1500 {
		t.Fatalf("kept ns/op %v, want fastest 1500", got["BenchmarkSelect"].NsPerOp)
	}
}

func baseReportForCompare() benchReport {
	return benchReport{
		Micro: map[string]microResult{
			"select": {NsPerOp: 1e6, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
		},
		GoBench: map[string]microResult{
			"BenchmarkSelect": {NsPerOp: 1e6, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
		},
		Workloads: []workloadResult{{
			Preset: "health", Name: "apro",
			LatencyMs:      latencySummary{Mean: 10},
			ProbesPerQuery: 4,
			AvgCorA:        0.9,
		}},
	}
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	base := baseReportForCompare()
	cur := baseReportForCompare()
	// Nudge everything inside the tolerances.
	cur.Micro["select"] = microResult{NsPerOp: 1.5e6, AllocsPerOp: 1001, BytesPerOp: 1.1 * (1 << 20)}
	cur.Workloads[0].LatencyMs.Mean = 13
	cur.Workloads[0].ProbesPerQuery = 4.4
	cur.Workloads[0].AvgCorA = 0.87
	if regs := compareReports(base, cur, io.Discard); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareReportsFlagsRegressions(t *testing.T) {
	base := baseReportForCompare()

	cases := []struct {
		name   string
		mutate func(*benchReport)
	}{
		{"micro allocs", func(r *benchReport) {
			r.Micro["select"] = microResult{NsPerOp: 1e6, AllocsPerOp: 1200, BytesPerOp: 1 << 20}
		}},
		{"gobench ns", func(r *benchReport) {
			r.GoBench["BenchmarkSelect"] = microResult{NsPerOp: 2e6, AllocsPerOp: 1000, BytesPerOp: 1 << 20}
		}},
		{"workload latency", func(r *benchReport) { r.Workloads[0].LatencyMs.Mean = 30 }},
		{"workload probes", func(r *benchReport) { r.Workloads[0].ProbesPerQuery = 6 }},
		{"workload correctness", func(r *benchReport) { r.Workloads[0].AvgCorA = 0.8 }},
	}
	for _, c := range cases {
		cur := baseReportForCompare()
		c.mutate(&cur)
		if regs := compareReports(base, cur, io.Discard); len(regs) == 0 {
			t.Errorf("%s: regression not flagged", c.name)
		}
	}
}

// TestCompareSteadyAllocCapIsAbsolute: the steady serving benchmark's
// allocs/op gate is an absolute cap, not a baseline ratio — it trips
// even when the baseline itself recorded the same (bad) value, and
// even when the baseline lacks the benchmark entirely.
func TestCompareSteadyAllocCapIsAbsolute(t *testing.T) {
	base := baseReportForCompare()
	cur := baseReportForCompare()
	cur.GoBench[steadyBenchName] = microResult{NsPerOp: 1e6, AllocsPerOp: steadyAllocCap + 1, BytesPerOp: 64}
	if regs := compareReports(base, cur, io.Discard); len(regs) != 1 {
		t.Fatalf("over-cap steady benchmark absent from baseline: regressions = %v, want 1", regs)
	}
	base.GoBench[steadyBenchName] = cur.GoBench[steadyBenchName]
	if regs := compareReports(base, cur, io.Discard); len(regs) != 1 {
		t.Fatalf("over-cap steady benchmark matching baseline: regressions = %v, want 1", regs)
	}
	cur.GoBench[steadyBenchName] = microResult{NsPerOp: 1e6, AllocsPerOp: 0, BytesPerOp: 0}
	if regs := compareReports(base, cur, io.Discard); len(regs) != 0 {
		t.Fatalf("allocation-free steady benchmark flagged: %v", regs)
	}
}

func TestCompareSkipsMissingKeys(t *testing.T) {
	base := baseReportForCompare()
	base.Micro["extra"] = microResult{NsPerOp: 1, AllocsPerOp: 1, BytesPerOp: 1}
	base.Workloads = append(base.Workloads, workloadResult{Preset: "health", Name: "gone"})
	cur := baseReportForCompare()
	if regs := compareReports(base, cur, io.Discard); len(regs) != 0 {
		t.Fatalf("missing keys must be skipped, got regressions: %v", regs)
	}
}

func TestDumpProfiles(t *testing.T) {
	c, err := prof.New(prof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if cap := c.CaptureHeap(); cap == nil {
		t.Fatal("heap capture failed")
	}
	dir := filepath.Join(t.TempDir(), "profiles")
	if err := dumpProfiles(c, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasPrefix(entries[0].Name(), "heap-") {
		t.Fatalf("dumped %v, want one heap-*.pb.gz", entries)
	}
	info, err := entries[0].Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("dumped profile is empty")
	}
}

func TestDiffAgainstBaselineErrorPaths(t *testing.T) {
	cur := baseReportForCompare()
	if err := diffAgainstBaseline(cur, filepath.Join(t.TempDir(), "missing.json"), io.Discard); err == nil {
		t.Error("missing baseline file not reported")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := diffAgainstBaseline(cur, bad, io.Discard); err == nil {
		t.Error("corrupt baseline not reported")
	}
}
