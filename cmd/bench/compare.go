package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Regression tolerances. Alloc counts are deterministic per Go
// version, so their gate is tight; wall-clock gates are generous
// because CI runners are noisy and shared. A regression must clear
// both a relative factor and an absolute slack so that near-zero
// baselines (e.g. a 3-alloc op) don't fail on ±1 jitter.
const (
	nsFactor      = 1.75 // ns/op may grow up to 75%
	allocFactor   = 1.10 // allocs/op may grow 10%...
	allocSlack    = 2.0  // ...plus 2 objects
	bytesFactor   = 1.25 // B/op may grow 25%...
	bytesSlack    = 256  // ...plus 256 bytes (size-class rounding)
	latencyFactor = 1.50 // workload mean latency may grow 50%...
	latencySlackM = 2.0  // ...plus 2 ms
	probesFactor  = 1.25 // probes/query may grow 25%...
	probesSlack   = 0.5  // ...plus half a probe
	corSlack      = 0.05 // avg Cor_a may drop 0.05 absolute

	// steadyAllocCap is an absolute gate, not a ratio: the steady-state
	// serving benchmark (Reuse + AProInto over pooled scratch) must stay
	// at ≤ 2 allocs/op regardless of what the baseline recorded, so the
	// zero-allocation hot path cannot erode alloc-by-alloc under the
	// relative tolerance.
	steadyAllocCap = 2.0
)

// steadyBenchName is the go-test benchmark held to steadyAllocCap.
const steadyBenchName = "BenchmarkAProSelectSteady"

// diffAgainstBaseline loads the baseline report and compares the
// current one against it, printing a line per checked metric. It
// returns an error (failing the run) if any metric regresses beyond
// its tolerance. Only keys present in both reports are compared, so
// adding a benchmark or tier never breaks an existing baseline.
func diffAgainstBaseline(cur benchReport, baselinePath string, w io.Writer) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	regressions := compareReports(base, cur, w)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION: %s\n", r)
		}
		return fmt.Errorf("%d perf regression(s) vs %s", len(regressions), baselinePath)
	}
	fmt.Fprintf(w, "no regressions vs %s\n", baselinePath)
	return nil
}

// compareReports checks cur against base and returns regression
// descriptions; it writes one status line per compared metric.
func compareReports(base, cur benchReport, w io.Writer) []string {
	var regs []string
	checked := 0

	higher := func(name string, b, c, factor, slack float64) {
		checked++
		limit := b*factor + slack
		status := "ok"
		if c > limit {
			status = "REGRESSED"
			regs = append(regs, fmt.Sprintf("%s: %.4g > limit %.4g (baseline %.4g)", name, c, limit, b))
		}
		fmt.Fprintf(w, "  %-52s base=%-12.4g cur=%-12.4g limit=%-12.4g %s\n", name, b, c, limit, status)
	}
	lower := func(name string, b, c, slack float64) {
		checked++
		limit := b - slack
		status := "ok"
		if c < limit {
			status = "REGRESSED"
			regs = append(regs, fmt.Sprintf("%s: %.4g < limit %.4g (baseline %.4g)", name, c, limit, b))
		}
		fmt.Fprintf(w, "  %-52s base=%-12.4g cur=%-12.4g limit=%-12.4g %s\n", name, b, c, limit, status)
	}

	micro := func(section string, b, c map[string]microResult) {
		for name, bm := range b {
			cm, ok := c[name]
			if !ok {
				fmt.Fprintf(w, "  %s/%s: missing from current report (skipped)\n", section, name)
				continue
			}
			higher(section+"/"+name+" ns/op", bm.NsPerOp, cm.NsPerOp, nsFactor, 0)
			higher(section+"/"+name+" allocs/op", bm.AllocsPerOp, cm.AllocsPerOp, allocFactor, allocSlack)
			higher(section+"/"+name+" B/op", bm.BytesPerOp, cm.BytesPerOp, bytesFactor, bytesSlack)
		}
	}
	micro("micro", base.Micro, cur.Micro)
	micro("gobench", base.GoBench, cur.GoBench)

	// Absolute steady-state allocation gate, independent of the
	// baseline: applies whenever the current report carries the steady
	// serving benchmark, even before a baseline records it.
	if cm, ok := cur.GoBench[steadyBenchName]; ok {
		checked++
		status := "ok"
		if cm.AllocsPerOp > steadyAllocCap {
			status = "REGRESSED"
			regs = append(regs, fmt.Sprintf("gobench/%s allocs/op: %.4g > absolute cap %.4g",
				steadyBenchName, cm.AllocsPerOp, steadyAllocCap))
		}
		fmt.Fprintf(w, "  %-52s cap=%-12.4g cur=%-12.4g %s\n",
			"gobench/"+steadyBenchName+" allocs/op (absolute)", steadyAllocCap, cm.AllocsPerOp, status)
	}

	curTiers := make(map[string]workloadResult, len(cur.Workloads))
	for _, res := range cur.Workloads {
		curTiers[res.Preset+"/"+res.Name] = res
	}
	for _, b := range base.Workloads {
		key := b.Preset + "/" + b.Name
		c, ok := curTiers[key]
		if !ok {
			fmt.Fprintf(w, "  workload/%s: missing from current report (skipped)\n", key)
			continue
		}
		higher("workload/"+key+" latency_mean_ms", b.LatencyMs.Mean, c.LatencyMs.Mean, latencyFactor, latencySlackM)
		higher("workload/"+key+" probes_per_query", b.ProbesPerQuery, c.ProbesPerQuery, probesFactor, probesSlack)
		// Only gate correctness on tiers that probe; the baseline tier's
		// Cor_a floats with the corpus, not with code under test.
		if b.ProbesPerQuery > 0 {
			lower("workload/"+key+" avg_cor_a", b.AvgCorA, c.AvgCorA, corSlack)
		}
	}

	fmt.Fprintf(w, "compared %d metrics, %d regression(s)\n", checked, len(regs))
	return regs
}
