package main

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/server"
	"metaprobe/internal/stats"
)

// TestRunRemote drives the remote mode end to end against an
// in-process metaprobed core behind a real HTTP listener.
func TestRunRemote(t *testing.T) {
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(0.005), 7)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := metaprobe.New(dbs, sums, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Pool(stats.NewRNG(7).Fork(1), 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	train := make([]string, len(pool))
	for i, q := range pool {
		train[i] = q.String()
	}
	if err := ms.Train(train); err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{})
	if err := srv.AddTenant(server.DefaultTenant, ms); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := loadConfig{seed: 7, numQueries: 12, concurrency: 2, k: 1, t: 0.8}
	rc := remoteConfig{target: ts.URL, repeat: 3}
	rep, err := runRemote(cfg, rc, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.requests != 12*3 || rep.waves != 12 {
		t.Errorf("requests=%d waves=%d, want 36/12", rep.requests, rep.waves)
	}
	if rep.failures != 0 || rep.availability != 1.0 {
		t.Errorf("availability %.3f with %d failures, want 100%%/0", rep.availability, rep.failures)
	}
	if rep.tiers["full"] != rep.requests {
		t.Errorf("tiers = %v, want all %d full at idle load", rep.tiers, rep.requests)
	}
	if rep.shedCount() != 0 {
		t.Errorf("sheds = %v at idle load", rep.sheds)
	}
	if rep.p50 <= 0 || rep.p99 < rep.p50 {
		t.Errorf("percentiles out of order: %v %v", rep.p50, rep.p99)
	}

	// An unknown tenant fails every request and reports zero
	// availability rather than erroring the run.
	rc.tenant = "nobody"
	rep, err = runRemote(cfg, rc, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.failures != rep.requests || rep.availability != 0 {
		t.Errorf("unknown tenant: failures=%d availability=%.3f, want all failed", rep.failures, rep.availability)
	}
}
