// Command loadtest replays a query workload against a trained
// metasearcher and reports end-to-end latency percentiles, probe
// counts, throughput, and — by scoring every selection against a
// freshly built golden standard — the calibration of the certainty
// the selections report. Per-probe network latency is injected so the
// trade-off the paper's Section 5.2 worries about — every probe is a
// remote round trip — shows up in wall-clock numbers.
//
// With -speculation or -deadline the replay goes through the
// context-aware selection path (SelectWithCertaintyContext): probes for
// the policy's runners-up are prefetched concurrently, and a per-query
// deadline abandons selections that overrun it.
//
// With -trace every selection records a span tree (the run reports
// the slowest query's trace ID), and with -serve the process stays up
// after the replay serving /metrics (with trace exemplars),
// /debug/spans, /debug/slo, /healthz and /readyz — so the recorded
// traces and burn rates can be inspected.
//
// With -target the same workload is replayed against a running
// metaprobed daemon instead of the in-process library: each query
// becomes a wave of -repeat concurrent identical requests (the batch
// coalescer's unit of mergeable work), and the report adds tier
// distribution, shed counts, and coalesce statistics. -fail-on-shed
// turns "no shedding at idle load" into an exit code for CI.
//
// Usage:
//
//	go run ./cmd/loadtest [-queries 400] [-concurrency 4]
//	    [-latency 5ms] [-k 3] [-t 0.9] [-scale 0.02] [-v]
//	    [-speculation 2] [-deadline 2s] [-max-inflight 16]
//	    [-trace] [-serve :8091]
//	go run ./cmd/loadtest -target http://localhost:8091 [-tenant acme]
//	    [-repeat 8] [-fail-on-shed]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"metaprobe"
	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/eval"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/prof"
	"metaprobe/internal/obs/span"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// loadConfig parameterizes one load-test run.
type loadConfig struct {
	scale       float64
	seed        int64
	trainN      int
	numQueries  int
	concurrency int
	latency     time.Duration
	k           int
	t           float64
	speculation int
	deadline    time.Duration
	maxInflight int
	trace       bool
	serve       string
}

// useContext reports whether the run should go through the
// context-aware selection path.
func (c loadConfig) useContext() bool {
	return c.speculation > 1 || c.deadline > 0 || c.maxInflight > 0 || c.trace
}

// loadReport summarizes a run.
type loadReport struct {
	queries     int
	wall        time.Duration
	p50, p90    time.Duration
	p99         time.Duration
	avgProbes   float64
	reachedFrac float64
	// degraded counts selections that excluded at least one backend
	// (probe failure or open circuit breaker).
	degraded int
	// avgCorA is the mean absolute correctness of the selections
	// against the golden standard.
	avgCorA float64
	// calibration summarizes how well the reported certainty predicted
	// the realized correctness.
	calibration obs.CalibrationSnapshot
	// slowest is the slowest selection and slowestTrace its span-tree
	// trace ID (set with -trace).
	slowest      time.Duration
	slowestTrace string
	// Probe-cost totals aggregated from every selection's cost account
	// (populated on the context path).
	costProbes, costHedgesWasted, costCacheHits int
	costBytes                                   int64
	// slo is the end-of-run burn-rate snapshot.
	slo obs.SLOSnapshot
	// runtime is the final runtime-telemetry sample (heap, GC pauses,
	// scheduler latency) taken after the replay drained.
	runtime map[string]float64
	// metrics is the final Prometheus-format snapshot of the registry
	// every database wrapper and selection call recorded into.
	metrics string

	// Live handles for -serve (kept past the replay).
	reg   *metaprobe.Metrics
	spans *metaprobe.SpanTracer
	sloT  *metaprobe.SLO
}

func main() {
	cfg := loadConfig{}
	flag.Float64Var(&cfg.scale, "scale", 0.02, "testbed size multiplier")
	flag.Int64Var(&cfg.seed, "seed", 2004, "random seed")
	flag.IntVar(&cfg.trainN, "train", 300, "training queries per term count")
	flag.IntVar(&cfg.numQueries, "queries", 400, "workload size")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "concurrent searchers")
	flag.DurationVar(&cfg.latency, "latency", 5*time.Millisecond, "injected per-probe latency")
	flag.IntVar(&cfg.k, "k", 3, "databases to select")
	flag.Float64Var(&cfg.t, "t", 0.9, "certainty threshold")
	flag.IntVar(&cfg.speculation, "speculation", 1, "probes dispatched per selection round (>1 enables the context path)")
	flag.DurationVar(&cfg.deadline, "deadline", 0, "per-query deadline (0 = none; >0 enables the context path)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "global cap on concurrent probes (0 = executor default; >0 enables the context path)")
	flag.BoolVar(&cfg.trace, "trace", false, "record a span tree per selection (enables the context path)")
	flag.StringVar(&cfg.serve, "serve", "", "after the replay, serve /metrics /debug/spans /debug/slo on this address")
	var rc remoteConfig
	flag.StringVar(&rc.target, "target", "", "base URL of a running metaprobed (remote mode; empty drives the in-process library)")
	flag.StringVar(&rc.tenant, "tenant", "", "tenant to address in remote mode (empty: the daemon default)")
	flag.IntVar(&rc.repeat, "repeat", 1, "concurrent identical requests per query in remote mode (>1 exercises the batch coalescer)")
	flag.BoolVar(&rc.failOnShed, "fail-on-shed", false, "remote mode: exit non-zero if any response was served below full tier")
	verbose := flag.Bool("v", false, "log every selection (with its correlation ID) at debug level")
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	if rc.target != "" {
		rep, err := runRemote(cfg, rc, logger)
		if err != nil {
			logger.Error(err.Error())
			os.Exit(1)
		}
		printRemoteReport(os.Stdout, cfg, rc, rep)
		if rep.failures > 0 {
			logger.Error("remote run had failed requests", "failures", rep.failures)
			os.Exit(1)
		}
		if rc.failOnShed && rep.shedCount() > 0 {
			logger.Error("responses were shed below full tier", "shed", rep.shedCount())
			os.Exit(1)
		}
		return
	}
	rep, err := runLoadTest(cfg, logger)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(1)
	}
	printReport(os.Stdout, cfg, rep)
	if cfg.serve != "" {
		if err := serveObservability(cfg.serve, rep, logger); err != nil {
			logger.Error(err.Error())
			os.Exit(1)
		}
	}
}

// serveObservability keeps the process up after the replay serving
// the recorded observability state, with continuous profiling and
// runtime telemetry running until SIGINT/SIGTERM. Shutdown drains the
// listener, then stops the captor (flushing one final heap capture)
// and the sampler (one final runtime sample).
func serveObservability(addr string, rep loadReport, logger *slog.Logger) error {
	captor, err := prof.New(prof.Config{Metrics: rep.reg})
	if err != nil {
		return err
	}
	sampler := prof.NewSampler(prof.SamplerConfig{Metrics: rep.reg})
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	captor.Start(ctx)
	sampler.Start(ctx)

	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(rep.reg))
	mux.Handle("/debug/spans", span.Handler(rep.spans))
	mux.Handle("/debug/slo", obs.SLOHandler(rep.sloT))
	mux.Handle("/debug/profiles", prof.Handler(captor))
	mux.Handle("/debug/goroutines", prof.GoroutineDumpHandler())
	mux.Handle("/healthz", obs.HealthzHandler())
	mux.Handle("/readyz", obs.ReadyzCheckHandler(nil))
	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving observability endpoints",
		"addr", addr, "endpoints", "/metrics /debug/spans /debug/slo /debug/profiles /debug/goroutines /healthz /readyz")
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		logger.Info("shutting down", "reason", "signal")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			logger.Error("server shutdown", "err", err)
		}
		captor.Stop()
		sampler.Stop()
		logger.Info("profiler stopped", "captures_retained", len(captor.List()))
		return nil
	}
}

// runLoadTest builds the testbed, trains, and replays the workload.
// Progress goes to log; per-selection debug lines carry the same
// correlation ID as the selection's trace.
func runLoadTest(cfg loadConfig, log *slog.Logger) (loadReport, error) {
	log.Info("building the testbed", "scale", cfg.scale, "probe_latency", cfg.latency)
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(cfg.scale), cfg.seed)
	if err != nil {
		return loadReport{}, err
	}
	reg := metaprobe.NewMetrics()
	obs.RegisterBuildInfo(reg, "loadtest", strconv.Itoa(core.FormatVersion))
	// Runtime telemetry runs for the whole replay; Stop flushes a final
	// sample before the metrics snapshot is taken, so the report's
	// mp_runtime_* series describe the post-replay state.
	sampler := prof.NewSampler(prof.SamplerConfig{Interval: time.Second, Metrics: reg})
	sampler.Start(context.Background())
	defer sampler.Stop()
	var spans *metaprobe.SpanTracer
	if cfg.trace {
		spans = metaprobe.NewSpanTracer(0)
		spans.Bind(reg)
	}
	slo := metaprobe.NewSLO(metaprobe.SLOConfig{})
	slo.Bind(reg)
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = metaprobe.InstrumentDatabase(hidden.NewLatency(tb.DB(i), cfg.latency), reg)
	}
	// Summaries are computed from the raw databases; training and
	// query-time traffic go through the wrappers, so the per-database
	// metrics include the training workload.
	raw := make([]metaprobe.Database, tb.Len())
	for i := range raw {
		raw[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(raw)
	if err != nil {
		return loadReport{}, err
	}
	ms, err := metaprobe.New(dbs, sums, &metaprobe.Config{
		Metrics:          reg,
		Spans:            spans,
		SLO:              slo,
		Speculation:      cfg.speculation,
		ProbeConcurrency: metaprobe.ProbeLimits{Global: cfg.maxInflight},
	})
	if err != nil {
		return loadReport{}, err
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		return loadReport{}, err
	}
	trainPool, err := gen.Pool(stats.NewRNG(cfg.seed).Fork(1), cfg.trainN, cfg.trainN)
	if err != nil {
		return loadReport{}, err
	}
	train := make([]string, len(trainPool))
	for i, q := range trainPool {
		train[i] = q.String()
	}
	log.Info("training", "queries", len(train))
	if err := ms.Train(train); err != nil {
		return loadReport{}, err
	}
	half := (cfg.numQueries + 1) / 2
	workload, err := gen.Pool(stats.NewRNG(cfg.seed).Fork(2), half, cfg.numQueries-half)
	if err != nil {
		return loadReport{}, err
	}
	// The golden standard (true top-k per workload query, from the raw
	// databases) turns each selection's certainty into a testable
	// prediction: realized correctness feeds the calibration
	// accumulator, exported as the mp_calibration_* series.
	log.Info("building the golden standard", "queries", len(workload))
	golden, err := eval.BuildGolden(tb, metaprobe.DocFrequencyRelevancy(), workload)
	if err != nil {
		return loadReport{}, err
	}
	cal := metaprobe.NewCalibration(0)
	cal.Bind(reg)

	log.Info("replaying workload", "queries", len(workload), "concurrency", cfg.concurrency)
	latencyHist := reg.Histogram("loadtest_query_latency_seconds", nil)
	reg.Help("loadtest_query_latency_seconds", "End-to-end latency of one workload query.")
	type sample struct {
		probes   int
		reached  bool
		degraded bool
		corA     float64
	}
	samples := make([]sample, len(workload))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	// Aggregated across workers: the slowest selection (with its trace
	// ID, the waterfall entry point) and the probe-cost totals.
	var costMu sync.Mutex
	var slowest time.Duration
	var slowestTrace string
	var costProbes, costHedgesWasted, costCacheHits int
	var costBytes int64
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range jobs {
				qStart := time.Now()
				var res *metaprobe.SelectionResult
				var err error
				if cfg.useContext() {
					ctx, cancel := context.Background(), context.CancelFunc(func() {})
					if cfg.deadline > 0 {
						ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
					}
					res, err = ms.SelectWithCertaintyContext(ctx, workload[qi].String(), cfg.k, metaprobe.Absolute, cfg.t, -1)
					cancel()
				} else {
					res, err = ms.SelectWithCertainty(workload[qi].String(), cfg.k, metaprobe.Absolute, cfg.t, -1)
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				elapsed := time.Since(qStart)
				latencyHist.Observe(elapsed.Seconds())
				costMu.Lock()
				if elapsed > slowest {
					slowest = elapsed
					slowestTrace = res.TraceID
				}
				if res.Cost != nil {
					costProbes += res.Cost.ProbesIssued
					costHedgesWasted += res.Cost.HedgesWasted
					costCacheHits += res.Cost.CacheHits
					costBytes += res.Cost.BytesFetched
				}
				costMu.Unlock()
				topk := golden[qi].TopK(cfg.k)
				set := make([]int, 0, len(res.Databases))
				for _, name := range res.Databases {
					if di := tb.IndexOf(name); di >= 0 {
						set = append(set, di)
					}
				}
				corA := eval.CorA(set, topk)
				cal.Observe(res.Certainty, corA)
				log.Debug("selection",
					"selection", res.ID, "query", workload[qi].String(),
					"certainty", res.Certainty, "probes", res.Probes, "cor_a", corA,
					"degraded", res.Degraded)
				samples[qi] = sample{probes: res.Probes, reached: res.Reached, degraded: res.Degraded, corA: corA}
			}
		}()
	}
	for qi := range workload {
		jobs <- qi
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return loadReport{}, firstErr
	}
	wall := time.Since(start)

	var probes, reached, corA float64
	var degraded int
	for _, s := range samples {
		probes += float64(s.probes)
		corA += s.corA
		if s.reached {
			reached++
		}
		if s.degraded {
			degraded++
		}
	}
	// Percentiles come from the shared obs histogram — the same
	// estimator the /metrics endpoint exposes — instead of ad-hoc
	// sorting.
	qs := latencyHist.Quantiles(0.50, 0.90, 0.99)
	// Stop (idempotent with the deferred call) flushes a final runtime
	// sample so the snapshot below reflects the drained state.
	sampler.Stop()
	var snapshot strings.Builder
	if err := reg.WritePrometheus(&snapshot); err != nil {
		return loadReport{}, err
	}
	return loadReport{
		queries:          len(workload),
		wall:             wall,
		p50:              time.Duration(qs[0] * float64(time.Second)),
		p90:              time.Duration(qs[1] * float64(time.Second)),
		p99:              time.Duration(qs[2] * float64(time.Second)),
		avgProbes:        probes / float64(len(workload)),
		reachedFrac:      reached / float64(len(workload)),
		degraded:         degraded,
		avgCorA:          corA / float64(len(workload)),
		calibration:      cal.Snapshot(),
		slowest:          slowest,
		slowestTrace:     slowestTrace,
		costProbes:       costProbes,
		costHedgesWasted: costHedgesWasted,
		costCacheHits:    costCacheHits,
		costBytes:        costBytes,
		slo:              slo.Snapshot(),
		runtime:          sampler.Snapshot(),
		metrics:          snapshot.String(),
		reg:              reg,
		spans:            spans,
		sloT:             slo,
	}, nil
}

// printReport renders the report.
func printReport(w *os.File, cfg loadConfig, rep loadReport) {
	fmt.Fprintf(w, "\nqueries          %d (k=%d, t=%.2f, %v/probe, concurrency %d)\n",
		rep.queries, cfg.k, cfg.t, cfg.latency, cfg.concurrency)
	fmt.Fprintf(w, "wall time        %v (%.1f qps)\n", rep.wall.Round(time.Millisecond),
		float64(rep.queries)/rep.wall.Seconds())
	fmt.Fprintf(w, "latency p50      %v\n", rep.p50.Round(time.Microsecond))
	fmt.Fprintf(w, "latency p90      %v\n", rep.p90.Round(time.Microsecond))
	fmt.Fprintf(w, "latency p99      %v\n", rep.p99.Round(time.Microsecond))
	fmt.Fprintf(w, "avg probes       %.2f\n", rep.avgProbes)
	fmt.Fprintf(w, "reached target   %.1f%%\n", rep.reachedFrac*100)
	fmt.Fprintf(w, "degraded         %d\n", rep.degraded)
	fmt.Fprintf(w, "avg Cor_a        %.3f\n", rep.avgCorA)
	fmt.Fprintf(w, "calibration      Brier %.3f, ECE %.3f, gap %+.3f over %d selections\n",
		rep.calibration.Brier, rep.calibration.ECE, rep.calibration.Gap, rep.calibration.Samples)
	if rep.costProbes > 0 || rep.costBytes > 0 {
		fmt.Fprintf(w, "probe cost       %d probes, %d wasted hedges, %d cache hits, %d bytes fetched\n",
			rep.costProbes, rep.costHedgesWasted, rep.costCacheHits, rep.costBytes)
	}
	if rep.slowestTrace != "" {
		fmt.Fprintf(w, "slowest          %v, trace %s (inspect at /debug/spans?trace=%s with -serve)\n",
			rep.slowest.Round(time.Microsecond), rep.slowestTrace, rep.slowestTrace)
	}
	for _, win := range rep.slo.Windows {
		fmt.Fprintf(w, "slo %-12s latency burn %.2f, availability burn %.2f\n",
			win.Window, win.LatencyBurnRate, win.AvailabilityBurnRate)
	}
	if rep.runtime != nil {
		if v, ok := rep.runtime["mp_runtime_heap_inuse_bytes"]; ok {
			fmt.Fprintf(w, "runtime          heap in use %.1f MiB", v/(1<<20))
			if g, ok := rep.runtime["mp_runtime_goroutines"]; ok {
				fmt.Fprintf(w, ", %0.f goroutines", g)
			}
			if c, ok := rep.runtime["mp_runtime_gc_cycles_total"]; ok {
				fmt.Fprintf(w, ", %0.f GC cycles", c)
			}
			fmt.Fprintln(w)
		}
		if p50, ok := rep.runtime["mp_runtime_gc_pause_seconds{q=0.5}"]; ok {
			p99 := rep.runtime["mp_runtime_gc_pause_seconds{q=0.99}"]
			fmt.Fprintf(w, "gc pause         p50 %.3fms, p99 %.3fms\n", p50*1e3, p99*1e3)
		}
		if p50, ok := rep.runtime["mp_runtime_sched_latency_seconds{q=0.5}"]; ok {
			p99 := rep.runtime["mp_runtime_sched_latency_seconds{q=0.99}"]
			fmt.Fprintf(w, "sched latency    p50 %.3fms, p99 %.3fms\n", p50*1e3, p99*1e3)
		}
	}
	if rep.metrics != "" {
		fmt.Fprintf(w, "\n--- metrics snapshot (Prometheus text format) ---\n%s", rep.metrics)
	}
}
