package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/queries"
	"metaprobe/internal/server"
	"metaprobe/internal/stats"
)

// remoteConfig parameterizes a run against a metaprobed daemon instead
// of the in-process library.
type remoteConfig struct {
	target string
	tenant string
	// repeat fires this many concurrent identical requests per workload
	// query (a "wave"), so the daemon's batch coalescer has something to
	// merge. 1 disables batching.
	repeat int
	// failOnShed exits non-zero if any response was served below full
	// tier — the CI smoke run's "no shedding at idle" assertion.
	failOnShed bool
}

// remoteReport summarizes a remote run. Latency percentiles come from
// the same obs histogram estimator the in-process mode uses.
type remoteReport struct {
	requests int
	waves    int
	wall     time.Duration
	p50, p90 time.Duration
	p99      time.Duration
	// tiers counts responses by served tier, sheds by shed reason.
	tiers map[string]int
	sheds map[string]int
	// coalesced counts responses that rode a shared run; meanFanout is
	// the average waiters-per-run over all responses; coalesceRatio is
	// requests per underlying run (1.0 = no batching).
	coalesced     int
	meanFanout    float64
	coalesceRatio float64
	// availability is answered requests / sent requests. Degraded
	// (shed) answers count as available — that is the point.
	availability float64
	failures     int
}

// runRemote replays the workload against a running metaprobed. The
// workload is the same generated pool the in-process mode uses, so
// numbers are comparable; no local testbed or training is needed.
func runRemote(cfg loadConfig, rc remoteConfig, log *slog.Logger) (remoteReport, error) {
	base := strings.TrimRight(rc.target, "/")
	if rc.repeat < 1 {
		rc.repeat = 1
	}
	gen, err := queries.NewGenerator(corpus.HealthWorld(), queries.Config{})
	if err != nil {
		return remoteReport{}, err
	}
	half := (cfg.numQueries + 1) / 2
	workload, err := gen.Pool(stats.NewRNG(cfg.seed).Fork(2), half, cfg.numQueries-half)
	if err != nil {
		return remoteReport{}, err
	}

	reg := metaprobe.NewMetrics()
	latencyHist := reg.Histogram("loadtest_remote_latency_seconds", nil)
	client := &http.Client{Timeout: 60 * time.Second}

	log.Info("replaying workload against daemon",
		"target", base, "waves", len(workload), "repeat", rc.repeat, "concurrency", cfg.concurrency)

	rep := remoteReport{tiers: map[string]int{}, sheds: map[string]int{}}
	var mu sync.Mutex
	var fanoutSum int64
	var runs int
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for qi := range jobs {
				// One wave: repeat concurrent identical requests, the
				// daemon-side coalescer's unit of mergeable work.
				var waveWG sync.WaitGroup
				for r := 0; r < rc.repeat; r++ {
					waveWG.Add(1)
					go func() {
						defer waveWG.Done()
						qStart := time.Now()
						resp, err := postSelect(client, base, server.SelectRequest{
							Tenant:    rc.tenant,
							Query:     workload[qi].String(),
							K:         cfg.k,
							Threshold: cfg.t,
						})
						elapsed := time.Since(qStart)
						mu.Lock()
						defer mu.Unlock()
						if err != nil {
							rep.failures++
							log.Debug("request failed", "query", workload[qi].String(), "err", err)
							return
						}
						latencyHist.Observe(elapsed.Seconds())
						rep.tiers[resp.Tier]++
						if resp.ShedReason != "" {
							rep.sheds[resp.ShedReason]++
						}
						if resp.Coalesced {
							rep.coalesced++
						} else {
							runs++
						}
						fanoutSum += resp.Fanout
					}()
				}
				waveWG.Wait()
			}
		}()
	}
	for qi := range workload {
		jobs <- qi
	}
	close(jobs)
	wg.Wait()
	rep.wall = time.Since(start)
	rep.waves = len(workload)
	rep.requests = len(workload) * rc.repeat

	answered := rep.requests - rep.failures
	rep.availability = float64(answered) / float64(rep.requests)
	if answered > 0 {
		rep.meanFanout = float64(fanoutSum) / float64(answered)
	}
	if runs > 0 {
		rep.coalesceRatio = float64(answered) / float64(runs)
	}
	qs := latencyHist.Quantiles(0.50, 0.90, 0.99)
	rep.p50 = time.Duration(qs[0] * float64(time.Second))
	rep.p90 = time.Duration(qs[1] * float64(time.Second))
	rep.p99 = time.Duration(qs[2] * float64(time.Second))
	return rep, nil
}

// postSelect issues one /v1/select call and decodes the answer.
func postSelect(client *http.Client, base string, req server.SelectRequest) (*server.SelectResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(base+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("select: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	var out server.SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// printRemoteReport renders the remote run.
func printRemoteReport(w *os.File, cfg loadConfig, rc remoteConfig, rep remoteReport) {
	fmt.Fprintf(w, "\ntarget           %s (tenant %q)\n", rc.target, rc.tenant)
	fmt.Fprintf(w, "requests         %d (%d waves x %d, k=%d, t=%.2f, concurrency %d)\n",
		rep.requests, rep.waves, rc.repeat, cfg.k, cfg.t, cfg.concurrency)
	fmt.Fprintf(w, "wall time        %v (%.1f rps)\n", rep.wall.Round(time.Millisecond),
		float64(rep.requests)/rep.wall.Seconds())
	fmt.Fprintf(w, "latency p50      %v\n", rep.p50.Round(time.Microsecond))
	fmt.Fprintf(w, "latency p90      %v\n", rep.p90.Round(time.Microsecond))
	fmt.Fprintf(w, "latency p99      %v\n", rep.p99.Round(time.Microsecond))
	fmt.Fprintf(w, "availability     %.1f%% (%d failures)\n", rep.availability*100, rep.failures)
	fmt.Fprintf(w, "coalesced        %d of %d (ratio %.2f, mean fanout %.2f)\n",
		rep.coalesced, rep.requests, rep.coalesceRatio, rep.meanFanout)
	for _, tier := range sortedKeys(rep.tiers) {
		fmt.Fprintf(w, "tier %-12s %d\n", tier, rep.tiers[tier])
	}
	for _, reason := range sortedKeys(rep.sheds) {
		fmt.Fprintf(w, "shed %-12s %d\n", reason, rep.sheds[reason])
	}
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// shedCount totals degraded responses.
func (r remoteReport) shedCount() int {
	n := 0
	for _, c := range r.sheds {
		n += c
	}
	return n
}
