package main

import (
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestRunLoadTest(t *testing.T) {
	cfg := loadConfig{
		scale:       0.005,
		seed:        7,
		trainN:      60,
		numQueries:  30,
		concurrency: 2,
		latency:     time.Millisecond,
		k:           1,
		t:           0.8,
	}
	rep, err := runLoadTest(cfg, slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.queries != 30 {
		t.Errorf("queries = %d", rep.queries)
	}
	if rep.p50 <= 0 || rep.p90 < rep.p50 || rep.p99 < rep.p90 {
		t.Errorf("percentiles out of order: %v %v %v", rep.p50, rep.p90, rep.p99)
	}
	if rep.avgProbes < 0 || rep.avgProbes > 20 {
		t.Errorf("avg probes %v out of range", rep.avgProbes)
	}
	if rep.reachedFrac <= 0 || rep.reachedFrac > 1 {
		t.Errorf("reached fraction %v out of range", rep.reachedFrac)
	}
	// With 1ms injected latency, a query probing at least once must
	// take at least 1ms at p99.
	if rep.avgProbes > 0.5 && rep.p99 < time.Millisecond {
		t.Errorf("p99 %v below injected latency despite %v avg probes", rep.p99, rep.avgProbes)
	}
	// The run carries a metrics snapshot with the shared histogram the
	// percentiles came from plus the per-database instrumentation.
	if rep.avgCorA < 0 || rep.avgCorA > 1 {
		t.Errorf("avg CorA %v out of range", rep.avgCorA)
	}
	if rep.calibration.Samples != int64(rep.queries) {
		t.Errorf("calibration samples = %d, want one per query (%d)", rep.calibration.Samples, rep.queries)
	}
	for _, want := range []string{
		"loadtest_query_latency_seconds_count 30",
		"metaprobe_db_search_latency_seconds",
		"metaprobe_selections_total",
		"mp_calibration_samples_total 30",
		"mp_calibration_brier_score",
	} {
		if !strings.Contains(rep.metrics, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}
