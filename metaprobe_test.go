package metaprobe

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// buildTestMetasearcher wires 6 generated health databases through the
// public API with a trained error model.
func buildTestMetasearcher(t testing.TB) (*Metasearcher, []string) {
	return buildTestMetasearcherWith(t, nil, nil)
}

// buildTestMetasearcherWith is buildTestMetasearcher with a custom
// Config and an optional per-database wrapper (applied after summaries
// are built, so summaries always reflect the unwrapped content).
func buildTestMetasearcherWith(t testing.TB, cfg *Config, wrap func(i int, db Database) Database) (*Metasearcher, []string) {
	t.Helper()
	world := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.01)[:6]
	tb, err := hidden.BuildTestbed(world, specs, 23)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := ExactSummaries(dbs)
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		for i := range dbs {
			dbs[i] = wrap(i, dbs[i])
		}
	}
	ms, err := New(dbs, sums, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := gen.TrainTest(stats.NewRNG(4), 150, 150, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	trainStrs := make([]string, len(train))
	for i, q := range train {
		trainStrs[i] = q.String()
	}
	if err := ms.Train(trainStrs); err != nil {
		t.Fatal(err)
	}
	testStrs := make([]string, len(test))
	for i, q := range test {
		testStrs[i] = q.String()
	}
	return ms, testStrs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Error("no databases must fail")
	}
	db := NewLocalDatabase("d", map[string]string{"a": "hello world"})
	if _, err := New([]Database{db}, nil, nil); err == nil {
		t.Error("summary count mismatch must fail")
	}
	if _, err := New([]Database{db}, []*Summary{nil}, nil); err == nil {
		t.Error("nil summary must fail")
	}
	bad := &Summary{} // fails validation (no name)
	if _, err := New([]Database{db}, []*Summary{bad}, nil); err == nil {
		t.Error("invalid summary must fail")
	}
}

func TestUntrainedGuards(t *testing.T) {
	db := NewLocalDatabase("d", map[string]string{"a": "breast cancer research"})
	sums, err := ExactSummaries([]Database{db})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := New([]Database{db}, sums, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Trained() {
		t.Error("fresh metasearcher claims to be trained")
	}
	// Baseline works untrained.
	if got := ms.SelectBaseline("breast cancer", 1); len(got) != 1 || got[0] != "d" {
		t.Errorf("baseline = %v", got)
	}
	// RD-based selection requires training.
	if _, _, err := ms.Select("breast cancer", 1, Absolute); err == nil {
		t.Error("untrained Select must fail")
	}
	if _, err := ms.SelectWithCertainty("breast cancer", 1, Absolute, 0.9, -1); err == nil {
		t.Error("untrained SelectWithCertainty must fail")
	}
	if err := ms.Train([]string{""}); err == nil {
		t.Error("empty training query must fail")
	}
}

func TestSelectPipeline(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	if !ms.Trained() {
		t.Fatal("not trained")
	}
	if n := len(ms.Databases()); n != 6 {
		t.Fatalf("databases = %d", n)
	}
	for _, q := range test[:10] {
		ests := ms.Estimates(q)
		if len(ests) != 6 {
			t.Fatalf("estimates = %v", ests)
		}
		base := ms.SelectBaseline(q, 2)
		if len(base) != 2 {
			t.Fatalf("baseline = %v", base)
		}
		set, certainty, err := ms.Select(q, 2, Partial)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != 2 || certainty < 0 || certainty > 1 {
			t.Errorf("Select(%q) = %v at %v", q, set, certainty)
		}
		res, err := ms.SelectWithCertainty(q, 1, Absolute, 0.9, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Databases) != 1 {
			t.Errorf("certainty selection = %+v", res)
		}
		if res.Reached && res.Certainty < 0.9 {
			t.Errorf("reached but certainty %v < 0.9", res.Certainty)
		}
		if !res.Reached && res.Probes < 6-1 {
			// Without reaching t, every probeable database must have
			// been tried (none fail in this testbed).
			t.Errorf("gave up after %d probes: %+v", res.Probes, res)
		}
	}
}

// TestCertaintyIsCalibrated verifies the paper's interpretation of the
// certainty level (end of Section 3.3): among answers returned with
// certainty ≥ t, roughly a ≥t fraction should be correct.
func TestCertaintyIsCalibrated(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	var returned, correct float64
	const threshold = 0.8
	for _, q := range test {
		res, err := ms.SelectWithCertainty(q, 1, Absolute, threshold, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			continue
		}
		// Ground truth by probing everything.
		ests := make([]float64, len(ms.Databases()))
		for i := range ests {
			v, err := ms.rel.Probe(ms.tb.DB(i), q)
			if err != nil {
				t.Fatal(err)
			}
			ests[i] = v
		}
		golden := ms.names([]int{rankTop1(ests)})
		returned++
		if golden[0] == res.Databases[0] {
			correct++
		}
	}
	if returned < 20 {
		t.Fatalf("only %v answers reached the threshold; test underpowered", returned)
	}
	rate := correct / returned
	if rate < threshold-0.12 {
		t.Errorf("calibration: %v of answers correct, promised ≥ %v", rate, threshold)
	}
}

func rankTop1(scores []float64) int {
	best := 0
	for i, v := range scores {
		if v > scores[best] {
			best = i
		}
	}
	return best
}

func TestMetasearchEndToEnd(t *testing.T) {
	ms, test := buildTestMetasearcher(t)
	for _, q := range test {
		items, selRes, err := ms.Metasearch(q, 2, Partial, 0.7, 10)
		if err != nil {
			t.Fatal(err)
		}
		if selRes == nil || len(selRes.Databases) != 2 {
			t.Fatalf("selection = %+v", selRes)
		}
		seen := map[string]bool{}
		for _, it := range items {
			key := it.Database + "/" + it.Doc.ID
			if seen[key] {
				t.Fatalf("duplicate fused result %s", key)
			}
			seen[key] = true
			if it.Database != selRes.Databases[0] && it.Database != selRes.Databases[1] {
				t.Fatalf("result from unselected database %s", it.Database)
			}
		}
		if len(items) > 0 {
			return // found a query with results; pipeline verified
		}
	}
	t.Error("no test query produced any fused results")
}

func TestHTTPDatabaseThroughFacade(t *testing.T) {
	local := NewLocalDatabase("remote", map[string]string{
		"d1": "breast cancer research", "d2": "cancer treatment", "d3": "healthy diet",
	})
	srv := httptest.NewServer(hidden.NewServer(local))
	defer srv.Close()

	for _, scrape := range []bool{false, true} {
		db := NewHTTPDatabase("remote", srv.URL, scrape)
		res, err := db.Search("cancer", 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.MatchCount != 2 {
			t.Errorf("scrape=%v: MatchCount = %d, want 2", scrape, res.MatchCount)
		}
	}

	// Sampled summaries through the remote interface.
	db := NewHTTPDatabase("remote", srv.URL, false)
	sums, err := SampleSummaries([]Database{db}, []string{"cancer", "diet"}, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0].DocCount == 0 || !sums[0].Sampled {
		t.Errorf("sampled summary = %+v", sums[0])
	}
}

func TestSelectParameterValidation(t *testing.T) {
	ms, _ := buildTestMetasearcher(t)
	if _, _, err := ms.Select("cancer", 0, Absolute); err == nil {
		t.Error("k=0 must fail")
	}
	if _, _, err := ms.Select("cancer", 100, Absolute); err == nil {
		t.Error("k>n must fail")
	}
	if _, err := ms.SelectWithCertainty("cancer", 1, Absolute, 1.7, -1); err == nil {
		t.Error("t>1 must fail")
	}
}

func TestExactSummariesRejectsRemote(t *testing.T) {
	db := NewHTTPDatabase("r", "http://127.0.0.1:1", false)
	if _, err := ExactSummaries([]Database{db}); err == nil {
		t.Error("remote database must be rejected")
	}
}

func TestNewLocalDatabaseDeterminism(t *testing.T) {
	docs := map[string]string{}
	for i := 0; i < 50; i++ {
		docs[fmt.Sprintf("doc%02d", i)] = fmt.Sprintf("term%d cancer health", i%7)
	}
	a := NewLocalDatabase("a", docs)
	b := NewLocalDatabase("b", docs)
	ra, _ := a.Search("cancer", 5)
	rb, _ := b.Search("cancer", 5)
	if ra.MatchCount != rb.MatchCount || len(ra.Docs) != len(rb.Docs) {
		t.Fatal("construction not deterministic")
	}
	for i := range ra.Docs {
		if ra.Docs[i].ID != rb.Docs[i].ID {
			t.Fatal("ranking not deterministic across constructions")
		}
	}
	if !strings.HasPrefix(ra.Docs[0].ID, "doc") {
		t.Errorf("unexpected doc ID %q", ra.Docs[0].ID)
	}
}
