// Package metaprobe is a metasearcher for Hidden-Web databases with
// probabilistic database selection and adaptive probing, reproducing
//
//	Liu, Luo, Cho, Chu. "A Probabilistic Approach to Metasearching
//	with Adaptive Probing." ICDE 2004.
//
// A metasearcher mediates many keyword-searchable document databases.
// Given a query, it must pick the k most relevant databases without
// contacting all of them. metaprobe does this in three tiers:
//
//   - Baseline: rank databases by the classic term-independence
//     estimate computed from local content summaries (Eq. 1 of the
//     paper) — fast, but often wrong because query terms are
//     correlated differently in different databases.
//   - RD-based: model each database's estimation error as a learned
//     per-query-type distribution and select the set with the highest
//     expected correctness — substantially more accurate at the same
//     (zero) query-time cost.
//   - Adaptive probing: when the expected correctness is below a
//     user-required certainty level, issue the live query to a few
//     carefully chosen databases until the certainty is met.
//
// # Quick start
//
//	dbs := []metaprobe.Database{ ... }                  // your sources
//	sums, _ := metaprobe.ExactSummaries(dbs)            // or SampleSummaries
//	ms, _ := metaprobe.New(dbs, sums, nil)
//	_ = ms.Train(trainingQueries)                       // learn error model
//	res, _ := ms.SelectWithCertainty("breast cancer", 2, metaprobe.Absolute, 0.9, -1)
//	fmt.Println(res.Databases, res.Certainty)
//
// See the examples/ directory for complete programs.
package metaprobe

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode"

	"metaprobe/internal/core"
	"metaprobe/internal/estimate"
	"metaprobe/internal/eval"
	"metaprobe/internal/fusion"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
	"metaprobe/internal/probeexec"
	"metaprobe/internal/queries"
	"metaprobe/internal/refresh"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
	"metaprobe/internal/textindex"
)

// Re-exported types: the public API is the root package; internal
// packages provide the implementation.
type (
	// Database is the search interface of one Hidden-Web database.
	Database = hidden.Database
	// Result is a database's answer page.
	Result = hidden.Result
	// DocSummary is one ranked document on an answer page.
	DocSummary = hidden.DocSummary
	// Summary is a database's content summary ((term, df) statistics).
	Summary = summary.Summary
	// Relevancy is a database-relevancy definition with its estimator.
	Relevancy = estimate.Relevancy
	// Metric selects absolute or partial correctness.
	Metric = core.Metric
	// Policy chooses which database to probe next.
	Policy = core.Policy
	// MergedResult is one fused result document.
	MergedResult = fusion.Item
	// Metrics is a concurrency-safe metrics registry (counters, gauges,
	// latency histograms with p50/p90/p99 snapshots) with Prometheus
	// text-format exposition. See Config.Metrics.
	Metrics = obs.Registry
	// Tracer receives one structured SelectionTrace per selection call.
	// See Config.Tracer.
	Tracer = obs.Tracer
	// SelectionTrace is the structured record of one selection:
	// estimates, chosen set, certainty trajectory, per-probe detail.
	SelectionTrace = obs.SelectionTrace
	// ProbeTrace is one probe inside a SelectionTrace.
	ProbeTrace = obs.ProbeTrace
	// RingTracer is a Tracer retaining the last N traces in memory.
	RingTracer = obs.RingTracer
	// SpanTracer records hierarchical request spans with a bounded
	// in-memory store and OTLP-compatible JSON export. See Config.Spans
	// and NewSpanTracer; span.Handler serves /debug/spans.
	SpanTracer = span.Tracer
	// Span is one recorded span (exported for waterfall rendering).
	Span = span.Span
	// SLO tracks latency and availability objectives with multi-window
	// (5m/1h) burn rates. See Config.SLO and NewSLO.
	SLO = obs.SLO
	// SLOConfig sets an SLO tracker's objectives.
	SLOConfig = obs.SLOConfig
	// SLOSnapshot is a point-in-time burn-rate view (the /debug/slo
	// endpoint renders it as JSON).
	SLOSnapshot = obs.SLOSnapshot
	// CostSummary is one selection's probe-cost account. See
	// SelectionResult.Cost.
	CostSummary = obs.CostSummary
	// BackendCost is the per-backend slice of a CostSummary.
	BackendCost = obs.BackendCost
	// Calibration is a concurrency-safe reliability accumulator binning
	// predicted certainty against realized correctness. See
	// Config.Calibration and NewCalibration.
	Calibration = obs.Calibration
	// CalibrationSnapshot is a point-in-time reliability view.
	CalibrationSnapshot = obs.CalibrationSnapshot
	// DriftConfig tunes online ED drift detection. See Config.Drift.
	DriftConfig = obs.DriftConfig
	// DriftAlert reports one detected error-distribution drift.
	DriftAlert = obs.DriftAlert
	// DriftStatus is the state of one monitored (database, query type).
	DriftStatus = obs.DriftStatus
	// ProbeLimits bounds probe concurrency for the context-aware
	// selection paths. See Config.ProbeConcurrency.
	ProbeLimits = probeexec.Limits
	// BreakerConfig tunes the per-backend circuit breakers guarding
	// live probes. See Config.Breaker.
	BreakerConfig = probeexec.BreakerConfig
	// BreakerState is a backend circuit breaker's state (closed,
	// half-open or open), surfaced through the mp_breaker_state metric.
	BreakerState = probeexec.BreakerState
	// RefreshConfig tunes the online model refresher that retrains
	// drifted error distributions in the background. See Config.Refresh.
	RefreshConfig = refresh.Config
	// RefreshStats are the refresher's lifetime counters. See
	// Metasearcher.RefreshStats.
	RefreshStats = refresh.Stats
	// RefreshValidation is one refresh task's holdout audit: the old and
	// new models' prediction errors and whether the candidate shipped.
	RefreshValidation = refresh.Validation
)

// NewMetrics returns an empty metrics registry for Config.Metrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewRingTracer returns a Tracer keeping the last capacity traces
// (capacity ≤ 0 defaults to 64) for Config.Tracer.
func NewRingTracer(capacity int) *RingTracer { return obs.NewRingTracer(capacity) }

// NewSpanTracer returns a span tracer with a bounded in-memory store
// of capacity spans (≤ 0 defaults to 8192; the oldest spans are
// evicted and counted once full) for Config.Spans.
func NewSpanTracer(capacity int) *SpanTracer { return span.NewTracer(capacity) }

// NewSLO returns a latency/availability SLO tracker for Config.SLO.
// The zero config selects a 250ms @ 99% latency objective and 99.9%
// availability; call Bind to export mp_slo_* series into a registry.
func NewSLO(cfg SLOConfig) *SLO { return obs.NewSLO(cfg) }

// NewCalibration returns a reliability accumulator with numBins
// equal-width certainty bins over [0, 1] (≤ 0 defaults to 10). Feed it
// (predicted certainty, realized correctness) pairs wherever ground
// truth is available — Metasearcher.Audit does so by live-probing.
func NewCalibration(numBins int) *Calibration { return obs.NewCalibration(numBins) }

// InstrumentDatabase wraps db so that every search and fetch records
// per-database latency, count and error metrics into reg; when db is a
// chain of middleware (NewCached, rate limiting, retries — see
// internal/hidden), their cache hit/miss, retry and wait statistics
// are wired into reg as well. Wrap outermost, before sharing between
// goroutines.
func InstrumentDatabase(db Database, reg *Metrics) Database {
	return hidden.NewInstrumented(db, reg)
}

// NewCachedDatabase wraps db with an LRU result cache of the given
// capacity (entries; ≤ 0 defaults to 1024). Within a metasearch
// session the same query hits a database repeatedly — training,
// probing and result fetching overlap — so a small cache pays for
// itself immediately. Cache statistics surface through
// InstrumentDatabase.
func NewCachedDatabase(db Database, capacity int) Database {
	return hidden.NewCached(db, capacity)
}

// Correctness metrics (Section 3.2 of the paper).
const (
	// Absolute correctness: the selected set must equal the true top-k.
	Absolute = core.Absolute
	// Partial correctness: credit for the overlap with the true top-k.
	Partial = core.Partial
)

// Config tunes a Metasearcher; the zero value (or nil) gives the
// paper's defaults for document-frequency relevancy.
type Config struct {
	// Relevancy is the relevancy definition (default: document
	// frequency with the term-independence estimator).
	Relevancy Relevancy
	// Model is the error-model training configuration.
	Model core.Config
	// BestSet bounds the absolute-metric set search.
	BestSet core.BestSetOptions
	// OnlineRefinement feeds every live probe back into the error
	// model (the paper's future-work direction): probes double as free
	// training samples, so the model tracks database drift.
	OnlineRefinement bool
	// Metrics, when non-nil, receives selection and probe metrics
	// (selection latency quantiles, probe counters per database,
	// certainty outcomes). Nil — the default — disables metric
	// recording entirely; the only cost left on the selection path is
	// one pointer comparison.
	Metrics *Metrics
	// Tracer, when non-nil, receives one SelectionTrace per Select /
	// SelectWithCertainty / SelectWithPolicy / Metasearch call:
	// estimates, the chosen set, and each probe's target, usefulness
	// and certainty-after. Nil disables tracing at the same zero cost.
	Tracer Tracer
	// Drift, when non-nil, enables online drift detection on the
	// learned error distributions: every live probe's fresh error feeds
	// a bounded sliding window per (database, query type), periodically
	// KS-tested against the trained ED. Statistics surface through
	// Metrics (mp_ed_drift_* series) and failed tests through OnDrift.
	// The zero DriftConfig value selects sensible defaults. Detection
	// starts once Train (or NewFromModel) has produced a model; nil —
	// the default — keeps the probe path free of drift bookkeeping.
	Drift *DriftConfig
	// OnDrift, when non-nil alongside Drift, is invoked synchronously
	// on the probing goroutine for every failed drift test, so callers
	// can schedule re-probing or re-training (the paper's adaptive loop
	// closed online). Implementations should be fast and debounce: a
	// persistently drifted key re-alerts every Drift.Interval probes.
	OnDrift func(DriftAlert)
	// Refresh, when non-nil alongside Drift, closes the drift loop
	// automatically: every drift alert is handed to a background
	// refresher that re-probes the drifted (database, query type) under
	// a bounded budget, rebuilds its error distribution, validates the
	// candidate model on a probe holdout, and hot-swaps it in — or
	// rolls it back when validation regresses. RefreshConfig.Queries
	// must supply workload-like probe queries; without it every refresh
	// task aborts. Refresh probes run through the same probe-execution
	// pool as live selections (Config.ProbeConcurrency et al.), so
	// refresh traffic cannot starve serving. Call Metasearcher.Close to
	// stop the background worker.
	Refresh *RefreshConfig
	// ProbeConcurrency bounds the probes in flight on the context-aware
	// selection paths (SelectWithCertaintyContext and friends): a
	// global cap shared by every concurrent selection, plus an optional
	// per-backend cap. The zero value defaults to 16 global, unlimited
	// per backend. The context-free paths probe strictly sequentially
	// and ignore it.
	ProbeConcurrency ProbeLimits
	// Speculation is the number of policy candidates each adaptive-
	// probing round dispatches concurrently on the context-aware paths.
	// 0 or 1 — the default — reproduces the paper's sequential greedy
	// loop exactly (same probe sequence, same certainty trajectory);
	// higher values trade extra probes for wall-clock latency on slow
	// backends.
	Speculation int
	// HedgeAfter, when positive, launches a second attempt for any
	// context-aware probe that has not answered after this delay; the
	// first answer wins and the loser is cancelled. Effective against
	// tail latency; 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeTimeout caps each context-aware probe (hedge included) end
	// to end; a timed-out probe counts as a backend failure. 0 leaves
	// probes bounded only by the caller's context.
	ProbeTimeout time.Duration
	// Breaker tunes the per-backend circuit breakers on the context-
	// aware paths: consecutive failures open a backend's breaker, and
	// while open its probes are skipped (the selection degrades
	// gracefully instead of waiting on a dead backend). The zero value
	// opens after 5 consecutive failures with a 30s cooldown.
	Breaker BreakerConfig
	// Spans, when non-nil, records a hierarchical span tree for every
	// context-aware selection: a root "selection" span with each probe,
	// its attempts (hedges included), breaker transitions, middleware
	// cache/retry events and wire sizes nested below it, retrievable by
	// trace ID (span.Handler serves /debug/spans?trace=<id>). The trace
	// ID is reported on SelectionResult.TraceID and, when Metrics is
	// also set, attached as an exemplar to the selection-latency
	// histogram so a slow bucket links to a concrete trace. Nil — the
	// default — keeps the selection path span-free.
	Spans *SpanTracer
	// SLO, when non-nil, feeds every selection's latency and outcome
	// into multi-window burn-rate tracking. Call SLO.Bind(Metrics) to
	// export mp_slo_* series; obs.SLOHandler serves /debug/slo. Nil
	// disables SLO accounting.
	SLO *SLO
}

// DocFrequencyRelevancy returns the paper's default relevancy: number
// of matching documents, estimated by term independence (Eq. 1).
func DocFrequencyRelevancy() Relevancy { return estimate.NewDocFrequency() }

// DocSimilarityRelevancy returns the alternative definition of Section
// 2.1: best-document cosine similarity, estimated GlOSS-style. Pair it
// with SimilarityModelConfig.
func DocSimilarityRelevancy() Relevancy { return estimate.NewDocSimilarity() }

// SimilarityModelConfig returns the training configuration suited to
// cosine relevancy values in [0, 1].
func SimilarityModelConfig() core.Config { return core.SimilarityConfig() }

// Metasearcher mediates a set of databases: it estimates, selects, and
// probes on behalf of user queries, and fuses the final results.
type Metasearcher struct {
	tb   *hidden.Testbed
	sums *summary.Set
	rel  Relevancy
	cfg  Config
	// version is the serving model snapshot, read RCU-style: selections
	// load the pointer once and keep that version for their lifetime;
	// Train, ReloadModel and the online refresher publish successors
	// with a single atomic store, so a swap never blocks a selection.
	version atomic.Pointer[core.ModelVersion]
	// drift is the online ED drift detector, built from cfg.Drift once
	// a model exists (nil when disabled or untrained).
	drift *obs.DriftDetector
	// refresher retrains drifted EDs in the background (nil unless
	// cfg.Refresh is set).
	refresher *refresh.Refresher
	// exec runs context-aware probes: worker pool, circuit breakers,
	// hedging, speculative rounds (internal/probeexec).
	exec *probeexec.Executor
	// modelMu serializes access to the serving model's mutable state
	// and to version publication: Model.ObserveProbe (online
	// refinement) mutates the ED histograms that NewSelection and the
	// drift detector read, and a refresh must clone and commit against
	// a quiescent model — so concurrent selections, probe feedback and
	// version swaps all take this lock. Readers that only need the
	// pointer (Trained, ModelInfo) load it atomically without the lock.
	modelMu sync.Mutex
	// selSeq numbers selections for trace/log correlation IDs.
	selSeq atomic.Int64
	// shellMu guards the recycled Selection shells below. It is a leaf
	// lock (never held while taking modelMu).
	shellMu sync.Mutex
	// shellVer stamps the model version the cached shells were filled
	// from. A version swap (refresh, reload) invalidates the cache:
	// shells reference the old version's table RDs, and the next
	// selection must serve the new tables.
	shellVer *core.ModelVersion
	// shells is a bounded LIFO of released Selection shells — the
	// template selections behind the table-lookup serving path. Each
	// query takes one, FillSelection rewrites it in place (warm derived
	// buffers, owned impulses, zero allocations), and recycleSelection
	// returns it once the selection is finished and unreferenced. A
	// shell is never in the cache while a request holds it, so a
	// template cannot be refilled while shared.
	shells []*core.Selection
}

// maxSelShells bounds the recycled-shell cache; beyond it, shells are
// dropped to the garbage collector (more than this many concurrent
// selections simply allocate fresh state).
const maxSelShells = 64

// takeShell pops a recycled Selection shell filled against ver, or
// returns nil when the cache is empty or was filled under another
// version (the cache is then invalidated wholesale).
func (m *Metasearcher) takeShell(ver *core.ModelVersion) *core.Selection {
	m.shellMu.Lock()
	defer m.shellMu.Unlock()
	if m.shellVer != ver {
		for i := range m.shells {
			m.shells[i] = nil
		}
		m.shells = m.shells[:0]
		m.shellVer = ver
	}
	if n := len(m.shells); n > 0 {
		s := m.shells[n-1]
		m.shells[n-1] = nil
		m.shells = m.shells[:n-1]
		return s
	}
	return nil
}

// recycleSelection releases sel's pooled scratch and hands the shell
// back to the template cache for the next selection, provided the
// serving version hasn't moved since it was filled (a stale shell
// would pin the old version's RD tables in memory). Callers must not
// touch sel afterwards.
func (m *Metasearcher) recycleSelection(ver *core.ModelVersion, sel *core.Selection) {
	sel.Release()
	m.shellMu.Lock()
	defer m.shellMu.Unlock()
	if m.shellVer != ver || len(m.shells) >= maxSelShells {
		return
	}
	m.shells = append(m.shells, sel)
}

// serving returns the serving model, nil before training.
func (m *Metasearcher) serving() *core.Model {
	if v := m.version.Load(); v != nil {
		return v.Model
	}
	return nil
}

// publish stores the successor version holding model. Callers must
// hold modelMu.
func (m *Metasearcher) publish(model *core.Model, source, refreshedDB string) *core.ModelVersion {
	now := time.Now()
	var next *core.ModelVersion
	if cur := m.version.Load(); cur != nil {
		next = cur.Next(model, source, refreshedDB, now)
	} else {
		next = core.NewModelVersion(model, source, now)
	}
	m.version.Store(next)
	return next
}

// New builds a metasearcher over the given databases and their content
// summaries (one per database, in order). Selection beyond the
// baseline requires Train.
func New(dbs []Database, sums []*Summary, cfg *Config) (*Metasearcher, error) {
	if len(dbs) == 0 {
		return nil, fmt.Errorf("metaprobe: need at least one database")
	}
	if len(sums) != len(dbs) {
		return nil, fmt.Errorf("metaprobe: %d summaries for %d databases", len(sums), len(dbs))
	}
	tb, err := hidden.NewTestbed(dbs)
	if err != nil {
		return nil, fmt.Errorf("metaprobe: %w", err)
	}
	for i, s := range sums {
		if s == nil {
			return nil, fmt.Errorf("metaprobe: summary %d is nil", i)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("metaprobe: %w", err)
		}
	}
	c := Config{Model: core.DefaultConfig()}
	if cfg != nil {
		c = *cfg
	}
	if c.Relevancy == nil {
		c.Relevancy = estimate.NewDocFrequency()
	}
	if c.Metrics != nil {
		registerSelectionMetrics(c.Metrics, tb)
	}
	m := &Metasearcher{
		tb:   tb,
		sums: &summary.Set{Summaries: sums},
		rel:  c.Relevancy,
		cfg:  c,
		exec: probeexec.NewExecutor(probeexec.Config{
			Limits:       c.ProbeConcurrency,
			Speculation:  c.Speculation,
			HedgeAfter:   c.HedgeAfter,
			ProbeTimeout: c.ProbeTimeout,
			Breaker:      c.Breaker,
			Metrics:      c.Metrics,
		}),
	}
	if c.Refresh != nil {
		rc := *c.Refresh
		if rc.Metrics == nil {
			rc.Metrics = c.Metrics
		}
		if rc.Spans == nil {
			rc.Spans = c.Spans
		}
		m.refresher = refresh.New(rc, refreshHost{m})
	}
	return m, nil
}

// Close stops the background refresher (a no-op without
// Config.Refresh). The metasearcher remains usable for selections;
// drift alerts arriving after Close are dropped.
func (m *Metasearcher) Close() {
	m.refresher.Stop()
}

// Databases returns the mediated database names in order.
func (m *Metasearcher) Databases() []string {
	out := make([]string, m.tb.Len())
	for i := range out {
		out[i] = m.tb.DB(i).Name()
	}
	return out
}

// Trained reports whether the error model has been learned.
func (m *Metasearcher) Trained() bool { return m.version.Load() != nil }

// Train learns the per-database, per-query-type error distributions by
// issuing the training queries to every database (Section 4 of the
// paper). Training queries should resemble the future workload; a few
// hundred per query type suffice (Figure 8).
func (m *Metasearcher) Train(trainQueries []string) error {
	qs, err := parseQueries(trainQueries)
	if err != nil {
		return err
	}
	model, err := core.Train(m.tb, m.sums, m.rel, qs, m.cfg.Model)
	if err != nil {
		return fmt.Errorf("metaprobe: %w", err)
	}
	m.modelMu.Lock()
	m.publish(model, "train", "")
	m.modelMu.Unlock()
	m.initDrift(model)
	return nil
}

// initDrift builds the drift detector (once) and points every
// monitored (database, query type) at the model's trained EDs: each
// key whose ED carries at least MinObservations training samples gets
// a reference sample to test fresh probe errors against. A nil
// cfg.Drift disables detection entirely.
func (m *Metasearcher) initDrift(model *core.Model) {
	if m.cfg.Drift == nil {
		return
	}
	if m.drift == nil {
		d := obs.NewDriftDetector(*m.cfg.Drift)
		d.SetMetrics(m.cfg.Metrics)
		d.SetOnAlert(m.onDriftAlert)
		m.drift = d
	}
	m.setDriftReferences(model)
}

// setDriftReferences re-anchors the drift detector on model's EDs,
// resetting each re-anchored key's sliding window.
func (m *Metasearcher) setDriftReferences(model *core.Model) {
	if m.drift == nil {
		return
	}
	minObs := model.Cfg.MinObservations
	for i, dm := range model.DBs {
		name := m.tb.DB(i).Name()
		for key, ed := range dm.EDs {
			if ed.Observations() >= minObs {
				m.drift.SetReference(name, key.String(), ed.ReferenceSample(0))
			}
		}
	}
}

// onDriftAlert fans one failed drift test out to the user callback and
// to the background refresher.
func (m *Metasearcher) onDriftAlert(a DriftAlert) {
	if m.cfg.OnDrift != nil {
		m.cfg.OnDrift(a)
	}
	if m.refresher == nil {
		return
	}
	key, err := core.ParseTypeKey(a.QueryType)
	if err != nil {
		return
	}
	if i := m.tb.IndexOf(a.DB); i >= 0 {
		m.refresher.Alert(refresh.Alert{DB: a.DB, DBIdx: i, Key: key})
	}
}

// RefreshNow enqueues an out-of-band refresh of one (database, query
// type) — the same path a drift alert takes — for operators who know a
// collection changed without waiting for detection. queryType is the
// drift-alert form, e.g. "2-term/high". The refresh runs in the
// background; follow it through RefreshStats or /debug/model.
func (m *Metasearcher) RefreshNow(db, queryType string) error {
	if m.refresher == nil {
		return fmt.Errorf("metaprobe: online refresh not configured (Config.Refresh)")
	}
	i := m.tb.IndexOf(db)
	if i < 0 {
		return fmt.Errorf("metaprobe: unknown database %q", db)
	}
	key, err := core.ParseTypeKey(queryType)
	if err != nil {
		return fmt.Errorf("metaprobe: %w", err)
	}
	m.refresher.Alert(refresh.Alert{DB: db, DBIdx: i, Key: key})
	return nil
}

// RefreshStats reports the background refresher's lifetime counters
// and its most recent validation (zero value without Config.Refresh).
func (m *Metasearcher) RefreshStats() RefreshStats {
	return m.refresher.Stats()
}

// DriftStatuses reports the state of every drift-monitored (database,
// query type): window occupancy, tests run, alerts raised, latest KS
// statistic and p-value. Empty unless Config.Drift is set and the
// model is trained.
func (m *Metasearcher) DriftStatuses() []DriftStatus {
	return m.drift.Snapshot()
}

// DriftConfig returns the effective drift-detection configuration with
// defaults applied, or the zero value when detection is disabled.
func (m *Metasearcher) DriftConfig() DriftConfig {
	if m.drift == nil {
		return DriftConfig{}
	}
	return m.drift.Config()
}

// Estimates returns r̂(db, q) for every database, in order.
func (m *Metasearcher) Estimates(query string) []float64 {
	out := make([]float64, m.tb.Len())
	for i := range out {
		out[i] = m.rel.Estimate(m.sums.Summaries[i], query)
	}
	return out
}

// SelectBaseline returns the k databases with the highest estimated
// relevancy — the pre-paper state of the art, provided as the
// comparison point and as the fallback before Train.
func (m *Metasearcher) SelectBaseline(query string, k int) []string {
	return m.names(core.TopKByScore(m.Estimates(query), k))
}

// Select returns the k-set with the highest expected correctness under
// the probabilistic relevancy model, with no probing (the paper's
// RD-based method), along with that expected correctness.
func (m *Metasearcher) Select(query string, k int, metric Metric) ([]string, float64, error) {
	start := m.obsNow()
	rec := m.stageRecorder()
	sel, ver, err := m.selection(query, metric, k, rec)
	if err != nil {
		return nil, 0, err
	}
	mark := sel.BeginStage()
	set, e := sel.Best()
	sel.EndStage(mark, core.StageECorDP)
	m.flushStages(rec, nil)
	m.recordSLO(start, true)
	m.observe(m.nextSelectionID(), "", query, metric, 0, sel, core.Outcome{Set: set, Certainty: e, Initial: e, Reached: true}, start)
	m.recycleSelection(ver, sel)
	return m.names(set), e, nil
}

// SelectContext is Select bounded by ctx. The RD-based computation
// issues no probes and runs in microseconds, so the bound is a
// fail-fast check at entry (a request whose caller already gave up is
// not worth even the DP), not a mid-flight cancellation point.
func (m *Metasearcher) SelectContext(ctx context.Context, query string, k int, metric Metric) ([]string, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return m.Select(query, k, metric)
}

// SelectionResult reports an adaptive-probing selection.
type SelectionResult struct {
	// ID is the selection's correlation identifier ("sel-000042"),
	// shared with the SelectionTrace and intended for structured logs.
	// Empty when neither Metrics nor Tracer is configured (the disabled
	// path allocates nothing).
	ID string
	// Databases are the selected database names (testbed order).
	Databases []string
	// Certainty is the expected correctness of the answer.
	Certainty float64
	// Probes is the number of live probes spent.
	Probes int
	// ProbeFailures is the number of probe attempts that failed and
	// marked their database unprobeable (or excluded it, on the
	// context-aware paths). A selection can reach the certainty even
	// after failures; this surfaces that it ran degraded.
	ProbeFailures int
	// Reached reports whether the requested certainty was met.
	Reached bool
	// Degraded reports that one or more backends were excluded from
	// the selection (probe failure or open circuit breaker), so the
	// answer was computed over a reduced testbed. Only the context-
	// aware selection paths degrade; the context-free paths leave it
	// false.
	Degraded bool
	// ExcludedDBs names the excluded backends (testbed order) when
	// Degraded is set.
	ExcludedDBs []string
	// TraceID identifies the selection's span tree, set on the context-
	// aware paths when Config.Spans is configured (retrieve it via
	// SpanTracer.Tree or /debug/spans?trace=<id>). Empty otherwise.
	TraceID string
	// Cost is the selection's probe-cost account — probes issued,
	// hedges won and wasted, cache hits, bytes fetched and per-backend
	// wall time — populated on the context-aware paths when any
	// observability sink (Metrics, Spans or SLO) is configured; nil
	// otherwise.
	Cost *CostSummary
}

// SelectWithCertainty runs the paper's APro algorithm: select k
// databases whose expected correctness meets the user-required
// certainty t, probing as few databases as possible (greedy usefulness
// policy). maxProbes < 0 leaves probing unbounded. Even when the
// certainty cannot be reached (all probes failed or exhausted), the
// best available set is returned with Reached=false.
func (m *Metasearcher) SelectWithCertainty(query string, k int, metric Metric, t float64, maxProbes int) (*SelectionResult, error) {
	return m.selectWithPolicy(query, k, metric, t, maxProbes, &core.Greedy{})
}

// SelectWithPolicy is SelectWithCertainty with a custom probe policy.
func (m *Metasearcher) SelectWithPolicy(query string, k int, metric Metric, t float64, maxProbes int, policy Policy) (*SelectionResult, error) {
	return m.selectWithPolicy(query, k, metric, t, maxProbes, policy)
}

func (m *Metasearcher) selectWithPolicy(query string, k int, metric Metric, t float64, maxProbes int, policy Policy) (*SelectionResult, error) {
	start := m.obsNow()
	rec := m.stageRecorder()
	sel, ver, err := m.selection(query, metric, k, rec)
	if err != nil {
		return nil, err
	}
	numTerms := countTerms(query)
	probe := func(i int) (float64, error) {
		v, err := m.rel.Probe(m.tb.DB(i), query)
		if err == nil {
			if ferr := m.probeFeedback(i, query, numTerms, v); ferr != nil {
				return 0, ferr
			}
		}
		return v, err
	}
	out, err := core.APro(sel, probe, policy, t, maxProbes)
	if err != nil && len(out.Set) == 0 {
		m.recordSLO(start, false)
		return nil, fmt.Errorf("metaprobe: %w", err)
	}
	m.flushStages(rec, nil)
	m.recordSLO(start, true)
	id := m.nextSelectionID()
	m.observe(id, "", query, metric, t, sel, out, start)
	m.recycleSelection(ver, sel)
	return &SelectionResult{
		ID:            id,
		Databases:     m.names(out.Set),
		Certainty:     out.Certainty,
		Probes:        out.Probes(),
		ProbeFailures: len(out.ProbeErrs),
		Reached:       out.Reached,
	}, nil
}

// probeFeedback folds one successful live probe back into the shared
// model state (online refinement, drift detection). Both selection
// paths route through it; modelMu makes the feedback safe when many
// selections — or one selection's speculative probes — land
// concurrently, since Model.ObserveProbe mutates histograms the drift
// detector also reads. The feedback deliberately does not touch the
// selection it came from: a losing hedge attempt can deliver its probe
// result after the winning attempt already finished the selection and
// recycled its shell, so everything here is recomputed from the model.
func (m *Metasearcher) probeFeedback(i int, query string, numTerms int, v float64) error {
	if !m.cfg.OnlineRefinement && m.drift == nil {
		return nil
	}
	m.modelMu.Lock()
	defer m.modelMu.Unlock()
	// Feedback lands on the current serving version, which may be newer
	// than the version this selection was built from: fresh probe data
	// belongs to whatever model serves next. Routing through the
	// version (rather than its model directly) invalidates the affected
	// database's precomputed RD rows, so the next selection re-derives
	// them from the refined histograms.
	ver := m.version.Load()
	if ver == nil {
		return nil
	}
	if m.cfg.OnlineRefinement {
		if err := ver.ObserveProbe(i, query, numTerms, v); err != nil {
			return err
		}
	}
	if m.drift != nil {
		m.observeDrift(ver.Model, i, query, numTerms, v)
	}
	return nil
}

// SelectWithCertaintyContext is SelectWithCertainty bounded by ctx and
// executed through the probe-execution engine: probes run under the
// configured concurrency limits, circuit breakers and hedging
// (Config.ProbeConcurrency, Breaker, HedgeAfter), and with
// Config.Speculation > 1 each probing round dispatches several policy
// candidates concurrently. Cancelling ctx abandons the selection.
//
// Failures degrade instead of erroring: a backend whose probe fails —
// or whose breaker is open — is treated as serving nothing for this
// query and excluded, and the result reports Degraded/ExcludedDBs.
// With Speculation ≤ 1 and no failures, the result is identical to
// SelectWithCertainty's.
func (m *Metasearcher) SelectWithCertaintyContext(ctx context.Context, query string, k int, metric Metric, t float64, maxProbes int) (*SelectionResult, error) {
	return m.selectWithPolicyContext(ctx, query, k, metric, t, maxProbes, &core.Greedy{})
}

// SelectWithPolicyContext is SelectWithCertaintyContext with a custom
// probe policy. Policies implementing the internal Ranker interface
// (the greedy policy does) support speculative rounds; others fall
// back to sequential probing regardless of Config.Speculation.
func (m *Metasearcher) SelectWithPolicyContext(ctx context.Context, query string, k int, metric Metric, t float64, maxProbes int, policy Policy) (*SelectionResult, error) {
	return m.selectWithPolicyContext(ctx, query, k, metric, t, maxProbes, policy)
}

func (m *Metasearcher) selectWithPolicyContext(ctx context.Context, query string, k int, metric Metric, t float64, maxProbes int, policy Policy) (*SelectionResult, error) {
	start := m.obsNow()
	// Root span and cost account. The span tree nests every probe,
	// attempt and middleware event below "selection"; the cost account
	// rides the context so attempts charge it from whatever goroutine
	// they land on. Both are nil-safe no-ops when unconfigured. The
	// span opens before the selection state is built so the
	// rd_convolve stage — deriving every database's RD — is inside the
	// root span's window, and the per-stage totals attached as events
	// sum to ≈ the span's duration.
	ctx, sp := m.cfg.Spans.Start(ctx, "selection")
	sp.SetAttr("query", query)
	sp.SetAttr("k", strconv.Itoa(k))
	sp.SetAttr("metric", metric.String())
	sp.SetAttr("threshold", strconv.FormatFloat(t, 'g', -1, 64))
	rec := m.stageRecorder()
	sel, ver, err := m.selection(query, metric, k, rec)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	var acct *obs.CostAccount
	if m.cfg.Metrics != nil || m.cfg.Spans != nil || m.cfg.SLO != nil {
		acct = obs.NewCostAccount()
		ctx = obs.WithCost(ctx, acct)
	}
	numTerms := countTerms(query)
	probe := func(ctx context.Context, i int) (float64, error) {
		// The bound-context view routes the relevancy prober's searches
		// through SearchContext, so cancellation reaches the wire.
		v, err := m.rel.Probe(hidden.WithContext(ctx, m.tb.DB(i)), query)
		if err == nil {
			if ferr := m.probeFeedback(i, query, numTerms, v); ferr != nil {
				return 0, ferr
			}
		}
		return v, err
	}
	res, err := m.exec.APro(ctx, sel, func(i int) string { return m.tb.DB(i).Name() }, probe, policy, t, maxProbes)
	if err != nil {
		m.recordSLO(start, false)
		sp.EndErr(err)
		return nil, fmt.Errorf("metaprobe: %w", err)
	}
	id := m.nextSelectionID()
	if id != "" {
		sp.SetAttr("id", id)
	}
	sp.SetAttr("certainty", strconv.FormatFloat(res.Certainty, 'f', 4, 64))
	sp.SetAttr("probes", strconv.Itoa(res.Probes()))
	sp.SetAttr("reached", strconv.FormatBool(res.Reached))
	if res.Degraded {
		sp.SetAttr("degraded", "true")
	}
	m.flushStages(rec, sp)
	sp.End()
	m.recordSLO(start, true)
	m.observe(id, sp.Trace(), query, metric, t, sel, res.Outcome, start)
	m.recycleSelection(ver, sel)
	out := &SelectionResult{
		ID:            id,
		TraceID:       sp.Trace(),
		Databases:     m.names(res.Set),
		Certainty:     res.Certainty,
		Probes:        res.Probes(),
		ProbeFailures: len(res.ProbeErrs),
		Reached:       res.Reached,
		Degraded:      res.Degraded,
		ExcludedDBs:   m.names(res.Excluded),
	}
	if acct != nil {
		sum := acct.Summary()
		out.Cost = &sum
		m.recordCost(numTerms, &sum)
	}
	return out, nil
}

// recordSLO feeds one finished selection into the SLO tracker. Client
// errors (untrained model, k out of range) are not recorded: the
// tracker measures serving quality, not caller mistakes.
func (m *Metasearcher) recordSLO(start time.Time, ok bool) {
	if m.cfg.SLO == nil || start.IsZero() {
		return
	}
	m.cfg.SLO.Observe(time.Since(start), ok)
}

// recordCost aggregates one selection's probe-cost account into
// per-query-type series (labelled by term count), so operators can see
// what an average "3-term" selection costs in probes, bytes and
// backend wall time.
func (m *Metasearcher) recordCost(numTerms int, sum *CostSummary) {
	reg := m.cfg.Metrics
	if reg == nil {
		return
	}
	lbl := obs.Labels{"terms": strconv.Itoa(numTerms)}
	reg.Counter("mp_selection_cost_probes_total", lbl).Add(int64(sum.ProbesIssued))
	reg.Counter("mp_selection_cost_bytes_total", lbl).Add(sum.BytesFetched)
	reg.Counter("mp_selection_cost_hedges_wasted_total", lbl).Add(int64(sum.HedgesWasted))
	reg.Counter("mp_selection_cost_cache_hits_total", lbl).Add(int64(sum.CacheHits))
	reg.Histogram("mp_selection_cost_wall_seconds", lbl).Observe(sum.WallMs / 1000)
}

// observeDrift feeds one successful live probe into the drift
// detector: the relative error (r − r̂)/r̂ for the relative-error query
// types, the absolute relevancy for the r̂ = 0 band — the same value
// space the matching ED was trained in — quantized onto the ED's bin
// support (see ED.ReferenceSample) so the KS comparison is apples to
// apples. Probes whose query type has no trained ED are skipped; the
// detector has no reference to test them against anyway. The estimate
// is recomputed from the model (summaries are shared across versions,
// so the value is identical to what the selection was built with)
// rather than read from the selection, which may already be recycled
// when a losing hedge attempt delivers late.
func (m *Metasearcher) observeDrift(model *core.Model, i int, query string, numTerms int, actual float64) {
	rhat := model.Rel.Estimate(model.Summaries.Summaries[i], query)
	key := model.Cfg.Classifier.Classify(numTerms, rhat)
	ed, ok := model.DBs[i].EDs[key]
	if !ok {
		return
	}
	v := actual
	if key.Band != core.BandZero {
		v = (actual - rhat) / rhat
	}
	m.drift.Observe(m.tb.DB(i).Name(), key.String(), ed.Quantize(v))
}

// nextSelectionID returns the next selection correlation ID, or ""
// when observability is disabled (keeping the nil-sink path
// allocation-free).
func (m *Metasearcher) nextSelectionID() string {
	if m.cfg.Metrics == nil && m.cfg.Tracer == nil {
		return ""
	}
	return fmt.Sprintf("sel-%06d", m.selSeq.Add(1))
}

// registerSelectionMetrics pre-creates the selection-path series (with
// help texts) so a metrics endpoint shows them at zero before the
// first query arrives, rather than materializing lazily.
func registerSelectionMetrics(reg *Metrics, tb *hidden.Testbed) {
	reg.Help("metaprobe_select_latency_seconds", "End-to-end latency of selection calls.")
	reg.Help("metaprobe_selections_total", "Selection calls, by whether the requested certainty was reached.")
	reg.Help("metaprobe_selection_certainty", "Expected correctness of the returned database set.")
	reg.Help("metaprobe_probes_total", "Successful live probes, per database.")
	reg.Help("metaprobe_probe_errors_total", "Failed live probes, per database.")
	reg.Help("mp_selection_cost_probes_total", "Live probes issued by selections, by query term count.")
	reg.Help("mp_selection_cost_bytes_total", "Answer-page bytes fetched by selections, by query term count.")
	reg.Help("mp_selection_cost_hedges_wasted_total", "Hedged attempts that lost their race, by query term count.")
	reg.Help("mp_selection_cost_cache_hits_total", "Probe searches answered from the result cache, by query term count.")
	reg.Help("mp_selection_cost_wall_seconds", "Cumulative backend wall time per selection, by query term count.")
	reg.Help("mp_selection_stage_seconds", "Per-selection wall time spent in one hot-path stage (rd_convolve, ecor_dp, rank, probe).")
	reg.Help("mp_selection_stage_allocs", "Per-selection heap objects allocated while one hot-path stage ran (process-wide counter; exact only without concurrent selections).")
	reg.Histogram("metaprobe_select_latency_seconds", nil)
	reg.Histogram("metaprobe_selection_certainty", nil)
	for _, reached := range []string{"true", "false"} {
		reg.Counter("metaprobe_selections_total", obs.Labels{"reached": reached})
	}
	for i := 0; i < tb.Len(); i++ {
		lbl := obs.Labels{"db": tb.DB(i).Name()}
		reg.Counter("metaprobe_probes_total", lbl)
		reg.Counter("metaprobe_probe_errors_total", lbl)
	}
}

// obsNow reads the clock only when some observability sink is
// configured, keeping the disabled path free of syscalls.
func (m *Metasearcher) obsNow() time.Time {
	if m.cfg.Metrics == nil && m.cfg.Tracer == nil && m.cfg.SLO == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe records metrics and emits a trace for one finished
// selection. With both sinks nil it returns immediately. A non-empty
// traceID is attached to the latency observation as an exemplar, so a
// latency bucket in /metrics links back to the span tree that filled
// it.
func (m *Metasearcher) observe(id, traceID, query string, metric Metric, threshold float64, sel *core.Selection, out core.Outcome, start time.Time) {
	if m.cfg.Metrics == nil && m.cfg.Tracer == nil {
		return
	}
	elapsed := time.Since(start)
	if reg := m.cfg.Metrics; reg != nil {
		reg.Histogram("metaprobe_select_latency_seconds", nil).ObserveExemplar(elapsed.Seconds(), traceID)
		reg.Counter("metaprobe_selections_total", obs.Labels{"reached": strconv.FormatBool(out.Reached)}).Inc()
		reg.Histogram("metaprobe_selection_certainty", nil).Observe(out.Certainty)
		for _, step := range out.Steps {
			name := m.tb.DB(step.DB).Name()
			if step.Err != nil {
				reg.Counter("metaprobe_probe_errors_total", obs.Labels{"db": name}).Inc()
			} else {
				reg.Counter("metaprobe_probes_total", obs.Labels{"db": name}).Inc()
			}
		}
	}
	if tr := m.cfg.Tracer; tr != nil {
		n := m.tb.Len()
		trace := SelectionTrace{
			ID:               id,
			Time:             start,
			Query:            query,
			K:                sel.K,
			Metric:           metric.String(),
			Threshold:        threshold,
			Databases:        m.Databases(),
			Estimates:        make([]float64, n),
			InitialCertainty: out.Initial,
			Selected:         m.names(out.Set),
			Certainty:        out.Certainty,
			Reached:          out.Reached,
			Elapsed:          elapsed,
		}
		for i := 0; i < n; i++ {
			trace.Estimates[i] = sel.Estimate(i)
		}
		if len(out.Steps) > 0 {
			trace.Probes = make([]ProbeTrace, len(out.Steps))
			for i, s := range out.Steps {
				pt := ProbeTrace{
					DB:             m.tb.DB(s.DB).Name(),
					Index:          s.DB,
					Usefulness:     s.Usefulness,
					Value:          s.Value,
					CertaintyAfter: s.CertaintyAfter,
				}
				if s.Err != nil {
					pt.Err = s.Err.Error()
				}
				trace.Probes[i] = pt
			}
		}
		tr.TraceSelection(trace)
	}
}

// Metasearch performs the full pipeline of the paper's Figure 1:
// select k databases with certainty t, forward the query to them, and
// fuse the per-database results into one ranked list of resultSize
// documents.
func (m *Metasearcher) Metasearch(query string, k int, metric Metric, t float64, resultSize int) ([]MergedResult, *SelectionResult, error) {
	selRes, err := m.SelectWithCertainty(query, k, metric, t, -1)
	if err != nil {
		return nil, nil, err
	}
	items, err := m.fuse(context.Background(), query, selRes, resultSize)
	if err != nil {
		return nil, nil, err
	}
	return items, selRes, nil
}

// MetasearchContext is Metasearch bounded by ctx and executed through
// the probe-execution engine (see SelectWithCertaintyContext for the
// selection semantics). When Config.Spans is set the whole pipeline
// records one trace: a root "metasearch" span with the selection and
// each per-database result fetch as children, so a slow answer can be
// broken down into selection versus fetch time on the waterfall.
func (m *Metasearcher) MetasearchContext(ctx context.Context, query string, k int, metric Metric, t float64, resultSize int) ([]MergedResult, *SelectionResult, error) {
	ctx, sp := m.cfg.Spans.Start(ctx, "metasearch")
	sp.SetAttr("query", query)
	selRes, err := m.SelectWithCertaintyContext(ctx, query, k, metric, t, -1)
	if err != nil {
		sp.EndErr(err)
		return nil, nil, err
	}
	items, err := m.fuse(ctx, query, selRes, resultSize)
	sp.EndErr(err)
	if err != nil {
		return nil, nil, err
	}
	return items, selRes, nil
}

// fuse forwards the query to the selected databases under ctx and
// merges their answer pages into one ranked list, enriched with
// query-centered snippets where document text is fetchable.
func (m *Metasearcher) fuse(ctx context.Context, query string, selRes *SelectionResult, resultSize int) ([]MergedResult, error) {
	perDB := resultSize
	if perDB < 10 {
		perDB = 10
	}
	var lists []fusion.SourceList
	for _, name := range selRes.Databases {
		db := m.tb.DB(m.tb.IndexOf(name))
		res, err := hidden.SearchContext(ctx, db, query, perDB)
		if err != nil {
			// A database that fails at fetch time contributes nothing;
			// selection already paid its certainty cost.
			continue
		}
		lists = append(lists, fusion.SourceList{
			Database: name,
			Weight:   float64(res.MatchCount) + 1,
			Docs:     res.Docs,
		})
	}
	items, err := fusion.WeightedMerge(lists, resultSize)
	if err != nil {
		return nil, fmt.Errorf("metaprobe: %w", err)
	}
	tok := textindex.DefaultTokenizer()
	for i := range items {
		db := m.tb.DB(m.tb.IndexOf(items[i].Database))
		f, ok := db.(hidden.Fetcher)
		if !ok {
			continue
		}
		text, err := f.Fetch(items[i].Doc.ID)
		if err != nil {
			continue
		}
		items[i].Snippet = tok.Snippet(text, query, 16, true)
	}
	return items, nil
}

// selection builds the per-query state from the serving version's
// precomputed RD table: a recycled shell (takeShell) is refilled in
// place by ModelVersion.FillSelection — table lookups plus an estimate
// shift per database instead of re-convolving every ED. It returns the
// version the selection was filled from, for recycleSelection.
//
// With a non-nil stage recorder the RD work is still charged to the
// rd_convolve stage — including any wait on modelMu, which is real
// serving latency — so the stage keeps reporting honestly; it has
// shrunk to lookup cost, not disappeared from the waterfall. The
// recorder is attached to the selection so the APro loops report the
// remaining stages to it.
func (m *Metasearcher) selection(query string, metric Metric, k int, rec *obs.StageRecorder) (*core.Selection, *core.ModelVersion, error) {
	if !m.Trained() {
		return nil, nil, fmt.Errorf("metaprobe: model not trained; call Train first or use SelectBaseline")
	}
	if k <= 0 || k > m.tb.Len() {
		return nil, nil, fmt.Errorf("metaprobe: k=%d outside [1, %d]", k, m.tb.Len())
	}
	numTerms := countTerms(query)
	var stageStart time.Time
	var stageAllocs uint64
	if rec != nil {
		stageStart, stageAllocs = time.Now(), core.ReadHeapAllocs()
	}
	// FillSelection reads the ED histograms (for rows invalidated by
	// online refinement) that ObserveProbe mutates; the lock makes
	// selection building safe against probe feedback from concurrent
	// selections and against a refresh swap mid-build. The filled
	// Selection owns its mutable state, so a version published later
	// never affects this selection.
	m.modelMu.Lock()
	ver := m.version.Load()
	sel := ver.FillSelection(m.takeShell(ver), query, numTerms, metric, k)
	m.modelMu.Unlock()
	if rec != nil {
		rec.Observe(core.StageRDConvolve, time.Since(stageStart).Seconds(), core.ReadHeapAllocs()-stageAllocs)
		sel.WithStageObserver(rec.Observe)
	}
	return sel.WithBestSetOptions(m.cfg.BestSet), ver, nil
}

// countTerms counts whitespace-separated terms without allocating; it
// matches len(strings.Fields(q)) — fields split on unicode.IsSpace —
// which the serving paths previously paid one slice allocation per
// query for.
func countTerms(q string) int {
	n := 0
	inField := false
	for _, r := range q {
		if unicode.IsSpace(r) {
			inField = false
		} else if !inField {
			inField = true
			n++
		}
	}
	return n
}

// stageRecorder returns a fresh per-selection stage recorder, or nil
// when neither metrics nor span tracing is configured — the nil
// keeps the disabled hot path at a single pointer comparison per
// stage boundary (see core.Selection.BeginStage).
func (m *Metasearcher) stageRecorder() *obs.StageRecorder {
	if m.cfg.Metrics == nil && m.cfg.Spans == nil {
		return nil
	}
	return obs.NewStageRecorder()
}

// flushStages publishes one finished selection's stage totals: a
// per-stage observation into the mp_selection_stage_* histograms and
// one "stage" event per stage on the root span (added before End, so
// the events land in the recorded tree). Nil recorder or span are
// no-ops.
func (m *Metasearcher) flushStages(rec *obs.StageRecorder, sp *span.Span) {
	if rec == nil {
		return
	}
	totals := rec.Totals()
	reg := m.cfg.Metrics
	for _, stage := range rec.Stages() {
		t := totals[stage]
		if reg != nil {
			lbl := obs.Labels{"stage": stage}
			reg.Histogram("mp_selection_stage_seconds", lbl).Observe(t.Seconds)
			reg.Histogram("mp_selection_stage_allocs", lbl).Observe(float64(t.Allocs))
		}
		sp.AddEvent("stage",
			"stage", stage,
			"seconds", strconv.FormatFloat(t.Seconds, 'g', 6, 64),
			"allocs", strconv.FormatUint(t.Allocs, 10),
			"count", strconv.FormatInt(t.Count, 10))
	}
}

// names maps database indices to names.
func (m *Metasearcher) names(set []int) []string {
	out := make([]string, len(set))
	for i, idx := range set {
		out[i] = m.tb.DB(idx).Name()
	}
	return out
}

// parseQueries converts query strings into the internal representation,
// rejecting empties.
func parseQueries(qs []string) ([]queries.Query, error) {
	out := make([]queries.Query, 0, len(qs))
	for i, q := range qs {
		terms := strings.Fields(q)
		if len(terms) == 0 {
			return nil, fmt.Errorf("metaprobe: query %d is empty", i)
		}
		out = append(out, queries.Query{Terms: terms})
	}
	return out, nil
}

// Explanation describes why the metasearcher ranks databases the way
// it does for one query.
type Explanation struct {
	// Database is the database's name.
	Database string
	// Estimate is r̂(db, q) from the summary (Eq. 1).
	Estimate float64
	// ExpectedRelevancy is the mean of the database's relevancy
	// distribution after error correction.
	ExpectedRelevancy float64
	// MembershipProb is P(db ∈ true top-k) under the model.
	MembershipProb float64
	// QueryType is the decision-tree leaf the query fell into for this
	// database ("2-term/high", ...).
	QueryType string
}

// Explain returns per-database diagnostics for a query: the raw
// estimate, the error-corrected expected relevancy, and the membership
// probability that drives selection. Requires a trained model.
func (m *Metasearcher) Explain(query string, k int) ([]Explanation, error) {
	sel, ver, err := m.selection(query, Absolute, k, nil)
	if err != nil {
		return nil, err
	}
	classifier := ver.Model.Cfg.Classifier
	marginals := sel.Marginals()
	numTerms := countTerms(query)
	out := make([]Explanation, m.tb.Len())
	for i := range out {
		rhat := sel.Estimate(i)
		out[i] = Explanation{
			Database:          m.tb.DB(i).Name(),
			Estimate:          rhat,
			ExpectedRelevancy: sel.RD(i).Mean(),
			MembershipProb:    marginals[i],
			QueryType:         classifier.Classify(numTerms, rhat).String(),
		}
	}
	m.recycleSelection(ver, sel)
	return out, nil
}

// SaveModel persists the trained error model (including the content
// summaries) as a versioned, checksummed snapshot written atomically
// (temp file + fsync + rename), so future sessions can skip training
// and a crash mid-write never corrupts the previous snapshot.
func (m *Metasearcher) SaveModel(path string) error {
	m.modelMu.Lock()
	defer m.modelMu.Unlock()
	model := m.serving()
	if model == nil {
		return fmt.Errorf("metaprobe: nothing to save; call Train first")
	}
	// The lock keeps online refinement from mutating histograms while
	// they are encoded.
	return model.Save(path)
}

// checkModelMatches validates a loaded model against the mediated
// databases.
func checkModelMatches(dbs []Database, model *core.Model) error {
	if len(dbs) != len(model.DBs) {
		return fmt.Errorf("metaprobe: %d databases for a %d-database model", len(dbs), len(model.DBs))
	}
	for i, db := range dbs {
		if db.Name() != model.DBs[i].Name {
			return fmt.Errorf("metaprobe: database %d is %q but the model expects %q", i, db.Name(), model.DBs[i].Name)
		}
	}
	return nil
}

// NewFromModel builds a metasearcher from databases and a previously
// saved model file. Database names must match the model's databases,
// in order; summaries and the relevancy definition come from the file.
func NewFromModel(dbs []Database, modelPath string, cfg *Config) (*Metasearcher, error) {
	model, err := core.LoadModel(modelPath)
	if err != nil {
		return nil, fmt.Errorf("metaprobe: %w", err)
	}
	if err := checkModelMatches(dbs, model); err != nil {
		return nil, err
	}
	ms, err := New(dbs, model.Summaries.Summaries, cfg)
	if err != nil {
		return nil, err
	}
	ms.rel = model.Rel
	ms.modelMu.Lock()
	ms.publish(model, "load", "")
	ms.modelMu.Unlock()
	ms.initDrift(model)
	return ms, nil
}

// ReloadModel hot-swaps the serving model with one loaded from disk,
// without interrupting traffic: in-flight selections finish on the
// version they started with, and the next selection sees the reloaded
// model. The file must describe the same databases and relevancy
// definition as the running metasearcher. Drift references re-anchor
// on the reloaded EDs, and any refresh committed against the old
// version is rejected as superseded.
func (m *Metasearcher) ReloadModel(path string) error {
	model, _, err := core.LoadModelInfo(path)
	if err != nil {
		return fmt.Errorf("metaprobe: %w", err)
	}
	dbs := make([]Database, m.tb.Len())
	for i := range dbs {
		dbs[i] = m.tb.DB(i)
	}
	if err := checkModelMatches(dbs, model); err != nil {
		return err
	}
	if model.Rel.Name() != m.rel.Name() {
		return fmt.Errorf("metaprobe: model uses relevancy %q but the metasearcher runs %q",
			model.Rel.Name(), m.rel.Name())
	}
	m.modelMu.Lock()
	m.publish(model, "reload", "")
	m.modelMu.Unlock()
	m.initDrift(model)
	return nil
}

// ModelInfo describes the serving model version for operators (the
// /debug/model endpoint renders it as JSON).
type ModelInfo struct {
	// Trained is false before Train or NewFromModel; the remaining
	// fields are then zero.
	Trained bool `json:"trained"`
	// Version counts published models (1 = first train/load); each
	// hot-swap — reload or accepted refresh — increments it.
	Version int64 `json:"version,omitempty"`
	// Source is how this version was published: "train", "load",
	// "reload" or "refresh".
	Source string `json:"source,omitempty"`
	// CreatedAt is the version's publication time and AgeSeconds its
	// age now.
	CreatedAt  time.Time `json:"createdAt,omitempty"`
	AgeSeconds float64   `json:"ageSeconds,omitempty"`
	// Databases counts the mediated databases.
	Databases int `json:"databases,omitempty"`
	// RefreshedAt maps database name → last accepted online refresh
	// (absent for databases never refreshed).
	RefreshedAt map[string]time.Time `json:"refreshedAt,omitempty"`
	// Refresh carries the refresher counters and the last validation
	// scores; nil without Config.Refresh.
	Refresh *RefreshStats `json:"refresh,omitempty"`
}

// ModelInfo reports the serving model version, its age and provenance,
// per-database refresh timestamps, and refresher statistics.
func (m *Metasearcher) ModelInfo() ModelInfo {
	v := m.version.Load()
	if v == nil {
		return ModelInfo{}
	}
	info := ModelInfo{
		Trained:    true,
		Version:    v.Version,
		Source:     v.Source,
		CreatedAt:  v.CreatedAt,
		AgeSeconds: time.Since(v.CreatedAt).Seconds(),
		Databases:  len(v.Model.DBs),
	}
	if len(v.RefreshedAt) > 0 {
		info.RefreshedAt = make(map[string]time.Time, len(v.RefreshedAt))
		for db, ts := range v.RefreshedAt {
			info.RefreshedAt[db] = ts
		}
	}
	if m.refresher != nil {
		s := m.refresher.Stats()
		info.Refresh = &s
	}
	return info
}

// readyFailureStreak is the number of consecutive refresh tasks that
// failed to publish after which Ready reports the refresher wedged.
const readyFailureStreak = 3

// Ready reports whether the metasearcher can serve selections at
// quality, nil when it can. An untrained model is not ready; so is a
// configured background refresher whose last readyFailureStreak tasks
// all failed to publish — the serving model is then drifting with no
// working repair path, which should flip readiness before operators
// notice stale answers. Wire it to a readiness endpoint via
// obs.ReadyzCheckHandler.
func (m *Metasearcher) Ready() error {
	if !m.Trained() {
		return fmt.Errorf("model not trained")
	}
	if m.refresher != nil {
		s := m.refresher.Stats()
		if s.FailureStreak >= readyFailureStreak {
			if s.LastError != "" {
				return fmt.Errorf("refresher wedged: %d consecutive refresh tasks failed to publish (last: %s)",
					s.FailureStreak, s.LastError)
			}
			return fmt.Errorf("refresher wedged: %d consecutive refresh tasks failed to publish", s.FailureStreak)
		}
	}
	return nil
}

// refreshHost adapts the Metasearcher for the background refresher:
// cloning the serving model, probing through the shared executor (so
// refresh traffic is subject to the same concurrency limits, breakers
// and hedging as live selections), and committing validated candidates
// with an atomic version swap.
type refreshHost struct{ m *Metasearcher }

func (h refreshHost) CloneServing() (int64, *core.Model) {
	m := h.m
	m.modelMu.Lock()
	defer m.modelMu.Unlock()
	v := m.version.Load()
	if v == nil {
		return 0, nil
	}
	// The lock quiesces online refinement while histograms are copied.
	return v.Version, v.Model.Clone()
}

func (h refreshHost) Probe(ctx context.Context, dbIdx int, query string) (float64, error) {
	m := h.m
	db := m.tb.DB(dbIdx)
	return m.exec.Probe(ctx, db.Name(), func(ctx context.Context) (float64, error) {
		return m.rel.Probe(hidden.WithContext(ctx, db), query)
	})
}

func (h refreshHost) Commit(baseVersion int64, candidate *core.Model, db string, key core.TypeKey, val refresh.Validation) (int64, error) {
	m := h.m
	dbIdx := m.tb.IndexOf(db)
	if dbIdx < 0 {
		return 0, fmt.Errorf("metaprobe: refresh commit for unknown database %q", db)
	}
	retrained, ok := candidate.DBs[dbIdx].EDs[key]
	if !ok {
		return 0, fmt.Errorf("metaprobe: refresh candidate carries no ED for %s/%s", db, key)
	}
	m.modelMu.Lock()
	defer m.modelMu.Unlock()
	cur := m.version.Load()
	if cur == nil || cur.Version != baseVersion {
		return 0, refresh.ErrSuperseded
	}
	// Copy-on-write at the narrowest granularity: the successor shares
	// every ED with the serving model — so refinement observations that
	// landed while the refresh probed are kept — except the single
	// retrained one. The lock makes the swap atomic with respect to
	// selections and feedback.
	next := &core.Model{Cfg: cur.Model.Cfg, Rel: cur.Model.Rel, Summaries: cur.Model.Summaries,
		DBs: make([]*core.DBModel, len(cur.Model.DBs))}
	copy(next.DBs, cur.Model.DBs)
	dm := &core.DBModel{Name: cur.Model.DBs[dbIdx].Name, Pooled: cur.Model.DBs[dbIdx].Pooled,
		EDs: make(map[core.TypeKey]*core.ED, len(cur.Model.DBs[dbIdx].EDs))}
	for k, ed := range cur.Model.DBs[dbIdx].EDs {
		dm.EDs[k] = ed
	}
	dm.EDs[key] = retrained
	next.DBs[dbIdx] = dm
	nv := m.publish(next, "refresh", db)
	// Re-anchor the drift window on the retrained distribution so the
	// detector tests future probes against what now serves.
	if m.drift != nil {
		m.drift.SetReference(db, key.String(), retrained.ReferenceSample(0))
	}
	return nv.Version, nil
}

// Audit computes the realized correctness of a returned answer by
// live-probing every database for the true top-k — the ground truth
// behind online calibration tracking. It returns the realized
// correctness of selected under metric and, when cal is non-nil,
// records the (certainty, realized) pair into it. One audit costs one
// probe per mediated database, so high-traffic deployments should
// sample (audit every Nth answer) rather than audit everything.
func (m *Metasearcher) Audit(cal *Calibration, query string, metric Metric, selected []string, certainty float64) (float64, error) {
	actual := make([]float64, m.tb.Len())
	for i := range actual {
		v, err := m.rel.Probe(m.tb.DB(i), query)
		if err != nil {
			return 0, fmt.Errorf("metaprobe: audit probe %s: %w", m.tb.DB(i).Name(), err)
		}
		actual[i] = v
	}
	set := make([]int, 0, len(selected))
	for _, name := range selected {
		i := m.tb.IndexOf(name)
		if i < 0 {
			return 0, fmt.Errorf("metaprobe: audit: unknown database %q", name)
		}
		set = append(set, i)
	}
	sort.Ints(set)
	topk := core.TopKByScore(actual, len(selected))
	var realized float64
	if metric == Partial {
		realized = eval.CorP(set, topk)
	} else {
		realized = eval.CorA(set, topk)
	}
	cal.Observe(certainty, realized)
	return realized, nil
}

// NewLocalDatabase builds an in-process database from raw documents
// (ID → text). It implements Database, Sizer and Fetcher.
func NewLocalDatabase(name string, docs map[string]string) Database {
	ix := textindex.NewIndex(nil)
	local := hidden.NewLocal(name, ix)
	// Deterministic insertion order: sort IDs.
	ids := make([]string, 0, len(docs))
	for id := range docs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ix.Add(id, docs[id])
		local.StoreText(id, docs[id])
	}
	return local
}

// NewHTTPDatabase returns a client for a remote database serving the
// metaprobe answer-page protocol at baseURL (see hidden.Server). Set
// scrapeHTML to exercise the HTML answer-page scraper instead of JSON.
func NewHTTPDatabase(name, baseURL string, scrapeHTML bool) Database {
	c := hidden.NewClient(name, baseURL)
	c.UseHTML = scrapeHTML
	return c
}

// ExactSummaries builds exact content summaries for databases that are
// in-process (created by NewLocalDatabase or the corpus builder). It
// fails for remote databases — sample those with SampleSummaries.
func ExactSummaries(dbs []Database) ([]*Summary, error) {
	out := make([]*Summary, len(dbs))
	for i, db := range dbs {
		local, ok := db.(*hidden.Local)
		if !ok {
			return nil, fmt.Errorf("metaprobe: database %s is not local; use SampleSummaries", db.Name())
		}
		out[i] = summary.FromLocal(local)
	}
	return out, nil
}

// SampleSummaries builds content summaries through the databases'
// public search interfaces by query-based sampling: probe with seed
// words, fetch top documents, and accumulate term statistics. Works
// for any database implementing document fetching (including the HTTP
// client).
func SampleSummaries(dbs []Database, seedTerms []string, numQueries int, seed int64) ([]*Summary, error) {
	out := make([]*Summary, len(dbs))
	rng := stats.NewRNG(seed)
	for i, db := range dbs {
		s, err := summary.Sample(db, summary.SampleConfig{
			SeedTerms:  seedTerms,
			NumQueries: numQueries,
		}, rng.Fork(int64(i)))
		if err != nil {
			return nil, fmt.Errorf("metaprobe: %w", err)
		}
		out[i] = s
	}
	return out, nil
}
