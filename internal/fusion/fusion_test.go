package fusion

import (
	"testing"

	"metaprobe/internal/hidden"
)

func lists() []SourceList {
	return []SourceList{
		{
			Database: "a", Weight: 100,
			Docs: []hidden.DocSummary{{ID: "a1", Score: 0.9}, {ID: "a2", Score: 0.45}},
		},
		{
			Database: "b", Weight: 50,
			Docs: []hidden.DocSummary{{ID: "b1", Score: 0.2}, {ID: "b2", Score: 0.1}},
		},
		{Database: "c", Weight: 10, Docs: nil},
	}
}

func TestWeightedMerge(t *testing.T) {
	items, err := WeightedMerge(lists(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	// a1: 1.0·1.0 = 1.0; b1: 1.0·0.5 = 0.5; a2: 0.5·1.0 = 0.5;
	// b2: 0.5·0.5 = 0.25. Tie between b1 and a2 breaks by database name.
	wantIDs := []string{"a1", "a2", "b1", "b2"}
	for i, want := range wantIDs {
		if items[i].Doc.ID != want {
			t.Errorf("item %d = %s, want %s (items: %+v)", i, items[i].Doc.ID, want, items)
		}
	}
	if items[0].Score != 1 {
		t.Errorf("top score = %v, want 1", items[0].Score)
	}
	// k truncation.
	short, err := WeightedMerge(lists(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 2 || short[0].Doc.ID != "a1" {
		t.Errorf("truncated = %+v", short)
	}
}

func TestWeightedMergeZeroWeights(t *testing.T) {
	ls := []SourceList{
		{Database: "a", Weight: 0, Docs: []hidden.DocSummary{{ID: "a1", Score: 0.5}}},
		{Database: "b", Weight: -2, Docs: []hidden.DocSummary{{ID: "b1", Score: 0.9}}},
	}
	items, err := WeightedMerge(ls, 5)
	if err != nil {
		t.Fatal(err)
	}
	// All weights ≤ 0: fall back to unweighted normalized scores.
	if len(items) != 2 {
		t.Fatalf("items = %+v", items)
	}
}

func TestWeightedMergeErrors(t *testing.T) {
	if _, err := WeightedMerge(nil, 0); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestRoundRobin(t *testing.T) {
	items, err := RoundRobin(lists(), 4)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"a1", "b1", "a2", "b2"}
	for i, want := range wantIDs {
		if items[i].Doc.ID != want {
			t.Errorf("item %d = %s, want %s", i, items[i].Doc.ID, want)
		}
	}
	// Exhaustion before k.
	items, err = RoundRobin(lists(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Errorf("got %d items, want all 4", len(items))
	}
	if _, err := RoundRobin(nil, -1); err == nil {
		t.Error("k<1 must fail")
	}
}
