// Package fusion implements result merging — task 2 of the
// metasearching process (Figure 1 of the paper): after database
// selection directs the query to the chosen databases, the per-database
// result lists are merged into a single ranked answer for the user.
//
// Two standard strategies are provided:
//
//   - WeightedMerge — normalize each database's scores and scale them
//     by the database's (estimated or probed) relevancy weight, then
//     sort; the usual score-fusion approach when sources report
//     comparable scores.
//   - RoundRobin — interleave the lists in database-relevancy order;
//     robust when source scores are incomparable.
package fusion

import (
	"fmt"
	"sort"

	"metaprobe/internal/hidden"
)

// Item is one merged result.
type Item struct {
	// Database is the source database's name.
	Database string
	// Doc is the document as returned by the source.
	Doc hidden.DocSummary
	// Score is the fused score (WeightedMerge) or 0 (RoundRobin).
	Score float64
	// Snippet is a query-centered text preview, filled in by callers
	// that can fetch document text (empty otherwise).
	Snippet string
}

// SourceList is one database's contribution to the merge.
type SourceList struct {
	// Database is the source name.
	Database string
	// Weight is the database's relevancy weight (e.g. its estimated
	// or probed relevancy); non-positive weights are treated as 0.
	Weight float64
	// Docs are the source's results, best first.
	Docs []hidden.DocSummary
}

// WeightedMerge fuses the lists by weight-scaled normalized scores and
// returns the top k items. Source scores are max-normalized per list
// (so a source's own scale cancels out) and multiplied by the source's
// normalized weight. Ties break by (database, doc ID) for determinism.
func WeightedMerge(lists []SourceList, k int) ([]Item, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fusion: k must be positive, got %d", k)
	}
	maxWeight := 0.0
	for _, l := range lists {
		if l.Weight > maxWeight {
			maxWeight = l.Weight
		}
	}
	var items []Item
	for _, l := range lists {
		if len(l.Docs) == 0 {
			continue
		}
		w := l.Weight
		if w < 0 {
			w = 0
		}
		if maxWeight > 0 {
			w /= maxWeight
		} else {
			w = 1
		}
		maxScore := 0.0
		for _, d := range l.Docs {
			if d.Score > maxScore {
				maxScore = d.Score
			}
		}
		for _, d := range l.Docs {
			s := d.Score
			if maxScore > 0 {
				s /= maxScore
			}
			items = append(items, Item{Database: l.Database, Doc: d, Score: s * w})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Score != items[j].Score {
			return items[i].Score > items[j].Score
		}
		if items[i].Database != items[j].Database {
			return items[i].Database < items[j].Database
		}
		return items[i].Doc.ID < items[j].Doc.ID
	})
	if len(items) > k {
		items = items[:k]
	}
	return items, nil
}

// RoundRobin interleaves the lists in descending weight order (ties by
// name) and returns the top k items; duplicates by (database, doc ID)
// cannot occur, and scores are carried through unfused.
func RoundRobin(lists []SourceList, k int) ([]Item, error) {
	if k <= 0 {
		return nil, fmt.Errorf("fusion: k must be positive, got %d", k)
	}
	order := make([]int, len(lists))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := lists[order[a]], lists[order[b]]
		if la.Weight != lb.Weight {
			return la.Weight > lb.Weight
		}
		return la.Database < lb.Database
	})
	var items []Item
	for depth := 0; len(items) < k; depth++ {
		advanced := false
		for _, li := range order {
			l := lists[li]
			if depth < len(l.Docs) {
				items = append(items, Item{Database: l.Database, Doc: l.Docs[depth]})
				advanced = true
				if len(items) == k {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	return items, nil
}
