// Package leakcheck provides a goroutine-leak assertion for
// integration tests: snapshot the goroutines alive at test start,
// and at cleanup fail the test if extra non-system goroutines are
// still running after a grace period. Background workers — the probe
// pool, the refresh loop, the profile captor — must die with their
// context; this makes a worker that outlives it a test failure
// instead of silent creep.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T the checker needs.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// ignoredStacks marks goroutines that are expected to persist: the
// runtime's own workers, the testing framework, and stdlib pollers
// that stay warm once started.
var ignoredStacks = []string{
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.runTests",
	"testing.tRunner",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"signal.signal_recv",
	"sigterm.handler",
	"runtime_mcall",
	"(*loggingT).flushDaemon",
	"goroutine in C code",
	"net/http.(*persistConn)", // keep-alive conns drain on their own timer
	"internal/poll.runtime_pollWait",
	"os/signal.loop",
	"runtime.ensureSigM",
	"runtime/trace.Start",
	"runtime/pprof.profileWriter", // CPU profiler writer drains asynchronously
}

// interesting reports whether one goroutine stack (a block from
// runtime.Stack(all=true)) represents a goroutine the test should be
// charged with.
func interesting(stack string) bool {
	if strings.TrimSpace(stack) == "" {
		return false
	}
	for _, ig := range ignoredStacks {
		if strings.Contains(stack, ig) {
			return false
		}
	}
	return true
}

// stacks returns the interesting goroutine stacks keyed by goroutine
// ID (the "goroutine N" header), which is stable for a goroutine's
// lifetime — unlike the stack text, whose state word and argument
// addresses shift between snapshots.
func stacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !interesting(g) {
			continue
		}
		id, rest, ok := strings.Cut(strings.TrimPrefix(g, "goroutine "), " ")
		if !ok || rest == "" {
			continue
		}
		out[id] = g
	}
	return out
}

// Check snapshots the current goroutines and registers a cleanup that
// fails t if goroutines not present at the snapshot are still alive
// once the grace period expires. Call it first in the test:
//
//	func TestPool(t *testing.T) {
//	    leakcheck.Check(t)
//	    ...
//	}
//
// The checker polls rather than sleeping flat-out, so leak-free tests
// pay near-zero extra wall time.
func Check(t TB) {
	t.Helper()
	before := stacks()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leaked[:0]
			for id, g := range stacks() {
				if _, ok := before[id]; !ok {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var b strings.Builder
		for i, g := range leaked {
			fmt.Fprintf(&b, "\n--- leaked goroutine %d ---\n%s\n", i+1, g)
		}
		t.Errorf("leakcheck: %d goroutine(s) outlived the test:%s", len(leaked), b.String())
	})
}
