package hidden

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaprobe/internal/obs"
)

// These tests hammer every middleware wrapper with concurrent Search
// calls; they exist to be run under `go test -race` (CI does) and to
// pin down the concurrency contracts: wrappers must be safe for
// concurrent use once constructed and wired.

// atomicFlaky fails with ErrUnavailable on a fixed fraction of calls,
// safely from many goroutines.
type atomicFlaky struct {
	name  string
	every int64
	calls atomic.Int64
}

func (f *atomicFlaky) Name() string { return f.name }

func (f *atomicFlaky) Search(query string, topK int) (Result, error) {
	c := f.calls.Add(1)
	if f.every > 0 && c%f.every == 0 {
		return Result{}, fmt.Errorf("%w: transient", ErrUnavailable)
	}
	return Result{MatchCount: int(len(query))}, nil
}

// hammer runs fn from workers goroutines, iters times each, failing
// the test on any error.
func hammer(t *testing.T, workers, iters int, fn func(worker, i int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fn(w, i); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRateLimitedConcurrentSearches(t *testing.T) {
	inner := NewStatic("s", Result{MatchCount: 1})
	rl := NewRateLimited(inner, time.Nanosecond)
	var waits atomic.Int64
	rl.OnWait = func(time.Duration) { waits.Add(1) }
	hammer(t, 8, 200, func(w, i int) error {
		_, err := rl.Search("q", 0)
		return err
	})
	if got := len(inner.Queries()); got != 8*200 {
		t.Errorf("inner saw %d searches, want %d", got, 8*200)
	}
}

func TestRetryConcurrentSearches(t *testing.T) {
	flk := &atomicFlaky{name: "f", every: 5}
	r := NewRetry(flk, 4, 0)
	r.sleep = func(time.Duration) {}
	var retries, exhausted atomic.Int64
	r.OnRetry = func(error) { retries.Add(1) }
	hammer(t, 8, 200, func(w, i int) error {
		// A search can (rarely) exhaust all 4 attempts when the global
		// failure counter aligns; that is correct behaviour, not a test
		// failure.
		if _, err := r.Search("query", 0); err != nil {
			exhausted.Add(1)
		}
		return nil
	})
	if retries.Load() == 0 {
		t.Error("expected some retries under injected failures")
	}
	if n := exhausted.Load(); n > 50 {
		t.Errorf("%d searches exhausted retries; the retry loop is not retrying", n)
	}
}

func TestCachedConcurrentSearches(t *testing.T) {
	counting := NewCounting(buildSmallLocal(t))
	c := NewCached(counting, 16)
	queries := []string{"breast cancer", "lung cancer", "nutrition", "diet"}
	hammer(t, 8, 250, func(w, i int) error {
		res, err := c.Search(queries[(w+i)%len(queries)], 2)
		if err != nil {
			return err
		}
		if res.MatchCount < 0 {
			return fmt.Errorf("bad result %+v", res)
		}
		return nil
	})
	hits, misses := c.Stats()
	if hits+misses != 8*250 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 8*250)
	}
	// Every distinct (query, topK) needs at least one backend call, and
	// concurrent first-misses may add a few more — but far fewer than
	// the total number of searches.
	if n := counting.Searches(); n < int64(len(queries)) || n > 200 {
		t.Errorf("backend searches = %d, want small (cache must absorb load)", n)
	}
}

func TestInstrumentedConcurrentSearches(t *testing.T) {
	reg := obs.NewRegistry()
	flk := &atomicFlaky{name: "db", every: 7}
	in := NewInstrumented(flk, reg)
	hammer(t, 8, 250, func(w, i int) error {
		in.Search("q", 0) // errors are part of the workload here
		return nil
	})
	lbl := obs.Labels{"db": "db"}
	total := reg.Counter("metaprobe_db_searches_total", lbl).Value()
	errs := reg.Counter("metaprobe_db_search_errors_total", lbl).Value()
	if total != 8*250 {
		t.Errorf("searches_total = %d, want %d", total, 8*250)
	}
	if want := total / 7; errs != want {
		t.Errorf("search_errors_total = %d, want %d", errs, want)
	}
	if got := reg.Histogram("metaprobe_db_search_latency_seconds", lbl).Count(); got != total {
		t.Errorf("latency observations = %d, want %d", got, total)
	}
}

// TestFullChainConcurrent stacks Instrumented → Retry → RateLimited →
// Cached → flaky backend and hammers it, exercising every hook under
// the race detector at once.
func TestFullChainConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	flk := &atomicFlaky{name: "db", every: 9}
	chain := NewInstrumented(
		NewRetry(NewRateLimited(NewCached(flk, 32), 0), 4, 0),
		reg)
	queries := []string{"a", "b", "c", "d", "e", "f"}
	hammer(t, 8, 150, func(w, i int) error {
		// Retry exhaustion is possible when failures align; the chain
		// handling it without corruption is exactly what's under test.
		chain.Search(queries[(w*3+i)%len(queries)], 0)
		return nil
	})
	if got := reg.Counter("metaprobe_db_searches_total", obs.Labels{"db": "db"}).Value(); got != 8*150 {
		t.Errorf("searches_total = %d, want %d", got, 8*150)
	}
}
