package hidden

import (
	"context"
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
	"metaprobe/internal/textindex"
)

// answerPage is the JSON wire format of a search response.
type answerPage struct {
	Database   string       `json:"database"`
	Query      string       `json:"query"`
	MatchCount int          `json:"matchCount"`
	Docs       []DocSummary `json:"docs,omitempty"`
}

// Server exposes one database over HTTP the way real Hidden-Web
// sources do: a keyword-search endpoint returning an answer page. Two
// formats are served so both metasearcher ingestion paths can be
// exercised:
//
//   - format=json — a structured answer (the friendly case);
//   - format=html (default) — a human-oriented answer page stating
//     "Results 1 - k of about N documents", which the Client scrapes
//     exactly as the paper's metasearcher scrapes real answer pages.
type Server struct {
	db Database
	// MaxTopK caps the number of returned documents per request
	// (default 100).
	MaxTopK int
}

// NewServer wraps a database as an HTTP handler.
func NewServer(db Database) *Server {
	return &Server{db: db, MaxTopK: 100}
}

// ServeHTTP implements http.Handler: /search answers queries, /doc
// serves document text (when the backing database supports fetching).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "only GET is supported", http.StatusMethodNotAllowed)
		return
	}
	if strings.HasSuffix(r.URL.Path, "/doc") {
		s.serveDoc(w, r)
		return
	}
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		http.Error(w, "missing query parameter q", http.StatusBadRequest)
		return
	}
	topK := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		k, err := strconv.Atoi(ks)
		if err != nil || k < 0 {
			http.Error(w, "parameter k must be a non-negative integer", http.StatusBadRequest)
			return
		}
		topK = k
	}
	if topK > s.MaxTopK {
		topK = s.MaxTopK
	}
	res, err := s.db.Search(q, topK)
	if err != nil {
		http.Error(w, fmt.Sprintf("search failed: %v", err), http.StatusBadGateway)
		return
	}
	// Real answer pages show a preview line per hit; synthesize one
	// when documents are fetchable.
	if f, ok := s.db.(Fetcher); ok {
		tok := textindex.DefaultTokenizer()
		for i := range res.Docs {
			if res.Docs[i].Snippet != "" {
				continue
			}
			if text, err := f.Fetch(res.Docs[i].ID); err == nil {
				res.Docs[i].Snippet = tok.Snippet(text, q, 12, false)
			}
		}
	}
	switch r.URL.Query().Get("format") {
	case "json":
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(answerPage{
			Database:   s.db.Name(),
			Query:      q,
			MatchCount: res.MatchCount,
			Docs:       res.Docs,
		})
	case "", "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeHTMLAnswerPage(w, s.db.Name(), q, res)
	default:
		http.Error(w, "unknown format (want json or html)", http.StatusBadRequest)
	}
}

// serveDoc returns a document's text as text/plain.
func (s *Server) serveDoc(w http.ResponseWriter, r *http.Request) {
	f, ok := s.db.(Fetcher)
	if !ok {
		http.Error(w, "this database does not serve documents", http.StatusNotFound)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing document id", http.StatusBadRequest)
		return
	}
	text, err := f.Fetch(id)
	if err != nil {
		http.Error(w, fmt.Sprintf("fetch failed: %v", err), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, text)
}

// writeHTMLAnswerPage renders the kind of result page a human-facing
// search site produces, including the thousands-separated "of about N"
// phrasing that scrapers must cope with.
func writeHTMLAnswerPage(w io.Writer, dbName, query string, res Result) {
	fmt.Fprintf(w, "<html><head><title>%s search</title></head><body>\n", html.EscapeString(dbName))
	fmt.Fprintf(w, "<h1>%s</h1>\n", html.EscapeString(dbName))
	fmt.Fprintf(w, "<p>You searched for <i>%s</i>.</p>\n", html.EscapeString(query))
	if res.MatchCount == 0 {
		fmt.Fprintf(w, "<p>No documents matched your query.</p>\n")
	} else {
		shown := len(res.Docs)
		fmt.Fprintf(w, "<p>Results 1 - %d of about <b>%s</b> documents.</p>\n<ol>\n",
			shown, groupThousands(res.MatchCount))
		for _, d := range res.Docs {
			fmt.Fprintf(w, `<li><a href="/doc/%s">%s</a> <span class="score">%.4f</span>`,
				url.PathEscape(d.ID), html.EscapeString(d.ID), d.Score)
			if d.Snippet != "" {
				fmt.Fprintf(w, ` <span class="snip">%s</span>`, html.EscapeString(d.Snippet))
			}
			fmt.Fprintf(w, "</li>\n")
		}
		fmt.Fprintf(w, "</ol>\n")
	}
	fmt.Fprintf(w, "</body></html>\n")
}

// groupThousands formats 1234567 as "1,234,567".
func groupThousands(n int) string {
	s := strconv.Itoa(n)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// Client speaks to a remote database served by Server (or anything
// wire-compatible). It implements Database.
type Client struct {
	name    string
	baseURL string
	// UseHTML selects the scraping path instead of JSON.
	UseHTML bool
	// HTTP is the underlying client (default: 10 s timeout).
	HTTP *http.Client
}

// NewClient returns a client for the database at baseURL (the URL
// serving /search). name is the metasearcher-side identifier.
func NewClient(name, baseURL string) *Client {
	return &Client{
		name:    name,
		baseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Timeout: 10 * time.Second},
	}
}

// Name implements Database.
func (c *Client) Name() string { return c.name }

// maxResponseBytes bounds how much of any HTTP response body is read,
// protecting the metasearcher from a misbehaving backend streaming an
// unbounded answer page or document.
const maxResponseBytes = 4 << 20

// errBodySnippet is how much of a non-200 response body is surfaced in
// the error message; real Hidden-Web sources put the useful diagnostic
// ("rate limit exceeded", "maintenance window") in the first line.
const errBodySnippet = 256

// truncateForError trims a response body for inclusion in an error.
func truncateForError(body []byte) string {
	s := strings.TrimSpace(string(body))
	if len(s) > errBodySnippet {
		s = s[:errBodySnippet] + "..."
	}
	return s
}

// Search implements Database over HTTP.
func (c *Client) Search(query string, topK int) (Result, error) {
	return c.SearchContext(context.Background(), query, topK)
}

// SearchContext implements ContextDatabase: the context rides the wire
// request, so deadlines and cancellation abort the round trip itself.
func (c *Client) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	format := "json"
	if c.UseHTML {
		format = "html"
	}
	u := fmt.Sprintf("%s/search?q=%s&k=%d&format=%s", c.baseURL, url.QueryEscape(query), topK, format)
	body, status, err := c.get(ctx, u)
	if err != nil {
		return Result{}, err
	}
	if status != http.StatusOK {
		return Result{}, fmt.Errorf("%w: %s: HTTP %d: %s", ErrUnavailable, c.name, status, truncateForError(body))
	}
	if c.UseHTML {
		return parseHTMLAnswerPage(string(body))
	}
	return c.decodeJSON(body)
}

// Fetch implements Fetcher over HTTP.
func (c *Client) Fetch(id string) (string, error) {
	return c.FetchContext(context.Background(), id)
}

// FetchContext implements ContextFetcher over HTTP.
func (c *Client) FetchContext(ctx context.Context, id string) (string, error) {
	u := fmt.Sprintf("%s/doc?id=%s", c.baseURL, url.QueryEscape(id))
	body, status, err := c.get(ctx, u)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", fmt.Errorf("hidden: %s: fetching %q: HTTP %d: %s", c.name, id, status, truncateForError(body))
	}
	return string(body), nil
}

// get performs one bounded GET under ctx, returning the (limited) body
// and status code. Transport-level failures wrap ErrUnavailable. The
// response size is charged to the selection's cost account and noted
// on the ambient trace span, so per-request byte spend is visible end
// to end.
func (c *Client) get(ctx context.Context, u string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("hidden: %s: %v", c.name, err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %s: %v", ErrUnavailable, c.name, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %s: reading response: %v", ErrUnavailable, c.name, err)
	}
	obs.CostFromContext(ctx).AddBytes(c.name, int64(len(body)))
	span.FromContext(ctx).AddEvent("http_response",
		"status", strconv.Itoa(resp.StatusCode), "bytes", strconv.Itoa(len(body)))
	return body, resp.StatusCode, nil
}

func (c *Client) decodeJSON(body []byte) (Result, error) {
	var page answerPage
	if err := json.Unmarshal(body, &page); err != nil {
		return Result{}, fmt.Errorf("hidden: %s: malformed JSON answer: %v", c.name, err)
	}
	if page.MatchCount < 0 {
		return Result{}, fmt.Errorf("hidden: %s: negative match count %d", c.name, page.MatchCount)
	}
	return Result{MatchCount: page.MatchCount, Docs: page.Docs}, nil
}

// parseHTMLAnswerPage scrapes the match count and result list out of an
// HTML answer page — the operation the paper's metasearcher performs on
// real Hidden-Web sites.
func parseHTMLAnswerPage(page string) (Result, error) {
	if strings.Contains(page, "No documents matched") {
		return Result{}, nil
	}
	const marker = "of about <b>"
	i := strings.Index(page, marker)
	if i < 0 {
		return Result{}, fmt.Errorf("hidden: answer page has no match-count marker")
	}
	rest := page[i+len(marker):]
	j := strings.Index(rest, "</b>")
	if j < 0 {
		return Result{}, fmt.Errorf("hidden: answer page match count not terminated")
	}
	count, err := strconv.Atoi(strings.ReplaceAll(rest[:j], ",", ""))
	if err != nil {
		return Result{}, fmt.Errorf("hidden: answer page match count %q: %v", rest[:j], err)
	}
	res := Result{MatchCount: count}
	// Result entries: <li><a href="/doc/ID">ID</a> <span class="score">S</span></li>
	for body := rest; ; {
		li := strings.Index(body, `<li><a href="/doc/`)
		if li < 0 {
			break
		}
		body = body[li:]
		idStart := strings.Index(body, `">`)
		idEnd := strings.Index(body, "</a>")
		if idStart < 0 || idEnd < 0 || idStart+2 > idEnd {
			return res, fmt.Errorf("hidden: malformed result entry in answer page")
		}
		id := html.UnescapeString(body[idStart+2 : idEnd])
		scoreStart := strings.Index(body, `class="score">`)
		scoreEnd := strings.Index(body, "</span>")
		if scoreStart < 0 || scoreEnd < 0 {
			return res, fmt.Errorf("hidden: result entry missing score")
		}
		score, err := strconv.ParseFloat(body[scoreStart+len(`class="score">`):scoreEnd], 64)
		if err != nil {
			return res, fmt.Errorf("hidden: malformed score in answer page: %v", err)
		}
		doc := DocSummary{ID: id, Score: score}
		body = body[scoreEnd+len("</span>"):]
		// Optional preview line.
		liEnd := strings.Index(body, "</li>")
		if snipStart := strings.Index(body, `class="snip">`); snipStart >= 0 && (liEnd < 0 || snipStart < liEnd) {
			rest := body[snipStart+len(`class="snip">`):]
			if snipEnd := strings.Index(rest, "</span>"); snipEnd >= 0 {
				doc.Snippet = html.UnescapeString(rest[:snipEnd])
			}
		}
		res.Docs = append(res.Docs, doc)
	}
	return res, nil
}

// ServeTestbed multiplexes many databases under one handler:
// /db/<name>/search routes to the matching database's Server.
func ServeTestbed(t *Testbed) http.Handler {
	mux := http.NewServeMux()
	for _, db := range t.Databases() {
		srv := NewServer(db)
		mux.Handle("/db/"+db.Name()+"/", http.StripPrefix("/db/"+db.Name(), srv))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, "<html><body><h1>metaprobe testbed</h1><ul>\n")
		for _, db := range t.Databases() {
			fmt.Fprintf(w, `<li><a href="/db/%s/search?q=example">%s</a></li>`+"\n",
				url.PathEscape(db.Name()), html.EscapeString(db.Name()))
		}
		fmt.Fprintf(w, "</ul></body></html>\n")
	})
	return mux
}
