package hidden

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRateLimitedSpacesSearches(t *testing.T) {
	inner := NewStatic("s", Result{MatchCount: 1})
	rl := NewRateLimited(inner, 100*time.Millisecond)

	// Fake clock: record requested sleeps instead of sleeping.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	var slept []time.Duration
	rl.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	rl.sleep = func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		slept = append(slept, d)
		now = now.Add(d)
	}

	for i := 0; i < 3; i++ {
		if _, err := rl.Search("q", 0); err != nil {
			t.Fatal(err)
		}
	}
	// First call immediate; the next two wait 100ms each.
	if len(slept) != 2 {
		t.Fatalf("slept %v, want two delays", slept)
	}
	for _, d := range slept {
		if d != 100*time.Millisecond {
			t.Errorf("delay %v, want 100ms", d)
		}
	}
	if got := len(inner.Queries()); got != 3 {
		t.Errorf("inner saw %d searches", got)
	}
	if rl.Name() != "s" {
		t.Errorf("Name = %q", rl.Name())
	}
}

func TestRateLimitedPassthroughs(t *testing.T) {
	local := buildSmallLocal(t)
	rl := NewRateLimited(local, 0)
	if rl.Size() != 4 {
		t.Errorf("Size = %d", rl.Size())
	}
	if _, err := rl.Fetch("d0"); err != nil {
		t.Errorf("Fetch: %v", err)
	}
	table := NewRateLimited(NewTable("t", nil), 0)
	if _, err := table.Fetch("x"); err == nil {
		t.Error("fetch on non-fetcher must fail")
	}
	if table.Size() != 0 {
		t.Error("Size on non-sizer should be 0")
	}
}

// flaky fails with ErrUnavailable until the n-th call.
type flaky struct {
	name      string
	failUntil int
	calls     int
}

func (f *flaky) Name() string { return f.name }
func (f *flaky) Search(query string, topK int) (Result, error) {
	f.calls++
	if f.calls < f.failUntil {
		return Result{}, fmt.Errorf("%w: transient", ErrUnavailable)
	}
	return Result{MatchCount: 7}, nil
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	f := &flaky{name: "f", failUntil: 3}
	r := NewRetry(f, 4, time.Millisecond)
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	// Pin jitter to the ceiling so the doubling schedule is observable.
	r.jitter = func(d time.Duration) time.Duration { return d }

	res, err := r.Search("q", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 7 {
		t.Errorf("result = %+v", res)
	}
	if f.calls != 3 {
		t.Errorf("calls = %d, want 3", f.calls)
	}
	// Exponential backoff: 1ms then 2ms.
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff = %v", slept)
	}
}

func TestRetryBackoffIsCappedAndJittered(t *testing.T) {
	f := &flaky{name: "f", failUntil: 100}
	r := NewRetry(f, 6, 10*time.Second)
	r.MaxBackoff = 15 * time.Second
	var ceilings []time.Duration
	// Record the pre-jitter ceilings the schedule produces.
	r.jitter = func(d time.Duration) time.Duration { ceilings = append(ceilings, d); return d / 2 }
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, err := r.Search("q", 0); err == nil {
		t.Fatal("want failure after exhausting retries")
	}
	// 10s, then capped at 15s forever — never 20s, 40s, ...
	want := []time.Duration{10 * time.Second, 15 * time.Second, 15 * time.Second, 15 * time.Second, 15 * time.Second}
	if len(ceilings) != len(want) {
		t.Fatalf("ceilings = %v", ceilings)
	}
	for i, c := range ceilings {
		if c != want[i] {
			t.Errorf("ceiling %d = %v, want %v", i, c, want[i])
		}
	}
	// The slept durations are what jitter returned, not the ceilings.
	for i, d := range slept {
		if d != ceilings[i]/2 {
			t.Errorf("slept %v, want jittered %v", d, ceilings[i]/2)
		}
	}
}

func TestRetryDefaultJitterStaysWithinCeiling(t *testing.T) {
	f := &flaky{name: "f", failUntil: 100}
	r := NewRetry(f, 5, 8*time.Millisecond)
	var slept []time.Duration
	r.sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := r.Search("q", 0); err == nil {
		t.Fatal("want failure")
	}
	ceil := 8 * time.Millisecond
	for _, d := range slept {
		if d < 0 || d > ceil {
			t.Errorf("jittered delay %v outside [0, %v]", d, ceil)
		}
		if ceil < defaultMaxBackoff {
			ceil *= 2
		}
	}
}

func TestRetryGivesUpAndWrapsError(t *testing.T) {
	f := &flaky{name: "f", failUntil: 100}
	r := NewRetry(f, 3, 0)
	r.sleep = func(time.Duration) {}
	_, err := r.Search("q", 0)
	if err == nil {
		t.Fatal("want failure after exhausting retries")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("error should keep ErrUnavailable: %v", err)
	}
	if f.calls != 3 {
		t.Errorf("calls = %d, want 3", f.calls)
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	bad := NewStaticError("bad", errors.New("malformed answer page"))
	r := NewRetry(bad, 5, 0)
	r.sleep = func(time.Duration) { t.Fatal("must not back off on permanent errors") }
	if _, err := r.Search("q", 0); err == nil {
		t.Fatal("want error")
	}
	if got := len(bad.Queries()); got != 1 {
		t.Errorf("permanent error retried %d times", got)
	}
}

func TestRetryFetch(t *testing.T) {
	local := buildSmallLocal(t)
	r := NewRetry(local, 2, 0)
	r.sleep = func(time.Duration) {}
	if _, err := r.Fetch("d0"); err != nil {
		t.Errorf("Fetch: %v", err)
	}
	if _, err := r.Fetch("missing"); err == nil {
		t.Error("missing doc must fail")
	}
	if r.Size() != 4 {
		t.Errorf("Size = %d", r.Size())
	}
	table := NewRetry(NewTable("t", nil), 2, 0)
	if _, err := table.Fetch("x"); err == nil {
		t.Error("fetch on non-fetcher must fail")
	}
	// attempts < 1 clamps to 1.
	one := NewRetry(&flaky{name: "f", failUntil: 2}, 0, 0)
	one.sleep = func(time.Duration) {}
	if _, err := one.Search("q", 0); err == nil {
		t.Error("single attempt against first-call failure must fail")
	}
}

func TestLatencyInjectsDelay(t *testing.T) {
	inner := NewStatic("s", Result{MatchCount: 2})
	l := NewLatency(inner, 42*time.Millisecond)
	var got time.Duration
	l.sleep = func(d time.Duration) { got = d }
	res, err := l.Search("q", 0)
	if err != nil || res.MatchCount != 2 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if got != 42*time.Millisecond {
		t.Errorf("delay = %v", got)
	}
	if l.Name() != "s" || l.Size() != 0 {
		t.Error("passthroughs wrong")
	}
}

// TestMiddlewareComposition stacks all wrappers and verifies the whole
// chain still behaves like a Database with probe accounting.
func TestMiddlewareComposition(t *testing.T) {
	local := buildSmallLocal(t)
	counting := NewCounting(local)
	rl := NewRateLimited(counting, 0)
	r := NewRetry(rl, 2, 0)
	r.sleep = func(time.Duration) {}
	lat := NewLatency(r, 0)
	lat.sleep = func(time.Duration) {}

	res, err := lat.Search("breast cancer", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 2 {
		t.Errorf("MatchCount = %d", res.MatchCount)
	}
	if counting.Searches() != 1 {
		t.Errorf("counted %d searches", counting.Searches())
	}
}
