package hidden

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file provides the operational middleware a production
// metasearcher needs around remote Hidden-Web sources: politeness
// (rate limiting), resilience (retry with backoff), and test
// instrumentation (latency injection).
//
// All wrappers implement Database and forward Fetcher/Sizer when the
// wrapped database supports them, so they compose freely:
//
//	db := hidden.NewRetry(hidden.NewRateLimited(client, time.Second), 3, time.Second)

// RateLimited enforces a minimum interval between searches against one
// database — the politeness constraint real Hidden-Web sites demand
// (the paper's probing cost concerns are precisely about not hammering
// sources).
type RateLimited struct {
	db       Database
	interval time.Duration

	// OnWait, when set, observes every non-zero politeness delay —
	// the hook the observability layer uses to expose rate-limit
	// waiting time. Set it before the wrapper is shared between
	// goroutines; it must itself be concurrency-safe.
	OnWait func(time.Duration)

	mu   sync.Mutex
	next time.Time
	// sleep is replaceable in tests.
	sleep func(time.Duration)
	// now is replaceable in tests.
	now func() time.Time
}

// NewRateLimited wraps db with a minimum interval between searches.
func NewRateLimited(db Database, interval time.Duration) *RateLimited {
	return &RateLimited{
		db:       db,
		interval: interval,
		sleep:    time.Sleep,
		now:      time.Now,
	}
}

// Name implements Database.
func (r *RateLimited) Name() string { return r.db.Name() }

// Search implements Database, delaying as needed to honor the interval.
func (r *RateLimited) Search(query string, topK int) (Result, error) {
	r.mu.Lock()
	now := r.now()
	wait := r.next.Sub(now)
	if wait < 0 {
		wait = 0
	}
	start := now.Add(wait)
	r.next = start.Add(r.interval)
	r.mu.Unlock()
	if wait > 0 {
		if r.OnWait != nil {
			r.OnWait(wait)
		}
		r.sleep(wait)
	}
	return r.db.Search(query, topK)
}

// Unwrap returns the wrapped database (the middleware-chain walker
// used by NewInstrumented).
func (r *RateLimited) Unwrap() Database { return r.db }

// Fetch passes through (document fetches piggyback on result pages and
// are not separately throttled).
func (r *RateLimited) Fetch(id string) (string, error) {
	if f, ok := r.db.(Fetcher); ok {
		return f.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", r.db.Name())
}

// Size passes through when available.
func (r *RateLimited) Size() int {
	if s, ok := r.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// Retry wraps a database with bounded retries and exponential backoff
// on ErrUnavailable (transient failures); other errors — malformed
// pages, protocol violations — fail immediately.
type Retry struct {
	db       Database
	attempts int
	backoff  time.Duration

	// OnRetry, when set, observes every retried attempt (called once
	// per backoff, with the error that triggered it). Set it before
	// the wrapper is shared between goroutines; it must itself be
	// concurrency-safe.
	OnRetry func(error)

	// sleep is replaceable in tests.
	sleep func(time.Duration)
}

// NewRetry wraps db; attempts is the total number of tries (≥ 1) and
// backoff the initial delay, doubling per retry.
func NewRetry(db Database, attempts int, backoff time.Duration) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	return &Retry{db: db, attempts: attempts, backoff: backoff, sleep: time.Sleep}
}

// Name implements Database.
func (r *Retry) Name() string { return r.db.Name() }

// Unwrap returns the wrapped database.
func (r *Retry) Unwrap() Database { return r.db }

// Search implements Database with retries on transient failures.
func (r *Retry) Search(query string, topK int) (Result, error) {
	delay := r.backoff
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			if r.OnRetry != nil {
				r.OnRetry(lastErr)
			}
			r.sleep(delay)
			delay *= 2
		}
		res, err := r.db.Search(query, topK)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrUnavailable) {
			return Result{}, err
		}
		lastErr = err
	}
	return Result{}, fmt.Errorf("hidden: %s failed after %d attempts: %w", r.db.Name(), r.attempts, lastErr)
}

// Fetch passes through with the same retry discipline.
func (r *Retry) Fetch(id string) (string, error) {
	f, ok := r.db.(Fetcher)
	if !ok {
		return "", fmt.Errorf("hidden: %s does not support document fetching", r.db.Name())
	}
	delay := r.backoff
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			if r.OnRetry != nil {
				r.OnRetry(lastErr)
			}
			r.sleep(delay)
			delay *= 2
		}
		text, err := f.Fetch(id)
		if err == nil {
			return text, nil
		}
		if !errors.Is(err, ErrUnavailable) {
			return "", err
		}
		lastErr = err
	}
	return "", fmt.Errorf("hidden: %s fetch failed after %d attempts: %w", r.db.Name(), r.attempts, lastErr)
}

// Size passes through when available.
func (r *Retry) Size() int {
	if s, ok := r.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// Latency injects a fixed delay before every search — used by
// benchmarks and examples to simulate remote round-trip times without
// a network.
type Latency struct {
	db    Database
	delay time.Duration
	// sleep is replaceable in tests.
	sleep func(time.Duration)
}

// NewLatency wraps db with a per-search delay.
func NewLatency(db Database, delay time.Duration) *Latency {
	return &Latency{db: db, delay: delay, sleep: time.Sleep}
}

// Name implements Database.
func (l *Latency) Name() string { return l.db.Name() }

// Unwrap returns the wrapped database.
func (l *Latency) Unwrap() Database { return l.db }

// Search implements Database with the injected delay.
func (l *Latency) Search(query string, topK int) (Result, error) {
	l.sleep(l.delay)
	return l.db.Search(query, topK)
}

// Size passes through when available.
func (l *Latency) Size() int {
	if s, ok := l.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}
