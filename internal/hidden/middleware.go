package hidden

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"metaprobe/internal/obs/span"
)

// This file provides the operational middleware a production
// metasearcher needs around remote Hidden-Web sources: politeness
// (rate limiting), resilience (retry with backoff), and test
// instrumentation (latency injection).
//
// All wrappers implement Database and forward Fetcher/Sizer when the
// wrapped database supports them, so they compose freely:
//
//	db := hidden.NewRetry(hidden.NewRateLimited(client, time.Second), 3, time.Second)

// RateLimited enforces a minimum interval between searches against one
// database — the politeness constraint real Hidden-Web sites demand
// (the paper's probing cost concerns are precisely about not hammering
// sources).
type RateLimited struct {
	db       Database
	interval time.Duration

	// OnWait, when set, observes every non-zero politeness delay —
	// the hook the observability layer uses to expose rate-limit
	// waiting time. Set it before the wrapper is shared between
	// goroutines; it must itself be concurrency-safe.
	OnWait func(time.Duration)

	mu   sync.Mutex
	next time.Time
	// sleep is replaceable in tests.
	sleep func(time.Duration)
	// now is replaceable in tests.
	now func() time.Time
}

// NewRateLimited wraps db with a minimum interval between searches.
func NewRateLimited(db Database, interval time.Duration) *RateLimited {
	return &RateLimited{
		db:       db,
		interval: interval,
		sleep:    time.Sleep,
		now:      time.Now,
	}
}

// Name implements Database.
func (r *RateLimited) Name() string { return r.db.Name() }

// reserve claims the next politeness slot and returns how long the
// caller must wait before using it.
func (r *RateLimited) reserve() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	wait := r.next.Sub(now)
	if wait < 0 {
		wait = 0
	}
	r.next = now.Add(wait).Add(r.interval)
	return wait
}

// Search implements Database, delaying as needed to honor the interval.
func (r *RateLimited) Search(query string, topK int) (Result, error) {
	if wait := r.reserve(); wait > 0 {
		if r.OnWait != nil {
			r.OnWait(wait)
		}
		r.sleep(wait)
	}
	return r.db.Search(query, topK)
}

// SearchContext implements ContextDatabase: the politeness delay itself
// is interruptible, so a cancelled probe stops waiting immediately (its
// reserved slot goes unused — the interval to the next search still
// holds).
func (r *RateLimited) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	if wait := r.reserve(); wait > 0 {
		if r.OnWait != nil {
			r.OnWait(wait)
		}
		if err := sleepContext(ctx, wait); err != nil {
			return Result{}, fmt.Errorf("hidden: %s: %w", r.db.Name(), err)
		}
	}
	return SearchContext(ctx, r.db, query, topK)
}

// Unwrap returns the wrapped database (the middleware-chain walker
// used by NewInstrumented).
func (r *RateLimited) Unwrap() Database { return r.db }

// Fetch passes through (document fetches piggyback on result pages and
// are not separately throttled).
func (r *RateLimited) Fetch(id string) (string, error) {
	if f, ok := r.db.(Fetcher); ok {
		return f.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", r.db.Name())
}

// Size passes through when available.
func (r *RateLimited) Size() int {
	if s, ok := r.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// defaultMaxBackoff caps the exponential backoff doubling when
// Retry.MaxBackoff is unset. Without a ceiling, delay *= 2 grows
// unbounded: after a long outage the next retry could be scheduled
// hours out.
const defaultMaxBackoff = 30 * time.Second

// Retry wraps a database with bounded retries and exponential backoff
// on ErrUnavailable (transient failures); other errors — malformed
// pages, protocol violations — fail immediately.
//
// The backoff ceiling is capped (MaxBackoff) and the actual delay
// drawn uniformly from [0, ceiling] ("full jitter"): many clients
// whose retries were synchronized by one outage would otherwise all
// sleep the same deterministic schedule and storm the recovering
// backend in lockstep.
type Retry struct {
	db       Database
	attempts int
	backoff  time.Duration

	// MaxBackoff caps the doubling backoff ceiling (default 30 s).
	// Set it before the wrapper is shared between goroutines.
	MaxBackoff time.Duration

	// OnRetry, when set, observes every retried attempt (called once
	// per backoff, with the error that triggered it). Set it before
	// the wrapper is shared between goroutines; it must itself be
	// concurrency-safe.
	OnRetry func(error)

	// sleep is replaceable in tests.
	sleep func(time.Duration)
	// jitter draws the actual delay from a ceiling; replaceable in
	// tests (the default is full jitter: uniform in [0, d]).
	jitter func(d time.Duration) time.Duration
}

// NewRetry wraps db; attempts is the total number of tries (≥ 1) and
// backoff the initial delay, doubling per retry up to MaxBackoff.
func NewRetry(db Database, attempts int, backoff time.Duration) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	return &Retry{db: db, attempts: attempts, backoff: backoff, sleep: time.Sleep, jitter: fullJitter}
}

// fullJitter returns a uniformly random duration in [0, d].
func fullJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

// nextDelay returns the jittered sleep for the current backoff ceiling
// and the (capped) ceiling for the retry after it.
func (r *Retry) nextDelay(ceiling time.Duration) (sleep, next time.Duration) {
	max := r.MaxBackoff
	if max <= 0 {
		max = defaultMaxBackoff
	}
	if ceiling > max {
		ceiling = max
	}
	next = ceiling * 2
	if next > max {
		next = max
	}
	return r.jitter(ceiling), next
}

// Name implements Database.
func (r *Retry) Name() string { return r.db.Name() }

// Unwrap returns the wrapped database.
func (r *Retry) Unwrap() Database { return r.db }

// Search implements Database with retries on transient failures.
func (r *Retry) Search(query string, topK int) (Result, error) {
	delay := r.backoff
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			if r.OnRetry != nil {
				r.OnRetry(lastErr)
			}
			var sleep time.Duration
			sleep, delay = r.nextDelay(delay)
			r.sleep(sleep)
		}
		res, err := r.db.Search(query, topK)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrUnavailable) {
			return Result{}, err
		}
		lastErr = err
	}
	return Result{}, fmt.Errorf("hidden: %s failed after %d attempts: %w", r.db.Name(), r.attempts, lastErr)
}

// SearchContext implements ContextDatabase: backoff sleeps abort on
// cancellation and the context reaches the wrapped database. Each
// retried attempt is recorded as an event on the ambient trace span
// (when one is present), with the triggering error.
func (r *Retry) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	sp := span.FromContext(ctx)
	delay := r.backoff
	var lastErr error
	retries := 0
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			if r.OnRetry != nil {
				r.OnRetry(lastErr)
			}
			retries++
			sp.AddEvent("retry", "attempt", strconv.Itoa(attempt+1), "error", lastErr.Error())
			var sleep time.Duration
			sleep, delay = r.nextDelay(delay)
			if err := sleepContext(ctx, sleep); err != nil {
				return Result{}, fmt.Errorf("hidden: %s: %w", r.db.Name(), err)
			}
		}
		res, err := SearchContext(ctx, r.db, query, topK)
		if err == nil {
			if retries > 0 {
				sp.SetAttr("retries", strconv.Itoa(retries))
			}
			return res, nil
		}
		if !errors.Is(err, ErrUnavailable) || ctx.Err() != nil {
			return Result{}, err
		}
		lastErr = err
	}
	sp.SetAttr("retries", strconv.Itoa(retries))
	return Result{}, fmt.Errorf("hidden: %s failed after %d attempts: %w", r.db.Name(), r.attempts, lastErr)
}

// Fetch passes through with the same retry discipline.
func (r *Retry) Fetch(id string) (string, error) {
	f, ok := r.db.(Fetcher)
	if !ok {
		return "", fmt.Errorf("hidden: %s does not support document fetching", r.db.Name())
	}
	delay := r.backoff
	var lastErr error
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			if r.OnRetry != nil {
				r.OnRetry(lastErr)
			}
			var sleep time.Duration
			sleep, delay = r.nextDelay(delay)
			r.sleep(sleep)
		}
		text, err := f.Fetch(id)
		if err == nil {
			return text, nil
		}
		if !errors.Is(err, ErrUnavailable) {
			return "", err
		}
		lastErr = err
	}
	return "", fmt.Errorf("hidden: %s fetch failed after %d attempts: %w", r.db.Name(), r.attempts, lastErr)
}

// Size passes through when available.
func (r *Retry) Size() int {
	if s, ok := r.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// Latency injects a fixed delay before every search — used by
// benchmarks and examples to simulate remote round-trip times without
// a network.
type Latency struct {
	db    Database
	delay time.Duration
	// sleep is replaceable in tests.
	sleep func(time.Duration)
}

// NewLatency wraps db with a per-search delay.
func NewLatency(db Database, delay time.Duration) *Latency {
	return &Latency{db: db, delay: delay, sleep: time.Sleep}
}

// Name implements Database.
func (l *Latency) Name() string { return l.db.Name() }

// Unwrap returns the wrapped database.
func (l *Latency) Unwrap() Database { return l.db }

// Search implements Database with the injected delay.
func (l *Latency) Search(query string, topK int) (Result, error) {
	l.sleep(l.delay)
	return l.db.Search(query, topK)
}

// SearchContext implements ContextDatabase: the injected delay is
// interruptible, so cancelled hedges and abandoned speculative probes
// return immediately — exactly the behavior of a real remote round
// trip aborted mid-flight.
func (l *Latency) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	if err := sleepContext(ctx, l.delay); err != nil {
		return Result{}, fmt.Errorf("hidden: %s: %w", l.db.Name(), err)
	}
	return SearchContext(ctx, l.db, query, topK)
}

// Size passes through when available.
func (l *Latency) Size() int {
	if s, ok := l.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}
