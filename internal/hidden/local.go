package hidden

import (
	"fmt"
	"sync"

	"metaprobe/internal/corpus"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

// newSpecRNG derives a deterministic per-database stream from (seed,
// label). Each call builds its own parent so concurrent builders do not
// share RNG state.
func newSpecRNG(seed, label int64) *stats.RNG {
	return stats.NewRNG(seed).Fork(label)
}

// Local is an in-process Hidden-Web database backed by an inverted
// index. It is the workhorse of the experiment suite: semantics are
// identical to the HTTP path but with zero latency.
type Local struct {
	name  string
	index *textindex.Index
	texts map[string]string
}

// NewLocal wraps an already-built index as a database. Fetch is only
// available for documents registered with StoreText (BuildLocal does
// this automatically).
func NewLocal(name string, index *textindex.Index) *Local {
	return &Local{name: name, index: index, texts: make(map[string]string)}
}

// StoreText registers the retrievable text of a document so Fetch can
// serve it.
func (l *Local) StoreText(id, text string) { l.texts[id] = text }

// Fetch implements Fetcher.
func (l *Local) Fetch(id string) (string, error) {
	text, ok := l.texts[id]
	if !ok {
		return "", fmt.Errorf("hidden: %s: no document %q", l.name, id)
	}
	return text, nil
}

// BuildLocal indexes the given documents into a fresh database using
// the default tokenizer. The corpus generator emits pre-tokenized
// terms, which are indexed via the fast path.
func BuildLocal(name string, docs []corpus.Document) *Local {
	ix := textindex.NewIndex(nil)
	tok := textindex.DefaultTokenizer()
	l := NewLocal(name, ix)
	for _, d := range docs {
		// Normalize generator terms exactly like free text so the
		// index, summaries and queries all live in the same term space.
		norm := make([]string, 0, len(d.Terms))
		for _, t := range d.Terms {
			norm = append(norm, tok.Tokenize(t)...)
		}
		ix.AddTerms(d.ID, norm)
		l.StoreText(d.ID, d.Text())
	}
	return l
}

// Name implements Database.
func (l *Local) Name() string { return l.name }

// Size implements Sizer.
func (l *Local) Size() int { return l.index.Size() }

// Index exposes the underlying index (summaries are built from it).
func (l *Local) Index() *textindex.Index { return l.index }

// Search implements Database: boolean-AND match count plus the topK
// cosine-ranked documents.
func (l *Local) Search(query string, topK int) (Result, error) {
	res := Result{MatchCount: l.index.MatchCount(query)}
	if topK > 0 {
		for _, h := range l.index.Search(query, topK) {
			res.Docs = append(res.Docs, DocSummary{ID: h.DocID, Score: h.Score})
		}
	}
	return res, nil
}

// Testbed is a named, ordered collection of databases — what the
// metasearcher mediates. Order is significant: database index is the
// deterministic tie-breaker throughout the selection math.
type Testbed struct {
	dbs []Database
}

// NewTestbed validates that database names are unique and returns the
// collection.
func NewTestbed(dbs []Database) (*Testbed, error) {
	seen := make(map[string]struct{}, len(dbs))
	for _, db := range dbs {
		if _, dup := seen[db.Name()]; dup {
			return nil, fmt.Errorf("hidden: duplicate database name %q", db.Name())
		}
		seen[db.Name()] = struct{}{}
	}
	return &Testbed{dbs: dbs}, nil
}

// Len returns the number of databases.
func (t *Testbed) Len() int { return len(t.dbs) }

// DB returns the i-th database.
func (t *Testbed) DB(i int) Database { return t.dbs[i] }

// Databases returns the databases in order (the slice is shared; do
// not mutate).
func (t *Testbed) Databases() []Database { return t.dbs }

// IndexOf returns the position of the named database, or -1.
func (t *Testbed) IndexOf(name string) int {
	for i, db := range t.dbs {
		if db.Name() == name {
			return i
		}
	}
	return -1
}

// BuildTestbed generates and indexes every database of a testbed spec
// in parallel (generation is the dominant setup cost of the experiment
// suite). Each database derives its own RNG stream from the seed, so
// the result is deterministic regardless of scheduling.
func BuildTestbed(world *corpus.World, specs []corpus.DatabaseSpec, seed int64) (*Testbed, error) {
	dbs := make([]Database, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec corpus.DatabaseSpec) {
			defer wg.Done()
			rng := newSpecRNG(seed, int64(i))
			docs, err := world.Generate(spec, rng)
			if err != nil {
				errs[i] = err
				return
			}
			dbs[i] = BuildLocal(spec.Name, docs)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return NewTestbed(dbs)
}
