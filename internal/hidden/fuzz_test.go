package hidden

import (
	"strings"
	"testing"
)

// FuzzParseHTMLAnswerPage hardens the scraper against arbitrary pages:
// it must either parse or return an error — never panic, never return
// a negative count.
func FuzzParseHTMLAnswerPage(f *testing.F) {
	f.Add("<html><body><p>Results 1 - 2 of about <b>1,234</b> documents.</p></body></html>")
	f.Add("No documents matched your query.")
	f.Add("of about <b>12")
	f.Add(`of about <b>7</b><li><a href="/doc/x">x</a> <span class="score">0.5</span></li>`)
	f.Add(`of about <b>7</b><li><a href="/doc/x">x</a> <span class="score">oops</span></li>`)
	f.Add("")
	f.Fuzz(func(t *testing.T, page string) {
		res, err := parseHTMLAnswerPage(page)
		if err != nil {
			return
		}
		if res.MatchCount < 0 {
			t.Fatalf("negative match count %d from %q", res.MatchCount, page)
		}
		for _, d := range res.Docs {
			if strings.Contains(d.ID, "<") {
				t.Fatalf("unescaped markup in doc ID %q", d.ID)
			}
		}
	})
}
