package hidden

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// Cached memoizes search results with an LRU eviction policy. Within a
// metasearch session the same query hits a database repeatedly —
// training, golden-standard construction, probing and result fetching
// all issue overlapping queries — and remote round trips dominate, so
// a small per-database cache pays for itself immediately.
//
// Results are cached per query, keeping the answer with the largest
// topK ceiling seen so far: a request for fewer documents than a
// cached entry holds is served by truncating the cached ranking (a
// hit), since the top-k of a top-K answer with k ≤ K is identical.
// Only a request for *more* documents than the entry can prove it has
// falls through to the backend, after which the larger answer replaces
// the entry.
type Cached struct {
	db       Database
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element // query → entry
	order   *list.List               // front = most recent

	hits, misses int64
}

// cacheEntry is one memoized answer: the best (largest-ceiling)
// result seen for a query.
type cacheEntry struct {
	query string
	// topK is the ceiling res was fetched with.
	topK int
	res  Result
}

// serves reports whether this entry can answer a request for topK
// documents: either the entry was fetched with at least that ceiling,
// or it holds the complete match list (the backend returned fewer
// documents than asked for, so no larger request can see more).
func (e *cacheEntry) serves(topK int) bool {
	return e.topK >= topK || len(e.res.Docs) < e.topK
}

// truncate renders the entry's answer for a smaller ceiling. The Docs
// slice is shared read-only with the cache.
func (e *cacheEntry) truncate(topK int) Result {
	res := e.res
	if topK < len(res.Docs) {
		res.Docs = res.Docs[:topK:topK]
	}
	return res
}

// NewCached wraps db with an LRU result cache of the given capacity
// (entries, not bytes); capacity ≤ 0 defaults to 1024.
func NewCached(db Database, capacity int) *Cached {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cached{
		db:       db,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Name implements Database.
func (c *Cached) Name() string { return c.db.Name() }

// Unwrap returns the wrapped database.
func (c *Cached) Unwrap() Database { return c.db }

// Search implements Database with memoization. Errors are never
// cached.
func (c *Cached) Search(query string, topK int) (Result, error) {
	if res, ok := c.lookup(query, topK); ok {
		return res, nil
	}
	res, err := c.db.Search(query, topK)
	if err != nil {
		return Result{}, err
	}
	return c.store(query, topK, res), nil
}

// SearchContext implements ContextDatabase. Hits answer from memory
// regardless of the context's state; misses go to the backend under
// ctx. The outcome is annotated on the ambient trace span and, for
// hits, charged to the selection's cost account (a hit costs no wire
// round trip).
func (c *Cached) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	sp := span.FromContext(ctx)
	if res, ok := c.lookup(query, topK); ok {
		sp.AddEvent("cache_hit", "db", c.db.Name())
		obs.CostFromContext(ctx).AddCacheHit()
		return res, nil
	}
	sp.AddEvent("cache_miss", "db", c.db.Name())
	res, err := SearchContext(ctx, c.db, query, topK)
	if err != nil {
		return Result{}, err
	}
	return c.store(query, topK, res), nil
}

// lookup returns the cached answer able to serve (query, topK),
// counting the hit or miss. Serving from a larger cached ceiling
// counts as a hit.
func (c *Cached) lookup(query string, topK int) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[query]; ok {
		if e := el.Value.(*cacheEntry); e.serves(topK) {
			c.order.MoveToFront(el)
			c.hits++
			return e.truncate(topK), true
		}
	}
	c.misses++
	return Result{}, false
}

// store memoizes one answer, evicting the least recently used entries
// beyond capacity, and returns the value to serve. An answer fetched
// with a larger ceiling replaces the query's existing entry; a
// concurrent store that can already serve this ceiling wins instead.
func (c *Cached) store(query string, topK int, res Result) Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[query]; ok {
		e := el.Value.(*cacheEntry)
		if e.serves(topK) {
			// A concurrent caller cached an answer at least as wide;
			// keep theirs.
			c.order.MoveToFront(el)
			return e.truncate(topK)
		}
		el.Value = &cacheEntry{query: query, topK: topK, res: res}
		c.order.MoveToFront(el)
		return res
	}
	el := c.order.PushFront(&cacheEntry{query: query, topK: topK, res: res})
	c.entries[query] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).query)
	}
	return res
}

// Fetch passes through uncached (documents are fetched once during
// sampling; caching them would only duplicate memory).
func (c *Cached) Fetch(id string) (string, error) {
	if f, ok := c.db.(Fetcher); ok {
		return f.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", c.db.Name())
}

// Size passes through when available.
func (c *Cached) Size() int {
	if s, ok := c.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// Stats returns cache hits and misses so far.
func (c *Cached) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
