package hidden

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

// Cached memoizes search results with an LRU eviction policy. Within a
// metasearch session the same query hits a database repeatedly —
// training, golden-standard construction, probing and result fetching
// all issue overlapping queries — and remote round trips dominate, so
// a small per-database cache pays for itself immediately. Results are
// cached per (query, topK-ceiling): a hit requesting more documents
// than a cached entry holds falls through to the backend.
type Cached struct {
	db       Database
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recent

	hits, misses int64
}

// cacheEntry is one memoized answer.
type cacheEntry struct {
	query string
	topK  int
	res   Result
}

// NewCached wraps db with an LRU result cache of the given capacity
// (entries, not bytes); capacity ≤ 0 defaults to 1024.
func NewCached(db Database, capacity int) *Cached {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cached{
		db:       db,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// Name implements Database.
func (c *Cached) Name() string { return c.db.Name() }

// Unwrap returns the wrapped database.
func (c *Cached) Unwrap() Database { return c.db }

// Search implements Database with memoization. Errors are never
// cached.
func (c *Cached) Search(query string, topK int) (Result, error) {
	key := fmt.Sprintf("%d\x00%s", topK, query)
	if res, ok := c.lookup(key); ok {
		return res, nil
	}
	res, err := c.db.Search(query, topK)
	if err != nil {
		return Result{}, err
	}
	return c.store(key, query, topK, res), nil
}

// SearchContext implements ContextDatabase. Hits answer from memory
// regardless of the context's state; misses go to the backend under
// ctx.
func (c *Cached) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	key := fmt.Sprintf("%d\x00%s", topK, query)
	if res, ok := c.lookup(key); ok {
		return res, nil
	}
	res, err := SearchContext(ctx, c.db, query, topK)
	if err != nil {
		return Result{}, err
	}
	return c.store(key, query, topK, res), nil
}

// lookup returns the cached answer for key, counting the hit or miss.
func (c *Cached) lookup(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	c.misses++
	return Result{}, false
}

// store memoizes one answer, evicting the least recently used entries
// beyond capacity, and returns the canonical cached value.
func (c *Cached) store(key, query string, topK int, res Result) Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent caller cached it first; keep theirs.
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).res
	}
	el := c.order.PushFront(&cacheEntry{query: query, topK: topK, res: res})
	c.entries[key] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, fmt.Sprintf("%d\x00%s", e.topK, e.query))
	}
	return res
}

// Fetch passes through uncached (documents are fetched once during
// sampling; caching them would only duplicate memory).
func (c *Cached) Fetch(id string) (string, error) {
	if f, ok := c.db.(Fetcher); ok {
		return f.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", c.db.Name())
}

// Size passes through when available.
func (c *Cached) Size() int {
	if s, ok := c.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// Stats returns cache hits and misses so far.
func (c *Cached) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
