package hidden

import (
	"context"
	"fmt"
	"time"
)

// ContextDatabase is a Database whose searches honor a
// context.Context: cancellation and deadlines propagate into the
// request (for the HTTP client, all the way into the wire request via
// http.NewRequestWithContext). The probe-execution engine
// (internal/probeexec) depends on this to cancel hedged requests and
// abandon probes whose selection already reached its certainty target.
type ContextDatabase interface {
	Database
	// SearchContext is Search bounded by ctx. Implementations return
	// promptly once ctx is done; the error then wraps ctx.Err().
	SearchContext(ctx context.Context, query string, topK int) (Result, error)
}

// ContextFetcher is the context-aware analogue of Fetcher.
type ContextFetcher interface {
	Fetcher
	// FetchContext is Fetch bounded by ctx.
	FetchContext(ctx context.Context, id string) (string, error)
}

// SearchContext issues a search through db honoring ctx: databases
// implementing ContextDatabase get the context natively; for everything
// else the search runs synchronously after a cancellation pre-check
// (in-process databases answer in microseconds, so mid-flight
// cancellation buys nothing there).
func SearchContext(ctx context.Context, db Database, query string, topK int) (Result, error) {
	if cd, ok := db.(ContextDatabase); ok {
		return cd.SearchContext(ctx, query, topK)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("hidden: %s: %w", db.Name(), err)
	}
	return db.Search(query, topK)
}

// WithContext binds ctx into a plain Database view of db, so
// context-free APIs that accept a Database (estimate.Relevancy.Probe,
// EstimateSize) transparently run their searches under the context.
// Fetcher and Sizer pass through when db supports them.
func WithContext(ctx context.Context, db Database) Database {
	return &boundContext{ctx: ctx, db: db}
}

// boundContext adapts (ctx, db) to the context-free Database surface.
type boundContext struct {
	ctx context.Context
	db  Database
}

// Name implements Database.
func (b *boundContext) Name() string { return b.db.Name() }

// Unwrap returns the wrapped database.
func (b *boundContext) Unwrap() Database { return b.db }

// Search implements Database under the bound context.
func (b *boundContext) Search(query string, topK int) (Result, error) {
	return SearchContext(b.ctx, b.db, query, topK)
}

// Fetch passes through under the bound context when supported.
func (b *boundContext) Fetch(id string) (string, error) {
	if cf, ok := b.db.(ContextFetcher); ok {
		return cf.FetchContext(b.ctx, id)
	}
	if f, ok := b.db.(Fetcher); ok {
		if err := b.ctx.Err(); err != nil {
			return "", fmt.Errorf("hidden: %s: %w", b.db.Name(), err)
		}
		return f.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", b.db.Name())
}

// Size passes through when available.
func (b *boundContext) Size() int {
	if s, ok := b.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// sleepContext blocks for d or until ctx is done, whichever comes
// first, returning ctx.Err() in the latter case. The context-aware
// middleware paths use it in place of time.Sleep so politeness delays,
// backoffs and injected latency all abort promptly on cancellation.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
