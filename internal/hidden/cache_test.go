package hidden

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestCachedMemoizes(t *testing.T) {
	inner := NewCounting(buildSmallLocal(t))
	c := NewCached(inner, 10)
	for i := 0; i < 5; i++ {
		res, err := c.Search("breast cancer", 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.MatchCount != 2 {
			t.Fatalf("MatchCount = %d", res.MatchCount)
		}
	}
	if inner.Searches() != 1 {
		t.Errorf("backend saw %d searches, want 1", inner.Searches())
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 4/1", hits, misses)
	}
	// A larger topK than the entry can prove it has goes to the backend.
	if _, err := c.Search("breast cancer", 5); err != nil {
		t.Fatal(err)
	}
	if inner.Searches() != 2 {
		t.Errorf("backend saw %d searches after topK growth, want 2", inner.Searches())
	}
}

// TestCachedServesSmallerTopK: an entry cached at a larger ceiling
// answers smaller requests by truncation, counted as hits.
func TestCachedServesSmallerTopK(t *testing.T) {
	inner := NewCounting(buildSmallLocal(t))
	c := NewCached(inner, 10)
	// topK 2 with exactly 2 matches: the entry fills its ceiling, so it
	// cannot prove completeness and larger requests must fall through.
	full, err := c.Search("breast cancer", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Docs) != 2 {
		t.Fatalf("fixture changed: got %d docs for 'breast cancer'", len(full.Docs))
	}
	small, err := c.Search("breast cancer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if inner.Searches() != 1 {
		t.Fatalf("backend saw %d searches; smaller topK must serve from the larger entry", inner.Searches())
	}
	if len(small.Docs) != 1 || small.Docs[0] != full.Docs[0] {
		t.Fatalf("truncated answer %+v does not match head of %+v", small.Docs, full.Docs)
	}
	if small.MatchCount != full.MatchCount {
		t.Errorf("truncation changed MatchCount: %d vs %d", small.MatchCount, full.MatchCount)
	}
	// Count-only requests are also served by truncation.
	if res, err := c.Search("breast cancer", 0); err != nil || len(res.Docs) != 0 || res.MatchCount != full.MatchCount {
		t.Fatalf("count-only from cached entry: res=%+v err=%v", res, err)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", hits, misses)
	}
	// A request beyond the entry's ceiling hits the backend and the
	// wider answer replaces the entry.
	if _, err := c.Search("breast cancer", 5); err != nil {
		t.Fatal(err)
	}
	if inner.Searches() != 2 {
		t.Fatalf("backend saw %d searches for a wider request, want 2", inner.Searches())
	}
	// The new entry came back with fewer docs than its ceiling, proving
	// completeness: any larger request is now served from cache.
	if _, err := c.Search("breast cancer", 200); err != nil {
		t.Fatal(err)
	}
	if inner.Searches() != 2 {
		t.Errorf("complete entry did not serve a larger request (searches=%d)", inner.Searches())
	}
	// One entry per query, not one per (query, topK).
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries for one query", c.Len())
	}
}

func TestCachedLRUEviction(t *testing.T) {
	inner := NewCounting(buildSmallLocal(t))
	c := NewCached(inner, 2)
	queries := []string{"cancer", "breast", "treatment"}
	for _, q := range queries {
		if _, err := c.Search(q, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", c.Len())
	}
	// "cancer" (oldest) was evicted → re-querying hits the backend.
	before := inner.Searches()
	if _, err := c.Search("cancer", 0); err != nil {
		t.Fatal(err)
	}
	if inner.Searches() != before+1 {
		t.Error("evicted entry served from cache")
	}
	// "treatment" is still cached.
	before = inner.Searches()
	if _, err := c.Search("treatment", 0); err != nil {
		t.Fatal(err)
	}
	if inner.Searches() != before {
		t.Error("recent entry not served from cache")
	}
}

func TestCachedDoesNotCacheErrors(t *testing.T) {
	flaky := &flaky{name: "f", failUntil: 2}
	c := NewCached(flaky, 10)
	if _, err := c.Search("q", 0); err == nil {
		t.Fatal("first call should fail")
	}
	res, err := c.Search("q", 0)
	if err != nil {
		t.Fatalf("second call should succeed: %v", err)
	}
	if res.MatchCount != 7 {
		t.Errorf("res = %+v", res)
	}
}

func TestCachedConcurrent(t *testing.T) {
	inner := NewCounting(buildSmallLocal(t))
	c := NewCached(inner, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("cancer term%d", i%5)
				if _, err := c.Search(q, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// 5 distinct queries; the backend may see a few extra due to the
	// fill race, but nowhere near 400.
	if inner.Searches() > 40 {
		t.Errorf("backend saw %d searches for 5 distinct queries", inner.Searches())
	}
}

func TestCachedPassthroughs(t *testing.T) {
	local := buildSmallLocal(t)
	c := NewCached(local, 0) // default capacity
	if c.Size() != 4 {
		t.Errorf("Size = %d", c.Size())
	}
	if _, err := c.Fetch("d0"); err != nil {
		t.Errorf("Fetch: %v", err)
	}
	nc := NewCached(NewTable("t", nil), 1)
	if _, err := nc.Fetch("x"); err == nil {
		t.Error("fetch on non-fetcher must fail")
	}
	if nc.Size() != 0 {
		t.Error("non-sizer Size should be 0")
	}
	bad := NewCached(NewStaticError("b", errors.New("x")), 1)
	if _, err := bad.Search("q", 0); err == nil {
		t.Error("backend error must propagate")
	}
}
