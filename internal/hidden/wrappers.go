package hidden

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Counting wraps a database and counts searches; the experiment
// harness uses it to account for probing cost (Section 5.2: "minimizing
// the probing cost is the same as minimizing the total number of
// probing"). It also supports a non-uniform per-probe cost for the
// cost-aware ablation.
type Counting struct {
	db Database
	// CostPerProbe is the cost charged per search (default 1).
	CostPerProbe float64

	searches atomic.Int64
}

// NewCounting wraps db with unit probe cost.
func NewCounting(db Database) *Counting {
	return &Counting{db: db, CostPerProbe: 1}
}

// Name implements Database.
func (c *Counting) Name() string { return c.db.Name() }

// Unwrap returns the wrapped database.
func (c *Counting) Unwrap() Database { return c.db }

// Search implements Database, incrementing the probe counter.
func (c *Counting) Search(query string, topK int) (Result, error) {
	c.searches.Add(1)
	return c.db.Search(query, topK)
}

// SearchContext implements ContextDatabase with the same accounting.
func (c *Counting) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	c.searches.Add(1)
	return SearchContext(ctx, c.db, query, topK)
}

// Size passes through when the wrapped database exports its size.
func (c *Counting) Size() int {
	if s, ok := c.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}

// Fetch passes through when the wrapped database supports fetching.
// Document fetches are not counted as probes (the paper's probing cost
// counts queries, and fetches only occur during offline sampling).
func (c *Counting) Fetch(id string) (string, error) {
	if f, ok := c.db.(Fetcher); ok {
		return f.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", c.db.Name())
}

// Searches returns the number of searches issued so far.
func (c *Counting) Searches() int64 { return c.searches.Load() }

// Cost returns the accumulated probing cost.
func (c *Counting) Cost() float64 { return float64(c.searches.Load()) * c.CostPerProbe }

// Reset zeroes the counter.
func (c *Counting) Reset() { c.searches.Store(0) }

// FailEvery wraps a database and fails deterministically: every n-th
// search returns ErrUnavailable. Used by failure-injection tests.
type FailEvery struct {
	db Database
	n  int64

	calls atomic.Int64
}

// NewFailEvery fails the n-th, 2n-th, ... searches; n ≤ 0 never fails.
func NewFailEvery(db Database, n int) *FailEvery {
	return &FailEvery{db: db, n: int64(n)}
}

// Name implements Database.
func (f *FailEvery) Name() string { return f.db.Name() }

// Unwrap returns the wrapped database.
func (f *FailEvery) Unwrap() Database { return f.db }

// Search implements Database with deterministic failures.
func (f *FailEvery) Search(query string, topK int) (Result, error) {
	c := f.calls.Add(1)
	if f.n > 0 && c%f.n == 0 {
		return Result{}, fmt.Errorf("%w: injected failure on call %d to %s", ErrUnavailable, c, f.db.Name())
	}
	return f.db.Search(query, topK)
}

// SearchContext implements ContextDatabase with the same failure
// schedule.
func (f *FailEvery) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	c := f.calls.Add(1)
	if f.n > 0 && c%f.n == 0 {
		return Result{}, fmt.Errorf("%w: injected failure on call %d to %s", ErrUnavailable, c, f.db.Name())
	}
	return SearchContext(ctx, f.db, query, topK)
}

// Fetch passes through when the wrapped database supports fetching.
func (f *FailEvery) Fetch(id string) (string, error) {
	if fetcher, ok := f.db.(Fetcher); ok {
		return fetcher.Fetch(id)
	}
	return "", fmt.Errorf("hidden: %s does not support document fetching", f.db.Name())
}

// Static is a fixed-answer database used in unit tests: every query
// gets the canned result. It also records the queries it received.
type Static struct {
	name   string
	result Result
	err    error

	mu      sync.Mutex
	queries []string
}

// NewStatic returns a database that always answers with result.
func NewStatic(name string, result Result) *Static {
	return &Static{name: name, result: result}
}

// NewStaticError returns a database that always fails with err.
func NewStaticError(name string, err error) *Static {
	return &Static{name: name, err: err}
}

// Name implements Database.
func (s *Static) Name() string { return s.name }

// Search implements Database.
func (s *Static) Search(query string, topK int) (Result, error) {
	s.mu.Lock()
	s.queries = append(s.queries, query)
	s.mu.Unlock()
	if s.err != nil {
		return Result{}, s.err
	}
	res := s.result
	if topK < len(res.Docs) {
		res.Docs = res.Docs[:topK]
	}
	return res, nil
}

// Queries returns the queries received so far.
func (s *Static) Queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.queries...)
}

// Table is a map-backed database for tests: exact query string →
// match count.
type Table struct {
	name   string
	counts map[string]int
}

// NewTable builds a database answering from the given query → count
// table; unknown queries match zero documents.
func NewTable(name string, counts map[string]int) *Table {
	return &Table{name: name, counts: counts}
}

// Name implements Database.
func (t *Table) Name() string { return t.name }

// Search implements Database.
func (t *Table) Search(query string, topK int) (Result, error) {
	return Result{MatchCount: t.counts[query]}, nil
}
