// Package hidden models Hidden-Web databases: document collections
// reachable only through a keyword-search interface (the paper's
// Section 1 setting — PubMed, MEDLINEplus, and the like).
//
// Everything the metasearcher may do to a database goes through the
// Database interface: submit a keyword query and observe the answer
// page — the number of matching documents and the top-ranked results.
// That observable is exactly what the paper's probing operation uses
// ("many databases report the number of matching documents in their
// answer page", Section 3.4).
//
// Implementations:
//
//   - Local — an in-process collection over textindex (the experiment
//     path, zero latency);
//   - Client — a remote database spoken to over HTTP, scraping either a
//     JSON or an HTML answer page produced by Server (the end-to-end
//     path with real network failure modes);
//   - Counting, FailEvery, Flaky — wrappers adding probe accounting and
//     failure injection.
package hidden

import (
	"errors"
	"fmt"
)

// DocSummary is one entry of an answer page.
type DocSummary struct {
	// ID identifies the document within its database.
	ID string
	// Score is the database's own relevance score for the query
	// (tf·idf cosine for Local); higher is better.
	Score float64
	// Snippet is a query-centered text preview, when the source
	// provides one (the HTTP server does for fetchable databases).
	Snippet string `json:",omitempty"`
}

// Result is the answer page for one query.
type Result struct {
	// MatchCount is the number of documents containing every query
	// term — the document-frequency-based relevancy r(db, q).
	MatchCount int
	// Docs holds the top-ranked documents, best first.
	Docs []DocSummary
}

// Database is the search interface of one Hidden-Web database.
type Database interface {
	// Name identifies the database.
	Name() string
	// Search runs a keyword query and returns the answer page with up
	// to topK ranked documents. topK 0 requests the match count only
	// (the cheapest form of probe).
	Search(query string, topK int) (Result, error)
}

// Fetcher is implemented by databases whose documents can be retrieved
// by ID (on the real Web: following a result link). Query-based
// sampling of content summaries requires it.
type Fetcher interface {
	// Fetch returns the text of the identified document.
	Fetch(id string) (string, error)
}

// Sizer is implemented by databases that export their collection size
// (|db| in Eq. 1). The paper notes some databases do not export sizes
// and must be estimated by issuing a query with common terms.
type Sizer interface {
	Size() int
}

// ErrUnavailable is returned by failure-injection wrappers and by the
// HTTP client when a database cannot be reached; callers distinguish it
// from malformed-response errors.
var ErrUnavailable = errors.New("hidden: database unavailable")

// EstimateSize estimates a database's size. When db implements Sizer,
// the exported size is returned directly; otherwise the size is
// estimated by issuing broad single-term probe queries and taking the
// largest match count, the workaround the paper describes in Section
// 6.1 ("issuing a query with common terms, e.g. medical OR health OR
// cancer").
func EstimateSize(db Database, probeTerms []string) (int, error) {
	if s, ok := db.(Sizer); ok {
		return s.Size(), nil
	}
	best := 0
	var firstErr error
	ok := false
	for _, term := range probeTerms {
		res, err := db.Search(term, 0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok = true
		if res.MatchCount > best {
			best = res.MatchCount
		}
	}
	if !ok {
		if firstErr != nil {
			return 0, fmt.Errorf("hidden: size estimation failed: %w", firstErr)
		}
		return 0, fmt.Errorf("hidden: size estimation needs at least one probe term")
	}
	return best, nil
}
