package hidden

import (
	"errors"
	"strings"
	"testing"
	"time"

	"metaprobe/internal/obs"
)

func TestInstrumentedRecordsSearchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInstrumented(NewStatic("s", Result{MatchCount: 3}), reg)
	for i := 0; i < 5; i++ {
		if _, err := in.Search("q", 0); err != nil {
			t.Fatal(err)
		}
	}
	lbl := obs.Labels{"db": "s"}
	if got := reg.Counter("metaprobe_db_searches_total", lbl).Value(); got != 5 {
		t.Errorf("searches_total = %d, want 5", got)
	}
	if got := reg.Counter("metaprobe_db_search_errors_total", lbl).Value(); got != 0 {
		t.Errorf("search_errors_total = %d, want 0", got)
	}
	if got := reg.Histogram("metaprobe_db_search_latency_seconds", lbl).Count(); got != 5 {
		t.Errorf("latency count = %d, want 5", got)
	}
	if in.Name() != "s" {
		t.Errorf("Name = %q", in.Name())
	}
}

func TestInstrumentedCountsErrors(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInstrumented(NewStaticError("bad", errors.New("boom")), reg)
	if _, err := in.Search("q", 0); err == nil {
		t.Fatal("want error")
	}
	lbl := obs.Labels{"db": "bad"}
	if got := reg.Counter("metaprobe_db_search_errors_total", lbl).Value(); got != 1 {
		t.Errorf("search_errors_total = %d, want 1", got)
	}
	// Errors still count as searches and observe latency.
	if got := reg.Counter("metaprobe_db_searches_total", lbl).Value(); got != 1 {
		t.Errorf("searches_total = %d, want 1", got)
	}
}

func TestInstrumentedFetch(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInstrumented(buildSmallLocal(t), reg)
	if _, err := in.Fetch("d0"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Fetch("missing"); err == nil {
		t.Fatal("missing doc must fail")
	}
	lbl := obs.Labels{"db": "testdb"}
	if got := reg.Counter("metaprobe_db_fetches_total", lbl).Value(); got != 2 {
		t.Errorf("fetches_total = %d, want 2", got)
	}
	if got := reg.Counter("metaprobe_db_fetch_errors_total", lbl).Value(); got != 1 {
		t.Errorf("fetch_errors_total = %d, want 1", got)
	}
	if in.Size() != 4 {
		t.Errorf("Size = %d", in.Size())
	}
	// Fetch through a non-fetcher fails without panicking.
	tab := NewInstrumented(NewTable("t", nil), reg)
	if _, err := tab.Fetch("x"); err == nil {
		t.Error("fetch on non-fetcher must fail")
	}
	if tab.Size() != 0 {
		t.Error("Size on non-sizer should be 0")
	}
}

func TestInstrumentedNilRegistryIsNoop(t *testing.T) {
	in := NewInstrumented(NewStatic("s", Result{MatchCount: 1}), nil)
	res, err := in.Search("q", 0)
	if err != nil || res.MatchCount != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// TestInstrumentedWiresMiddlewareChain builds the full production
// stack — Instrumented over Retry over RateLimited over Cached — and
// checks the chain-walk wires retry, wait and cache metrics.
func TestInstrumentedWiresMiddlewareChain(t *testing.T) {
	reg := obs.NewRegistry()
	flk := &flaky{name: "db", failUntil: 2} // first search fails once
	cached := NewCached(flk, 8)
	rl := NewRateLimited(cached, 50*time.Millisecond)
	// Fake clock so the test does not sleep.
	now := time.Unix(0, 0)
	rl.now = func() time.Time { return now }
	rl.sleep = func(d time.Duration) { now = now.Add(d) }
	rt := NewRetry(rl, 3, 0)
	rt.sleep = func(time.Duration) {}
	in := NewInstrumented(rt, reg)

	if _, err := in.Search("q", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Search("q", 0); err != nil { // cache hit
		t.Fatal(err)
	}

	lbl := obs.Labels{"db": "db"}
	if got := reg.Counter("metaprobe_db_retries_total", lbl).Value(); got != 1 {
		t.Errorf("retries_total = %d, want 1", got)
	}
	// Two searches through the limiter (the retry of the first and the
	// second user call) waited; the very first was immediate.
	if got := reg.Histogram("metaprobe_db_ratelimit_wait_seconds", lbl).Count(); got < 1 {
		t.Errorf("ratelimit wait count = %d, want ≥ 1", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		// The failed first attempt and its retry both missed; the
		// second user call hit.
		`metaprobe_db_cache_hits_total{db="db"} 1`,
		`metaprobe_db_cache_misses_total{db="db"} 2`,
		`metaprobe_db_searches_total{db="db"} 2`,
		`metaprobe_db_search_latency_seconds{db="db",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestInstrumentedKeepsCallerHooks checks that hooks set before
// instrumentation are not overwritten by the chain walk.
func TestInstrumentedKeepsCallerHooks(t *testing.T) {
	called := 0
	rt := NewRetry(&flaky{name: "db", failUntil: 2}, 3, 0)
	rt.sleep = func(time.Duration) {}
	rt.OnRetry = func(error) { called++ }
	reg := obs.NewRegistry()
	in := NewInstrumented(rt, reg)
	if _, err := in.Search("q", 0); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Errorf("caller's OnRetry called %d times, want 1", called)
	}
	if got := reg.Counter("metaprobe_db_retries_total", obs.Labels{"db": "db"}).Value(); got != 0 {
		t.Errorf("registry retries = %d, want 0 (caller's hook kept)", got)
	}
}
