package hidden

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// Instrumented wraps a Database and records per-database operational
// metrics into an obs.Registry: search/fetch counts, errors and
// latency quantiles, plus — by walking the middleware chain below it —
// retry counts, rate-limit waiting time and cache hit/miss counters.
// It composes with the other wrappers; put it outermost so the
// latencies it observes are what the metasearcher actually experiences
// (including politeness waits, backoff and cache hits):
//
//	db := hidden.NewInstrumented(
//	        hidden.NewRetry(hidden.NewRateLimited(
//	            hidden.NewCached(client, 1024), time.Second), 3, time.Second),
//	        reg)
//
// Metric handles are resolved once at construction, so the per-search
// overhead is a clock read plus a few atomic operations.
type Instrumented struct {
	db Database

	searches   *obs.Counter
	searchErrs *obs.Counter
	searchLat  *obs.Histogram
	fetches    *obs.Counter
	fetchErrs  *obs.Counter
	fetchLat   *obs.Histogram
}

// NewInstrumented wraps db, registering its metrics (labelled with the
// database name) in reg. A nil registry yields a functioning wrapper
// whose recording is a no-op.
//
// The constructor walks the chain of wrappers below db (via their
// Unwrap methods) and, where it finds middleware with unset
// observability hooks, wires them into the registry:
//
//   - *RateLimited: OnWait → metaprobe_db_ratelimit_wait_seconds
//   - *Retry: OnRetry → metaprobe_db_retries_total
//   - *Cached: Stats → metaprobe_db_cache_{hits,misses}_total
//
// Hooks already set by the caller are left alone. Wire the chain
// before sharing it between goroutines.
func NewInstrumented(db Database, reg *obs.Registry) *Instrumented {
	lbl := obs.Labels{"db": db.Name()}
	in := &Instrumented{
		db:         db,
		searches:   reg.Counter("metaprobe_db_searches_total", lbl),
		searchErrs: reg.Counter("metaprobe_db_search_errors_total", lbl),
		searchLat:  reg.Histogram("metaprobe_db_search_latency_seconds", lbl),
		fetches:    reg.Counter("metaprobe_db_fetches_total", lbl),
		fetchErrs:  reg.Counter("metaprobe_db_fetch_errors_total", lbl),
		fetchLat:   reg.Histogram("metaprobe_db_fetch_latency_seconds", lbl),
	}
	if reg != nil {
		reg.Help("metaprobe_db_searches_total", "Searches issued to the database, through all middleware.")
		reg.Help("metaprobe_db_search_latency_seconds", "Search latency as experienced by the metasearcher.")
		reg.Help("metaprobe_db_retries_total", "Retried search/fetch attempts after transient failures.")
		reg.Help("metaprobe_db_ratelimit_wait_seconds", "Politeness delay spent waiting for the rate limiter.")
		reg.Help("metaprobe_db_cache_hits_total", "Result-cache hits.")
		reg.Help("metaprobe_db_cache_misses_total", "Result-cache misses.")
		for cur := db; cur != nil; {
			switch w := cur.(type) {
			case *RateLimited:
				if w.OnWait == nil {
					waitLat := reg.Histogram("metaprobe_db_ratelimit_wait_seconds", lbl)
					w.OnWait = func(d time.Duration) { waitLat.Observe(d.Seconds()) }
				}
			case *Retry:
				if w.OnRetry == nil {
					retries := reg.Counter("metaprobe_db_retries_total", lbl)
					w.OnRetry = func(error) { retries.Inc() }
				}
			case *Cached:
				cache := w
				reg.CounterFunc("metaprobe_db_cache_hits_total", lbl, func() float64 {
					h, _ := cache.Stats()
					return float64(h)
				})
				reg.CounterFunc("metaprobe_db_cache_misses_total", lbl, func() float64 {
					_, m := cache.Stats()
					return float64(m)
				})
			}
			u, ok := cur.(interface{ Unwrap() Database })
			if !ok {
				break
			}
			cur = u.Unwrap()
		}
	}
	return in
}

// Name implements Database.
func (n *Instrumented) Name() string { return n.db.Name() }

// Unwrap returns the wrapped database.
func (n *Instrumented) Unwrap() Database { return n.db }

// Search implements Database, recording count, errors and latency.
func (n *Instrumented) Search(query string, topK int) (Result, error) {
	start := time.Now()
	res, err := n.db.Search(query, topK)
	n.searchLat.Observe(time.Since(start).Seconds())
	n.searches.Inc()
	if err != nil {
		n.searchErrs.Inc()
	}
	return res, err
}

// SearchContext implements ContextDatabase with the same accounting:
// cancelled and timed-out probes count as search errors, so hedging
// and breaker decisions stay visible per database. When ctx carries a
// trace span, the search runs under a db.search child span so cache
// hits, retries and wire sizes recorded by the middleware below attach
// to it.
func (n *Instrumented) SearchContext(ctx context.Context, query string, topK int) (Result, error) {
	ctx, sp := span.Start(ctx, "db.search")
	sp.SetAttr("db", n.db.Name())
	start := time.Now()
	res, err := SearchContext(ctx, n.db, query, topK)
	n.searchLat.Observe(time.Since(start).Seconds())
	n.searches.Inc()
	if err != nil {
		n.searchErrs.Inc()
	} else {
		sp.SetAttr("matches", strconv.Itoa(res.MatchCount))
	}
	sp.EndErr(err)
	return res, err
}

// Fetch implements Fetcher with the same accounting.
func (n *Instrumented) Fetch(id string) (string, error) {
	f, ok := n.db.(Fetcher)
	if !ok {
		return "", fmt.Errorf("hidden: %s does not support document fetching", n.db.Name())
	}
	start := time.Now()
	text, err := f.Fetch(id)
	n.fetchLat.Observe(time.Since(start).Seconds())
	n.fetches.Inc()
	if err != nil {
		n.fetchErrs.Inc()
	}
	return text, err
}

// Size passes through when available.
func (n *Instrumented) Size() int {
	if s, ok := n.db.(Sizer); ok {
		return s.Size()
	}
	return 0
}
