package hidden

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"metaprobe/internal/corpus"
	"metaprobe/internal/textindex"
)

func buildSmallLocal(t *testing.T) *Local {
	t.Helper()
	ix := textindex.NewIndex(textindex.NewTokenizer(textindex.TokenizerConfig{}))
	docs := []string{
		"breast cancer research update",
		"breast cancer treatment",
		"lung cancer study",
		"nutrition and diet",
	}
	l := NewLocal("testdb", ix)
	for i, d := range docs {
		id := fmt.Sprintf("d%d", i)
		ix.Add(id, d)
		l.StoreText(id, d)
	}
	return l
}

func TestLocalSearch(t *testing.T) {
	db := buildSmallLocal(t)
	res, err := db.Search("breast cancer", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 2 {
		t.Errorf("MatchCount = %d, want 2 (AND semantics)", res.MatchCount)
	}
	// Ranked retrieval is OR-based: d2 ("lung cancer study") also scores.
	if len(res.Docs) != 3 {
		t.Errorf("got %d ranked docs, want 3", len(res.Docs))
	}
	// topK = 0: count only.
	res0, err := db.Search("breast cancer", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res0.MatchCount != 2 || len(res0.Docs) != 0 {
		t.Errorf("count-only probe returned %+v", res0)
	}
	if db.Size() != 4 {
		t.Errorf("Size = %d, want 4", db.Size())
	}
	if db.Name() != "testdb" {
		t.Errorf("Name = %q", db.Name())
	}
}

func TestBuildLocalFromCorpus(t *testing.T) {
	w := corpus.HealthWorld()
	spec := corpus.DatabaseSpec{
		Name: "onco", NumDocs: 300, MeanDocLen: 20,
		TopicWeights:    map[string]float64{"oncology": 1},
		ConceptAffinity: 0.5,
	}
	docs, err := w.Generate(spec, newSpecRNG(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	db := BuildLocal("onco", docs)
	if db.Size() != 300 {
		t.Fatalf("Size = %d, want 300", db.Size())
	}
	res, err := db.Search("cancer", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount == 0 {
		t.Error("an oncology database should match 'cancer'")
	}
	if err := db.Index().Validate(); err != nil {
		t.Error(err)
	}
}

func TestTestbed(t *testing.T) {
	a := NewStatic("a", Result{})
	b := NewStatic("b", Result{})
	tb, err := NewTestbed([]Database{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 || tb.DB(1).Name() != "b" || tb.IndexOf("b") != 1 || tb.IndexOf("zzz") != -1 {
		t.Error("testbed accessors broken")
	}
	if _, err := NewTestbed([]Database{a, NewStatic("a", Result{})}); err == nil {
		t.Error("duplicate names should fail")
	}
}

func TestBuildTestbedDeterministicAcrossRuns(t *testing.T) {
	w := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.002)[:4]
	tb1, err := BuildTestbed(w, specs, 7)
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := BuildTestbed(w, specs, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb1.Len(); i++ {
		q := "cancer treatment"
		r1, _ := tb1.DB(i).Search(q, 0)
		r2, _ := tb2.DB(i).Search(q, 0)
		if r1.MatchCount != r2.MatchCount {
			t.Errorf("db %d: counts differ %d vs %d", i, r1.MatchCount, r2.MatchCount)
		}
	}
}

func TestCounting(t *testing.T) {
	db := NewCounting(buildSmallLocal(t))
	for i := 0; i < 3; i++ {
		if _, err := db.Search("cancer", 0); err != nil {
			t.Fatal(err)
		}
	}
	if db.Searches() != 3 {
		t.Errorf("Searches = %d, want 3", db.Searches())
	}
	db.CostPerProbe = 2.5
	if db.Cost() != 7.5 {
		t.Errorf("Cost = %v, want 7.5", db.Cost())
	}
	db.Reset()
	if db.Searches() != 0 {
		t.Error("Reset did not zero the counter")
	}
	if db.Size() != 4 {
		t.Errorf("Size passthrough = %d, want 4", db.Size())
	}
}

func TestFailEvery(t *testing.T) {
	db := NewFailEvery(buildSmallLocal(t), 3)
	var failures int
	for i := 0; i < 9; i++ {
		if _, err := db.Search("cancer", 0); err != nil {
			if !errors.Is(err, ErrUnavailable) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Errorf("failures = %d, want 3", failures)
	}
	never := NewFailEvery(buildSmallLocal(t), 0)
	if _, err := never.Search("cancer", 0); err != nil {
		t.Errorf("n=0 should never fail: %v", err)
	}
}

func TestEstimateSize(t *testing.T) {
	// With Sizer: direct.
	db := buildSmallLocal(t)
	if got, err := EstimateSize(db, nil); err != nil || got != 4 {
		t.Errorf("EstimateSize = %d, %v; want 4, nil", got, err)
	}
	// Without Sizer: probe with common terms.
	table := NewTable("t", map[string]int{"health": 120, "medical": 80})
	if got, err := EstimateSize(table, []string{"health", "medical"}); err != nil || got != 120 {
		t.Errorf("EstimateSize = %d, %v; want 120, nil", got, err)
	}
	if _, err := EstimateSize(table, nil); err == nil {
		t.Error("no probe terms should fail")
	}
	bad := NewStaticError("bad", errors.New("boom"))
	if _, err := EstimateSize(bad, []string{"health"}); err == nil {
		t.Error("all-failing database should fail")
	}
}

func TestHTTPJSONRoundTrip(t *testing.T) {
	local := buildSmallLocal(t)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()

	client := NewClient("remote-testdb", srv.URL)
	res, err := client.Search("breast cancer", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 2 || len(res.Docs) != 3 {
		t.Errorf("remote result %+v, want 2 matches / 3 ranked docs", res)
	}
	if client.Name() != "remote-testdb" {
		t.Errorf("Name = %q", client.Name())
	}
}

func TestHTTPHTMLScraping(t *testing.T) {
	local := buildSmallLocal(t)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()

	client := NewClient("remote", srv.URL)
	client.UseHTML = true
	res, err := client.Search("breast cancer", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 2 {
		t.Errorf("scraped MatchCount = %d, want 2", res.MatchCount)
	}
	if len(res.Docs) != 2 || res.Docs[0].ID == "" {
		t.Errorf("scraped docs %+v", res.Docs)
	}
	// Zero-match page.
	res, err = client.Search("zzzz qqqq", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 0 || len(res.Docs) != 0 {
		t.Errorf("zero-match scrape = %+v", res)
	}
}

func TestHTMLAnswerPageThousands(t *testing.T) {
	big := NewStatic("big", Result{MatchCount: 1234567})
	srv := httptest.NewServer(NewServer(big))
	defer srv.Close()
	client := NewClient("big", srv.URL)
	client.UseHTML = true
	res, err := client.Search("anything", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 1234567 {
		t.Errorf("MatchCount = %d, want 1234567 (comma parsing)", res.MatchCount)
	}
}

func TestGroupThousands(t *testing.T) {
	cases := map[int]string{0: "0", 5: "5", 999: "999", 1000: "1,000", 1234567: "1,234,567", 12345: "12,345"}
	for n, want := range cases {
		if got := groupThousands(n); got != want {
			t.Errorf("groupThousands(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestServerErrorPaths(t *testing.T) {
	local := buildSmallLocal(t)
	srv := httptest.NewServer(NewServer(local))
	defer srv.Close()

	for _, u := range []string{
		srv.URL + "/search",                          // missing q
		srv.URL + "/search?q=cancer&k=-1",            // bad k
		srv.URL + "/search?q=cancer&k=x",             // non-numeric k
		srv.URL + "/search?q=cancer&format=protobuf", // unknown format
	} {
		resp, err := srv.Client().Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET %s: status %d, want 400", u, resp.StatusCode)
		}
	}
	// Backend failure surfaces as 502 and the client wraps it as
	// unavailable.
	bad := httptest.NewServer(NewServer(NewStaticError("bad", errors.New("boom"))))
	defer bad.Close()
	client := NewClient("bad", bad.URL)
	if _, err := client.Search("x", 0); !errors.Is(err, ErrUnavailable) {
		t.Errorf("want ErrUnavailable, got %v", err)
	}
}

func TestClientUnreachable(t *testing.T) {
	client := NewClient("gone", "http://127.0.0.1:1")
	if _, err := client.Search("x", 0); !errors.Is(err, ErrUnavailable) {
		t.Errorf("want ErrUnavailable, got %v", err)
	}
}

func TestParseHTMLAnswerPageMalformed(t *testing.T) {
	cases := []string{
		"<html><body>hello</body></html>",
		"<html>of about <b>12",
		"<html>of about <b>oops</b></html>",
	}
	for _, page := range cases {
		if _, err := parseHTMLAnswerPage(page); err == nil {
			t.Errorf("page %q should fail to parse", page)
		}
	}
}

func TestServeTestbed(t *testing.T) {
	a := NewStatic("alpha", Result{MatchCount: 7})
	b := NewStatic("beta", Result{MatchCount: 9})
	tb, err := NewTestbed([]Database{a, b})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ServeTestbed(tb))
	defer srv.Close()

	ca := NewClient("alpha", srv.URL+"/db/alpha")
	res, err := ca.Search("anything", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 7 {
		t.Errorf("alpha count = %d, want 7", res.MatchCount)
	}
	cb := NewClient("beta", srv.URL+"/db/beta")
	res, err = cb.Search("anything", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchCount != 9 {
		t.Errorf("beta count = %d, want 9", res.MatchCount)
	}
	// Index page lists both databases.
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha") || !strings.Contains(buf.String(), "beta") {
		t.Error("index page missing databases")
	}
}

func TestHTMLAnswerPageSnippets(t *testing.T) {
	db := buildSmallLocal(t)
	srv := httptest.NewServer(NewServer(db))
	defer srv.Close()
	client := NewClient("remote", srv.URL)
	client.UseHTML = true
	res, err := client.Search("breast cancer", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) == 0 {
		t.Fatal("no docs")
	}
	for _, d := range res.Docs[:2] {
		if d.Snippet == "" {
			t.Errorf("doc %s missing scraped snippet", d.ID)
		}
		if strings.Contains(d.Snippet, "<") {
			t.Errorf("snippet %q contains markup", d.Snippet)
		}
	}
	// JSON path carries snippets too.
	client.UseHTML = false
	res, err = client.Search("breast cancer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Docs[0].Snippet == "" {
		t.Error("JSON answer missing snippet")
	}
}
