package refresh

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

// harness is a small trained pipeline shared by the refresh tests.
type harness struct {
	model *core.Model
	tb    *hidden.Testbed
	rel   estimate.Relevancy
	pool  []queries.Query
}

func buildHarness(t *testing.T) *harness {
	t.Helper()
	w := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.02)[:4]
	tb, err := hidden.BuildTestbed(w, specs, 11)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := summary.BuildExact(tb)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(w, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	train, pool, err := gen.TrainTest(stats.NewRNG(31), 150, 150, 250, 250)
	if err != nil {
		t.Fatal(err)
	}
	rel := estimate.NewDocFrequency()
	cfg := core.DefaultConfig()
	// The paper's threshold of 100 suits web-scale collections; on this
	// small testbed nothing estimates that high, so lower the high-band
	// split to get populated high-band query types to drift.
	cfg.Classifier.Threshold = 0.1
	model, err := core.Train(tb, sums, rel, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{model: model, tb: tb, rel: rel, pool: pool}
}

// querySource serves workload-like queries from the held-out pool.
func (h *harness) querySource(numTerms, n int) []string {
	var out []string
	for _, q := range h.pool {
		if q.NumTerms() == numTerms {
			out = append(out, q.String())
			if len(out) >= n {
				break
			}
		}
	}
	return out
}

// alertFor picks a non-zero-band key on db 0 with enough held-out
// workload queries to refresh.
func (h *harness) alertFor(t *testing.T, minCands int) Alert {
	t.Helper()
	sum := h.model.Summaries.Summaries[0]
	counts := make(map[core.TypeKey]int)
	for _, q := range h.pool {
		rhat := h.rel.Estimate(sum, q.String())
		counts[h.model.Cfg.Classifier.Classify(q.NumTerms(), rhat)]++
	}
	best := core.TypeKey{}
	bestN := 0
	for key, n := range counts {
		// High-band keys have substantial estimates and relevancies, so
		// a simulated drift actually moves the numbers.
		if key.Band != core.BandHigh || n < minCands || n <= bestN {
			continue
		}
		if _, ok := h.model.DBs[0].EDs[key]; ok {
			best, bestN = key, n
		}
	}
	if bestN == 0 {
		t.Fatal("no suitable query type with enough workload queries")
	}
	return Alert{DB: h.model.DBs[0].Name, DBIdx: 0, Key: best}
}

// fakeHost implements Host over the harness. probeValue maps a probe
// to the "current" (possibly drifted) collection's answer; it receives
// the 0-based probe sequence number, the query's estimate and the real
// undrifted relevancy.
type fakeHost struct {
	h          *harness
	probeValue func(call int, rhat, real float64) (float64, error)

	mu      sync.Mutex
	version int64
	model   *core.Model
	calls   int
	commits int
}

func newFakeHost(h *harness) *fakeHost {
	return &fakeHost{h: h, version: 1, model: h.model,
		probeValue: func(_ int, _, real float64) (float64, error) { return real, nil }}
}

func (f *fakeHost) CloneServing() (int64, *core.Model) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.version, f.model.Clone()
}

func (f *fakeHost) Probe(ctx context.Context, dbIdx int, query string) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	real, err := f.h.rel.Probe(f.h.tb.DB(dbIdx), query)
	if err != nil {
		return 0, err
	}
	rhat := f.h.rel.Estimate(f.h.model.Summaries.Summaries[dbIdx], query)
	f.mu.Lock()
	call := f.calls
	f.calls++
	f.mu.Unlock()
	return f.probeValue(call, rhat, real)
}

func (f *fakeHost) Commit(baseVersion int64, candidate *core.Model, db string, key core.TypeKey, val Validation) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if baseVersion != f.version {
		return 0, ErrSuperseded
	}
	f.version++
	f.model = candidate
	f.commits++
	return f.version, nil
}

// waitTasks polls until n tasks reached a terminal state.
func waitTasks(t *testing.T, r *Refresher, n int64) Stats {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := r.Stats()
		if s.Refreshes+s.Rollbacks+s.Aborted+s.Superseded >= n {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("refresh tasks did not finish: %+v", r.Stats())
	return Stats{}
}

// TestRefreshRetrainsDriftedKey drives the happy path: the collection
// drifts (probes now answer 3x the estimate — a new, consistent +200%
// error regime the stale ED has never seen), the candidate retrained
// on fresh probes beats the stale serving model on holdout, and the
// commit replaces only the alerted ED.
func TestRefreshRetrainsDriftedKey(t *testing.T) {
	h := buildHarness(t)
	host := newFakeHost(h)
	host.probeValue = func(_ int, rhat, _ float64) (float64, error) { return 3 * rhat, nil }
	alert := h.alertFor(t, 24)

	reg := obs.NewRegistry()
	r := New(Config{
		ProbeBudget: 48, MinProbes: 12, HoldoutEvery: 4,
		Cooldown: time.Hour, Queries: h.querySource, Metrics: reg,
	}, host)
	defer r.Stop()

	beforeObs := h.model.DBs[0].EDs[alert.Key].Observations()
	otherKey := core.TypeKey{}
	for k := range h.model.DBs[0].EDs {
		if k != alert.Key {
			otherKey = k
			break
		}
	}

	r.Alert(alert)
	s := waitTasks(t, r, 1)
	if s.Refreshes != 1 || s.Rollbacks != 0 || s.Aborted != 0 {
		t.Fatalf("stats = %+v, want one accepted refresh", s)
	}
	v := s.LastValidation
	if v == nil || !v.Accepted {
		t.Fatalf("missing/unaccepted validation: %+v", v)
	}
	if v.NewScore >= v.OldScore {
		t.Errorf("retrained ED did not improve on holdout: old %.4f new %.4f", v.OldScore, v.NewScore)
	}
	if v.ProbesSpent > 48 {
		t.Errorf("task spent %d probes, budget 48", v.ProbesSpent)
	}
	if v.DB != alert.DB || v.QueryType != alert.Key.String() {
		t.Errorf("validation names %s/%s, want %s/%s", v.DB, v.QueryType, alert.DB, alert.Key)
	}

	host.mu.Lock()
	serving, version := host.model, host.version
	host.mu.Unlock()
	if version != 2 || host.commits != 1 {
		t.Fatalf("version=%d commits=%d after one refresh", version, host.commits)
	}
	if serving == h.model {
		t.Fatal("commit published the original model, not a copy-on-write successor")
	}
	// Only the alerted key was rebuilt: it now holds the fresh probe
	// observations, while untouched keys keep their trained counts.
	newED := serving.DBs[0].EDs[alert.Key]
	if newED.Observations() == beforeObs {
		t.Error("alerted ED was not rebuilt")
	}
	if got, want := serving.DBs[0].EDs[otherKey].Observations(), h.model.DBs[0].EDs[otherKey].Observations(); got != want {
		t.Errorf("untouched key %s changed: %d -> %d observations", otherKey, want, got)
	}
	// The original serving model must be untouched (copy-on-write).
	if got := h.model.DBs[0].EDs[alert.Key].Observations(); got != beforeObs {
		t.Errorf("refresh mutated the serving model: %d -> %d observations", beforeObs, got)
	}
	if c := reg.Counter("mp_refresh_total", obs.Labels{"outcome": "ok"}).Value(); c != 1 {
		t.Errorf("mp_refresh_total{outcome=ok} = %d", c)
	}
}

// TestRefreshRollsBackRegression forces a candidate that fits its
// training probes but regresses on holdout: with Concurrency 1 the
// probe order matches the interleaved split, so train positions
// observe a near-total collapse (3% of the estimate, error ratio
// ≈ −0.97) while holdout positions answer truthfully. The candidate ED
// concentrates its mass in the [−1, −0.9) bin, where truthful
// high-band errors — overwhelmingly positive on this testbed — never
// land, so the serving distribution fits the holdout better,
// validation fails, nothing is committed, and the rollback is counted.
func TestRefreshRollsBackRegression(t *testing.T) {
	h := buildHarness(t)
	host := newFakeHost(h)
	const holdoutEvery = 4
	host.probeValue = func(call int, rhat, real float64) (float64, error) {
		if call%holdoutEvery == holdoutEvery-1 {
			return real, nil // holdout: no drift
		}
		return 0.03 * rhat, nil // training slice: collapse drift
	}
	alert := h.alertFor(t, 24)

	reg := obs.NewRegistry()
	r := New(Config{
		ProbeBudget: 48, MinProbes: 12, HoldoutEvery: holdoutEvery,
		Concurrency: 1, MaxRegression: 0.05,
		Cooldown: time.Hour, Queries: h.querySource, Metrics: reg,
	}, host)
	defer r.Stop()

	r.Alert(alert)
	s := waitTasks(t, r, 1)
	if s.Rollbacks != 1 || s.Refreshes != 0 {
		t.Fatalf("stats = %+v, want one rollback", s)
	}
	if v := s.LastValidation; v == nil || v.Accepted || v.NewScore <= v.OldScore {
		t.Fatalf("validation should record the regression: %+v", v)
	}
	if host.commits != 0 || host.version != 1 {
		t.Fatalf("rollback must not publish: commits=%d version=%d", host.commits, host.version)
	}
	if c := reg.Counter("mp_refresh_rollbacks_total", nil).Value(); c != 1 {
		t.Errorf("mp_refresh_rollbacks_total = %d", c)
	}
}

// TestRefreshAborts covers the no-publish paths that never touch the
// model: no query source, not enough matching workload queries, and
// probe failures below MinProbes.
func TestRefreshAborts(t *testing.T) {
	h := buildHarness(t)
	alert := h.alertFor(t, 24)

	t.Run("no query source", func(t *testing.T) {
		host := newFakeHost(h)
		r := New(Config{Cooldown: time.Hour}, host)
		defer r.Stop()
		r.Alert(alert)
		if s := waitTasks(t, r, 1); s.Aborted != 1 {
			t.Fatalf("stats = %+v", s)
		}
		if host.commits != 0 {
			t.Error("aborted task must not commit")
		}
	})
	t.Run("probes fail", func(t *testing.T) {
		host := newFakeHost(h)
		host.probeValue = func(int, float64, float64) (float64, error) {
			return 0, fmt.Errorf("backend down")
		}
		r := New(Config{ProbeBudget: 32, MinProbes: 8, Cooldown: time.Hour, Queries: h.querySource}, host)
		defer r.Stop()
		r.Alert(alert)
		s := waitTasks(t, r, 1)
		if s.Aborted != 1 || host.commits != 0 {
			t.Fatalf("stats = %+v commits = %d", s, host.commits)
		}
		if s.LastValidation == nil || s.LastValidation.ProbesSpent == 0 {
			t.Error("aborted-after-probing task should still report probes spent")
		}
	})
	t.Run("bad database index", func(t *testing.T) {
		host := newFakeHost(h)
		r := New(Config{Cooldown: time.Hour, Queries: h.querySource}, host)
		defer r.Stop()
		r.Alert(Alert{DB: "nope", DBIdx: 99, Key: alert.Key})
		if s := waitTasks(t, r, 1); s.Aborted != 1 {
			t.Fatalf("stats = %+v", s)
		}
	})
}

// TestRefreshSuperseded: a hot-reload between clone and commit bumps
// the serving version, so the host rejects the stale candidate.
func TestRefreshSuperseded(t *testing.T) {
	h := buildHarness(t)
	host := newFakeHost(h)
	host.probeValue = func(call int, rhat, _ float64) (float64, error) {
		if call == 0 {
			// Simulate an operator reload racing the refresh.
			host.mu.Lock()
			host.version++
			host.mu.Unlock()
		}
		return 3 * rhat, nil
	}
	alert := h.alertFor(t, 24)
	r := New(Config{ProbeBudget: 48, MinProbes: 12, Cooldown: time.Hour, Queries: h.querySource}, host)
	defer r.Stop()
	r.Alert(alert)
	s := waitTasks(t, r, 1)
	if s.Superseded != 1 || host.commits != 0 {
		t.Fatalf("stats = %+v commits = %d, want superseded, no commit", s, host.commits)
	}
}

// TestAlertIntake exercises coalescing, cooldown suppression and
// queue-overflow drops without letting any task run: the worker is
// parked on a blocked clone.
func TestAlertIntake(t *testing.T) {
	h := buildHarness(t)
	host := newFakeHost(h)
	release := make(chan struct{})
	blocking := &blockingHost{Host: host, entered: make(chan struct{}), release: release}
	r := New(Config{QueueSize: 1, Cooldown: time.Hour, Queries: h.querySource}, blocking)

	a := Alert{DB: h.model.DBs[0].Name, DBIdx: 0, Key: core.TypeKey{Terms: 2, Band: core.BandHigh}}
	b := Alert{DB: h.model.DBs[0].Name, DBIdx: 0, Key: core.TypeKey{Terms: 3, Band: core.BandHigh}}
	c := Alert{DB: h.model.DBs[0].Name, DBIdx: 0, Key: core.TypeKey{Terms: 2, Band: core.BandLow}}

	r.Alert(a) // picked up by the worker, parked on the clone
	<-blocking.entered
	r.Alert(b)           // fills the queue
	r.Alert(b)           // coalesced with the queued copy
	r.Alert(c)           // queue full: dropped
	r.Alert(a)           // a is mid-task (cooldown stamped): suppressed

	s := r.Stats()
	if s.Queued != 2 || s.Coalesced != 1 || s.Dropped != 1 || s.Cooldown != 1 {
		t.Errorf("intake stats = %+v, want queued=2 coalesced=1 dropped=1 cooldown=1", s)
	}
	close(release)
	waitTasks(t, r, 2)
	r.Stop()
	r.Alert(a) // after Stop: dropped, never panics
	if s := r.Stats(); s.Dropped != 2 {
		t.Errorf("post-Stop alert not dropped: %+v", s)
	}
	// Stop is idempotent, and a nil Refresher ignores everything.
	r.Stop()
	var nilR *Refresher
	nilR.Alert(a)
	nilR.Stop()
	_ = nilR.Stats()
}

// blockingHost parks CloneServing until released, so tests can observe
// the queue state while the worker is busy.
type blockingHost struct {
	Host
	once    sync.Once
	entered chan struct{}
	release chan struct{}
}

func (b *blockingHost) CloneServing() (int64, *core.Model) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	return b.Host.CloneServing()
}

// TestParseTypeKeyRoundTrip pins the alert-wiring contract: the string
// the drift detector reports parses back to the original key.
func TestParseTypeKeyRoundTrip(t *testing.T) {
	for _, key := range core.DefaultClassifier().AllKeys() {
		got, err := core.ParseTypeKey(key.String())
		if err != nil || got != key {
			t.Errorf("ParseTypeKey(%q) = %v, %v", key.String(), got, err)
		}
	}
	for _, bad := range []string{"", "x", "2-term/", "2-term/mid", "-term/high", "0-term/low", "two-term/low"} {
		if _, err := core.ParseTypeKey(bad); err == nil {
			t.Errorf("ParseTypeKey(%q) should fail", bad)
		}
	}
	if !strings.Contains(func() string {
		_, err := core.ParseTypeKey("bogus")
		return err.Error()
	}(), "bogus") {
		t.Error("parse error should quote the input")
	}
}

// TestRefreshStreakTracking drives the readiness plumbing: every task
// that fails to publish grows FailureStreak and pins the triggering
// error in LastError; the first published refresh clears both. The
// same run checks the span tracer records a tree per task, with the
// published task carrying probe/validate/commit stage children.
func TestRefreshStreakTracking(t *testing.T) {
	h := buildHarness(t)
	host := newFakeHost(h)
	host.probeValue = func(_ int, rhat, _ float64) (float64, error) { return 3 * rhat, nil }
	alert := h.alertFor(t, 24)

	// The query source is switchable: while off, every task aborts
	// before probing; once on, the drifted key retrains and publishes.
	var mu sync.Mutex
	allow := false
	src := func(numTerms, n int) []string {
		mu.Lock()
		ok := allow
		mu.Unlock()
		if !ok {
			return nil
		}
		return h.querySource(numTerms, n)
	}
	tr := span.NewTracer(0)
	r := New(Config{
		ProbeBudget: 48, MinProbes: 12, HoldoutEvery: 4,
		Cooldown: time.Millisecond, Queries: src, Spans: tr,
	}, host)
	defer r.Stop()

	r.Alert(alert)
	s := waitTasks(t, r, 1)
	if s.Aborted != 1 || s.FailureStreak != 1 || s.LastError == "" {
		t.Fatalf("after one abort: %+v", s)
	}
	time.Sleep(5 * time.Millisecond) // let the per-key cooldown lapse
	r.Alert(alert)
	if s = waitTasks(t, r, 2); s.FailureStreak != 2 {
		t.Fatalf("streak should accumulate across aborts: %+v", s)
	}

	mu.Lock()
	allow = true
	mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	r.Alert(alert)
	s = waitTasks(t, r, 3)
	if s.Refreshes != 1 {
		t.Fatalf("expected the third task to publish: %+v", s)
	}
	if s.FailureStreak != 0 || s.RollbackStreak != 0 || s.LastError != "" {
		t.Fatalf("success must clear streaks and the sticky error: %+v", s)
	}

	traces := tr.Traces(0)
	if len(traces) != 3 {
		t.Fatalf("recorded %d traces, want one per task", len(traces))
	}
	published := false
	for _, ts := range traces {
		names := map[string]bool{}
		var root *span.Span
		for _, sp := range tr.TraceSpans(ts.TraceID) {
			names[sp.Name] = true
			if sp.Name == "refresh" {
				root = sp
			}
		}
		if root == nil {
			t.Fatalf("trace %s has no refresh root", ts.TraceID)
		}
		if root.Attrs["outcome"] != "ok" {
			continue
		}
		published = true
		for _, want := range []string{"refresh.probe", "refresh.validate", "refresh.commit"} {
			if !names[want] {
				t.Errorf("published refresh trace missing %s span", want)
			}
		}
	}
	if !published {
		t.Error("no trace with outcome ok recorded")
	}
}
