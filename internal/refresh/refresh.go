// Package refresh closes the drift loop: it consumes error-distribution
// drift alerts (internal/obs.DriftDetector) and retrains the affected
// (database, query type) error distributions online, following the
// paper's Section 4 training procedure — probe the database with
// workload-like queries and accumulate the fresh estimation errors —
// but under a bounded probe budget routed through the host's
// probe-execution lane, so refresh traffic can never starve live
// selections.
//
// A refresh never mutates the serving model. It clones the serving
// snapshot copy-on-write, rebuilds the drifted ED from fresh probes,
// validates the candidate against a holdout slice of those probes
// (the candidate's distributional fit must not regress beyond
// Config.MaxRegression), and asks the host to publish it with one
// atomic pointer swap — or discards it and counts a rollback.
package refresh

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"strings"
	"sync"
	"time"

	"metaprobe/internal/core"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// Config tunes a Refresher. The zero value selects the defaults
// documented on each field.
type Config struct {
	// ProbeBudget caps the live probes one refresh task may spend
	// (default 96). The budget bounds the *cost* of reacting to an
	// alert; the host's probe pool bounds its *concurrency impact*.
	ProbeBudget int
	// MinProbes is the minimum number of successful probes required to
	// rebuild an ED; tasks that cannot gather that many matching
	// observations abort without touching the model (default 16).
	MinProbes int
	// HoldoutEvery holds out every Nth probe for validation instead of
	// training (default 4, i.e. a 25% holdout slice).
	HoldoutEvery int
	// MaxRegression is the allowed validation regression: the
	// candidate's holdout score (mean negative log-likelihood, nats —
	// see holdoutScore) may exceed the serving model's by at most this
	// much before the refresh rolls back (default 0.1).
	MaxRegression float64
	// Cooldown suppresses re-refreshing one (database, query type) for
	// this long after an attempt, absorbing the detector's periodic
	// re-alerts while fresh post-refresh samples accumulate
	// (default 1m).
	Cooldown time.Duration
	// QueueSize bounds the pending-alert queue; alerts beyond it are
	// dropped and counted (default 64).
	QueueSize int
	// Concurrency bounds the refresh probes in flight for one task
	// (default 2). Keep it well below the host pool's global limit so a
	// refresh only ever nibbles at serving capacity.
	Concurrency int
	// TaskTimeout bounds one refresh task end to end (default 2m).
	TaskTimeout time.Duration
	// Queries supplies up to n candidate probe queries with the given
	// term count, workload-like (the paper trains on queries resembling
	// future traffic). Required: a Refresher without a query source
	// aborts every task.
	Queries func(numTerms, n int) []string
	// Metrics receives mp_refresh_* series; nil disables them.
	Metrics *obs.Registry
	// Spans, when non-nil, records a span tree per refresh task
	// (refresh → probe/validate/commit stages, with the host's probe
	// spans nested below), so a model swap landing mid-selection can be
	// correlated with the selections it raced.
	Spans *span.Tracer
	// Logger receives refresh lifecycle logs; nil discards them.
	Logger *slog.Logger
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 96
	}
	if c.MinProbes <= 0 {
		c.MinProbes = 16
	}
	if c.HoldoutEvery <= 1 {
		c.HoldoutEvery = 4
	}
	if c.MaxRegression <= 0 {
		c.MaxRegression = 0.1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Minute
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 2 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Host is what a Refresher needs from the metasearcher it maintains.
// Implementations must be safe for concurrent use.
type Host interface {
	// CloneServing returns the serving model version number and a deep
	// copy of its model, consistent under the host's model lock. The
	// copy is the refresher's to mutate.
	CloneServing() (version int64, clone *core.Model)
	// Probe issues one live training probe to database dbIdx through
	// the host's bounded probe-execution lane and returns the actual
	// relevancy.
	Probe(ctx context.Context, dbIdx int, query string) (float64, error)
	// Commit publishes candidate as the successor of baseVersion with
	// one atomic swap and returns the new version number. Hosts reject
	// the commit (ErrSuperseded) when the serving version is no longer
	// baseVersion — the candidate was built against a model that has
	// since been replaced.
	Commit(baseVersion int64, candidate *core.Model, db string, key core.TypeKey, val Validation) (int64, error)
}

// ErrSuperseded is returned by Host.Commit when the serving model
// changed under the refresh (e.g. an operator hot-reload).
var ErrSuperseded = fmt.Errorf("refresh: serving model changed during refresh")

// Alert names one drifted (database, query type).
type Alert struct {
	// DB is the database name (for logs and metrics).
	DB string
	// DBIdx is the database's testbed index.
	DBIdx int
	// Key is the drifted query type.
	Key core.TypeKey
}

// Validation reports one refresh task's holdout audit.
type Validation struct {
	// DB and QueryType identify the refreshed key.
	DB        string `json:"db"`
	QueryType string `json:"queryType"`
	// OldScore and NewScore are the mean negative log-likelihoods
	// (nats) of the holdout observations under the serving and
	// candidate error distributions (lower is better).
	OldScore float64 `json:"oldScore"`
	NewScore float64 `json:"newScore"`
	// TrainSamples and HoldoutSamples count the probe observations on
	// each side of the split.
	TrainSamples   int `json:"trainSamples"`
	HoldoutSamples int `json:"holdoutSamples"`
	// ProbesSpent is the number of live probes the task issued
	// (successes and failures).
	ProbesSpent int `json:"probesSpent"`
	// Accepted reports whether the candidate was published.
	Accepted bool `json:"accepted"`
	// At is when the validation concluded.
	At time.Time `json:"at"`
}

// Stats is a point-in-time view of a Refresher's counters.
type Stats struct {
	// Queued, Coalesced, Cooldown and Dropped classify alert intake:
	// queued for work, coalesced into an already-queued task,
	// suppressed by cooldown, or dropped on a full queue.
	Queued    int64 `json:"queued"`
	Coalesced int64 `json:"coalesced"`
	Cooldown  int64 `json:"cooldown"`
	Dropped   int64 `json:"dropped"`
	// Refreshes counts published candidates; Rollbacks counts
	// candidates discarded by validation; Aborted counts tasks that
	// could not gather enough probes; Superseded counts commits
	// rejected because the serving model changed mid-task.
	Refreshes  int64 `json:"refreshes"`
	Rollbacks  int64 `json:"rollbacks"`
	Aborted    int64 `json:"aborted"`
	Superseded int64 `json:"superseded"`
	// ProbesSpent is the total live probes issued by refresh tasks.
	ProbesSpent int64 `json:"probesSpent"`
	// FailureStreak counts consecutive tasks that did not publish
	// (rollback, aborted or superseded); RollbackStreak counts
	// consecutive validation rollbacks specifically. Both reset on a
	// successful refresh. A persistent streak means the refresher is
	// wedged — serving a model it can no longer maintain — which
	// readiness checks surface (see Metasearcher.Ready).
	FailureStreak  int64 `json:"failureStreak"`
	RollbackStreak int64 `json:"rollbackStreak"`
	// LastError is the most recent non-publishing task's diagnostic,
	// cleared by the next successful refresh; LastErrorAt timestamps
	// it.
	LastError   string    `json:"lastError,omitempty"`
	LastErrorAt time.Time `json:"lastErrorAt"`
	// LastValidation is the most recent task's audit, nil before the
	// first task completes.
	LastValidation *Validation `json:"lastValidation,omitempty"`
}

// Refresher is the background model-maintenance worker. Create with
// New, feed with Alert (typically wired to Config.OnDrift), stop with
// Stop. A nil *Refresher ignores alerts.
type Refresher struct {
	cfg  Config
	host Host

	ctx    context.Context
	cancel context.CancelFunc
	ch     chan Alert
	wg     sync.WaitGroup

	mu          sync.Mutex
	stopped     bool
	queued      map[Alert]bool
	lastAttempt map[Alert]time.Time
	stats       Stats
}

// New builds a Refresher over host and starts its worker goroutine.
func New(cfg Config, host Host) *Refresher {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	r := &Refresher{
		cfg:         cfg,
		host:        host,
		ctx:         ctx,
		cancel:      cancel,
		ch:          make(chan Alert, cfg.QueueSize),
		queued:      make(map[Alert]bool),
		lastAttempt: make(map[Alert]time.Time),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Help("mp_refresh_total", "Completed online model refreshes, by outcome (ok, rollback, aborted, superseded).")
		reg.Help("mp_refresh_rollbacks_total", "Refresh candidates discarded because validation regressed beyond the configured gap.")
		reg.Help("mp_refresh_probes_total", "Live probes spent by refresh tasks.")
		reg.Help("mp_refresh_alerts_total", "Drift alerts received, by intake decision (queued, coalesced, cooldown, dropped).")
		reg.Help("mp_refresh_duration_seconds", "End-to-end duration of refresh tasks.")
		reg.Counter("mp_refresh_rollbacks_total", nil)
		for _, o := range []string{"ok", "rollback", "aborted", "superseded"} {
			reg.Counter("mp_refresh_total", obs.Labels{"outcome": o})
		}
	}
	r.wg.Add(1)
	go r.worker()
	return r
}

// Stop shuts the worker down and waits for any in-flight task. Alerts
// arriving after Stop are dropped.
func (r *Refresher) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.ch)
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
}

// Alert enqueues one drifted key for retraining. Never blocks: alerts
// for a key already queued are coalesced, alerts inside the key's
// cooldown window are suppressed, and alerts beyond the queue capacity
// are dropped — all counted in Stats.
func (r *Refresher) Alert(a Alert) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		r.stats.Dropped++
		r.count("mp_refresh_alerts_total", "decision", "dropped")
		return
	}
	if r.queued[a] {
		r.stats.Coalesced++
		r.count("mp_refresh_alerts_total", "decision", "coalesced")
		return
	}
	if last, ok := r.lastAttempt[a]; ok && time.Since(last) < r.cfg.Cooldown {
		r.stats.Cooldown++
		r.count("mp_refresh_alerts_total", "decision", "cooldown")
		return
	}
	select {
	case r.ch <- a:
		r.queued[a] = true
		r.stats.Queued++
		r.count("mp_refresh_alerts_total", "decision", "queued")
	default:
		r.stats.Dropped++
		r.count("mp_refresh_alerts_total", "decision", "dropped")
	}
}

// Stats snapshots the counters.
func (r *Refresher) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.stats
	if r.stats.LastValidation != nil {
		v := *r.stats.LastValidation
		out.LastValidation = &v
	}
	return out
}

// count bumps a labeled metric counter (nil-registry safe).
func (r *Refresher) count(name, label, value string) {
	if r.cfg.Metrics != nil {
		r.cfg.Metrics.Counter(name, obs.Labels{label: value}).Inc()
	}
}

// worker drains the alert queue, one task at a time.
func (r *Refresher) worker() {
	defer r.wg.Done()
	for a := range r.ch {
		r.mu.Lock()
		delete(r.queued, a)
		r.lastAttempt[a] = time.Now()
		r.mu.Unlock()
		r.runTask(a)
		if r.ctx.Err() != nil {
			// Drain remaining alerts without working them.
			for range r.ch {
			}
			return
		}
	}
}

// outcome is one task's terminal state.
type outcome string

const (
	outcomeOK         outcome = "ok"
	outcomeRollback   outcome = "rollback"
	outcomeAborted    outcome = "aborted"
	outcomeSuperseded outcome = "superseded"
)

// runTask executes one refresh end to end: clone, re-probe, rebuild,
// validate, commit or roll back.
func (r *Refresher) runTask(a Alert) {
	start := time.Now()
	out, val, err := r.refreshKey(a)
	elapsed := time.Since(start)

	r.mu.Lock()
	switch out {
	case outcomeOK:
		r.stats.Refreshes++
		r.stats.FailureStreak = 0
		r.stats.RollbackStreak = 0
		r.stats.LastError = ""
		r.stats.LastErrorAt = time.Time{}
	case outcomeRollback:
		r.stats.Rollbacks++
		r.stats.RollbackStreak++
	case outcomeAborted:
		r.stats.Aborted++
	case outcomeSuperseded:
		r.stats.Superseded++
	}
	if out != outcomeOK {
		r.stats.FailureStreak++
		if out != outcomeRollback {
			r.stats.RollbackStreak = 0
		}
		if err != nil {
			r.stats.LastError = err.Error()
			r.stats.LastErrorAt = time.Now()
		}
	}
	if val != nil {
		v := *val
		r.stats.LastValidation = &v
		r.stats.ProbesSpent += int64(val.ProbesSpent)
	}
	r.mu.Unlock()

	if reg := r.cfg.Metrics; reg != nil {
		reg.Counter("mp_refresh_total", obs.Labels{"outcome": string(out)}).Inc()
		if out == outcomeRollback {
			reg.Counter("mp_refresh_rollbacks_total", nil).Inc()
		}
		if val != nil {
			reg.Counter("mp_refresh_probes_total", nil).Add(int64(val.ProbesSpent))
		}
		reg.Histogram("mp_refresh_duration_seconds", nil).Observe(elapsed.Seconds())
	}
	log := r.cfg.Logger.With("db", a.DB, "type", a.Key.String(), "outcome", string(out), "elapsed", elapsed)
	if val != nil {
		log = log.With("oldScore", val.OldScore, "newScore", val.NewScore,
			"probes", val.ProbesSpent, "train", val.TrainSamples, "holdout", val.HoldoutSamples)
	}
	if err != nil {
		log.Warn("model refresh did not publish", "err", err)
	} else {
		log.Info("model refresh published")
	}
}

// probePair is one fresh training observation.
type probePair struct {
	query  string
	terms  int
	rhat   float64
	actual float64
}

// refreshKey is the task body. It returns the outcome, the validation
// record when probing happened, and a diagnostic error for non-ok
// outcomes.
func (r *Refresher) refreshKey(a Alert) (out outcome, val *Validation, err error) {
	ctx, cancel := context.WithTimeout(r.ctx, r.cfg.TaskTimeout)
	defer cancel()
	ctx, sp := r.cfg.Spans.Start(ctx, "refresh")
	sp.SetAttr("db", a.DB)
	sp.SetAttr("query_type", a.Key.String())
	defer func() {
		sp.SetAttr("outcome", string(out))
		sp.EndErr(err)
	}()

	baseVersion, clone := r.host.CloneServing()
	if clone == nil {
		return outcomeAborted, nil, fmt.Errorf("refresh: no serving model")
	}
	if a.DBIdx < 0 || a.DBIdx >= len(clone.DBs) {
		return outcomeAborted, nil, fmt.Errorf("refresh: database index %d outside [0, %d)", a.DBIdx, len(clone.DBs))
	}
	if r.cfg.Queries == nil {
		return outcomeAborted, nil, fmt.Errorf("refresh: no query source configured")
	}

	// Candidate queries that classify into the alerted key need no
	// probe to identify: classification is summary-only. Over-ask the
	// source since only a fraction lands in the key.
	sum := clone.Summaries.Summaries[a.DBIdx]
	raw := r.cfg.Queries(a.Key.Terms, 8*r.cfg.ProbeBudget)
	var cands []probePair
	seen := make(map[string]bool, len(raw))
	for _, q := range raw {
		if seen[q] {
			continue
		}
		seen[q] = true
		terms := len(strings.Fields(q))
		rhat := clone.Rel.Estimate(sum, q)
		if clone.Cfg.Classifier.Classify(terms, rhat) != a.Key {
			continue
		}
		cands = append(cands, probePair{query: q, terms: terms, rhat: rhat})
		if len(cands) >= r.cfg.ProbeBudget {
			break
		}
	}
	if len(cands) < r.cfg.MinProbes {
		return outcomeAborted, nil, fmt.Errorf("refresh: only %d workload queries classify as %s on %s (need %d)",
			len(cands), a.Key, a.DB, r.cfg.MinProbes)
	}

	// Probe the candidates through the host's lane, bounded by
	// Concurrency — the budget caps total cost, the pool caps impact.
	pctx, psp := span.Start(ctx, "refresh.probe")
	pairs, probesSpent := r.probeAll(pctx, a.DBIdx, cands)
	psp.SetAttr("probes", fmt.Sprint(probesSpent))
	psp.SetAttr("succeeded", fmt.Sprint(len(pairs)))
	psp.End()
	val = &Validation{
		DB: a.DB, QueryType: a.Key.String(),
		ProbesSpent: probesSpent, At: time.Now(),
	}
	if len(pairs) < r.cfg.MinProbes {
		return outcomeAborted, val, fmt.Errorf("refresh: %d/%d probes succeeded (need %d)",
			len(pairs), probesSpent, r.cfg.MinProbes)
	}

	// Deterministic interleaved split: every HoldoutEvery-th pair is
	// held out for validation, the rest rebuild the ED.
	var train, holdout []probePair
	for i, p := range pairs {
		if i%r.cfg.HoldoutEvery == r.cfg.HoldoutEvery-1 {
			holdout = append(holdout, p)
		} else {
			train = append(train, p)
		}
	}
	if len(holdout) == 0 {
		holdout = train[:1]
	}
	val.TrainSamples, val.HoldoutSamples = len(train), len(holdout)

	// Score the serving distribution first (the clone is still
	// unmodified), then rebuild only the alerted key's ED and score the
	// candidate on the same holdout.
	_, vsp := span.Start(ctx, "refresh.validate")
	val.OldScore = holdoutScore(clone, a.DBIdx, a.Key, holdout)
	if err := rebuildED(clone, a.DBIdx, a.Key, train); err != nil {
		vsp.EndErr(err)
		return outcomeAborted, val, err
	}
	val.NewScore = holdoutScore(clone, a.DBIdx, a.Key, holdout)
	vsp.SetAttr("old_score", fmt.Sprintf("%.4f", val.OldScore))
	vsp.SetAttr("new_score", fmt.Sprintf("%.4f", val.NewScore))

	if val.NewScore > val.OldScore+r.cfg.MaxRegression {
		err := fmt.Errorf("refresh: candidate regressed on holdout: %.4f -> %.4f (gap %.4f allowed)",
			val.OldScore, val.NewScore, r.cfg.MaxRegression)
		vsp.EndErr(err)
		return outcomeRollback, val, err
	}
	vsp.End()
	val.Accepted = true
	_, csp := span.Start(ctx, "refresh.commit")
	if _, err := r.host.Commit(baseVersion, clone, a.DB, a.Key, *val); err != nil {
		val.Accepted = false
		csp.EndErr(err)
		if err == ErrSuperseded {
			return outcomeSuperseded, val, err
		}
		return outcomeAborted, val, err
	}
	csp.End()
	return outcomeOK, val, nil
}

// probeAll issues the candidates' probes with bounded concurrency and
// returns the successful observations (in candidate order) plus the
// total probes issued.
func (r *Refresher) probeAll(ctx context.Context, dbIdx int, cands []probePair) ([]probePair, int) {
	type slot struct {
		ok bool
		v  float64
	}
	results := make([]slot, len(cands))
	sem := make(chan struct{}, r.cfg.Concurrency)
	var wg sync.WaitGroup
	issued := 0
	for i := range cands {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		issued++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			v, err := r.host.Probe(ctx, dbIdx, cands[i].query)
			if err == nil {
				results[i] = slot{ok: true, v: v}
			}
		}(i)
	}
	wg.Wait()
	out := make([]probePair, 0, len(cands))
	for i, res := range results {
		if res.ok {
			p := cands[i]
			p.actual = res.v
			out = append(out, p)
		}
	}
	return out, issued
}

// rebuildED replaces the (dbIdx, key) ED in m with one trained from
// scratch on the fresh pairs — the paper's Section 4 procedure over
// post-drift data. The database's pooled ED is left alone: it is a
// long-run aggregate across all query types, and the serving fallback
// semantics expect it to change slowly.
func rebuildED(m *core.Model, dbIdx int, key core.TypeKey, train []probePair) error {
	edges := m.Cfg.ErrorEdges
	absolute := key.Band == core.BandZero
	if absolute {
		edges = m.Cfg.AbsoluteEdges
	}
	ed, err := core.NewED(edges, absolute, m.Cfg.UseBinMean)
	if err != nil {
		return err
	}
	for _, p := range train {
		if err := ed.Observe(p.rhat, p.actual); err != nil {
			return fmt.Errorf("refresh: rebuilding %s/%s: %w", m.DBs[dbIdx].Name, key, err)
		}
	}
	m.DBs[dbIdx].EDs[key] = ed
	return nil
}

// holdoutScore is the validation measure: the mean negative
// log-likelihood, in nats, of the holdout error observations under the
// (dbIdx, key) error distribution, with add-one smoothing across the
// histogram bins so unoccupied bins cost log(total+bins) rather than
// infinity. It scores distributional fit — how much probability the ED
// puts where fresh probes actually land — rather than point-prediction
// error: a point metric normalized by the actual relevancy is
// asymmetric (underestimates cost at most ~1 per pair, overestimates
// are unbounded), so against a heterogeneous holdout a stale model
// that underestimates a grown collection would outscore an honest
// retrain. Lower is better; a drifted ED scores badly because its mass
// sits in bins the fresh errors no longer occupy. A model with no ED
// for the key scores +Inf — any retrain beats serving nothing.
func holdoutScore(m *core.Model, dbIdx int, key core.TypeKey, holdout []probePair) float64 {
	ed := m.DBs[dbIdx].EDs[key]
	if ed == nil || ed.Observations() == 0 {
		return math.Inf(1)
	}
	h := ed.Hist
	total := float64(h.Total())
	bins := float64(h.Bins())
	var nll float64
	for _, p := range holdout {
		v := p.actual
		if !ed.Absolute {
			// In-key candidates always have rhat > 0: the zero band owns
			// rhat == 0, and classification gated them into this key.
			v = (p.actual - p.rhat) / p.rhat
		}
		c := float64(h.Counts[h.BinIndex(v)])
		nll -= math.Log((c + 1) / (total + bins))
	}
	return nll / float64(len(holdout))
}
