package core

import (
	"testing"
)

// stageLog collects observer calls for assertions.
type stageLog struct {
	stages map[string]int
	total  map[string]float64
}

func newStageLog() *stageLog {
	return &stageLog{stages: make(map[string]int), total: make(map[string]float64)}
}

func (l *stageLog) observe(stage string, seconds float64, allocs uint64) {
	l.stages[stage]++
	l.total[stage] += seconds
}

func stageTestSelection() *Selection {
	rds := []*RD{
		mustRD([]float64{1, 10}, []float64{0.5, 0.5}),
		mustRD([]float64{2, 8}, []float64{0.5, 0.5}),
		mustRD([]float64{0, 20}, []float64{0.5, 0.5}),
		mustRD([]float64{5, 6}, []float64{0.5, 0.5}),
	}
	return NewSelectionFromRDs(rds, Absolute, 2)
}

func mustRD(values, probs []float64) *RD {
	rd, err := NewRD(values, probs)
	if err != nil {
		panic(err)
	}
	return rd
}

func TestStageObserverDisabledIsFree(t *testing.T) {
	s := stageTestSelection()
	// Without an observer, BeginStage returns the inactive zero mark
	// and the pair allocates nothing — the hot path pays one nil check.
	if allocs := testing.AllocsPerRun(100, func() {
		m := s.BeginStage()
		s.EndStage(m, StageECorDP)
	}); allocs != 0 {
		t.Fatalf("disabled stage boundary allocates %v objects, want 0", allocs)
	}
	m := s.BeginStage()
	if m.active {
		t.Fatal("mark should be inactive without an observer")
	}
}

func TestStageObserverRecordsIntervals(t *testing.T) {
	s := stageTestSelection()
	log := newStageLog()
	s.WithStageObserver(log.observe)
	m := s.BeginStage()
	if !m.active {
		t.Fatal("mark should be active with an observer attached")
	}
	s.Best()
	s.EndStage(m, StageECorDP)
	if log.stages[StageECorDP] != 1 {
		t.Fatalf("stages = %v", log.stages)
	}
	if log.total[StageECorDP] < 0 {
		t.Fatalf("negative duration %v", log.total[StageECorDP])
	}
	// The zero mark stays a no-op even with an observer attached.
	s.EndStage(StageMark{}, StageRank)
	if log.stages[StageRank] != 0 {
		t.Fatal("zero mark must not report")
	}
}

// TestAProReportsStages runs the sequential APro loop with an observer
// and checks every algorithmic stage shows up with sane counts: one
// ecor_dp evaluation per loop entry, one rank and one probe per step.
func TestAProReportsStages(t *testing.T) {
	s := stageTestSelection()
	log := newStageLog()
	s.WithStageObserver(log.observe)
	probes := 0
	probe := func(i int) (float64, error) {
		probes++
		return s.Estimate(i), nil
	}
	out, err := APro(s, probe, &Greedy{}, 0.999999, -1)
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("test needs at least one probe to exercise all stages")
	}
	if log.stages[StageRank] != probes || log.stages[StageProbe] != probes {
		t.Fatalf("rank/probe counts %d/%d, want %d each (stages=%v)",
			log.stages[StageRank], log.stages[StageProbe], probes, log.stages)
	}
	// One Best() per loop entry: initial + one after every step.
	if want := len(out.Steps) + 1; log.stages[StageECorDP] != want {
		t.Fatalf("ecor_dp count %d, want %d", log.stages[StageECorDP], want)
	}
}

func TestReadHeapAllocsMonotonic(t *testing.T) {
	a := ReadHeapAllocs()
	_ = make([]byte, 1024)
	b := ReadHeapAllocs()
	if b < a {
		t.Fatalf("alloc counter went backwards: %d -> %d", a, b)
	}
}
