package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"metaprobe/internal/stats"
)

// example6RDs reconstructs the RDs of the paper's Example 6 / Figures
// 12–13: db1 = {50: 0.3, 100: 0.4, 150: 0.3}, db2 = {65: 0.4, 130:
// 0.6}. With these, the published usefulness values hold exactly:
// probing db1 yields expected usefulness 0.84, probing db2 yields 0.7,
// so the greedy policy probes db1 first.
func example6RDs() []*RD {
	return []*RD{
		MustRD([]float64{50, 100, 150}, []float64{0.3, 0.4, 0.3}),
		MustRD([]float64{65, 130}, []float64{0.4, 0.6}),
	}
}

func TestPaperExample6GreedyUsefulness(t *testing.T) {
	sel := NewSelectionFromRDs(example6RDs(), Absolute, 1)
	g := &Greedy{}
	u1 := g.Usefulness(sel, 0)
	u2 := g.Usefulness(sel, 1)
	if math.Abs(u1-0.84) > 1e-12 {
		t.Errorf("usefulness(db1) = %v, want 0.84", u1)
	}
	if math.Abs(u2-0.7) > 1e-12 {
		t.Errorf("usefulness(db2) = %v, want 0.7", u2)
	}
	next, err := g.Next(sel, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if next != 0 {
		t.Errorf("greedy picked db%d, want db1 (index 0)", next+1)
	}
}

// TestUsefulnessNeverBelowCurrent is the law-of-total-expectation
// property: the expected usefulness of any probe is at least the
// current best expected correctness.
func TestUsefulnessNeverBelowCurrent(t *testing.T) {
	rng := stats.NewRNG(55)
	g := &Greedy{}
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(3)
		rds := make([]*RD, n)
		for i := range rds {
			m := 1 + rng.Intn(3)
			vals := make([]float64, m)
			probs := make([]float64, m)
			for j := range vals {
				vals[j] = float64(rng.Intn(100)) + float64(j)*0.001
				probs[j] = rng.Float64() + 0.05
			}
			rds[i] = MustRD(vals, probs)
		}
		k := 1 + rng.Intn(2)
		for _, metric := range []Metric{Absolute, Partial} {
			sel := NewSelectionFromRDs(rds, metric, k)
			_, current := sel.Best()
			for i := 0; i < n; i++ {
				if u := g.Usefulness(sel, i); u < current-1e-9 {
					t.Fatalf("trial %d metric %v: usefulness(%d) = %v < current %v", trial, metric, i, u, current)
				}
			}
		}
	}
}

func TestAProReachesThresholdOnPaperExample(t *testing.T) {
	// Example 6 setting: k=1, t=0.8. Initial best is db1 at 0.46 (db1
	// beats db2 with prob 0.3·1 + 0.4·0.4 = 0.46 vs db2's 0.54...).
	sel := NewSelectionFromRDs(example6RDs(), Absolute, 1)
	_, e0 := sel.Best()
	if e0 >= 0.8 {
		t.Fatalf("initial certainty %v unexpectedly above threshold", e0)
	}
	// Live probe: db1's actual relevancy turns out to be 150.
	probe := func(i int) (float64, error) {
		if i != 0 {
			t.Fatalf("expected first probe on db1, got db%d", i+1)
		}
		return 150, nil
	}
	out, err := APro(sel, probe, &Greedy{}, 0.8, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reached {
		t.Fatalf("threshold not reached: %+v", out)
	}
	// r1 = 150 beats both outcomes of db2 → db1 returned with certainty 1.
	if len(out.Set) != 1 || out.Set[0] != 0 || out.Certainty != 1 {
		t.Errorf("outcome = %+v, want db1 at certainty 1", out)
	}
	if out.Probes() != 1 {
		t.Errorf("probes = %d, want 1", out.Probes())
	}
}

func TestAProNoProbingWhenThresholdMet(t *testing.T) {
	// Paper Section 3.4: with t = 0.7 and certainty 0.85, return
	// without probing.
	sel := NewSelectionFromRDs(paperRDs(), Absolute, 1)
	probe := func(i int) (float64, error) {
		t.Fatal("no probe should be issued")
		return 0, nil
	}
	out, err := APro(sel, probe, &Greedy{}, 0.7, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reached || out.Probes() != 0 || out.Set[0] != 1 {
		t.Errorf("outcome = %+v, want db2 with zero probes", out)
	}
}

func TestAProMaxProbesBudget(t *testing.T) {
	rds := []*RD{
		MustRD([]float64{0, 100}, []float64{0.5, 0.5}),
		MustRD([]float64{1, 99}, []float64{0.5, 0.5}),
		MustRD([]float64{2, 98}, []float64{0.5, 0.5}),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	calls := 0
	probe := func(i int) (float64, error) {
		calls++
		return 50, nil
	}
	out, err := APro(sel, probe, &Greedy{}, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || out.Probes() != 1 {
		t.Errorf("calls = %d, probes = %d; want exactly 1", calls, out.Probes())
	}
}

func TestAProProbeFailuresAreSkipped(t *testing.T) {
	rds := []*RD{
		MustRD([]float64{0, 100}, []float64{0.5, 0.5}),
		MustRD([]float64{1, 99}, []float64{0.5, 0.5}),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	boom := errors.New("db down")
	probe := func(i int) (float64, error) {
		if i == 0 {
			return 0, boom
		}
		return 99, nil
	}
	out, err := APro(sel, probe, &ByEstimate{}, 0.99, -1)
	// db0 (estimate 50) vs db1 (estimate 50)... ByEstimate picks the
	// higher estimate; regardless, the failed probe must be recorded
	// and the run continues with the other database.
	if out.Probes() != 1 {
		t.Errorf("successful probes = %d, want 1 (outcome %+v, err %v)", out.Probes(), out, err)
	}
	failed := 0
	for _, s := range out.Steps {
		if s.Err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Errorf("failed steps = %d, want 1", failed)
	}
}

func TestAProAllProbesFailReturnsBestEffort(t *testing.T) {
	rds := []*RD{
		MustRD([]float64{0, 100}, []float64{0.5, 0.5}),
		MustRD([]float64{1, 99}, []float64{0.5, 0.5}),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	probe := func(i int) (float64, error) { return 0, fmt.Errorf("down") }
	out, err := APro(sel, probe, &ByEstimate{}, 0.99, -1)
	if out.Reached {
		t.Error("threshold cannot be reached with all probes failing")
	}
	if err == nil {
		t.Error("accumulated probe errors should be returned")
	}
	if len(out.Set) != 1 {
		t.Errorf("best-effort set missing: %+v", out)
	}
}

func TestAProValidation(t *testing.T) {
	sel := NewSelectionFromRDs(paperRDs(), Absolute, 1)
	if _, err := APro(sel, nil, &Greedy{}, 0.5, -1); err == nil {
		t.Error("nil probe must fail")
	}
	probe := func(i int) (float64, error) { return 0, nil }
	if _, err := APro(sel, probe, nil, 0.5, -1); err == nil {
		t.Error("nil policy must fail")
	}
	if _, err := APro(sel, probe, &Greedy{}, 1.5, -1); err == nil {
		t.Error("threshold > 1 must fail")
	}
	if _, err := APro(sel, probe, &Greedy{}, -0.1, -1); err == nil {
		t.Error("negative threshold must fail")
	}
}

func TestRandomPolicy(t *testing.T) {
	sel := NewSelectionFromRDs(example6RDs(), Absolute, 1)
	r := &Random{RNG: stats.NewRNG(3)}
	seen := map[int]bool{}
	for i := 0; i < 30; i++ {
		next, err := r.Next(sel, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Probed(next) {
			t.Fatal("random policy returned probed database")
		}
		seen[next] = true
	}
	if !seen[0] || !seen[1] {
		t.Error("random policy never explored both databases")
	}
	sel.MarkUnprobeable(0)
	sel.MarkUnprobeable(1)
	if _, err := r.Next(sel, 0.9); err == nil {
		t.Error("exhausted selection must error")
	}
}

func TestByEstimatePolicy(t *testing.T) {
	rds := []*RD{Impulse(10), Impulse(100), Impulse(50)}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	p := ByEstimate{}
	first, err := p.Next(sel, 0.9)
	if err != nil || first != 1 {
		t.Errorf("first = %d, %v; want 1", first, err)
	}
	sel.MarkUnprobeable(1)
	second, err := p.Next(sel, 0.9)
	if err != nil || second != 2 {
		t.Errorf("second = %d, %v; want 2", second, err)
	}
}

func TestMaxEntropyPolicy(t *testing.T) {
	rds := []*RD{
		Impulse(50), // entropy 0
		MustRD([]float64{0, 100}, []float64{0.5, 0.5}),          // ln 2
		MustRD([]float64{0, 50, 100}, []float64{0.4, 0.3, 0.3}), // > ln 2
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	p := MaxEntropy{}
	got, err := p.Next(sel, 0.9)
	if err != nil || got != 2 {
		t.Errorf("max-entropy picked %d, %v; want 2", got, err)
	}
}

// TestOptimalPolicyNeverWorseThanGreedy runs both policies over random
// small instances against simulated truths drawn from the RDs and
// checks the optimal policy's average probe count is not worse.
func TestOptimalPolicyNeverWorseThanGreedy(t *testing.T) {
	rng := stats.NewRNG(21)
	var totalGreedy, totalOptimal int
	for trial := 0; trial < 25; trial++ {
		n := 3
		rds := make([]*RD, n)
		truths := make([]float64, n)
		for i := range rds {
			vals := []float64{float64(rng.Intn(50)), float64(50 + rng.Intn(50))}
			probs := []float64{0.2 + 0.6*rng.Float64(), 0.2}
			rds[i] = MustRD(vals, probs)
			// Draw the truth from the RD itself (well-specified model).
			if rng.Float64() < rds[i].Prob(0) {
				truths[i] = rds[i].Value(0)
			} else {
				truths[i] = rds[i].Value(rds[i].Len() - 1)
			}
		}
		probe := func(i int) (float64, error) { return truths[i], nil }
		t1 := 0.9

		selG := NewSelectionFromRDs(rds, Absolute, 1)
		outG, err := APro(selG, probe, &Greedy{}, t1, -1)
		if err != nil {
			t.Fatal(err)
		}
		selO := NewSelectionFromRDs(rds, Absolute, 1)
		outO, err := APro(selO, probe, &Optimal{}, t1, -1)
		if err != nil {
			t.Fatal(err)
		}
		totalGreedy += outG.Probes()
		totalOptimal += outO.Probes()
	}
	if totalOptimal > totalGreedy+3 {
		t.Errorf("optimal used %d probes vs greedy %d; optimal should not be much worse", totalOptimal, totalGreedy)
	}
}

func TestOptimalPolicySizeLimit(t *testing.T) {
	rds := make([]*RD, 10)
	for i := range rds {
		rds[i] = MustRD([]float64{0, 1}, []float64{0.5, 0.5})
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	o := &Optimal{}
	if _, err := o.Next(sel, 0.9); err == nil {
		t.Error("optimal policy must refuse large testbeds")
	}
}

func TestGreedyCostAware(t *testing.T) {
	// Two symmetric databases; db1 is 10x cheaper to probe, so the
	// cost-aware greedy must pick it.
	rds := []*RD{
		MustRD([]float64{0, 100}, []float64{0.5, 0.5}),
		MustRD([]float64{0.5, 100.5}, []float64{0.5, 0.5}),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	costs := []float64{1, 10}
	g := &Greedy{Cost: func(i int) float64 { return costs[i] }}
	next, err := g.Next(sel, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if next != 0 {
		t.Errorf("cost-aware greedy picked %d, want 0", next)
	}
	// Flip the costs: now db2 should win (usefulness is symmetric
	// enough that cost dominates).
	costs = []float64{10, 1}
	next, err = g.Next(sel, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if next != 1 {
		t.Errorf("cost-aware greedy picked %d, want 1", next)
	}
}

func TestGreedySkipsImpulses(t *testing.T) {
	rds := []*RD{
		Impulse(50),
		MustRD([]float64{0, 100}, []float64{0.5, 0.5}),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	g := &Greedy{}
	next, err := g.Next(sel, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if next != 1 {
		t.Errorf("greedy picked impulse db %d; probing it is useless", next)
	}
}

func TestGreedyRankMatchesNext(t *testing.T) {
	// Rank's head must equal Next on every reachable state, and the
	// full ranking must be the order repeated Next calls would visit
	// (the structural guarantee speculative probing relies on).
	rng := stats.NewRNG(91)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		rds := make([]*RD, n)
		for i := range rds {
			m := 1 + rng.Intn(3)
			vals := make([]float64, m)
			probs := make([]float64, m)
			for j := range vals {
				vals[j] = float64(rng.Intn(50)) + float64(j)*0.01
				probs[j] = rng.Float64() + 0.05
			}
			rds[i] = MustRD(vals, probs)
		}
		sel := NewSelectionFromRDs(rds, Absolute, 1)
		g := &Greedy{}
		dbs, us, err := g.Rank(sel, 0.99, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(dbs) == 0 || len(dbs) != len(us) {
			t.Fatalf("trial %d: Rank returned %d dbs, %d usefulness", trial, len(dbs), len(us))
		}
		next, err := g.Next(sel, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if next != dbs[0] {
			t.Fatalf("trial %d: Next = %d, Rank head = %d", trial, next, dbs[0])
		}
		if g.LastUsefulness() != us[0] {
			t.Errorf("trial %d: LastUsefulness = %v, Rank usefulness = %v", trial, g.LastUsefulness(), us[0])
		}
		// A truncated ranking must be a prefix of the full one (single-
		// value RDs are impulses, so some trials rank fewer than 2).
		if len(dbs) >= 2 {
			head, headUs, err := g.Rank(sel, 0.99, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(head) != 2 || head[0] != dbs[0] || head[1] != dbs[1] {
				t.Errorf("trial %d: Rank(m=2) = %v, want prefix of %v", trial, head, dbs)
			}
			if headUs[0] != us[0] || headUs[1] != us[1] {
				t.Errorf("trial %d: Rank(m=2) usefulness %v, want prefix of %v", trial, headUs, us)
			}
		}
	}
}

// TestGreedyRankAllImpulses: when every unprobed RD is an impulse, a
// probe cannot change E[Cor], so ranking reports ErrNoInformativeProbe
// instead of suggesting informationless backend traffic.
func TestGreedyRankAllImpulses(t *testing.T) {
	rds := []*RD{Impulse(50), Impulse(60)}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	g := &Greedy{}
	dbs, us, err := g.Rank(sel, 0.99, 3)
	if !errors.Is(err, ErrNoInformativeProbe) {
		t.Fatalf("Rank over impulses: err = %v, want ErrNoInformativeProbe", err)
	}
	if dbs != nil || us != nil {
		t.Errorf("Rank over impulses = %v, %v; want nil, nil", dbs, us)
	}
}

// TestAProStopsOnUninformativeProbes: an APro run whose remaining
// unprobed RDs are all impulses terminates gracefully — Reached=false,
// best available set, zero probes issued — rather than probing known
// values.
func TestAProStopsOnUninformativeProbes(t *testing.T) {
	rds := []*RD{Impulse(50), Impulse(60), Impulse(70)}
	sel := NewSelectionFromRDs(rds, Absolute, 2)
	probes := 0
	probe := func(int) (float64, error) { probes++; return 0, nil }
	// Threshold 1+ε is unreachable even with perfect knowledge... but
	// t must be ≤ 1, so use a partial-metric state whose certainty
	// stays below t: impulses give certainty 1 for the true top set,
	// so instead verify via an unreachable mixed state below.
	out, err := APro(sel, probe, &Greedy{}, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	// Impulse-only states have certainty exactly 1, so the threshold is
	// met with zero probes here; the sentinel path needs uncertainty
	// that probing cannot fix — an unprobeable database.
	if probes != 0 || !out.Reached {
		t.Fatalf("impulse-only state: probes=%d reached=%v", probes, out.Reached)
	}

	rds = []*RD{
		mustRD([]float64{40, 80}, []float64{0.5, 0.5}),
		Impulse(60),
		Impulse(50),
	}
	sel = NewSelectionFromRDs(rds, Absolute, 1)
	sel.MarkUnprobeable(0) // the only informative probe target is gone
	out, err = APro(sel, probe, &Greedy{}, 0.999, -1)
	if err != nil {
		t.Fatal(err)
	}
	if probes != 0 {
		t.Errorf("issued %d informationless probes, want 0", probes)
	}
	if out.Reached {
		t.Error("Reached = true; threshold is unreachable without probing db 0")
	}
	if len(out.Set) != 1 {
		t.Errorf("best available set = %v, want a 1-set", out.Set)
	}
}
