package core

// Precomputed RD tables: the per-query cost of NewSelection used to be
// dominated by RD derivation — for every database: estimate, classify,
// then convolve the error distribution into a relevancy distribution
// (Model.RDFor). The EDs are immutable between refreshes, so that
// convolution work is a pure function of (database, query type) plus a
// per-query scale: for the relative-error bands, ED.RD(r̂) produces
// values r̂·(1 + e_bin) with probabilities that do not depend on r̂ at
// all, and for the r̂ = 0 band the whole RD is independent of r̂.
//
// A ModelVersion therefore carries an rdTable: one entry per
// (database, classifier key), built when the version is published
// (NewModelVersion / Next) and rebuilt lazily after invalidation.
// Entries come in three kinds:
//
//   - rdEntryScaled: a template RD built with ED.RD(1), so its support
//     is exactly the per-bin factors (1 + e_bin). A selection derives
//     the query's RD by multiplying the template support by r̂ — the
//     identical float expression r̂·(1 + e_bin) the from-scratch path
//     computes, so table-lookup selections are bit-equal to
//     RDFor-derived ones — while sharing the template's probabilities
//     and cumulative tails (both scale-invariant).
//   - rdEntryAbsolute: the r̂ = 0 band's RD, shared outright (its
//     values ignore r̂).
//   - rdEntryCold: no usable error model for the key; selections fall
//     back to an impulse at the estimate, exactly like RDFor.
//
// Coherence: table rows are atomic pointers. Online refinement
// (ModelVersion.ObserveProbe) mutates ED histograms in place and then
// clears the affected database's rows, so the next selection rebuilds
// them from the refined histograms. Version swaps need no coordination
// at all — a refresh (ModelVersion.Next) derives the successor's table
// copy-on-write, sharing every row whose underlying EDs are untouched
// and rebuilding only the retrained ones; old versions keep their
// tables until released, so in-flight selections never see a torn or
// stale row. Callers must serialize ED mutation with table reads on
// the same version (the facade's modelMu does); published RDs are
// read-only everywhere — ApplyProbe replaces entries, never mutates.

import (
	"math"
	"sync/atomic"

	"metaprobe/internal/summary"
)

// termsEstimator is the optional batch face of a relevancy estimator
// (DocFrequency implements it): Terms normalizes the query once,
// EstimateTerms reuses the result per summary with bit-identical
// output to Estimate. FillSelection uses it to tokenize one query once
// across all databases instead of once per database.
type termsEstimator interface {
	Terms(query string) []string
	EstimateTerms(s *summary.Summary, terms []string) float64
}

// rdEntryKind discriminates how a table entry turns into a per-query
// RD.
type rdEntryKind uint8

const (
	// rdEntryCold marks a key with no usable error model: serve an
	// impulse at the query's estimate (RDFor's final fallback).
	rdEntryCold rdEntryKind = iota
	// rdEntryScaled holds an ED.RD(1) template whose support must be
	// multiplied by the query's estimate.
	rdEntryScaled
	// rdEntryAbsolute holds the finished RD of an absolute-value
	// (BandZero) ED, shared as-is.
	rdEntryAbsolute
)

// rdEntry is one immutable (database, query-type) table row.
type rdEntry struct {
	kind rdEntryKind
	rd   *RD // nil for rdEntryCold
}

// coldRDEntry is the shared row for keys without a usable error model.
var coldRDEntry = &rdEntry{kind: rdEntryCold}

// rdTable is a ModelVersion's precomputed RD lookup: a dense
// (database × classifier key) grid of atomic row pointers. A nil row
// means "not built yet" — entry() rebuilds it from the model on
// demand, which is also how invalidation after online refinement
// repopulates.
type rdTable struct {
	// nKeys is the classifier's key-space size (effective MaxTerms × 3
	// bands); rows are indexed db*nKeys + (Terms-1)*3 + Band.
	nKeys int
	rows  []atomic.Pointer[rdEntry]
}

// classifierKeySpace returns the dense key-space size for c, matching
// Classify's clamping (MaxTerms ≤ 0 defaults to 4).
func classifierKeySpace(c Classifier) int {
	maxTerms := c.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4
	}
	return maxTerms * 3
}

// newRDTable allocates an empty table shaped for m.
func newRDTable(m *Model) *rdTable {
	nKeys := classifierKeySpace(m.Cfg.Classifier)
	return &rdTable{nKeys: nKeys, rows: make([]atomic.Pointer[rdEntry], len(m.DBs)*nKeys)}
}

// idx maps (database, key) to the dense row index. Classify clamps
// Terms into [1, MaxTerms] and Band into the three bands, so the index
// is always in range for keys it produced.
func (t *rdTable) idx(dbIdx int, key TypeKey) int {
	return dbIdx*t.nKeys + (key.Terms-1)*3 + int(key.Band)
}

// keyAt is idx's inverse for the per-db key offset.
func keyAt(k int) TypeKey {
	return TypeKey{Terms: k/3 + 1, Band: EstimateBand(k % 3)}
}

// entry returns the row for (dbIdx, key), building it from the model's
// current EDs when the row was never built or was invalidated. Builds
// are deterministic for a quiescent model, so concurrent builders
// racing on the same row store equivalent entries; callers must still
// serialize entry() with ED mutation (ModelVersion.ObserveProbe).
func (t *rdTable) entry(m *Model, dbIdx int, key TypeKey) *rdEntry {
	row := &t.rows[t.idx(dbIdx, key)]
	if e := row.Load(); e != nil {
		return e
	}
	e := buildRDEntry(m, dbIdx, key)
	row.Store(e)
	return e
}

// buildRDEntry preconvolves one (database, key) row, replicating
// RDFor's exact fallback chain: the key's own ED when trusted, else
// the pooled ED for the relative bands, else cold.
func buildRDEntry(m *Model, dbIdx int, key TypeKey) *rdEntry {
	dm := m.DBs[dbIdx]
	if ed, ok := dm.EDs[key]; ok && ed.Observations() >= m.Cfg.MinObservations {
		if key.Band == BandZero {
			if rd, err := ed.RD(0); err == nil {
				return &rdEntry{kind: rdEntryAbsolute, rd: rd}
			}
		} else if rd, err := ed.RD(1); err == nil {
			return &rdEntry{kind: rdEntryScaled, rd: rd}
		}
	}
	if key.Band != BandZero && dm.Pooled != nil && dm.Pooled.Observations() >= m.Cfg.MinObservations {
		if rd, err := dm.Pooled.RD(1); err == nil {
			return &rdEntry{kind: rdEntryScaled, rd: rd}
		}
	}
	return coldRDEntry
}

// prebuild materializes every unbuilt row, so a freshly published
// version pays the convolution cost once, off the query path.
func (t *rdTable) prebuild(m *Model) {
	for db := range m.DBs {
		base := db * t.nKeys
		for k := 0; k < t.nKeys; k++ {
			row := &t.rows[base+k]
			if row.Load() == nil {
				row.Store(buildRDEntry(m, db, keyAt(k)))
			}
		}
	}
}

// invalidateDB clears one database's rows after its EDs changed in
// place (online refinement also feeds the pooled ED, so the whole
// database — a dozen pointers — is cleared rather than one key).
func (t *rdTable) invalidateDB(dbIdx int) {
	base := dbIdx * t.nKeys
	for k := 0; k < t.nKeys; k++ {
		t.rows[base+k].Store(nil)
	}
}

// derive builds the successor version's table copy-on-write against
// this one: databases whose DBModel pointer is unchanged share all
// rows; a replaced DBModel (a refresh commit) shares the rows whose ED
// pointers — including the pooled fallback every relative-band row may
// depend on — are identical, and rebuilds only the retrained ones.
// Works from a nil receiver (a version built outside NewModelVersion)
// by building everything fresh.
func (t *rdTable) derive(oldM, newM *Model) *rdTable {
	out := newRDTable(newM)
	if t != nil && oldM != nil && t.nKeys == out.nKeys {
		n := len(newM.DBs)
		if len(oldM.DBs) < n {
			n = len(oldM.DBs)
		}
		for db := 0; db < n; db++ {
			od, nd := oldM.DBs[db], newM.DBs[db]
			switch {
			case od == nd:
				for k := 0; k < out.nKeys; k++ {
					out.rows[db*out.nKeys+k].Store(t.rows[db*t.nKeys+k].Load())
				}
			case od.Pooled == nd.Pooled:
				for k := 0; k < out.nKeys; k++ {
					key := keyAt(k)
					if od.EDs[key] == nd.EDs[key] {
						out.rows[db*out.nKeys+k].Store(t.rows[db*t.nKeys+k].Load())
					}
				}
			}
		}
	}
	out.prebuild(newM)
	return out
}

// NewSelection builds the initial (unprobed) state for a query through
// the version's RD table — the table-lookup counterpart of
// Model.NewSelection, producing bit-identical selections.
func (v *ModelVersion) NewSelection(query string, numTerms int, metric Metric, k int) *Selection {
	return v.FillSelection(nil, query, numTerms, metric, k)
}

// FillSelection re-initializes sel in place as the initial unprobed
// state for a query, deriving every database's RD from the version's
// table: a shared RD for the absolute band, the template support
// scaled by the estimate for the relative bands (into selection-owned
// buffers, sharing the template's probabilities and cumulative tails),
// and a reusable impulse for cold keys. sel may be nil (one is
// allocated) or a recycled shell from any earlier query or model
// version — every field is rewritten, so after warm-up the fill
// allocates nothing. Returns sel for chaining.
//
// Callers must serialize FillSelection with ED mutation on the same
// version (ModelVersion.ObserveProbe); concurrent fills against a
// version swap are safe.
func (v *ModelVersion) FillSelection(sel *Selection, query string, numTerms int, metric Metric, k int) *Selection {
	if sel == nil {
		sel = &Selection{}
	}
	m := v.Model
	n := len(m.DBs)
	sel.reset(query, metric, k, n)
	tab := v.rdtab
	te, batch := m.Rel.(termsEstimator)
	var terms []string
	if batch {
		terms = te.Terms(query)
	}
	for i := 0; i < n; i++ {
		if tab == nil {
			// A version assembled outside NewModelVersion/Next carries no
			// table; serve from scratch.
			sel.rds[i], sel.estimates[i] = m.RDFor(i, query, numTerms)
			continue
		}
		var rhat float64
		if batch {
			rhat = te.EstimateTerms(m.Summaries.Summaries[i], terms)
		} else {
			rhat = m.Rel.Estimate(m.Summaries.Summaries[i], query)
		}
		sel.estimates[i] = rhat
		key := m.Cfg.Classifier.Classify(numTerms, rhat)
		e := tab.entry(m, i, key)
		switch {
		case e.kind == rdEntryAbsolute:
			sel.rds[i] = e.rd
		case e.kind == rdEntryScaled && rhat > 0 && !math.IsInf(rhat, 1) && sel.setScaledRD(i, e.rd, rhat):
			// setScaledRD installed the derived RD.
		case e.kind == rdEntryCold && rhat == 0:
			sel.rds[i] = zeroImpulse
		case e.kind == rdEntryCold:
			sel.rds[i] = sel.ownedImpulse(i, rhat)
		default:
			// Scaled-entry pathologies — a non-finite estimate, or two
			// support points colliding after scaling — take the
			// from-scratch derivation for this database (rare, correct).
			sel.rds[i], sel.estimates[i] = m.RDFor(i, query, numTerms)
		}
	}
	return sel
}

// ObserveProbe folds a live probe observation into this version's
// model (Model.ObserveProbe) and invalidates the affected database's
// RD table rows, so subsequent selections re-derive from the refined
// histograms instead of serving stale distributions. Callers must hold
// whatever lock serializes selections against refinement (the facade's
// modelMu).
func (v *ModelVersion) ObserveProbe(dbIdx int, query string, numTerms int, actual float64) error {
	err := v.Model.ObserveProbe(dbIdx, query, numTerms, actual)
	if v.rdtab != nil && dbIdx >= 0 && dbIdx < len(v.Model.DBs) {
		v.rdtab.invalidateDB(dbIdx)
	}
	return err
}
