package core

import (
	"sync"

	"metaprobe/internal/stats"
)

// Selection scratch state: the incremental evaluation engine behind
// Selection.Best on the serving hot path.
//
// The from-scratch evaluation (BestSet/MembershipProb) rebuilds, for
// every membership marginal, a truncated Poisson-binomial DP over the
// "beats" probabilities of all other databases — O(n·bins²·k) per
// probe step, allocating fresh slices throughout. The scratch keeps
// all of that state flat and reusable:
//
//   - a key grid: every support value v of every database dbᵢ defines a
//     candidate key K = (v, i) in the paper's tie-breaking key order
//     κⱼ = (rⱼ, −j). For each key the grid stores P(κⱼ > K) and
//     P(κⱼ < K) for every database j, plus P(r_pivot = v).
//   - per-key DP rows: the truncated Poisson-binomial distribution of
//     "how many of the other databases beat the key owner", from which
//     membership marginals are per-key tails.
//
// A greedy-usefulness hypothesis ("suppose probing dbₕ yields w")
// collapses exactly one RD to an impulse, which perturbs exactly one
// factor of every DP row: column h of the grid becomes a step
// function, and each row's factor h swaps from p to p' ∈ {0, 1}. The
// swap is applied by deconvolving the old Bernoulli factor out of the
// cached row and convolving the new one in — O(k) per row instead of
// O(n·k) — falling back to an O(n·k) row rebuild when deconvolution
// would be numerically unsafe (see deconvMaxP). Keys of dbₕ whose
// value differs from w contribute exactly zero afterwards (their
// P(κ ≥ K) and P(κ > K) products coincide term by term), so the key
// grid itself never needs restructuring.
//
// The base (no-hypothesis) tables replicate the reference arithmetic
// operation for operation — same factor order, same clamps, same early
// exits — so base results are bit-identical to BestSet; only
// hypothesis evaluations deviate, by deconvolution round-off far below
// the probEpsilon the policies compare with. The differential tests in
// incremental_test.go pin both paths together.

// deconvMaxP bounds the Bernoulli success probability up to which the
// one-factor deconvolution update is used: each deconvolution step
// divides by q = 1−p, amplifying round-off by (1/q) per DP cell, so
// with p ≤ 0.4 and k ≤ deconvMaxK the accumulated error stays below
// ~1e-12 — orders of magnitude inside the policies' probEpsilon.
// Larger factors rebuild the row from the cached grid instead.
const (
	deconvMaxP = 0.4
	deconvMaxK = 16
)

// selScratch is the reusable state. It is owned by exactly one
// Selection at a time and returned to selScratchPool by
// Selection.Release; the pool makes steady-state selections
// allocation-free.
type selScratch struct {
	n, k int

	// Key grid, laid out db-major: keys of database i occupy
	// [keyStart[i], keyStart[i+1]); nK = keyStart[n] keys total.
	keyStart []int
	keyVal   []float64 // support value of each key
	keyEq    []float64 // P(r_owner = value) for each key
	gt       []float64 // [key t][db j] → P(κⱼ > K_t), row-major t*n+j
	less     []float64 // [key t][db j] → P(κⱼ < K_t)
	dp       []float64 // [key t][count c] → truncated PB DP row, t*k+c
	marg     []float64 // P(dbᵢ ∈ topk) per database
	valid    bool

	// Hypothesis overlay (depth-1 greedy hypotheses only).
	hypActive  bool
	hypDB      int
	hypGTCol   []float64 // saved base column h of gt
	hypLessCol []float64 // saved base column h of less
	hypEqSave  []float64 // saved keyEq of h's keys
	hypMarg    []float64 // marginals under the hypothesis
	impulse    *RD       // reusable impulse RD for the rds swap

	// Enumeration and ranking buffers.
	order    []int
	comboIdx []int
	combo    []int
	chosen   []int
	bestBuf  []int
	setMask  []bool
	pbRow    []float64
}

var selScratchPool = sync.Pool{New: func() any { return new(selScratch) }}

func acquireScratch() *selScratch {
	sc := selScratchPool.Get().(*selScratch)
	sc.valid = false
	sc.hypActive = false
	return sc
}

func (sc *selScratch) release() {
	sc.valid = false
	sc.hypActive = false
	selScratchPool.Put(sc)
}

// hypImpulse returns the scratch-owned impulse RD re-pointed at v. It
// backs the depth-1 hypothesis swap in Selection.rds so greedy
// usefulness sweeps allocate nothing; nested hypotheses allocate a
// regular Impulse instead.
func (sc *selScratch) hypImpulse(v float64) *RD {
	if sc.impulse == nil {
		sc.impulse = Impulse(v)
		return sc.impulse
	}
	sc.impulse.setImpulse(v)
	return sc.impulse
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// build rebuilds the full grid, DP rows and marginals from the
// selection's RDs. Called when the scratch is invalid (fresh scratch,
// or a probe collapsed an RD). Requires 0 < k < n.
func (sc *selScratch) build(rds []*RD, k int) {
	n := len(rds)
	sc.n, sc.k = n, k

	sc.keyStart = growInts(sc.keyStart, n+1)
	nK := 0
	for i, rd := range rds {
		sc.keyStart[i] = nK
		nK += rd.Len()
	}
	sc.keyStart[n] = nK

	sc.keyVal = growFloats(sc.keyVal, nK)
	sc.keyEq = growFloats(sc.keyEq, nK)
	sc.gt = growFloats(sc.gt, nK*n)
	sc.less = growFloats(sc.less, nK*n)
	sc.dp = growFloats(sc.dp, nK*k)
	sc.marg = growFloats(sc.marg, n)
	sc.hypGTCol = growFloats(sc.hypGTCol, nK)
	sc.hypLessCol = growFloats(sc.hypLessCol, nK)
	sc.hypMarg = growFloats(sc.hypMarg, n)
	sc.pbRow = growFloats(sc.pbRow, k)

	for i, rd := range rds {
		for vi := 0; vi < rd.Len(); vi++ {
			t := sc.keyStart[i] + vi
			v := rd.Value(vi)
			sc.keyVal[t] = v
			sc.keyEq[t] = rd.Prob(vi)
			gtRow := sc.gt[t*n : t*n+n]
			lessRow := sc.less[t*n : t*n+n]
			for j, rdj := range rds {
				gtRow[j] = prKeyGreater(rdj, j, v, i)
				lessRow[j] = prKeyLess(rdj, j, v, i)
			}
		}
	}

	// DP rows and marginals, replicating MembershipProb exactly: for
	// key t of dbᵢ the row's factors are P(beats(j, i) | rᵢ = v) =
	// gt[t][j] over j ≠ i ascending, and the marginal is the
	// prob-weighted sum of row tails.
	for i := range rds {
		m := 0.0
		for t := sc.keyStart[i]; t < sc.keyStart[i+1]; t++ {
			row := sc.dp[t*k : t*k+k]
			sc.dpRowInto(row, sc.gt[t*n:t*n+n], i)
			m += sc.keyEq[t] * sumTail(row)
		}
		if m > 1 {
			m = 1
		}
		sc.marg[i] = m
	}
	sc.valid = true
}

// dpRowInto fills dst (length k) with the truncated Poisson-binomial
// DP over factors[j] for j ≠ skip — the same top-down update, factor
// order and per-factor clamping as stats.PoissonBinomialAtMost on the
// beat probabilities MembershipProb would gather.
func (sc *selScratch) dpRowInto(dst, factors []float64, skip int) {
	for c := range dst {
		dst[c] = 0
	}
	dst[0] = 1
	hi := len(dst) - 1
	for j, p := range factors {
		if j == skip {
			continue
		}
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		q := 1 - p
		for c := hi; c >= 1; c-- {
			dst[c] = dst[c]*q + dst[c-1]*p
		}
		dst[0] *= q
	}
}

// sumTail sums a DP row and clamps to 1 — the P(at most k−1 others
// beat the owner) tail, with PoissonBinomialAtMost's clamp.
func sumTail(row []float64) float64 {
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// deconvolveBernoulli writes into dst the DP row src with one
// Bernoulli(p) factor removed: inverting new[c] = old[c]·q + old[c−1]·p
// gives old[0] = new[0]/q, old[c] = (new[c] − old[c−1]·p)/q. Only used
// when p ≤ deconvMaxP, so q ≥ 0.6 bounds the error amplification.
func deconvolveBernoulli(dst, src []float64, p float64) {
	q := 1 - p
	dst[0] = src[0] / q
	for c := 1; c < len(src); c++ {
		dst[c] = (src[c] - dst[c-1]*p) / q
	}
}

// convolveBernoulli folds one Bernoulli(p) factor into a DP row in
// place (truncated at the row length).
func convolveBernoulli(row []float64, p float64) {
	q := 1 - p
	for c := len(row) - 1; c >= 1; c-- {
		row[c] = row[c]*q + row[c-1]*p
	}
	row[0] *= q
}

// beginHypothesis overlays "dbₕ's RD collapses to an impulse at its
// vi-th support value" onto the grid: column h becomes a step
// function, keyEq of h's keys becomes an indicator, and hypothesis
// marginals are derived from the cached DP rows by swapping the single
// changed factor. The base tables are saved and restored by
// endHypothesis; dp rows are never mutated.
func (sc *selScratch) beginHypothesis(h, vi int) {
	n, k := sc.n, sc.k
	hb, he := sc.keyStart[h], sc.keyStart[h+1]
	w := sc.keyVal[hb+vi]

	sc.hypEqSave = growFloats(sc.hypEqSave, he-hb)
	copy(sc.hypEqSave, sc.keyEq[hb:he])
	for i := 0; i < n; i++ {
		for t := sc.keyStart[i]; t < sc.keyStart[i+1]; t++ {
			sc.hypGTCol[t] = sc.gt[t*n+h]
			sc.hypLessCol[t] = sc.less[t*n+h]
			v := sc.keyVal[t]
			// Impulse at w against key K = (v, i): P(κₕ > K) and
			// P(κₕ < K) are indicators with the index tie-break.
			var g, l float64
			if w > v || (w == v && h < i) {
				g = 1
			}
			if w < v || (w == v && h > i) {
				l = 1
			}
			sc.gt[t*n+h] = g
			sc.less[t*n+h] = l
		}
	}
	for t := hb; t < he; t++ {
		sc.keyEq[t] = 0
	}
	sc.keyEq[hb+vi] = 1

	// Hypothesis marginals. dbₕ's own rows exclude factor h, so its
	// marginal is the tail at the hypothesized key directly; every
	// other database swaps exactly the h factor of each row.
	for i := 0; i < n; i++ {
		if i == h {
			row := sc.dp[(hb+vi)*k : (hb+vi)*k+k]
			m := sumTail(row)
			if m > 1 {
				m = 1
			}
			sc.hypMarg[h] = m
			continue
		}
		m := 0.0
		for t := sc.keyStart[i]; t < sc.keyStart[i+1]; t++ {
			oldP := sc.hypGTCol[t]
			if oldP < 0 {
				oldP = 0
			} else if oldP > 1 {
				oldP = 1
			}
			newP := sc.gt[t*n+h]
			var tail float64
			switch {
			case oldP == newP:
				tail = sumTail(sc.dp[t*k : t*k+k])
			case oldP <= deconvMaxP && k <= deconvMaxK:
				deconvolveBernoulli(sc.pbRow, sc.dp[t*k:t*k+k], oldP)
				convolveBernoulli(sc.pbRow, newP)
				tail = sumTail(sc.pbRow)
			default:
				sc.dpRowInto(sc.pbRow, sc.gt[t*n:t*n+n], i)
				tail = sumTail(sc.pbRow)
			}
			m += sc.keyEq[t] * tail
		}
		if m > 1 {
			m = 1
		}
		sc.hypMarg[i] = m
	}

	sc.hypDB = h
	sc.hypActive = true
}

// endHypothesis restores the base grid saved by beginHypothesis.
func (sc *selScratch) endHypothesis() {
	n := sc.n
	h := sc.hypDB
	hb, he := sc.keyStart[h], sc.keyStart[h+1]
	for t := 0; t < sc.keyStart[n]; t++ {
		sc.gt[t*n+h] = sc.hypGTCol[t]
		sc.less[t*n+h] = sc.hypLessCol[t]
	}
	copy(sc.keyEq[hb:he], sc.hypEqSave)
	sc.hypActive = false
}

// expectedAbsolute evaluates E[Cor_a(set)] from the grid (base or
// hypothesis overlay), mirroring ExpectedAbsolute's conditioning on
// the set's minimum key: identical factor order, clamps and early
// exits. set must be ascending.
func (sc *selScratch) expectedAbsolute(set []int) float64 {
	n := sc.n
	mask := sc.setMask
	for j := 0; j < n; j++ {
		mask[j] = false
	}
	for _, i := range set {
		mask[i] = true
	}
	total := 0.0
	for _, pivot := range set {
		for t := sc.keyStart[pivot]; t < sc.keyStart[pivot+1]; t++ {
			gtRow := sc.gt[t*n : t*n+n]
			eq := sc.keyEq[t]
			// P(min over the set = K): Π P(κᵢ ≥ K) − Π P(κᵢ > K). The
			// two factors differ only at the pivot, by P(r_pivot = v).
			pGE, pGT := 1.0, 1.0
			for _, i := range set {
				f := gtRow[i]
				pGT *= f
				if i == pivot {
					f += eq
				}
				pGE *= f
			}
			pMinEq := pGE - pGT
			if pMinEq <= 0 {
				continue
			}
			pBelow := 1.0
			lessRow := sc.less[t*n : t*n+n]
			for j := 0; j < n && pBelow > 0; j++ {
				if !mask[j] {
					pBelow *= lessRow[j]
				}
			}
			total += pMinEq * pBelow
		}
	}
	if total > 1 {
		total = 1
	}
	return total
}

// bestFrom runs BestSet's search over the scratch tables using the
// given marginals (base or hypothesis), without allocating: the
// returned set lives in sc.bestBuf and is valid until the next call.
// Requires 0 < k < n. The candidate ordering, enumeration order,
// pruning and tie-breaking replicate BestSet exactly.
func (sc *selScratch) bestFrom(marg []float64, metric Metric, opts BestSetOptions) ([]int, float64) {
	opts.setDefaults()
	n, k := sc.n, sc.k

	order := growInts(sc.order, n)
	for i := range order {
		order[i] = i
	}
	sc.order = order
	insertionSortByDesc(order, marg)

	sc.bestBuf = growInts(sc.bestBuf, k)
	if metric == Partial {
		set := sc.bestBuf
		copy(set, order[:k])
		insertionSortInts(set)
		total := 0.0
		for _, i := range set {
			total += marg[i]
		}
		return set, total / float64(k)
	}

	m := k + opts.ExtraCandidates
	if m > n {
		m = n
	}
	if stats.BinomialCoefficient(n, k) <= float64(opts.ExhaustiveLimit) {
		m = n
	}
	candidates := order[:m]

	sc.comboIdx = growInts(sc.comboIdx, k)
	sc.combo = growInts(sc.combo, k)
	sc.chosen = growInts(sc.chosen, k)
	sc.setMask = growBools(sc.setMask, n)

	// Iterative combination enumeration — the same visit order as
	// BestSet's recursion (idx[d] is the loop variable at depth d),
	// with the same marginal-bound prune, kept loop-shaped so the hot
	// path allocates no closures.
	bestE := -1.0
	idx := sc.comboIdx
	depth := 0
	idx[0] = 0
	for depth >= 0 {
		i := idx[depth]
		if i > len(candidates)-(k-depth) ||
			(bestE >= 0 && marg[candidates[i]]+pruneSlack <= bestE) {
			depth--
			if depth >= 0 {
				idx[depth]++
			}
			continue
		}
		sc.combo[depth] = candidates[i]
		if depth == k-1 {
			copy(sc.chosen, sc.combo)
			insertionSortInts(sc.chosen)
			e := sc.expectedAbsolute(sc.chosen)
			if e > bestE {
				bestE = e
				copy(sc.bestBuf, sc.chosen)
			}
			idx[depth]++
			continue
		}
		depth++
		idx[depth] = i + 1
	}
	return sc.bestBuf, bestE
}

// insertionSortByDesc stably sorts order by score descending (ties
// keep ascending-index order) — the same result as BestSet's stable
// sort, without sort.SliceStable's closure allocation.
func insertionSortByDesc(order []int, score []float64) {
	for i := 1; i < len(order); i++ {
		x := order[i]
		j := i - 1
		for j >= 0 && score[order[j]] < score[x] {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
}

// insertionSortInts sorts a small int slice ascending in place.
func insertionSortInts(s []int) {
	for i := 1; i < len(s); i++ {
		x := s[i]
		j := i - 1
		for j >= 0 && s[j] > x {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = x
	}
}
