package core

import (
	"fmt"
	"strings"
	"time"
)

// Model versioning: serving reads a *ModelVersion through an RCU-style
// atomic pointer (the facade owns the pointer), refreshes build a
// copy-on-write successor with Clone, validate it off to the side, and
// publish it with one atomic store. In-flight selections keep the
// version they started with; nothing ever blocks on a swap.

// ModelVersion is one immutable, numbered model snapshot plus its
// provenance. Treat the whole value — including the Model it points to
// — as frozen once published; mutating state (online refinement)
// belongs to whoever holds the serving pointer and its lock.
type ModelVersion struct {
	// Version counts published models, starting at 1 for the first
	// Train or load.
	Version int64
	// CreatedAt is when this version was published.
	CreatedAt time.Time
	// Source records how the version came to be: "train", "load",
	// "reload" or "refresh".
	Source string
	// Model is the trained model itself.
	Model *Model
	// RefreshedAt maps database name → the last time an online refresh
	// rebuilt any of that database's EDs (carried across versions).
	RefreshedAt map[string]time.Time
	// rdtab is the version's precomputed RD table (rdtable.go):
	// per-(database, query-type) templates preconvolved from the
	// immutable EDs at publication and shared copy-on-write across
	// Next. Unexported and derived — never serialized; loading a
	// snapshot rebuilds it through NewModelVersion.
	rdtab *rdTable
}

// NewModelVersion wraps a freshly trained or loaded model as version
// 1, preconvolving the model's RD table so selections serve from
// lookups rather than re-deriving RDs per query.
func NewModelVersion(m *Model, source string, now time.Time) *ModelVersion {
	tab := newRDTable(m)
	tab.prebuild(m)
	return &ModelVersion{
		Version:     1,
		CreatedAt:   now,
		Source:      source,
		Model:       m,
		RefreshedAt: make(map[string]time.Time),
		rdtab:       tab,
	}
}

// Next derives the successor version holding m. refreshedDB, when
// non-empty, stamps that database's refresh time; the rest of the
// refresh history carries over. The successor's RD table is derived
// copy-on-write: rows over EDs shared with this version's model are
// shared, only rows over replaced EDs (the retrained key, a reloaded
// model) are preconvolved anew. This version keeps its own table
// untouched, so in-flight selections against it stay coherent.
func (v *ModelVersion) Next(m *Model, source, refreshedDB string, now time.Time) *ModelVersion {
	next := &ModelVersion{
		Version:     v.Version + 1,
		CreatedAt:   now,
		Source:      source,
		Model:       m,
		RefreshedAt: make(map[string]time.Time, len(v.RefreshedAt)+1),
		rdtab:       v.rdtab.derive(v.Model, m),
	}
	for db, t := range v.RefreshedAt {
		next.RefreshedAt[db] = t
	}
	if refreshedDB != "" {
		next.RefreshedAt[refreshedDB] = now
	}
	return next
}

// Clone deep-copies the database model: the ED histograms are the
// mutable state (online refinement writes into them), so a refresh
// must copy them before building a candidate model.
func (dm *DBModel) Clone() *DBModel {
	out := &DBModel{Name: dm.Name, EDs: make(map[TypeKey]*ED, len(dm.EDs))}
	for k, ed := range dm.EDs {
		out.EDs[k] = ed.Clone()
	}
	if dm.Pooled != nil {
		out.Pooled = dm.Pooled.Clone()
	}
	return out
}

// Clone deep-copies the model's mutable state (the per-database EDs);
// the configuration, relevancy definition and content summaries are
// read-only after training and are shared.
func (m *Model) Clone() *Model {
	out := &Model{
		Cfg:       m.Cfg,
		Rel:       m.Rel,
		Summaries: m.Summaries,
		DBs:       make([]*DBModel, len(m.DBs)),
	}
	for i, dm := range m.DBs {
		out.DBs[i] = dm.Clone()
	}
	return out
}

// ParseTypeKey parses the String form of a TypeKey ("2-term/high") —
// the shape drift alerts carry — back into the key.
func ParseTypeKey(s string) (TypeKey, error) {
	terms, band, ok := strings.Cut(s, "-term/")
	if !ok {
		return TypeKey{}, fmt.Errorf("core: malformed query-type key %q", s)
	}
	var k TypeKey
	if _, err := fmt.Sscanf(terms, "%d", &k.Terms); err != nil || k.Terms < 1 {
		return TypeKey{}, fmt.Errorf("core: malformed query-type key %q", s)
	}
	switch band {
	case "zero":
		k.Band = BandZero
	case "low":
		k.Band = BandLow
	case "high":
		k.Band = BandHigh
	default:
		return TypeKey{}, fmt.Errorf("core: unknown estimate band in query-type key %q", s)
	}
	return k, nil
}
