// Package core implements the paper's contribution: the probabilistic
// relevancy model and adaptive probing.
//
// The pipeline for one user query q over n mediated databases:
//
//  1. For every database dbᵢ, compute the summary-based estimate
//     r̂(dbᵢ, q) (Eq. 1 via the estimate package).
//  2. Classify q into a query type for dbᵢ (Section 4.1's decision
//     tree: number of terms × whether r̂ clears a threshold) and look
//     up the error distribution (ED) learned for that type by sampling
//     dbᵢ with training queries.
//  3. Convolve r̂ with the ED to obtain the relevancy distribution
//     (RD): a discrete distribution over the *actual* relevancy
//     r(dbᵢ, q) (Section 3.1, Example 3).
//  4. Select the k-set with the highest expected correctness
//     E[Cor(DBᵏ)] (Sections 3.2–3.3, 5.1), computed exactly from the
//     RDs.
//  5. If E[Cor] is below the user-required certainty t, probe
//     databases adaptively (Section 5): issue q live, collapse that
//     database's RD to an impulse, re-evaluate — choosing probes with
//     the greedy usefulness policy (Section 5.4).
package core

import (
	"fmt"
	"math"
	"sort"
)

// probEpsilon is the tolerance for probability normalization checks.
const probEpsilon = 1e-9

// RD is a relevancy distribution: a discrete probability distribution
// over the actual relevancy value of one database for one query.
// Values are strictly increasing and probabilities sum to 1. RDs are
// immutable once built.
type RD struct {
	values []float64
	probs  []float64
	// cumLT[i] = Σ_{t<i} probs[t] and cumGE[i] = Σ_{t≥i} probs[t]
	// (both length len(values)+1, cumLT[0] = cumGE[len] = 0). Built at
	// construction so PrLess/PrGreater answer with one binary search
	// instead of a linear sum — they sit inside the innermost loop of
	// MembershipProb and the selection scratch rebuild.
	cumLT []float64
	cumGE []float64
}

// NewRD builds an RD from (value, probability) pairs. Duplicate values
// are merged, zero-probability entries dropped, and probabilities
// normalized; at least one positive-probability value is required.
func NewRD(values, probs []float64) (*RD, error) {
	if len(values) != len(probs) {
		return nil, fmt.Errorf("core: RD needs matching slices, got %d values and %d probs", len(values), len(probs))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("core: RD needs at least one value")
	}
	type vp struct{ v, p float64 }
	pairs := make([]vp, 0, len(values))
	total := 0.0
	for i := range values {
		v, p := values[i], probs[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: RD value %d is %v", i, v)
		}
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("core: RD probability %d is %v", i, p)
		}
		if p == 0 {
			continue
		}
		pairs = append(pairs, vp{v, p})
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("core: RD has no positive probability mass")
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	rd := &RD{}
	for _, pr := range pairs {
		p := pr.p / total
		if n := len(rd.values); n > 0 && rd.values[n-1] == pr.v {
			rd.probs[n-1] += p
			continue
		}
		rd.values = append(rd.values, pr.v)
		rd.probs = append(rd.probs, p)
	}
	rd.finalize()
	return rd, nil
}

// finalize builds the cumulative-probability arrays; every constructor
// calls it once the support is fixed.
func (r *RD) finalize() {
	n := len(r.values)
	r.cumLT = make([]float64, n+1)
	r.cumGE = make([]float64, n+1)
	for i := 0; i < n; i++ {
		r.cumLT[i+1] = r.cumLT[i] + r.probs[i]
	}
	for i := n - 1; i >= 0; i-- {
		r.cumGE[i] = r.probs[i] + r.cumGE[i+1]
	}
}

// MustRD is NewRD that panics on error (for tests and literals).
func MustRD(values, probs []float64) *RD {
	rd, err := NewRD(values, probs)
	if err != nil {
		panic(err)
	}
	return rd
}

// Impulse returns the RD of a known relevancy — what a database's RD
// becomes after probing (Section 3.4: "the RD changes from a regular
// distribution to an impulse function").
func Impulse(v float64) *RD {
	rd := &RD{values: []float64{v}, probs: []float64{1}}
	rd.finalize()
	return rd
}

// setImpulse re-points a single-support RD at v in place. Only
// selection-owned scratch impulses use it — RDs handed out anywhere
// else stay immutable. The cumulative arrays of an impulse do not
// depend on the value, so they stay correct.
func (r *RD) setImpulse(v float64) {
	r.values[0] = v
}

// zeroImpulse is the shared read-only impulse at relevancy 0 — the
// result for the overwhelmingly common cold regime (r̂ = 0, never
// observed). RDFor and the version RD table hand it out instead of
// allocating a fresh impulse per query. Like every published RD it
// must never be mutated: ApplyProbe replaces selection entries, and
// setImpulse is reserved for selection-owned impulses.
var zeroImpulse = Impulse(0)

// IsImpulse reports whether the RD has a single support point.
func (r *RD) IsImpulse() bool { return len(r.values) == 1 }

// Len returns the number of support points.
func (r *RD) Len() int { return len(r.values) }

// Value returns the i-th support value (ascending order).
func (r *RD) Value(i int) float64 { return r.values[i] }

// Prob returns the probability of the i-th support value.
func (r *RD) Prob(i int) float64 { return r.probs[i] }

// Support returns a copy of the support values in ascending order.
func (r *RD) Support() []float64 { return append([]float64(nil), r.values...) }

// Mean returns the expected relevancy.
func (r *RD) Mean() float64 {
	m := 0.0
	for i, v := range r.values {
		m += v * r.probs[i]
	}
	return m
}

// Variance returns the relevancy variance.
func (r *RD) Variance() float64 {
	m := r.Mean()
	s := 0.0
	for i, v := range r.values {
		d := v - m
		s += d * d * r.probs[i]
	}
	return s
}

// Entropy returns the Shannon entropy (nats) of the distribution; an
// impulse has entropy 0. The max-uncertainty probing policy uses it.
func (r *RD) Entropy() float64 {
	h := 0.0
	for _, p := range r.probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// PrGreater returns P(X > v).
func (r *RD) PrGreater(v float64) float64 {
	// First index with value > v.
	i := sort.SearchFloat64s(r.values, v)
	if i < len(r.values) && r.values[i] == v {
		i++
	}
	return r.cumGE[i]
}

// PrEq returns P(X = v).
func (r *RD) PrEq(v float64) float64 {
	i := sort.SearchFloat64s(r.values, v)
	if i < len(r.values) && r.values[i] == v {
		return r.probs[i]
	}
	return 0
}

// PrLess returns P(X < v).
func (r *RD) PrLess(v float64) float64 {
	// First index with value ≥ v; everything before it is below v.
	return r.cumLT[sort.SearchFloat64s(r.values, v)]
}

// validate checks RD invariants; used by tests.
func (r *RD) validate() error {
	if len(r.values) != len(r.probs) || len(r.values) == 0 {
		return fmt.Errorf("core: malformed RD: %d values, %d probs", len(r.values), len(r.probs))
	}
	total := 0.0
	for i := range r.values {
		if i > 0 && r.values[i] <= r.values[i-1] {
			return fmt.Errorf("core: RD values not strictly increasing at %d", i)
		}
		if r.probs[i] <= 0 {
			return fmt.Errorf("core: RD probability %d is %v", i, r.probs[i])
		}
		total += r.probs[i]
	}
	if math.Abs(total-1) > probEpsilon {
		return fmt.Errorf("core: RD probabilities sum to %v", total)
	}
	if len(r.cumLT) != len(r.values)+1 || len(r.cumGE) != len(r.values)+1 {
		return fmt.Errorf("core: RD cumulative arrays not finalized")
	}
	return nil
}

// String renders the RD compactly for diagnostics.
func (r *RD) String() string {
	if r.IsImpulse() {
		return fmt.Sprintf("impulse(%g)", r.values[0])
	}
	s := "RD{"
	for i, v := range r.values {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%g:%.3f", v, r.probs[i])
	}
	return s + "}"
}
