package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"metaprobe/internal/estimate"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rel.Name() != model.Rel.Name() {
		t.Errorf("relevancy %q != %q", loaded.Rel.Name(), model.Rel.Name())
	}
	if loaded.Cfg.Classifier != model.Cfg.Classifier {
		t.Errorf("classifier %+v != %+v", loaded.Cfg.Classifier, model.Cfg.Classifier)
	}
	if len(loaded.DBs) != len(model.DBs) {
		t.Fatalf("db count %d != %d", len(loaded.DBs), len(model.DBs))
	}
	// The infinite overflow edge must survive the round trip.
	last := loaded.Cfg.ErrorEdges[len(loaded.Cfg.ErrorEdges)-1]
	if !math.IsInf(last, 1) {
		t.Errorf("overflow edge decoded as %v, want +Inf", last)
	}
	// The loaded model must produce identical RDs on unseen queries.
	for _, q := range test[:40] {
		for i := range model.DBs {
			a, rhatA := model.RDFor(i, q.String(), q.NumTerms())
			b, rhatB := loaded.RDFor(i, q.String(), q.NumTerms())
			if rhatA != rhatB {
				t.Fatalf("estimates differ for %q on db %d: %v vs %v", q, i, rhatA, rhatB)
			}
			if a.Len() != b.Len() {
				t.Fatalf("RD supports differ for %q on db %d", q, i)
			}
			for vi := 0; vi < a.Len(); vi++ {
				if math.Abs(a.Value(vi)-b.Value(vi)) > 1e-12 || math.Abs(a.Prob(vi)-b.Prob(vi)) > 1e-12 {
					t.Fatalf("RDs differ for %q on db %d: %v vs %v", q, i, a, b)
				}
			}
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadModel(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bad); err == nil {
		t.Error("malformed JSON must fail")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"relevancy":"doc-frequency","dbs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(empty); err == nil {
		t.Error("model without databases must fail")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"relevancy":"martian","dbs":[{"name":"a"}],"summaries":[{"database":"a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(unknown); err == nil {
		t.Error("unknown relevancy must fail")
	}
}

func TestRegisterRelevancy(t *testing.T) {
	if err := RegisterRelevancy("custom-test-rel", func() estimate.Relevancy {
		return estimate.NewDocFrequency()
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterRelevancy("custom-test-rel", nil); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := RegisterRelevancy("doc-frequency", nil); err == nil {
		t.Error("registering a builtin name must fail")
	}
}

func TestObserveProbeRefinesModel(t *testing.T) {
	model, tb, test := buildTrainedModel(t)
	q := test[0]
	dbIdx := 0
	before, _ := model.RDFor(dbIdx, q.String(), q.NumTerms())

	// Feed many consistent observations far from the trained errors:
	// the RD must shift toward them.
	rhat := model.Rel.Estimate(model.Summaries.Summaries[dbIdx], q.String())
	if rhat <= 0 {
		// Pick a query with a positive estimate for this database.
		for _, cand := range test {
			rhat = model.Rel.Estimate(model.Summaries.Summaries[dbIdx], cand.String())
			if rhat > 0 {
				q = cand
				before, _ = model.RDFor(dbIdx, q.String(), q.NumTerms())
				break
			}
		}
	}
	if rhat <= 0 {
		t.Skip("no positive-estimate query found")
	}
	target := rhat * 3 // +200% error
	for i := 0; i < 5000; i++ {
		if err := model.ObserveProbe(dbIdx, q.String(), q.NumTerms(), target); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := model.RDFor(dbIdx, q.String(), q.NumTerms())
	if math.Abs(after.Mean()-target) >= math.Abs(before.Mean()-target) {
		t.Errorf("RD mean did not converge toward the observed value %v: before %v, after %v",
			target, before.Mean(), after.Mean())
	}
	if math.Abs(after.Mean()-target) > 0.2*target {
		t.Errorf("RD mean %v still far from the observed value %v after 5000 observations", after.Mean(), target)
	}
	// Bad indices and inputs fail cleanly.
	if err := model.ObserveProbe(-1, "x", 1, 1); err == nil {
		t.Error("negative index must fail")
	}
	if err := model.ObserveProbe(len(model.DBs), "x", 1, 1); err == nil {
		t.Error("out-of-range index must fail")
	}
	if err := model.ObserveProbe(0, q.String(), q.NumTerms(), -1); err == nil {
		t.Error("negative observation must fail")
	}
	_ = tb
}
