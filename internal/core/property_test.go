package core

import (
	"math"
	"testing"
	"testing/quick"

	"metaprobe/internal/stats"
)

// randomRDs builds a small random RD collection from raw fuzz bytes.
func randomRDs(raw []uint8, maxDBs int) []*RD {
	if len(raw) < 4 {
		return nil
	}
	n := 2 + int(raw[0])%(maxDBs-1)
	rds := make([]*RD, n)
	pos := 1
	next := func() uint8 {
		b := raw[pos%len(raw)]
		pos++
		return b
	}
	for i := range rds {
		m := 1 + int(next())%4
		vals := make([]float64, m)
		probs := make([]float64, m)
		for j := range vals {
			vals[j] = float64(int(next())%50)*10 + float64(j)*0.001
			probs[j] = float64(next()%100) + 1
		}
		rds[i] = MustRD(vals, probs)
	}
	return rds
}

// TestExpectedCorrectnessBounds: every expected-correctness quantity is
// a probability, and the partial metric dominates the absolute one for
// the same set (overlap credit ≥ exact-match credit).
func TestExpectedCorrectnessBounds(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		rds := randomRDs(raw, 6)
		if rds == nil {
			return true
		}
		k := 1 + int(kRaw)%(len(rds))
		set, eAbs := BestSet(Absolute, rds, k, BestSetOptions{})
		if len(set) != min(k, len(rds)) {
			return false
		}
		if eAbs < -probEpsilon || eAbs > 1+probEpsilon {
			return false
		}
		ePart := ExpectedPartial(rds, set)
		if ePart < eAbs-1e-9 {
			return false // partial credit can never be below absolute
		}
		// Set indices must be valid, sorted and distinct.
		for i, idx := range set {
			if idx < 0 || idx >= len(rds) {
				return false
			}
			if i > 0 && set[i-1] >= idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestMembershipSumsToK: Σᵢ P(dbᵢ ∈ top-k) = k exactly (the top-k set
// always has exactly k members).
func TestMembershipSumsToK(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		rds := randomRDs(raw, 6)
		if rds == nil {
			return true
		}
		k := 1 + int(kRaw)%len(rds)
		total := 0.0
		for i := range rds {
			total += MembershipProb(rds, i, k)
		}
		return math.Abs(total-float64(k)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestProbingToCompletionIsCertain: after probing every database, the
// best set has expected correctness exactly 1 (full knowledge).
func TestProbingToCompletionIsCertain(t *testing.T) {
	rng := stats.NewRNG(66)
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3)
		rds := make([]*RD, n)
		truths := make([]float64, n)
		for i := range rds {
			vals := []float64{float64(rng.Intn(40)), float64(40 + rng.Intn(40))}
			probs := []float64{0.3 + 0.4*rng.Float64(), 0.3}
			rds[i] = MustRD(vals, probs)
			truths[i] = vals[rng.Intn(2)]
		}
		for _, metric := range []Metric{Absolute, Partial} {
			sel := NewSelectionFromRDs(rds, metric, 2)
			probe := func(i int) (float64, error) { return truths[i], nil }
			out, err := APro(sel, probe, &Greedy{}, 1.0, -1)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Reached || math.Abs(out.Certainty-1) > 1e-9 {
				t.Fatalf("trial %d metric %v: full probing certainty %v (%+v)", trial, metric, out.Certainty, out)
			}
			// And the answer must be the true top-2.
			want := TopKByScore(truths, 2)
			for i := range want {
				if out.Set[i] != want[i] {
					t.Fatalf("trial %d: set %v, want %v (truths %v)", trial, out.Set, want, truths)
				}
			}
		}
	}
}

// TestCertaintyNeverDecreasesWithInformation: replacing a database's RD
// with an impulse drawn from its own support, then re-optimizing, can
// move the best set — but averaged over the RD's outcomes the best
// certainty cannot drop (the usefulness bound, tested here end to end
// on random instances for both metrics and several k).
func TestCertaintyNeverDecreasesWithInformation(t *testing.T) {
	rng := stats.NewRNG(67)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		rds := make([]*RD, n)
		for i := range rds {
			m := 2 + rng.Intn(2)
			vals := make([]float64, m)
			probs := make([]float64, m)
			for j := range vals {
				vals[j] = float64(rng.Intn(60)) + float64(j)*0.001
				probs[j] = rng.Float64() + 0.1
			}
			rds[i] = MustRD(vals, probs)
		}
		k := 1 + rng.Intn(2)
		metric := Metric(rng.Intn(2))
		sel := NewSelectionFromRDs(rds, metric, k)
		_, before := sel.Best()
		target := rng.Intn(n)
		g := &Greedy{}
		if u := g.Usefulness(sel, target); u < before-1e-9 {
			t.Fatalf("trial %d: expected usefulness %v below current certainty %v", trial, u, before)
		}
	}
}
