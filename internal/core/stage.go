package core

import (
	"runtime/metrics"
	"time"
)

// Hot-path stage names reported through a Selection's StageObserver.
// They partition where a selection's compute goes, mirroring the
// algorithmic structure of the paper: deriving RDs from the learned
// error model, the Poisson-binomial DP behind E[Cor], ranking probe
// candidates by expected usefulness, and the live probe itself.
const (
	// StageRDConvolve is RD derivation for all databases
	// (Model.RDFor across NewSelection — estimate, classify, convolve
	// the ED into a relevancy distribution).
	StageRDConvolve = "rd_convolve"
	// StageECorDP is the best-set search / E[Cor] evaluation
	// (Selection.Best → BestSet → MembershipProb's DP), as invoked at
	// the top level of the APro loop.
	StageECorDP = "ecor_dp"
	// StageRank is probe-candidate selection (Policy.Next /
	// Ranker.Rank). For the greedy policy this includes the
	// per-outcome hypothetical Best() evaluations of Figure 13, which
	// is exactly why it dominates: usefulness is E[Cor] under every
	// outcome of every candidate probe.
	StageRank = "rank"
	// StageProbe is live probe I/O — for the sequential loop the probe
	// call itself, for the concurrent executor the time the loop
	// spends blocked waiting for the probe it needs next.
	StageProbe = "probe"
)

// StageObserver receives one completed hot-path stage: its name, the
// wall time it took, and how many heap objects the process allocated
// while it ran. Implementations must be cheap and must not retain kv
// state per call; metaprobe binds an obs.StageRecorder here.
//
// Allocation counts come from one runtime/metrics read of
// /gc/heap/allocs:objects at each stage boundary. The counter is
// process-wide, so under concurrent selections a stage is charged
// with allocations of whatever else ran during it — exact in
// single-selection benchmarks, approximate attribution in concurrent
// serving. That trade keeps the accounting dependency-free and
// allocation-cheap; per-goroutine alloc counters do not exist in the
// runtime's public API.
type StageObserver func(stage string, seconds float64, allocObjects uint64)

// WithStageObserver attaches a stage observer and returns the
// selection for chaining. A nil observer (the default) makes
// BeginStage/EndStage single-branch no-ops, so disabled attribution
// costs one pointer comparison per stage boundary.
func (s *Selection) WithStageObserver(obs StageObserver) *Selection {
	s.stageObs = obs
	return s
}

// StageMark is an open stage interval returned by BeginStage.
type StageMark struct {
	start  time.Time
	allocs uint64
	active bool
}

// allocsSample is the runtime/metrics key for cumulative heap object
// allocations (stable since Go 1.16).
const allocsSample = "/gc/heap/allocs:objects"

// ReadHeapAllocs returns the process-wide cumulative heap allocation
// count. One runtime/metrics.Read of a single sample — no
// stop-the-world, unlike runtime.ReadMemStats. Exported so metaprobe
// can charge the RD-convolution stage (which runs inside
// NewSelection, before any observer can be attached) the same way.
func ReadHeapAllocs() uint64 {
	sample := [1]metrics.Sample{{Name: allocsSample}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}

// BeginStage opens a stage interval. Zero cost (one nil check) when
// no observer is attached.
func (s *Selection) BeginStage() StageMark {
	if s.stageObs == nil {
		return StageMark{}
	}
	return StageMark{start: time.Now(), allocs: ReadHeapAllocs(), active: true}
}

// EndStage closes a stage interval opened by BeginStage and reports
// it to the observer. Safe to call with the zero StageMark (no-op).
func (s *Selection) EndStage(m StageMark, stage string) {
	if !m.active || s.stageObs == nil {
		return
	}
	s.stageObs(stage, time.Since(m.start).Seconds(), ReadHeapAllocs()-m.allocs)
}
