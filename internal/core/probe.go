package core

import (
	"errors"
	"fmt"

	"metaprobe/internal/stats"
)

// ProbeFunc issues the live query to database i and returns the exact
// relevancy (the caller binds the query and the testbed).
type ProbeFunc func(i int) (float64, error)

// Policy chooses which database to probe next (the SelectDb step of
// the APro algorithm, Figure 11).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Next picks an unprobed database given the selection state and
	// the user-required certainty t; it must only return indices for
	// which s.Probed(i) is false.
	Next(s *Selection, t float64) (int, error)
}

// ProbeStep records one probing action.
type ProbeStep struct {
	// DB is the probed database's index.
	DB int
	// Value is the observed relevancy (meaningless when Err != nil).
	Value float64
	// Err is the probe failure, if any.
	Err error
	// Usefulness is the policy's expected usefulness of this probe at
	// the moment it was chosen, when the policy reports one (see
	// UsefulnessReporter); 0 otherwise.
	Usefulness float64
	// CertaintyAfter is E[Cor] of the best set after this step was
	// applied (unchanged from before the step when Err != nil).
	CertaintyAfter float64
}

// Outcome is the result of running APro on one query.
type Outcome struct {
	// Set is the selected k-set (database indices, ascending).
	Set []int
	// Certainty is E[Cor(Set)] at termination.
	Certainty float64
	// Initial is E[Cor] of the best set before any probing — the
	// RD-based starting point of the certainty trajectory.
	Initial float64
	// Steps are the probes performed, in order.
	Steps []ProbeStep
	// Reached reports whether Certainty met the user's threshold.
	Reached bool
}

// UsefulnessReporter is implemented by probe policies that compute an
// expected usefulness for the database they choose; APro records it in
// the outcome's steps so selection traces can show why each probe is
// picked. LastUsefulness refers to the most recent Next call.
type UsefulnessReporter interface {
	LastUsefulness() float64
}

// Ranker is implemented by probe policies that can rank several probe
// candidates at once, in the order Next would choose them on the
// current state. The speculative parallel APro (internal/probeexec)
// uses it to dispatch the top-m candidates concurrently; policies
// without it fall back to strictly sequential probing. Rank must
// return the same first element Next would return, so m=1 speculation
// is exactly the paper's greedy sequential loop.
type Ranker interface {
	// Rank returns up to m unprobed candidate databases in decreasing
	// expected-usefulness order along with each candidate's raw
	// usefulness; m <= 0 ranks all candidates.
	Rank(s *Selection, t float64, m int) (dbs []int, usefulness []float64, err error)
}

// Probes returns the number of successful probes performed.
func (o Outcome) Probes() int {
	n := 0
	for _, s := range o.Steps {
		if s.Err == nil {
			n++
		}
	}
	return n
}

// APro is the adaptive probing algorithm (Figure 11): starting from
// the RD-based state, repeatedly check whether some k-set reaches the
// user-required expected correctness t; if not, pick a database with
// the policy, probe it live, collapse its RD to an impulse, and try
// again. maxProbes < 0 means unbounded (bounded anyway by the number
// of databases).
//
// Failed probes mark the database unprobeable and continue; if the
// threshold remains unreachable after every database is probed or
// unprobeable, the best available set is returned with Reached=false
// and the accumulated probe errors.
func APro(s *Selection, probe ProbeFunc, policy Policy, t float64, maxProbes int) (Outcome, error) {
	if t < 0 || t > 1 {
		return Outcome{}, fmt.Errorf("core: certainty threshold %v outside [0,1]", t)
	}
	if probe == nil || policy == nil {
		return Outcome{}, fmt.Errorf("core: APro needs a probe function and a policy")
	}
	var out Outcome
	var probeErrs []error
	first := true
	for {
		mark := s.BeginStage()
		set, e := s.Best()
		s.EndStage(mark, StageECorDP)
		out.Set, out.Certainty = set, e
		// Every loop entry after a step re-evaluates the best set, so
		// this is the natural place to close out the trajectory: the
		// first evaluation is the RD-based starting certainty, later
		// ones are the certainty after the previous step.
		if first {
			out.Initial = e
			first = false
		} else if n := len(out.Steps); n > 0 {
			out.Steps[n-1].CertaintyAfter = e
		}
		if e >= t {
			out.Reached = true
			return out, nil
		}
		if len(s.Unprobed()) == 0 || (maxProbes >= 0 && out.Probes() >= maxProbes) {
			return out, errors.Join(probeErrs...)
		}
		mark = s.BeginStage()
		i, err := policy.Next(s, t)
		s.EndStage(mark, StageRank)
		if err != nil {
			return out, fmt.Errorf("core: probe policy %s: %w", policy.Name(), err)
		}
		if s.Probed(i) {
			return out, fmt.Errorf("core: policy %s chose already-probed database %d", policy.Name(), i)
		}
		usefulness := 0.0
		if ur, ok := policy.(UsefulnessReporter); ok {
			usefulness = ur.LastUsefulness()
		}
		mark = s.BeginStage()
		v, err := probe(i)
		s.EndStage(mark, StageProbe)
		if err != nil {
			s.MarkUnprobeable(i)
			step := ProbeStep{DB: i, Err: err, Usefulness: usefulness}
			out.Steps = append(out.Steps, step)
			probeErrs = append(probeErrs, err)
			continue
		}
		s.ApplyProbe(i, v)
		out.Steps = append(out.Steps, ProbeStep{DB: i, Value: v, Usefulness: usefulness})
	}
}

// Greedy is the paper's greedy probing policy (Section 5.4): probe the
// database whose expected usefulness — the outcome-weighted best
// achievable E[Cor] after the probe — is highest. With a cost function
// set, usefulness gains are divided by per-database probe cost
// (Section 5.2's extension to non-uniform costs).
type Greedy struct {
	// Cost returns the probe cost of database i; nil means uniform.
	Cost func(i int) float64

	// lastUsefulness is the raw (cost-unnormalized) usefulness of the
	// database most recently chosen by Next, for tracing. Per-call
	// state: share one Greedy per selection, not across goroutines
	// (the facade allocates a fresh policy per query).
	lastUsefulness float64
}

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// LastUsefulness implements UsefulnessReporter.
func (g *Greedy) LastUsefulness() float64 { return g.lastUsefulness }

// Usefulness computes the expected usefulness of probing database i:
// Σ_v P(rᵢ = v) · max_set E[Cor(set) | rᵢ = v] (Figure 13).
func (g *Greedy) Usefulness(s *Selection, i int) float64 {
	rd := s.RD(i)
	u := 0.0
	for vi := 0; vi < rd.Len(); vi++ {
		v, p := rd.Value(vi), rd.Prob(vi)
		s.withHypothesis(i, v, func() {
			_, e := s.Best()
			u += p * e
		})
	}
	return u
}

// Next implements Policy: the top-ranked candidate.
func (g *Greedy) Next(s *Selection, t float64) (int, error) {
	dbs, us, err := g.Rank(s, t, 1)
	if err != nil {
		return 0, err
	}
	g.lastUsefulness = us[0]
	return dbs[0], nil
}

// Rank implements Ranker: the top-m unprobed databases in the order
// Next would choose them, by repeated selection with Next's exact
// comparison rules (score above an epsilon margin wins; near-equal
// scores prefer the cheaper probe; remaining ties the lower index).
// Usefulness values are the raw (cost-unnormalized) expectations,
// matching LastUsefulness.
func (g *Greedy) Rank(s *Selection, t float64, m int) ([]int, []float64, error) {
	unprobed := s.Unprobed()
	if len(unprobed) == 0 {
		return nil, nil, fmt.Errorf("no unprobed database left")
	}
	_, current := s.Best()
	cost := func(i int) float64 {
		if g.Cost == nil {
			return 1
		}
		if c := g.Cost(i); c > 0 {
			return c
		}
		return 1
	}
	type candidate struct {
		i                int
		raw, score, cost float64
	}
	var cands []candidate
	for _, i := range unprobed {
		if s.RD(i).IsImpulse() {
			// Probing a known value cannot change anything; skip
			// unless nothing else is available.
			continue
		}
		raw := g.Usefulness(s, i)
		score := raw
		c := cost(i)
		if g.Cost != nil {
			// Normalize the *gain* by cost, not the absolute level:
			// two candidates with equal usefulness but different cost
			// should prefer the cheaper probe.
			score = (score - current) / c
		}
		cands = append(cands, candidate{i: i, raw: raw, score: score, cost: c})
	}
	if len(cands) == 0 {
		// All remaining RDs are impulses; probing is informationless
		// but legal — pick the first to make progress.
		return []int{unprobed[0]}, []float64{current}, nil
	}
	if m <= 0 || m > len(cands) {
		m = len(cands)
	}
	dbs := make([]int, 0, m)
	us := make([]float64, 0, m)
	picked := make([]bool, len(cands))
	for len(dbs) < m {
		best := -1
		bestScore, bestCost := 0.0, 0.0
		for ci, c := range cands {
			if picked[ci] {
				continue
			}
			switch {
			case best < 0,
				c.score > bestScore+probEpsilon,
				// On (near-)equal scores, prefer the cheaper probe.
				equalFloat(c.score, bestScore) && c.cost < bestCost-probEpsilon:
				best, bestScore, bestCost = ci, c.score, c.cost
			}
		}
		picked[best] = true
		dbs = append(dbs, cands[best].i)
		us = append(us, cands[best].raw)
	}
	return dbs, us, nil
}

// Random probes a uniformly random unprobed database — the naive
// baseline for the policy ablation (A1).
type Random struct {
	// RNG is the randomness source (required).
	RNG *stats.RNG
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Next implements Policy.
func (r *Random) Next(s *Selection, t float64) (int, error) {
	unprobed := s.Unprobed()
	if len(unprobed) == 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	return unprobed[r.RNG.Intn(len(unprobed))], nil
}

// ByEstimate probes databases in decreasing order of their initial
// estimate r̂ — the "trust the estimator" heuristic baseline.
type ByEstimate struct{}

// Name implements Policy.
func (ByEstimate) Name() string { return "by-estimate" }

// Next implements Policy.
func (ByEstimate) Next(s *Selection, t float64) (int, error) {
	best := -1
	for _, i := range s.Unprobed() {
		if best < 0 || s.Estimate(i) > s.Estimate(best) {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	return best, nil
}

// MaxEntropy probes the database whose RD carries the most uncertainty
// (highest Shannon entropy) — an information-theoretic baseline that
// ignores how the uncertainty interacts with the selection boundary.
type MaxEntropy struct{}

// Name implements Policy.
func (MaxEntropy) Name() string { return "max-entropy" }

// Next implements Policy.
func (MaxEntropy) Next(s *Selection, t float64) (int, error) {
	best := -1
	bestH := -1.0
	for _, i := range s.Unprobed() {
		if h := s.RD(i).Entropy(); h > bestH {
			best, bestH = i, h
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	return best, nil
}

// Optimal implements the probing policy that minimizes the expected
// number of probes to reach the threshold, by exhaustive expectimin
// over probe orders and outcomes. The paper notes its cost is O(n!)
// and impractical (Section 5.3); it is provided as the gold reference
// for the policy ablation on tiny testbeds.
type Optimal struct {
	// MaxDBs bounds the testbed size the recursion will accept
	// (default 7).
	MaxDBs int
}

// Name implements Policy.
func (o *Optimal) Name() string { return "optimal" }

// Next implements Policy.
func (o *Optimal) Next(s *Selection, t float64) (int, error) {
	maxDBs := o.MaxDBs
	if maxDBs == 0 {
		maxDBs = 7
	}
	if s.Len() > maxDBs {
		return 0, fmt.Errorf("optimal policy limited to %d databases, got %d", maxDBs, s.Len())
	}
	unprobed := s.Unprobed()
	if len(unprobed) == 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	best := -1
	bestCost := 0.0
	for _, i := range unprobed {
		cost := 1 + o.expectedRemaining(s, i, t)
		if best < 0 || cost < bestCost-probEpsilon {
			best, bestCost = i, cost
		}
	}
	return best, nil
}

// expectedRemaining returns E[#further probes after probing i], the
// expectimin recursion over i's outcomes.
func (o *Optimal) expectedRemaining(s *Selection, i int, t float64) float64 {
	rd := s.RD(i)
	total := 0.0
	for vi := 0; vi < rd.Len(); vi++ {
		v, p := rd.Value(vi), rd.Prob(vi)
		old := s.rds[i]
		s.rds[i] = Impulse(v)
		s.probed[i] = true

		if _, e := s.Best(); e >= t {
			// Reached: no further probes in this branch.
		} else if rest := s.Unprobed(); len(rest) == 0 {
			// Exhausted without reaching t: no further probes possible.
		} else {
			bestCost := -1.0
			for _, j := range rest {
				c := 1 + o.expectedRemaining(s, j, t)
				if bestCost < 0 || c < bestCost {
					bestCost = c
				}
			}
			total += p * bestCost
		}

		s.rds[i] = old
		s.probed[i] = false
	}
	return total
}
