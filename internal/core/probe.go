package core

import (
	"errors"
	"fmt"

	"metaprobe/internal/stats"
)

// ProbeFunc issues the live query to database i and returns the exact
// relevancy (the caller binds the query and the testbed).
type ProbeFunc func(i int) (float64, error)

// Policy chooses which database to probe next (the SelectDb step of
// the APro algorithm, Figure 11).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Next picks an unprobed database given the selection state and
	// the user-required certainty t; it must only return indices for
	// which s.Probed(i) is false.
	Next(s *Selection, t float64) (int, error)
}

// ProbeStep records one probing action.
type ProbeStep struct {
	// DB is the probed database's index.
	DB int
	// Value is the observed relevancy (meaningless when Err != nil).
	Value float64
	// Err is the probe failure, if any.
	Err error
	// Usefulness is the policy's expected usefulness of this probe at
	// the moment it was chosen, when the policy reports one (see
	// UsefulnessReporter); 0 otherwise.
	Usefulness float64
	// CertaintyAfter is E[Cor] of the best set after this step was
	// applied (unchanged from before the step when Err != nil).
	CertaintyAfter float64
}

// Outcome is the result of running APro on one query.
type Outcome struct {
	// Set is the selected k-set (database indices, ascending).
	Set []int
	// Certainty is E[Cor(Set)] at termination.
	Certainty float64
	// Initial is E[Cor] of the best set before any probing — the
	// RD-based starting point of the certainty trajectory.
	Initial float64
	// Steps are the probes performed, in order.
	Steps []ProbeStep
	// Reached reports whether Certainty met the user's threshold.
	Reached bool
	// ProbeErrs are the errors of failed probe attempts, in step
	// order. A selection can reach the threshold even after probes
	// failed and marked databases unprobeable; the errors are
	// surfaced here (and joined into APro's error return) on every
	// exit, so callers learn the selection degraded even when
	// Reached is true.
	ProbeErrs []error
}

// UsefulnessReporter is implemented by probe policies that compute an
// expected usefulness for the database they choose; APro records it in
// the outcome's steps so selection traces can show why each probe is
// picked. LastUsefulness refers to the most recent Next call.
type UsefulnessReporter interface {
	LastUsefulness() float64
}

// Ranker is implemented by probe policies that can rank several probe
// candidates at once, in the order Next would choose them on the
// current state. The speculative parallel APro (internal/probeexec)
// uses it to dispatch the top-m candidates concurrently; policies
// without it fall back to strictly sequential probing. Rank must
// return the same first element Next would return, so m=1 speculation
// is exactly the paper's greedy sequential loop.
type Ranker interface {
	// Rank returns up to m unprobed candidate databases in decreasing
	// expected-usefulness order along with each candidate's raw
	// usefulness; m <= 0 ranks all candidates.
	Rank(s *Selection, t float64, m int) (dbs []int, usefulness []float64, err error)
}

// Probes returns the number of successful probes performed.
func (o Outcome) Probes() int {
	n := 0
	for _, s := range o.Steps {
		if s.Err == nil {
			n++
		}
	}
	return n
}

// ErrNoInformativeProbe reports that every remaining unprobed RD is
// already an impulse: live probes can only confirm known values and
// cannot change E[Cor], so issuing them would be pure backend traffic.
// Policies return it (wrapped or bare) from Next/Rank; APro treats it
// as a graceful stop, returning the best set with Reached=false.
var ErrNoInformativeProbe = errors.New("core: no informative probe available")

// APro is the adaptive probing algorithm (Figure 11): starting from
// the RD-based state, repeatedly check whether some k-set reaches the
// user-required expected correctness t; if not, pick a database with
// the policy, probe it live, collapse its RD to an impulse, and try
// again. maxProbes < 0 means unbounded (bounded anyway by the number
// of databases).
//
// Failed probes mark the database unprobeable and continue; they are
// recorded in Outcome.ProbeErrs and joined into the returned error on
// every exit — including when the threshold is eventually reached —
// so callers always learn the selection degraded. If the threshold
// remains unreachable after every database is probed or unprobeable,
// or the policy reports ErrNoInformativeProbe, the best available set
// is returned with Reached=false.
func APro(s *Selection, probe ProbeFunc, policy Policy, t float64, maxProbes int) (Outcome, error) {
	var out Outcome
	err := AProInto(s, probe, policy, t, maxProbes, &out)
	return out, err
}

// AProInto is APro writing into a caller-owned Outcome, reusing its
// Set/Steps/ProbeErrs capacity — the steady-state form for callers
// that run many selections back to back (paired with Selection.Reuse
// it keeps the whole probe loop allocation-free). out is reset first.
func AProInto(s *Selection, probe ProbeFunc, policy Policy, t float64, maxProbes int, out *Outcome) error {
	*out = Outcome{Set: out.Set[:0], Steps: out.Steps[:0], ProbeErrs: out.ProbeErrs[:0]}
	if t < 0 || t > 1 {
		return fmt.Errorf("core: certainty threshold %v outside [0,1]", t)
	}
	if probe == nil || policy == nil {
		return fmt.Errorf("core: APro needs a probe function and a policy")
	}
	first := true
	for {
		mark := s.BeginStage()
		set, e := s.BestView()
		s.EndStage(mark, StageECorDP)
		out.Set = append(out.Set[:0], set...)
		out.Certainty = e
		// Every loop entry after a step re-evaluates the best set, so
		// this is the natural place to close out the trajectory: the
		// first evaluation is the RD-based starting certainty, later
		// ones are the certainty after the previous step.
		if first {
			out.Initial = e
			first = false
		} else if n := len(out.Steps); n > 0 {
			out.Steps[n-1].CertaintyAfter = e
		}
		if e >= t {
			out.Reached = true
			return errors.Join(out.ProbeErrs...)
		}
		if len(s.UnprobedView()) == 0 || (maxProbes >= 0 && out.Probes() >= maxProbes) {
			return errors.Join(out.ProbeErrs...)
		}
		mark = s.BeginStage()
		i, err := policy.Next(s, t)
		s.EndStage(mark, StageRank)
		if err != nil {
			if errors.Is(err, ErrNoInformativeProbe) {
				// Every remaining unprobed RD is an impulse: further
				// probes cannot move E[Cor], so stop with the best
				// available set instead of issuing informationless
				// backend traffic.
				return errors.Join(out.ProbeErrs...)
			}
			return fmt.Errorf("core: probe policy %s: %w", policy.Name(), err)
		}
		if s.Probed(i) {
			return fmt.Errorf("core: policy %s chose already-probed database %d", policy.Name(), i)
		}
		usefulness := 0.0
		if ur, ok := policy.(UsefulnessReporter); ok {
			usefulness = ur.LastUsefulness()
		}
		mark = s.BeginStage()
		v, err := probe(i)
		s.EndStage(mark, StageProbe)
		if err != nil {
			s.MarkUnprobeable(i)
			out.Steps = append(out.Steps, ProbeStep{DB: i, Err: err, Usefulness: usefulness})
			out.ProbeErrs = append(out.ProbeErrs, err)
			continue
		}
		s.ApplyProbe(i, v)
		out.Steps = append(out.Steps, ProbeStep{DB: i, Value: v, Usefulness: usefulness})
	}
}

// Greedy is the paper's greedy probing policy (Section 5.4): probe the
// database whose expected usefulness — the outcome-weighted best
// achievable E[Cor] after the probe — is highest. With a cost function
// set, usefulness gains are divided by per-database probe cost
// (Section 5.2's extension to non-uniform costs).
type Greedy struct {
	// Cost returns the probe cost of database i; nil means uniform.
	Cost func(i int) float64

	// lastUsefulness is the raw (cost-unnormalized) usefulness of the
	// database most recently chosen by Next, for tracing. Per-call
	// state: share one Greedy per selection, not across goroutines
	// (the facade allocates a fresh policy per query).
	lastUsefulness float64

	// Ranking buffers, reused across rank calls so the steady-state
	// probe loop does not allocate. Same sharing rule as
	// lastUsefulness: one Greedy per concurrent selection.
	candIdx   []int
	candRaw   []float64
	candScore []float64
	candCost  []float64
	picked    []bool
	dbs       []int
	us        []float64
}

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// LastUsefulness implements UsefulnessReporter.
func (g *Greedy) LastUsefulness() float64 { return g.lastUsefulness }

// Usefulness computes the expected usefulness of probing database i:
// Σ_v P(rᵢ = v) · max_set E[Cor(set) | rᵢ = v] (Figure 13). The
// hypothesis scope is an explicit begin/end pair, not a callback, so
// the per-support-value sweep does not allocate a closure.
func (g *Greedy) Usefulness(s *Selection, i int) float64 {
	rd := s.RD(i)
	u := 0.0
	for vi := 0; vi < rd.Len(); vi++ {
		p := rd.Prob(vi)
		old := s.beginHypothesisIdx(i, vi)
		_, e := s.best()
		s.endHypothesisIdx(i, old)
		u += p * e
	}
	return u
}

// Next implements Policy: the top-ranked candidate.
func (g *Greedy) Next(s *Selection, t float64) (int, error) {
	dbs, us, err := g.rank(s, t, 1)
	if err != nil {
		return 0, err
	}
	g.lastUsefulness = us[0]
	return dbs[0], nil
}

// Rank implements Ranker: the top-m unprobed databases in the order
// Next would choose them, by repeated selection with Next's exact
// comparison rules (score above an epsilon margin wins; near-equal
// scores prefer the cheaper probe; remaining ties the lower index).
// Usefulness values are the raw (cost-unnormalized) expectations,
// matching LastUsefulness. The returned slices are fresh copies the
// caller may keep.
func (g *Greedy) Rank(s *Selection, t float64, m int) ([]int, []float64, error) {
	dbs, us, err := g.rank(s, t, m)
	if err != nil {
		return nil, nil, err
	}
	return append([]int(nil), dbs...), append([]float64(nil), us...), nil
}

// rank is Rank over g's reusable buffers: the returned slices are
// owned by g and valid until the next rank call. Next uses it so the
// steady-state probe loop stays allocation-free.
func (g *Greedy) rank(s *Selection, t float64, m int) ([]int, []float64, error) {
	unprobed := s.UnprobedView()
	if len(unprobed) == 0 {
		return nil, nil, fmt.Errorf("no unprobed database left")
	}
	_, current := s.best()
	cost := func(i int) float64 {
		if g.Cost == nil {
			return 1
		}
		if c := g.Cost(i); c > 0 {
			return c
		}
		return 1
	}
	g.candIdx = g.candIdx[:0]
	g.candRaw = g.candRaw[:0]
	g.candScore = g.candScore[:0]
	g.candCost = g.candCost[:0]
	for _, i := range unprobed {
		if s.RD(i).IsImpulse() {
			// Probing a known value cannot change E[Cor]; skip it.
			continue
		}
		raw := g.Usefulness(s, i)
		score := raw
		c := cost(i)
		if g.Cost != nil {
			// Normalize the *gain* by cost, not the absolute level:
			// two candidates with equal usefulness but different cost
			// should prefer the cheaper probe.
			score = (score - current) / c
		}
		g.candIdx = append(g.candIdx, i)
		g.candRaw = append(g.candRaw, raw)
		g.candScore = append(g.candScore, score)
		g.candCost = append(g.candCost, c)
	}
	if len(g.candIdx) == 0 {
		// Every remaining unprobed RD is an impulse: a probe would be
		// informationless backend traffic. Report it so APro stops
		// instead of issuing probes that cannot change the selection.
		return nil, nil, ErrNoInformativeProbe
	}
	if m <= 0 || m > len(g.candIdx) {
		m = len(g.candIdx)
	}
	g.dbs = g.dbs[:0]
	g.us = g.us[:0]
	if cap(g.picked) < len(g.candIdx) {
		g.picked = make([]bool, len(g.candIdx))
	}
	g.picked = g.picked[:len(g.candIdx)]
	for ci := range g.picked {
		g.picked[ci] = false
	}
	for len(g.dbs) < m {
		best := -1
		bestScore, bestCost := 0.0, 0.0
		for ci := range g.candIdx {
			if g.picked[ci] {
				continue
			}
			score, c := g.candScore[ci], g.candCost[ci]
			switch {
			case best < 0,
				score > bestScore+probEpsilon,
				// On (near-)equal scores, prefer the cheaper probe.
				equalFloat(score, bestScore) && c < bestCost-probEpsilon:
				best, bestScore, bestCost = ci, score, c
			}
		}
		g.picked[best] = true
		g.dbs = append(g.dbs, g.candIdx[best])
		g.us = append(g.us, g.candRaw[best])
	}
	return g.dbs, g.us, nil
}

// Random probes a uniformly random unprobed database — the naive
// baseline for the policy ablation (A1).
type Random struct {
	// RNG is the randomness source (required).
	RNG *stats.RNG
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// Next implements Policy.
func (r *Random) Next(s *Selection, t float64) (int, error) {
	unprobed := s.Unprobed()
	if len(unprobed) == 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	return unprobed[r.RNG.Intn(len(unprobed))], nil
}

// ByEstimate probes databases in decreasing order of their initial
// estimate r̂ — the "trust the estimator" heuristic baseline.
type ByEstimate struct{}

// Name implements Policy.
func (ByEstimate) Name() string { return "by-estimate" }

// Next implements Policy.
func (ByEstimate) Next(s *Selection, t float64) (int, error) {
	best := -1
	for _, i := range s.Unprobed() {
		if best < 0 || s.Estimate(i) > s.Estimate(best) {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	return best, nil
}

// MaxEntropy probes the database whose RD carries the most uncertainty
// (highest Shannon entropy) — an information-theoretic baseline that
// ignores how the uncertainty interacts with the selection boundary.
type MaxEntropy struct{}

// Name implements Policy.
func (MaxEntropy) Name() string { return "max-entropy" }

// Next implements Policy.
func (MaxEntropy) Next(s *Selection, t float64) (int, error) {
	best := -1
	bestH := -1.0
	for _, i := range s.Unprobed() {
		if h := s.RD(i).Entropy(); h > bestH {
			best, bestH = i, h
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	return best, nil
}

// Optimal implements the probing policy that minimizes the expected
// number of probes to reach the threshold, by exhaustive expectimin
// over probe orders and outcomes. The paper notes its cost is O(n!)
// and impractical (Section 5.3); it is provided as the gold reference
// for the policy ablation on tiny testbeds.
type Optimal struct {
	// MaxDBs bounds the testbed size the recursion will accept
	// (default 7).
	MaxDBs int
}

// Name implements Policy.
func (o *Optimal) Name() string { return "optimal" }

// Next implements Policy.
func (o *Optimal) Next(s *Selection, t float64) (int, error) {
	maxDBs := o.MaxDBs
	if maxDBs == 0 {
		maxDBs = 7
	}
	if s.Len() > maxDBs {
		return 0, fmt.Errorf("optimal policy limited to %d databases, got %d", maxDBs, s.Len())
	}
	unprobed := s.Unprobed()
	if len(unprobed) == 0 {
		return 0, fmt.Errorf("no unprobed database left")
	}
	best := -1
	bestCost := 0.0
	for _, i := range unprobed {
		cost := 1 + o.expectedRemaining(s, i, t)
		if best < 0 || cost < bestCost-probEpsilon {
			best, bestCost = i, cost
		}
	}
	return best, nil
}

// expectedRemaining returns E[#further probes after probing i], the
// expectimin recursion over i's outcomes. Each "suppose we probed dbᵢ
// and saw its vi-th value" branch goes through the selection's probed
// hypothesis scope, which keeps the incremental caches (scratch,
// unprobed view) coherent instead of mutating rds/probed behind them.
func (o *Optimal) expectedRemaining(s *Selection, i int, t float64) float64 {
	rd := s.RD(i)
	total := 0.0
	for vi := 0; vi < rd.Len(); vi++ {
		p := rd.Prob(vi)
		s.withProbedHypothesisIdx(i, vi, func() {
			if _, e := s.Best(); e >= t {
				// Reached: no further probes in this branch.
				return
			}
			rest := s.Unprobed()
			if len(rest) == 0 {
				// Exhausted without reaching t: no further probes
				// possible.
				return
			}
			bestCost := -1.0
			for _, j := range rest {
				c := 1 + o.expectedRemaining(s, j, t)
				if bestCost < 0 || c < bestCost {
					bestCost = c
				}
			}
			total += p * bestCost
		})
	}
	return total
}
