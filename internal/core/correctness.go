package core

import (
	"fmt"
	"sort"

	"metaprobe/internal/stats"
)

// Metric selects the correctness definition of Section 3.2.
type Metric int

const (
	// Absolute correctness (Eq. 3): DBᵏ is correct only when it equals
	// the true top-k set exactly.
	Absolute Metric = iota
	// Partial correctness (Eq. 4): credit |DBᵏ ∩ DB_topk| / k.
	Partial
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Absolute:
		return "absolute"
	case Partial:
		return "partial"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Tie-breaking. The golden standard ranks databases by (relevancy
// descending, index ascending), so "dbᵢ beats dbⱼ" is the strict total
// order
//
//	beats(i, j) ⟺ rᵢ > rⱼ ∨ (rᵢ = rⱼ ∧ i < j).
//
// All the expected-correctness formulas below use exactly this order,
// which makes them exact (not approximate) under value ties. The trick
// is the lexicographic key κᵢ = (rᵢ, −i): beats(i, j) ⟺ κᵢ > κⱼ, and
// the events {κⱼ < K}, {κᵢ ≥ K} factor across independent databases.

// prKeyLess returns P(κ_j < K) for K = (v, pivot): j's key is below K
// when its value is below v, or equal with a larger index.
func prKeyLess(rd *RD, j int, v float64, pivot int) float64 {
	p := rd.PrLess(v)
	if j > pivot {
		p += rd.PrEq(v)
	}
	return p
}

// prKeyGE returns P(κ_i ≥ K) for K = (v, pivot).
func prKeyGE(rd *RD, i int, v float64, pivot int) float64 {
	p := rd.PrGreater(v)
	if i <= pivot {
		p += rd.PrEq(v)
	}
	return p
}

// prKeyGreater returns P(κ_i > K) for K = (v, pivot).
func prKeyGreater(rd *RD, i int, v float64, pivot int) float64 {
	p := rd.PrGreater(v)
	if i < pivot {
		p += rd.PrEq(v)
	}
	return p
}

// MembershipProb returns P(dbᵢ ∈ DB_topk): the probability that at
// most k−1 other databases beat dbᵢ. Computed exactly by conditioning
// on dbᵢ's value and evaluating a Poisson-binomial tail over the
// independent "beats" events (Section 5.1's machinery).
func MembershipProb(rds []*RD, i, k int) float64 {
	n := len(rds)
	if k >= n {
		return 1
	}
	if k <= 0 {
		return 0
	}
	total := 0.0
	beatProbs := make([]float64, 0, n-1)
	dp := make([]float64, k)
	for vi := 0; vi < rds[i].Len(); vi++ {
		v := rds[i].Value(vi)
		pv := rds[i].Prob(vi)
		beatProbs = beatProbs[:0]
		for j, rd := range rds {
			if j == i {
				continue
			}
			// P(beats(j, i) | rᵢ = v) = P(rⱼ > v) + [j < i]·P(rⱼ = v).
			p := rd.PrGreater(v)
			if j < i {
				p += rd.PrEq(v)
			}
			beatProbs = append(beatProbs, p)
		}
		total += pv * stats.PoissonBinomialAtMostInto(k-1, beatProbs, dp)
	}
	if total > 1 {
		total = 1
	}
	return total
}

// ExpectedPartial returns E[Cor_p(set)] (Eq. 6): the expected fraction
// of the set that belongs to the true top-k. Because
// Cor_p = |set ∩ topk|/k = Σ_{i∈set} 1{i ∈ topk} / k, the expectation
// is the mean of exact membership probabilities.
func ExpectedPartial(rds []*RD, set []int) float64 {
	if len(set) == 0 {
		return 0
	}
	k := len(set)
	total := 0.0
	for _, i := range set {
		total += MembershipProb(rds, i, k)
	}
	return total / float64(k)
}

// ExpectedAbsolute returns E[Cor_a(set)] = P(set = DB_topk) (Eq. 5):
// the probability that every member of the set beats every non-member.
// In key space that is P(min_{i∈set} κᵢ > max_{j∉set} κⱼ), evaluated
// exactly by conditioning on the minimum key K over the set:
//
//	P = Σ_K [ Π_{i∈set} P(κᵢ ≥ K) − Π_{i∈set} P(κᵢ > K) ] · Π_{j∉set} P(κⱼ < K)
//
// where K ranges over the achievable keys (v, i) of set members.
func ExpectedAbsolute(rds []*RD, set []int) float64 {
	n := len(rds)
	if len(set) == 0 {
		return 0
	}
	if len(set) >= n {
		return 1
	}
	inSet := make([]bool, n)
	for _, i := range set {
		inSet[i] = true
	}
	total := 0.0
	for _, pivot := range set {
		for vi := 0; vi < rds[pivot].Len(); vi++ {
			v := rds[pivot].Value(vi)
			// P(min over the set = K), with K = (v, pivot).
			pGE, pGT := 1.0, 1.0
			for _, i := range set {
				pGE *= prKeyGE(rds[i], i, v, pivot)
				pGT *= prKeyGreater(rds[i], i, v, pivot)
			}
			pMinEq := pGE - pGT
			if pMinEq <= 0 {
				continue
			}
			// P(every non-member is below K).
			pBelow := 1.0
			for j := 0; j < n && pBelow > 0; j++ {
				if !inSet[j] {
					pBelow *= prKeyLess(rds[j], j, v, pivot)
				}
			}
			total += pMinEq * pBelow
		}
	}
	if total > 1 {
		total = 1
	}
	return total
}

// Expected dispatches on the metric. The set must have the target size
// k; both formulas use len(set) as k.
func Expected(metric Metric, rds []*RD, set []int) float64 {
	switch metric {
	case Absolute:
		return ExpectedAbsolute(rds, set)
	case Partial:
		return ExpectedPartial(rds, set)
	default:
		panic(fmt.Sprintf("core: unknown metric %d", int(metric)))
	}
}

// BestSetOptions tunes the argmax search for the absolute metric.
type BestSetOptions struct {
	// ExtraCandidates widens the candidate pool beyond k when
	// maximizing E[Cor_a]: subsets are enumerated over the k +
	// ExtraCandidates databases with the highest membership
	// probability (default 8).
	ExtraCandidates int
	// ExhaustiveLimit enumerates all C(n, k) subsets when their count
	// is at most this limit (default 2000), making the search exact on
	// small testbeds.
	ExhaustiveLimit int
}

func (o *BestSetOptions) setDefaults() {
	if o.ExtraCandidates == 0 {
		o.ExtraCandidates = 8
	}
	if o.ExhaustiveLimit == 0 {
		o.ExhaustiveLimit = 2000
	}
}

// BestSet returns the k-set with the highest expected correctness and
// that expectation — the "DBᵏ with the highest E[Cor(DBᵏ)]" the
// RD-based method returns (Section 6.2) and APro's stopping quantity.
//
// For the partial metric the result is an exact argmax (E[Cor_p] is a
// sum of membership marginals, maximized by the top-k marginals). For
// the absolute metric subsets are enumerated exhaustively when C(n, k)
// is small and over the top marginal candidates otherwise.
func BestSet(metric Metric, rds []*RD, k int, opts BestSetOptions) ([]int, float64) {
	opts.setDefaults()
	n := len(rds)
	if k <= 0 || n == 0 {
		return nil, 0
	}
	if k >= n {
		set := make([]int, n)
		for i := range set {
			set[i] = i
		}
		return set, 1
	}

	marginals := make([]float64, n)
	for i := range rds {
		marginals[i] = MembershipProb(rds, i, k)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if marginals[order[a]] != marginals[order[b]] {
			return marginals[order[a]] > marginals[order[b]]
		}
		return order[a] < order[b]
	})

	if metric == Partial {
		set := append([]int(nil), order[:k]...)
		sort.Ints(set)
		total := 0.0
		for _, i := range set {
			total += marginals[i]
		}
		return set, total / float64(k)
	}

	// Absolute: enumerate candidate subsets.
	m := k + opts.ExtraCandidates
	if m > n {
		m = n
	}
	if stats.BinomialCoefficient(n, k) <= float64(opts.ExhaustiveLimit) {
		m = n
	}
	candidates := order[:m]

	bestE := -1.0
	best := make([]int, k)
	set := make([]int, k)
	chosen := make([]int, k)
	var recurse func(start, depth int)
	recurse = func(start, depth int) {
		if depth == k {
			copy(chosen, set)
			sort.Ints(chosen)
			e := ExpectedAbsolute(rds, chosen)
			if e > bestE {
				bestE = e
				copy(best, chosen)
			}
			return
		}
		for i := start; i <= len(candidates)-(k-depth); i++ {
			// Exact bound: a correct set has every member in the true
			// top-k, so E[Cor_a(S)] ≤ min_{i∈S} P(i ∈ topk). Candidates
			// are ordered by decreasing marginal, so once one cannot
			// beat the incumbent the whole suffix at this level goes
			// with it. The slack guards the boundary against
			// floating-point rounding in the two sides of the compare.
			if bestE >= 0 && marginals[candidates[i]]+pruneSlack <= bestE {
				break
			}
			set[depth] = candidates[i]
			recurse(i+1, depth+1)
		}
	}
	recurse(0, 0)
	return best, bestE
}

// pruneSlack pads the marginal-bound prune in the best-set search: the
// bound is exact in real arithmetic, and the slack keeps float rounding
// from pruning a subset that would have (numerically) won by an ulp.
const pruneSlack = 1e-12
