package core

import (
	"testing"

	"metaprobe/internal/corpus"
	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
	"metaprobe/internal/summary"
)

// buildTrainedModel constructs a small but realistic pipeline: 6
// health databases, exact summaries, 400 training queries.
func buildTrainedModel(t *testing.T) (*Model, *hidden.Testbed, []queries.Query) {
	t.Helper()
	w := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.02)[:6]
	tb, err := hidden.BuildTestbed(w, specs, 11)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := summary.BuildExact(tb)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(w, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := gen.TrainTest(stats.NewRNG(31), 200, 200, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Train(tb, sums, estimate.NewDocFrequency(), train, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return model, tb, test
}

func TestTrainBuildsEDsPerType(t *testing.T) {
	model, tb, _ := buildTrainedModel(t)
	if len(model.DBs) != tb.Len() {
		t.Fatalf("model has %d DBs, want %d", len(model.DBs), tb.Len())
	}
	for i, dm := range model.DBs {
		if dm.Name != tb.DB(i).Name() {
			t.Errorf("db %d name %q != %q", i, dm.Name, tb.DB(i).Name())
		}
		if len(dm.EDs) == 0 {
			t.Errorf("db %s has no EDs", dm.Name)
		}
		var total int64
		for key, ed := range dm.EDs {
			if ed.Observations() == 0 {
				t.Errorf("db %s type %v has empty ED", dm.Name, key)
			}
			if (key.Band == BandZero) != ed.Absolute {
				t.Errorf("db %s type %v: absolute flag mismatch", dm.Name, key)
			}
			total += ed.Observations()
		}
		if total != 400 {
			t.Errorf("db %s observed %d queries, want 400", dm.Name, total)
		}
	}
}

func TestRDForProducesValidRDs(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	for _, q := range test[:50] {
		for i := range model.DBs {
			rd, rhat := model.RDFor(i, q.String(), q.NumTerms())
			if rd == nil {
				t.Fatalf("nil RD for %q on db %d", q, i)
			}
			if err := rd.validate(); err != nil {
				t.Fatalf("invalid RD for %q on db %d: %v", q, i, err)
			}
			if rhat < 0 {
				t.Fatalf("negative estimate %v", rhat)
			}
			// With exact summaries, r̂ = 0 implies the database cannot
			// match the query (AND semantics): the RD must be an
			// impulse at 0 unless sparse-type fallback kicked in.
			if rhat == 0 && !rd.IsImpulse() {
				// Acceptable only if it still has all mass at tiny values.
				if rd.Value(rd.Len()-1) > 0 && rd.PrEq(0) < 0.5 {
					t.Errorf("query %q db %d: r̂=0 but RD=%v", q, i, rd)
				}
			}
		}
	}
}

func TestTrainValidation(t *testing.T) {
	model, tb, _ := buildTrainedModel(t)
	sums := model.Summaries
	rel := estimate.NewDocFrequency()
	if _, err := Train(tb, sums, rel, nil, DefaultConfig()); err == nil {
		t.Error("no training queries must fail")
	}
	short := &summary.Set{Summaries: sums.Summaries[:2]}
	if _, err := Train(tb, short, rel, []queries.Query{{Terms: []string{"a", "b"}}}, DefaultConfig()); err == nil {
		t.Error("summary/testbed length mismatch must fail")
	}
	empty, _ := hidden.NewTestbed(nil)
	if _, err := Train(empty, &summary.Set{}, rel, []queries.Query{{Terms: []string{"a"}}}, DefaultConfig()); err == nil {
		t.Error("empty testbed must fail")
	}
}

func TestTrainPropagatesProbeFailures(t *testing.T) {
	w := corpus.HealthWorld()
	specs := corpus.HealthTestbed(0.002)[:2]
	tb0, err := hidden.BuildTestbed(w, specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := summary.BuildExact(tb0)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap one database so every probe fails.
	flaky := hidden.NewFailEvery(tb0.DB(0), 1)
	tb, err := hidden.NewTestbed([]hidden.Database{flaky, tb0.DB(1)})
	if err != nil {
		t.Fatal(err)
	}
	train := []queries.Query{{Terms: []string{"cancer", "treatment"}}}
	if _, err := Train(tb, sums, estimate.NewDocFrequency(), train, DefaultConfig()); err == nil {
		t.Error("training against an unavailable database must fail")
	}
}

// TestRDSelectionBeatsBaseline is the paper's central claim (Figure
// 15) in miniature: on held-out queries, RD-based selection picks the
// true top-1 database at least as often as the raw term-independence
// ranking, and strictly more often over a reasonable sample.
func TestRDSelectionBeatsBaseline(t *testing.T) {
	model, tb, test := buildTrainedModel(t)
	rel := estimate.NewDocFrequency()

	baselineHits, rdHits := 0, 0
	for _, q := range test {
		qs := q.String()
		// Golden top-1 by actually querying every database.
		actual := make([]float64, tb.Len())
		for i := 0; i < tb.Len(); i++ {
			v, err := rel.Probe(tb.DB(i), qs)
			if err != nil {
				t.Fatal(err)
			}
			actual[i] = v
		}
		golden := TopKByScore(actual, 1)[0]

		sel := model.NewSelection(qs, q.NumTerms(), Absolute, 1)
		if sel.BaselineSelect()[0] == golden {
			baselineHits++
		}
		set, _ := sel.Best()
		if set[0] == golden {
			rdHits++
		}
	}
	t.Logf("baseline %d/%d, RD-based %d/%d", baselineHits, len(test), rdHits, len(test))
	if rdHits < baselineHits {
		t.Errorf("RD-based selection (%d) worse than baseline (%d)", rdHits, baselineHits)
	}
}
