package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// requireSameSelection pins a table-lookup selection against the
// from-scratch reference bit for bit: estimates, RD supports,
// probabilities and cumulative tails must be identical floats, and the
// selected set and its certainty must match exactly.
func requireSameSelection(t *testing.T, got, want *Selection, ctx string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d databases, want %d", ctx, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Estimate(i) != want.Estimate(i) {
			t.Fatalf("%s: db %d estimate %v, want %v", ctx, i, got.Estimate(i), want.Estimate(i))
		}
		g, w := got.RD(i), want.RD(i)
		if g.Len() != w.Len() {
			t.Fatalf("%s: db %d RD has %d points, want %d", ctx, i, g.Len(), w.Len())
		}
		for j := 0; j < w.Len(); j++ {
			if g.Value(j) != w.Value(j) || g.Prob(j) != w.Prob(j) {
				t.Fatalf("%s: db %d point %d (%v, %v), want (%v, %v)",
					ctx, i, j, g.Value(j), g.Prob(j), w.Value(j), w.Prob(j))
			}
		}
		for j := 0; j <= w.Len(); j++ {
			if g.cumLT[j] != w.cumLT[j] || g.cumGE[j] != w.cumGE[j] {
				t.Fatalf("%s: db %d cumulative %d differs", ctx, i, j)
			}
		}
		if err := g.validate(); err != nil {
			t.Fatalf("%s: db %d invalid RD: %v", ctx, i, err)
		}
	}
	gSet, gE := got.Best()
	wSet, wE := want.Best()
	if gE != wE || len(gSet) != len(wSet) {
		t.Fatalf("%s: best (%v, %v), want (%v, %v)", ctx, gSet, gE, wSet, wE)
	}
	for i := range wSet {
		if gSet[i] != wSet[i] {
			t.Fatalf("%s: best set %v, want %v", ctx, gSet, wSet)
		}
	}
}

// TestVersionSelectionMatchesModel is the core differential: for every
// held-out query, the RD-table path (ModelVersion.NewSelection) must
// produce exactly the selection the from-scratch path (RDFor per
// database) produces — same floats, same set — for both metrics and
// several k, with and without shell reuse.
func TestVersionSelectionMatchesModel(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	ver := NewModelVersion(model, "train", time.Now())
	shell := &Selection{}
	for _, metric := range []Metric{Absolute, Partial} {
		for _, k := range []int{1, 3} {
			for _, q := range test {
				qs := q.String()
				want := model.NewSelection(qs, q.NumTerms(), metric, k)
				requireSameSelection(t, ver.NewSelection(qs, q.NumTerms(), metric, k), want, qs)
				// The recycled-shell path must be identical to the fresh one.
				requireSameSelection(t, ver.FillSelection(shell, qs, q.NumTerms(), metric, k), want, qs+" (reused shell)")
				shell.Release()
			}
		}
	}
}

// pickRetrainKey deterministically picks a trusted relative-band key
// from db's ED map — the kind of key an online refresh retrains.
func pickRetrainKey(t *testing.T, m *Model, dbIdx int) TypeKey {
	t.Helper()
	best, found := TypeKey{}, false
	for key, ed := range m.DBs[dbIdx].EDs {
		if key.Band == BandZero || ed.Observations() < m.Cfg.MinObservations {
			continue
		}
		if !found || key.Terms < best.Terms || (key.Terms == best.Terms && key.Band < best.Band) {
			best, found = key, true
		}
	}
	if !found {
		t.Fatalf("db %d has no trusted relative-band ED to retrain", dbIdx)
	}
	return best
}

// cowRefresh replicates the facade's refresh commit: a successor model
// sharing every DBModel pointer except dbIdx's, which shares every ED
// pointer (and the pooled ED) except the retrained key's. Returns the
// model and the retrained key.
func cowRefresh(t *testing.T, m *Model, dbIdx int) (*Model, TypeKey) {
	t.Helper()
	key := pickRetrainKey(t, m, dbIdx)
	next := &Model{Cfg: m.Cfg, Rel: m.Rel, Summaries: m.Summaries, DBs: make([]*DBModel, len(m.DBs))}
	copy(next.DBs, m.DBs)
	src := m.DBs[dbIdx]
	dm := &DBModel{Name: src.Name, Pooled: src.Pooled, EDs: make(map[TypeKey]*ED, len(src.EDs))}
	for k, ed := range src.EDs {
		dm.EDs[k] = ed
	}
	dm.EDs[key] = src.EDs[key].Clone()
	next.DBs[dbIdx] = dm
	return next, key
}

// TestRDTableRefreshSwapCOW checks the copy-on-write derivation across
// ModelVersion.Next after a refresh-style commit: untouched databases
// share their table rows by pointer, the retrained key's row is
// rebuilt, the retrained database's other rows stay shared, and both
// the old and new versions keep serving selections identical to their
// own model's from-scratch path.
func TestRDTableRefreshSwapCOW(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	ver := NewModelVersion(model, "train", time.Now())
	const dbIdx = 0
	nm, key := cowRefresh(t, model, dbIdx)
	next := ver.Next(nm, "refresh", nm.DBs[dbIdx].Name, time.Now())

	ot, nt := ver.rdtab, next.rdtab
	for db := range model.DBs {
		for k := 0; k < nt.nKeys; k++ {
			oldRow := ot.rows[db*ot.nKeys+k].Load()
			newRow := nt.rows[db*nt.nKeys+k].Load()
			if newRow == nil {
				t.Fatalf("db %d key %v: prebuild left a nil row", db, keyAt(k))
			}
			retrained := db == dbIdx && keyAt(k) == key
			if retrained {
				if newRow == oldRow {
					t.Fatalf("retrained key %v row shared across Next", key)
				}
				if newRow.kind == rdEntryCold {
					t.Fatalf("retrained key %v rebuilt as cold", key)
				}
			} else if newRow != oldRow {
				t.Fatalf("db %d key %v: untouched row rebuilt instead of shared", db, keyAt(k))
			}
		}
	}

	// Both versions stay coherent with their own model.
	for _, q := range test[:30] {
		qs := q.String()
		requireSameSelection(t, next.NewSelection(qs, q.NumTerms(), Absolute, 2),
			nm.NewSelection(qs, q.NumTerms(), Absolute, 2), qs+" (new version)")
		requireSameSelection(t, ver.NewSelection(qs, q.NumTerms(), Absolute, 2),
			model.NewSelection(qs, q.NumTerms(), Absolute, 2), qs+" (old version)")
	}
}

// TestObserveProbeInvalidatesRDTable checks RCU coherence with online
// refinement: folding a probe into the version clears the refined
// database's rows, and the next selection — rebuilt lazily from the
// mutated histograms — again matches the from-scratch path exactly.
func TestObserveProbeInvalidatesRDTable(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	ver := NewModelVersion(model, "train", time.Now())
	for n, q := range test[:40] {
		qs := q.String()
		// Warm the rows, refine, then check invalidation and rebuild.
		ver.NewSelection(qs, q.NumTerms(), Absolute, 2)
		dbIdx := n % len(model.DBs)
		if err := ver.ObserveProbe(dbIdx, qs, q.NumTerms(), float64(n%9)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < ver.rdtab.nKeys; k++ {
			if ver.rdtab.rows[dbIdx*ver.rdtab.nKeys+k].Load() != nil {
				t.Fatalf("db %d key %v row not invalidated after ObserveProbe", dbIdx, keyAt(k))
			}
		}
		requireSameSelection(t, ver.NewSelection(qs, q.NumTerms(), Absolute, 2),
			model.NewSelection(qs, q.NumTerms(), Absolute, 2), qs+" (after refinement)")
	}
}

// TestVersionSwapUnderTraffic hammers table-lookup fills against
// concurrent online refinement and refresh-style version swaps; run
// with -race it proves selections never see a torn or stale row. Fills
// and ED mutation are serialized by a mutex (the facade's modelMu
// contract); version publication itself needs no coordination.
func TestVersionSwapUnderTraffic(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	var cur atomic.Pointer[ModelVersion]
	cur.Store(NewModelVersion(model, "train", time.Now()))
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sel := &Selection{}
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				q := test[(seed*31+n)%len(test)]
				qs := q.String()
				mu.Lock()
				v := cur.Load()
				v.FillSelection(sel, qs, q.NumTerms(), Absolute, 2)
				ref := v.Model.NewSelection(qs, q.NumTerms(), Absolute, 2)
				mu.Unlock()
				requireSameSelection(t, sel, ref, qs+" (under swap)")
				sel.Release()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for n := 0; n < 150; n++ {
			q := test[n%len(test)]
			mu.Lock()
			v := cur.Load()
			if err := v.ObserveProbe(n%len(v.Model.DBs), q.String(), q.NumTerms(), float64(n%7)); err != nil {
				t.Error(err)
			}
			if n%10 == 9 {
				dbIdx := n % len(v.Model.DBs)
				nm, _ := cowRefresh(t, v.Model, dbIdx)
				cur.Store(v.Next(nm, "refresh", nm.DBs[dbIdx].Name, time.Now()))
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
}

// TestReuseDoesNotAliasTableState checks the read-only contract around
// shared table RDs: a selection built from another via Reuse must own
// its mutable state (probed impulses, table-derived scaled supports),
// so refilling or probing the original never changes the copy.
func TestReuseDoesNotAliasTableState(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	ver := NewModelVersion(model, "train", time.Now())
	q1, q2 := test[0], test[1]
	tmpl := ver.NewSelection(q1.String(), q1.NumTerms(), Absolute, 2)
	tmpl.ApplyProbe(0, 3.5)

	cp := &Selection{}
	cp.Reuse(tmpl)
	snapVals := make([][]float64, cp.Len())
	snapProbs := make([][]float64, cp.Len())
	for i := 0; i < cp.Len(); i++ {
		snapVals[i] = cp.RD(i).Support()
		snapProbs[i] = append([]float64(nil), cp.RD(i).probs...)
	}

	// Clobber the original: refill it for a different query (rewriting
	// its derived buffers and impulses in place) and probe it again.
	ver.FillSelection(tmpl, q2.String(), q2.NumTerms(), Absolute, 2)
	tmpl.ApplyProbe(0, 99.0)

	for i := 0; i < cp.Len(); i++ {
		rd := cp.RD(i)
		if rd.Len() != len(snapVals[i]) {
			t.Fatalf("db %d: copy's RD length changed after original was refilled", i)
		}
		for j := range snapVals[i] {
			if rd.Value(j) != snapVals[i][j] || rd.Prob(j) != snapProbs[i][j] {
				t.Fatalf("db %d point %d: copy aliased the original's buffers", i, j)
			}
		}
	}
}

// TestRDForSharesZeroImpulse checks the cold-regime fix: a database
// with no usable error model and r̂ = 0 — by far the most common cold
// case — serves the shared read-only impulse instead of allocating one
// per query.
func TestRDForSharesZeroImpulse(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	nm := model.Clone()
	for _, dm := range nm.DBs {
		for key := range dm.EDs {
			if key.Band == BandZero {
				delete(dm.EDs, key)
			}
		}
	}
	checked := false
	for _, q := range test {
		qs := q.String()
		for i := range nm.DBs {
			if nm.Rel.Estimate(nm.Summaries.Summaries[i], qs) != 0 {
				continue
			}
			rd, rhat := nm.RDFor(i, qs, q.NumTerms())
			if rhat != 0 || rd != zeroImpulse {
				t.Fatalf("cold r̂=0 regime returned %v (r̂=%v), want the shared zero impulse", rd, rhat)
			}
			again, _ := nm.RDFor(i, qs, q.NumTerms())
			if again != rd {
				t.Fatalf("cold r̂=0 regime allocated a fresh impulse on repeat")
			}
			checked = true
		}
		if checked {
			break
		}
	}
	if !checked {
		t.Skip("no (db, query) pair with r̂ = 0 in the testbed")
	}
}

// TestFillSelectionSteadyStateAllocs guards the table-lookup fill's
// allocation behavior: once a shell has warmed up, refilling it for new
// queries must allocate nothing beyond the relevancy estimator's own
// per-call cost (tokenization), which the from-scratch path pays too.
func TestFillSelectionSteadyStateAllocs(t *testing.T) {
	model, _, test := buildTrainedModel(t)
	ver := NewModelVersion(model, "train", time.Now())
	qs := make([]string, 8)
	nt := make([]int, 8)
	for i, q := range test[:8] {
		qs[i], nt[i] = q.String(), q.NumTerms()
	}
	sel := &Selection{}
	for i := range qs {
		ver.FillSelection(sel, qs[i], nt[i], Absolute, 2)
	}
	var qi int
	estOnly := testing.AllocsPerRun(100, func() {
		j := qi % len(qs)
		qi++
		for i := range model.DBs {
			model.Rel.Estimate(model.Summaries.Summaries[i], qs[j])
		}
	})
	qi = 0
	fill := testing.AllocsPerRun(100, func() {
		j := qi % len(qs)
		qi++
		ver.FillSelection(sel, qs[j], nt[j], Absolute, 2)
	})
	if fill > estOnly {
		t.Fatalf("steady-state FillSelection allocates %v objects per op, want at most the estimator's %v", fill, estOnly)
	}
}
