package core

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

// TestAProOutcomeTrajectory pins down the observability contract of
// APro: Initial is the RD-based certainty before probing, every step
// carries the greedy usefulness that chose it and the certainty after
// it was applied, and the last step's CertaintyAfter equals the final
// certainty.
func TestAProOutcomeTrajectory(t *testing.T) {
	sel := NewSelectionFromRDs(example6RDs(), Absolute, 1)
	_, e0 := sel.Best()
	probe := func(i int) (float64, error) {
		// db1 turns out to hold 150 matching documents.
		if i == 0 {
			return 150, nil
		}
		return 130, nil
	}
	out, err := APro(sel, probe, &Greedy{}, 0.8, -1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Initial != e0 {
		t.Errorf("Initial = %v, want pre-probe certainty %v", out.Initial, e0)
	}
	if len(out.Steps) == 0 {
		t.Fatal("expected at least one probe")
	}
	// Example 6: greedy probes db1 first, with usefulness 0.84.
	if out.Steps[0].DB != 0 {
		t.Errorf("first probe hit db%d, want db1", out.Steps[0].DB+1)
	}
	if math.Abs(out.Steps[0].Usefulness-0.84) > 1e-12 {
		t.Errorf("first probe usefulness = %v, want 0.84", out.Steps[0].Usefulness)
	}
	last := out.Steps[len(out.Steps)-1]
	if last.CertaintyAfter != out.Certainty {
		t.Errorf("last CertaintyAfter = %v, want final certainty %v", last.CertaintyAfter, out.Certainty)
	}
	// Replay the steps on a fresh selection: each recorded
	// CertaintyAfter must match the recomputed best-set certainty.
	replay := NewSelectionFromRDs(example6RDs(), Absolute, 1)
	for i, step := range out.Steps {
		replay.ApplyProbe(step.DB, step.Value)
		if _, e := replay.Best(); math.Abs(e-step.CertaintyAfter) > 1e-12 {
			t.Errorf("step %d: CertaintyAfter = %v, recomputed %v", i, step.CertaintyAfter, e)
		}
	}
}

// TestAProFailedProbeKeepsCertainty checks that a failed probe's
// CertaintyAfter reports the unchanged certainty (marking a database
// unprobeable does not move E[Cor]).
func TestAProFailedProbeKeepsCertainty(t *testing.T) {
	rds := []*RD{
		MustRD([]float64{50, 100}, []float64{0.5, 0.5}),
		MustRD([]float64{60, 90}, []float64{0.5, 0.5}),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	_, e0 := sel.Best()
	calls := 0
	probe := func(i int) (float64, error) {
		calls++
		if calls == 1 {
			return 0, fmt.Errorf("down")
		}
		return 100, nil
	}
	out, err := APro(sel, probe, &Greedy{}, 0.99, -1)
	if err != nil && len(out.Set) == 0 {
		t.Fatal(err)
	}
	var failed *ProbeStep
	for i := range out.Steps {
		if out.Steps[i].Err != nil {
			failed = &out.Steps[i]
			break
		}
	}
	if failed == nil {
		t.Fatal("expected a failed step")
	}
	if failed != &out.Steps[0] {
		t.Fatalf("first step should have failed, got %+v", out.Steps)
	}
	if failed.CertaintyAfter != e0 {
		t.Errorf("failed step CertaintyAfter = %v, want unchanged %v", failed.CertaintyAfter, e0)
	}
}

// TestAProInitialSetWhenThresholdAlreadyMet: a selection that already
// meets t records Initial == Certainty and no steps.
func TestAProInitialSetWhenThresholdAlreadyMet(t *testing.T) {
	rds := []*RD{Impulse(100), Impulse(10)}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	out, err := APro(sel, func(int) (float64, error) { return 0, errors.New("unreachable") }, &Greedy{}, 0.5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) != 0 {
		t.Errorf("probed %d times despite met threshold", len(out.Steps))
	}
	if out.Initial != out.Certainty {
		t.Errorf("Initial = %v, Certainty = %v; must agree with zero probes", out.Initial, out.Certainty)
	}
}

// TestGreedyNextAllImpulses: when every unprobed RD is an impulse,
// Next reports ErrNoInformativeProbe — a probe could only confirm a
// known value, so there is no candidate worth choosing.
func TestGreedyNextAllImpulses(t *testing.T) {
	rds := []*RD{Impulse(100), Impulse(90)}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	g := &Greedy{}
	if _, err := g.Next(sel, 0.999); !errors.Is(err, ErrNoInformativeProbe) {
		t.Fatalf("Next over impulses: err = %v, want ErrNoInformativeProbe", err)
	}
}
