package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"metaprobe/internal/estimate"
	"metaprobe/internal/summary"
)

// tinyModel hand-builds the smallest valid model, with bin edges that
// exercise the encoding's hard cases: infinities on both sides and a
// legitimate finite math.MaxFloat64 (which the legacy sentinel
// encoding could not distinguish from +Inf).
func tinyModel(t *testing.T) *Model {
	t.Helper()
	return tinyModelEdges(t, []float64{math.Inf(-1), -1, 0, 1, math.MaxFloat64, math.Inf(1)})
}

func tinyModelEdges(t *testing.T, errorEdges []float64) *Model {
	t.Helper()
	cfg := Config{
		Classifier:      Classifier{Threshold: 100, MaxTerms: 2},
		ErrorEdges:      errorEdges,
		AbsoluteEdges:   []float64{0, 1, 10, math.Inf(1)},
		UseBinMean:      true,
		MinObservations: 1,
	}
	ed, err := NewED(cfg.ErrorEdges, false, cfg.UseBinMean)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{{10, 12}, {10, 5}, {20, 60}, {8, 8}} {
		if err := ed.Observe(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	zed, err := NewED(cfg.AbsoluteEdges, true, cfg.UseBinMean)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 0, 3, 12} {
		if err := zed.Observe(0, v); err != nil {
			t.Fatal(err)
		}
	}
	pooled, err := NewED(cfg.ErrorEdges, false, cfg.UseBinMean)
	if err != nil {
		t.Fatal(err)
	}
	if err := pooled.Observe(10, 11); err != nil {
		t.Fatal(err)
	}
	return &Model{
		Cfg: cfg,
		Rel: estimate.NewDocFrequency(),
		Summaries: &summary.Set{Summaries: []*summary.Summary{{
			Database: "db-a", Size: 100, DocCount: 100,
			DF: map[string]int{"cancer": 10, "heart": 5},
		}}},
		DBs: []*DBModel{{
			Name: "db-a",
			EDs: map[TypeKey]*ED{
				{Terms: 1, Band: BandLow}:  ed,
				{Terms: 1, Band: BandZero}: zed,
			},
			Pooled: pooled,
		}},
	}
}

// TestInfEdgesRoundTrip: format-2 snapshots encode infinities as the
// strings "+Inf"/"-Inf", so a legitimate finite math.MaxFloat64 edge
// survives a round trip un-promoted — the ambiguity that motivated the
// format bump.
func TestInfEdgesRoundTrip(t *testing.T) {
	m := tinyModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, info, err := LoadModelInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != FormatVersion {
		t.Errorf("snapshot format %d, want %d", info.Format, FormatVersion)
	}
	if info.SavedAt.IsZero() || !strings.HasPrefix(info.Checksum, "sha256:") {
		t.Errorf("snapshot metadata incomplete: %+v", info)
	}
	edges := loaded.Cfg.ErrorEdges
	if !math.IsInf(edges[0], -1) {
		t.Errorf("edge 0 = %v, want -Inf", edges[0])
	}
	if edges[4] != math.MaxFloat64 {
		t.Errorf("edge 4 = %v, want MaxFloat64 kept finite", edges[4])
	}
	if !math.IsInf(edges[5], 1) {
		t.Errorf("edge 5 = %v, want +Inf", edges[5])
	}
	// The EDs' own histogram edges round-trip the same way.
	hist := loaded.DBs[0].EDs[TypeKey{Terms: 1, Band: BandLow}].Hist
	if !math.IsInf(hist.Edges[0], -1) || hist.Edges[4] != math.MaxFloat64 || !math.IsInf(hist.Edges[5], 1) {
		t.Errorf("ED edges mangled: %v", hist.Edges)
	}
	// The file itself must never contain a bare MaxFloat64 standing in
	// for infinity: the only MaxFloat64 occurrences are our real edge.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"+Inf"`) || !strings.Contains(string(data), `"-Inf"`) {
		t.Error("snapshot does not use string-encoded infinities")
	}
}

// TestLegacySentinelEdgesStillLoad: pre-format-2 files encoded ±Inf as
// ±math.MaxFloat64; loading one must map the sentinels back.
func TestLegacySentinelEdgesStillLoad(t *testing.T) {
	// No finite MaxFloat64 edge here: a legacy file cannot represent
	// one next to a real infinity — that ambiguity is the point.
	m := tinyModelEdges(t, []float64{math.Inf(-1), -1, 0, 1, math.Inf(1)})
	// Render the modern payload, then rewrite it the way the old code
	// did: bare sentinel numbers instead of the Inf strings.
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	_, info, err := LoadModelInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := string(data)
	// Strip the envelope down to the bare model object (legacy files
	// had no envelope) by re-extracting the payload.
	start := strings.Index(payload, `"model": {`)
	if start < 0 {
		t.Fatal("unexpected snapshot layout")
	}
	modelJSON := payload[start+len(`"model": `) : strings.LastIndex(payload, "}")]
	sentinel := fmt.Sprintf("%v", math.MaxFloat64)
	legacyJSON := strings.ReplaceAll(modelJSON, `"+Inf"`, sentinel)
	legacyJSON = strings.ReplaceAll(legacyJSON, `"-Inf"`, "-"+sentinel)
	legacyPath := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacyPath, []byte(legacyJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, legacyInfo, err := LoadModelInfo(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if legacyInfo.Format != 1 {
		t.Errorf("legacy file reported format %d, want 1", legacyInfo.Format)
	}
	edges := loaded.Cfg.ErrorEdges
	if !math.IsInf(edges[0], -1) || !math.IsInf(edges[4], 1) {
		t.Errorf("legacy sentinels not mapped to infinities: %v", edges)
	}
	hist := loaded.DBs[0].EDs[TypeKey{Terms: 1, Band: BandLow}].Hist
	if !math.IsInf(hist.Edges[0], -1) || !math.IsInf(hist.Edges[4], 1) {
		t.Errorf("legacy ED sentinels not mapped: %v", hist.Edges)
	}
	_ = info
}

// TestSaveRejectsNaNEdges: NaN has no unambiguous encoding; Save must
// fail loudly rather than write a snapshot that cannot load.
func TestSaveRejectsNaNEdges(t *testing.T) {
	m := tinyModel(t)
	m.Cfg.ErrorEdges = append([]float64(nil), m.Cfg.ErrorEdges...)
	m.Cfg.ErrorEdges[2] = math.NaN()
	if err := m.Save(filepath.Join(t.TempDir(), "m.json")); err == nil {
		t.Error("saving NaN edges must fail")
	}
}

// TestCrashSafety simulates the two crash windows of a snapshot write
// and checks that neither can lose the previous good snapshot.
func TestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m := tinyModel(t)
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash window 1: between temp-file write and rename. The temp file
	// (possibly truncated) is left behind; the snapshot at path is
	// untouched and must keep loading.
	leftover := filepath.Join(dir, ".model.json.tmp-12345")
	if err := os.WriteFile(leftover, good[:len(good)/3], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err != nil {
		t.Fatalf("leftover temp file broke the good snapshot: %v", err)
	}

	// Crash window 2: a torn in-place write (what Save's rename
	// protocol prevents). A truncated snapshot must be rejected with a
	// diagnosis, not silently half-loaded.
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(torn); err == nil {
		t.Error("truncated snapshot must fail to load")
	} else if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("truncation error should say so: %v", err)
	}

	// Flipping payload bytes without updating the checksum is caught.
	corrupt := strings.Replace(string(good), `"db-a"`, `"db-x"`, 1)
	corruptPath := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corruptPath, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(corruptPath); err == nil {
		t.Error("checksum-failing snapshot must fail to load")
	} else if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Errorf("corruption error should name the checksum: %v", err)
	}

	// An envelope with no payload is diagnosed, not nil-dereferenced.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"format":2,"checksum":"sha256:00"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(empty); err == nil {
		t.Error("payload-less envelope must fail to load")
	}

	// A future format is refused by name, so operators see a version
	// skew instead of a JSON soup error.
	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"format":99,"model":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(future); err == nil {
		t.Error("future-format snapshot must fail to load")
	} else if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), fmt.Sprint(FormatVersion)) {
		t.Errorf("format-skew error should name both versions: %v", err)
	}

	// Saving over an existing snapshot replaces it atomically and works
	// repeatedly (the rename path, not a create-once path).
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRegisterAndLoad drives the registry mutex under -race:
// registrations and factory lookups (via LoadModel) in parallel.
func TestConcurrentRegisterAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if err := tinyModel(t).Save(path); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					name := fmt.Sprintf("race-rel-%d-%d", w, i)
					if err := RegisterRelevancy(name, func() estimate.Relevancy { return estimate.NewDocFrequency() }); err != nil {
						t.Errorf("RegisterRelevancy(%s): %v", name, err)
						return
					}
				} else if _, err := LoadModel(path); err != nil {
					t.Errorf("LoadModel: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
