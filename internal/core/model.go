package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/summary"
)

// Config parameterizes model training.
type Config struct {
	// Classifier is the query-type decision tree (default: the paper's
	// threshold-100, up-to-4-terms tree).
	Classifier Classifier
	// ErrorEdges are the relative-error histogram bins (default
	// DefaultErrorEdges).
	ErrorEdges []float64
	// AbsoluteEdges are the bins for the r̂ = 0 band (default
	// DefaultAbsoluteEdges).
	AbsoluteEdges []float64
	// UseBinMean selects per-bin observed means as RD support values
	// (default true; false = midpoints, ablation A3).
	UseBinMean bool
	// MinObservations is the minimum training observations a
	// (database, type) ED needs before it is trusted; sparser types
	// fall back to the database's pooled ED (default 10).
	MinObservations int64
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation (document-frequency relevancy).
func DefaultConfig() Config {
	return Config{
		Classifier:      DefaultClassifier(),
		ErrorEdges:      DefaultErrorEdges(),
		AbsoluteEdges:   DefaultAbsoluteEdges(),
		UseBinMean:      true,
		MinObservations: 10,
	}
}

// SimilarityConfig returns a configuration suited to the
// document-similarity relevancy definition (cosine values in [0, 1]).
func SimilarityConfig() Config {
	return Config{
		Classifier:      Classifier{Threshold: 0.3, MaxTerms: 4},
		ErrorEdges:      SimilarityErrorEdges(),
		AbsoluteEdges:   SimilarityAbsoluteEdges(),
		UseBinMean:      true,
		MinObservations: 10,
	}
}

func (c *Config) setDefaults() {
	if c.Classifier == (Classifier{}) {
		c.Classifier = DefaultClassifier()
	}
	if c.ErrorEdges == nil {
		c.ErrorEdges = DefaultErrorEdges()
	}
	if c.AbsoluteEdges == nil {
		c.AbsoluteEdges = DefaultAbsoluteEdges()
	}
	if c.MinObservations == 0 {
		c.MinObservations = 10
	}
}

// DBModel holds the learned distributions for one database: one ED per
// query type (Figure 9) plus a pooled fallback over all non-zero-band
// training queries.
type DBModel struct {
	// Name is the database's name.
	Name string
	// EDs maps query type → learned error distribution.
	EDs map[TypeKey]*ED
	// Pooled aggregates all relative-error observations of the
	// database, the fallback for sparsely observed types.
	Pooled *ED
}

// Model is the trained probabilistic relevancy model for a testbed: the
// per-database, per-query-type error distributions together with the
// summaries and relevancy definition needed to produce RDs for unseen
// queries.
type Model struct {
	// Cfg is the training configuration.
	Cfg Config
	// Rel is the relevancy definition and estimator.
	Rel estimate.Relevancy
	// Summaries are the per-database content summaries, in testbed
	// order.
	Summaries *summary.Set
	// DBs are the per-database learned distributions, in testbed order.
	DBs []*DBModel
}

// Train learns the error distributions by sampling every database with
// the training queries (Section 4): for each (database, query) pair it
// computes the estimate from the summary, probes the database for the
// actual relevancy, classifies the query, and accumulates the error in
// the matching ED. Databases are trained concurrently.
func Train(tb *hidden.Testbed, sums *summary.Set, rel estimate.Relevancy, train []queries.Query, cfg Config) (*Model, error) {
	cfg.setDefaults()
	if tb.Len() == 0 {
		return nil, fmt.Errorf("core: training needs at least one database")
	}
	if len(sums.Summaries) != tb.Len() {
		return nil, fmt.Errorf("core: %d summaries for %d databases", len(sums.Summaries), tb.Len())
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("core: training needs at least one query")
	}
	m := &Model{Cfg: cfg, Rel: rel, Summaries: sums, DBs: make([]*DBModel, tb.Len())}

	var wg sync.WaitGroup
	errs := make([]error, tb.Len())
	for dbIdx := 0; dbIdx < tb.Len(); dbIdx++ {
		wg.Add(1)
		go func(dbIdx int) {
			defer wg.Done()
			m.DBs[dbIdx], errs[dbIdx] = trainOne(tb.DB(dbIdx), sums.Summaries[dbIdx], rel, train, cfg)
		}(dbIdx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// trainOne learns one database's EDs.
func trainOne(db hidden.Database, sum *summary.Summary, rel estimate.Relevancy, train []queries.Query, cfg Config) (*DBModel, error) {
	dm := &DBModel{Name: db.Name(), EDs: make(map[TypeKey]*ED)}
	var err error
	dm.Pooled, err = NewED(cfg.ErrorEdges, false, cfg.UseBinMean)
	if err != nil {
		return nil, err
	}
	for _, q := range train {
		qs := q.String()
		rhat := rel.Estimate(sum, qs)
		actual, err := rel.Probe(db, qs)
		if err != nil {
			return nil, fmt.Errorf("core: training %s on %q: %w", db.Name(), qs, err)
		}
		key := cfg.Classifier.Classify(q.NumTerms(), rhat)
		ed, ok := dm.EDs[key]
		if !ok {
			edges := cfg.ErrorEdges
			absolute := key.Band == BandZero
			if absolute {
				edges = cfg.AbsoluteEdges
			}
			ed, err = NewED(edges, absolute, cfg.UseBinMean)
			if err != nil {
				return nil, err
			}
			dm.EDs[key] = ed
		}
		if err := ed.Observe(rhat, actual); err != nil {
			return nil, fmt.Errorf("core: training %s on %q: %w", db.Name(), qs, err)
		}
		if key.Band != BandZero {
			if err := dm.Pooled.Observe(rhat, actual); err != nil {
				return nil, err
			}
		}
	}
	return dm, nil
}

// RDFor derives the relevancy distribution of database dbIdx for an
// unseen query: estimate, classify, apply the learned ED (falling back
// to the pooled ED, then to an impulse at the estimate when the
// database was never observed in a comparable regime).
func (m *Model) RDFor(dbIdx int, query string, numTerms int) (*RD, float64) {
	sum := m.Summaries.Summaries[dbIdx]
	rhat := m.Rel.Estimate(sum, query)
	key := m.Cfg.Classifier.Classify(numTerms, rhat)
	dm := m.DBs[dbIdx]

	if ed, ok := dm.EDs[key]; ok && ed.Observations() >= m.Cfg.MinObservations {
		if rd, err := ed.RD(rhat); err == nil {
			return rd, rhat
		}
	}
	if key.Band != BandZero && dm.Pooled.Observations() >= m.Cfg.MinObservations {
		if rd, err := dm.Pooled.RD(rhat); err == nil {
			return rd, rhat
		}
	}
	// No usable error model: trust the estimate outright. The r̂ = 0
	// case — by far the most common cold regime — serves the shared
	// read-only impulse instead of allocating one per query.
	if rhat == 0 {
		return zeroImpulse, rhat
	}
	return Impulse(rhat), rhat
}

// Selection is the per-query state: the RDs of all databases, which of
// them have been probed, and the target metric and k.
type Selection struct {
	// Metric is the correctness definition being optimized.
	Metric Metric
	// K is the number of databases to select.
	K int
	// Query is the user's query string.
	Query string

	rds       []*RD
	estimates []float64
	probed    []bool
	opts      BestSetOptions
	// stageObs, when set, receives hot-path stage timings (see
	// stage.go). Nil by default: attribution off.
	stageObs StageObserver

	// scratch is the pooled incremental evaluation state (selstate.go),
	// acquired lazily on the first Best and handed back by Release. It
	// caches the key grid, Poisson-binomial DP rows and membership
	// marginals of the current RDs; ApplyProbe invalidates it.
	scratch *selScratch
	// noScratch forces the from-scratch reference path — the
	// differential tests use it to pin the incremental path against
	// the original evaluation.
	noScratch bool
	// hypDepth tracks nested withHypothesis scopes. Depth 1 runs on
	// the scratch's one-factor overlay; deeper nesting (the optimal
	// policy's expectimin) falls back to the reference path.
	hypDepth int
	hypDB    int
	hypVI    int
	// impulses are selection-owned impulse RDs reused by ApplyProbe
	// (one per database) so steady-state probing does not allocate.
	impulses []*RD
	// derived are selection-owned RD headers for the table-lookup path
	// (ModelVersion.FillSelection): each holds the version template's
	// support scaled by this query's estimate in derivedVals, sharing
	// the template's probabilities and cumulative tails (both are
	// scale-invariant). Reused across fills, so steady-state selection
	// building allocates nothing.
	derived     []*RD
	derivedVals [][]float64
	// unprobedBuf caches the unprobed index list for UnprobedView.
	unprobedBuf   []int
	unprobedStale bool
}

// NewSelection builds the initial (unprobed) state for a query.
func (m *Model) NewSelection(query string, numTerms int, metric Metric, k int) *Selection {
	n := len(m.DBs)
	s := &Selection{
		Metric:        metric,
		K:             k,
		Query:         query,
		rds:           make([]*RD, n),
		estimates:     make([]float64, n),
		probed:        make([]bool, n),
		hypVI:         -1,
		unprobedStale: true,
	}
	for i := 0; i < n; i++ {
		s.rds[i], s.estimates[i] = m.RDFor(i, query, numTerms)
	}
	return s
}

// NewSelectionFromRDs builds a selection directly from RDs (tests and
// paper examples).
func NewSelectionFromRDs(rds []*RD, metric Metric, k int) *Selection {
	ests := make([]float64, len(rds))
	for i, rd := range rds {
		ests[i] = rd.Mean()
	}
	return &Selection{
		Metric:        metric,
		K:             k,
		rds:           append([]*RD(nil), rds...),
		estimates:     ests,
		probed:        make([]bool, len(rds)),
		hypVI:         -1,
		unprobedStale: true,
	}
}

// WithBestSetOptions overrides the set-search options used by Best and
// returns the selection for chaining.
func (s *Selection) WithBestSetOptions(opts BestSetOptions) *Selection {
	s.opts = opts
	return s
}

// Len returns the number of databases.
func (s *Selection) Len() int { return len(s.rds) }

// RD returns database i's current relevancy distribution.
func (s *Selection) RD(i int) *RD { return s.rds[i] }

// Estimate returns r̂ for database i.
func (s *Selection) Estimate(i int) float64 { return s.estimates[i] }

// Probed reports whether database i has been probed.
func (s *Selection) Probed(i int) bool { return s.probed[i] }

// Unprobed lists the databases not yet probed, in index order. The
// returned slice is a fresh copy the caller may keep; hot paths that
// only read use UnprobedView.
func (s *Selection) Unprobed() []int {
	v := s.UnprobedView()
	if len(v) == 0 {
		return nil
	}
	return append([]int(nil), v...)
}

// UnprobedView returns the unprobed database indices in ascending
// order without allocating. The slice is owned by the selection and
// valid only until the next probe, mark or probed hypothesis.
func (s *Selection) UnprobedView() []int {
	if s.unprobedStale {
		s.unprobedBuf = s.unprobedBuf[:0]
		for i, p := range s.probed {
			if !p {
				s.unprobedBuf = append(s.unprobedBuf, i)
			}
		}
		s.unprobedStale = false
	}
	return s.unprobedBuf
}

// ApplyProbe records a probe outcome: database i's RD collapses to an
// impulse at the observed relevancy. The impulse is selection-owned
// and reused across Reuse cycles, so steady-state probing allocates
// nothing after warm-up.
func (s *Selection) ApplyProbe(i int, value float64) {
	s.rds[i] = s.ownedImpulse(i, value)
	s.probed[i] = true
	s.unprobedStale = true
	s.invalidate()
}

// ownedImpulse returns the selection's reusable impulse RD for
// database i, re-pointed at v.
func (s *Selection) ownedImpulse(i int, v float64) *RD {
	if len(s.impulses) < len(s.rds) {
		imps := make([]*RD, len(s.rds))
		copy(imps, s.impulses)
		s.impulses = imps
	}
	if s.impulses[i] == nil {
		s.impulses[i] = Impulse(v)
	} else {
		s.impulses[i].setImpulse(v)
	}
	return s.impulses[i]
}

// setScaledRD points slot i at a selection-owned RD whose support is
// tmpl's multiplied by rhat (> 0), sharing tmpl's probabilities and
// cumulative tails. This is the table-lookup path's per-query RD: the
// template support is (1 + e_bin), so rhat·support is the identical
// expression the from-scratch ED.RD(rhat) computes. Returns false —
// installing nothing — when the scaled support is unusable (two
// points collide after rounding, or the product overflows); the
// caller then falls back to the from-scratch derivation.
func (s *Selection) setScaledRD(i int, tmpl *RD, rhat float64) bool {
	n := len(s.rds)
	if len(s.derived) < n {
		d := make([]*RD, n)
		copy(d, s.derived)
		s.derived = d
		dv := make([][]float64, n)
		copy(dv, s.derivedVals)
		s.derivedVals = dv
	}
	buf := s.derivedVals[i]
	if cap(buf) < tmpl.Len() {
		buf = make([]float64, tmpl.Len())
	}
	buf = buf[:tmpl.Len()]
	s.derivedVals[i] = buf
	prev := math.Inf(-1)
	for j, v := range tmpl.values {
		sv := rhat * v
		if !(sv > prev) || math.IsInf(sv, 1) { // also catches NaN
			return false
		}
		buf[j] = sv
		prev = sv
	}
	d := s.derived[i]
	if d == nil {
		d = &RD{}
		s.derived[i] = d
	}
	d.values = buf
	d.probs = tmpl.probs
	d.cumLT = tmpl.cumLT
	d.cumGE = tmpl.cumGE
	s.rds[i] = d
	return true
}

// reset re-initializes the selection as an empty unprobed state for n
// databases, reusing every backing array — the shell half of
// ModelVersion.FillSelection. Options, stage observer and the
// reference-path pin are cleared; the caller re-attaches what it
// needs.
func (s *Selection) reset(query string, metric Metric, k, n int) {
	s.Metric, s.K, s.Query = metric, k, query
	s.opts = BestSetOptions{}
	s.stageObs = nil
	s.noScratch = false
	if cap(s.rds) < n {
		s.rds = make([]*RD, n)
	}
	s.rds = s.rds[:n]
	if cap(s.estimates) < n {
		s.estimates = make([]float64, n)
	}
	s.estimates = s.estimates[:n]
	if cap(s.probed) < n {
		s.probed = make([]bool, n)
	}
	s.probed = s.probed[:n]
	for i := range s.probed {
		s.probed[i] = false
	}
	s.hypDepth, s.hypVI = 0, -1
	s.unprobedStale = true
	s.invalidate()
}

// invalidate marks the incremental scratch stale after an RD changed.
func (s *Selection) invalidate() {
	if s.scratch != nil {
		s.scratch.valid = false
	}
}

// MarkUnprobeable excludes a database from future probing without
// changing its RD (used when a live probe fails).
func (s *Selection) MarkUnprobeable(i int) {
	s.probed[i] = true
	s.unprobedStale = true
}

// Best returns the current best k-set and its expected correctness.
// The set is a fresh copy; the allocation-free variant is BestView.
func (s *Selection) Best() ([]int, float64) {
	set, e := s.best()
	if set == nil {
		return nil, e
	}
	return append([]int(nil), set...), e
}

// BestView is Best without allocating: the returned slice is owned by
// the selection and valid only until the next Best/BestView call,
// probe or hypothesis. APro's loop uses it.
func (s *Selection) BestView() ([]int, float64) {
	return s.best()
}

// best routes the evaluation: the incremental scratch on the serving
// path, the from-scratch reference on edge cases (k ≥ n, nested
// hypotheses) and when noScratch pins the reference for tests.
func (s *Selection) best() ([]int, float64) {
	n := len(s.rds)
	if s.noScratch || s.K <= 0 || s.K >= n || s.hypDepth > 1 {
		return BestSet(s.Metric, s.rds, s.K, s.opts)
	}
	if s.hypDepth == 1 {
		sc := s.scratch
		if sc == nil || !sc.valid || sc.k != s.K || sc.n != n || s.hypVI < 0 {
			// The hypothesis swap is already in s.rds, so the scratch
			// cannot be (re)built from base state here — evaluate from
			// scratch instead. Only reachable when a hypothesis was
			// opened without the scratch path (see beginHypothesisIdx).
			return BestSet(s.Metric, s.rds, s.K, s.opts)
		}
		if !sc.hypActive {
			sc.beginHypothesis(s.hypDB, s.hypVI)
		}
		return sc.bestFrom(sc.hypMarg, s.Metric, s.opts)
	}
	s.ensureScratch()
	return s.scratch.bestFrom(s.scratch.marg, s.Metric, s.opts)
}

// ensureScratch acquires the pooled scratch and rebuilds it from the
// current RDs when stale. Callers guarantee 0 < K < len(rds) and no
// active hypothesis swap in s.rds.
func (s *Selection) ensureScratch() {
	if s.scratch == nil {
		s.scratch = acquireScratch()
	}
	sc := s.scratch
	if !sc.valid || sc.k != s.K || sc.n != len(s.rds) {
		sc.build(s.rds, s.K)
	}
}

// Release hands the selection's pooled scratch state back for reuse by
// later selections. Call it when done with the selection (the facade
// does, once per query); the selection stays usable afterwards — the
// scratch is simply re-acquired on demand.
func (s *Selection) Release() {
	if s.scratch == nil || s.hypDepth != 0 {
		return
	}
	s.scratch.release()
	s.scratch = nil
}

// Reuse re-initializes the selection as a fresh (unprobed-state) copy
// of src — same metric, k, query, options and RDs — reusing this
// selection's backing arrays and scratch. It is the zero-allocation
// way to run many selections over one template state (benchmarks,
// replay harnesses). src is typically a pristine template: immutable
// RDs (model-derived distributions, the version table's shared
// entries) are safely shared, while src-owned mutable state — impulse
// RDs (probed or cold-key) and table-derived scaled RDs, whose
// buffers src would overwrite on its next fill — is copied into this
// selection's own impulses and derived buffers, so neither selection
// can alias the other afterwards.
func (s *Selection) Reuse(src *Selection) {
	s.Metric, s.K, s.Query = src.Metric, src.K, src.Query
	s.opts = src.opts
	s.rds = append(s.rds[:0], src.rds...)
	s.estimates = append(s.estimates[:0], src.estimates...)
	if cap(s.probed) < len(src.probed) {
		s.probed = make([]bool, len(src.probed))
	}
	s.probed = s.probed[:len(src.probed)]
	copy(s.probed, src.probed)
	for i, rd := range s.rds {
		switch {
		case rd.IsImpulse():
			s.rds[i] = s.ownedImpulse(i, rd.Value(0))
		case i < len(src.derived) && rd == src.derived[i]:
			// Scaling by 1 copies the support exactly while sharing the
			// immutable template probabilities; it cannot fail on an
			// already-valid support.
			s.setScaledRD(i, rd, 1)
		}
	}
	s.hypDepth, s.hypVI = 0, -1
	s.unprobedStale = true
	s.invalidate()
}

// Marginals returns P(dbᵢ ∈ top-k) for every database — the
// membership probabilities behind the selection, useful for
// explaining a decision to a user or operator.
func (s *Selection) Marginals() []float64 {
	out := make([]float64, len(s.rds))
	if !s.noScratch && s.hypDepth == 0 && s.scratch != nil &&
		s.scratch.valid && !s.scratch.hypActive &&
		s.scratch.k == s.K && s.scratch.n == len(s.rds) {
		copy(out, s.scratch.marg)
		return out
	}
	for i := range s.rds {
		out[i] = MembershipProb(s.rds, i, s.K)
	}
	return out
}

// BaselineSelect returns the k databases with the highest estimates
// (ties by index) — the term-independence-estimator baseline the paper
// compares against. The result is sorted by index.
func (s *Selection) BaselineSelect() []int {
	return TopKByScore(s.estimates, s.K)
}

// beginHypothesisIdx swaps database i's RD for an impulse at its vi-th
// support value (the greedy policy's "consider all the outcomes of
// probing dbᵢ", Figure 13) and returns the displaced RD for
// endHypothesisIdx. The begin/end pair is deliberately not a
// callback: the usefulness sweep calls it per support value, and a
// closure there would allocate on every hypothesis.
//
// At depth 1 on the serving path the swap uses the scratch's reusable
// impulse and arms the one-factor overlay (built lazily by best());
// nested hypotheses — the optimal policy's expectimin — get a plain
// impulse and evaluate via the reference path.
func (s *Selection) beginHypothesisIdx(i, vi int) *RD {
	old := s.rds[i]
	v := old.Value(vi)
	s.hypDepth++
	if s.hypDepth == 1 {
		s.hypDB, s.hypVI = i, vi
		if !s.noScratch && s.K > 0 && s.K < len(s.rds) {
			// Build (or refresh) the scratch from the base RDs before
			// the swap; afterwards the base state is unobservable.
			s.ensureScratch()
			s.rds[i] = s.scratch.hypImpulse(v)
			return old
		}
		s.hypVI = -1
	}
	s.rds[i] = Impulse(v)
	return old
}

// endHypothesisIdx restores the RD displaced by beginHypothesisIdx.
func (s *Selection) endHypothesisIdx(i int, old *RD) {
	s.rds[i] = old
	if s.hypDepth == 1 {
		if s.scratch != nil && s.scratch.hypActive {
			s.scratch.endHypothesis()
		}
		s.hypVI = -1
	}
	s.hypDepth--
}

// withHypothesisIdx evaluates f inside a hypothesis scope.
func (s *Selection) withHypothesisIdx(i, vi int, f func()) {
	old := s.beginHypothesisIdx(i, vi)
	f()
	s.endHypothesisIdx(i, old)
}

// withProbedHypothesisIdx additionally marks database i probed for the
// duration of f — the optimal policy's "suppose we probed dbᵢ and saw
// its vi-th value" recursion step. Routing it through the hypothesis
// API keeps the selection-state invalidation (scratch, unprobed view)
// correct instead of mutating rds/probed behind the caches.
func (s *Selection) withProbedHypothesisIdx(i, vi int, f func()) {
	wasProbed := s.probed[i]
	s.probed[i] = true
	s.unprobedStale = true
	s.withHypothesisIdx(i, vi, f)
	s.probed[i] = wasProbed
	s.unprobedStale = true
}

// TopKByScore returns the indices of the k highest scores, ties broken
// by lower index, result sorted by index.
func TopKByScore(scores []float64, k int) []int {
	n := len(scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	set := append([]int(nil), order[:k]...)
	sort.Ints(set)
	return set
}

// RankByScore returns all indices ordered by (score desc, index asc) —
// the golden-standard ordering.
func RankByScore(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	return order
}

// equalFloat reports approximate equality for expectation comparisons.
func equalFloat(a, b float64) bool { return math.Abs(a-b) <= probEpsilon }
