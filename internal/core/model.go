package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"metaprobe/internal/estimate"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/summary"
)

// Config parameterizes model training.
type Config struct {
	// Classifier is the query-type decision tree (default: the paper's
	// threshold-100, up-to-4-terms tree).
	Classifier Classifier
	// ErrorEdges are the relative-error histogram bins (default
	// DefaultErrorEdges).
	ErrorEdges []float64
	// AbsoluteEdges are the bins for the r̂ = 0 band (default
	// DefaultAbsoluteEdges).
	AbsoluteEdges []float64
	// UseBinMean selects per-bin observed means as RD support values
	// (default true; false = midpoints, ablation A3).
	UseBinMean bool
	// MinObservations is the minimum training observations a
	// (database, type) ED needs before it is trusted; sparser types
	// fall back to the database's pooled ED (default 10).
	MinObservations int64
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation (document-frequency relevancy).
func DefaultConfig() Config {
	return Config{
		Classifier:      DefaultClassifier(),
		ErrorEdges:      DefaultErrorEdges(),
		AbsoluteEdges:   DefaultAbsoluteEdges(),
		UseBinMean:      true,
		MinObservations: 10,
	}
}

// SimilarityConfig returns a configuration suited to the
// document-similarity relevancy definition (cosine values in [0, 1]).
func SimilarityConfig() Config {
	return Config{
		Classifier:      Classifier{Threshold: 0.3, MaxTerms: 4},
		ErrorEdges:      SimilarityErrorEdges(),
		AbsoluteEdges:   SimilarityAbsoluteEdges(),
		UseBinMean:      true,
		MinObservations: 10,
	}
}

func (c *Config) setDefaults() {
	if c.Classifier == (Classifier{}) {
		c.Classifier = DefaultClassifier()
	}
	if c.ErrorEdges == nil {
		c.ErrorEdges = DefaultErrorEdges()
	}
	if c.AbsoluteEdges == nil {
		c.AbsoluteEdges = DefaultAbsoluteEdges()
	}
	if c.MinObservations == 0 {
		c.MinObservations = 10
	}
}

// DBModel holds the learned distributions for one database: one ED per
// query type (Figure 9) plus a pooled fallback over all non-zero-band
// training queries.
type DBModel struct {
	// Name is the database's name.
	Name string
	// EDs maps query type → learned error distribution.
	EDs map[TypeKey]*ED
	// Pooled aggregates all relative-error observations of the
	// database, the fallback for sparsely observed types.
	Pooled *ED
}

// Model is the trained probabilistic relevancy model for a testbed: the
// per-database, per-query-type error distributions together with the
// summaries and relevancy definition needed to produce RDs for unseen
// queries.
type Model struct {
	// Cfg is the training configuration.
	Cfg Config
	// Rel is the relevancy definition and estimator.
	Rel estimate.Relevancy
	// Summaries are the per-database content summaries, in testbed
	// order.
	Summaries *summary.Set
	// DBs are the per-database learned distributions, in testbed order.
	DBs []*DBModel
}

// Train learns the error distributions by sampling every database with
// the training queries (Section 4): for each (database, query) pair it
// computes the estimate from the summary, probes the database for the
// actual relevancy, classifies the query, and accumulates the error in
// the matching ED. Databases are trained concurrently.
func Train(tb *hidden.Testbed, sums *summary.Set, rel estimate.Relevancy, train []queries.Query, cfg Config) (*Model, error) {
	cfg.setDefaults()
	if tb.Len() == 0 {
		return nil, fmt.Errorf("core: training needs at least one database")
	}
	if len(sums.Summaries) != tb.Len() {
		return nil, fmt.Errorf("core: %d summaries for %d databases", len(sums.Summaries), tb.Len())
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("core: training needs at least one query")
	}
	m := &Model{Cfg: cfg, Rel: rel, Summaries: sums, DBs: make([]*DBModel, tb.Len())}

	var wg sync.WaitGroup
	errs := make([]error, tb.Len())
	for dbIdx := 0; dbIdx < tb.Len(); dbIdx++ {
		wg.Add(1)
		go func(dbIdx int) {
			defer wg.Done()
			m.DBs[dbIdx], errs[dbIdx] = trainOne(tb.DB(dbIdx), sums.Summaries[dbIdx], rel, train, cfg)
		}(dbIdx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// trainOne learns one database's EDs.
func trainOne(db hidden.Database, sum *summary.Summary, rel estimate.Relevancy, train []queries.Query, cfg Config) (*DBModel, error) {
	dm := &DBModel{Name: db.Name(), EDs: make(map[TypeKey]*ED)}
	var err error
	dm.Pooled, err = NewED(cfg.ErrorEdges, false, cfg.UseBinMean)
	if err != nil {
		return nil, err
	}
	for _, q := range train {
		qs := q.String()
		rhat := rel.Estimate(sum, qs)
		actual, err := rel.Probe(db, qs)
		if err != nil {
			return nil, fmt.Errorf("core: training %s on %q: %w", db.Name(), qs, err)
		}
		key := cfg.Classifier.Classify(q.NumTerms(), rhat)
		ed, ok := dm.EDs[key]
		if !ok {
			edges := cfg.ErrorEdges
			absolute := key.Band == BandZero
			if absolute {
				edges = cfg.AbsoluteEdges
			}
			ed, err = NewED(edges, absolute, cfg.UseBinMean)
			if err != nil {
				return nil, err
			}
			dm.EDs[key] = ed
		}
		if err := ed.Observe(rhat, actual); err != nil {
			return nil, fmt.Errorf("core: training %s on %q: %w", db.Name(), qs, err)
		}
		if key.Band != BandZero {
			if err := dm.Pooled.Observe(rhat, actual); err != nil {
				return nil, err
			}
		}
	}
	return dm, nil
}

// RDFor derives the relevancy distribution of database dbIdx for an
// unseen query: estimate, classify, apply the learned ED (falling back
// to the pooled ED, then to an impulse at the estimate when the
// database was never observed in a comparable regime).
func (m *Model) RDFor(dbIdx int, query string, numTerms int) (*RD, float64) {
	sum := m.Summaries.Summaries[dbIdx]
	rhat := m.Rel.Estimate(sum, query)
	key := m.Cfg.Classifier.Classify(numTerms, rhat)
	dm := m.DBs[dbIdx]

	if ed, ok := dm.EDs[key]; ok && ed.Observations() >= m.Cfg.MinObservations {
		if rd, err := ed.RD(rhat); err == nil {
			return rd, rhat
		}
	}
	if key.Band != BandZero && dm.Pooled.Observations() >= m.Cfg.MinObservations {
		if rd, err := dm.Pooled.RD(rhat); err == nil {
			return rd, rhat
		}
	}
	// No usable error model: trust the estimate outright.
	return Impulse(rhat), rhat
}

// Selection is the per-query state: the RDs of all databases, which of
// them have been probed, and the target metric and k.
type Selection struct {
	// Metric is the correctness definition being optimized.
	Metric Metric
	// K is the number of databases to select.
	K int
	// Query is the user's query string.
	Query string

	rds       []*RD
	estimates []float64
	probed    []bool
	opts      BestSetOptions
	// stageObs, when set, receives hot-path stage timings (see
	// stage.go). Nil by default: attribution off.
	stageObs StageObserver
}

// NewSelection builds the initial (unprobed) state for a query.
func (m *Model) NewSelection(query string, numTerms int, metric Metric, k int) *Selection {
	n := len(m.DBs)
	s := &Selection{
		Metric:    metric,
		K:         k,
		Query:     query,
		rds:       make([]*RD, n),
		estimates: make([]float64, n),
		probed:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		s.rds[i], s.estimates[i] = m.RDFor(i, query, numTerms)
	}
	return s
}

// NewSelectionFromRDs builds a selection directly from RDs (tests and
// paper examples).
func NewSelectionFromRDs(rds []*RD, metric Metric, k int) *Selection {
	ests := make([]float64, len(rds))
	for i, rd := range rds {
		ests[i] = rd.Mean()
	}
	return &Selection{
		Metric:    metric,
		K:         k,
		rds:       append([]*RD(nil), rds...),
		estimates: ests,
		probed:    make([]bool, len(rds)),
	}
}

// WithBestSetOptions overrides the set-search options used by Best and
// returns the selection for chaining.
func (s *Selection) WithBestSetOptions(opts BestSetOptions) *Selection {
	s.opts = opts
	return s
}

// Len returns the number of databases.
func (s *Selection) Len() int { return len(s.rds) }

// RD returns database i's current relevancy distribution.
func (s *Selection) RD(i int) *RD { return s.rds[i] }

// Estimate returns r̂ for database i.
func (s *Selection) Estimate(i int) float64 { return s.estimates[i] }

// Probed reports whether database i has been probed.
func (s *Selection) Probed(i int) bool { return s.probed[i] }

// Unprobed lists the databases not yet probed, in index order.
func (s *Selection) Unprobed() []int {
	var out []int
	for i, p := range s.probed {
		if !p {
			out = append(out, i)
		}
	}
	return out
}

// ApplyProbe records a probe outcome: database i's RD collapses to an
// impulse at the observed relevancy.
func (s *Selection) ApplyProbe(i int, value float64) {
	s.rds[i] = Impulse(value)
	s.probed[i] = true
}

// MarkUnprobeable excludes a database from future probing without
// changing its RD (used when a live probe fails).
func (s *Selection) MarkUnprobeable(i int) { s.probed[i] = true }

// Best returns the current best k-set and its expected correctness.
func (s *Selection) Best() ([]int, float64) {
	return BestSet(s.Metric, s.rds, s.K, s.opts)
}

// Marginals returns P(dbᵢ ∈ top-k) for every database — the
// membership probabilities behind the selection, useful for
// explaining a decision to a user or operator.
func (s *Selection) Marginals() []float64 {
	out := make([]float64, len(s.rds))
	for i := range s.rds {
		out[i] = MembershipProb(s.rds, i, s.K)
	}
	return out
}

// BaselineSelect returns the k databases with the highest estimates
// (ties by index) — the term-independence-estimator baseline the paper
// compares against. The result is sorted by index.
func (s *Selection) BaselineSelect() []int {
	return TopKByScore(s.estimates, s.K)
}

// withHypothesis evaluates f with database i's RD temporarily replaced
// by an impulse at v (the greedy policy's "consider all the outcomes of
// probing dbᵢ", Figure 13).
func (s *Selection) withHypothesis(i int, v float64, f func()) {
	old := s.rds[i]
	s.rds[i] = Impulse(v)
	f()
	s.rds[i] = old
}

// TopKByScore returns the indices of the k highest scores, ties broken
// by lower index, result sorted by index.
func TopKByScore(scores []float64, k int) []int {
	n := len(scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	set := append([]int(nil), order[:k]...)
	sort.Ints(set)
	return set
}

// RankByScore returns all indices ordered by (score desc, index asc) —
// the golden-standard ordering.
func RankByScore(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	return order
}

// equalFloat reports approximate equality for expectation comparisons.
func equalFloat(a, b float64) bool { return math.Abs(a-b) <= probEpsilon }
