package core

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// The incremental scratch path (selstate.go) must be indistinguishable
// from the from-scratch reference evaluation: identical selected sets
// and certainties within 1e-9 on every state APro can visit. These
// tests pin the two paths together over randomized RDs, both metrics
// and random probe orders; the noScratch flag forces the reference.

const diffTol = 1e-9

// randTestRD builds a random RD with smallSupport..smallSupport+4
// support points drawn from a coarse grid, so value ties across
// databases (the tie-breaking machinery) actually occur.
func randTestRD(rng *rand.Rand) *RD {
	nVals := 1 + rng.Intn(5)
	seen := map[float64]bool{}
	values := make([]float64, 0, nVals)
	for len(values) < nVals {
		v := float64(rng.Intn(20)) * 5
		if !seen[v] {
			seen[v] = true
			values = append(values, v)
		}
	}
	probs := make([]float64, len(values))
	total := 0.0
	for i := range probs {
		probs[i] = 0.1 + rng.Float64()
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	rd, err := NewRD(values, probs)
	if err != nil {
		panic(err)
	}
	return rd
}

// assertSameBest compares the two paths' best-set evaluation on the
// current state.
func assertSameBest(t *testing.T, trial int, stage string, ref, inc *Selection) {
	t.Helper()
	refSet, refE := ref.Best()
	incSet, incE := inc.Best()
	if len(refSet) != len(incSet) {
		t.Fatalf("trial %d %s: set sizes differ: ref %v inc %v", trial, stage, refSet, incSet)
	}
	for i := range refSet {
		if refSet[i] != incSet[i] {
			t.Fatalf("trial %d %s: sets differ: ref %v inc %v (E ref %v inc %v)",
				trial, stage, refSet, incSet, refE, incE)
		}
	}
	if math.Abs(refE-incE) > diffTol {
		t.Fatalf("trial %d %s: certainty differs: ref %v inc %v", trial, stage, refE, incE)
	}
	refM := ref.Marginals()
	incM := inc.Marginals()
	for i := range refM {
		if math.Abs(refM[i]-incM[i]) > diffTol {
			t.Fatalf("trial %d %s: marginal[%d] differs: ref %v inc %v", trial, stage, i, refM[i], incM[i])
		}
	}
}

// TestIncrementalMatchesReference is the differential property test:
// random RDs, both metrics, random probe orders — after every probe
// the incremental path must select the identical set with certainty
// and marginals within 1e-9 of the reference, and greedy usefulness
// (the hypothesis overlay) must agree on every unprobed database.
func TestIncrementalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(6)
		k := 1 + rng.Intn(n-1)
		metric := Partial
		if trial%2 == 0 {
			metric = Absolute
		}
		rds := make([]*RD, n)
		for i := range rds {
			rds[i] = randTestRD(rng)
		}
		ref := NewSelectionFromRDs(rds, metric, k)
		ref.noScratch = true
		inc := NewSelectionFromRDs(rds, metric, k)

		assertSameBest(t, trial, "initial", ref, inc)

		gRef, gInc := &Greedy{}, &Greedy{}
		order := rng.Perm(n)
		for step, i := range order {
			for _, u := range inc.UnprobedView() {
				uRef := gRef.Usefulness(ref, u)
				uInc := gInc.Usefulness(inc, u)
				if math.Abs(uRef-uInc) > diffTol {
					t.Fatalf("trial %d step %d: usefulness(%d) differs: ref %v inc %v",
						trial, step, u, uRef, uInc)
				}
			}
			v := rds[i].Value(rng.Intn(rds[i].Len()))
			ref.ApplyProbe(i, v)
			inc.ApplyProbe(i, v)
			assertSameBest(t, trial, "after probe", ref, inc)
		}
		inc.Release()
	}
}

// TestAProDifferentialTrajectory runs full APro loops on both paths
// with identical deterministic probes and requires the trajectories to
// match step for step: same probe choices, same sets, certainties
// within 1e-9, same Reached.
func TestAProDifferentialTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(n-1)
		metric := Partial
		if trial%2 == 0 {
			metric = Absolute
		}
		rds := make([]*RD, n)
		truth := make([]float64, n)
		for i := range rds {
			rds[i] = randTestRD(rng)
			truth[i] = rds[i].Value(rng.Intn(rds[i].Len()))
		}
		thr := 0.5 + 0.5*rng.Float64()
		probe := func(i int) (float64, error) { return truth[i], nil }

		ref := NewSelectionFromRDs(rds, metric, k)
		ref.noScratch = true
		inc := NewSelectionFromRDs(rds, metric, k)

		outRef, errRef := APro(ref, probe, &Greedy{}, thr, -1)
		outInc, errInc := APro(inc, probe, &Greedy{}, thr, -1)
		inc.Release()
		if (errRef == nil) != (errInc == nil) {
			t.Fatalf("trial %d: errors differ: ref %v inc %v", trial, errRef, errInc)
		}
		if outRef.Reached != outInc.Reached {
			t.Fatalf("trial %d: Reached differs: ref %v inc %v", trial, outRef.Reached, outInc.Reached)
		}
		if len(outRef.Steps) != len(outInc.Steps) {
			t.Fatalf("trial %d: step counts differ: ref %d inc %d",
				trial, len(outRef.Steps), len(outInc.Steps))
		}
		for s := range outRef.Steps {
			if outRef.Steps[s].DB != outInc.Steps[s].DB {
				t.Fatalf("trial %d step %d: probe choice differs: ref %d inc %d",
					trial, s, outRef.Steps[s].DB, outInc.Steps[s].DB)
			}
			if math.Abs(outRef.Steps[s].Usefulness-outInc.Steps[s].Usefulness) > diffTol {
				t.Fatalf("trial %d step %d: usefulness differs: ref %v inc %v",
					trial, s, outRef.Steps[s].Usefulness, outInc.Steps[s].Usefulness)
			}
		}
		if len(outRef.Set) != len(outInc.Set) {
			t.Fatalf("trial %d: final sets differ: ref %v inc %v", trial, outRef.Set, outInc.Set)
		}
		for i := range outRef.Set {
			if outRef.Set[i] != outInc.Set[i] {
				t.Fatalf("trial %d: final sets differ: ref %v inc %v", trial, outRef.Set, outInc.Set)
			}
		}
		if math.Abs(outRef.Certainty-outInc.Certainty) > diffTol {
			t.Fatalf("trial %d: final certainty differs: ref %v inc %v",
				trial, outRef.Certainty, outInc.Certainty)
		}
	}
}

// TestOptimalPolicyThroughHypothesisAPI: the optimal policy's
// expectimin — nested probed hypotheses — must agree between the two
// paths (the recursion runs on the reference path below depth 1, but
// the depth-0/1 evaluations ride the scratch).
func TestOptimalPolicyThroughHypothesisAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(2)
		rds := make([]*RD, n)
		for i := range rds {
			rds[i] = randTestRD(rng)
		}
		ref := NewSelectionFromRDs(rds, Partial, 1)
		ref.noScratch = true
		inc := NewSelectionFromRDs(rds, Partial, 1)
		o := &Optimal{}
		iRef, errRef := o.Next(ref, 0.95)
		iInc, errInc := o.Next(inc, 0.95)
		inc.Release()
		if (errRef == nil) != (errInc == nil) {
			t.Fatalf("trial %d: errors differ: ref %v inc %v", trial, errRef, errInc)
		}
		if iRef != iInc {
			t.Fatalf("trial %d: optimal choice differs: ref %d inc %d", trial, iRef, iInc)
		}
		// The hypothesis scopes must have fully unwound.
		if inc.hypDepth != 0 {
			t.Fatalf("trial %d: hypothesis depth %d left open", trial, inc.hypDepth)
		}
	}
}

// TestScratchPoolConcurrent hammers the pooled scratch from many
// goroutines (run with -race): each runs independent APro selections
// with Release between queries, so pooled state crosses goroutines.
func TestScratchPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 25; q++ {
				n := 3 + rng.Intn(4)
				k := 1 + rng.Intn(n-1)
				rds := make([]*RD, n)
				truth := make([]float64, n)
				for i := range rds {
					rds[i] = randTestRD(rng)
					truth[i] = rds[i].Value(rng.Intn(rds[i].Len()))
				}
				sel := NewSelectionFromRDs(rds, Partial, k)
				probe := func(i int) (float64, error) { return truth[i], nil }
				if _, err := APro(sel, probe, &Greedy{}, 0.9, -1); err != nil {
					t.Error(err)
				}
				sel.Release()
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestSteadyStateSelectionDoesNotAllocate: after warm-up, a full
// Reuse + AProInto cycle over a template selection must stay within
// the 2 allocs/op budget the CI bench gate enforces.
func TestSteadyStateSelectionDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	rds := make([]*RD, n)
	truth := make([]float64, n)
	for i := range rds {
		rds[i] = randTestRD(rng)
		truth[i] = rds[i].Value(rng.Intn(rds[i].Len()))
	}
	template := NewSelectionFromRDs(rds, Absolute, 3)
	sel := NewSelectionFromRDs(rds, Absolute, 3)
	g := &Greedy{}
	var out Outcome
	probe := func(i int) (float64, error) { return truth[i], nil }
	run := func() {
		sel.Reuse(template)
		if err := AProInto(sel, probe, g, 0.95, -1, &out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run() // warm-up: grow buffers, allocate owned impulses
	}
	if allocs := testing.AllocsPerRun(50, run); allocs > 2 {
		t.Errorf("steady-state Reuse+AProInto allocates %.1f/op, want ≤ 2", allocs)
	}
}

// TestAProReachedSurfacesProbeErrors: a selection that reaches the
// threshold after an earlier probe failed must still surface the
// failure — non-nil joined error, ProbeErrs populated, Reached true.
func TestAProReachedSurfacesProbeErrors(t *testing.T) {
	rds := []*RD{
		mustRD([]float64{10, 20}, []float64{0.5, 0.5}),
		mustRD([]float64{5, 15}, []float64{0.5, 0.5}),
		Impulse(0),
	}
	sel := NewSelectionFromRDs(rds, Absolute, 1)
	down := errors.New("backend down")
	probe := func(i int) (float64, error) {
		if i == 0 {
			return 0, down
		}
		return 5, nil
	}
	out, err := APro(sel, probe, &Greedy{}, 0.9, -1)
	if !out.Reached {
		t.Fatalf("Reached = false, certainty %v; want threshold met after db1 resolves", out.Certainty)
	}
	if len(out.ProbeErrs) != 1 || !errors.Is(out.ProbeErrs[0], down) {
		t.Fatalf("ProbeErrs = %v, want the one probe failure", out.ProbeErrs)
	}
	if err == nil || !errors.Is(err, down) {
		t.Fatalf("err = %v; the Reached exit must join accumulated probe errors", err)
	}
}
