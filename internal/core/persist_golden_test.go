package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// goldenSnapshotPath pins the on-disk snapshot layout. The file is a
// real format-2 snapshot of the tiny test model; the test compares the
// JSON *structure* (every key path) of a freshly saved snapshot
// against it, so any change to the persisted layout fails CI unless
// FormatVersion was bumped and the golden regenerated deliberately.
const goldenSnapshotPath = "testdata/snapshot_format_v2.json"

// jsonShape collects every key path in a JSON document ("model.config
// .errorEdges[]", ...), ignoring values — timestamps and checksums
// differ run to run, the layout must not.
func jsonShape(prefix string, v any, out map[string]bool) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out[p] = true
			jsonShape(p, child, out)
		}
	case []any:
		for _, child := range x {
			jsonShape(prefix+"[]", child, out)
		}
	}
}

func snapshotShape(t *testing.T, data []byte) []string {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	// The payload arrives as a nested object; DF term maps are content,
	// not layout, so collapse their keys.
	shape := make(map[string]bool)
	jsonShape("", doc, shape)
	out := make([]string, 0, len(shape))
	for p := range shape {
		if filepath.Dir(p) != p && isDFTermPath(p) {
			continue
		}
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// isDFTermPath filters the content summaries' per-term keys (corpus
// vocabulary, not snapshot layout).
func isDFTermPath(p string) bool {
	const dfPrefix = "model.summaries[].df."
	return len(p) > len(dfPrefix) && p[:len(dfPrefix)] == dfPrefix
}

// TestSnapshotGoldenFormat fails when the snapshot layout drifts
// without a format-version bump. Regenerate the golden (after bumping
// FormatVersion and keeping a decode path for the old format) with:
//
//	UPDATE_SNAPSHOT_GOLDEN=1 go test ./internal/core -run TestSnapshotGoldenFormat
func TestSnapshotGoldenFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := tinyModel(t).Save(path); err != nil {
		t.Fatal(err)
	}
	current, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.WriteFile(goldenSnapshotPath, current, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenSnapshotPath)
	}
	golden, err := os.ReadFile(goldenSnapshotPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (generate with UPDATE_SNAPSHOT_GOLDEN=1): %v", err)
	}

	var env struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(golden, &env); err != nil {
		t.Fatal(err)
	}
	gotShape, wantShape := snapshotShape(t, current), snapshotShape(t, golden)
	if !reflect.DeepEqual(gotShape, wantShape) {
		diff := shapeDiff(wantShape, gotShape)
		if env.Format == FormatVersion {
			t.Fatalf("the snapshot layout changed but core.FormatVersion is still %d.\n"+
				"Old snapshots in the wild must keep loading: bump FormatVersion, keep a decode\n"+
				"path for format %d, then regenerate the golden with\n"+
				"  UPDATE_SNAPSHOT_GOLDEN=1 go test ./internal/core -run TestSnapshotGoldenFormat\n%s",
				FormatVersion, FormatVersion, diff)
		}
		t.Fatalf("snapshot layout changed alongside a format bump to %d; regenerate the golden:\n"+
			"  UPDATE_SNAPSHOT_GOLDEN=1 go test ./internal/core -run TestSnapshotGoldenFormat\n%s",
			FormatVersion, diff)
	}
	if env.Format != FormatVersion {
		t.Fatalf("golden records format %d but this build writes %d; regenerate the golden", env.Format, FormatVersion)
	}
	// The golden file is a real snapshot of the current format, so this
	// build must load it — the backward-compat contract in one line.
	if _, info, err := LoadModelInfo(goldenSnapshotPath); err != nil {
		t.Fatalf("golden snapshot no longer loads: %v", err)
	} else if info.Format != FormatVersion {
		t.Fatalf("golden snapshot loaded as format %d", info.Format)
	}
}

// shapeDiff renders the key-path difference between two shapes.
func shapeDiff(want, got []string) string {
	ws, gs := map[string]bool{}, map[string]bool{}
	for _, p := range want {
		ws[p] = true
	}
	for _, p := range got {
		gs[p] = true
	}
	var b []byte
	for _, p := range got {
		if !ws[p] {
			b = fmt.Appendf(b, "  + %s\n", p)
		}
	}
	for _, p := range want {
		if !gs[p] {
			b = fmt.Appendf(b, "  - %s\n", p)
		}
	}
	return "layout diff (+ new, - missing):\n" + string(b)
}
