package core

import (
	"fmt"
	"math"

	"metaprobe/internal/stats"
)

// ED is an error distribution for one (database, query type) pair
// (Section 4, Figure 4): a histogram either of relative estimation
// errors err = (r − r̂)/r̂ (Eq. 2), or — for the r̂ = 0 band, where the
// relative error is undefined — of absolute relevancy values.
type ED struct {
	// Absolute marks a histogram over absolute relevancy values
	// (BandZero) instead of relative errors.
	Absolute bool
	// Hist accumulates the observations.
	Hist *stats.Histogram
	// UseBinMean selects the per-bin observed mean as each bin's
	// representative value in derived RDs (sharper); false uses the
	// bin midpoint (the ablation A3 baseline).
	UseBinMean bool
}

// NewED creates an empty error distribution with the given bin edges.
func NewED(edges []float64, absolute, useBinMean bool) (*ED, error) {
	h, err := stats.NewHistogram(edges)
	if err != nil {
		return nil, fmt.Errorf("core: ED: %w", err)
	}
	return &ED{Absolute: absolute, Hist: h, UseBinMean: useBinMean}, nil
}

// Observe records one training observation: the estimate r̂ and the
// actual relevancy r for a sample query.
func (e *ED) Observe(rhat, actual float64) error {
	if math.IsNaN(rhat) || math.IsNaN(actual) || actual < 0 {
		return fmt.Errorf("core: ED observation rhat=%v actual=%v is invalid", rhat, actual)
	}
	if e.Absolute {
		e.Hist.Add(actual)
		return nil
	}
	if rhat <= 0 {
		return fmt.Errorf("core: relative ED cannot observe rhat=%v; route to the zero band", rhat)
	}
	e.Hist.Add((actual - rhat) / rhat) // Eq. 2
	return nil
}

// Observations returns the number of recorded training observations.
func (e *ED) Observations() int64 { return e.Hist.Total() }

// RD derives the relevancy distribution for a new query with estimate
// rhat (Section 3.1, Example 3): each occupied bin contributes its
// probability at value r̂·(1 + e_bin) — or at the bin's absolute value
// for the zero band. Values are floored at 0 (relevancies cannot be
// negative).
func (e *ED) RD(rhat float64) (*RD, error) {
	if e.Hist.Total() == 0 {
		return nil, fmt.Errorf("core: ED has no observations")
	}
	n := e.Hist.Bins()
	values := make([]float64, 0, n)
	probs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		p := e.Hist.Prob(i)
		if p == 0 {
			continue
		}
		rep := e.Hist.Midpoint(i)
		if e.UseBinMean {
			rep = e.Hist.BinMean(i)
		}
		var v float64
		if e.Absolute {
			v = rep
		} else {
			v = rhat * (1 + rep)
		}
		if v < 0 {
			v = 0
		}
		values = append(values, v)
		probs = append(probs, p)
	}
	return NewRD(values, probs)
}

// Probs returns the per-bin probabilities (for chi-square comparisons
// and reports).
func (e *ED) Probs() []float64 { return e.Hist.Probs() }

// ReferenceSample materializes up to max points (max ≤ 0 defaults to
// 256) distributed like this ED, for the drift monitor's two-sample KS
// test of fresh probe errors against the trained distribution. Each
// occupied bin contributes its Midpoint in proportion to its count.
// Fresh observations must be mapped through Quantize before the
// comparison, so both samples live on the same discrete support and
// the KS statistic reduces to the maximum cumulative difference over
// bins — comparing a continuous sample against a bin-reconstructed one
// directly would inflate the distance by up to the largest bin's mass.
// Midpoints (never BinMean) keep the support a pure function of the
// immutable bin edges, stable under online refinement. Returns nil
// when the ED has no observations. The result is deterministic.
func (e *ED) ReferenceSample(max int) []float64 {
	total := e.Hist.Total()
	if total == 0 {
		return nil
	}
	if max <= 0 {
		max = 256
	}
	n := int64(max)
	if total < n {
		n = total
	}
	out := make([]float64, 0, n)
	for i := 0; i < e.Hist.Bins(); i++ {
		p := e.Hist.Prob(i)
		if p == 0 {
			continue
		}
		count := int64(p*float64(n) + 0.5)
		if count == 0 {
			count = 1
		}
		rep := e.Hist.Midpoint(i)
		for j := int64(0); j < count; j++ {
			out = append(out, rep)
		}
	}
	return out
}

// Quantize maps an error value to the Midpoint of its bin — the
// support ReferenceSample uses — so fresh drift-window observations
// and the trained reference are compared on identical discrete points.
func (e *ED) Quantize(v float64) float64 {
	return e.Hist.Midpoint(e.Hist.BinIndex(v))
}

// Clone deep-copies the distribution.
func (e *ED) Clone() *ED {
	return &ED{Absolute: e.Absolute, Hist: e.Hist.Clone(), UseBinMean: e.UseBinMean}
}

// Compare runs the Pearson chi-square test of this (sampled) ED's
// observations against a reference (ideal) ED's probabilities,
// implementing the Section 4.2 goodness measure. Both must share bin
// edges. minExpected pools sparse bins (0 keeps all; the paper's 10
// bins / df 9 setup corresponds to minExpected 0).
func (e *ED) Compare(ideal *ED, minExpected float64) (stats.ChiSquareResult, error) {
	if len(e.Hist.Edges) != len(ideal.Hist.Edges) {
		return stats.ChiSquareResult{}, fmt.Errorf("core: comparing EDs with different binning")
	}
	return stats.PearsonChiSquare(e.Hist.Counts, ideal.Probs(), minExpected)
}

// DefaultErrorEdges are the relative-error bins used for document
// frequency relevancy: finer near zero, an overflow bin above +400%
// (correlated terms routinely produce errors of several hundred
// percent). The lower bound −1 is exact: r ≥ 0 implies err ≥ −100%.
func DefaultErrorEdges() []float64 {
	return []float64{-1, -0.9, -0.75, -0.5, -0.25, -0.05, 0.05, 0.25, 0.5, 1.0, 2.0, 4.0, math.Inf(1)}
}

// DefaultAbsoluteEdges are the bins for the r̂ = 0 band of document
// frequency relevancy: most mass sits at exactly 0, with a geometric
// tail for sampled-summary surprises.
func DefaultAbsoluteEdges() []float64 {
	return []float64{0, 1, 2, 5, 10, 25, 50, 100, 500, math.Inf(1)}
}

// SimilarityErrorEdges are relative-error bins suited to cosine
// relevancy in [0, 1] (errors are milder than for counts).
func SimilarityErrorEdges() []float64 {
	return []float64{-1, -0.75, -0.5, -0.3, -0.15, -0.05, 0.05, 0.15, 0.3, 0.5, 1.0, math.Inf(1)}
}

// SimilarityAbsoluteEdges are absolute bins for the r̂ = 0 band of
// cosine relevancy.
func SimilarityAbsoluteEdges() []float64 {
	return []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0000001}
}
