package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"metaprobe/internal/estimate"
	"metaprobe/internal/summary"
)

// Model training is the expensive, offline part of the pipeline
// (Section 4: thousands of probe queries per database). This file
// serializes a trained model so a metasearcher can train once and
// reload at startup — or hot-reload mid-flight.
//
// Snapshot format. Since format 2 a snapshot is an envelope
//
//	{"format": 2, "checksum": "sha256:…", "savedAt": …, "model": {…}}
//
// whose checksum covers the model payload bytes, written atomically
// (temp file in the target directory + fsync + rename) so a crash
// mid-write can never clobber the previous snapshot, and loaded with
// checksum verification so a truncated or bit-rotted file fails with a
// clear error instead of producing a silently wrong model. Files
// written before format 2 — a bare model object with no envelope —
// still load through a legacy path.
//
// The relevancy definition is stored by name and resolved on load;
// custom definitions can be registered with RegisterRelevancy.

// FormatVersion is the snapshot envelope format written by Save. Bump
// it whenever the persisted model schema changes shape — the golden
// snapshot test enforces that rule.
const FormatVersion = 2

// relevancyFactories maps relevancy names to constructors for Load,
// guarded by relevancyMu: registration and loading may run on
// different goroutines (e.g. plugin init vs. a background hot-reload).
var (
	relevancyMu        sync.RWMutex
	relevancyFactories = map[string]func() estimate.Relevancy{
		"doc-frequency":  func() estimate.Relevancy { return estimate.NewDocFrequency() },
		"doc-similarity": func() estimate.Relevancy { return estimate.NewDocSimilarity() },
	}
)

// RegisterRelevancy makes a custom relevancy definition loadable by
// name. Registering a name twice is an error. Safe for concurrent use
// with LoadModel.
func RegisterRelevancy(name string, factory func() estimate.Relevancy) error {
	relevancyMu.Lock()
	defer relevancyMu.Unlock()
	if _, dup := relevancyFactories[name]; dup {
		return fmt.Errorf("core: relevancy %q already registered", name)
	}
	relevancyFactories[name] = factory
	return nil
}

// relevancyFactory resolves a registered relevancy constructor.
func relevancyFactory(name string) (func() estimate.Relevancy, bool) {
	relevancyMu.RLock()
	defer relevancyMu.RUnlock()
	f, ok := relevancyFactories[name]
	return f, ok
}

// snapshotEnvelope is the on-disk frame around the model payload.
type snapshotEnvelope struct {
	Format   int             `json:"format"`
	Checksum string          `json:"checksum"`
	SavedAt  time.Time       `json:"savedAt"`
	Model    json.RawMessage `json:"model"`
}

// SnapshotInfo describes a snapshot file without the model payload.
type SnapshotInfo struct {
	// Format is the envelope format version (1 for pre-envelope legacy
	// files).
	Format int
	// SavedAt is the write time recorded in the envelope (zero for
	// legacy files).
	SavedAt time.Time
	// Checksum is the recorded payload checksum (empty for legacy).
	Checksum string
}

// jsonModel is the persisted form of a Model.
type jsonModel struct {
	Relevancy string             `json:"relevancy"`
	Config    jsonConfig         `json:"config"`
	Summaries []*summary.Summary `json:"summaries"`
	DBs       []jsonDBModel      `json:"dbs"`
}

type jsonConfig struct {
	Threshold       float64  `json:"threshold"`
	MaxTerms        int      `json:"maxTerms"`
	ErrorEdges      edgeList `json:"errorEdges"`
	AbsoluteEdges   edgeList `json:"absoluteEdges"`
	UseBinMean      bool     `json:"useBinMean"`
	MinObservations int64    `json:"minObservations"`
}

type jsonDBModel struct {
	Name   string   `json:"name"`
	EDs    []jsonED `json:"eds"`
	Pooled *jsonED  `json:"pooled"`
}

type jsonED struct {
	Terms    int       `json:"terms"`
	Band     int       `json:"band"`
	Absolute bool      `json:"absolute"`
	Edges    edgeList  `json:"edges"`
	Counts   []int64   `json:"counts"`
	Sums     []float64 `json:"sums"`
}

// edgeList carries histogram bin edges through JSON with infinities
// encoded unambiguously as the strings "+Inf" / "-Inf" (JSON has no
// Inf literal). Finite values — including math.MaxFloat64, which the
// pre-format-2 sentinel encoding could not represent — round-trip
// exactly as numbers.
type edgeList []float64

// MarshalJSON implements json.Marshaler.
func (e edgeList) MarshalJSON() ([]byte, error) {
	items := make([]any, len(e))
	for i, v := range e {
		switch {
		case math.IsInf(v, 1):
			items[i] = "+Inf"
		case math.IsInf(v, -1):
			items[i] = "-Inf"
		case math.IsNaN(v):
			return nil, fmt.Errorf("core: edge %d is NaN", i)
		default:
			items[i] = v
		}
	}
	return json.Marshal(items)
}

// UnmarshalJSON implements json.Unmarshaler, accepting numbers and the
// "+Inf"/"-Inf" strings.
func (e *edgeList) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make([]float64, len(raw))
	for i, r := range raw {
		var s string
		if err := json.Unmarshal(r, &s); err == nil {
			switch s {
			case "+Inf", "Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			default:
				return fmt.Errorf("core: edge %d: unknown value %q", i, s)
			}
			continue
		}
		if err := json.Unmarshal(r, &out[i]); err != nil {
			return fmt.Errorf("core: edge %d: %w", i, err)
		}
	}
	*e = out
	return nil
}

// legacyInfSentinel is the pre-format-2 stand-in for infinity. Legacy
// decoding maps it back to ±Inf; format 2 files never contain it as a
// sentinel, so a legitimate MaxFloat64 edge survives round-trips.
const legacyInfSentinel = math.MaxFloat64

// decodeLegacyEdges maps the old sentinel values back to infinities.
func decodeLegacyEdges(edges []float64) []float64 {
	out := make([]float64, len(edges))
	for i, e := range edges {
		switch e {
		case legacyInfSentinel:
			out[i] = math.Inf(1)
		case -legacyInfSentinel:
			out[i] = math.Inf(-1)
		default:
			out[i] = e
		}
	}
	return out
}

func encodeED(key TypeKey, ed *ED) jsonED {
	return jsonED{
		Terms:    key.Terms,
		Band:     int(key.Band),
		Absolute: ed.Absolute,
		Edges:    edgeList(ed.Hist.Edges),
		Counts:   append([]int64(nil), ed.Hist.Counts...),
		Sums:     append([]float64(nil), ed.Hist.Sums...),
	}
}

func decodeED(j jsonED, useBinMean bool) (*ED, error) {
	ed, err := NewED(j.Edges, j.Absolute, useBinMean)
	if err != nil {
		return nil, err
	}
	if len(j.Counts) != ed.Hist.Bins() || len(j.Sums) != ed.Hist.Bins() {
		return nil, fmt.Errorf("core: persisted ED has %d counts / %d sums for %d bins",
			len(j.Counts), len(j.Sums), ed.Hist.Bins())
	}
	copy(ed.Hist.Counts, j.Counts)
	copy(ed.Hist.Sums, j.Sums)
	return ed, nil
}

// encode renders the model's persisted form.
func (m *Model) encode() jsonModel {
	jm := jsonModel{
		Relevancy: m.Rel.Name(),
		Config: jsonConfig{
			Threshold:       m.Cfg.Classifier.Threshold,
			MaxTerms:        m.Cfg.Classifier.MaxTerms,
			ErrorEdges:      edgeList(m.Cfg.ErrorEdges),
			AbsoluteEdges:   edgeList(m.Cfg.AbsoluteEdges),
			UseBinMean:      m.Cfg.UseBinMean,
			MinObservations: m.Cfg.MinObservations,
		},
		Summaries: m.Summaries.Summaries,
	}
	for _, dm := range m.DBs {
		jd := jsonDBModel{Name: dm.Name}
		// Stable order: iterate the classifier's key enumeration.
		for _, key := range m.Cfg.Classifier.AllKeys() {
			if ed, ok := dm.EDs[key]; ok {
				jd.EDs = append(jd.EDs, encodeED(key, ed))
			}
		}
		if dm.Pooled != nil {
			pooled := encodeED(TypeKey{}, dm.Pooled)
			jd.Pooled = &pooled
		}
		jm.DBs = append(jm.DBs, jd)
	}
	return jm
}

// checksum computes the envelope checksum over the payload's compact
// form, so it is insensitive to the re-indentation json.Marshal applies
// to embedded raw messages.
func checksum(payload []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return "", err
	}
	sum := sha256.Sum256(compact.Bytes())
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Save writes the trained model to path as a checksummed format-2
// snapshot, atomically: the bytes land in a temp file in the same
// directory, are fsynced, and replace path with one rename, so a crash
// at any point leaves either the old snapshot or the new one — never a
// truncated hybrid.
func (m *Model) Save(path string) error {
	payload, err := json.MarshalIndent(m.encode(), "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	sum, err := checksum(payload)
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	env := snapshotEnvelope{
		Format:   FormatVersion,
		Checksum: sum,
		SavedAt:  time.Now().UTC(),
		Model:    payload,
	}
	data, err := json.MarshalIndent(env, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding snapshot envelope: %w", err)
	}
	if err := writeFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing model: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, rename, and a directory fsync, so the file named path always
// holds either its previous content or the complete new content.
func writeFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Persist the rename itself; without this a crash can lose the new
	// directory entry even though the data blocks are safe.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadModel reads a model saved by Save. The relevancy definition is
// reconstructed by name.
func LoadModel(path string) (*Model, error) {
	m, _, err := LoadModelInfo(path)
	return m, err
}

// LoadModelInfo is LoadModel returning the snapshot metadata (format
// version, save time, checksum) alongside the model.
func LoadModelInfo(path string) (*Model, SnapshotInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("core: reading model: %w", err)
	}
	var info SnapshotInfo

	// Probe the envelope. Legacy (pre-format-2) snapshots are a bare
	// model object with no "format" member.
	var probe struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, info, fmt.Errorf("core: decoding model %s (truncated or corrupt): %w", path, err)
	}
	payload := data
	legacy := probe.Format == 0
	if legacy {
		info.Format = 1
	} else {
		if probe.Format != FormatVersion {
			return nil, info, fmt.Errorf("core: model %s uses snapshot format %d; this build reads %d (and legacy format 1)",
				path, probe.Format, FormatVersion)
		}
		var env snapshotEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, info, fmt.Errorf("core: decoding snapshot envelope %s: %w", path, err)
		}
		if len(env.Model) == 0 {
			return nil, info, fmt.Errorf("core: model %s: snapshot has no model payload (truncated?)", path)
		}
		got, err := checksum(env.Model)
		if err != nil {
			return nil, info, fmt.Errorf("core: model %s: snapshot payload is not valid JSON (truncated?): %w", path, err)
		}
		if got != env.Checksum {
			return nil, info, fmt.Errorf("core: model %s: checksum mismatch (%s recorded, %s computed) — file is corrupt or was modified",
				path, env.Checksum, got)
		}
		info = SnapshotInfo{Format: env.Format, SavedAt: env.SavedAt, Checksum: env.Checksum}
		payload = env.Model
	}

	var jm jsonModel
	if err := json.Unmarshal(payload, &jm); err != nil {
		return nil, info, fmt.Errorf("core: decoding model %s (truncated or corrupt): %w", path, err)
	}
	if legacy {
		jm.Config.ErrorEdges = decodeLegacyEdges(jm.Config.ErrorEdges)
		jm.Config.AbsoluteEdges = decodeLegacyEdges(jm.Config.AbsoluteEdges)
		for di := range jm.DBs {
			for ei := range jm.DBs[di].EDs {
				jm.DBs[di].EDs[ei].Edges = decodeLegacyEdges(jm.DBs[di].EDs[ei].Edges)
			}
			if jm.DBs[di].Pooled != nil {
				jm.DBs[di].Pooled.Edges = decodeLegacyEdges(jm.DBs[di].Pooled.Edges)
			}
		}
	}
	m, err := decodeModel(path, jm)
	return m, info, err
}

// decodeModel reconstructs a Model from its persisted form.
func decodeModel(path string, jm jsonModel) (*Model, error) {
	factory, ok := relevancyFactory(jm.Relevancy)
	if !ok {
		return nil, fmt.Errorf("core: model uses unknown relevancy %q (register it with RegisterRelevancy)", jm.Relevancy)
	}
	if len(jm.DBs) == 0 {
		return nil, fmt.Errorf("core: model %s has no databases", path)
	}
	if len(jm.Summaries) != len(jm.DBs) {
		return nil, fmt.Errorf("core: model %s has %d summaries for %d databases", path, len(jm.Summaries), len(jm.DBs))
	}
	for _, s := range jm.Summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: model %s: %w", path, err)
		}
	}
	m := &Model{
		Cfg: Config{
			Classifier:      Classifier{Threshold: jm.Config.Threshold, MaxTerms: jm.Config.MaxTerms},
			ErrorEdges:      jm.Config.ErrorEdges,
			AbsoluteEdges:   jm.Config.AbsoluteEdges,
			UseBinMean:      jm.Config.UseBinMean,
			MinObservations: jm.Config.MinObservations,
		},
		Rel:       factory(),
		Summaries: &summary.Set{Summaries: jm.Summaries},
	}
	var err error
	for _, jd := range jm.DBs {
		dm := &DBModel{Name: jd.Name, EDs: make(map[TypeKey]*ED, len(jd.EDs))}
		for _, je := range jd.EDs {
			ed, err := decodeED(je, m.Cfg.UseBinMean)
			if err != nil {
				return nil, fmt.Errorf("core: model %s db %s: %w", path, jd.Name, err)
			}
			dm.EDs[TypeKey{Terms: je.Terms, Band: EstimateBand(je.Band)}] = ed
		}
		if jd.Pooled != nil {
			dm.Pooled, err = decodeED(*jd.Pooled, m.Cfg.UseBinMean)
			if err != nil {
				return nil, fmt.Errorf("core: model %s db %s pooled: %w", path, jd.Name, err)
			}
		} else {
			dm.Pooled, err = NewED(m.Cfg.ErrorEdges, false, m.Cfg.UseBinMean)
			if err != nil {
				return nil, err
			}
		}
		m.DBs = append(m.DBs, dm)
	}
	return m, nil
}

// ObserveProbe folds a live probe observation back into the model —
// the online-refinement extension the paper's future-work section
// points toward: every probe APro performs is also a free training
// sample, so the error distributions keep improving (and track
// database drift) during operation.
func (m *Model) ObserveProbe(dbIdx int, query string, numTerms int, actual float64) error {
	if dbIdx < 0 || dbIdx >= len(m.DBs) {
		return fmt.Errorf("core: ObserveProbe: database index %d outside [0, %d)", dbIdx, len(m.DBs))
	}
	rhat := m.Rel.Estimate(m.Summaries.Summaries[dbIdx], query)
	key := m.Cfg.Classifier.Classify(numTerms, rhat)
	dm := m.DBs[dbIdx]
	ed, ok := dm.EDs[key]
	if !ok {
		edges := m.Cfg.ErrorEdges
		absolute := key.Band == BandZero
		if absolute {
			edges = m.Cfg.AbsoluteEdges
		}
		var err error
		ed, err = NewED(edges, absolute, m.Cfg.UseBinMean)
		if err != nil {
			return err
		}
		dm.EDs[key] = ed
	}
	if err := ed.Observe(rhat, actual); err != nil {
		return fmt.Errorf("core: ObserveProbe: %w", err)
	}
	if key.Band != BandZero {
		if err := dm.Pooled.Observe(rhat, actual); err != nil {
			return err
		}
	}
	return nil
}
