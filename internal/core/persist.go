package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"metaprobe/internal/estimate"
	"metaprobe/internal/summary"
)

// Model training is the expensive, offline part of the pipeline
// (Section 4: thousands of probe queries per database). This file
// serializes a trained model to JSON so a metasearcher can train once
// and reload at startup.
//
// The relevancy definition is stored by name and resolved on load;
// custom definitions can be registered with RegisterRelevancy.

// relevancyFactories maps relevancy names to constructors for Load.
var relevancyFactories = map[string]func() estimate.Relevancy{
	"doc-frequency":  func() estimate.Relevancy { return estimate.NewDocFrequency() },
	"doc-similarity": func() estimate.Relevancy { return estimate.NewDocSimilarity() },
}

// RegisterRelevancy makes a custom relevancy definition loadable by
// name. Registering a name twice is an error.
func RegisterRelevancy(name string, factory func() estimate.Relevancy) error {
	if _, dup := relevancyFactories[name]; dup {
		return fmt.Errorf("core: relevancy %q already registered", name)
	}
	relevancyFactories[name] = factory
	return nil
}

// jsonModel is the persisted form of a Model.
type jsonModel struct {
	Relevancy string             `json:"relevancy"`
	Config    jsonConfig         `json:"config"`
	Summaries []*summary.Summary `json:"summaries"`
	DBs       []jsonDBModel      `json:"dbs"`
}

type jsonConfig struct {
	Threshold       float64   `json:"threshold"`
	MaxTerms        int       `json:"maxTerms"`
	ErrorEdges      []float64 `json:"errorEdges"`
	AbsoluteEdges   []float64 `json:"absoluteEdges"`
	UseBinMean      bool      `json:"useBinMean"`
	MinObservations int64     `json:"minObservations"`
}

type jsonDBModel struct {
	Name   string   `json:"name"`
	EDs    []jsonED `json:"eds"`
	Pooled *jsonED  `json:"pooled"`
}

type jsonED struct {
	Terms    int       `json:"terms"`
	Band     int       `json:"band"`
	Absolute bool      `json:"absolute"`
	Edges    []float64 `json:"edges"`
	Counts   []int64   `json:"counts"`
	Sums     []float64 `json:"sums"`
}

// infinity survives JSON round-trips as this sentinel (JSON has no
// Inf literal).
const infSentinel = math.MaxFloat64

func encodeEdges(edges []float64) []float64 {
	out := make([]float64, len(edges))
	for i, e := range edges {
		switch {
		case math.IsInf(e, 1):
			out[i] = infSentinel
		case math.IsInf(e, -1):
			out[i] = -infSentinel
		default:
			out[i] = e
		}
	}
	return out
}

func decodeEdges(edges []float64) []float64 {
	out := make([]float64, len(edges))
	for i, e := range edges {
		switch e {
		case infSentinel:
			out[i] = math.Inf(1)
		case -infSentinel:
			out[i] = math.Inf(-1)
		default:
			out[i] = e
		}
	}
	return out
}

func encodeED(key TypeKey, ed *ED) jsonED {
	return jsonED{
		Terms:    key.Terms,
		Band:     int(key.Band),
		Absolute: ed.Absolute,
		Edges:    encodeEdges(ed.Hist.Edges),
		Counts:   append([]int64(nil), ed.Hist.Counts...),
		Sums:     append([]float64(nil), ed.Hist.Sums...),
	}
}

func decodeED(j jsonED, useBinMean bool) (*ED, error) {
	ed, err := NewED(decodeEdges(j.Edges), j.Absolute, useBinMean)
	if err != nil {
		return nil, err
	}
	if len(j.Counts) != ed.Hist.Bins() || len(j.Sums) != ed.Hist.Bins() {
		return nil, fmt.Errorf("core: persisted ED has %d counts / %d sums for %d bins",
			len(j.Counts), len(j.Sums), ed.Hist.Bins())
	}
	copy(ed.Hist.Counts, j.Counts)
	copy(ed.Hist.Sums, j.Sums)
	return ed, nil
}

// Save writes the trained model to path as JSON.
func (m *Model) Save(path string) error {
	jm := jsonModel{
		Relevancy: m.Rel.Name(),
		Config: jsonConfig{
			Threshold:       m.Cfg.Classifier.Threshold,
			MaxTerms:        m.Cfg.Classifier.MaxTerms,
			ErrorEdges:      encodeEdges(m.Cfg.ErrorEdges),
			AbsoluteEdges:   encodeEdges(m.Cfg.AbsoluteEdges),
			UseBinMean:      m.Cfg.UseBinMean,
			MinObservations: m.Cfg.MinObservations,
		},
		Summaries: m.Summaries.Summaries,
	}
	for _, dm := range m.DBs {
		jd := jsonDBModel{Name: dm.Name}
		// Stable order: iterate the classifier's key enumeration.
		for _, key := range m.Cfg.Classifier.AllKeys() {
			if ed, ok := dm.EDs[key]; ok {
				jd.EDs = append(jd.EDs, encodeED(key, ed))
			}
		}
		if dm.Pooled != nil {
			pooled := encodeED(TypeKey{}, dm.Pooled)
			jd.Pooled = &pooled
		}
		jm.DBs = append(jm.DBs, jd)
	}
	data, err := json.MarshalIndent(jm, "", " ")
	if err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("core: writing model: %w", err)
	}
	return nil
}

// LoadModel reads a model saved by Save. The relevancy definition is
// reconstructed by name.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading model: %w", err)
	}
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return nil, fmt.Errorf("core: decoding model %s: %w", path, err)
	}
	factory, ok := relevancyFactories[jm.Relevancy]
	if !ok {
		return nil, fmt.Errorf("core: model uses unknown relevancy %q (register it with RegisterRelevancy)", jm.Relevancy)
	}
	if len(jm.DBs) == 0 {
		return nil, fmt.Errorf("core: model %s has no databases", path)
	}
	if len(jm.Summaries) != len(jm.DBs) {
		return nil, fmt.Errorf("core: model %s has %d summaries for %d databases", path, len(jm.Summaries), len(jm.DBs))
	}
	for _, s := range jm.Summaries {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("core: model %s: %w", path, err)
		}
	}
	m := &Model{
		Cfg: Config{
			Classifier:      Classifier{Threshold: jm.Config.Threshold, MaxTerms: jm.Config.MaxTerms},
			ErrorEdges:      decodeEdges(jm.Config.ErrorEdges),
			AbsoluteEdges:   decodeEdges(jm.Config.AbsoluteEdges),
			UseBinMean:      jm.Config.UseBinMean,
			MinObservations: jm.Config.MinObservations,
		},
		Rel:       factory(),
		Summaries: &summary.Set{Summaries: jm.Summaries},
	}
	for _, jd := range jm.DBs {
		dm := &DBModel{Name: jd.Name, EDs: make(map[TypeKey]*ED, len(jd.EDs))}
		for _, je := range jd.EDs {
			ed, err := decodeED(je, m.Cfg.UseBinMean)
			if err != nil {
				return nil, fmt.Errorf("core: model %s db %s: %w", path, jd.Name, err)
			}
			dm.EDs[TypeKey{Terms: je.Terms, Band: EstimateBand(je.Band)}] = ed
		}
		if jd.Pooled != nil {
			dm.Pooled, err = decodeED(*jd.Pooled, m.Cfg.UseBinMean)
			if err != nil {
				return nil, fmt.Errorf("core: model %s db %s pooled: %w", path, jd.Name, err)
			}
		} else {
			dm.Pooled, err = NewED(m.Cfg.ErrorEdges, false, m.Cfg.UseBinMean)
			if err != nil {
				return nil, err
			}
		}
		m.DBs = append(m.DBs, dm)
	}
	return m, nil
}

// ObserveProbe folds a live probe observation back into the model —
// the online-refinement extension the paper's future-work section
// points toward: every probe APro performs is also a free training
// sample, so the error distributions keep improving (and track
// database drift) during operation.
func (m *Model) ObserveProbe(dbIdx int, query string, numTerms int, actual float64) error {
	if dbIdx < 0 || dbIdx >= len(m.DBs) {
		return fmt.Errorf("core: ObserveProbe: database index %d outside [0, %d)", dbIdx, len(m.DBs))
	}
	rhat := m.Rel.Estimate(m.Summaries.Summaries[dbIdx], query)
	key := m.Cfg.Classifier.Classify(numTerms, rhat)
	dm := m.DBs[dbIdx]
	ed, ok := dm.EDs[key]
	if !ok {
		edges := m.Cfg.ErrorEdges
		absolute := key.Band == BandZero
		if absolute {
			edges = m.Cfg.AbsoluteEdges
		}
		var err error
		ed, err = NewED(edges, absolute, m.Cfg.UseBinMean)
		if err != nil {
			return err
		}
		dm.EDs[key] = ed
	}
	if err := ed.Observe(rhat, actual); err != nil {
		return fmt.Errorf("core: ObserveProbe: %w", err)
	}
	if key.Band != BandZero {
		if err := dm.Pooled.Observe(rhat, actual); err != nil {
			return err
		}
	}
	return nil
}
