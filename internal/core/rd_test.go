package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRDNormalizesAndSorts(t *testing.T) {
	rd, err := NewRD([]float64{100, 50, 150, 50}, []float64{2, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.validate(); err != nil {
		t.Fatal(err)
	}
	if rd.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate merged)", rd.Len())
	}
	if rd.Value(0) != 50 || rd.Value(1) != 100 || rd.Value(2) != 150 {
		t.Errorf("values = %v", rd.Support())
	}
	if math.Abs(rd.Prob(0)-0.4) > 1e-12 || math.Abs(rd.Prob(1)-0.4) > 1e-12 || math.Abs(rd.Prob(2)-0.2) > 1e-12 {
		t.Errorf("probs = %v %v %v", rd.Prob(0), rd.Prob(1), rd.Prob(2))
	}
}

func TestNewRDErrors(t *testing.T) {
	cases := []struct {
		v, p []float64
	}{
		{nil, nil},
		{[]float64{1}, []float64{1, 2}},
		{[]float64{1}, []float64{0}},
		{[]float64{1}, []float64{-1}},
		{[]float64{math.NaN()}, []float64{1}},
		{[]float64{math.Inf(1)}, []float64{1}},
		{[]float64{1}, []float64{math.NaN()}},
	}
	for i, c := range cases {
		if _, err := NewRD(c.v, c.p); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestImpulse(t *testing.T) {
	rd := Impulse(42)
	if !rd.IsImpulse() || rd.Mean() != 42 || rd.Variance() != 0 || rd.Entropy() != 0 {
		t.Errorf("impulse properties wrong: %v", rd)
	}
	if got := rd.String(); got != "impulse(42)" {
		t.Errorf("String = %q", got)
	}
}

func TestRDCDFOps(t *testing.T) {
	rd := MustRD([]float64{50, 100, 150}, []float64{0.4, 0.5, 0.1})
	cases := []struct {
		v                 float64
		greater, eq, less float64
	}{
		{0, 1, 0, 0},
		{50, 0.6, 0.4, 0},
		{75, 0.6, 0, 0.4},
		{100, 0.1, 0.5, 0.4},
		{150, 0, 0.1, 0.9},
		{200, 0, 0, 1},
	}
	for _, c := range cases {
		if got := rd.PrGreater(c.v); math.Abs(got-c.greater) > 1e-12 {
			t.Errorf("PrGreater(%v) = %v, want %v", c.v, got, c.greater)
		}
		if got := rd.PrEq(c.v); math.Abs(got-c.eq) > 1e-12 {
			t.Errorf("PrEq(%v) = %v, want %v", c.v, got, c.eq)
		}
		if got := rd.PrLess(c.v); math.Abs(got-c.less) > 1e-12 {
			t.Errorf("PrLess(%v) = %v, want %v", c.v, got, c.less)
		}
	}
}

func TestRDMeanVarianceEntropy(t *testing.T) {
	rd := MustRD([]float64{0, 10}, []float64{0.5, 0.5})
	if rd.Mean() != 5 {
		t.Errorf("Mean = %v", rd.Mean())
	}
	if rd.Variance() != 25 {
		t.Errorf("Variance = %v", rd.Variance())
	}
	if math.Abs(rd.Entropy()-math.Log(2)) > 1e-12 {
		t.Errorf("Entropy = %v, want ln 2", rd.Entropy())
	}
	if !strings.HasPrefix(rd.String(), "RD{") {
		t.Errorf("String = %q", rd.String())
	}
}

// Property: for any RD, PrLess + PrEq + PrGreater = 1 at every point,
// and the three are consistent with the support.
func TestRDPartitionProperty(t *testing.T) {
	f := func(rawV []int16, rawP []uint8) bool {
		n := len(rawV)
		if n == 0 || len(rawP) < n {
			return true
		}
		vals := make([]float64, n)
		probs := make([]float64, n)
		positive := false
		for i := 0; i < n; i++ {
			vals[i] = float64(rawV[i])
			probs[i] = float64(rawP[i])
			if rawP[i] > 0 {
				positive = true
			}
		}
		if !positive {
			return true
		}
		rd, err := NewRD(vals, probs)
		if err != nil {
			return false
		}
		if rd.validate() != nil {
			return false
		}
		for _, v := range append(rd.Support(), -1e9, 0.5, 1e9) {
			s := rd.PrLess(v) + rd.PrEq(v) + rd.PrGreater(v)
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEDToRDPaperExample3 reproduces Example 3: ED with errors
// {−50%: 0.4, 0%: 0.5, +50%: 0.1} and r̂ = 100 yields the RD
// {50: 0.4, 100: 0.5, 150: 0.1}.
func TestEDToRDPaperExample3(t *testing.T) {
	ed, err := NewED([]float64{-0.75, -0.25, 0.25, 0.75}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	// 4 observations at −50%, 5 at 0%, 1 at +50% (Example 2's counts
	// scaled down from 100 sample queries).
	for i := 0; i < 4; i++ {
		mustObserve(t, ed, 100, 50) // err = −0.5
	}
	for i := 0; i < 5; i++ {
		mustObserve(t, ed, 100, 100) // err = 0
	}
	mustObserve(t, ed, 100, 150) // err = +0.5

	rd, err := ed.RD(100)
	if err != nil {
		t.Fatal(err)
	}
	want := MustRD([]float64{50, 100, 150}, []float64{0.4, 0.5, 0.1})
	if rd.Len() != 3 {
		t.Fatalf("RD = %v", rd)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(rd.Value(i)-want.Value(i)) > 1e-9 || math.Abs(rd.Prob(i)-want.Prob(i)) > 1e-9 {
			t.Errorf("RD[%d] = (%v, %v), want (%v, %v)", i, rd.Value(i), rd.Prob(i), want.Value(i), want.Prob(i))
		}
	}
}

func mustObserve(t *testing.T, ed *ED, rhat, actual float64) {
	t.Helper()
	if err := ed.Observe(rhat, actual); err != nil {
		t.Fatal(err)
	}
}

func TestEDZeroBandAbsolute(t *testing.T) {
	ed, err := NewED(DefaultAbsoluteEdges(), true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Exact summaries: r̂ = 0 always sees r = 0.
	for i := 0; i < 10; i++ {
		mustObserve(t, ed, 0, 0)
	}
	rd, err := ed.RD(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.IsImpulse() || rd.Value(0) != 0 {
		t.Errorf("zero-band RD = %v, want impulse(0)", rd)
	}
	// Sampled summaries: a few surprises.
	mustObserve(t, ed, 0, 3)
	mustObserve(t, ed, 0, 30)
	rd, err = ed.RD(0)
	if err != nil {
		t.Fatal(err)
	}
	if rd.IsImpulse() {
		t.Errorf("zero-band RD with surprises should not be an impulse: %v", rd)
	}
	if rd.Value(0) != 0 {
		t.Errorf("zero-band RD should retain mass at 0: %v", rd)
	}
}

func TestEDErrors(t *testing.T) {
	ed, err := NewED(DefaultErrorEdges(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.Observe(0, 5); err == nil {
		t.Error("relative ED must reject rhat=0")
	}
	if err := ed.Observe(10, -1); err == nil {
		t.Error("negative actual must be rejected")
	}
	if err := ed.Observe(math.NaN(), 5); err == nil {
		t.Error("NaN rhat must be rejected")
	}
	if _, err := ed.RD(100); err == nil {
		t.Error("empty ED cannot derive an RD")
	}
	if _, err := NewED([]float64{1}, false, true); err == nil {
		t.Error("bad edges must be rejected")
	}
}

func TestEDRDFloorsNegativeValues(t *testing.T) {
	// Midpoint of bin [−1, −0.9) is −0.95 → value r̂·0.05 ≥ 0; but a
	// constructed bin reaching below −1 must floor at 0.
	ed, err := NewED([]float64{-2, -1.5, 0, 1}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	ed.Hist.Add(-1.8)
	ed.Hist.Add(0.5)
	rd, err := ed.RD(100)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Value(0) != 0 {
		t.Errorf("negative relevancy not floored: %v", rd)
	}
}

func TestEDCompareChiSquare(t *testing.T) {
	mk := func(obs []float64) *ED {
		ed, err := NewED([]float64{-1, -0.5, 0, 0.5, 1}, false, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range obs {
			ed.Hist.Add(e)
		}
		return ed
	}
	ideal := mk([]float64{-0.7, -0.7, -0.2, -0.2, -0.2, 0.2, 0.2, 0.7, 0.7, 0.7})
	same := mk([]float64{-0.7, -0.7, -0.2, -0.2, -0.2, 0.2, 0.2, 0.7, 0.7, 0.7})
	res, err := same.Compare(ideal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.99 {
		t.Errorf("identical EDs should accept: p = %v", res.PValue)
	}
	skewed := mk([]float64{0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7, 0.7})
	res, err = skewed.Compare(ideal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.05 {
		t.Errorf("skewed ED should reject: p = %v", res.PValue)
	}
	other, err := NewED([]float64{0, 1}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := same.Compare(other, 0); err == nil {
		t.Error("different binning must fail")
	}
}

func TestEDClone(t *testing.T) {
	ed, err := NewED(DefaultErrorEdges(), false, true)
	if err != nil {
		t.Fatal(err)
	}
	mustObserve(t, ed, 100, 120)
	cl := ed.Clone()
	mustObserve(t, cl, 100, 80)
	if ed.Observations() != 1 || cl.Observations() != 2 {
		t.Error("clone shares state")
	}
}

func TestClassifier(t *testing.T) {
	c := DefaultClassifier()
	cases := []struct {
		terms int
		rhat  float64
		want  TypeKey
	}{
		{2, 0, TypeKey{2, BandZero}},
		{2, 50, TypeKey{2, BandLow}},
		{2, 99.99, TypeKey{2, BandLow}},
		{2, 100, TypeKey{2, BandHigh}},
		{3, 5000, TypeKey{3, BandHigh}},
		{7, 5, TypeKey{4, BandLow}}, // clamped
		{0, 5, TypeKey{1, BandLow}}, // clamped
		{2, -3, TypeKey{2, BandZero}},
	}
	for _, cse := range cases {
		if got := c.Classify(cse.terms, cse.rhat); got != cse.want {
			t.Errorf("Classify(%d, %v) = %v, want %v", cse.terms, cse.rhat, got, cse.want)
		}
	}
	if got := (TypeKey{2, BandHigh}).String(); got != "2-term/high" {
		t.Errorf("TypeKey.String = %q", got)
	}
	if len(c.AllKeys()) != 12 {
		t.Errorf("AllKeys = %d keys, want 12", len(c.AllKeys()))
	}
}
