package core

import (
	"math"
	"testing"

	"metaprobe/internal/stats"
)

// paperRDs returns the RDs of Figure 5(d): db1 = {50: 0.4, 100: 0.5,
// 150: 0.1} (derived in Example 3) and db2 = {65: 0.1, 130: 0.9}
// (the estimator underestimates db2 by 100% for 90% of queries).
func paperRDs() []*RD {
	return []*RD{
		MustRD([]float64{50, 100, 150}, []float64{0.4, 0.5, 0.1}),
		MustRD([]float64{65, 130}, []float64{0.1, 0.9}),
	}
}

// TestPaperExample4Certainty reproduces the paper's Example 4: from
// the two RDs, db2 is the most relevant database with probability
// 0.85 (0.81 from r₂=130 beating {50,100} plus 0.04 from r₂=65
// beating 50).
func TestPaperExample4Certainty(t *testing.T) {
	rds := paperRDs()
	got := MembershipProb(rds, 1, 1)
	if math.Abs(got-0.85) > 1e-12 {
		t.Errorf("P(db2 = top1) = %v, want 0.85", got)
	}
	// Complementarily, db1 wins with probability 0.15.
	if got := MembershipProb(rds, 0, 1); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("P(db1 = top1) = %v, want 0.15", got)
	}
	// E[Cor_a({db2})] must agree, and BestSet must return db2.
	if got := ExpectedAbsolute(rds, []int{1}); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("E[Cor_a({db2})] = %v, want 0.85", got)
	}
	set, e := BestSet(Absolute, rds, 1, BestSetOptions{})
	if len(set) != 1 || set[0] != 1 || math.Abs(e-0.85) > 1e-12 {
		t.Errorf("BestSet = %v with E %v, want [1] at 0.85", set, e)
	}
}

// TestPaperSection34Probing reproduces Section 3.4: probing db1 and
// observing r₁ = 50 turns db1's RD into an impulse and raises the
// certainty of returning db2 from 0.85 to 1.
func TestPaperSection34Probing(t *testing.T) {
	sel := NewSelectionFromRDs(paperRDs(), Absolute, 1)
	set, e := sel.Best()
	if set[0] != 1 || math.Abs(e-0.85) > 1e-12 {
		t.Fatalf("pre-probe best = %v at %v", set, e)
	}
	sel.ApplyProbe(0, 50)
	set, e = sel.Best()
	if set[0] != 1 || math.Abs(e-1) > 1e-12 {
		t.Errorf("post-probe best = %v at %v, want db2 at 1", set, e)
	}
	if !sel.Probed(0) || sel.Probed(1) {
		t.Error("probed flags wrong")
	}
}

// TestExpectedPartialPaperFormula checks Eq. 6 with the worked DB²
// example of Section 5.1: P(2 overlaps) = 0.5, P(1 overlap) = 0.3,
// P(0) = 0.2 gives E[Cor_p] = 0.5·1 + 0.3·0.5 = 0.65. We construct an
// equivalent situation directly from membership marginals: E[Cor_p]
// is the mean of the two membership probabilities.
func TestExpectedPartialIsMeanOfMarginals(t *testing.T) {
	rds := []*RD{
		MustRD([]float64{10, 20}, []float64{0.5, 0.5}),
		MustRD([]float64{5, 25}, []float64{0.3, 0.7}),
		MustRD([]float64{8, 18}, []float64{0.6, 0.4}),
		Impulse(12),
	}
	for k := 1; k <= 3; k++ {
		for _, set := range [][]int{{0, 1}, {1, 2}, {0, 3}} {
			if len(set) != k {
				continue
			}
		}
	}
	set := []int{0, 2}
	want := (MembershipProb(rds, 0, 2) + MembershipProb(rds, 2, 2)) / 2
	if got := ExpectedPartial(rds, set); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedPartial = %v, want %v", got, want)
	}
}

// enumerate computes exact expected correctness by brute force over
// the joint support (the ground truth for the factored formulas).
func enumerate(rds []*RD, set []int, metric Metric) float64 {
	n := len(rds)
	inSet := make([]bool, n)
	for _, i := range set {
		inSet[i] = true
	}
	k := len(set)
	vals := make([]float64, n)
	var total float64
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == n {
			// Rank by (value desc, index asc).
			beats := func(a, b int) bool {
				return vals[a] > vals[b] || (vals[a] == vals[b] && a < b)
			}
			overlap := 0
			for s := 0; s < n; s++ {
				if !inSet[s] {
					continue
				}
				rank := 0
				for o := 0; o < n; o++ {
					if o != s && beats(o, s) {
						rank++
					}
				}
				if rank < k {
					overlap++
				}
			}
			switch metric {
			case Absolute:
				if overlap == k {
					total += p
				}
			case Partial:
				total += p * float64(overlap) / float64(k)
			}
			return
		}
		for vi := 0; vi < rds[i].Len(); vi++ {
			vals[i] = rds[i].Value(vi)
			rec(i+1, p*rds[i].Prob(vi))
		}
	}
	rec(0, 1)
	return total
}

// TestExpectedCorrectnessAgainstBruteForce cross-checks the factored
// formulas against joint-support enumeration on randomized cases with
// deliberate value ties.
func TestExpectedCorrectnessAgainstBruteForce(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(3) // 3..5 databases
		rds := make([]*RD, n)
		for i := range rds {
			support := 1 + rng.Intn(3)
			vals := make([]float64, support)
			probs := make([]float64, support)
			for j := range vals {
				vals[j] = float64(rng.Intn(5) * 10) // ties across DBs on purpose
				probs[j] = 0.1 + rng.Float64()
			}
			// Ensure distinct values within one RD.
			for j := range vals {
				vals[j] += float64(j) * 0.001
			}
			rds[i] = MustRD(vals, probs)
		}
		k := 1 + rng.Intn(n-1)
		set := stats.SampleWithoutReplacement(rng, n, k)
		for _, metric := range []Metric{Absolute, Partial} {
			got := Expected(metric, rds, set)
			want := enumerate(rds, set, metric)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: %v metric k=%d set=%v: got %v, want %v (rds=%v)",
					trial, metric, k, set, got, want, rds)
			}
		}
		// Membership marginals against brute force too.
		for i := 0; i < n; i++ {
			got := MembershipProb(rds, i, k)
			want := enumerate(rds, []int{i}, Partial) // k=1 overlap of {i}... not the same k!
			_ = want
			// Brute-force membership with the real k:
			wantK := bruteMembership(rds, i, k)
			if math.Abs(got-wantK) > 1e-9 {
				t.Fatalf("trial %d: membership(%d, k=%d) = %v, want %v", trial, i, k, got, wantK)
			}
		}
	}
}

// bruteMembership enumerates P(db i ∈ topk) over the joint support.
func bruteMembership(rds []*RD, target, k int) float64 {
	n := len(rds)
	vals := make([]float64, n)
	var total float64
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if i == n {
			beats := 0
			for o := 0; o < n; o++ {
				if o == target {
					continue
				}
				if vals[o] > vals[target] || (vals[o] == vals[target] && o < target) {
					beats++
				}
			}
			if beats < k {
				total += p
			}
			return
		}
		for vi := 0; vi < rds[i].Len(); vi++ {
			vals[i] = rds[i].Value(vi)
			rec(i+1, p*rds[i].Prob(vi))
		}
	}
	rec(0, 1)
	return total
}

// TestTieBreakingMatchesGoldenOrder pins the tie-break convention:
// with identical impulse RDs, the lower index wins.
func TestTieBreakingMatchesGoldenOrder(t *testing.T) {
	rds := []*RD{Impulse(10), Impulse(10), Impulse(10)}
	if got := MembershipProb(rds, 0, 1); got != 1 {
		t.Errorf("P(db0 = top1) = %v, want 1 (ties go to lower index)", got)
	}
	if got := MembershipProb(rds, 1, 1); got != 0 {
		t.Errorf("P(db1 = top1) = %v, want 0", got)
	}
	if got := MembershipProb(rds, 1, 2); got != 1 {
		t.Errorf("P(db1 ∈ top2) = %v, want 1", got)
	}
	if got := ExpectedAbsolute(rds, []int{0, 1}); got != 1 {
		t.Errorf("E[Cor_a({0,1})] = %v, want 1", got)
	}
	if got := ExpectedAbsolute(rds, []int{1, 2}); got != 0 {
		t.Errorf("E[Cor_a({1,2})] = %v, want 0", got)
	}
}

func TestExpectedEdgeCases(t *testing.T) {
	rds := paperRDs()
	if got := ExpectedPartial(rds, nil); got != 0 {
		t.Errorf("empty set partial = %v", got)
	}
	if got := ExpectedAbsolute(rds, nil); got != 0 {
		t.Errorf("empty set absolute = %v", got)
	}
	if got := ExpectedAbsolute(rds, []int{0, 1}); got != 1 {
		t.Errorf("full set absolute = %v, want 1", got)
	}
	if got := MembershipProb(rds, 0, 2); got != 1 {
		t.Errorf("membership with k=n = %v, want 1", got)
	}
	if got := MembershipProb(rds, 0, 0); got != 0 {
		t.Errorf("membership with k=0 = %v, want 0", got)
	}
}

func TestBestSetPartialExactness(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(2)
		rds := make([]*RD, n)
		for i := range rds {
			vals := []float64{float64(rng.Intn(40)), float64(40 + rng.Intn(40))}
			probs := []float64{rng.Float64() + 0.05, rng.Float64() + 0.05}
			rds[i] = MustRD(vals, probs)
		}
		k := 2
		set, e := BestSet(Partial, rds, k, BestSetOptions{})
		// Exhaustive check.
		bestE := -1.0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if v := ExpectedPartial(rds, []int{a, b}); v > bestE {
					bestE = v
				}
			}
		}
		if math.Abs(e-bestE) > 1e-9 {
			t.Fatalf("trial %d: BestSet(Partial) = %v at %v, exhaustive best %v", trial, set, e, bestE)
		}
	}
}

func TestBestSetAbsoluteExhaustiveAgreement(t *testing.T) {
	rng := stats.NewRNG(14)
	for trial := 0; trial < 30; trial++ {
		n := 5
		rds := make([]*RD, n)
		for i := range rds {
			vals := []float64{float64(rng.Intn(40)), float64(40 + rng.Intn(40))}
			probs := []float64{rng.Float64() + 0.05, rng.Float64() + 0.05}
			rds[i] = MustRD(vals, probs)
		}
		k := 2
		// Small n: ExhaustiveLimit covers C(5,2)=10 subsets, so the
		// result must be the global optimum.
		set, e := BestSet(Absolute, rds, k, BestSetOptions{})
		bestE := -1.0
		var bestSet []int
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if v := ExpectedAbsolute(rds, []int{a, b}); v > bestE {
					bestE, bestSet = v, []int{a, b}
				}
			}
		}
		if math.Abs(e-bestE) > 1e-9 {
			t.Fatalf("trial %d: BestSet(Absolute) = %v at %v, exhaustive %v at %v", trial, set, e, bestSet, bestE)
		}
	}
}

func TestBestSetDegenerateInputs(t *testing.T) {
	rds := paperRDs()
	if set, e := BestSet(Absolute, rds, 0, BestSetOptions{}); set != nil || e != 0 {
		t.Errorf("k=0: %v, %v", set, e)
	}
	if set, e := BestSet(Absolute, rds, 5, BestSetOptions{}); len(set) != 2 || e != 1 {
		t.Errorf("k>n: %v, %v", set, e)
	}
	if set, _ := BestSet(Partial, rds, 2, BestSetOptions{}); len(set) != 2 {
		t.Errorf("k=n: %v", set)
	}
}

// TestMonteCarloAgreement samples from larger random RDs and compares
// the closed-form expected correctness with simulation.
func TestMonteCarloAgreement(t *testing.T) {
	rng := stats.NewRNG(99)
	n := 8
	rds := make([]*RD, n)
	for i := range rds {
		m := 2 + rng.Intn(4)
		vals := make([]float64, m)
		probs := make([]float64, m)
		for j := range vals {
			vals[j] = float64(rng.Intn(1000))
			probs[j] = rng.Float64() + 0.01
		}
		for j := range vals {
			vals[j] += float64(j) * 0.01
		}
		rds[i] = MustRD(vals, probs)
	}
	k := 3
	set, e := BestSet(Absolute, rds, k, BestSetOptions{})

	const samples = 200000
	hits := 0
	vals := make([]float64, n)
	for s := 0; s < samples; s++ {
		for i, rd := range rds {
			u := rng.Float64()
			acc := 0.0
			vals[i] = rd.Value(rd.Len() - 1)
			for vi := 0; vi < rd.Len(); vi++ {
				acc += rd.Prob(vi)
				if u < acc {
					vals[i] = rd.Value(vi)
					break
				}
			}
		}
		top := TopKByScore(vals, k)
		same := true
		for i := range top {
			if top[i] != set[i] {
				same = false
				break
			}
		}
		if same {
			hits++
		}
	}
	mc := float64(hits) / samples
	se := math.Sqrt(e*(1-e)/samples) + 1e-6
	if math.Abs(mc-e) > 6*se+0.005 {
		t.Errorf("Monte Carlo %v vs closed form %v (se %v)", mc, e, se)
	}
}
