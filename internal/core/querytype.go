package core

import "fmt"

// EstimateBand partitions queries by the magnitude of their initial
// estimate r̂(db, q) on a given database (Section 4.1's second
// criterion). The paper observes that queries with r̂ below a threshold
// behave very differently (the database barely covers the topic, actual
// relevancy is typically near zero, errors skew negative) from queries
// above it (the database covers the topic, correlated terms make
// errors skew positive).
type EstimateBand int

const (
	// BandZero: r̂ = 0. Under exact summaries the boolean-AND count is
	// then provably 0; under sampled summaries the actual value is
	// merely *usually* small, so this band learns a distribution over
	// absolute relevancy values rather than relative errors.
	BandZero EstimateBand = iota
	// BandLow: 0 < r̂ < threshold.
	BandLow
	// BandHigh: r̂ ≥ threshold.
	BandHigh
)

// String implements fmt.Stringer.
func (b EstimateBand) String() string {
	switch b {
	case BandZero:
		return "zero"
	case BandLow:
		return "low"
	case BandHigh:
		return "high"
	default:
		return fmt.Sprintf("EstimateBand(%d)", int(b))
	}
}

// TypeKey identifies one query type for one database — a leaf of the
// paper's Figure 9 decision tree. Note that the classification is
// database-dependent: the same query can be BandHigh on db₁ and
// BandLow on db₂.
type TypeKey struct {
	// Terms is the query's term count, clamped to the classifier's
	// MaxTerms (so 5-term queries share the 4-term type, etc.).
	Terms int
	// Band is the estimate-magnitude band.
	Band EstimateBand
}

// String implements fmt.Stringer ("2-term/high").
func (k TypeKey) String() string { return fmt.Sprintf("%d-term/%s", k.Terms, k.Band) }

// Classifier is the query-type decision tree (Figure 9): split first on
// the number of query terms, then on whether r̂ clears Threshold.
type Classifier struct {
	// Threshold separates BandLow from BandHigh; the paper found 100 a
	// good empirical threshold for document-frequency relevancy
	// (Section 4.1). Use a value in (0, 1) for similarity relevancy.
	Threshold float64
	// MaxTerms clamps the term-count split (default 4); queries longer
	// than MaxTerms share the MaxTerms type.
	MaxTerms int
}

// DefaultClassifier returns the paper's configuration: threshold 100,
// term counts 1..4.
func DefaultClassifier() Classifier {
	return Classifier{Threshold: 100, MaxTerms: 4}
}

// Classify maps (term count, estimate) to a type key.
func (c Classifier) Classify(numTerms int, rhat float64) TypeKey {
	maxTerms := c.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4
	}
	if numTerms < 1 {
		numTerms = 1
	}
	if numTerms > maxTerms {
		numTerms = maxTerms
	}
	band := BandHigh
	switch {
	case rhat <= 0:
		band = BandZero
	case rhat < c.Threshold:
		band = BandLow
	}
	return TypeKey{Terms: numTerms, Band: band}
}

// AllKeys enumerates every type key the classifier can produce, in a
// stable order (for reports like Figure 9's panel of EDs).
func (c Classifier) AllKeys() []TypeKey {
	maxTerms := c.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4
	}
	var keys []TypeKey
	for t := 1; t <= maxTerms; t++ {
		for _, b := range []EstimateBand{BandZero, BandLow, BandHigh} {
			keys = append(keys, TypeKey{Terms: t, Band: b})
		}
	}
	return keys
}
