package stats

import "fmt"

// McNemarResult reports a McNemar paired test between two binary
// classifiers (here: two database-selection methods scored per query).
type McNemarResult struct {
	// Discordant01 counts cases where method A failed and B succeeded.
	Discordant01 int
	// Discordant10 counts cases where method A succeeded and B failed.
	Discordant10 int
	// Statistic is the continuity-corrected chi-square statistic
	// (|b−c|−1)²/(b+c).
	Statistic float64
	// PValue is the two-sided p-value (chi-square with 1 df).
	PValue float64
}

// McNemar tests whether two methods evaluated on the same queries
// differ beyond chance. a and b are per-query success indicators
// (same length, same query order) — exactly what paired selection
// comparisons like Figure 15 produce. Only discordant pairs inform the
// test. With no discordant pairs the methods are identical (p = 1).
func McNemar(a, b []bool) (McNemarResult, error) {
	if len(a) != len(b) {
		return McNemarResult{}, fmt.Errorf("stats: McNemar needs paired samples, got %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return McNemarResult{}, fmt.Errorf("stats: McNemar needs at least one pair")
	}
	res := McNemarResult{}
	for i := range a {
		switch {
		case !a[i] && b[i]:
			res.Discordant01++
		case a[i] && !b[i]:
			res.Discordant10++
		}
	}
	n := res.Discordant01 + res.Discordant10
	if n == 0 {
		res.PValue = 1
		return res, nil
	}
	d := float64(res.Discordant01 - res.Discordant10)
	if d < 0 {
		d = -d
	}
	// Continuity correction (Edwards); clamp at zero for tiny |b−c|.
	d -= 1
	if d < 0 {
		d = 0
	}
	res.Statistic = d * d / float64(n)
	res.PValue = ChiSquareSurvival(res.Statistic, 1)
	return res, nil
}
