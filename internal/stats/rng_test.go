package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGForkIsReproducibleAndDecorrelated(t *testing.T) {
	mk := func() (*RNG, *RNG) {
		p := NewRNG(7)
		return p.Fork(1), p.Fork(2)
	}
	a1, a2 := mk()
	b1, b2 := mk()
	for i := 0; i < 50; i++ {
		if a1.Int63() != b1.Int63() || a2.Int63() != b2.Int63() {
			t.Fatalf("forked streams not reproducible at draw %d", i)
		}
	}
	// Distinct labels should not yield identical streams.
	c := NewRNG(7)
	x, y := c.Fork(10), c.Fork(11)
	same := 0
	for i := 0; i < 20; i++ {
		if x.Int63() == y.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Fatal("forks with different labels produced identical streams")
	}
}

func TestPoissonMeanAndEdgeCases(t *testing.T) {
	g := NewRNG(123)
	for _, mean := range []float64{0, 0.5, 3, 20, 200} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			v := g.Poisson(mean)
			if v < 0 {
				t.Fatalf("negative Poisson draw %d for mean %v", v, mean)
			}
			sum += v
		}
		got := float64(sum) / float64(n)
		tol := 0.1*mean + 0.05
		if mean > 0 {
			tol = 4 * math.Sqrt(mean/float64(n)) * 3 // ~3 sigma with slack
			if tol < 0.05 {
				tol = 0.05
			}
		}
		if math.Abs(got-mean) > tol {
			t.Errorf("Poisson(%v): sample mean %v outside tolerance %v", mean, got, tol)
		}
	}
}

func TestPoissonZeroAndNegativeMean(t *testing.T) {
	g := NewRNG(1)
	if got := g.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := g.Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d, want 0", got)
	}
}
