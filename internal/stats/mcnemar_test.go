package stats

import (
	"math"
	"testing"
)

func TestMcNemarKnownValue(t *testing.T) {
	// 30 discordant pairs favoring B, 10 favoring A:
	// statistic = (|30−10|−1)²/40 = 9.025, p ≈ 0.0026631 (mpmath).
	var a, b []bool
	for i := 0; i < 30; i++ {
		a = append(a, false)
		b = append(b, true)
	}
	for i := 0; i < 10; i++ {
		a = append(a, true)
		b = append(b, false)
	}
	for i := 0; i < 60; i++ { // concordant pairs are ignored
		a = append(a, true)
		b = append(b, true)
	}
	res, err := McNemar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Discordant01 != 30 || res.Discordant10 != 10 {
		t.Errorf("discordant counts %d/%d", res.Discordant01, res.Discordant10)
	}
	if math.Abs(res.Statistic-9.025) > 1e-12 {
		t.Errorf("statistic = %v, want 9.025", res.Statistic)
	}
	if math.Abs(res.PValue-0.002663119259) > 1e-9 {
		t.Errorf("p = %.12f, want 0.002663119259", res.PValue)
	}
}

func TestMcNemarEdgeCases(t *testing.T) {
	// Identical methods: p = 1.
	a := []bool{true, false, true}
	res, err := McNemar(a, a)
	if err != nil || res.PValue != 1 || res.Statistic != 0 {
		t.Errorf("identical: %+v, %v", res, err)
	}
	// One discordant pair: continuity correction clamps to 0.
	res, err = McNemar([]bool{true}, []bool{false})
	if err != nil || res.Statistic != 0 || res.PValue != 1 {
		t.Errorf("single discordant: %+v, %v", res, err)
	}
	// Validation.
	if _, err := McNemar([]bool{true}, []bool{true, false}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := McNemar(nil, nil); err == nil {
		t.Error("empty must fail")
	}
}

// TestMcNemarDetectsRealDifference: a method that wins 8% of discordant
// flips on 2000 queries should be detected at p < 0.05.
func TestMcNemarDetectsRealDifference(t *testing.T) {
	g := NewRNG(9)
	var a, b []bool
	for i := 0; i < 2000; i++ {
		base := g.Float64() < 0.5
		improved := base
		if !base && g.Float64() < 0.3 {
			improved = true // B fixes 30% of A's failures
		}
		a = append(a, base)
		b = append(b, improved)
	}
	res, err := McNemar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("obvious improvement not detected: p = %v", res.PValue)
	}
}
