package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSamplerMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 0, 4}
	ws := MustWeightedSampler(weights)
	g := NewRNG(99)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[ws.Sample(g)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: frequency %v, want %v", i, got, want)
		}
	}
	if counts[3] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[3])
	}
}

func TestWeightedSamplerErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, weights := range cases {
		if _, err := NewWeightedSampler(weights); err == nil {
			t.Errorf("NewWeightedSampler(%v): want error, got nil", weights)
		}
	}
}

// TestWeightedSamplerAlwaysInRange is a property test: for any valid
// weight vector, sampled indices stay within range and only positive
// weights are ever chosen.
func TestWeightedSamplerAlwaysInRange(t *testing.T) {
	g := NewRNG(7)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		positive := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				positive = true
			}
		}
		if !positive {
			return true // invalid input by contract
		}
		ws, err := NewWeightedSampler(weights)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			idx := ws.Sample(g)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	want := []float64{1, 0.5, 1.0 / 3, 0.25}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Errorf("ZipfWeights[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	w0 := ZipfWeights(3, 0)
	for i, v := range w0 {
		if v != 1 {
			t.Errorf("exponent 0 weight[%d] = %v, want 1", i, v)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(5)
	got := SampleWithoutReplacement(g, 10, 10)
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid or duplicate sample %d in %v", v, got)
		}
		seen[v] = true
	}
	if len(got) != 10 {
		t.Fatalf("got %d samples, want 10", len(got))
	}

	defer func() {
		if recover() == nil {
			t.Error("k > n should panic")
		}
	}()
	SampleWithoutReplacement(g, 3, 4)
}

func TestQuantileMeanVariance(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if got := Quantile(vals, 0); got != 1 {
		t.Errorf("Quantile 0 = %v, want 1", got)
	}
	if got := Quantile(vals, 1); got != 4 {
		t.Errorf("Quantile 1 = %v, want 4", got)
	}
	if got := Quantile(vals, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := Mean(vals); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("mean = %v, want 2.5", got)
	}
	if got := Variance(vals); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("variance = %v, want 1.25", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty input should yield NaN")
	}
	// Quantile must not mutate its input.
	if vals[0] != 4 || vals[1] != 1 {
		t.Error("Quantile mutated its input")
	}
}

func TestBootstrapCI(t *testing.T) {
	g := NewRNG(44)
	// Bernoulli(0.5) sample: the CI should bracket 0.5 and be ~±2/sqrt(n).
	n := 400
	values := make([]float64, n)
	ones := 0
	for i := range values {
		if g.Float64() < 0.5 {
			values[i] = 1
			ones++
		}
	}
	mean := float64(ones) / float64(n)
	lo, hi, err := BootstrapCI(values, 0.95, 2000, g)
	if err != nil {
		t.Fatal(err)
	}
	if lo > mean || hi < mean {
		t.Errorf("CI [%v, %v] does not bracket the sample mean %v", lo, hi, mean)
	}
	width := hi - lo
	if width < 0.05 || width > 0.2 {
		t.Errorf("CI width %v implausible for n=400 Bernoulli", width)
	}
	// Degenerate data: zero-width interval.
	lo, hi, err = BootstrapCI([]float64{3, 3, 3}, 0.9, 100, g)
	if err != nil || lo != 3 || hi != 3 {
		t.Errorf("constant data CI = [%v, %v], %v", lo, hi, err)
	}
	// Validation.
	if _, _, err := BootstrapCI(nil, 0.9, 100, g); err == nil {
		t.Error("empty values must fail")
	}
	if _, _, err := BootstrapCI([]float64{1}, 1.5, 100, g); err == nil {
		t.Error("bad confidence must fail")
	}
}
