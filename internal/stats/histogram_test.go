package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := MustHistogram([]float64{0, 1, 2, 3})
	for _, v := range []float64{0, 0.5, 1, 1.5, 2.99, 3, 5, -1} {
		h.Add(v)
	}
	// -1 clamps to bin 0; 3 and 5 clamp to last bin.
	wantCounts := []int64{3, 2, 3}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bin %d count = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
	if got := h.Prob(0); math.Abs(got-3.0/8) > 1e-12 {
		t.Errorf("Prob(0) = %v, want 0.375", got)
	}
	probs := h.Probs()
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probs sum to %v, want 1", sum)
	}
}

func TestHistogramBinIndexEdges(t *testing.T) {
	h := MustHistogram([]float64{-1, 0, 1, math.Inf(1)})
	cases := []struct {
		v    float64
		want int
	}{
		{-2, 0}, {-1, 0}, {-0.5, 0},
		{0, 1}, {0.999, 1},
		{1, 2}, {1e18, 2},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := h.BinIndex(c.v); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramBinMeanAndMidpoint(t *testing.T) {
	h := MustHistogram([]float64{0, 1, 2, math.Inf(1)})
	h.Add(0.25)
	h.Add(0.75)
	h.Add(5)
	if got := h.BinMean(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BinMean(0) = %v, want 0.5", got)
	}
	// Empty bin falls back to midpoint.
	if got := h.BinMean(1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("BinMean(1) = %v, want midpoint 1.5", got)
	}
	// Overflow bin mean uses actual observations.
	if got := h.BinMean(2); math.Abs(got-5) > 1e-12 {
		t.Errorf("BinMean(2) = %v, want 5", got)
	}
	// Overflow bin midpoint collapses to its finite edge.
	if got := h.Midpoint(2); got != 2 {
		t.Errorf("Midpoint(2) = %v, want 2", got)
	}
}

func TestHistogramInvalidEdges(t *testing.T) {
	for _, edges := range [][]float64{nil, {1}, {1, 1}, {2, 1}} {
		if _, err := NewHistogram(edges); err == nil {
			t.Errorf("NewHistogram(%v): want error", edges)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram([]float64{0, 1, 2})
	b := MustHistogram([]float64{0, 1, 2})
	a.Add(0.5)
	b.Add(1.5)
	b.Add(0.25)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 3 || a.Counts[0] != 2 || a.Counts[1] != 1 {
		t.Errorf("merged counts = %v", a.Counts)
	}
	c := MustHistogram([]float64{0, 2, 4})
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched edges should fail")
	}
	d := MustHistogram([]float64{0, 1})
	if err := a.Merge(d); err == nil {
		t.Error("merging different bin counts should fail")
	}
}

func TestHistogramClone(t *testing.T) {
	a := MustHistogram([]float64{0, 1, 2})
	a.Add(0.5)
	b := a.Clone()
	b.Add(1.5)
	if a.Total() != 1 || b.Total() != 2 {
		t.Errorf("clone not independent: a=%d b=%d", a.Total(), b.Total())
	}
}

// TestHistogramAllObservationsLand is a property test: every added value
// lands in exactly one bin and the per-bin means stay within bin bounds
// (up to clamping).
func TestHistogramAllObservationsLand(t *testing.T) {
	f := func(raw []int16) bool {
		h := MustHistogram([]float64{-10, -1, 0, 1, 10})
		for _, r := range raw {
			h.Add(float64(r) / 100)
		}
		return h.Total() == int64(len(raw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUniformEdges(t *testing.T) {
	e := UniformEdges(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range e {
		if math.Abs(e[i]-want[i]) > 1e-12 {
			t.Errorf("edge %d = %v, want %v", i, e[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid uniform edges should panic")
		}
	}()
	UniformEdges(1, 0, 3)
}
