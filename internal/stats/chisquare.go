package stats

import (
	"fmt"
	"math"
)

// ChiSquareResult reports a Pearson chi-square goodness-of-fit test.
type ChiSquareResult struct {
	// Statistic is the Pearson X² statistic.
	Statistic float64
	// DegreesOfFreedom used for the p-value (bins − 1 unless bins were
	// pooled; pooling reduces it accordingly).
	DegreesOfFreedom int
	// PValue is P(X² ≥ Statistic) under the null hypothesis that the
	// observations were drawn from the expected distribution. Section
	// 4.2 of the paper accepts the hypothesis when this value exceeds
	// 0.05 and interprets it as the "goodness" of a sampling size.
	PValue float64
	// Bins is the number of bins that actually entered the statistic
	// after pooling near-empty expected bins.
	Bins int
}

// PearsonChiSquare tests observed counts against expected probabilities.
// This is the "standard Pearson-χ² test (10 bins and degree of freedom
// as 9)" the paper uses to compare a sampled error distribution ED_S
// against the ideal distribution ED_total (Section 4.2).
//
// Bins whose expected count falls below minExpected (use 0 to keep all
// bins) are pooled into their left neighbour, the usual validity fix for
// the chi-square approximation; degrees of freedom shrink accordingly.
func PearsonChiSquare(observed []int64, expected []float64, minExpected float64) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs matching lengths, got %d observed vs %d expected", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs at least 2 bins, got %d", len(observed))
	}
	var n int64
	for _, o := range observed {
		if o < 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: negative observed count %d", o)
		}
		n += o
	}
	if n == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs at least one observation")
	}
	totalP := 0.0
	for i, p := range expected {
		if p < 0 || math.IsNaN(p) {
			return ChiSquareResult{}, fmt.Errorf("stats: expected probability %d is %v", i, p)
		}
		totalP += p
	}
	if totalP <= 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: expected probabilities sum to zero")
	}

	// Pool bins with tiny expected counts into a running cell.
	type cell struct {
		obs int64
		exp float64
	}
	var cells []cell
	var carryObs int64
	var carryExp float64
	for i := range observed {
		carryObs += observed[i]
		carryExp += expected[i] / totalP * float64(n)
		if carryExp >= minExpected {
			cells = append(cells, cell{carryObs, carryExp})
			carryObs, carryExp = 0, 0
		}
	}
	if carryExp > 0 || carryObs > 0 {
		if len(cells) > 0 {
			cells[len(cells)-1].obs += carryObs
			cells[len(cells)-1].exp += carryExp
		} else {
			cells = append(cells, cell{carryObs, carryExp})
		}
	}
	if len(cells) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: fewer than 2 usable bins after pooling (minExpected=%v)", minExpected)
	}

	stat := 0.0
	for _, c := range cells {
		if c.exp == 0 {
			if c.obs == 0 {
				continue
			}
			return ChiSquareResult{}, fmt.Errorf("stats: observed count %d in bin with zero expected probability", c.obs)
		}
		d := float64(c.obs) - c.exp
		stat += d * d / c.exp
	}
	df := len(cells) - 1
	return ChiSquareResult{
		Statistic:        stat,
		DegreesOfFreedom: df,
		PValue:           ChiSquareSurvival(stat, df),
		Bins:             len(cells),
	}, nil
}

// ChiSquareSurvival returns P(X ≥ x) for a chi-square distribution with
// df degrees of freedom: the regularized upper incomplete gamma function
// Q(df/2, x/2).
func ChiSquareSurvival(x float64, df int) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: chi-square needs positive df, got %d", df))
	}
	if x <= 0 {
		return 1
	}
	return RegularizedGammaQ(float64(df)/2, x/2)
}

// RegularizedGammaP computes the regularized lower incomplete gamma
// function P(a, x) = γ(a, x)/Γ(a) using the series expansion for
// x < a+1 and the continued fraction for x ≥ a+1 (Numerical Recipes
// §6.2). Accuracy is ~1e-14 over the ranges used here.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// RegularizedGammaQ computes the regularized upper incomplete gamma
// function Q(a, x) = 1 − P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

const (
	gammaEpsilon  = 1e-15
	gammaMaxIters = 10000
)

// gammaPSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIters; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEpsilon {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by its continued fraction
// (modified Lentz's method), valid for x ≥ a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIters; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEpsilon {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
