package stats

import (
	"math"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res, err := KolmogorovSmirnov(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 || res.PValue != 1 {
		t.Errorf("identical samples: %+v", res)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 1000
	}
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("disjoint D = %v, want 1", res.Statistic)
	}
	if res.PValue > 1e-6 {
		t.Errorf("disjoint p = %v, want ~0", res.PValue)
	}
}

func TestKSSameDistributionAccepted(t *testing.T) {
	g := NewRNG(31)
	rejections := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 300)
		b := make([]float64, 400)
		for i := range a {
			a[i] = g.NormFloat64()
		}
		for i := range b {
			b[i] = g.NormFloat64()
		}
		res, err := KolmogorovSmirnov(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejections++
		}
	}
	if rejections > trials/5 {
		t.Errorf("rejected identical distributions %d/%d times", rejections, trials)
	}
}

func TestKSShiftedDistributionRejected(t *testing.T) {
	g := NewRNG(32)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = g.NormFloat64()
		b[i] = g.NormFloat64() + 1 // clearly shifted
	}
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.001 {
		t.Errorf("shifted distribution p = %v, want rejection", res.PValue)
	}
}

func TestKSValidation(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty sample must fail")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("empty sample must fail")
	}
}

func TestKSSurvivalBounds(t *testing.T) {
	if got := ksSurvival(0); got != 1 {
		t.Errorf("Q(0) = %v", got)
	}
	if got := ksSurvival(-1); got != 1 {
		t.Errorf("Q(-1) = %v", got)
	}
	if got := ksSurvival(10); got > 1e-10 {
		t.Errorf("Q(10) = %v", got)
	}
	// Known reference: Q(0.828) ≈ 0.4986 (the λ where p ≈ 0.5);
	// tabulated from the Kolmogorov distribution.
	got := ksSurvival(0.828)
	if math.Abs(got-0.4986) > 0.01 {
		t.Errorf("Q(0.828) = %v, want ≈0.4986", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		v := ksSurvival(l)
		if v > prev+1e-12 {
			t.Fatalf("Q not monotone at λ=%v", l)
		}
		prev = v
	}
}
