package stats

import (
	"fmt"
	"sort"
)

// BootstrapCI computes a percentile bootstrap confidence interval for
// the mean of values: resample with replacement reps times, take the
// (α/2, 1−α/2) percentiles of the resampled means. The experiment
// tables report these intervals so scaled-down runs carry their own
// error bars.
func BootstrapCI(values []float64, confidence float64, reps int, g *RNG) (lo, hi float64, err error) {
	if len(values) == 0 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs at least one value")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	if reps < 10 {
		reps = 1000
	}
	n := len(values)
	means := make([]float64, reps)
	for r := 0; r < reps; r++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += values[g.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	lo = Quantile(means, alpha)
	hi = Quantile(means, 1-alpha)
	return lo, hi, nil
}
