package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates real-valued observations into bins with explicit
// edges. It is the representation behind the paper's error distributions
// (EDs): Section 4 summarizes the relative estimation errors of sample
// queries "into a histogram type of distribution" (Figure 4).
//
// Bins are defined by Edges: bin i covers [Edges[i], Edges[i+1]), except
// the last bin, which also includes its upper edge. Values outside
// [Edges[0], Edges[last]] are clamped into the first/last bin so that no
// observation is lost (relative errors are unbounded above).
//
// In addition to counts, the histogram tracks the running mean of the
// observations inside each bin. Using the per-bin mean (rather than the
// bin midpoint) as the bin's representative value makes the relevancy
// distributions derived from an ED noticeably sharper; the midpoint is
// still available for comparison (ablation A3 in DESIGN.md).
type Histogram struct {
	// Edges holds the bin boundaries in strictly increasing order;
	// len(Edges) = #bins + 1.
	Edges []float64
	// Counts holds the number of observations per bin.
	Counts []int64
	// Sums holds the sum of observations per bin (for per-bin means).
	Sums []float64
}

// NewHistogram creates an empty histogram with the given edges. Edges
// must contain at least two strictly increasing, finite-or-infinite
// values (an infinite last edge is permitted for an overflow bin).
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: histogram needs at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			return nil, fmt.Errorf("stats: histogram edges must be strictly increasing; edges[%d]=%v, edges[%d]=%v",
				i-1, edges[i-1], i, edges[i])
		}
	}
	cp := append([]float64(nil), edges...)
	return &Histogram{
		Edges:  cp,
		Counts: make([]int64, len(cp)-1),
		Sums:   make([]float64, len(cp)-1),
	}, nil
}

// MustHistogram is NewHistogram that panics on invalid edges.
func MustHistogram(edges []float64) *Histogram {
	h, err := NewHistogram(edges)
	if err != nil {
		panic(err)
	}
	return h
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.Counts) }

// BinIndex returns the bin an observation falls into, clamping
// out-of-range values into the first or last bin.
func (h *Histogram) BinIndex(v float64) int {
	if math.IsNaN(v) {
		// NaN observations indicate a bug upstream; clamp low so the
		// histogram stays well formed, but they should never occur.
		return 0
	}
	if v < h.Edges[0] {
		return 0
	}
	last := len(h.Counts) - 1
	if v >= h.Edges[len(h.Edges)-1] {
		return last
	}
	// sort.SearchFloat64s finds the first edge > v when we search for
	// v+ε; instead find the rightmost edge ≤ v.
	i := sort.SearchFloat64s(h.Edges, v)
	if i < len(h.Edges) && h.Edges[i] == v {
		if i > last {
			return last
		}
		return i
	}
	return i - 1
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := h.BinIndex(v)
	h.Counts[i]++
	h.Sums[i] += v
}

// Total returns the number of observations recorded so far.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Prob returns the empirical probability of bin i (0 when empty).
func (h *Histogram) Prob(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(t)
}

// Probs returns the empirical probabilities of all bins.
func (h *Histogram) Probs() []float64 {
	out := make([]float64, h.Bins())
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t)
	}
	return out
}

// BinMean returns the mean of the observations in bin i; if the bin is
// empty it falls back to the bin midpoint (or the finite edge for an
// unbounded overflow bin).
func (h *Histogram) BinMean(i int) float64 {
	if h.Counts[i] > 0 {
		return h.Sums[i] / float64(h.Counts[i])
	}
	return h.Midpoint(i)
}

// Midpoint returns the midpoint of bin i. For a bin with an infinite
// edge the finite edge is returned.
func (h *Histogram) Midpoint(i int) float64 {
	lo, hi := h.Edges[i], h.Edges[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// Merge adds the contents of other into h. The histograms must share
// identical edges.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.Edges) != len(other.Edges) {
		return fmt.Errorf("stats: cannot merge histograms with %d vs %d edges", len(h.Edges), len(other.Edges))
	}
	for i := range h.Edges {
		if h.Edges[i] != other.Edges[i] {
			return fmt.Errorf("stats: cannot merge histograms with differing edge %d: %v vs %v", i, h.Edges[i], other.Edges[i])
		}
	}
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
		h.Sums[i] += other.Sums[i]
	}
	return nil
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		Edges:  append([]float64(nil), h.Edges...),
		Counts: append([]int64(nil), h.Counts...),
		Sums:   append([]float64(nil), h.Sums...),
	}
}

// UniformEdges returns n+1 equally spaced edges spanning [lo, hi].
func UniformEdges(lo, hi float64, n int) []float64 {
	if n < 1 || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid uniform edges lo=%v hi=%v n=%d", lo, hi, n))
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return edges
}
