package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonBinomialAtMostBinomialCase(t *testing.T) {
	// Equal probabilities reduce to a plain binomial distribution.
	p := 0.3
	n := 10
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = p
	}
	for k := -1; k <= n+1; k++ {
		want := 0.0
		for j := 0; j <= k && j <= n; j++ {
			want += BinomialCoefficient(n, j) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(n-j))
		}
		if k >= n {
			want = 1
		}
		if k < 0 {
			want = 0
		}
		got := PoissonBinomialAtMost(k, probs)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(X<=%d) = %.15f, want %.15f", k, got, want)
		}
	}
}

func TestPoissonBinomialPMFAgainstAtMost(t *testing.T) {
	probs := []float64{0.1, 0.9, 0.5, 0.3, 0.7}
	pmf := PoissonBinomialPMF(probs)
	cum := 0.0
	for k := 0; k < len(pmf); k++ {
		cum += pmf[k]
		got := PoissonBinomialAtMost(k, probs)
		if math.Abs(got-cum) > 1e-12 {
			t.Errorf("CDF mismatch at k=%d: AtMost=%v, PMF cumsum=%v", k, got, cum)
		}
	}
	if math.Abs(cum-1) > 1e-12 {
		t.Errorf("PMF sums to %v, want 1", cum)
	}
}

// TestPoissonBinomialAgainstBruteForce enumerates all outcome subsets
// for small n as the ground truth.
func TestPoissonBinomialAgainstBruteForce(t *testing.T) {
	probs := []float64{0.2, 0.55, 0.8, 0.05}
	n := len(probs)
	exact := make([]float64, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		ones := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p *= probs[i]
				ones++
			} else {
				p *= 1 - probs[i]
			}
		}
		exact[ones] += p
	}
	pmf := PoissonBinomialPMF(probs)
	for k := 0; k <= n; k++ {
		if math.Abs(pmf[k]-exact[k]) > 1e-12 {
			t.Errorf("PMF[%d] = %v, want %v", k, pmf[k], exact[k])
		}
	}
}

// Property: AtMost is a proper CDF — monotone in k, within [0,1], and
// clamps out-of-range probabilities.
func TestPoissonBinomialCDFProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		probs := make([]float64, len(raw))
		for i, r := range raw {
			probs[i] = float64(r) / 255 * 1.2 // deliberately allow >1 to test clamping
		}
		prev := 0.0
		for k := 0; k <= len(probs); k++ {
			v := PoissonBinomialAtMost(k, probs)
			if v < prev-1e-12 || v < 0 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCoefficient(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {20, 3, 1140}, {10, 11, 0},
	}
	for _, c := range cases {
		if got := BinomialCoefficient(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative arguments should panic")
		}
	}()
	BinomialCoefficient(-1, 2)
}
