package stats

import (
	"math"
	"testing"
)

// Reference values for the regularized incomplete gamma and chi-square
// survival functions (computed with scipy.special to 10+ digits).
func TestRegularizedGamma(t *testing.T) {
	cases := []struct {
		a, x, wantP float64
	}{
		// mpmath.gammainc(a, 0, x, regularized=True) at 30 digits.
		{0.5, 0.5, 0.6826894921370859}, // erf(1/sqrt2)
		{1, 1, 0.63212055882855768},    // 1 - e^{-1}
		{2, 1, 0.26424111765711536},
		{4.5, 2, 0.088587473168320829},
		{4.5, 10, 0.98208759547015673},
		{10, 10, 0.54207028552814779},
		{100, 90, 0.15822098918643017},
	}
	for _, c := range cases {
		if got := RegularizedGammaP(c.a, c.x); math.Abs(got-c.wantP) > 1e-9 {
			t.Errorf("P(%v,%v) = %.12f, want %.12f", c.a, c.x, got, c.wantP)
		}
		if got := RegularizedGammaQ(c.a, c.x); math.Abs(got-(1-c.wantP)) > 1e-9 {
			t.Errorf("Q(%v,%v) = %.12f, want %.12f", c.a, c.x, got, 1-c.wantP)
		}
	}
	if got := RegularizedGammaP(1, 0); got != 0 {
		t.Errorf("P(1,0) = %v, want 0", got)
	}
	if got := RegularizedGammaQ(1, -1); got != 1 {
		t.Errorf("Q(1,-1) = %v, want 1", got)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Error("P with non-positive a should be NaN")
	}
}

func TestChiSquareSurvival(t *testing.T) {
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		// mpmath chi-square survival reference values.
		{16.918977604620448, 9, 0.05}, // the 5% critical value at df=9
		{9, 9, 0.43727418891386706},
		{3.84145882069412, 1, 0.05},
		{0, 5, 1},
		{100, 9, 1.5735176303753984e-17},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.x, c.df)
		if math.Abs(got-c.want) > 1e-8*math.Max(1, c.want) && math.Abs(got-c.want) > 1e-12 {
			t.Errorf("sf(%v, df=%d) = %.12g, want %.12g", c.x, c.df, got, c.want)
		}
	}
}

func TestPearsonChiSquareExactFit(t *testing.T) {
	// Observations exactly proportional to expectations: statistic 0,
	// p-value 1.
	obs := []int64{10, 20, 30, 40}
	exp := []float64{0.1, 0.2, 0.3, 0.4}
	res, err := PearsonChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 0 {
		t.Errorf("statistic = %v, want 0", res.Statistic)
	}
	if res.PValue != 1 {
		t.Errorf("p = %v, want 1", res.PValue)
	}
	if res.DegreesOfFreedom != 3 {
		t.Errorf("df = %d, want 3", res.DegreesOfFreedom)
	}
}

func TestPearsonChiSquareKnownValue(t *testing.T) {
	// Classic die example: 60 rolls, observed counts below, uniform
	// expectation 10 per face. X² = (5-10)²/10 + ... computed by hand.
	obs := []int64{5, 8, 9, 8, 10, 20}
	exp := []float64{1, 1, 1, 1, 1, 1}
	res, err := PearsonChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := (25.0 + 4 + 1 + 4 + 0 + 100) / 10
	if math.Abs(res.Statistic-want) > 1e-12 {
		t.Errorf("statistic = %v, want %v", res.Statistic, want)
	}
	if res.DegreesOfFreedom != 5 {
		t.Errorf("df = %d, want 5", res.DegreesOfFreedom)
	}
	// mpmath chi-square sf(13.4, df=5) = 0.019905220334774378
	if math.Abs(res.PValue-0.019905220334774378) > 1e-9 {
		t.Errorf("p = %.12f, want 0.019905220335", res.PValue)
	}
}

func TestPearsonChiSquarePooling(t *testing.T) {
	// One expected bin is tiny; with minExpected=5 it must be pooled.
	obs := []int64{50, 49, 1}
	exp := []float64{0.5, 0.495, 0.005}
	res, err := PearsonChiSquare(obs, exp, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bins != 2 {
		t.Errorf("bins after pooling = %d, want 2", res.Bins)
	}
	if res.DegreesOfFreedom != 1 {
		t.Errorf("df = %d, want 1", res.DegreesOfFreedom)
	}
}

func TestPearsonChiSquareErrors(t *testing.T) {
	if _, err := PearsonChiSquare([]int64{1}, []float64{1}, 0); err == nil {
		t.Error("single bin should fail")
	}
	if _, err := PearsonChiSquare([]int64{1, 2}, []float64{1}, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PearsonChiSquare([]int64{0, 0}, []float64{0.5, 0.5}, 0); err == nil {
		t.Error("zero observations should fail")
	}
	if _, err := PearsonChiSquare([]int64{1, -1}, []float64{0.5, 0.5}, 0); err == nil {
		t.Error("negative observed should fail")
	}
	if _, err := PearsonChiSquare([]int64{1, 1}, []float64{0, 0}, 0); err == nil {
		t.Error("all-zero expected should fail")
	}
	if _, err := PearsonChiSquare([]int64{1, 1}, []float64{1, 0}, 0); err == nil {
		t.Error("observed mass in zero-probability bin should fail")
	}
}

// TestChiSquareAcceptsTrueDistribution draws samples from a known
// distribution and checks that the test (as the paper uses it) accepts
// the truth most of the time at the 0.05 level.
func TestChiSquareAcceptsTrueDistribution(t *testing.T) {
	g := NewRNG(2024)
	exp := []float64{0.1, 0.2, 0.3, 0.25, 0.15}
	ws := MustWeightedSampler(exp)
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		obs := make([]int64, len(exp))
		for i := 0; i < 500; i++ {
			obs[ws.Sample(g)]++
		}
		res, err := PearsonChiSquare(obs, exp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 0.05 {
			rejections++
		}
	}
	// Expected rejection rate is 5%; allow generous slack.
	if rejections > trials/5 {
		t.Errorf("rejected the true distribution %d/%d times", rejections, trials)
	}
}
