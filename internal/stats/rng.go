// Package stats provides the statistical substrate used throughout
// metaprobe: seeded random number generation, weighted and Zipfian
// sampling, histograms, the Pearson chi-square goodness-of-fit test
// (with p-values computed from the regularized incomplete gamma
// function), and the Poisson-binomial distribution.
//
// Everything in this package is deterministic given a seed, which keeps
// corpus generation, query-log generation and the experiment suite
// reproducible run to run.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seeded source of randomness. It wraps math/rand.Rand so that
// every component of metaprobe derives its randomness from an explicit,
// reproducible stream rather than the global source.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child stream from the RNG. The child is a
// pure function of the parent's current state and the label, so forking
// with distinct labels yields reproducible, decorrelated streams (used to
// give every database and every experiment its own stream).
func (g *RNG) Fork(label int64) *RNG {
	// Mix the label through a splitmix64-style finalizer so that
	// consecutive labels do not produce correlated seeds.
	z := uint64(g.r.Int63()) ^ (uint64(label)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Poisson returns a Poisson(mean) variate using Knuth's method for small
// means and a normal approximation for large ones. Document lengths in
// the corpus generator are Poisson-distributed around a topic mean.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction is ample for
		// document-length sampling.
		v := mean + g.NormFloat64()*math.Sqrt(mean) + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
