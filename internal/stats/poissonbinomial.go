package stats

import "fmt"

// PoissonBinomialAtMost returns P(X ≤ k) where X is the number of
// successes among independent Bernoulli trials with the given success
// probabilities (the Poisson-binomial distribution).
//
// The adaptive-probing core uses this to compute P(dbᵢ ∈ top-k): given
// dbᵢ's relevancy value, every other database "beats" dbᵢ independently
// with some probability, and dbᵢ is in the top k exactly when at most
// k−1 others beat it (Section 5.1 of the paper).
//
// The computation is an O(n·k) dynamic program that only tracks counts
// up to k (everything above k is irrelevant to the tail).
func PoissonBinomialAtMost(k int, probs []float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(probs) {
		return 1
	}
	return PoissonBinomialAtMostInto(k, probs, make([]float64, k+1))
}

// PoissonBinomialAtMostInto is PoissonBinomialAtMost with a
// caller-provided DP buffer of length ≥ k+1, letting hot paths run the
// tail without allocating. The buffer is overwritten; the arithmetic
// is identical to PoissonBinomialAtMost.
func PoissonBinomialAtMostInto(k int, probs, dp []float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= len(probs) {
		return 1
	}
	// dp[j] = P(exactly j successes among trials seen so far), j ≤ k;
	// overflow (> k successes) is simply dropped, which is safe because
	// the answer only sums dp[0..k].
	dp = dp[:k+1]
	for j := range dp {
		dp[j] = 0
	}
	dp[0] = 1
	for _, p := range probs {
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		q := 1 - p
		hi := k
		for j := hi; j >= 1; j-- {
			dp[j] = dp[j]*q + dp[j-1]*p
		}
		dp[0] *= q
	}
	sum := 0.0
	for _, v := range dp {
		sum += v
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// PoissonBinomialPMF returns the full probability mass function
// P(X = j) for j = 0..len(probs) of the Poisson-binomial distribution,
// via the standard O(n²) convolution DP. Used in tests as the reference
// implementation and by the optimal probing policy.
func PoissonBinomialPMF(probs []float64) []float64 {
	dp := make([]float64, len(probs)+1)
	dp[0] = 1
	for i, p := range probs {
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		q := 1 - p
		for j := i + 1; j >= 1; j-- {
			dp[j] = dp[j]*q + dp[j-1]*p
		}
		dp[0] *= q
	}
	return dp
}

// BinomialCoefficient returns C(n, k) as a float64; it panics on
// negative arguments. Values large enough to overflow float64 are not
// needed by callers (n is the number of mediated databases).
func BinomialCoefficient(n, k int) float64 {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("stats: C(%d,%d) undefined", n, k))
	}
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}
