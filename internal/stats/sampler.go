package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedSampler draws indices in [0, n) with probability proportional
// to the supplied weights, in O(1) per draw, using Vose's alias method.
// The corpus generator uses it to draw terms from per-topic vocabularies
// and the query generator to draw query templates.
type WeightedSampler struct {
	prob  []float64
	alias []int
}

// NewWeightedSampler builds an alias table for the given non-negative
// weights. At least one weight must be positive.
func NewWeightedSampler(weights []float64) (*WeightedSampler, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: weighted sampler needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stats: weight %d is %v; weights must be finite and non-negative", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: all %d weights are zero", n)
	}

	ws := &WeightedSampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; >1 means "rich", <1 means "poor".
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		ws.prob[s] = scaled[s]
		ws.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers: both queues drain to probability 1.
	for _, i := range large {
		ws.prob[i] = 1
		ws.alias[i] = i
	}
	for _, i := range small {
		ws.prob[i] = 1
		ws.alias[i] = i
	}
	return ws, nil
}

// MustWeightedSampler is NewWeightedSampler that panics on error; for
// use with weights known to be valid at construction time.
func MustWeightedSampler(weights []float64) *WeightedSampler {
	ws, err := NewWeightedSampler(weights)
	if err != nil {
		panic(err)
	}
	return ws
}

// Sample draws one index according to the weights.
func (ws *WeightedSampler) Sample(g *RNG) int {
	i := g.Intn(len(ws.prob))
	if g.Float64() < ws.prob[i] {
		return i
	}
	return ws.alias[i]
}

// Len returns the number of weights the sampler was built from.
func (ws *WeightedSampler) Len() int { return len(ws.prob) }

// ZipfWeights returns n weights following a Zipf power law with the
// given exponent s: weight(i) ∝ 1/(i+1)^s. Term popularity in both the
// synthetic vocabulary and the query log is Zipfian, matching the
// long-tailed statistics of real text and real query traces.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return w
}

// SampleWithoutReplacement draws k distinct indices from [0, n)
// uniformly at random. It panics if k > n.
func SampleWithoutReplacement(g *RNG, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("stats: cannot sample %d of %d without replacement", k, n))
	}
	// Partial Fisher-Yates over an index array.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + g.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values using linear
// interpolation between order statistics. It does not modify values.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of values, or NaN for an empty slice.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Variance returns the population variance of values, or NaN for an
// empty slice.
func Variance(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	m := Mean(values)
	sum := 0.0
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(values))
}
