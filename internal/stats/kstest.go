package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult reports a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// Statistic is the maximum distance D between the two empirical
	// CDFs.
	Statistic float64
	// PValue is the asymptotic probability of a distance at least this
	// large under the null hypothesis that both samples share one
	// distribution.
	PValue float64
}

// KolmogorovSmirnov runs the two-sample KS test. The paper's Section
// 4.2 uses Pearson chi-square to compare sampled and ideal error
// distributions; the KS test is the standard binning-free alternative,
// provided so the sampling study's conclusion can be cross-checked
// against a different statistic (see the F7/F8 cross-check test).
func KolmogorovSmirnov(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs non-empty samples (%d, %d)", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		va, vb := as[i], bs[j]
		v := math.Min(va, vb)
		for i < len(as) && as[i] <= v {
			i++
		}
		for j < len(bs) && bs[j] <= v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}

	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{Statistic: d, PValue: ksSurvival(lambda)}, nil
}

// ksSurvival evaluates the Kolmogorov distribution's survival function
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²} (Numerical Recipes §14.3).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum := 0.0
	sign := 1.0
	prev := 0.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(a2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) <= 1e-12*math.Abs(sum) || math.Abs(term) <= 1e-10*prev {
			break
		}
		prev = math.Abs(term)
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
