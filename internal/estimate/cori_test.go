package estimate

import (
	"math"
	"testing"

	"metaprobe/internal/summary"
	"metaprobe/internal/textindex"
)

// coriSet builds three collections with controlled statistics: an
// oncology collection rich in "breast"/"cancer", a cardiology one, and
// a tiny general one.
func coriSet() *summary.Set {
	return &summary.Set{Summaries: []*summary.Summary{
		{
			Database: "onco", Size: 10000, DocCount: 10000, TermCount: 300000,
			DF: map[string]int{"breast": 2000, "cancer": 5000, "heart": 50},
		},
		{
			Database: "cardio", Size: 8000, DocCount: 8000, TermCount: 240000,
			DF: map[string]int{"heart": 4000, "cancer": 100, "breast": 10},
		},
		{
			Database: "tiny", Size: 300, DocCount: 300, TermCount: 9000,
			DF: map[string]int{"cancer": 20},
		},
	}}
}

func TestCORIRankingSanity(t *testing.T) {
	c := &CORI{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	set := coriSet()

	scores, err := c.Scores(set, "breast cancer")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	if !(scores[0] > scores[1] && scores[0] > scores[2]) {
		t.Errorf("onco should rank first for 'breast cancer': %v", scores)
	}
	scores, err = c.Scores(set, "heart")
	if err != nil {
		t.Fatal(err)
	}
	if !(scores[1] > scores[0] && scores[1] > scores[2]) {
		t.Errorf("cardio should rank first for 'heart': %v", scores)
	}
}

func TestCORIHandComputedValue(t *testing.T) {
	// Single collection set degenerates: N=1, cf=1 for present terms,
	// I = log(1.5)/log(2).
	c := &CORI{B: 0.4, K: 200, BS: 0.75, Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	set := &summary.Set{Summaries: []*summary.Summary{
		{Database: "only", Size: 100, DocCount: 100, TermCount: 1000,
			DF: map[string]int{"cancer": 50}},
	}}
	scores, err := c.Scores(set, "cancer")
	if err != nil {
		t.Fatal(err)
	}
	// cw = avg_cw → K = 200 exactly. T = 50/250 = 0.2,
	// I = log(1.5)/log(2) ≈ 0.58496, belief = 0.4 + 0.6·0.2·0.58496.
	want := 0.4 + 0.6*0.2*(math.Log(1.5)/math.Log(2))
	if math.Abs(scores[0]-want) > 1e-12 {
		t.Errorf("score = %.12f, want %.12f", scores[0], want)
	}
}

func TestCORIEdgeCases(t *testing.T) {
	c := NewCORI()
	set := coriSet()
	// No usable terms → zero scores.
	scores, err := c.Scores(set, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s != 0 {
			t.Errorf("empty query scored %v", scores)
			break
		}
	}
	// Unknown terms: every collection gets the default belief.
	scores, err = c.Scores(set, "zzzunknown")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if math.Abs(s-0.4) > 1e-12 {
			t.Errorf("unknown-term scores = %v, want all 0.4", scores)
			break
		}
	}
	// Empty set fails.
	if _, err := c.Scores(&summary.Set{}, "x"); err != nil {
		// expected
	} else {
		t.Error("empty set must fail")
	}
	// Duplicate query terms deduplicate.
	a, _ := c.Scores(set, "cancer")
	b, _ := c.Scores(set, "cancer cancer")
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("duplicate terms changed scores: %v vs %v", a, b)
			break
		}
	}
	if c.Name() != "cori" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestCORIScoresBounded(t *testing.T) {
	c := NewCORI()
	set := coriSet()
	for _, q := range []string{"breast cancer", "heart", "cancer heart breast", "zz breast"} {
		scores, err := c.Scores(set, q)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range scores {
			if s < 0.4-1e-12 || s > 1 {
				t.Errorf("query %q collection %d: score %v outside [0.4, 1]", q, i, s)
			}
		}
	}
}

func TestCORIWithoutWordCounts(t *testing.T) {
	// Summaries lacking TermCount (older files) still rank, with the
	// word-count normalization disabled.
	c := NewCORI()
	set := &summary.Set{Summaries: []*summary.Summary{
		{Database: "a", Size: 100, DocCount: 100, DF: map[string]int{"cancer": 80}},
		{Database: "b", Size: 100, DocCount: 100, DF: map[string]int{"cancer": 5}},
	}}
	scores, err := c.Scores(set, "cancer")
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= scores[1] {
		t.Errorf("df ordering lost without word counts: %v", scores)
	}
}
