package estimate

import (
	"fmt"
	"math"
	"testing"

	"metaprobe/internal/hidden"
	"metaprobe/internal/summary"
	"metaprobe/internal/textindex"
)

// paperSummary reproduces Example 1 / Figure 2 of the paper: db1 has
// 20 000 documents, "breast" in 2 000, "cancer" in 10 000; db2 has
// 20 000 documents, "breast" in 2 600, "cancer" in 5 000.
func paperSummaries() (*summary.Summary, *summary.Summary) {
	db1 := &summary.Summary{
		Database: "db1", Size: 20000, DocCount: 20000,
		DF: map[string]int{"breast": 2000, "cancer": 10000},
	}
	db2 := &summary.Summary{
		Database: "db2", Size: 20000, DocCount: 20000,
		DF: map[string]int{"breast": 2600, "cancer": 5000},
	}
	return db1, db2
}

// TestPaperExample1 checks the worked estimate from the paper's
// Example 1: r̂(db1, "breast cancer") = 20000 · (2000/20000) ·
// (10000/20000) = 1000 and r̂(db2) = 20000 · (2600/20000) ·
// (5000/20000) = 650.
func TestPaperExample1(t *testing.T) {
	// The paper's vocabulary is unstemmed; use a non-stemming tokenizer
	// to match its numbers exactly.
	rel := &DocFrequency{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	s1, s2 := paperSummaries()
	if got := rel.Estimate(s1, "breast cancer"); math.Abs(got-1000) > 1e-9 {
		t.Errorf("r̂(db1) = %v, want 1000", got)
	}
	if got := rel.Estimate(s2, "breast cancer"); math.Abs(got-650) > 1e-9 {
		t.Errorf("r̂(db2) = %v, want 650", got)
	}
}

func TestDocFrequencyEdgeCases(t *testing.T) {
	rel := &DocFrequency{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	s1, _ := paperSummaries()
	if got := rel.Estimate(s1, ""); got != 0 {
		t.Errorf("empty query estimate = %v", got)
	}
	if got := rel.Estimate(s1, "unknown breast"); got != 0 {
		t.Errorf("unknown term estimate = %v, want 0", got)
	}
	// Duplicate terms deduplicate (AND semantics).
	single := rel.Estimate(s1, "breast")
	dup := rel.Estimate(s1, "breast breast")
	if single != dup {
		t.Errorf("duplicate term changed estimate: %v vs %v", single, dup)
	}
	if got := rel.Name(); got != "doc-frequency" {
		t.Errorf("Name = %q", got)
	}
}

func TestDocFrequencyProbe(t *testing.T) {
	ix := textindex.NewIndex(textindex.NewTokenizer(textindex.TokenizerConfig{}))
	ix.Add("a", "breast cancer research")
	ix.Add("b", "breast cancer care")
	ix.Add("c", "cancer care")
	db := hidden.NewLocal("d", ix)
	rel := &DocFrequency{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	got, err := rel.Probe(db, "breast cancer")
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("Probe = %v, want 2", got)
	}
	bad := hidden.NewStaticError("bad", fmt.Errorf("down"))
	if _, err := rel.Probe(bad, "x"); err == nil {
		t.Error("probe of failing database should error")
	}
}

// TestEstimatorExactOnIndependentStats builds a tiny index whose two
// terms are exactly independent and verifies Eq. 1 is exact there —
// the estimator's error must come only from correlation.
func TestEstimatorExactOnIndependentStats(t *testing.T) {
	ix := textindex.NewIndex(textindex.NewTokenizer(textindex.TokenizerConfig{}))
	// 4 docs: aa in 2 (d0, d1), bb in 2 (d1, d3): AND = 1 = 4·(2/4)·(2/4).
	ix.Add("d0", "aa xx")
	ix.Add("d1", "aa bb")
	ix.Add("d2", "yy zz")
	ix.Add("d3", "bb yy")
	s := summary.FromIndex("d", ix)
	rel := &DocFrequency{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	est := rel.Estimate(s, "aa bb")
	if math.Abs(est-1) > 1e-9 {
		t.Errorf("estimate = %v, want exactly 1", est)
	}
	actual, _ := rel.Probe(hidden.NewLocal("d", ix), "aa bb")
	if actual != 1 {
		t.Errorf("actual = %v, want 1", actual)
	}
}

func TestDocSimilarity(t *testing.T) {
	rel := &DocSimilarity{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	s1, _ := paperSummaries()
	got := rel.Estimate(s1, "breast cancer")
	if got <= 0 || got > 1 {
		t.Errorf("similarity estimate %v outside (0,1]", got)
	}
	// A query with no matching terms estimates 0.
	if got := rel.Estimate(s1, "qqqq"); got != 0 {
		t.Errorf("no-match estimate = %v", got)
	}
	if got := rel.Estimate(s1, ""); got != 0 {
		t.Errorf("empty estimate = %v", got)
	}
	// A fully covered query estimates higher than one with a missing
	// term (the missing term inflates the query norm without matching).
	full := rel.Estimate(s1, "breast cancer")
	partial := rel.Estimate(s1, "breast qqqq")
	if full <= partial {
		t.Errorf("full coverage %v should beat partial coverage %v", full, partial)
	}
	// A single present term is a perfect best-doc match by assumption.
	if got := rel.Estimate(s1, "breast"); math.Abs(got-1) > 1e-12 {
		t.Errorf("single-term estimate = %v, want 1", got)
	}
	if rel.Name() != "doc-similarity" {
		t.Errorf("Name = %q", rel.Name())
	}
}

func TestDocSimilarityProbe(t *testing.T) {
	ix := textindex.NewIndex(textindex.NewTokenizer(textindex.TokenizerConfig{}))
	ix.Add("a", "breast cancer")
	ix.Add("b", "unrelated words")
	db := hidden.NewLocal("d", ix)
	rel := &DocSimilarity{Tok: textindex.NewTokenizer(textindex.TokenizerConfig{})}
	got, err := rel.Probe(db, "breast cancer")
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || got > 1 {
		t.Errorf("probe similarity %v outside (0,1]", got)
	}
	// No matching documents → similarity 0.
	got, err = rel.Probe(db, "zzzz")
	if err != nil || got != 0 {
		t.Errorf("no-match probe = %v, %v", got, err)
	}
}

func TestDefaultConstructorsStemConsistently(t *testing.T) {
	// With the default (stemming) tokenizer, "cancers" and "cancer"
	// estimate identically.
	rel := NewDocFrequency()
	s := &summary.Summary{
		Database: "d", Size: 100, DocCount: 100,
		DF: map[string]int{textindex.Stem("cancers"): 40},
	}
	a := rel.Estimate(s, "cancer")
	b := rel.Estimate(s, "cancers")
	if a != b || a == 0 {
		t.Errorf("stemming inconsistency: %v vs %v", a, b)
	}
	if NewDocSimilarity().Tok == nil {
		t.Error("NewDocSimilarity has nil tokenizer")
	}
}
