package estimate

import (
	"fmt"
	"math"

	"metaprobe/internal/summary"
	"metaprobe/internal/textindex"
)

// CORI implements the classic CORI collection-selection algorithm
// (Callan, Lu, Croft: "Searching Distributed Collections with
// Inference Networks", SIGIR 1995) as an additional baseline from the
// database-selection literature the paper builds on.
//
// CORI ranks collections by a tf·idf analogue computed over collection
// statistics: for each query term t and collection Cᵢ,
//
//	T = df / (df + K),  K = k · ((1−b_s) + b_s · cwᵢ/avg_cw)
//	I = log((N + 0.5) / cf_t) / log(N + 1)
//	p(t|Cᵢ) = b + (1 − b) · T · I
//
// with N the number of collections, cf_t the number of collections
// containing t, cwᵢ collection i's word count, and the usual defaults
// b = 0.4, k = 200, b_s = 0.75. The collection score is the mean of
// p(t|Cᵢ) over the query terms.
//
// Unlike the Relevancy implementations, CORI is inherently a
// *cross-collection* ranker (it needs cf and avg_cw), so it scores all
// summaries at once rather than one database at a time.
type CORI struct {
	// B is the default belief (default 0.4).
	B float64
	// K is the term-frequency saturation constant (default 200).
	K float64
	// BS is the word-count mixing weight inside K (default 0.75).
	BS float64
	// Tok normalizes query terms (default: the standard tokenizer).
	Tok *textindex.Tokenizer
}

// NewCORI returns a ranker with the literature's default parameters.
func NewCORI() *CORI {
	return &CORI{B: 0.4, K: 200, BS: 0.75, Tok: textindex.DefaultTokenizer()}
}

// Name identifies the ranker.
func (c *CORI) Name() string { return "cori" }

// Scores ranks every collection of the set for the query; higher is
// better. Queries with no usable terms score 0 everywhere.
func (c *CORI) Scores(set *summary.Set, query string) ([]float64, error) {
	n := len(set.Summaries)
	if n == 0 {
		return nil, fmt.Errorf("estimate: CORI needs at least one summary")
	}
	tok := c.Tok
	if tok == nil {
		tok = textindex.DefaultTokenizer()
	}
	b, k, bs := c.B, c.K, c.BS
	if b == 0 {
		b = 0.4
	}
	if k == 0 {
		k = 200
	}
	if bs == 0 {
		bs = 0.75
	}

	// Distinct normalized query terms.
	raw := tok.Tokenize(query)
	seen := make(map[string]struct{}, len(raw))
	terms := raw[:0]
	for _, t := range raw {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		terms = append(terms, t)
	}
	scores := make([]float64, n)
	if len(terms) == 0 {
		return scores, nil
	}

	// Cross-collection statistics.
	avgCW := 0.0
	withCW := 0
	for _, s := range set.Summaries {
		if s.TermCount > 0 {
			avgCW += float64(s.TermCount)
			withCW++
		}
	}
	if withCW > 0 {
		avgCW /= float64(withCW)
	}
	cf := make([]int, len(terms))
	for ti, t := range terms {
		for _, s := range set.Summaries {
			if s.DF[t] > 0 {
				cf[ti]++
			}
		}
	}

	logN1 := math.Log(float64(n) + 1)
	for i, s := range set.Summaries {
		kc := k
		if avgCW > 0 && s.TermCount > 0 {
			kc = k * ((1 - bs) + bs*float64(s.TermCount)/avgCW)
		}
		total := 0.0
		for ti, t := range terms {
			df := float64(s.DF[t])
			var belief float64
			if df > 0 && cf[ti] > 0 {
				T := df / (df + kc)
				I := math.Log((float64(n)+0.5)/float64(cf[ti])) / logN1
				belief = b + (1-b)*T*I
			} else {
				belief = b
			}
			total += belief
		}
		scores[i] = total / float64(len(terms))
	}
	return scores, nil
}
