package estimate

import "math"

// logIDF is log(1 + x), the idf damping used by both the index and the
// similarity estimator.
func logIDF(x float64) float64 { return math.Log(1 + x) }

func sqrt(x float64) float64 { return math.Sqrt(x) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
