// Package estimate implements database-relevancy definitions and their
// summary-based estimators (Section 2 of the paper).
//
// A Relevancy bundles the two operations the metasearching core needs:
//
//   - Estimate — compute r̂(db, q) from the database's content summary
//     alone (no network traffic);
//   - Probe — issue the live query to the database and observe the
//     exact r(db, q) (the paper's probing operation).
//
// Two definitions are provided, mirroring Section 2.1:
//
//   - DocFrequency — r(db, q) is the number of matching documents
//     (documents containing all query terms); estimated with the
//     term-independence estimator of Eq. 1. This is the definition the
//     paper's evaluation uses.
//   - DocSimilarity — r(db, q) is the similarity of the most relevant
//     document (tf·idf cosine); estimated from the summary under a
//     GlOSS-style assumption.
package estimate

import (
	"fmt"

	"metaprobe/internal/hidden"
	"metaprobe/internal/summary"
	"metaprobe/internal/textindex"
)

// Relevancy is one database-relevancy definition with its estimator.
type Relevancy interface {
	// Name identifies the definition ("doc-frequency", ...).
	Name() string
	// Estimate computes r̂(db, q) from the database's summary.
	Estimate(s *summary.Summary, query string) float64
	// Probe issues the query to the database and returns the exact
	// relevancy r(db, q).
	Probe(db hidden.Database, query string) (float64, error)
}

// DocFrequency implements the document-frequency-based relevancy with
// the term-independence estimator:
//
//	r̂(db, q) = |db| · Π_i df(db, tᵢ)/N
//
// (Eq. 1; N is the summary's document-count denominator). Repeated
// query terms are deduplicated after normalization, consistent with
// boolean-AND match semantics.
type DocFrequency struct {
	// Tok normalizes query terms into summary term space (default:
	// the standard tokenizer).
	Tok *textindex.Tokenizer
}

// NewDocFrequency returns the definition with the default tokenizer.
func NewDocFrequency() *DocFrequency {
	return &DocFrequency{Tok: textindex.DefaultTokenizer()}
}

// Name implements Relevancy.
func (d *DocFrequency) Name() string { return "doc-frequency" }

// Terms normalizes and deduplicates query words; an empty result means
// the query cannot match anything.
func (d *DocFrequency) Terms(query string) []string {
	tok := d.Tok
	if tok == nil {
		tok = textindex.DefaultTokenizer()
	}
	raw := tok.Tokenize(query)
	seen := make(map[string]struct{}, len(raw))
	out := raw[:0]
	for _, t := range raw {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Estimate implements Relevancy (Eq. 1).
func (d *DocFrequency) Estimate(s *summary.Summary, query string) float64 {
	return d.EstimateTerms(s, d.Terms(query))
}

// EstimateTerms is Estimate over pre-normalized terms (from Terms). It
// computes the identical product in the identical order, so callers
// estimating one query against many summaries can tokenize once and
// get bit-equal results per database.
func (d *DocFrequency) EstimateTerms(s *summary.Summary, terms []string) float64 {
	if len(terms) == 0 {
		return 0
	}
	est := float64(s.Size)
	for _, t := range terms {
		est *= s.Fraction(t)
		if est == 0 {
			return 0
		}
	}
	return est
}

// Probe implements Relevancy: the exact number of matching documents,
// read off the answer page.
func (d *DocFrequency) Probe(db hidden.Database, query string) (float64, error) {
	res, err := db.Search(query, 0)
	if err != nil {
		return 0, fmt.Errorf("estimate: probing %s: %w", db.Name(), err)
	}
	return float64(res.MatchCount), nil
}

// DocSimilarity implements the document-similarity-based relevancy:
// r(db, q) is the cosine score of the best document. The estimator
// assumes the best document contains every query term that the
// database contains at all, each with tf 1 — the "high-correlation"
// assumption of the GlOSS family — which yields
//
//	ŝ(db, q) = Σ_{t ∈ q, df>0} w(t) / (‖w‖ · √m)
//
// with idf weights w(t) = log(1 + N/df(t)) and m the number of query
// terms present in the database. Like Eq. 1, it is deliberately a
// *biased* estimator whose error the probabilistic model corrects.
type DocSimilarity struct {
	// Tok normalizes query terms (default: the standard tokenizer).
	Tok *textindex.Tokenizer
}

// NewDocSimilarity returns the definition with the default tokenizer.
func NewDocSimilarity() *DocSimilarity {
	return &DocSimilarity{Tok: textindex.DefaultTokenizer()}
}

// Name implements Relevancy.
func (d *DocSimilarity) Name() string { return "doc-similarity" }

// Estimate implements Relevancy.
func (d *DocSimilarity) Estimate(s *summary.Summary, query string) float64 {
	tok := d.Tok
	if tok == nil {
		tok = textindex.DefaultTokenizer()
	}
	raw := tok.Tokenize(query)
	seen := make(map[string]struct{}, len(raw))
	var dot, qnorm float64
	matched := 0
	for _, t := range raw {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		frac := s.Fraction(t)
		// idf weight relative to this database.
		var w float64
		if frac > 0 {
			w = logIDF(1 / frac)
			dot += w
			matched++
		} else {
			// Terms absent from the database still contribute to the
			// query norm with a high idf (they are rare by evidence).
			w = logIDF(float64(maxInt(s.DocCount, 2)))
		}
		qnorm += w * w
	}
	if matched == 0 || qnorm == 0 {
		return 0
	}
	return dot / (sqrt(qnorm) * sqrt(float64(matched)))
}

// Probe implements Relevancy: the score of the top returned document.
func (d *DocSimilarity) Probe(db hidden.Database, query string) (float64, error) {
	res, err := db.Search(query, 1)
	if err != nil {
		return 0, fmt.Errorf("estimate: probing %s: %w", db.Name(), err)
	}
	if len(res.Docs) == 0 {
		return 0, nil
	}
	return res.Docs[0].Score, nil
}
