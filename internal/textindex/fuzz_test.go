package textindex

import (
	"bytes"
	"testing"
	"unicode/utf8"
)

// FuzzStem: the stemmer must never panic, never grow a word by more
// than one byte, and always return valid UTF-8 for valid input.
func FuzzStem(f *testing.F) {
	for _, seed := range []string{"relational", "caresses", "sky", "a", "", "covid19", "ß", "ponies"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		got := Stem(word)
		if len(got) > len(word)+1 {
			t.Fatalf("Stem(%q) grew to %q", word, got)
		}
		if utf8.ValidString(word) && !utf8.ValidString(got) {
			t.Fatalf("Stem(%q) produced invalid UTF-8 %q", word, got)
		}
	})
}

// FuzzTokenize: tokenization must never panic and every produced token
// must satisfy the configured bounds.
func FuzzTokenize(f *testing.F) {
	f.Add("The QUICK brown-fox!")
	f.Add("Café 123 naïve")
	f.Add("")
	f.Add("\x00\xff weird bytes \xc3")
	f.Fuzz(func(t *testing.T, text string) {
		tok := DefaultTokenizer()
		for _, term := range tok.Tokenize(text) {
			if len(term) < 2 || len(term) > 41 {
				t.Fatalf("token %q violates length bounds", term)
			}
		}
	})
}

// FuzzReadIndex: arbitrary bytes must never panic the snapshot loader
// and any accepted snapshot must pass structural validation.
func FuzzReadIndex(f *testing.F) {
	ix := NewIndex(NewTokenizer(TokenizerConfig{}))
	ix.Add("d0", "alpha beta")
	ix.Add("d1", "beta gamma")
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("MPIX"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ReadIndex(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		if verr := loaded.Validate(); verr != nil {
			t.Fatalf("accepted snapshot fails validation: %v", verr)
		}
	})
}
