package textindex

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	ix := newTestIndex()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := ReadIndex(&buf, NewTokenizer(TokenizerConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != ix.Size() || loaded.Terms() != ix.Terms() {
		t.Fatalf("size/terms: %d/%d vs %d/%d", loaded.Size(), loaded.Terms(), ix.Size(), ix.Terms())
	}
	for i := 0; i < ix.Size(); i++ {
		if loaded.DocID(i) != ix.DocID(i) || loaded.DocLength(i) != ix.DocLength(i) {
			t.Fatalf("document %d metadata differs", i)
		}
	}
	// Identical search behaviour.
	for _, q := range []string{"breast cancer", "cancer", "breast cancer treatment", "zzz"} {
		if a, b := ix.MatchCount(q), loaded.MatchCount(q); a != b {
			t.Errorf("MatchCount(%q): %d vs %d", q, a, b)
		}
		ha := ix.Search(q, 10)
		hb := loaded.Search(q, 10)
		if len(ha) != len(hb) {
			t.Fatalf("Search(%q) lengths differ", q)
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Errorf("Search(%q) hit %d: %+v vs %+v", q, i, ha[i], hb[i])
			}
		}
	}
}

func TestIndexSnapshotLargeRoundTrip(t *testing.T) {
	ix := NewIndex(nil)
	for i := 0; i < 2000; i++ {
		ix.Add(fmt.Sprintf("doc-%05d", i),
			fmt.Sprintf("term%d cancer breast research term%d health study", i%97, i%13))
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.MatchCount("breast cancer"), ix.MatchCount("breast cancer"); got != want {
		t.Errorf("MatchCount %d vs %d", got, want)
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("hi"),
		[]byte("MPIX"),                 // truncated magic
		[]byte{'M', 'P', 'I', 'X', 99}, // wrong version
		[]byte{'X', 'P', 'I', 'X', 1},  // wrong magic
		append([]byte{'M', 'P', 'I', 'X', 1}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), // huge doc count
	}
	for i, data := range cases {
		if _, err := ReadIndex(bytes.NewReader(data), nil); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadIndexRejectsTruncatedSnapshot(t *testing.T) {
	ix := newTestIndex()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop the snapshot at several points; every prefix must fail
	// cleanly (no panic, no silent truncation).
	for _, cut := range []int{6, len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut]), nil); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	ix := newTestIndex()
	var a, b bytes.Buffer
	if _, err := ix.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of the same index differ (term ordering not canonical?)")
	}
}

func TestSnapshotCompactness(t *testing.T) {
	// The varint-delta encoding should be much smaller than a naive
	// textual dump of the postings.
	ix := NewIndex(nil)
	var text strings.Builder
	for i := 0; i < 500; i++ {
		doc := fmt.Sprintf("alpha beta gamma term%d", i%7)
		ix.Add(fmt.Sprintf("d%d", i), doc)
		text.WriteString(doc)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// ~4 postings per doc; snapshot must stay within a few bytes per
	// posting plus the ID table.
	if buf.Len() > 500*20 {
		t.Errorf("snapshot is %d bytes for 500 tiny docs; encoding looks bloated", buf.Len())
	}
}
