package textindex

import (
	"strings"
)

// Snippet extracts a short window of text around the first cluster of
// query-term matches — the preview line real answer pages show under
// each hit. Matching is done in normalized term space (so "Cancers"
// matches the query "cancer"), but the returned text is the original.
//
// maxTerms bounds the window length in whitespace tokens (default 16
// when ≤ 0). Matched regions are wrapped in the del/ins-free markers
// "[" and "]" only if mark is true.
func (t *Tokenizer) Snippet(text, query string, maxTerms int, mark bool) string {
	if maxTerms <= 0 {
		maxTerms = 16
	}
	queryTerms := make(map[string]struct{})
	for _, qt := range t.Tokenize(query) {
		queryTerms[qt] = struct{}{}
	}
	words := strings.Fields(text)
	if len(words) == 0 {
		return ""
	}
	// Normalize each word and mark matches.
	matched := make([]bool, len(words))
	if len(queryTerms) > 0 {
		for i, w := range words {
			toks := t.Tokenize(w)
			for _, tok := range toks {
				if _, ok := queryTerms[tok]; ok {
					matched[i] = true
					break
				}
			}
		}
	}
	// Find the window of maxTerms words containing the most matches
	// (ties: earliest).
	bestStart, bestCount := 0, -1
	count := 0
	for i := 0; i < len(words); i++ {
		if matched[i] {
			count++
		}
		if i >= maxTerms && matched[i-maxTerms] {
			count--
		}
		if i >= maxTerms-1 || i == len(words)-1 {
			start := i - maxTerms + 1
			if start < 0 {
				start = 0
			}
			if count > bestCount {
				bestStart, bestCount = start, count
			}
		}
	}
	end := bestStart + maxTerms
	if end > len(words) {
		end = len(words)
	}
	var b strings.Builder
	if bestStart > 0 {
		b.WriteString("… ")
	}
	for i := bestStart; i < end; i++ {
		if i > bestStart {
			b.WriteByte(' ')
		}
		if mark && matched[i] {
			b.WriteByte('[')
			b.WriteString(words[i])
			b.WriteByte(']')
		} else {
			b.WriteString(words[i])
		}
	}
	if end < len(words) {
		b.WriteString(" …")
	}
	return b.String()
}
