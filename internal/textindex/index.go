package textindex

import (
	"fmt"
	"math"
	"sort"
)

// Index is an inverted index over a document collection. It supports
// the two operations the metasearching paper needs from a database:
//
//   - MatchCount: the number of documents containing every query term
//     (boolean AND), i.e. the document-frequency-based relevancy r(db,q)
//     of Section 2.1, the quantity "many databases report ... in their
//     answer page";
//   - Search: top-k documents by tf·idf cosine similarity, supporting
//     the document-similarity-based relevancy definition and result
//     fusion.
//
// An Index is safe for concurrent readers once building has finished;
// Add must not race with queries.
type Index struct {
	tokenizer *Tokenizer
	postings  map[string][]posting
	docIDs    []string
	docNorm   []float64 // tf·idf vector norms, computed lazily
	docLen    []int     // number of terms per document
	normDirty bool
}

// posting records one (document, term frequency) pair. Documents are
// identified by their dense internal ordinal.
type posting struct {
	doc int32
	tf  int32
}

// NewIndex returns an empty index that normalizes text with tok
// (DefaultTokenizer when nil).
func NewIndex(tok *Tokenizer) *Index {
	if tok == nil {
		tok = DefaultTokenizer()
	}
	return &Index{
		tokenizer: tok,
		postings:  make(map[string][]posting),
	}
}

// Add indexes one document under the given external ID and returns its
// internal ordinal. IDs need not be unique, but distinct IDs make
// search results easier to interpret.
func (ix *Index) Add(id, text string) int {
	ord := int32(len(ix.docIDs))
	ix.docIDs = append(ix.docIDs, id)

	counts := make(map[string]int32)
	n := 0
	ix.tokenizer.TokenizeTo(text, func(term string) {
		counts[term]++
		n++
	})
	ix.docLen = append(ix.docLen, n)
	for term, tf := range counts {
		ix.postings[term] = append(ix.postings[term], posting{doc: ord, tf: tf})
	}
	ix.normDirty = true
	return int(ord)
}

// AddTerms indexes a document given as pre-normalized terms, bypassing
// the tokenizer. The synthetic corpus generator uses this path.
func (ix *Index) AddTerms(id string, terms []string) int {
	ord := int32(len(ix.docIDs))
	ix.docIDs = append(ix.docIDs, id)
	counts := make(map[string]int32, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	ix.docLen = append(ix.docLen, len(terms))
	for term, tf := range counts {
		ix.postings[term] = append(ix.postings[term], posting{doc: ord, tf: tf})
	}
	ix.normDirty = true
	return int(ord)
}

// Size returns the number of indexed documents (|db| in Eq. 1).
func (ix *Index) Size() int { return len(ix.docIDs) }

// Terms returns the number of distinct terms in the index.
func (ix *Index) Terms() int { return len(ix.postings) }

// TotalTerms returns the total number of term occurrences indexed (the
// collection word count cw used by CORI-style selection).
func (ix *Index) TotalTerms() int {
	total := 0
	for _, n := range ix.docLen {
		total += n
	}
	return total
}

// DocID returns the external ID of document ordinal ord.
func (ix *Index) DocID(ord int) string { return ix.docIDs[ord] }

// DocLength returns the number of index terms in document ord.
func (ix *Index) DocLength(ord int) int { return ix.docLen[ord] }

// DocumentFrequency returns the number of documents containing term
// after the index's own normalization (so callers may pass raw words).
func (ix *Index) DocumentFrequency(term string) int {
	norm := ix.normalizeTerm(term)
	if norm == "" {
		return 0
	}
	return len(ix.postings[norm])
}

// VocabularyFrequencies returns (term, document frequency) for every
// distinct term — the raw material of a content summary (Figure 2 of
// the paper).
func (ix *Index) VocabularyFrequencies() map[string]int {
	out := make(map[string]int, len(ix.postings))
	for term, pl := range ix.postings {
		out[term] = len(pl)
	}
	return out
}

// normalizeTerm runs a single query word through the tokenizer; it
// returns "" if the word normalizes away (stopword, too short).
func (ix *Index) normalizeTerm(term string) string {
	toks := ix.tokenizer.Tokenize(term)
	if len(toks) == 0 {
		return ""
	}
	return toks[0]
}

// MatchCount returns the number of documents containing all query
// terms (boolean AND over the normalized terms). A query that
// normalizes to no terms matches nothing; duplicate terms are
// deduplicated.
func (ix *Index) MatchCount(query string) int {
	lists := ix.queryPostings(query)
	if lists == nil {
		return 0
	}
	return len(intersect(lists))
}

// MatchingDocs returns the ordinals of documents containing all query
// terms, in increasing ordinal order.
func (ix *Index) MatchingDocs(query string) []int {
	lists := ix.queryPostings(query)
	if lists == nil {
		return nil
	}
	docs := intersect(lists)
	out := make([]int, len(docs))
	for i, d := range docs {
		out[i] = int(d)
	}
	return out
}

// queryPostings normalizes a query and gathers the posting list of each
// distinct term, shortest first; it returns nil if any term is missing
// (AND can never match) or if no terms survive normalization.
func (ix *Index) queryPostings(query string) [][]posting {
	terms := ix.tokenizer.Tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(terms))
	var lists [][]posting
	for _, t := range terms {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		pl, ok := ix.postings[t]
		if !ok {
			return nil
		}
		lists = append(lists, pl)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	return lists
}

// intersect computes the docs common to every posting list. Lists are
// sorted by doc ordinal (documents are appended in increasing order),
// so a galloping merge against the shortest list is efficient.
func intersect(lists [][]posting) []int32 {
	if len(lists) == 0 {
		return nil
	}
	// Seed with the shortest list's docs.
	cur := make([]int32, len(lists[0]))
	for i, p := range lists[0] {
		cur[i] = p.doc
	}
	for _, pl := range lists[1:] {
		if len(cur) == 0 {
			return nil
		}
		next := cur[:0]
		for _, d := range cur {
			// Binary search pl for d.
			i := sort.Search(len(pl), func(i int) bool { return pl[i].doc >= d })
			if i < len(pl) && pl[i].doc == d {
				next = append(next, d)
			}
		}
		cur = next
	}
	return cur
}

// Hit is one ranked search result.
type Hit struct {
	// DocID is the external identifier passed to Add.
	DocID string
	// Ordinal is the internal document number.
	Ordinal int
	// Score is the tf·idf cosine similarity to the query in [0, 1].
	Score float64
}

// Search returns the k documents most similar to the query under
// tf·idf cosine similarity (lnc.ltc-style weighting: log tf, idf on the
// query side, cosine normalization both sides). Ties break by ordinal.
func (ix *Index) Search(query string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	terms := ix.tokenizer.Tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	ix.ensureNorms()

	qtf := make(map[string]float64)
	for _, t := range terms {
		qtf[t]++
	}
	n := float64(ix.Size())
	// Query vector weights and norm.
	qw := make(map[string]float64, len(qtf))
	qnorm := 0.0
	for t, tf := range qtf {
		df := len(ix.postings[t])
		if df == 0 {
			continue
		}
		w := (1 + math.Log(tf)) * math.Log(1+n/float64(df))
		qw[t] = w
		qnorm += w * w
	}
	if len(qw) == 0 {
		return nil
	}
	qnorm = math.Sqrt(qnorm)

	scores := make(map[int32]float64)
	for t, w := range qw {
		for _, p := range ix.postings[t] {
			scores[p.doc] += w * (1 + math.Log(float64(p.tf)))
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		denom := qnorm * ix.docNorm[doc]
		if denom == 0 {
			continue
		}
		hits = append(hits, Hit{
			DocID:   ix.docIDs[doc],
			Ordinal: int(doc),
			Score:   s / denom,
		})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Ordinal < hits[j].Ordinal
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// ensureNorms (re)computes per-document tf vector norms. Norms use the
// same log-tf damping as Search's accumulation so the cosine is
// consistent.
func (ix *Index) ensureNorms() {
	if !ix.normDirty && ix.docNorm != nil {
		return
	}
	norms := make([]float64, len(ix.docIDs))
	for _, pl := range ix.postings {
		for _, p := range pl {
			w := 1 + math.Log(float64(p.tf))
			norms[p.doc] += w * w
		}
	}
	for i := range norms {
		norms[i] = math.Sqrt(norms[i])
	}
	ix.docNorm = norms
	ix.normDirty = false
}

// Validate checks internal invariants (sorted posting lists, ordinals
// within range); it is used by tests and returns the first violation.
func (ix *Index) Validate() error {
	n := int32(len(ix.docIDs))
	for term, pl := range ix.postings {
		for i, p := range pl {
			if p.doc < 0 || p.doc >= n {
				return fmt.Errorf("textindex: term %q posting %d has out-of-range doc %d", term, i, p.doc)
			}
			if p.tf <= 0 {
				return fmt.Errorf("textindex: term %q posting %d has non-positive tf %d", term, i, p.tf)
			}
			if i > 0 && pl[i-1].doc >= p.doc {
				return fmt.Errorf("textindex: term %q postings not strictly increasing at %d", term, i)
			}
		}
	}
	return nil
}
