package textindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Index serialization: a compact binary snapshot (varint-delta encoded
// posting lists) so large collections can be indexed once and reloaded
// quickly. The format is versioned and self-contained; the tokenizer
// configuration is NOT stored — the loader supplies it, and it must
// match the one used at build time.

// snapshotMagic identifies the snapshot format ("MPIX" + version 1).
var snapshotMagic = [5]byte{'M', 'P', 'I', 'X', 1}

// WriteTo serializes the index to w. It returns the number of bytes
// written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return bw.n, err
	}
	// Documents.
	writeUvarint(bw, uint64(len(ix.docIDs)))
	for i, id := range ix.docIDs {
		writeString(bw, id)
		writeUvarint(bw, uint64(ix.docLen[i]))
	}
	// Terms, sorted for determinism.
	terms := make([]string, 0, len(ix.postings))
	for t := range ix.postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	writeUvarint(bw, uint64(len(terms)))
	for _, t := range terms {
		writeString(bw, t)
		pl := ix.postings[t]
		writeUvarint(bw, uint64(len(pl)))
		prev := int32(0)
		for _, p := range pl {
			// Doc ordinals are strictly increasing: delta-encode.
			writeUvarint(bw, uint64(p.doc-prev))
			writeUvarint(bw, uint64(p.tf))
			prev = p.doc
		}
	}
	if err := bw.err; err != nil {
		return bw.n, err
	}
	return bw.n, bw.w.(*bufio.Writer).Flush()
}

// ReadIndex deserializes an index written by WriteTo, attaching the
// given tokenizer (nil for the default). The snapshot is validated
// structurally; malformed input yields an error, never a panic.
func ReadIndex(r io.Reader, tok *Tokenizer) (*Index, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("textindex: reading snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("textindex: not an index snapshot (magic %q)", magic[:4])
	}
	ix := NewIndex(tok)

	numDocs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("textindex: document count: %w", err)
	}
	if numDocs > 1<<31 {
		return nil, fmt.Errorf("textindex: implausible document count %d", numDocs)
	}
	ix.docIDs = make([]string, numDocs)
	ix.docLen = make([]int, numDocs)
	for i := range ix.docIDs {
		if ix.docIDs[i], err = readString(br); err != nil {
			return nil, fmt.Errorf("textindex: document %d id: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("textindex: document %d length: %w", i, err)
		}
		ix.docLen[i] = int(n)
	}

	numTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("textindex: term count: %w", err)
	}
	if numTerms > 1<<31 {
		return nil, fmt.Errorf("textindex: implausible term count %d", numTerms)
	}
	for t := uint64(0); t < numTerms; t++ {
		term, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("textindex: term %d: %w", t, err)
		}
		plLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("textindex: term %q posting count: %w", term, err)
		}
		if plLen > numDocs {
			return nil, fmt.Errorf("textindex: term %q has %d postings for %d documents", term, plLen, numDocs)
		}
		pl := make([]posting, plLen)
		prev := int32(0)
		for i := range pl {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("textindex: term %q posting %d: %w", term, i, err)
			}
			tf, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("textindex: term %q posting %d tf: %w", term, i, err)
			}
			doc := prev + int32(delta)
			if i > 0 && delta == 0 {
				return nil, fmt.Errorf("textindex: term %q postings not strictly increasing", term)
			}
			if doc < 0 || uint64(doc) >= numDocs || tf == 0 || tf > 1<<30 {
				return nil, fmt.Errorf("textindex: term %q posting %d out of range (doc %d, tf %d)", term, i, doc, tf)
			}
			pl[i] = posting{doc: doc, tf: int32(tf)}
			prev = doc
		}
		ix.postings[term] = pl
	}
	ix.normDirty = true
	return ix, nil
}

// countingWriter tracks bytes written and the first error.
type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeUvarint(w *countingWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *countingWriter, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
