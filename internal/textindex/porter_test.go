package textindex

import (
	"testing"
	"testing/quick"
)

// TestStemVectors covers the worked examples from Porter's 1980 paper,
// one per rule family.
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		// Step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c
		"happy": "happi",
		"sky":   "sky",
		// Step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"digitizer":      "digit",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5
		"probate":    "probat",
		"rate":       "rate",
		"cease":      "ceas",
		"controller": "control",
		"roll":       "roll",
		// Domain words the testbed actually uses.
		"cancer":    "cancer",
		"cancers":   "cancer",
		"diabetes":  "diabet",
		"treatment": "treatment",
		"medical":   "medic",
		"medicine":  "medicin",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"", "a", "at", "x9", "b2b2", "covid19"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// TestStemIdempotent: stemming a stem must be stable for typical words;
// the Porter stemmer is famously not idempotent on every input, but it
// must never panic or grow the word unboundedly.
func TestStemNeverGrowsMuchAndNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a plausible lowercase word from arbitrary bytes.
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		word := string(w)
		got := Stem(word)
		// The algorithm appends at most one letter ('e') net of what it
		// strips, so the result can exceed the input by at most 1.
		return len(got) <= len(word)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "hopefulness", "cancer", "metasearching", "probabilistically"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
