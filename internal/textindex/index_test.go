package textindex

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizer(t *testing.T) {
	tok := NewTokenizer(TokenizerConfig{})
	got := tok.Tokenize("The QUICK brown-fox, jumps; over 2 lazy dogs!")
	want := []string{"quick", "brown", "fox", "jumps", "lazy", "dogs"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerStemming(t *testing.T) {
	tok := DefaultTokenizer()
	got := tok.Tokenize("running runner runs")
	want := []string{"run", "runner", "run"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerKeepStopwords(t *testing.T) {
	tok := NewTokenizer(TokenizerConfig{KeepStopwords: true})
	got := tok.Tokenize("the cat")
	if len(got) != 2 || got[0] != "the" {
		t.Errorf("Tokenize = %v, want [the cat]", got)
	}
}

func TestTokenizerLengthBounds(t *testing.T) {
	tok := NewTokenizer(TokenizerConfig{MinLength: 3, MaxLength: 5})
	got := tok.Tokenize("ab abc abcde abcdef")
	want := []string{"abc", "abcde"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizerUnicode(t *testing.T) {
	tok := NewTokenizer(TokenizerConfig{})
	got := tok.Tokenize("Café Français naïve")
	want := []string{"café", "français", "naïve"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

// newTestIndex builds a small collection with known statistics.
func newTestIndex() *Index {
	ix := NewIndex(NewTokenizer(TokenizerConfig{})) // no stemming: exact term control
	docs := []string{
		"breast cancer research",             // 0
		"breast cancer treatment options",    // 1
		"lung cancer treatment",              // 2
		"breast reconstruction surgery",      // 3
		"heart disease research",             // 4
		"cancer cancer cancer awareness",     // 5 (repeated term: tf=3)
		"breast cancer awareness month walk", // 6
	}
	for i, d := range docs {
		ix.Add(fmt.Sprintf("doc%d", i), d)
	}
	return ix
}

func TestMatchCount(t *testing.T) {
	ix := newTestIndex()
	cases := []struct {
		q    string
		want int
	}{
		{"breast cancer", 3}, // docs 0, 1, 6
		{"cancer", 5},
		{"breast", 4},
		{"breast cancer treatment", 1},
		{"cancer cancer", 5}, // duplicate terms deduplicate
		{"nonexistent", 0},
		{"breast nonexistent", 0},
		{"", 0},
		{"the of and", 0}, // all stopwords
	}
	for _, c := range cases {
		if got := ix.MatchCount(c.q); got != c.want {
			t.Errorf("MatchCount(%q) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestMatchingDocs(t *testing.T) {
	ix := newTestIndex()
	got := ix.MatchingDocs("breast cancer")
	want := []int{0, 1, 6}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("MatchingDocs = %v, want %v", got, want)
	}
}

func TestDocumentFrequency(t *testing.T) {
	ix := newTestIndex()
	if got := ix.DocumentFrequency("cancer"); got != 5 {
		t.Errorf("df(cancer) = %d, want 5", got)
	}
	if got := ix.DocumentFrequency("CANCER"); got != 5 {
		t.Errorf("df(CANCER) = %d, want 5 (normalization)", got)
	}
	if got := ix.DocumentFrequency("zzz"); got != 0 {
		t.Errorf("df(zzz) = %d, want 0", got)
	}
	if got := ix.DocumentFrequency("the"); got != 0 {
		t.Errorf("df(stopword) = %d, want 0", got)
	}
}

func TestVocabularyFrequencies(t *testing.T) {
	ix := newTestIndex()
	vocab := ix.VocabularyFrequencies()
	if vocab["cancer"] != 5 || vocab["breast"] != 4 || vocab["walk"] != 1 {
		t.Errorf("vocabulary frequencies wrong: %v", vocab)
	}
}

func TestSearchRanking(t *testing.T) {
	ix := newTestIndex()
	hits := ix.Search("breast cancer", 3)
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3", len(hits))
	}
	// Every returned doc must contain at least one query term, scores
	// must be in [0,1] and non-increasing.
	for i, h := range hits {
		if h.Score < 0 || h.Score > 1+1e-9 {
			t.Errorf("hit %d score %v outside [0,1]", i, h.Score)
		}
		if i > 0 && hits[i].Score > hits[i-1].Score {
			t.Errorf("hits not sorted: %v", hits)
		}
	}
	// doc0 ("breast cancer research") should rank above doc3 (only
	// "breast") and doc5 (only "cancer") — it has both terms.
	if hits[0].DocID != "doc0" && hits[0].DocID != "doc1" && hits[0].DocID != "doc6" {
		t.Errorf("top hit %q should contain both query terms", hits[0].DocID)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	ix := newTestIndex()
	if hits := ix.Search("", 5); hits != nil {
		t.Errorf("empty query returned %v", hits)
	}
	if hits := ix.Search("zzz", 5); hits != nil {
		t.Errorf("unknown term returned %v", hits)
	}
	if hits := ix.Search("cancer", 0); hits != nil {
		t.Errorf("k=0 returned %v", hits)
	}
	if hits := ix.Search("cancer", 100); len(hits) != 5 {
		t.Errorf("k>matches returned %d hits, want 5", len(hits))
	}
}

func TestSearchAfterIncrementalAdd(t *testing.T) {
	ix := newTestIndex()
	before := ix.Search("cancer", 10)
	ix.Add("new", "cancer cancer cancer cancer cancer")
	after := ix.Search("cancer", 10)
	if len(after) != len(before)+1 {
		t.Errorf("after add: %d hits, want %d", len(after), len(before)+1)
	}
}

func TestIndexValidate(t *testing.T) {
	ix := newTestIndex()
	if err := ix.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddTerms(t *testing.T) {
	ix := NewIndex(nil)
	ix.AddTerms("d0", []string{"alpha", "beta", "alpha"})
	if got := ix.MatchCount("alpha beta"); got != 1 {
		t.Errorf("MatchCount = %d, want 1", got)
	}
	if ix.DocLength(0) != 3 {
		t.Errorf("DocLength = %d, want 3", ix.DocLength(0))
	}
	if ix.DocID(0) != "d0" {
		t.Errorf("DocID = %q", ix.DocID(0))
	}
}

// TestMatchCountAgainstLinearScan is a property test: the inverted
// index must agree with a brute-force scan over random collections.
func TestMatchCountAgainstLinearScan(t *testing.T) {
	vocab := []string{"aa", "bb", "cc", "dd", "ee"}
	f := func(docSeeds []uint16, q1, q2 uint8) bool {
		if len(docSeeds) > 30 {
			docSeeds = docSeeds[:30]
		}
		ix := NewIndex(NewTokenizer(TokenizerConfig{}))
		docs := make([][]string, len(docSeeds))
		for i, seed := range docSeeds {
			var terms []string
			for j, v := range vocab {
				if seed&(1<<j) != 0 {
					terms = append(terms, v)
				}
			}
			docs[i] = terms
			ix.AddTerms(fmt.Sprintf("d%d", i), terms)
		}
		qterms := []string{vocab[int(q1)%len(vocab)], vocab[int(q2)%len(vocab)]}
		query := strings.Join(qterms, " ")

		want := 0
		for _, d := range docs {
			has := func(t string) bool {
				for _, dt := range d {
					if dt == t {
						return true
					}
				}
				return false
			}
			if has(qterms[0]) && has(qterms[1]) {
				want++
			}
		}
		return ix.MatchCount(query) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSearchAgainstBruteForceCosine verifies the ranked retrieval path
// against a straightforward full-scan cosine computation.
func TestSearchAgainstBruteForceCosine(t *testing.T) {
	ix := NewIndex(NewTokenizer(TokenizerConfig{}))
	docs := []string{
		"alpha beta beta gamma",
		"alpha alpha alpha",
		"beta gamma delta",
		"gamma gamma gamma delta delta",
		"alpha beta gamma delta epsilon",
	}
	for i, d := range docs {
		ix.Add(fmt.Sprintf("d%d", i), d)
	}
	query := "alpha gamma"
	hits := ix.Search(query, len(docs))

	// Brute force with the same weighting scheme.
	n := float64(len(docs))
	df := map[string]float64{}
	tok := NewTokenizer(TokenizerConfig{})
	parsed := make([]map[string]float64, len(docs))
	for i, d := range docs {
		m := map[string]float64{}
		for _, t := range tok.Tokenize(d) {
			m[t]++
		}
		parsed[i] = m
		for t := range m {
			df[t]++
		}
	}
	qv := map[string]float64{}
	for _, t := range tok.Tokenize(query) {
		qv[t]++
	}
	var qnorm float64
	qw := map[string]float64{}
	for t, tf := range qv {
		if df[t] == 0 {
			continue
		}
		w := (1 + math.Log(tf)) * math.Log(1+n/df[t])
		qw[t] = w
		qnorm += w * w
	}
	qnorm = math.Sqrt(qnorm)
	type ds struct {
		ord   int
		score float64
	}
	var want []ds
	for i, m := range parsed {
		var dot, dnorm float64
		for t, tf := range m {
			w := 1 + math.Log(tf)
			dnorm += w * w
			if qwt, ok := qw[t]; ok {
				dot += qwt * w
			}
		}
		if dot > 0 {
			want = append(want, ds{i, dot / (qnorm * math.Sqrt(dnorm))})
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].score != want[j].score {
			return want[i].score > want[j].score
		}
		return want[i].ord < want[j].ord
	})
	if len(hits) != len(want) {
		t.Fatalf("got %d hits, want %d", len(hits), len(want))
	}
	for i := range hits {
		if hits[i].Ordinal != want[i].ord || math.Abs(hits[i].Score-want[i].score) > 1e-12 {
			t.Errorf("hit %d = (%d, %v), want (%d, %v)", i, hits[i].Ordinal, hits[i].Score, want[i].ord, want[i].score)
		}
	}
}

func BenchmarkMatchCount(b *testing.B) {
	ix := NewIndex(nil)
	for i := 0; i < 5000; i++ {
		ix.Add(fmt.Sprintf("d%d", i), fmt.Sprintf("term%d cancer breast term%d health", i%50, i%7))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.MatchCount("breast cancer")
	}
}

func BenchmarkSearch(b *testing.B) {
	ix := NewIndex(nil)
	for i := 0; i < 5000; i++ {
		ix.Add(fmt.Sprintf("d%d", i), fmt.Sprintf("term%d cancer breast term%d health", i%50, i%7))
	}
	ix.Search("warmup", 1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Search("breast cancer health", 10)
	}
}
