package textindex

import (
	"strings"
	"testing"
)

func TestSnippetCentersOnMatches(t *testing.T) {
	tok := DefaultTokenizer()
	text := "aaa bbb ccc ddd eee breast cancer fff ggg hhh iii jjj kkk lll mmm nnn ooo ppp qqq rrr"
	got := tok.Snippet(text, "breast cancer", 6, true)
	if !strings.Contains(got, "[breast]") || !strings.Contains(got, "[cancer]") {
		t.Errorf("snippet %q does not mark matches", got)
	}
	if !strings.HasPrefix(got, "… ") || !strings.HasSuffix(got, " …") {
		t.Errorf("snippet %q missing ellipses for interior window", got)
	}
	// The window is 6 words.
	inner := strings.TrimSuffix(strings.TrimPrefix(got, "… "), " …")
	if n := len(strings.Fields(inner)); n != 6 {
		t.Errorf("window has %d words, want 6 (%q)", n, got)
	}
}

func TestSnippetStemAwareMatching(t *testing.T) {
	tok := DefaultTokenizer()
	got := tok.Snippet("Multiple Cancers were studied here", "cancer", 10, true)
	if !strings.Contains(got, "[Cancers]") {
		t.Errorf("stem-aware match failed: %q", got)
	}
}

func TestSnippetEdgeCases(t *testing.T) {
	tok := DefaultTokenizer()
	if got := tok.Snippet("", "cancer", 8, true); got != "" {
		t.Errorf("empty text → %q", got)
	}
	// No matches: the head of the document is returned.
	got := tok.Snippet("one two three four five six seven eight nine ten", "zzz", 4, true)
	if got != "one two three four …" {
		t.Errorf("no-match snippet = %q", got)
	}
	// Text shorter than the window.
	got = tok.Snippet("only three words", "words", 10, false)
	if got != "only three words" {
		t.Errorf("short text snippet = %q", got)
	}
	// Default window size when maxTerms <= 0.
	long := strings.Repeat("pad ", 40) + "cancer"
	got = tok.Snippet(long, "cancer", 0, false)
	if n := len(strings.Fields(strings.Trim(got, "… "))); n > 17 {
		t.Errorf("default window too wide: %d words", n)
	}
	// Empty query: unmarked head window.
	got = tok.Snippet("alpha beta gamma", "", 2, true)
	if got != "alpha beta …" {
		t.Errorf("empty-query snippet = %q", got)
	}
}
