// Package textindex implements the full-text retrieval substrate that
// every simulated Hidden-Web database in metaprobe is built on: a
// tokenizer with English stopword removal, the classic Porter stemmer,
// and an inverted index supporting boolean-AND match counting (the
// paper's document-frequency relevancy, Section 2.1) and tf·idf cosine
// ranking (the paper's document-similarity relevancy).
//
// The package is deliberately self-contained — the paper's testbed
// consists of real search engines over free-text collections, and this
// package plays that role for the synthetic collections.
package textindex

import (
	"strings"
	"unicode"
)

// Tokenizer converts raw text into index terms. The zero value is not
// usable; construct one with NewTokenizer.
type Tokenizer struct {
	cfg TokenizerConfig
}

// TokenizerConfig controls token normalization.
type TokenizerConfig struct {
	// Stem applies the Porter stemmer to each token.
	Stem bool
	// KeepStopwords disables English stopword removal.
	KeepStopwords bool
	// MinLength and MaxLength bound the length of kept tokens
	// (defaults 2 and 40).
	MinLength, MaxLength int
}

// NewTokenizer returns a tokenizer with the given configuration,
// applying defaults for unset bounds.
func NewTokenizer(cfg TokenizerConfig) *Tokenizer {
	if cfg.MinLength <= 0 {
		cfg.MinLength = 2
	}
	if cfg.MaxLength <= 0 {
		cfg.MaxLength = 40
	}
	return &Tokenizer{cfg: cfg}
}

// DefaultTokenizer returns the tokenizer used by the metaprobe testbed:
// lowercasing, stopword removal and Porter stemming.
func DefaultTokenizer() *Tokenizer {
	return NewTokenizer(TokenizerConfig{Stem: true})
}

// Tokenize splits text into normalized terms: lowercase alphanumeric
// runs, stopwords removed, stemmed when configured.
func (t *Tokenizer) Tokenize(text string) []string {
	var out []string
	t.TokenizeTo(text, func(term string) { out = append(out, term) })
	return out
}

// TokenizeTo streams normalized terms to emit without accumulating a
// slice; the indexer uses this on large documents.
func (t *Tokenizer) TokenizeTo(text string, emit func(term string)) {
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if len(tok) < t.cfg.MinLength || len(tok) > t.cfg.MaxLength {
			return
		}
		if !t.cfg.KeepStopwords && IsStopword(tok) {
			return
		}
		if t.cfg.Stem {
			tok = Stem(tok)
		}
		if len(tok) >= t.cfg.MinLength {
			emit(tok)
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
}

// stopwords is a standard English stopword list (the SMART subset that
// matters for short keyword queries).
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range strings.Fields(`a about above after again against all am an and any are as at
be because been before being below between both but by can did do does doing down during each few
for from further had has have having he her here hers herself him himself his how i if in into is
it its itself just me more most my myself no nor not now of off on once only or other our ours
ourselves out over own same she should so some such than that the their theirs them themselves then
there these they this those through to too under until up very was we were what when where which
while who whom why will with you your yours yourself yourselves`) {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lowercase term is an English stopword.
func IsStopword(term string) bool {
	_, ok := stopwords[term]
	return ok
}
