package textindex

// Stem reduces an English word to its stem using the classic Porter
// algorithm (M. F. Porter, "An algorithm for suffix stripping",
// Program 14(3), 1980). The input must already be lowercase; words of
// length ≤ 2 are returned unchanged, as in the original algorithm.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			// Numbers and mixed tokens are not English words;
			// leave them alone.
			return word
		}
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

// stemmer holds the word being stemmed. All the step functions operate
// on b in place (via reslicing and suffix rewriting).
type stemmer struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant per Porter's
// definition: a letter other than a, e, i, o, u, and other than y when
// y is preceded by a consonant.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	default:
		return true
	}
}

// measure returns m, the number of VC sequences in b[:upTo], where the
// word is viewed as [C](VC)^m[V].
func (s *stemmer) measure(upTo int) int {
	m := 0
	i := 0
	// Skip the initial consonant run.
	for i < upTo && s.isConsonant(i) {
		i++
	}
	for i < upTo {
		// Vowel run.
		for i < upTo && !s.isConsonant(i) {
			i++
		}
		if i >= upTo {
			break
		}
		// Consonant run closes one VC.
		m++
		for i < upTo && s.isConsonant(i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether b[:upTo] contains a vowel.
func (s *stemmer) hasVowel(upTo int) bool {
	for i := 0; i < upTo; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports *d: the word ends with a double consonant.
func (s *stemmer) endsDoubleConsonant() bool {
	n := len(s.b)
	return n >= 2 && s.b[n-1] == s.b[n-2] && s.isConsonant(n-1)
}

// endsCVC reports *o for b[:upTo]: it ends consonant-vowel-consonant
// where the final consonant is not w, x or y.
func (s *stemmer) endsCVC(upTo int) bool {
	if upTo < 3 {
		return false
	}
	i := upTo - 1
	if !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if n < len(suf) {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// stemLen returns the length of the word without the given suffix.
func (s *stemmer) stemLen(suf string) int { return len(s.b) - len(suf) }

// replace rewrites the trailing suffix with repl (the caller must have
// checked hasSuffix).
func (s *stemmer) replace(suf, repl string) {
	s.b = append(s.b[:len(s.b)-len(suf)], repl...)
}

// replaceIfM replaces suf with repl when the measure of the remaining
// stem exceeds minM; it reports whether suf matched (regardless of
// whether the replacement fired), which implements Porter's "longest
// matching suffix wins" rule.
func (s *stemmer) replaceIfM(suf, repl string, minM int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.measure(s.stemLen(suf)) > minM {
		s.replace(suf, repl)
	}
	return true
}

// step1a handles plurals: sses→ss, ies→i, ss→ss, s→"".
func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replace("sses", "ss")
	case s.hasSuffix("ies"):
		s.replace("ies", "i")
	case s.hasSuffix("ss"):
		// keep
	case s.hasSuffix("s"):
		s.replace("s", "")
	}
}

// step1b handles -ed and -ing.
func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemLen("eed")) > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	stripped := false
	switch {
	case s.hasSuffix("ed") && s.hasVowel(s.stemLen("ed")):
		s.replace("ed", "")
		stripped = true
	case s.hasSuffix("ing") && s.hasVowel(s.stemLen("ing")):
		s.replace("ing", "")
		stripped = true
	}
	if !stripped {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.endsDoubleConsonant():
		last := s.b[len(s.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.endsCVC(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

// step1c turns a terminal y into i when the stem has a vowel.
func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(s.stemLen("y")) {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0.
func (s *stemmer) step2() {
	rules := []struct{ suf, repl string }{
		{"ational", "ate"}, {"tional", "tion"},
		{"enci", "ence"}, {"anci", "ance"},
		{"izer", "ize"},
		{"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"}, {"ousness", "ous"},
		{"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	}
	for _, r := range rules {
		if s.replaceIfM(r.suf, r.repl, 0) {
			return
		}
	}
}

// step3 strips -icate, -ative, etc. when m > 0.
func (s *stemmer) step3() {
	rules := []struct{ suf, repl string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, r := range rules {
		if s.replaceIfM(r.suf, r.repl, 0) {
			return
		}
	}
}

// step4 strips the remaining standard suffixes when m > 1.
func (s *stemmer) step4() {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		stem := s.stemLen(suf)
		if suf == "ion" {
			// -ion only strips after s or t.
			if stem == 0 || (s.b[stem-1] != 's' && s.b[stem-1] != 't') {
				return
			}
		}
		if s.measure(stem) > 1 {
			s.replace(suf, "")
		}
		return
	}
}

// step5a removes a terminal e when m > 1, or when m = 1 and the stem
// does not end cvc.
func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	stem := s.stemLen("e")
	m := s.measure(stem)
	if m > 1 || (m == 1 && !s.endsCVC(stem)) {
		s.replace("e", "")
	}
}

// step5b reduces a terminal double l when m > 1.
func (s *stemmer) step5b() {
	if s.measure(len(s.b)) > 1 && s.endsDoubleConsonant() && s.b[len(s.b)-1] == 'l' {
		s.b = s.b[:len(s.b)-1]
	}
}
