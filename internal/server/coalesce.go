package server

import (
	"context"
	"strconv"
	"strings"
	"sync"

	"metaprobe/internal/obs"
)

// The batch coalescer merges concurrent requests that would run the
// identical selection — same tenant, query, k, metric, threshold,
// probe budget and served tier — into one underlying probe trajectory,
// and fans the single SelectionResult out to every waiter. Selection
// is deterministic given a model version, so all waiters would have
// received byte-identical answers anyway; coalescing just stops the
// daemon from paying for the same probes N times when a hot query
// arrives from many users at once.
//
// The shared run executes under the *server's* lifetime context, not
// any single caller's: a waiter that gives up (its HTTP client
// disconnects, its deadline fires) stops waiting without cancelling
// the probe trajectory the remaining waiters still need. If every
// waiter abandons the run its result is simply discarded on
// completion — one wasted trajectory, bounded by the run timeout.

// call is one in-flight coalesced selection.
type call struct {
	done chan struct{}
	res  *selectAnswer
	err  error
	// waiters is written under coalescer.mu while the call is listed;
	// the final value is published before done closes.
	waiters int64
}

// coalescer deduplicates concurrent identical selections.
type coalescer struct {
	mu    sync.Mutex
	calls map[string]*call
	// runCtx outlives every request; leader runs detach onto it.
	runCtx context.Context

	// Metric hooks; no-ops when the server runs without a registry.
	requests  func(tenant string)
	runs      func(tenant string)
	coalesced func(tenant string)
	fanout    *obs.Histogram
}

// newCoalescer wires the coalescer's metrics into reg (nil disables
// them). runCtx bounds leader runs; it should be the server's
// lifetime context.
func newCoalescer(runCtx context.Context, reg *obs.Registry) *coalescer {
	c := &coalescer{
		calls:  make(map[string]*call),
		runCtx: runCtx,
	}
	nop := func(string) {}
	c.requests, c.runs, c.coalesced = nop, nop, nop
	if reg != nil {
		reg.Help("mp_batch_requests_total", "Selection requests entering the batch coalescer, per tenant.")
		reg.Help("mp_batch_runs_total", "Underlying selection runs executed (coalesce leaders), per tenant.")
		reg.Help("mp_batch_coalesced_total", "Requests that joined an already-inflight identical selection, per tenant.")
		reg.Help("mp_batch_fanout", "Waiters served per completed coalesced run (1 = no sharing).")
		c.requests = func(t string) {
			reg.Counter("mp_batch_requests_total", obs.Labels{"tenant": t}).Inc()
		}
		c.runs = func(t string) {
			reg.Counter("mp_batch_runs_total", obs.Labels{"tenant": t}).Inc()
		}
		c.coalesced = func(t string) {
			reg.Counter("mp_batch_coalesced_total", obs.Labels{"tenant": t}).Inc()
		}
		c.fanout = reg.Histogram("mp_batch_fanout", nil)
	}
	return c
}

// coalesceKey builds the identity under which requests share one run.
// The tier is part of the key: a full-service answer must never be
// fanned out to a request that was admitted at (and will be labeled
// with) a degraded tier, and vice versa.
func coalesceKey(tenant, query string, k int, metric string, t float64, maxProbes int, tier Tier) string {
	var b strings.Builder
	b.Grow(len(tenant) + len(query) + len(metric) + 32)
	b.WriteString(tenant)
	b.WriteByte(0x1f)
	b.WriteString(query)
	b.WriteByte(0x1f)
	b.WriteString(metric)
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(k))
	b.WriteByte(0x1f)
	b.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(maxProbes))
	b.WriteByte(0x1f)
	b.WriteString(tier.String())
	return b.String()
}

// do runs fn once per concurrent key: the first arrival (the leader)
// launches fn on the coalescer's detached run context; arrivals while
// that run is in flight wait for its result instead of running their
// own. Every waiter — leader included — returns as soon as the shared
// result is ready or its own ctx is done, whichever comes first; a
// caller abandoning the wait never cancels the shared run.
//
// The returned joined flag reports whether this request rode an
// already-inflight run (false for the leader), and fanout how many
// requests the completed run served (0 when the caller's ctx expired
// before the run finished).
func (c *coalescer) do(ctx context.Context, tenant, key string, fn func(ctx context.Context) (*selectAnswer, error)) (ans *selectAnswer, joined bool, fanout int64, err error) {
	c.requests(tenant)
	c.mu.Lock()
	if cl, ok := c.calls[key]; ok {
		cl.waiters++
		c.mu.Unlock()
		c.coalesced(tenant)
		select {
		case <-cl.done:
			return cl.res, true, cl.waiters, cl.err
		case <-ctx.Done():
			return nil, true, 0, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{}), waiters: 1}
	c.calls[key] = cl
	c.mu.Unlock()
	c.runs(tenant)
	go func() {
		res, err := fn(c.runCtx)
		// Unlist before publishing: a request arriving after this point
		// starts a fresh run instead of receiving a stale answer.
		c.mu.Lock()
		delete(c.calls, key)
		c.mu.Unlock()
		cl.res, cl.err = res, err
		close(cl.done)
		if c.fanout != nil {
			c.fanout.Observe(float64(cl.waiters))
		}
	}()
	select {
	case <-cl.done:
		return cl.res, false, cl.waiters, cl.err
	case <-ctx.Done():
		return nil, false, 0, ctx.Err()
	}
}
