package server

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

// TestPerTenantModelSwapIsolation checks that a model hot-swap on one
// tenant stays contained to that tenant: its version chain advances
// (invalidating its cached selection shells and RD tables) while the
// other tenant's version — and both tenants' answers — are untouched.
// The reloaded snapshot holds the same EDs, so any drift in answers
// would mean a stale or torn selection served across the swap.
func TestPerTenantModelSwapIsolation(t *testing.T) {
	msA, qs := buildTestMetasearcher(t, nil, nil)
	msB, _ := buildTestMetasearcher(t, nil, nil)
	s := New(Config{})
	t.Cleanup(s.Close)
	if err := s.AddTenant("a", msA); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant("b", msB); err != nil {
		t.Fatal(err)
	}

	// A threshold this low is met without probing, so answers are a
	// deterministic function of the serving model.
	ask := func(tenant, query string) []string {
		t.Helper()
		resp, err := s.Do(context.Background(), SelectRequest{Tenant: tenant, Query: query, K: 2, Threshold: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Databases
	}
	type answer struct{ a, b []string }
	before := make([]answer, 0, 8)
	for _, q := range qs[:8] {
		before = append(before, answer{ask("a", q), ask("b", q)})
	}
	preInfo := s.ModelsInfo()

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := msA.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	if err := msA.ReloadModel(path); err != nil {
		t.Fatal(err)
	}

	info := s.ModelsInfo()
	if got, want := info.Tenants["a"].Version, preInfo.Tenants["a"].Version+1; got != want {
		t.Fatalf("tenant a at version %d after reload, want %d", got, want)
	}
	if got, want := info.Tenants["b"].Version, preInfo.Tenants["b"].Version; got != want {
		t.Fatalf("tenant b moved to version %d, want %d (no reload)", got, want)
	}
	for i, q := range qs[:8] {
		if got := ask("a", q); !reflect.DeepEqual(got, before[i].a) {
			t.Fatalf("tenant a answer for %q changed across reload: %v vs %v", q, got, before[i].a)
		}
		if got := ask("b", q); !reflect.DeepEqual(got, before[i].b) {
			t.Fatalf("tenant b answer for %q changed across a's reload: %v vs %v", q, got, before[i].b)
		}
	}
}
