package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// SelectRequest is the /v1/select request body (or, for GET, its
// query parameters: tenant, q, k, metric, t, maxProbes). Zero fields
// take the server defaults; MaxProbes 0 means unbounded (the paper's
// default), a negative value is passed through unchanged.
type SelectRequest struct {
	Tenant    string  `json:"tenant,omitempty"`
	Query     string  `json:"query"`
	K         int     `json:"k,omitempty"`
	Metric    string  `json:"metric,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	MaxProbes int     `json:"maxProbes,omitempty"`
}

// SelectResponse is the /v1/select answer. Tier reports the service
// level the answer was actually computed at — "full" (adaptive
// probing), "rd_only" (model-based selection, no probes) or
// "rhat_only" (summary-estimate ranking) — so a degraded answer is
// labeled, never silently substituted.
type SelectResponse struct {
	Tenant string `json:"tenant"`
	Tier   string `json:"tier"`
	// ShedReason is set when Tier is below full: "overload" (global
	// inflight pressure) or "tenant_rate" (this tenant exhausted its
	// full-service budget).
	ShedReason string `json:"shedReason,omitempty"`
	// Coalesced reports that this request rode an identical in-flight
	// selection instead of running its own; Fanout is how many requests
	// the shared run served in total (1 = no sharing).
	Coalesced bool  `json:"coalesced"`
	Fanout    int64 `json:"fanout,omitempty"`
	// Databases is the selected set (testbed order); Certainty its
	// expected correctness (0 on the rhat_only tier, which makes no
	// probabilistic claim); Reached whether the requested threshold was
	// met.
	Databases []string `json:"databases"`
	Certainty float64  `json:"certainty"`
	Probes    int      `json:"probes"`
	Reached   bool     `json:"reached"`
	// Degraded/ExcludedDBs surface backend failures inside a full-tier
	// selection (see metaprobe.SelectionResult).
	Degraded    bool     `json:"degraded,omitempty"`
	ExcludedDBs []string `json:"excludedDBs,omitempty"`
	// ID and TraceID correlate with logs, /debug/trace and
	// /debug/spans. For a coalesced request they identify the shared
	// run, which is the one that did the work.
	ID        string  `json:"id,omitempty"`
	TraceID   string  `json:"traceId,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// isClientError reports whether err is the caller's fault (400/404)
// rather than the server's.
func isClientError(err error) bool {
	var ute *unknownTenantError
	if errors.As(err, &ute) {
		return true
	}
	var bre *badRequestError
	return errors.As(err, &bre)
}

// badRequestError marks malformed requests for 400 mapping.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// Handler returns the daemon's full HTTP surface:
//
//	POST/GET /v1/select   — tiered, coalesced selection
//	GET /v1/tenants       — registered tenants
//	GET /healthz /readyz  — liveness and (drain-aware) readiness
//	GET /metrics          — Prometheus exposition (when configured)
//	GET /debug/model      — per-tenant model versions + skew
//	GET /debug/server     — admission/coalescer counters
//	GET /debug/spans      — span store (when configured)
//	GET /debug/pprof/*    — runtime profiling
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/select", s.SelectHandler())
	mux.Handle("/v1/tenants", obs.JSONHandler(func() any { return s.Tenants() }))
	mux.Handle("/healthz", obs.HealthzHandler())
	mux.Handle("/readyz", obs.ReadyzCheckHandler(s.Ready))
	if s.cfg.Metrics != nil {
		mux.Handle("/metrics", obs.MetricsHandler(s.cfg.Metrics))
	}
	mux.Handle("/debug/model", obs.JSONHandler(func() any { return s.ModelsInfo() }))
	mux.Handle("/debug/server", obs.JSONHandler(func() any { return s.debugState() }))
	if s.cfg.Spans != nil {
		mux.Handle("/debug/spans", span.Handler(s.cfg.Spans))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// debugState is the /debug/server document.
func (s *Server) debugState() any {
	st := s.Stats()
	return map[string]any{
		"uptimeSeconds": s.uptime().Seconds(),
		"tenants":       st.Tenants,
		"inflight":      st.Inflight,
		"peakInflight":  st.PeakInflight,
		"softInflight":  s.cfg.SoftInflight,
		"hardInflight":  s.cfg.HardInflight,
		"tenantRate":    s.cfg.TenantRate,
		"tenantBurst":   s.cfg.TenantBurst,
		"draining":      s.Draining(),
	}
}

// SelectHandler serves /v1/select. POST carries a SelectRequest JSON
// body; GET maps query parameters (tenant, q, k, metric, t,
// maxProbes) for curl-friendly exploration.
func (s *Server) SelectHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := decodeSelectRequest(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := s.Do(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// statusFor maps a Do error to an HTTP status.
func statusFor(err error) int {
	var ute *unknownTenantError
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.As(err, &ute):
		return http.StatusNotFound
	case isClientError(err):
		return http.StatusBadRequest
	}
	// Client disconnects surface as context errors; 499-style nuance
	// is not worth a non-standard code here.
	return http.StatusInternalServerError
}

// decodeSelectRequest parses either transport form.
func decodeSelectRequest(r *http.Request) (SelectRequest, error) {
	var req SelectRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, &badRequestError{fmt.Sprintf("bad request body: %v", err)}
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Tenant = q.Get("tenant")
		req.Query = q.Get("q")
		if req.Query == "" {
			req.Query = q.Get("query")
		}
		req.Metric = q.Get("metric")
		if v := q.Get("k"); v != "" {
			k, err := strconv.Atoi(v)
			if err != nil {
				return req, &badRequestError{fmt.Sprintf("bad k %q", v)}
			}
			req.K = k
		}
		if v := q.Get("t"); v != "" {
			t, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return req, &badRequestError{fmt.Sprintf("bad threshold %q", v)}
			}
			req.Threshold = t
		}
		if v := q.Get("maxProbes"); v != "" {
			mp, err := strconv.Atoi(v)
			if err != nil {
				return req, &badRequestError{fmt.Sprintf("bad maxProbes %q", v)}
			}
			req.MaxProbes = mp
		}
	default:
		return req, &badRequestError{"use GET or POST"}
	}
	if req.Query == "" {
		return req, &badRequestError{"missing query (POST body \"query\" or GET ?q=)"}
	}
	return req, nil
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
