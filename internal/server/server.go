// Package server is metaprobe's multi-tenant selection service: a
// long-running daemon core that fronts many concurrent callers over
// HTTP/JSON on top of the library's probe-execution and RCU model-
// serving substrate.
//
// Three mechanisms make it hold up under heavy traffic:
//
//   - A batch coalescer (coalesce.go) merges concurrent identical
//     requests into one probe trajectory and fans the result out.
//   - Admission control (admission.go) degrades service under
//     pressure — full APro → RD-only → r̂-only — instead of erroring,
//     and the response labels the served tier honestly.
//   - Per-tenant model registries: each tenant serves off its own
//     Metasearcher, whose core.ModelVersion RCU pointer hot-swaps
//     independently (train / reload / background refresh), so one
//     tenant's model churn never blocks another's selections.
//
// cmd/metaprobed wires this package to a listener and signal handling.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"metaprobe"
	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// Config tunes the service. The zero value serves a single unnamed
// tenant with generous limits.
type Config struct {
	// Metrics receives the mp_server_*, mp_batch_* and mp_shed_*
	// series. Nil disables service-layer metrics.
	Metrics *obs.Registry
	// Spans, when non-nil, is reported on responses via the underlying
	// selection's TraceID (the tenants' Metasearchers must share it for
	// the IDs to resolve at /debug/spans).
	Spans *span.Tracer
	// SoftInflight is the admitted-request count above which new
	// requests degrade to rd_only; <= 0 defaults to 64.
	SoftInflight int64
	// HardInflight is the count above which requests degrade to
	// rhat_only; <= 0 defaults to 4 × SoftInflight.
	HardInflight int64
	// TenantRate is each tenant's sustained full-service budget in
	// requests/second; a tenant past it degrades to rd_only until the
	// bucket refills. 0 — the default — leaves tenants unmetered.
	TenantRate float64
	// TenantBurst is the token-bucket depth (instantaneous full-service
	// burst); <= 0 defaults to 32.
	TenantBurst int
	// RunTimeout caps one coalesced selection run end to end; the run
	// context is detached from the callers', so this is the only bound
	// on an abandoned run. <= 0 defaults to 30s.
	RunTimeout time.Duration
	// DefaultK and DefaultThreshold fill requests that omit k or
	// threshold (defaults 3 and 0.9).
	DefaultK         int
	DefaultThreshold float64
}

// withDefaults returns cfg with unset fields filled.
func (cfg Config) withDefaults() Config {
	if cfg.SoftInflight <= 0 {
		cfg.SoftInflight = 64
	}
	if cfg.HardInflight <= 0 {
		cfg.HardInflight = 4 * cfg.SoftInflight
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = 32
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 30 * time.Second
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 3
	}
	if cfg.DefaultThreshold <= 0 {
		cfg.DefaultThreshold = 0.9
	}
	return cfg
}

// tenant is one isolated serving unit: its own metasearcher (and so
// its own RCU model version chain and refresh loop) plus its own
// full-service token bucket.
type tenant struct {
	name   string
	ms     *metaprobe.Metasearcher
	bucket *tokenBucket
}

// Server is the multi-tenant selection service core. It is an
// http.Handler factory (Handler) plus a direct API (Do) that the
// bench harness and tests drive in-process.
type Server struct {
	cfg  Config
	adm  *admission
	coal *coalescer

	mu      sync.RWMutex
	tenants map[string]*tenant

	// lifetime is the run context coalesced selections detach onto;
	// Close cancels it.
	lifetime context.Context
	cancel   context.CancelFunc
	drainMu  sync.Mutex
	drainOn  bool

	started time.Time
}

// New builds a server with no tenants; add them with AddTenant before
// serving traffic.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.SoftInflight, cfg.HardInflight, cfg.Metrics),
		coal:     newCoalescer(ctx, cfg.Metrics),
		tenants:  make(map[string]*tenant),
		lifetime: ctx,
		cancel:   cancel,
		started:  time.Now(),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Help("mp_server_requests_total", "Selection requests served, by tenant and served tier.")
		reg.Help("mp_server_request_seconds", "End-to-end service latency of one selection request, by served tier.")
		reg.Help("mp_server_errors_total", "Selection requests that failed, by error kind.")
		reg.Help("mp_server_tenants", "Registered tenants.")
		reg.GaugeFunc("mp_server_tenants", nil, func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.tenants))
		})
	}
	return s
}

// AddTenant registers a tenant served by ms. Tenant names must be
// non-empty and unique; DefaultTenant is the name the HTTP layer
// substitutes for requests that omit one.
func (s *Server) AddTenant(name string, ms *metaprobe.Metasearcher) error {
	if name == "" {
		return fmt.Errorf("server: tenant name must be non-empty")
	}
	if ms == nil {
		return fmt.Errorf("server: tenant %q needs a metasearcher", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("server: tenant %q already registered", name)
	}
	s.tenants[name] = &tenant{
		name:   name,
		ms:     ms,
		bucket: newTokenBucket(s.cfg.TenantRate, s.cfg.TenantBurst),
	}
	return nil
}

// DefaultTenant is substituted for requests that omit a tenant.
const DefaultTenant = "default"

// Tenants returns the registered tenant names, sorted.
func (s *Server) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// tenant resolves a tenant by name ("" means DefaultTenant).
func (s *Server) tenant(name string) (*tenant, error) {
	if name == "" {
		name = DefaultTenant
	}
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return nil, &unknownTenantError{name}
	}
	return t, nil
}

// unknownTenantError distinguishes a caller mistake (404) from serving
// failures (500).
type unknownTenantError struct{ name string }

func (e *unknownTenantError) Error() string { return fmt.Sprintf("unknown tenant %q", e.name) }

// Ready reports whether the server can serve selections at quality:
// at least one tenant, every tenant's model trained and healthy, and
// not draining.
func (s *Server) Ready() error {
	if s.Draining() {
		return fmt.Errorf("draining")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.tenants) == 0 {
		return fmt.Errorf("no tenants registered")
	}
	for name, t := range s.tenants {
		if err := t.ms.Ready(); err != nil {
			return fmt.Errorf("tenant %s: %w", name, err)
		}
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.drainOn
}

// Drain begins graceful shutdown: readiness flips to not-ready (so
// load balancers stop routing here), new selection requests are
// rejected with 503, and Drain blocks until every admitted request
// has finished or ctx expires. It does not stop tenant refreshers —
// call Close after the listener is down.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.drainOn = true
	s.drainMu.Unlock()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.adm.Inflight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain timed out with %d requests in flight: %w",
				s.adm.Inflight(), ctx.Err())
		case <-tick.C:
		}
	}
}

// Close cancels the run context (abandoning any coalesced runs still
// in flight) and closes every tenant's metasearcher, stopping their
// background refreshers. Call after Drain.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tenants {
		t.ms.Close()
	}
}

// selectAnswer is the service-internal result of one selection run —
// the coalescer's fan-out unit. All waiters of a coalesced run share
// one instance; it is read-only after publication.
type selectAnswer struct {
	databases []string
	certainty float64
	probes    int
	reached   bool
	degraded  bool
	excluded  []string
	id        string
	traceID   string
}

// Do serves one selection request end to end: admission (tier
// decision), coalescing, tiered execution, metrics. It is the
// transport-independent core the HTTP handler and in-process callers
// share. Client mistakes (unknown tenant, bad metric, k out of range)
// return errors; under load the answer degrades instead of failing.
func (s *Server) Do(ctx context.Context, req SelectRequest) (*SelectResponse, error) {
	if s.Draining() {
		return nil, errDraining
	}
	req = s.fillDefaults(req)
	metric, err := parseMetric(req.Metric)
	if err != nil {
		return nil, err
	}
	ten, err := s.tenant(req.Tenant)
	if err != nil {
		return nil, err
	}
	if req.Query == "" {
		return nil, fmt.Errorf("empty query")
	}
	start := time.Now()
	tier, shedReason := s.adm.acquire(ten.bucket)
	defer s.adm.release()

	key := coalesceKey(ten.name, req.Query, req.K, req.Metric, req.Threshold, req.MaxProbes, tier)
	ans, joined, fanout, err := s.coal.do(ctx, ten.name, key, func(runCtx context.Context) (*selectAnswer, error) {
		runCtx, cancel := context.WithTimeout(runCtx, s.cfg.RunTimeout)
		defer cancel()
		return s.run(runCtx, ten, tier, req, metric)
	})
	if err != nil {
		s.countError(err)
		return nil, err
	}
	resp := &SelectResponse{
		Tenant:      ten.name,
		Tier:        tier.String(),
		ShedReason:  shedReason,
		Coalesced:   joined,
		Fanout:      fanout,
		Databases:   ans.databases,
		Certainty:   ans.certainty,
		Probes:      ans.probes,
		Reached:     ans.reached,
		Degraded:    ans.degraded,
		ExcludedDBs: ans.excluded,
		ID:          ans.id,
		TraceID:     ans.traceID,
		ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if reg := s.cfg.Metrics; reg != nil {
		reg.Counter("mp_server_requests_total", obs.Labels{"tenant": ten.name, "tier": resp.Tier}).Inc()
		reg.Histogram("mp_server_request_seconds", obs.Labels{"tier": resp.Tier}).
			ObserveExemplar(time.Since(start).Seconds(), ans.traceID)
	}
	return resp, nil
}

// errDraining is returned for requests arriving after Drain began.
var errDraining = fmt.Errorf("server draining")

// fillDefaults applies the configured request defaults.
func (s *Server) fillDefaults(req SelectRequest) SelectRequest {
	if req.Tenant == "" {
		req.Tenant = DefaultTenant
	}
	if req.K <= 0 {
		req.K = s.cfg.DefaultK
	}
	if req.Threshold <= 0 {
		req.Threshold = s.cfg.DefaultThreshold
	}
	if req.Metric == "" {
		req.Metric = metaprobe.Absolute.String()
	}
	if req.MaxProbes == 0 {
		req.MaxProbes = -1
	}
	return req
}

// parseMetric maps the wire form to the core metric.
func parseMetric(s string) (metaprobe.Metric, error) {
	switch s {
	case "", metaprobe.Absolute.String():
		return metaprobe.Absolute, nil
	case metaprobe.Partial.String():
		return metaprobe.Partial, nil
	}
	return 0, &badRequestError{fmt.Sprintf("unknown metric %q (want %q or %q)",
		s, metaprobe.Absolute.String(), metaprobe.Partial.String())}
}

// run executes one selection at the admitted tier. Every tier answers
// from the tenant's current serving model version; only TierFull
// issues live probes.
func (s *Server) run(ctx context.Context, ten *tenant, tier Tier, req SelectRequest, metric metaprobe.Metric) (*selectAnswer, error) {
	switch tier {
	case TierFull:
		res, err := ten.ms.SelectWithCertaintyContext(ctx, req.Query, req.K, metric, req.Threshold, req.MaxProbes)
		if err != nil {
			return nil, err
		}
		return &selectAnswer{
			databases: res.Databases,
			certainty: res.Certainty,
			probes:    res.Probes,
			reached:   res.Reached,
			degraded:  res.Degraded,
			excluded:  res.ExcludedDBs,
			id:        res.ID,
			traceID:   res.TraceID,
		}, nil
	case TierRDOnly:
		names, certainty, err := ten.ms.SelectContext(ctx, req.Query, req.K, metric)
		if err != nil {
			return nil, err
		}
		return &selectAnswer{
			databases: names,
			certainty: certainty,
			reached:   certainty >= req.Threshold,
		}, nil
	default: // TierRhatOnly
		// The baseline needs no trained model and issues no probes; it
		// cannot fail on a well-formed request — the never-fail floor.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &selectAnswer{databases: ten.ms.SelectBaseline(req.Query, req.K)}, nil
	}
}

// countError classifies one failed request for mp_server_errors_total.
func (s *Server) countError(err error) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	kind := "internal"
	switch {
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		kind = "canceled"
	case isClientError(err):
		kind = "client"
	}
	reg.Counter("mp_server_errors_total", obs.Labels{"kind": kind}).Inc()
}

// TenantModelInfo is one tenant's serving-model line in the
// /debug/model view.
type TenantModelInfo struct {
	metaprobe.ModelInfo
	Tenant string `json:"tenant"`
}

// ModelSkew summarizes version drift across tenants. Versions count
// per-tenant publications, so the interesting skew signal is age: a
// tenant whose model is much older than the newest one is lagging the
// refresh/reload pipeline.
type ModelSkew struct {
	// Tenants counts registered tenants; Untrained how many have no
	// model at all.
	Tenants   int `json:"tenants"`
	Untrained int `json:"untrained,omitempty"`
	// MinVersion/MaxVersion bound the per-tenant version counters.
	MinVersion int64 `json:"minVersion,omitempty"`
	MaxVersion int64 `json:"maxVersion,omitempty"`
	// NewestTenant/OldestTenant name the tenants serving the youngest
	// and oldest model versions, and AgeSpreadSeconds their gap.
	NewestTenant     string  `json:"newestTenant,omitempty"`
	OldestTenant     string  `json:"oldestTenant,omitempty"`
	AgeSpreadSeconds float64 `json:"ageSpreadSeconds,omitempty"`
}

// ModelsInfo is the multi-tenant /debug/model document: one ModelInfo
// per tenant plus the cross-tenant skew summary. It replaces the
// single-model view that endpoint had when the process served exactly
// one metasearcher.
type ModelsInfo struct {
	Tenants map[string]TenantModelInfo `json:"tenants"`
	Skew    ModelSkew                  `json:"skew"`
}

// ModelsInfo snapshots every tenant's serving model version and the
// skew between them.
func (s *Server) ModelsInfo() ModelsInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := ModelsInfo{Tenants: make(map[string]TenantModelInfo, len(s.tenants))}
	out.Skew.Tenants = len(s.tenants)
	var newest, oldest time.Time
	for name, t := range s.tenants {
		info := t.ms.ModelInfo()
		out.Tenants[name] = TenantModelInfo{ModelInfo: info, Tenant: name}
		if !info.Trained {
			out.Skew.Untrained++
			continue
		}
		if out.Skew.MinVersion == 0 || info.Version < out.Skew.MinVersion {
			out.Skew.MinVersion = info.Version
		}
		if info.Version > out.Skew.MaxVersion {
			out.Skew.MaxVersion = info.Version
		}
		if newest.IsZero() || info.CreatedAt.After(newest) {
			newest = info.CreatedAt
			out.Skew.NewestTenant = name
		}
		if oldest.IsZero() || info.CreatedAt.Before(oldest) {
			oldest = info.CreatedAt
			out.Skew.OldestTenant = name
		}
	}
	if !newest.IsZero() && !oldest.IsZero() {
		out.Skew.AgeSpreadSeconds = newest.Sub(oldest).Seconds()
	}
	return out
}

// Stats is a point-in-time view of the service counters for logs and
// tests.
type Stats struct {
	Inflight     int64
	PeakInflight int64
	Tenants      int
}

// Stats snapshots the admission state.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	n := len(s.tenants)
	s.mu.RUnlock()
	return Stats{Inflight: s.adm.Inflight(), PeakInflight: s.adm.Peak(), Tenants: n}
}

// uptime is exposed for the debug handler.
func (s *Server) uptime() time.Duration { return time.Since(s.started) }
