package server

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"metaprobe"
	"metaprobe/internal/obs"
)

// TestDoFullTierMatchesDirect: a full-tier service answer is identical
// to the direct library call — the service layer adds no drift.
func TestDoFullTierMatchesDirect(t *testing.T) {
	s, ms, qs := buildTestServer(t, Config{})
	for _, q := range qs[:8] {
		resp, err := s.Do(context.Background(), SelectRequest{Query: q, K: 3, Threshold: 0.9})
		if err != nil {
			t.Fatalf("Do(%q): %v", q, err)
		}
		if resp.Tier != "full" || resp.ShedReason != "" {
			t.Fatalf("idle request served at %q (%q), want full", resp.Tier, resp.ShedReason)
		}
		direct, err := ms.SelectWithCertaintyContext(context.Background(), q, 3, metaprobe.Absolute, 0.9, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Databases, direct.Databases) {
			t.Errorf("Do(%q) selected %v, direct call %v", q, resp.Databases, direct.Databases)
		}
		if resp.Certainty != direct.Certainty {
			t.Errorf("Do(%q) certainty %v, direct %v", q, resp.Certainty, direct.Certainty)
		}
	}
}

// TestDoTierExecution: the rd_only and rhat_only tiers answer from the
// model/summaries without probes and match their library equivalents.
func TestDoTierExecution(t *testing.T) {
	s, ms, qs := buildTestServer(t, Config{})
	ten, err := s.tenant(DefaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	req := s.fillDefaults(SelectRequest{Query: q, K: 3, Threshold: 0.9})

	rd, err := s.run(context.Background(), ten, TierRDOnly, req, metaprobe.Absolute)
	if err != nil {
		t.Fatal(err)
	}
	wantSet, wantE, err := ms.Select(q, 3, metaprobe.Absolute)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rd.databases, wantSet) || rd.certainty != wantE {
		t.Errorf("rd_only answered (%v, %v), want (%v, %v)", rd.databases, rd.certainty, wantSet, wantE)
	}
	if rd.probes != 0 {
		t.Errorf("rd_only spent %d probes, want 0", rd.probes)
	}

	rhat, err := s.run(context.Background(), ten, TierRhatOnly, req, metaprobe.Absolute)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rhat.databases, ms.SelectBaseline(q, 3)) {
		t.Errorf("rhat_only answered %v, want the baseline ranking", rhat.databases)
	}
	if rhat.probes != 0 || rhat.certainty != 0 {
		t.Errorf("rhat_only claimed probes=%d certainty=%v, want 0/0", rhat.probes, rhat.certainty)
	}
}

// TestDoShedsTenantRate: a tenant past its token bucket degrades to
// rd_only with reason tenant_rate — and still gets an answer.
func TestDoShedsTenantRate(t *testing.T) {
	s, _, qs := buildTestServer(t, Config{TenantRate: 0.000001, TenantBurst: 1})
	first, err := s.Do(context.Background(), SelectRequest{Query: qs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if first.Tier != "full" {
		t.Fatalf("first request served at %q, want full", first.Tier)
	}
	second, err := s.Do(context.Background(), SelectRequest{Query: qs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if second.Tier != "rd_only" || second.ShedReason != shedTenantRate {
		t.Fatalf("second request served at %q (%q), want rd_only/tenant_rate", second.Tier, second.ShedReason)
	}
	if len(second.Databases) == 0 {
		t.Fatal("degraded request got an empty answer")
	}
}

// TestDoShedsOverload drives concurrent requests through gated
// databases so the inflight gauge crosses soft and hard limits; every
// request must still be answered (availability stays 100%), with the
// excess honestly labeled rd_only / rhat_only.
func TestDoShedsOverload(t *testing.T) {
	ctl := newGateCtl()
	ms, qs := buildTestMetasearcher(t, nil, func(db metaprobe.Database) metaprobe.Database {
		return &gate{Database: db, ctl: ctl}
	})
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg, SoftInflight: 2, HardInflight: 4})
	if err := s.AddTenant(DefaultTenant, ms); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Distinct queries (so the coalescer cannot merge them) that all
	// genuinely need probes: a full-tier run must block on the gate for
	// the inflight gauge to climb.
	probing := probingQueries(t, ms, qs, 8)
	n := len(probing)
	ctl.armed.Store(true)
	var wg sync.WaitGroup
	tiers := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Do(context.Background(), SelectRequest{Query: probing[i], Threshold: 0.999})
			if err != nil {
				errs[i] = err
				return
			}
			tiers[i] = resp.Tier
		}(i)
	}
	// Full-tier requests block inside the gated probes; degraded tiers
	// (no probes) complete immediately. Peak inflight is sticky, and
	// any acquire that saw 3 concurrent was shed (soft = 2).
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().PeakInflight < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight never crossed the soft limit (peak %d)", s.Stats().PeakInflight)
		}
		time.Sleep(time.Millisecond)
	}
	ctl.release()
	wg.Wait()

	counts := map[string]int{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed under overload: %v (availability must stay 100%%)", i, errs[i])
		}
		counts[tiers[i]]++
	}
	if counts["rd_only"]+counts["rhat_only"] == 0 {
		t.Fatalf("no request was shed at soft=2 hard=4 with %d concurrent: %v", n, counts)
	}
	if counts["full"] == 0 {
		t.Fatalf("every request was shed: %v", counts)
	}
}

// TestDoCoalescesConcurrentIdentical: identical concurrent requests
// share one probe trajectory and all receive the same answer.
func TestDoCoalescesConcurrentIdentical(t *testing.T) {
	ctl := newGateCtl()
	ms, qs := buildTestMetasearcher(t, nil, func(db metaprobe.Database) metaprobe.Database {
		return &gate{Database: db, ctl: ctl}
	})
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg})
	if err := s.AddTenant(DefaultTenant, ms); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	const n = 6
	req := SelectRequest{Query: probingQueries(t, ms, qs, 1)[0], K: 3, Threshold: 0.999}
	ctl.armed.Store(true)
	var wg sync.WaitGroup
	resps := make([]*SelectResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Do(context.Background(), req)
		}(i)
	}
	key := coalesceKey(DefaultTenant, req.Query, req.K, "absolute", req.Threshold, -1, TierFull)
	deadline := time.Now().Add(10 * time.Second)
	for waitersOf(s.coal, key) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", waitersOf(s.coal, key), n)
		}
		time.Sleep(time.Millisecond)
	}
	ctl.release()
	wg.Wait()

	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(resps[i].Databases, resps[0].Databases) ||
			resps[i].Certainty != resps[0].Certainty ||
			resps[i].Probes != resps[0].Probes {
			t.Fatalf("request %d diverged: %+v vs %+v", i, resps[i], resps[0])
		}
		if resps[i].Fanout != n {
			t.Errorf("request %d fanout %d, want %d", i, resps[i].Fanout, n)
		}
		if !resps[i].Coalesced {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
}

// probingQueries picks up to n test queries whose RD-only certainty is
// below 0.999, so a full-tier selection at that threshold must issue
// live probes (and, in these tests, block on the gate).
func probingQueries(t testing.TB, ms *metaprobe.Metasearcher, qs []string, n int) []string {
	t.Helper()
	var out []string
	for _, q := range qs {
		if _, e, err := ms.Select(q, 3, metaprobe.Absolute); err == nil && e < 0.999 {
			out = append(out, q)
			if len(out) == n {
				return out
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no test query needs probes at threshold 0.999")
	}
	return out
}

// TestDoClientErrors: caller mistakes error out instead of degrading.
func TestDoClientErrors(t *testing.T) {
	s, _, qs := buildTestServer(t, Config{})
	if _, err := s.Do(context.Background(), SelectRequest{Query: qs[0], Tenant: "nobody"}); err == nil {
		t.Error("unknown tenant accepted")
	} else if !isClientError(err) {
		t.Errorf("unknown tenant classed as server error: %v", err)
	}
	if _, err := s.Do(context.Background(), SelectRequest{Query: qs[0], Metric: "bogus"}); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := s.Do(context.Background(), SelectRequest{}); err == nil {
		t.Error("empty query accepted")
	}
}

// TestDrainLifecycle: draining flips readiness, rejects new work, and
// Drain returns once in-flight requests finish.
func TestDrainLifecycle(t *testing.T) {
	s, _, qs := buildTestServer(t, Config{})
	if err := s.Ready(); err != nil {
		t.Fatalf("trained single-tenant server not ready: %v", err)
	}
	if _, err := s.Do(context.Background(), SelectRequest{Query: qs[0]}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain with idle server: %v", err)
	}
	if err := s.Ready(); err == nil {
		t.Error("draining server reports ready")
	}
	if _, err := s.Do(context.Background(), SelectRequest{Query: qs[0]}); !errors.Is(err, errDraining) {
		t.Errorf("request during drain returned %v, want errDraining", err)
	}
}

// TestModelsInfoSkew: /debug/model's backing view reports one entry
// per tenant and coherent skew bounds.
func TestModelsInfoSkew(t *testing.T) {
	msA, _ := buildTestMetasearcher(t, nil, nil)
	msB, _ := buildTestMetasearcher(t, nil, nil)
	s := New(Config{})
	if err := s.AddTenant("alpha", msA); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant("beta", msB); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Advance beta's model chain so the tenants skew.
	if err := msB.Train([]string{"cancer treatment", "heart disease"}); err != nil {
		t.Fatal(err)
	}

	info := s.ModelsInfo()
	if len(info.Tenants) != 2 || info.Skew.Tenants != 2 {
		t.Fatalf("got %d tenants (skew %d), want 2", len(info.Tenants), info.Skew.Tenants)
	}
	for _, name := range []string{"alpha", "beta"} {
		ti, ok := info.Tenants[name]
		if !ok || ti.Tenant != name || !ti.Trained {
			t.Fatalf("tenant %q missing or untrained: %+v", name, ti)
		}
	}
	if info.Tenants["beta"].Version <= info.Tenants["alpha"].Version {
		t.Errorf("beta (v%d) should out-version alpha (v%d) after retraining",
			info.Tenants["beta"].Version, info.Tenants["alpha"].Version)
	}
	if info.Skew.MinVersion != info.Tenants["alpha"].Version ||
		info.Skew.MaxVersion != info.Tenants["beta"].Version {
		t.Errorf("skew bounds [%d, %d] don't match tenant versions %+v",
			info.Skew.MinVersion, info.Skew.MaxVersion, info.Tenants)
	}
	if info.Skew.Untrained != 0 {
		t.Errorf("untrained = %d, want 0", info.Skew.Untrained)
	}
}

// TestAddTenantValidation covers the registration error paths.
func TestAddTenantValidation(t *testing.T) {
	ms, _ := buildTestMetasearcher(t, nil, nil)
	s := New(Config{})
	t.Cleanup(s.Close)
	if err := s.AddTenant("", ms); err == nil {
		t.Error("empty tenant name accepted")
	}
	if err := s.AddTenant("a", nil); err == nil {
		t.Error("nil metasearcher accepted")
	}
	if err := s.AddTenant("a", ms); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant("a", ms); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if got := s.Tenants(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Tenants() = %v, want [a]", got)
	}
}
