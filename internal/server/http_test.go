package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"metaprobe/internal/obs"
)

// TestHandlerSelect drives the full HTTP surface: GET and POST
// selection, readiness, metrics and the multi-tenant model view.
func TestHandlerSelect(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, qs := buildTestServer(t, Config{Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Readiness and liveness.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}

	// GET selection.
	code, body := get("/v1/select?q=" + url.QueryEscape(qs[0]) + "&k=3&t=0.9")
	if code != http.StatusOK {
		t.Fatalf("GET select = %d %s", code, body)
	}
	var viaGet SelectResponse
	if err := json.Unmarshal(body, &viaGet); err != nil {
		t.Fatal(err)
	}
	if viaGet.Tier != "full" || viaGet.Tenant != DefaultTenant || len(viaGet.Databases) != 3 {
		t.Fatalf("GET select answered %+v", viaGet)
	}

	// POST selection with the same parameters answers identically.
	resp, err := http.Post(ts.URL+"/v1/select", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query": %q, "k": 3, "threshold": 0.9}`, qs[0])))
	if err != nil {
		t.Fatal(err)
	}
	var viaPost SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&viaPost); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST select = %d", resp.StatusCode)
	}
	if fmt.Sprint(viaPost.Databases) != fmt.Sprint(viaGet.Databases) || viaPost.Certainty != viaGet.Certainty {
		t.Fatalf("POST %+v diverged from GET %+v", viaPost, viaGet)
	}

	// Error mapping.
	if code, _ := get("/v1/select"); code != http.StatusBadRequest {
		t.Errorf("missing query = %d, want 400", code)
	}
	if code, _ := get("/v1/select?q=x&k=frog"); code != http.StatusBadRequest {
		t.Errorf("bad k = %d, want 400", code)
	}
	if code, _ := get("/v1/select?q=x&metric=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad metric = %d, want 400", code)
	}
	if code, _ := get("/v1/select?q=x&tenant=nobody"); code != http.StatusNotFound {
		t.Errorf("unknown tenant = %d, want 404", code)
	}

	// Tenants and the multi-tenant model document.
	if code, body := get("/v1/tenants"); code != http.StatusOK || !strings.Contains(string(body), DefaultTenant) {
		t.Fatalf("/v1/tenants = %d %s", code, body)
	}
	code, body = get("/debug/model")
	if code != http.StatusOK {
		t.Fatalf("/debug/model = %d", code)
	}
	var models ModelsInfo
	if err := json.Unmarshal(body, &models); err != nil {
		t.Fatal(err)
	}
	ti, ok := models.Tenants[DefaultTenant]
	if !ok || !ti.Trained || ti.Tenant != DefaultTenant {
		t.Fatalf("/debug/model missing the default tenant: %s", body)
	}
	if models.Skew.Tenants != 1 {
		t.Errorf("skew.tenants = %d, want 1", models.Skew.Tenants)
	}

	// Metrics exposition includes the service series, with zero sheds.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"mp_server_requests_total", "mp_batch_requests_total", "mp_shed_total", "mp_server_inflight"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(string(body), `mp_shed_total{reason="overload",tier="rd_only"} 0`) {
		t.Error("idle server shows non-zero sheds")
	}

	// Drain flips readiness to 503 and selection to 503.
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", code)
	}
	if code, _ := get("/v1/select?q=x"); code != http.StatusServiceUnavailable {
		t.Errorf("draining select = %d, want 503", code)
	}
}
