package server

import (
	"strings"
	"testing"
	"time"

	"metaprobe/internal/obs"
)

// TestAdmissionTierTransitions walks the inflight gauge through the
// full → rd_only → rhat_only ladder by holding tickets open.
func TestAdmissionTierTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(2, 4, reg)
	bucket := newTokenBucket(0, 0) // unmetered

	want := []struct {
		tier   Tier
		reason string
	}{
		{TierFull, ""},
		{TierFull, ""},
		{TierRDOnly, shedOverload},
		{TierRDOnly, shedOverload},
		{TierRhatOnly, shedOverload},
		{TierRhatOnly, shedOverload},
	}
	for i, w := range want {
		tier, reason := a.acquire(bucket)
		if tier != w.tier || reason != w.reason {
			t.Fatalf("request %d: got (%v, %q), want (%v, %q)", i+1, tier, reason, w.tier, w.reason)
		}
	}
	if got := a.Inflight(); got != int64(len(want)) {
		t.Errorf("inflight %d, want %d", got, len(want))
	}
	if got := a.Peak(); got != int64(len(want)) {
		t.Errorf("peak %d, want %d", got, len(want))
	}

	// Releasing tickets restores full service.
	for range want {
		a.release()
	}
	if tier, reason := a.acquire(bucket); tier != TierFull || reason != "" {
		t.Fatalf("after drain: got (%v, %q), want full service", tier, reason)
	}
	a.release()
	if got := a.Peak(); got != int64(len(want)) {
		t.Errorf("peak moved to %d after drain, want sticky %d", got, len(want))
	}
}

// TestAdmissionShedMetrics: shed counters appear (at zero) before any
// shedding and count degraded requests by tier and reason.
func TestAdmissionShedMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 2, reg)
	bucket := newTokenBucket(0, 0)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	idle := sb.String()
	for _, series := range []string{
		`mp_shed_total{reason="overload",tier="rd_only"} 0`,
		`mp_shed_total{reason="overload",tier="rhat_only"} 0`,
		`mp_shed_total{reason="tenant_rate",tier="rd_only"} 0`,
	} {
		if !strings.Contains(idle, series) {
			t.Errorf("idle exposition missing %q:\n%s", series, idle)
		}
	}

	a.acquire(bucket) // full
	a.acquire(bucket) // rd_only
	a.acquire(bucket) // rhat_only
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	loaded := sb.String()
	for _, series := range []string{
		`mp_shed_total{reason="overload",tier="rd_only"} 1`,
		`mp_shed_total{reason="overload",tier="rhat_only"} 1`,
	} {
		if !strings.Contains(loaded, series) {
			t.Errorf("loaded exposition missing %q:\n%s", series, loaded)
		}
	}
}

// TestAdmissionHardBelowSoft: a hard limit tighter than the soft one is
// lifted so the rd_only tier is never skipped.
func TestAdmissionHardBelowSoft(t *testing.T) {
	a := newAdmission(4, 2, nil)
	if a.hard != a.soft {
		t.Fatalf("hard %d, want lifted to soft %d", a.hard, a.soft)
	}
}

// TestTokenBucket exercises refill behavior with an injected clock.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(1, 2) // 1 token/s, burst 2
	b.now = func() time.Time { return now }

	if !b.allow() || !b.allow() {
		t.Fatal("burst tokens rejected")
	}
	if b.allow() {
		t.Fatal("empty bucket allowed")
	}
	now = now.Add(1 * time.Second)
	if !b.allow() {
		t.Fatal("refilled token rejected")
	}
	if b.allow() {
		t.Fatal("bucket over-refilled")
	}
	// Refill caps at burst.
	now = now.Add(time.Hour)
	if !b.allow() || !b.allow() {
		t.Fatal("burst after idle rejected")
	}
	if b.allow() {
		t.Fatal("refill exceeded burst depth")
	}

	// rate <= 0 disables metering entirely, including on a nil bucket.
	unlimited := newTokenBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !unlimited.allow() {
			t.Fatal("unmetered bucket rejected")
		}
	}
	var nilBucket *tokenBucket
	if !nilBucket.allow() {
		t.Fatal("nil bucket rejected")
	}
}
