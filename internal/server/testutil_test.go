package server

import (
	"sync/atomic"
	"testing"

	"metaprobe"
	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// buildTestMetasearcher trains a small 6-database metasearcher for
// service tests. wrap, when non-nil, wraps each database after
// summaries are built (so summaries reflect the raw content).
func buildTestMetasearcher(t testing.TB, cfg *metaprobe.Config, wrap func(db metaprobe.Database) metaprobe.Database) (*metaprobe.Metasearcher, []string) {
	t.Helper()
	world := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(world, corpus.HealthTestbed(0.01)[:6], 23)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]metaprobe.Database, tb.Len())
	for i := range dbs {
		dbs[i] = tb.DB(i)
	}
	sums, err := metaprobe.ExactSummaries(dbs)
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		for i := range dbs {
			dbs[i] = wrap(dbs[i])
		}
	}
	ms, err := metaprobe.New(dbs, sums, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := queries.NewGenerator(world, queries.Config{})
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := gen.TrainTest(stats.NewRNG(4), 150, 150, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	trainStrs := make([]string, len(train))
	for i, q := range train {
		trainStrs[i] = q.String()
	}
	if err := ms.Train(trainStrs); err != nil {
		t.Fatal(err)
	}
	testStrs := make([]string, len(test))
	for i, q := range test {
		testStrs[i] = q.String()
	}
	return ms, testStrs
}

// buildTestServer wires a single-tenant server over a fresh test
// metasearcher and registers cleanup.
func buildTestServer(t testing.TB, cfg Config) (*Server, *metaprobe.Metasearcher, []string) {
	t.Helper()
	ms, qs := buildTestMetasearcher(t, nil, nil)
	s := New(cfg)
	if err := s.AddTenant(DefaultTenant, ms); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, ms, qs
}

// gateCtl arms and releases a set of gated databases. While armed,
// every Search blocks until release — holding full-tier selections in
// flight while a test piles more requests onto the coalescer or the
// admission gauge. It starts disarmed so fixture training (which
// probes every database) runs through.
type gateCtl struct {
	armed atomic.Bool
	open  chan struct{}
}

func newGateCtl() *gateCtl { return &gateCtl{open: make(chan struct{})} }

// release lets all blocked (and future) searches through.
func (c *gateCtl) release() { close(c.open) }

// gate wraps one database under a shared gateCtl.
type gate struct {
	metaprobe.Database
	ctl *gateCtl
}

func (g *gate) Search(query string, topK int) (hidden.Result, error) {
	if g.ctl.armed.Load() {
		<-g.ctl.open
	}
	return g.Database.Search(query, topK)
}
