package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"metaprobe/internal/obs"
)

// TestCoalesceFanout: N concurrent requests for one key run fn once
// and every waiter receives the identical result instance.
func TestCoalesceFanout(t *testing.T) {
	c := newCoalescer(context.Background(), obs.NewRegistry())
	const n = 16
	var runs atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{}, n)
	want := &selectAnswer{databases: []string{"a", "b"}, certainty: 0.93}
	fn := func(ctx context.Context) (*selectAnswer, error) {
		runs.Add(1)
		<-release
		return want, nil
	}

	var wg sync.WaitGroup
	results := make([]*selectAnswer, n)
	joins := make([]bool, n)
	fans := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered <- struct{}{}
			ans, joined, fanout, err := c.do(context.Background(), "default", "k", fn)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], joins[i], fans[i] = ans, joined, fanout
		}(i)
	}
	// Wait until every goroutine is at least launched, give the leader
	// time to list the call, then let all waiters pile on before the
	// run completes.
	for i := 0; i < n; i++ {
		<-entered
	}
	for c.inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	// All n either joined the listed call or are the leader; once every
	// request is blocked inside do, release the run.
	deadline := time.Now().Add(5 * time.Second)
	for waitersOf(c, "k") < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters joined", waitersOf(c, "k"), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != want {
			t.Fatalf("waiter %d got %+v, want the shared instance", i, results[i])
		}
		if fans[i] != n {
			t.Errorf("waiter %d saw fanout %d, want %d", i, fans[i], n)
		}
		if !joins[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want exactly 1", leaders)
	}
}

// TestCoalesceWaiterCancelKeepsRun: a waiter abandoning its wait must
// not cancel the shared run — the remaining waiters still get the
// answer.
func TestCoalesceWaiterCancelKeepsRun(t *testing.T) {
	c := newCoalescer(context.Background(), nil)
	release := make(chan struct{})
	want := &selectAnswer{databases: []string{"x"}}
	var runCanceled atomic.Bool
	fn := func(ctx context.Context) (*selectAnswer, error) {
		<-release
		if ctx.Err() != nil {
			runCanceled.Store(true)
			return nil, ctx.Err()
		}
		return want, nil
	}

	// Leader in one goroutine.
	type out struct {
		ans *selectAnswer
		err error
	}
	leaderDone := make(chan out, 1)
	go func() {
		ans, _, _, err := c.do(context.Background(), "default", "k", fn)
		leaderDone <- out{ans, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for waitersOf(c, "k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never listed the call")
		}
		time.Sleep(time.Millisecond)
	}

	// A second waiter joins, then cancels its own context mid-wait.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan out, 1)
	go func() {
		ans, _, _, err := c.do(ctx, "default", "k", fn)
		waiterDone <- out{ans, err}
	}()
	for waitersOf(c, "k") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second waiter never joined")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	w := <-waiterDone
	if w.err != context.Canceled {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", w.err)
	}

	// The run proceeds on the detached context and the leader is served.
	close(release)
	l := <-leaderDone
	if l.err != nil {
		t.Fatalf("leader failed: %v", l.err)
	}
	if l.ans != want {
		t.Fatalf("leader got %+v, want the shared instance", l.ans)
	}
	if runCanceled.Load() {
		t.Fatal("waiter cancellation propagated into the shared run")
	}
}

// TestCoalesceCompletedRunNotReused: a request arriving after the run
// finished starts a fresh one.
func TestCoalesceCompletedRunNotReused(t *testing.T) {
	c := newCoalescer(context.Background(), nil)
	var runs atomic.Int64
	fn := func(ctx context.Context) (*selectAnswer, error) {
		n := runs.Add(1)
		return &selectAnswer{id: fmt.Sprintf("run-%d", n)}, nil
	}
	a1, _, _, err := c.do(context.Background(), "default", "k", fn)
	if err != nil {
		t.Fatal(err)
	}
	a2, joined, _, err := c.do(context.Background(), "default", "k", fn)
	if err != nil {
		t.Fatal(err)
	}
	if joined {
		t.Error("sequential request reported joined")
	}
	if runs.Load() != 2 || a1.id == a2.id {
		t.Errorf("sequential requests shared a run: %d runs, ids %q/%q", runs.Load(), a1.id, a2.id)
	}
}

// TestCoalesceKeyTiers: identical requests admitted at different tiers
// must not share a run (a degraded waiter must never receive — or
// relabel — a full-tier answer).
func TestCoalesceKeyTiers(t *testing.T) {
	full := coalesceKey("t", "q", 3, "absolute", 0.9, -1, TierFull)
	rd := coalesceKey("t", "q", 3, "absolute", 0.9, -1, TierRDOnly)
	if full == rd {
		t.Fatal("full and rd_only requests share a coalesce key")
	}
	if coalesceKey("a", "q", 3, "absolute", 0.9, -1, TierFull) ==
		coalesceKey("b", "q", 3, "absolute", 0.9, -1, TierFull) {
		t.Fatal("different tenants share a coalesce key")
	}
}

// inflight reports listed calls (test helper).
func (c *coalescer) inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}

// waitersOf reports the waiter count of a listed call, 0 if unlisted.
func waitersOf(c *coalescer, key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl, ok := c.calls[key]; ok {
		return int(cl.waiters)
	}
	return 0
}
