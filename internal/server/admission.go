package server

import (
	"sync"
	"sync/atomic"
	"time"

	"metaprobe/internal/obs"
)

// Tier is the service level a request is answered at. Under pressure
// the daemon never errors a well-formed request; it degrades the
// answer instead and labels the response honestly.
type Tier int

const (
	// TierFull runs the paper's full adaptive-probing selection
	// (RD-based set search plus live probes to the certainty target).
	TierFull Tier = iota
	// TierRDOnly skips live probing: the RD-based set with the highest
	// expected correctness is returned as-is, with its (possibly below-
	// threshold) certainty. Zero backend traffic, full model quality.
	TierRDOnly
	// TierRhatOnly ranks by the raw summary estimate r̂ alone — the
	// pre-paper baseline. Cheapest possible answer: no probes, no RD
	// convolution, no certainty claim.
	TierRhatOnly
)

// String returns the wire form reported in the response "tier" field
// and used as the mp_shed_total / mp_server_requests_total label.
func (t Tier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierRDOnly:
		return "rd_only"
	case TierRhatOnly:
		return "rhat_only"
	}
	return "unknown"
}

// Shed reasons (the reason label on mp_shed_total).
const (
	// shedOverload: the global inflight gauge crossed a soft or hard
	// limit — the process is protecting its own latency.
	shedOverload = "overload"
	// shedTenantRate: the tenant exhausted its token bucket — one noisy
	// tenant is being degraded so the others keep full service.
	shedTenantRate = "tenant_rate"
)

// tokenBucket is a concurrency-safe token bucket: capacity burst,
// refilled at rate tokens/second. rate <= 0 means unlimited (allow
// always succeeds). now is injectable for tests.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket returns a full bucket. burst <= 0 defaults to 1.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if b <= 0 {
		b = 1
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, now: time.Now}
}

// allow consumes one token, reporting false when the bucket is empty.
func (b *tokenBucket) allow() bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// admission is the daemon's load-shedding state machine. Every request
// takes a ticket (acquire) before running and returns it (release)
// after; the ticket's tier is decided from the global inflight count
// and the requesting tenant's token bucket:
//
//	inflight > hard          → rhat_only   (overload)
//	inflight > soft          → rd_only     (overload)
//	tenant bucket empty      → rd_only     (tenant_rate)
//	otherwise                → full
//
// The limits bound concurrent *admitted requests*, which is the demand
// signal — the batch coalescer downstream may satisfy many tickets
// with one probe trajectory, so actual probe work is at most, and
// usually far below, the admitted count.
type admission struct {
	soft, hard int64
	inflight   atomic.Int64
	// peak tracks the high-water mark of inflight since start (for the
	// drain log line and tests).
	peak atomic.Int64

	reg *obs.Registry
}

// newAdmission builds the controller. soft <= 0 disables the rd_only
// overload threshold; hard <= 0 disables the rhat_only one. When both
// are set, hard below soft is lifted to soft (a hard limit tighter
// than the soft one would skip the intermediate tier entirely).
func newAdmission(soft, hard int64, reg *obs.Registry) *admission {
	if hard > 0 && soft > 0 && hard < soft {
		hard = soft
	}
	a := &admission{soft: soft, hard: hard, reg: reg}
	if reg != nil {
		reg.Help("mp_server_inflight", "Admitted selection requests currently in flight.")
		reg.GaugeFunc("mp_server_inflight", nil, func() float64 { return float64(a.inflight.Load()) })
		reg.Help("mp_shed_total", "Requests degraded below full service, by served tier and shed reason.")
		// Pre-create the shed series so /metrics shows zeros at idle —
		// the CI smoke job asserts exactly that.
		for _, tier := range []Tier{TierRDOnly, TierRhatOnly} {
			reg.Counter("mp_shed_total", obs.Labels{"tier": tier.String(), "reason": shedOverload})
		}
		reg.Counter("mp_shed_total", obs.Labels{"tier": TierRDOnly.String(), "reason": shedTenantRate})
	}
	return a
}

// acquire admits one request, returning the tier it should be served
// at and, when degraded, the shed reason. Callers must release() when
// the request finishes, whatever the outcome.
func (a *admission) acquire(bucket *tokenBucket) (Tier, string) {
	n := a.inflight.Add(1)
	for {
		p := a.peak.Load()
		if n <= p || a.peak.CompareAndSwap(p, n) {
			break
		}
	}
	tier, reason := TierFull, ""
	switch {
	case a.hard > 0 && n > a.hard:
		tier, reason = TierRhatOnly, shedOverload
	case a.soft > 0 && n > a.soft:
		tier, reason = TierRDOnly, shedOverload
	case !bucket.allow():
		tier, reason = TierRDOnly, shedTenantRate
	}
	if reason != "" && a.reg != nil {
		a.reg.Counter("mp_shed_total", obs.Labels{"tier": tier.String(), "reason": reason}).Inc()
	}
	return tier, reason
}

// release returns one admission ticket.
func (a *admission) release() { a.inflight.Add(-1) }

// Inflight reports the currently admitted requests.
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// Peak reports the inflight high-water mark.
func (a *admission) Peak() int64 { return a.peak.Load() }
