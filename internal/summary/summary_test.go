package summary

import (
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"metaprobe/internal/corpus"
	"metaprobe/internal/hidden"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

func buildLocal(t *testing.T, name string, n int) *hidden.Local {
	t.Helper()
	w := corpus.HealthWorld()
	spec := corpus.DatabaseSpec{
		Name: name, NumDocs: n, MeanDocLen: 20,
		TopicWeights:    map[string]float64{"oncology": 3, "cardiology": 1},
		ConceptAffinity: 0.5,
	}
	docs, err := w.Generate(spec, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	return hidden.BuildLocal(name, docs)
}

func TestFromLocalExact(t *testing.T) {
	db := buildLocal(t, "onco", 400)
	s := FromLocal(db)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size != 400 || s.DocCount != 400 || s.Sampled {
		t.Errorf("summary header wrong: %+v", s)
	}
	// The summary df must equal the index df for every term.
	res, _ := db.Search("cancer", 0)
	tok := textindex.DefaultTokenizer()
	if got := s.Frequency("cancer", tok); got < res.MatchCount {
		t.Errorf("df(cancer) = %d, < match count %d", got, res.MatchCount)
	}
	if got := s.Frequency("zzzz", tok); got != 0 {
		t.Errorf("df(zzzz) = %d, want 0", got)
	}
	if got := s.Frequency("", tok); got != 0 {
		t.Errorf("df(empty) = %d, want 0", got)
	}
}

func TestFractionAndTopTerms(t *testing.T) {
	s := &Summary{Database: "d", Size: 10, DocCount: 10, DF: map[string]int{"aa": 5, "bb": 2, "cc": 5}}
	if got := s.Fraction("aa"); got != 0.5 {
		t.Errorf("Fraction(aa) = %v, want 0.5", got)
	}
	if got := s.Fraction("zz"); got != 0 {
		t.Errorf("Fraction(zz) = %v, want 0", got)
	}
	top := s.TopTerms(2)
	if len(top) != 2 || top[0] != "aa" || top[1] != "cc" {
		t.Errorf("TopTerms = %v, want [aa cc] (df desc, lexicographic ties)", top)
	}
	if got := s.TopTerms(10); len(got) != 3 {
		t.Errorf("TopTerms(10) returned %d terms, want 3", len(got))
	}
	empty := &Summary{Database: "e"}
	if got := empty.Fraction("aa"); got != 0 {
		t.Errorf("empty Fraction = %v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Summary{
		{},
		{Database: "d", Size: -1},
		{Database: "d", Size: 1, DocCount: 1, DF: map[string]int{"a": 2}},
		{Database: "d", Size: 1, DocCount: 1, DF: map[string]int{"a": -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSampleSummaryApproximatesExact(t *testing.T) {
	db := buildLocal(t, "onco", 1500)
	exact := FromLocal(db)
	counting := hidden.NewCounting(db)
	sampled, err := Sample(counting, SampleConfig{
		SeedTerms:    []string{"cancer", "health", "treatment"},
		NumQueries:   150,
		DocsPerQuery: 5,
	}, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := sampled.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sampled.Sampled {
		t.Error("sampled summary not flagged")
	}
	if sampled.Size != 1500 {
		t.Errorf("estimated size %d, want exported 1500", sampled.Size)
	}
	if sampled.DocCount < 100 {
		t.Fatalf("sampled only %d docs; sampling loop too weak", sampled.DocCount)
	}
	// Fractions of common terms should be in the same ballpark as the
	// exact ones (query-based sampling is biased toward matching docs,
	// so require agreement only within a loose factor).
	tok := textindex.DefaultTokenizer()
	for _, term := range []string{"cancer", "tumor", "heart"} {
		norm := tok.Tokenize(term)[0]
		e := exact.Fraction(norm)
		g := sampled.Fraction(norm)
		if e == 0 {
			continue
		}
		if g == 0 || g/e > 4 || e/g > 4 {
			t.Errorf("term %q: sampled fraction %v vs exact %v (off by >4x)", term, g, e)
		}
	}
	if counting.Searches() == 0 {
		t.Error("sampling issued no searches")
	}
}

func TestSampleErrors(t *testing.T) {
	db := buildLocal(t, "onco", 100)
	rng := stats.NewRNG(1)
	if _, err := Sample(db, SampleConfig{}, rng); err == nil {
		t.Error("no seed terms should fail")
	}
	// A database without Fetcher support.
	table := hidden.NewTable("t", map[string]int{"x": 1})
	if _, err := Sample(table, SampleConfig{SeedTerms: []string{"x"}}, rng); err == nil {
		t.Error("non-fetcher database should fail")
	}
	// Seeds that match nothing.
	if _, err := Sample(db, SampleConfig{SeedTerms: []string{"qqqqqq"}, NumQueries: 5}, rng); err == nil {
		t.Error("unmatchable seeds should fail")
	}
}

func TestSampleOverHTTP(t *testing.T) {
	db := buildLocal(t, "onco", 500)
	srv := httptest.NewServer(hidden.NewServer(db))
	defer srv.Close()
	client := hidden.NewClient("onco-remote", srv.URL)
	sampled, err := Sample(client, SampleConfig{
		SeedTerms:      []string{"cancer", "health"},
		NumQueries:     30,
		DocsPerQuery:   3,
		SizeProbeTerms: []string{"health", "cancer", "medical"},
	}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if sampled.DocCount == 0 || len(sampled.DF) == 0 {
		t.Errorf("remote sampling produced empty summary: %+v", sampled)
	}
	// Client has no Sizer, so size comes from probe terms: the largest
	// single-term match count, a lower bound on the true size.
	if sampled.Size <= 0 || sampled.Size > 500 {
		t.Errorf("estimated size %d outside (0, 500]", sampled.Size)
	}
}

func TestBuildExactAndSetRoundTrip(t *testing.T) {
	w := corpus.HealthWorld()
	tb, err := hidden.BuildTestbed(w, corpus.HealthTestbed(0.002)[:3], 9)
	if err != nil {
		t.Fatal(err)
	}
	set, err := BuildExact(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Summaries) != 3 {
		t.Fatalf("got %d summaries", len(set.Summaries))
	}
	if set.ByName(tb.DB(1).Name()) == nil || set.ByName("zzz") != nil {
		t.Error("ByName lookup broken")
	}

	path := filepath.Join(t.TempDir(), "summaries.json")
	if err := set.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set.Summaries {
		a, b := set.Summaries[i], loaded.Summaries[i]
		if a.Database != b.Database || a.Size != b.Size || len(a.DF) != len(b.DF) {
			t.Errorf("summary %d did not round-trip", i)
		}
		for term, df := range a.DF {
			if b.DF[term] != df {
				t.Errorf("summary %d term %q: %d vs %d", i, term, df, b.DF[term])
			}
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestBuildExactRejectsNonLocal(t *testing.T) {
	table := hidden.NewTable("t", nil)
	tb, err := hidden.NewTestbed([]hidden.Database{table})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildExact(tb); err == nil {
		t.Error("non-local database should fail BuildExact")
	}
}

// TestSummaryFractionsMatchIndependenceOnUncorrelatedDB sanity-checks
// the whole pipeline: on a zero-affinity database, df fractions
// multiplied together should approximate the 2-term AND match fraction.
func TestSummaryFractionsMatchIndependenceOnUncorrelatedDB(t *testing.T) {
	w := corpus.HealthWorld()
	spec := corpus.DatabaseSpec{
		Name: "indep", NumDocs: 3000, MeanDocLen: 20,
		TopicWeights:    map[string]float64{"oncology": 1},
		ConceptAffinity: 0, // independent terms
	}
	docs, err := w.Generate(spec, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	db := hidden.BuildLocal("indep", docs)
	s := FromLocal(db)
	tok := textindex.DefaultTokenizer()

	for _, q := range [][2]string{{"tumor", "radiation"}, {"biopsy", "screening"}} {
		nt1, nt2 := tok.Tokenize(q[0])[0], tok.Tokenize(q[1])[0]
		pred := s.Fraction(nt1) * s.Fraction(nt2) * float64(s.Size)
		res, _ := db.Search(fmt.Sprintf("%s %s", q[0], q[1]), 0)
		actual := float64(res.MatchCount)
		if pred < 3 {
			continue // too rare for a stable ratio
		}
		ratio := actual / pred
		if math.Abs(math.Log(ratio)) > math.Log(2.0) {
			t.Errorf("query %v: independence estimate %0.1f vs actual %0.0f (ratio %0.2f)", q, pred, actual, ratio)
		}
	}
}

func TestPrune(t *testing.T) {
	s := &Summary{
		Database: "d", Size: 100, DocCount: 100, TermCount: 1000,
		DF: map[string]int{"aa": 50, "bb": 40, "cc": 30, "dd": 20, "ee": 10},
	}
	p := s.Prune(3)
	if len(p.DF) != 3 {
		t.Fatalf("pruned to %d terms, want 3", len(p.DF))
	}
	for _, term := range []string{"aa", "bb", "cc"} {
		if p.DF[term] != s.DF[term] {
			t.Errorf("term %q lost or changed: %d", term, p.DF[term])
		}
	}
	if _, kept := p.DF["ee"]; kept {
		t.Error("rare term survived pruning")
	}
	if p.Size != 100 || p.DocCount != 100 || p.TermCount != 1000 {
		t.Error("header fields not copied")
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	// Non-positive or oversized budgets return a full, independent copy.
	full := s.Prune(0)
	if len(full.DF) != 5 {
		t.Errorf("full copy has %d terms", len(full.DF))
	}
	full.DF["aa"] = 1
	if s.DF["aa"] != 50 {
		t.Error("Prune shares the DF map")
	}
	if got := s.Prune(99); len(got.DF) != 5 {
		t.Errorf("oversized budget: %d terms", len(got.DF))
	}
}
