// Package summary builds and stores the statistical summaries the
// metasearcher keeps for each database: (term, document-frequency)
// tables plus the collection size — the input to relevancy estimation
// (Figure 2 of the paper).
//
// Two construction paths are provided, matching the two ways summaries
// are obtained in practice:
//
//   - Exact: read the collection's own index (feasible when databases
//     export statistics, or in experiments where we own the testbed);
//   - Sampled: query-based sampling through the public search
//     interface only (Callan-style, the approach of the paper's
//     reference [8] for non-cooperative Hidden-Web sources): issue
//     keyword probes, download top documents, and accumulate term
//     statistics from the sample.
package summary

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"metaprobe/internal/hidden"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

// Summary is the metasearcher's local statistics for one database. All
// terms are stored normalized (lowercased, stemmed) in the same term
// space the databases index, so lookups must go through Frequency.
type Summary struct {
	// Database is the database's name.
	Database string `json:"database"`
	// Size is |db|: the (possibly estimated) collection size used as
	// the multiplier in Eq. 1.
	Size int `json:"size"`
	// DocCount is the denominator for document-frequency fractions:
	// the collection size for exact summaries, or the number of
	// distinct sampled documents for sampled summaries.
	DocCount int `json:"docCount"`
	// DF maps normalized term → number of documents (out of DocCount)
	// containing it.
	DF map[string]int `json:"df"`
	// TermCount is the total number of term occurrences in the
	// collection (scaled from the sample for sampled summaries); the
	// collection word count cw used by CORI-style selection. Zero when
	// unknown.
	TermCount int `json:"termCount,omitempty"`
	// Sampled records whether the summary came from query-based
	// sampling.
	Sampled bool `json:"sampled"`
}

// Frequency returns the document frequency of a raw query word,
// normalizing it first.
func (s *Summary) Frequency(word string, tok *textindex.Tokenizer) int {
	if tok == nil {
		tok = textindex.DefaultTokenizer()
	}
	terms := tok.Tokenize(word)
	if len(terms) == 0 {
		return 0
	}
	return s.DF[terms[0]]
}

// Fraction returns df/DocCount for a normalized term (already in index
// term space); 0 when the summary is empty.
func (s *Summary) Fraction(normTerm string) float64 {
	if s.DocCount == 0 {
		return 0
	}
	return float64(s.DF[normTerm]) / float64(s.DocCount)
}

// Validate checks internal consistency.
func (s *Summary) Validate() error {
	if s.Database == "" {
		return fmt.Errorf("summary: missing database name")
	}
	if s.Size < 0 || s.DocCount < 0 {
		return fmt.Errorf("summary %s: negative size (%d) or doc count (%d)", s.Database, s.Size, s.DocCount)
	}
	for term, df := range s.DF {
		if df < 0 || df > s.DocCount {
			return fmt.Errorf("summary %s: term %q has df %d outside [0, %d]", s.Database, term, df, s.DocCount)
		}
	}
	return nil
}

// FromIndex builds an exact summary from a database's own index.
func FromIndex(name string, ix *textindex.Index) *Summary {
	return &Summary{
		Database:  name,
		Size:      ix.Size(),
		DocCount:  ix.Size(),
		DF:        ix.VocabularyFrequencies(),
		TermCount: ix.TotalTerms(),
	}
}

// FromLocal builds an exact summary from a Local database.
func FromLocal(db *hidden.Local) *Summary {
	return FromIndex(db.Name(), db.Index())
}

// SampleConfig tunes query-based sampling.
type SampleConfig struct {
	// SeedTerms start the sampling (e.g. a handful of domain words).
	SeedTerms []string
	// NumQueries is how many probe queries to issue (default 80).
	NumQueries int
	// DocsPerQuery is how many top documents to fetch per probe
	// (default 4).
	DocsPerQuery int
	// SizeProbeTerms estimate |db| via hidden.EstimateSize when the
	// database does not export its size; defaults to SeedTerms.
	SizeProbeTerms []string
}

// Sample builds a summary through the database's public interface
// only: issue a probe query, fetch a few top documents, accumulate
// their vocabulary, and draw the next probe term from the vocabulary
// seen so far (query-based sampling). The database must implement
// hidden.Fetcher.
func Sample(db hidden.Database, cfg SampleConfig, rng *stats.RNG) (*Summary, error) {
	fetcher, ok := db.(hidden.Fetcher)
	if !ok {
		return nil, fmt.Errorf("summary: database %s does not support document fetching", db.Name())
	}
	if len(cfg.SeedTerms) == 0 {
		return nil, fmt.Errorf("summary: sampling %s needs seed terms", db.Name())
	}
	if cfg.NumQueries == 0 {
		cfg.NumQueries = 80
	}
	if cfg.DocsPerQuery == 0 {
		cfg.DocsPerQuery = 4
	}
	if len(cfg.SizeProbeTerms) == 0 {
		cfg.SizeProbeTerms = cfg.SeedTerms
	}

	tok := textindex.DefaultTokenizer()
	df := make(map[string]int)
	seenDocs := make(map[string]struct{})
	sampledTokens := 0
	var vocabulary []string // term pool to draw probe words from
	inVocab := make(map[string]struct{})

	addDoc := func(id, text string) {
		if _, dup := seenDocs[id]; dup {
			return
		}
		seenDocs[id] = struct{}{}
		inDoc := make(map[string]struct{})
		tok.TokenizeTo(text, func(term string) {
			sampledTokens++
			if _, dup := inDoc[term]; dup {
				return
			}
			inDoc[term] = struct{}{}
			df[term]++
			if _, known := inVocab[term]; !known {
				inVocab[term] = struct{}{}
				vocabulary = append(vocabulary, term)
			}
		})
	}

	probes := 0
	failures := 0
	for probes < cfg.NumQueries {
		var word string
		if probes < len(cfg.SeedTerms) {
			word = cfg.SeedTerms[probes]
		} else if len(vocabulary) > 0 {
			word = vocabulary[rng.Intn(len(vocabulary))]
		} else {
			word = cfg.SeedTerms[rng.Intn(len(cfg.SeedTerms))]
		}
		probes++
		res, err := db.Search(word, cfg.DocsPerQuery)
		if err != nil {
			failures++
			if failures > cfg.NumQueries {
				return nil, fmt.Errorf("summary: sampling %s: too many failures: %w", db.Name(), err)
			}
			continue
		}
		for _, d := range res.Docs {
			text, err := fetcher.Fetch(d.ID)
			if err != nil {
				continue
			}
			addDoc(d.ID, text)
		}
	}
	if len(seenDocs) == 0 {
		return nil, fmt.Errorf("summary: sampling %s retrieved no documents; seed terms may not match", db.Name())
	}
	size, err := hidden.EstimateSize(db, cfg.SizeProbeTerms)
	if err != nil {
		return nil, fmt.Errorf("summary: sampling %s: %w", db.Name(), err)
	}
	return &Summary{
		Database: db.Name(),
		Size:     size,
		DocCount: len(seenDocs),
		DF:       df,
		// Extrapolate the collection word count from the sample.
		TermCount: sampledTokens * size / len(seenDocs),
		Sampled:   true,
	}, nil
}

// Set is a collection of summaries, one per mediated database, in
// testbed order.
type Set struct {
	// Summaries are ordered like the testbed's databases.
	Summaries []*Summary `json:"summaries"`
}

// BuildExact builds exact summaries for every Local database of a
// testbed; it fails on non-local databases (use Sample for those).
func BuildExact(tb *hidden.Testbed) (*Set, error) {
	set := &Set{Summaries: make([]*Summary, tb.Len())}
	for i, db := range tb.Databases() {
		local, ok := db.(*hidden.Local)
		if !ok {
			return nil, fmt.Errorf("summary: database %s is not local; sample it instead", db.Name())
		}
		set.Summaries[i] = FromLocal(local)
	}
	return set, nil
}

// ByName returns the summary for the named database, or nil.
func (s *Set) ByName(name string) *Summary {
	for _, sum := range s.Summaries {
		if sum.Database == name {
			return sum
		}
	}
	return nil
}

// Save writes the set as JSON to path.
func (s *Set) Save(path string) error {
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return fmt.Errorf("summary: encoding: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("summary: writing %s: %w", path, err)
	}
	return nil
}

// Load reads a set saved by Save and validates it.
func Load(path string) (*Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("summary: reading %s: %w", path, err)
	}
	var s Set
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("summary: decoding %s: %w", path, err)
	}
	for _, sum := range s.Summaries {
		if err := sum.Validate(); err != nil {
			return nil, err
		}
	}
	return &s, nil
}

// Prune returns a copy of the summary keeping only the maxTerms most
// frequent terms (ties broken lexicographically). Real metasearchers
// cap summary size — a full vocabulary per mediated database does not
// scale to hundreds of thousands of sources — and pruning trades
// estimation coverage for storage (experiment E-PRUNE measures the
// selection-quality cost). maxTerms ≤ 0 or ≥ len(DF) returns a full
// copy.
func (s *Summary) Prune(maxTerms int) *Summary {
	out := &Summary{
		Database:  s.Database,
		Size:      s.Size,
		DocCount:  s.DocCount,
		TermCount: s.TermCount,
		Sampled:   s.Sampled,
	}
	if maxTerms <= 0 || maxTerms >= len(s.DF) {
		out.DF = make(map[string]int, len(s.DF))
		for t, df := range s.DF {
			out.DF[t] = df
		}
		return out
	}
	keep := s.TopTerms(maxTerms)
	out.DF = make(map[string]int, len(keep))
	for _, t := range keep {
		out.DF[t] = s.DF[t]
	}
	return out
}

// TopTerms returns the n most frequent terms of a summary (for
// diagnostics and seed-term selection), ties broken lexicographically.
func (s *Summary) TopTerms(n int) []string {
	type tf struct {
		term string
		df   int
	}
	all := make([]tf, 0, len(s.DF))
	for t, d := range s.DF {
		all = append(all, tf{t, d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].term < all[j].term
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].term
	}
	return out
}
