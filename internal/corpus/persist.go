package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Corpus persistence: generated collections are written as JSON Lines
// (one document per line), the usual interchange format for document
// collections. Generating a testbed is cheap but not free; cmd tools
// generate once and reload.

// WriteJSONL streams documents to w, one JSON object per line.
func WriteJSONL(w io.Writer, docs []Document) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		if err := enc.Encode(&docs[i]); err != nil {
			return fmt.Errorf("corpus: encoding document %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads documents written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Document, error) {
	var docs []Document
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var d Document
		if err := dec.Decode(&d); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("corpus: decoding document %d: %w", len(docs), err)
		}
		if d.ID == "" {
			return nil, fmt.Errorf("corpus: document %d has no ID", len(docs))
		}
		docs = append(docs, d)
	}
	return docs, nil
}

// SaveFile writes a database's documents to path as JSONL.
func SaveFile(path string, docs []Document) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	if err := WriteJSONL(f, docs); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a database's documents from a JSONL file.
func LoadFile(path string) ([]Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
