package corpus

import (
	"path/filepath"
	"strings"
	"testing"

	"metaprobe/internal/stats"
)

func TestJSONLRoundTrip(t *testing.T) {
	w := HealthWorld()
	spec := DatabaseSpec{
		Name: "rt", NumDocs: 120, MeanDocLen: 15,
		TopicWeights:    map[string]float64{"oncology": 1},
		ConceptAffinity: 0.3,
	}
	docs, err := w.Generate(spec, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "docs.jsonl")
	if err := SaveFile(path, docs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(docs) {
		t.Fatalf("loaded %d of %d documents", len(loaded), len(docs))
	}
	for i := range docs {
		if docs[i].ID != loaded[i].ID || docs[i].Text() != loaded[i].Text() {
			t.Fatalf("document %d did not round-trip", i)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSONL must fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"Terms":["a"]}` + "\n")); err == nil {
		t.Error("document without ID must fail")
	}
	docs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(docs) != 0 {
		t.Errorf("empty input: %v, %v", docs, err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file must fail")
	}
}
