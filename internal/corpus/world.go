// Package corpus generates the synthetic document collections that
// stand in for the paper's testbed (20 health-related Hidden-Web
// databases, Figure 14, and 20 newsgroup collections, Section 4.2).
//
// The generator is a topic model with *controlled term correlation*:
//
//   - a World defines topics, each with a Zipfian vocabulary and a set
//     of concepts — small groups of terms (e.g. "breast cancer") that
//     are emitted together;
//   - a DatabaseSpec gives each database its own topic mixture, size,
//     and concept affinity (how strongly that database's documents glue
//     concept terms together).
//
// The term-independence estimator (Eq. 1 of the paper) is exact when
// query terms occur independently within a database and wrong in
// proportion to their correlation. Because concept affinity and topic
// coverage differ per database, the estimator's error here is
// *non-uniform across databases* but *stable across queries of the same
// type* — exactly the structure the paper observed on real Hidden-Web
// databases and the property its error-distribution learning relies on.
package corpus

import (
	"fmt"

	"metaprobe/internal/stats"
)

// Topic is one subject area of the synthetic world.
type Topic struct {
	// Name identifies the topic (e.g. "oncology").
	Name string
	// Terms is the topical vocabulary, most popular first (term
	// popularity within the topic is Zipfian over this order).
	Terms []string
	// Concepts are groups of 2-3 terms that tend to occur together in
	// documents about this topic. Concept terms may also appear in
	// Terms; emission through a concept is what creates correlation.
	Concepts [][]string
}

// World is a shared vocabulary universe that all databases of a testbed
// draw from.
type World struct {
	// Topics are the subject areas.
	Topics []Topic
	// Background is the domain-independent vocabulary (Zipfian).
	Background []string

	topicSamplers   []*stats.WeightedSampler
	conceptSamplers []*stats.WeightedSampler
	backgroundSamp  *stats.WeightedSampler
}

// NewWorld validates a topic set and precomputes the samplers.
func NewWorld(topics []Topic, background []string) (*World, error) {
	if len(topics) == 0 {
		return nil, fmt.Errorf("corpus: world needs at least one topic")
	}
	if len(background) == 0 {
		return nil, fmt.Errorf("corpus: world needs background vocabulary")
	}
	w := &World{Topics: topics, Background: background}
	w.topicSamplers = make([]*stats.WeightedSampler, len(topics))
	w.conceptSamplers = make([]*stats.WeightedSampler, len(topics))
	for i, t := range topics {
		if len(t.Terms) == 0 {
			return nil, fmt.Errorf("corpus: topic %q has no terms", t.Name)
		}
		var err error
		// Exponent 0.85 keeps even head terms below full document
		// saturation, so AND-match counts stay informative. Terms that
		// belong to a concept are strongly down-weighted in the base
		// sampler: their occurrences should be dominated by concept
		// emission (in real text, "breast" mostly appears inside
		// "breast cancer"), which is what makes the pair correlated.
		inConcept := make(map[string]bool)
		for _, c := range t.Concepts {
			for _, term := range c {
				inConcept[term] = true
			}
		}
		weights := stats.ZipfWeights(len(t.Terms), 0.85)
		for j, term := range t.Terms {
			if inConcept[term] {
				weights[j] *= 0.2
			}
		}
		w.topicSamplers[i], err = stats.NewWeightedSampler(weights)
		if err != nil {
			return nil, fmt.Errorf("corpus: topic %q: %w", t.Name, err)
		}
		if len(t.Concepts) > 0 {
			for ci, c := range t.Concepts {
				if len(c) < 2 {
					return nil, fmt.Errorf("corpus: topic %q concept %d has fewer than 2 terms", t.Name, ci)
				}
			}
			w.conceptSamplers[i], err = stats.NewWeightedSampler(stats.ZipfWeights(len(t.Concepts), 0.8))
			if err != nil {
				return nil, fmt.Errorf("corpus: topic %q concepts: %w", t.Name, err)
			}
		}
	}
	var err error
	w.backgroundSamp, err = stats.NewWeightedSampler(stats.ZipfWeights(len(background), 1.1))
	if err != nil {
		return nil, fmt.Errorf("corpus: background: %w", err)
	}
	return w, nil
}

// MustWorld is NewWorld that panics on error (for preset construction).
func MustWorld(topics []Topic, background []string) *World {
	w, err := NewWorld(topics, background)
	if err != nil {
		panic(err)
	}
	return w
}

// TopicIndex returns the index of the named topic, or -1.
func (w *World) TopicIndex(name string) int {
	for i, t := range w.Topics {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// DatabaseSpec describes one synthetic database to generate.
type DatabaseSpec struct {
	// Name identifies the database (shows up in Figure 14's table).
	Name string
	// Category is a free-form label ("health", "science", "news").
	Category string
	// NumDocs is the collection size.
	NumDocs int
	// MeanDocLen is the Poisson mean of document term counts.
	MeanDocLen float64
	// TopicWeights gives the database's topic mixture by topic name;
	// missing topics have weight zero. At least one weight must be
	// positive.
	TopicWeights map[string]float64
	// ConceptAffinity scales how often topical slots emit whole
	// concepts instead of single terms, in [0, 1]. High affinity makes
	// concept terms strongly correlated (the independence estimator
	// underestimates); zero affinity makes terms nearly independent.
	ConceptAffinity float64
	// BackgroundFraction is the probability that a slot emits a
	// background term (default 0.35 when zero).
	BackgroundFraction float64
}

// Document is one generated document.
type Document struct {
	// ID is unique within the database.
	ID string
	// Terms are the document's words in generation order.
	Terms []string
}

// Text renders the document as a whitespace-joined string (for code
// paths that exercise the tokenizer).
func (d Document) Text() string {
	n := 0
	for _, t := range d.Terms {
		n += len(t) + 1
	}
	buf := make([]byte, 0, n)
	for i, t := range d.Terms {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, t...)
	}
	return string(buf)
}

// Generate produces the documents of one database. Generation is
// deterministic given the RNG state.
func (w *World) Generate(spec DatabaseSpec, rng *stats.RNG) ([]Document, error) {
	if spec.NumDocs <= 0 {
		return nil, fmt.Errorf("corpus: database %q has NumDocs %d", spec.Name, spec.NumDocs)
	}
	if spec.MeanDocLen <= 0 {
		return nil, fmt.Errorf("corpus: database %q has MeanDocLen %v", spec.Name, spec.MeanDocLen)
	}
	if spec.ConceptAffinity < 0 || spec.ConceptAffinity > 1 {
		return nil, fmt.Errorf("corpus: database %q has ConceptAffinity %v outside [0,1]", spec.Name, spec.ConceptAffinity)
	}
	weights := make([]float64, len(w.Topics))
	positive := false
	for name, wt := range spec.TopicWeights {
		i := w.TopicIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("corpus: database %q references unknown topic %q", spec.Name, name)
		}
		if wt < 0 {
			return nil, fmt.Errorf("corpus: database %q topic %q has negative weight", spec.Name, name)
		}
		weights[i] = wt
		if wt > 0 {
			positive = true
		}
	}
	if !positive {
		return nil, fmt.Errorf("corpus: database %q has no positive topic weight", spec.Name)
	}
	mix, err := stats.NewWeightedSampler(weights)
	if err != nil {
		return nil, fmt.Errorf("corpus: database %q: %w", spec.Name, err)
	}
	bg := spec.BackgroundFraction
	if bg == 0 {
		bg = 0.35
	}

	docs := make([]Document, spec.NumDocs)
	for d := range docs {
		topic := mix.Sample(rng)
		length := rng.Poisson(spec.MeanDocLen)
		if length < 3 {
			length = 3
		}
		terms := make([]string, 0, length+2)
		for len(terms) < length {
			if rng.Float64() < bg {
				terms = append(terms, w.Background[w.backgroundSamp.Sample(rng)])
				continue
			}
			t := &w.Topics[topic]
			// Concept emission is damped so concept terms stay
			// mid-frequency even at affinity 1; what matters is the
			// *relative* strength across databases.
			if w.conceptSamplers[topic] != nil && rng.Float64() < spec.ConceptAffinity*0.15 {
				// Emit a whole concept: this is the correlation knob.
				c := t.Concepts[w.conceptSamplers[topic].Sample(rng)]
				terms = append(terms, c...)
				continue
			}
			terms = append(terms, t.Terms[w.topicSamplers[topic].Sample(rng)])
		}
		docs[d] = Document{
			ID:    fmt.Sprintf("%s-%06d", spec.Name, d),
			Terms: terms,
		}
	}
	return docs, nil
}
