package corpus

import (
	"strings"
	"testing"

	"metaprobe/internal/stats"
)

func TestNewWorldValidation(t *testing.T) {
	good := []Topic{{Name: "a", Terms: []string{"x", "y"}}}
	bg := []string{"bg"}
	if _, err := NewWorld(nil, bg); err == nil {
		t.Error("no topics should fail")
	}
	if _, err := NewWorld(good, nil); err == nil {
		t.Error("no background should fail")
	}
	if _, err := NewWorld([]Topic{{Name: "a"}}, bg); err == nil {
		t.Error("topic without terms should fail")
	}
	if _, err := NewWorld([]Topic{{Name: "a", Terms: []string{"x"}, Concepts: [][]string{{"solo"}}}}, bg); err == nil {
		t.Error("1-term concept should fail")
	}
	if _, err := NewWorld(good, bg); err != nil {
		t.Errorf("valid world failed: %v", err)
	}
}

func TestGenerateValidation(t *testing.T) {
	w := MustWorld([]Topic{{Name: "a", Terms: []string{"x", "y"}}}, []string{"bg"})
	rng := stats.NewRNG(1)
	cases := []DatabaseSpec{
		{Name: "bad", NumDocs: 0, MeanDocLen: 10, TopicWeights: map[string]float64{"a": 1}},
		{Name: "bad", NumDocs: 5, MeanDocLen: 0, TopicWeights: map[string]float64{"a": 1}},
		{Name: "bad", NumDocs: 5, MeanDocLen: 10, TopicWeights: map[string]float64{"zzz": 1}},
		{Name: "bad", NumDocs: 5, MeanDocLen: 10, TopicWeights: map[string]float64{"a": -1}},
		{Name: "bad", NumDocs: 5, MeanDocLen: 10, TopicWeights: map[string]float64{"a": 0}},
		{Name: "bad", NumDocs: 5, MeanDocLen: 10, TopicWeights: map[string]float64{"a": 1}, ConceptAffinity: 1.5},
	}
	for i, spec := range cases {
		if _, err := w.Generate(spec, rng); err == nil {
			t.Errorf("case %d: want error for %+v", i, spec)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	w := HealthWorld()
	rng := stats.NewRNG(7)
	spec := DatabaseSpec{
		Name:            "test",
		NumDocs:         200,
		MeanDocLen:      40,
		TopicWeights:    map[string]float64{"oncology": 1},
		ConceptAffinity: 0.4,
	}
	docs, err := w.Generate(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 200 {
		t.Fatalf("got %d docs, want 200", len(docs))
	}
	totalLen := 0
	ids := map[string]bool{}
	for _, d := range docs {
		if len(d.Terms) < 3 {
			t.Fatalf("doc %s has %d terms", d.ID, len(d.Terms))
		}
		if ids[d.ID] {
			t.Fatalf("duplicate doc id %s", d.ID)
		}
		ids[d.ID] = true
		totalLen += len(d.Terms)
	}
	avg := float64(totalLen) / 200
	if avg < 30 || avg > 50 {
		t.Errorf("average doc length %v, want ≈40", avg)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w := HealthWorld()
	spec := HealthTestbed(0.01)[0]
	a, err := w.Generate(spec, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Generate(spec, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text() != b[i].Text() {
			t.Fatalf("doc %d differs between runs", i)
		}
	}
}

// TestConceptAffinityCreatesCorrelation is the load-bearing property of
// the whole testbed: with high concept affinity, concept terms co-occur
// far more often than independence predicts; with zero affinity they
// are nearly independent. This is what makes the term-independence
// estimator's error database-dependent.
func TestConceptAffinityCreatesCorrelation(t *testing.T) {
	w := HealthWorld()
	measure := func(affinity float64) float64 {
		rng := stats.NewRNG(11)
		spec := DatabaseSpec{
			Name:            "corr",
			NumDocs:         4000,
			MeanDocLen:      20,
			TopicWeights:    map[string]float64{"oncology": 1},
			ConceptAffinity: affinity,
		}
		docs, err := w.Generate(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Count df(bone), df(marrow), df(bone AND marrow); this pair is
		// a concept of the oncology topic and neither term belongs to
		// other concepts, so its lift isolates the affinity knob.
		var dfA, dfB, dfAB int
		for _, d := range docs {
			hasA, hasB := false, false
			for _, term := range d.Terms {
				if term == "bone" {
					hasA = true
				}
				if term == "marrow" {
					hasB = true
				}
			}
			if hasA {
				dfA++
			}
			if hasB {
				dfB++
			}
			if hasA && hasB {
				dfAB++
			}
		}
		n := float64(len(docs))
		indep := float64(dfA) / n * float64(dfB) / n * n
		if indep == 0 {
			t.Fatal("terms never occurred; vocabulary wiring broken")
		}
		return float64(dfAB) / indep // lift: 1 = independent, >1 = correlated
	}
	low := measure(0)
	high := measure(0.6)
	if high < 3 {
		t.Errorf("lift at affinity 0.6 = %v; expected strong correlation (>3)", high)
	}
	if low > 1.5 {
		t.Errorf("lift at affinity 0 = %v; expected near-independence", low)
	}
}

func TestHealthTestbedShape(t *testing.T) {
	specs := HealthTestbed(1)
	if len(specs) != 20 {
		t.Fatalf("got %d specs, want 20", len(specs))
	}
	counts := map[string]int{}
	minDocs, maxDocs := specs[0].NumDocs, specs[0].NumDocs
	w := HealthWorld()
	for _, s := range specs {
		counts[s.Category]++
		if s.NumDocs < minDocs {
			minDocs = s.NumDocs
		}
		if s.NumDocs > maxDocs {
			maxDocs = s.NumDocs
		}
		for topic := range s.TopicWeights {
			if w.TopicIndex(topic) < 0 {
				t.Errorf("database %s references unknown topic %q", s.Name, topic)
			}
		}
	}
	if counts["health"] != 13 || counts["science"] != 4 || counts["news"] != 3 {
		t.Errorf("category mix = %v, want 13 health / 4 science / 3 news", counts)
	}
	// Paper: sizes range from 300 to 160 000 at full scale.
	if minDocs != 300 || maxDocs != 160000 {
		t.Errorf("size range [%d, %d], want [300, 160000]", minDocs, maxDocs)
	}
	// Scaling shrinks with a floor.
	small := HealthTestbed(0.001)
	for _, s := range small {
		if s.NumDocs < 50 {
			t.Errorf("scaled size %d below floor", s.NumDocs)
		}
	}
}

func TestNewsgroupWorldAndTestbed(t *testing.T) {
	w := NewsgroupWorld(3)
	if len(w.Topics) != 20 {
		t.Fatalf("got %d topics, want 20", len(w.Topics))
	}
	specs := NewsgroupTestbed(w, 0.01)
	if len(specs) != 20 {
		t.Fatalf("got %d specs, want 20", len(specs))
	}
	for i, s := range specs {
		if s.NumDocs < 50 {
			t.Errorf("spec %d size %d below floor", i, s.NumDocs)
		}
		if s.ConceptAffinity < 0.1 || s.ConceptAffinity > 0.55 {
			t.Errorf("spec %d affinity %v outside expected band", i, s.ConceptAffinity)
		}
	}
	// Determinism of the synthetic world.
	w2 := NewsgroupWorld(3)
	if w.Topics[5].Terms[10] != w2.Topics[5].Terms[10] {
		t.Error("NewsgroupWorld not deterministic")
	}
	// Different seeds differ.
	w3 := NewsgroupWorld(4)
	same := 0
	for i := 0; i < 20; i++ {
		if w.Topics[0].Terms[i] == w3.Topics[0].Terms[i] {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical vocabulary")
	}
}

func TestSyntheticVocabularyDistinct(t *testing.T) {
	rng := stats.NewRNG(1)
	words := SyntheticVocabulary(rng, 500)
	seen := map[string]bool{}
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < 2 {
			t.Fatalf("degenerate word %q", w)
		}
		if strings.ToLower(w) != w {
			t.Fatalf("word %q not lowercase", w)
		}
	}
}

func TestDocumentText(t *testing.T) {
	d := Document{ID: "x", Terms: []string{"alpha", "beta", "gamma"}}
	if got := d.Text(); got != "alpha beta gamma" {
		t.Errorf("Text() = %q", got)
	}
	empty := Document{ID: "y"}
	if got := empty.Text(); got != "" {
		t.Errorf("empty Text() = %q", got)
	}
}
