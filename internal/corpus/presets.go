package corpus

import (
	"fmt"
	"strings"

	"metaprobe/internal/stats"
)

// HealthWorld returns the vocabulary universe for the health-care
// testbed, mirroring the paper's Section 6.1 setup: a medicine/health
// domain vocabulary (the paper extracted one from MedLinePlus topic
// pages) organized into medical specialties plus broader science and
// news topics, with concept groups ("breast cancer", "heart attack",
// "blood pressure", ...) that drive term correlation.
func HealthWorld() *World {
	topics := []Topic{
		{
			Name: "oncology",
			Terms: strings.Fields(`cancer tumor breast lung prostate chemotherapy radiation biopsy
				melanoma leukemia lymphoma metastasis oncologist carcinoma mammogram screening
				malignant benign remission pathology cervical ovarian colon skin therapy marrow
				bone cell lesion staging relapse survivor diagnosis grade polyp`),
			Concepts: [][]string{
				{"breast", "cancer"}, {"lung", "cancer"}, {"skin", "cancer"},
				{"prostate", "cancer"}, {"colon", "cancer"}, {"cervical", "cancer"},
				{"bone", "marrow"}, {"radiation", "therapy"},
				{"breast", "cancer", "screening"}, {"tumor", "biopsy"},
			},
		},
		{
			Name: "cardiology",
			Terms: strings.Fields(`heart cardiac attack artery blood pressure cholesterol stroke
				hypertension bypass valve arrhythmia angina aorta vascular pacemaker coronary
				circulation pulse ventricle atrium clot aneurysm defibrillator infarction
				systolic diastolic murmur stent cardiology rhythm`),
			Concepts: [][]string{
				{"heart", "attack"}, {"blood", "pressure"}, {"heart", "disease"},
				{"cardiac", "arrest"}, {"coronary", "artery"}, {"heart", "failure"},
				{"high", "blood", "pressure"}, {"blood", "clot"},
			},
		},
		{
			Name: "neurology",
			Terms: strings.Fields(`brain nerve alzheimer parkinson seizure epilepsy migraine dementia
				spinal cord neuron cognitive memory tremor paralysis neurology headache
				concussion sclerosis multiple stimulation cortex synapse reflex coma
				neuropathy disorder lesion imaging`),
			Concepts: [][]string{
				{"alzheimer", "disease"}, {"spinal", "cord"}, {"multiple", "sclerosis"},
				{"parkinson", "disease"}, {"brain", "injury"}, {"memory", "loss"},
			},
		},
		{
			Name: "infectious",
			Terms: strings.Fields(`virus infection influenza vaccine bacteria antibiotic hepatitis
				malaria tuberculosis outbreak epidemic immunization fever pathogen quarantine
				antiviral strain transmission contagious pandemic measles smallpox anthrax
				resistance incubation mosquito parasite pneumonia sepsis`),
			Concepts: [][]string{
				{"west", "nile", "virus"}, {"bird", "flu"}, {"flu", "vaccine"},
				{"antibiotic", "resistance"}, {"viral", "infection"}, {"food", "poisoning"},
			},
		},
		{
			Name: "metabolic",
			Terms: strings.Fields(`diabetes insulin glucose thyroid hormone obesity metabolism sugar
				pancreas kidney liver dialysis gland cortisol adrenal pituitary deficiency
				syndrome gout anemia electrolyte enzyme lipid triglyceride`),
			Concepts: [][]string{
				{"blood", "sugar"}, {"insulin", "resistance"}, {"thyroid", "gland"},
				{"kidney", "failure"}, {"weight", "gain"},
			},
		},
		{
			Name: "pediatrics",
			Terms: strings.Fields(`child infant pediatric birth pregnancy asthma allergy autism growth
				newborn toddler vaccination developmental prenatal maternity breastfeeding
				colic fever croup measles chickenpox adolescent immunize checkup milestone`),
			Concepts: [][]string{
				{"birth", "defect"}, {"child", "asthma"}, {"food", "allergy"},
				{"prenatal", "care"}, {"infant", "mortality"},
			},
		},
		{
			Name: "mentalhealth",
			Terms: strings.Fields(`depression anxiety therapy psychiatric stress disorder bipolar
				schizophrenia counseling insomnia mood panic trauma phobia addiction
				psychology psychotherapy antidepressant suicide grief behavioral compulsive
				attention hyperactivity mindfulness`),
			Concepts: [][]string{
				{"panic", "attack"}, {"eating", "disorder"}, {"bipolar", "disorder"},
				{"post", "traumatic", "stress"}, {"sleep", "disorder"},
			},
		},
		{
			Name: "pharma",
			Terms: strings.Fields(`drug medication dose prescription trial clinical approval tablet
				effect generic pharmacy aspirin ibuprofen statin placebo dosage interaction
				overdose recall label pill capsule injection compound formulary inhibitor
				antihistamine sedative painkiller`),
			Concepts: [][]string{
				{"clinical", "trial"}, {"side", "effect"}, {"drug", "interaction"},
				{"pain", "relief"}, {"drug", "recall"},
			},
		},
		{
			Name: "nutrition",
			Terms: strings.Fields(`diet vitamin protein calorie weight exercise fitness mineral
				supplement fiber organic nutrient carbohydrate fat sodium potassium calcium
				iron antioxidant vegetarian hydration appetite portion cooking grain
				vegetable fruit cereal`),
			Concepts: [][]string{
				{"weight", "loss"}, {"vitamin", "deficiency"}, {"healthy", "diet"},
				{"dietary", "supplement"}, {"physical", "exercise"},
			},
		},
		{
			Name: "science",
			Terms: strings.Fields(`research study gene genome cell molecular protein laboratory
				experiment physics chemistry species climate evolution fossil quantum
				particle telescope satellite ecosystem dna rna sequence microscope theory
				hypothesis journal peer review discovery`),
			Concepts: [][]string{
				{"stem", "cell"}, {"gene", "therapy"}, {"climate", "change"},
				{"human", "genome"}, {"peer", "review"},
			},
		},
		{
			Name: "news",
			Terms: strings.Fields(`report government election market economy sports weather police
				court president budget senate congress policy reform tax campaign debate
				scandal headline coverage briefing poll legislation committee spokesman`),
			Concepts: [][]string{
				{"health", "care", "reform"}, {"election", "campaign"}, {"budget", "deficit"},
				{"press", "briefing"},
			},
		},
	}
	background := strings.Fields(`health medical doctor patient hospital treatment disease symptom
		care clinic information service program center national guide resource history
		condition risk test result prevention family public body pain chronic acute
		diagnosis recovery emergency physician nurse surgery procedure specialist wellness
		community education article page topic question answer support group journal daily
		review update summary overview factor level rate increase decrease common rare severe
		mild early late stage primary secondary general local response system function
		age gender population region world country state million number percent`)

	// Real collections have enormous tail vocabularies; without one,
	// the head terms would appear in nearly every document and AND
	// queries would trivially match everything. Extend each topic and
	// the background with a deterministic synthetic tail so document
	// frequencies stay realistic.
	tailRNG := stats.NewRNG(0x4EA17)
	pool := SyntheticVocabulary(tailRNG, len(topics)*150+600)
	next := 0
	take := func(n int) []string {
		s := pool[next : next+n]
		next += n
		return s
	}
	for i := range topics {
		topics[i].Terms = append(topics[i].Terms, take(150)...)
	}
	background = append(background, take(600)...)
	return MustWorld(topics, background)
}

// HealthTestbed returns the 20-database roster mirroring the paper's
// Section 6.1 testbed: 13 health databases drawn from medical
// specialties, 4 broader-science databases, and 3 daily-news sites with
// health coverage (Figure 14 lists samples such as MedWeb, PubMed
// Central, NIH and Science). scale multiplies every collection size so
// tests can shrink the testbed; sizes are floored at 50 documents.
func HealthTestbed(scale float64) []DatabaseSpec {
	if scale <= 0 {
		scale = 1
	}
	n := func(docs int) int {
		v := int(float64(docs) * scale)
		if v < 50 {
			v = 50
		}
		return v
	}
	mk := func(name, category string, docs int, affinity float64, weights map[string]float64) DatabaseSpec {
		return DatabaseSpec{
			Name:            name,
			Category:        category,
			NumDocs:         n(docs),
			MeanDocLen:      25,
			TopicWeights:    weights,
			ConceptAffinity: affinity,
		}
	}
	return []DatabaseSpec{
		// 13 health/medicine databases with distinct specialties and
		// correlation strengths.
		mk("MedWeb", "health", 4445, 0.30, map[string]float64{"oncology": 1, "cardiology": 1, "neurology": 1, "infectious": 1, "metabolic": 1, "pediatrics": 1, "mentalhealth": 1, "pharma": 1, "nutrition": 1}),
		mk("PubMedCentral", "health", 160000, 0.42, map[string]float64{"oncology": 3, "cardiology": 2, "neurology": 2, "infectious": 2, "metabolic": 1, "pharma": 2, "science": 2}),
		mk("NIH", "health", 63799, 0.38, map[string]float64{"oncology": 2, "cardiology": 2, "infectious": 2, "metabolic": 2, "science": 1, "pediatrics": 1}),
		mk("OncoLink", "health", 12000, 0.55, map[string]float64{"oncology": 8, "pharma": 1, "science": 1}),
		mk("HeartCenter", "health", 8000, 0.52, map[string]float64{"cardiology": 8, "nutrition": 1, "pharma": 1}),
		mk("NeuroBase", "health", 5200, 0.48, map[string]float64{"neurology": 8, "mentalhealth": 2, "pharma": 1}),
		mk("KidsHealth", "health", 7000, 0.35, map[string]float64{"pediatrics": 8, "infectious": 2, "nutrition": 2}),
		mk("MentalHealthNet", "health", 3100, 0.33, map[string]float64{"mentalhealth": 8, "pharma": 1, "neurology": 1}),
		mk("DrugInfoBank", "health", 15500, 0.45, map[string]float64{"pharma": 8, "oncology": 1, "cardiology": 1, "metabolic": 1}),
		mk("NutritionFacts", "health", 2600, 0.22, map[string]float64{"nutrition": 8, "metabolic": 2, "cardiology": 1}),
		mk("VaccineWatch", "health", 1900, 0.40, map[string]float64{"infectious": 8, "pediatrics": 2}),
		mk("DiabetesCare", "health", 3400, 0.50, map[string]float64{"metabolic": 8, "nutrition": 2, "cardiology": 1}),
		mk("WomensHealthOrg", "health", 6100, 0.44, map[string]float64{"oncology": 3, "pediatrics": 3, "nutrition": 1, "mentalhealth": 1}),
		// 4 broader-science databases (e.g. Science, Nature).
		mk("Science", "science", 29652, 0.25, map[string]float64{"science": 8, "oncology": 1, "infectious": 1, "neurology": 1}),
		mk("NatureArchive", "science", 41000, 0.28, map[string]float64{"science": 8, "oncology": 1, "metabolic": 1}),
		mk("ScienceDaily", "science", 9800, 0.18, map[string]float64{"science": 6, "infectious": 1, "cardiology": 1, "nutrition": 1}),
		mk("ResearchIndex", "science", 18700, 0.20, map[string]float64{"science": 8, "pharma": 1, "neurology": 1}),
		// 3 daily-news sites with constant health coverage (CNN,
		// NYTimes in the paper).
		mk("CNNHealthNews", "news", 2100, 0.12, map[string]float64{"news": 6, "infectious": 1, "nutrition": 1, "cardiology": 1}),
		mk("TimesHealthDesk", "news", 2800, 0.15, map[string]float64{"news": 6, "oncology": 1, "mentalhealth": 1, "pharma": 1}),
		mk("WireHealthReport", "news", 300, 0.10, map[string]float64{"news": 6, "infectious": 1, "metabolic": 1}),
	}
}

// consonants and vowelRunes build pronounceable synthetic words for the
// newsgroup testbed.
var (
	synthOnsets = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "cr", "dr", "st", "tr", "pl", "gr", "sk"}
	synthVowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
	synthCodas  = []string{"", "", "", "n", "r", "s", "t", "l", "m", "x"}
)

// SyntheticWord generates a pronounceable lowercase word of 2-4
// syllables; distinct draws are deduplicated by the caller.
func SyntheticWord(rng *stats.RNG) string {
	syllables := 2 + rng.Intn(3)
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteString(synthOnsets[rng.Intn(len(synthOnsets))])
		b.WriteString(synthVowels[rng.Intn(len(synthVowels))])
	}
	b.WriteString(synthCodas[rng.Intn(len(synthCodas))])
	return b.String()
}

// SyntheticVocabulary generates n distinct synthetic words.
func SyntheticVocabulary(rng *stats.RNG, n int) []string {
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		w := SyntheticWord(rng)
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}

// NewsgroupNames are the testbed labels for the Section 4.2 study; the
// first few match the newsgroups shown in the paper's Figure 7.
var NewsgroupNames = []string{
	"rec.autos.sport.nascar",
	"rec.music.beatles",
	"rec.music.classical.recordings",
	"rec.music.artists.springsteen",
	"comp.os.linux.advocacy",
	"comp.lang.c.moderated",
	"sci.space.policy",
	"sci.med.cardiology",
	"sci.environment.climate",
	"talk.politics.misc",
	"alt.sports.baseball",
	"alt.tv.simpsons",
	"misc.invest.stocks",
	"rec.arts.books",
	"rec.games.chess",
	"soc.history.war",
	"comp.sys.mac.hardware",
	"sci.bio.evolution",
	"alt.food.cooking",
	"rec.travel.europe",
}

// NewsgroupWorld builds a synthetic-vocabulary world with one topic per
// newsgroup, standing in for the 20 largest UCLA news-server groups the
// paper downloaded in May 2003. Each topic gets its own Zipfian
// vocabulary and correlated concept pairs/triples; a shared background
// vocabulary links the groups the way ordinary English does.
func NewsgroupWorld(seed int64) *World {
	rng := stats.NewRNG(seed)
	vocabRNG := rng.Fork(1)
	topics := make([]Topic, len(NewsgroupNames))
	for i, name := range NewsgroupNames {
		terms := SyntheticVocabulary(vocabRNG, 120)
		var concepts [][]string
		conceptRNG := rng.Fork(int64(100 + i))
		for c := 0; c < 12; c++ {
			size := 2
			if conceptRNG.Float64() < 0.3 {
				size = 3
			}
			idx := stats.SampleWithoutReplacement(conceptRNG, 40, size) // among popular terms
			group := make([]string, size)
			for j, t := range idx {
				group[j] = terms[t]
			}
			concepts = append(concepts, group)
		}
		topics[i] = Topic{Name: name, Terms: terms, Concepts: concepts}
	}
	background := SyntheticVocabulary(vocabRNG, 400)
	return MustWorld(topics, background)
}

// NewsgroupTestbed returns one database per newsgroup. The paper's
// groups ranged from 28,910 down to 1,840 articles; sizes here follow
// the same decay, multiplied by scale (floored at 50).
func NewsgroupTestbed(world *World, scale float64) []DatabaseSpec {
	if scale <= 0 {
		scale = 1
	}
	specs := make([]DatabaseSpec, len(world.Topics))
	for i, t := range world.Topics {
		size := int(float64(28910) * scale / (1 + 0.7*float64(i)))
		if size < 50 {
			size = 50
		}
		weights := map[string]float64{t.Name: 8}
		// Each group leaks a little of two neighbouring topics, as real
		// newsgroups do (cross-posting).
		weights[world.Topics[(i+1)%len(world.Topics)].Name] = 1
		weights[world.Topics[(i+7)%len(world.Topics)].Name] = 0.5
		specs[i] = DatabaseSpec{
			Name:            t.Name,
			Category:        "newsgroup",
			NumDocs:         size,
			MeanDocLen:      30,
			TopicWeights:    weights,
			ConceptAffinity: 0.15 + 0.35*float64(i%5)/4, // 0.15 .. 0.50 across groups
		}
	}
	return specs
}

// String renders a spec compactly for logs and the Figure 14 table.
func (s DatabaseSpec) String() string {
	return fmt.Sprintf("%s(%s, %d docs)", s.Name, s.Category, s.NumDocs)
}
