package queries

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Query-log persistence: the standard one-query-per-line text format
// every real trace (including the Overture trace the paper used) comes
// in. Lines are whitespace-separated terms; blank lines and lines
// starting with '#' are skipped.

// WriteLog streams queries to w, one per line.
func WriteLog(w io.Writer, qs []Query) error {
	bw := bufio.NewWriter(w)
	for i, q := range qs {
		if q.NumTerms() == 0 {
			return fmt.Errorf("queries: query %d is empty", i)
		}
		if _, err := bw.WriteString(q.String()); err != nil {
			return fmt.Errorf("queries: writing log: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("queries: writing log: %w", err)
		}
	}
	return bw.Flush()
}

// ReadLog parses a query log written by WriteLog (or any one-per-line
// trace).
func ReadLog(r io.Reader) ([]Query, error) {
	var out []Query
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		out = append(out, Query{Terms: strings.Fields(text)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("queries: reading log line %d: %w", line, err)
	}
	return out, nil
}

// SaveLog writes queries to a file.
func SaveLog(path string, qs []Query) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("queries: %w", err)
	}
	defer f.Close()
	if err := WriteLog(f, qs); err != nil {
		return err
	}
	return f.Close()
}

// LoadLog reads queries from a file.
func LoadLog(path string) ([]Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("queries: %w", err)
	}
	defer f.Close()
	return ReadLog(f)
}
