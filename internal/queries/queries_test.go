package queries

import (
	"path/filepath"
	"strings"
	"testing"

	"metaprobe/internal/corpus"
	"metaprobe/internal/stats"
)

func testWorld() *corpus.World {
	return corpus.HealthWorld()
}

func TestOneTermCounts(t *testing.T) {
	g, err := NewGenerator(testWorld(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(1)
	for _, n := range []int{1, 2, 3, 4} {
		for i := 0; i < 50; i++ {
			q, err := g.One(rng, n)
			if err != nil {
				t.Fatal(err)
			}
			if q.NumTerms() != n {
				t.Fatalf("got %d terms, want %d (%q)", q.NumTerms(), n, q)
			}
			seen := map[string]bool{}
			for _, term := range q.Terms {
				if seen[term] {
					t.Fatalf("query %q repeats a term", q)
				}
				seen[term] = true
			}
		}
	}
	if _, err := g.One(rng, 0); err == nil {
		t.Error("numTerms 0 should fail")
	}
}

func TestPoolDistinctAndComposed(t *testing.T) {
	g, err := NewGenerator(testWorld(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(2)
	pool, err := g.Pool(rng, 300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 500 {
		t.Fatalf("pool size %d, want 500", len(pool))
	}
	seen := map[string]bool{}
	var n2, n3 int
	for _, q := range pool {
		key := q.String()
		if seen[key] {
			t.Fatalf("duplicate query %q", key)
		}
		seen[key] = true
		switch q.NumTerms() {
		case 2:
			n2++
		case 3:
			n3++
		default:
			t.Fatalf("unexpected term count in %q", key)
		}
	}
	if n2 != 300 || n3 != 200 {
		t.Errorf("composition %d/%d, want 300/200", n2, n3)
	}
}

func TestTrainTestDisjointAndComposed(t *testing.T) {
	g, err := NewGenerator(testWorld(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(3)
	train, test, err := g.TrainTest(rng, 100, 100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 200 || len(test) != 200 {
		t.Fatalf("sizes %d/%d, want 200/200", len(train), len(test))
	}
	trainSet := map[string]bool{}
	for _, q := range train {
		trainSet[q.String()] = true
	}
	for _, q := range test {
		if trainSet[q.String()] {
			t.Fatalf("query %q appears in both train and test", q)
		}
	}
	count := func(qs []Query, n int) int {
		c := 0
		for _, q := range qs {
			if q.NumTerms() == n {
				c++
			}
		}
		return c
	}
	if count(train, 2) != 100 || count(train, 3) != 100 || count(test, 2) != 100 || count(test, 3) != 100 {
		t.Error("term-count composition wrong")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	w := testWorld()
	g1, _ := NewGenerator(w, Config{})
	g2, _ := NewGenerator(w, Config{})
	p1, err := g1.Pool(stats.NewRNG(9), 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.Pool(stats.NewRNG(9), 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].String() != p2[i].String() {
			t.Fatalf("pools differ at %d: %q vs %q", i, p1[i], p2[i])
		}
	}
}

func TestConceptFractionShowsUp(t *testing.T) {
	w := testWorld()
	g, _ := NewGenerator(w, Config{ConceptFraction: 0.9})
	rng := stats.NewRNG(4)
	// With ConceptFraction 0.9, many 2-term queries should literally be
	// concept pairs such as "breast cancer".
	conceptPairs := map[string]bool{}
	for _, t := range w.Topics {
		for _, c := range t.Concepts {
			if len(c) == 2 {
				conceptPairs[strings.Join(c, " ")] = true
			}
		}
	}
	hits := 0
	const n = 300
	for i := 0; i < n; i++ {
		q, err := g.One(rng, 2)
		if err != nil {
			t.Fatal(err)
		}
		if conceptPairs[q.String()] {
			hits++
		}
	}
	if hits < n/4 {
		t.Errorf("only %d/%d queries were concept pairs; concept path looks broken", hits, n)
	}
}

func TestSortQueries(t *testing.T) {
	qs := []Query{
		{Terms: []string{"b", "a", "c"}},
		{Terms: []string{"z", "a"}},
		{Terms: []string{"a", "b"}},
	}
	SortQueries(qs)
	if qs[0].String() != "a b" || qs[1].String() != "z a" || qs[2].String() != "b a c" {
		t.Errorf("sorted order wrong: %v", qs)
	}
}

func TestQueryLogRoundTrip(t *testing.T) {
	g, err := NewGenerator(testWorld(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.Pool(stats.NewRNG(12), 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "queries.txt")
	if err := SaveLog(path, qs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(qs) {
		t.Fatalf("loaded %d of %d", len(loaded), len(qs))
	}
	for i := range qs {
		if qs[i].String() != loaded[i].String() {
			t.Fatalf("query %d did not round-trip: %q vs %q", i, qs[i], loaded[i])
		}
	}
}

func TestReadLogSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a trace\n\nbreast cancer\n   \nheart attack  \n# end\n"
	qs, err := ReadLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].String() != "breast cancer" || qs[1].String() != "heart attack" {
		t.Errorf("parsed %v", qs)
	}
}

func TestWriteLogRejectsEmptyQuery(t *testing.T) {
	var sb strings.Builder
	if err := WriteLog(&sb, []Query{{}}); err == nil {
		t.Error("empty query must fail")
	}
}

func TestLoadLogMissingFile(t *testing.T) {
	if _, err := LoadLog(filepath.Join(t.TempDir(), "none.txt")); err == nil {
		t.Error("missing file must fail")
	}
}
