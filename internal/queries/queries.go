// Package queries generates the keyword-query workloads for the
// metaprobe testbed. It stands in for the paper's real Web query trace
// (Section 6.1: one month of queries from inventory.overture.com,
// filtered to health-care terms via a MedLinePlus vocabulary).
//
// The paper's workload properties that matter for reproduction:
//
//   - queries have 2 or 3 terms ("Web queries contain 2.2 terms on
//     average"; the paper uses 1 000 2-term + 1 000 3-term queries for
//     both the training and the test set);
//   - query terms come from the target domain, so they hit correlated
//     concept pairs on topical databases and uncorrelated terms
//     elsewhere — giving the term-independence estimator its
//     database-dependent error;
//   - the training and test sets are disjoint but identically
//     distributed, so error distributions learned on Q_train transfer
//     to Q_test.
package queries

import (
	"fmt"
	"sort"
	"strings"

	"metaprobe/internal/corpus"
	"metaprobe/internal/stats"
)

// Query is one keyword query.
type Query struct {
	// Terms are the raw query words in order.
	Terms []string
}

// String renders the query the way a user would type it.
func (q Query) String() string { return strings.Join(q.Terms, " ") }

// NumTerms returns the number of query terms.
func (q Query) NumTerms() int { return len(q.Terms) }

// Config tunes the query generator.
type Config struct {
	// ConceptFraction is the probability that a query is built around
	// one of a topic's concepts (a correlated term group such as
	// "breast cancer"), as real queries overwhelmingly are. Default 0.45.
	ConceptFraction float64
	// BackgroundFraction is the probability that one slot of a
	// non-concept query uses a background term. Default 0.25.
	BackgroundFraction float64
	// MaxAttempts bounds rejection sampling per requested query
	// (duplicates and degenerate draws are rejected). Default 200.
	MaxAttempts int
}

func (c *Config) setDefaults() {
	if c.ConceptFraction == 0 {
		c.ConceptFraction = 0.45
	}
	if c.BackgroundFraction == 0 {
		c.BackgroundFraction = 0.25
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 200
	}
}

// Generator draws queries from a corpus world.
type Generator struct {
	world *corpus.World
	cfg   Config

	topicSamp *stats.WeightedSampler
	termSamp  []*stats.WeightedSampler
	concSamp  []*stats.WeightedSampler
	bgSamp    *stats.WeightedSampler
}

// NewGenerator builds a query generator over the world's vocabulary.
func NewGenerator(world *corpus.World, cfg Config) (*Generator, error) {
	cfg.setDefaults()
	g := &Generator{world: world, cfg: cfg}
	// Topics are queried roughly uniformly with a mild skew toward
	// earlier (larger) topics.
	topicWeights := make([]float64, len(world.Topics))
	for i := range topicWeights {
		topicWeights[i] = 1 / (1 + 0.05*float64(i))
	}
	var err error
	g.topicSamp, err = stats.NewWeightedSampler(topicWeights)
	if err != nil {
		return nil, fmt.Errorf("queries: %w", err)
	}
	g.termSamp = make([]*stats.WeightedSampler, len(world.Topics))
	g.concSamp = make([]*stats.WeightedSampler, len(world.Topics))
	for i, t := range world.Topics {
		// Query-term popularity follows the same Zipf shape as
		// documents (people ask about what gets written about).
		g.termSamp[i], err = stats.NewWeightedSampler(stats.ZipfWeights(len(t.Terms), 0.9))
		if err != nil {
			return nil, fmt.Errorf("queries: topic %q: %w", t.Name, err)
		}
		if len(t.Concepts) > 0 {
			g.concSamp[i], err = stats.NewWeightedSampler(stats.ZipfWeights(len(t.Concepts), 0.7))
			if err != nil {
				return nil, fmt.Errorf("queries: topic %q concepts: %w", t.Name, err)
			}
		}
	}
	g.bgSamp, err = stats.NewWeightedSampler(stats.ZipfWeights(len(world.Background), 1.0))
	if err != nil {
		return nil, fmt.Errorf("queries: background: %w", err)
	}
	return g, nil
}

// One draws a single query with the given term count (2 or more). It
// never returns a query with repeated terms.
func (g *Generator) One(rng *stats.RNG, numTerms int) (Query, error) {
	if numTerms < 1 {
		return Query{}, fmt.Errorf("queries: numTerms %d < 1", numTerms)
	}
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		q := g.draw(rng, numTerms)
		if len(q.Terms) == numTerms && distinct(q.Terms) {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("queries: failed to draw a %d-term query after %d attempts", numTerms, g.cfg.MaxAttempts)
}

func (g *Generator) draw(rng *stats.RNG, numTerms int) Query {
	topic := g.topicSamp.Sample(rng)
	t := &g.world.Topics[topic]
	terms := make([]string, 0, numTerms)

	if g.concSamp[topic] != nil && rng.Float64() < g.cfg.ConceptFraction {
		c := t.Concepts[g.concSamp[topic].Sample(rng)]
		for _, w := range c {
			if len(terms) < numTerms {
				terms = append(terms, w)
			}
		}
	}
	for len(terms) < numTerms {
		var w string
		if rng.Float64() < g.cfg.BackgroundFraction {
			w = g.world.Background[g.bgSamp.Sample(rng)]
		} else {
			w = t.Terms[g.termSamp[topic].Sample(rng)]
		}
		terms = append(terms, w)
	}
	return Query{Terms: terms}
}

// distinct reports whether all terms differ.
func distinct(terms []string) bool {
	for i := range terms {
		for j := i + 1; j < len(terms); j++ {
			if terms[i] == terms[j] {
				return false
			}
		}
	}
	return true
}

// Pool draws the requested numbers of distinct 2-term and 3-term
// queries. Distinctness is by exact term sequence.
func (g *Generator) Pool(rng *stats.RNG, num2, num3 int) ([]Query, error) {
	seen := make(map[string]struct{}, num2+num3)
	out := make([]Query, 0, num2+num3)
	add := func(numTerms, count int) error {
		misses := 0
		for added := 0; added < count; {
			q, err := g.One(rng, numTerms)
			if err != nil {
				return err
			}
			key := q.String()
			if _, dup := seen[key]; dup {
				misses++
				if misses > 50*count+1000 {
					return fmt.Errorf("queries: vocabulary too small for %d distinct %d-term queries", count, numTerms)
				}
				continue
			}
			seen[key] = struct{}{}
			out = append(out, q)
			added++
		}
		return nil
	}
	if err := add(2, num2); err != nil {
		return nil, err
	}
	if err := add(3, num3); err != nil {
		return nil, err
	}
	return out, nil
}

// TrainTest draws two disjoint query sets with the same composition
// (numTrain2 2-term + numTrain3 3-term training queries, and likewise
// for test), mirroring the paper's Q_train / Q_test construction.
func (g *Generator) TrainTest(rng *stats.RNG, numTrain2, numTrain3, numTest2, numTest3 int) (train, test []Query, err error) {
	pool, err := g.Pool(rng, numTrain2+numTest2, numTrain3+numTest3)
	if err != nil {
		return nil, nil, err
	}
	two := pool[:numTrain2+numTest2]
	three := pool[numTrain2+numTest2:]
	// The pool is drawn i.i.d., so a simple shuffle-split keeps the two
	// sets identically distributed.
	rng.Shuffle(len(two), func(i, j int) { two[i], two[j] = two[j], two[i] })
	rng.Shuffle(len(three), func(i, j int) { three[i], three[j] = three[j], three[i] })
	train = append(train, two[:numTrain2]...)
	train = append(train, three[:numTrain3]...)
	test = append(test, two[numTrain2:]...)
	test = append(test, three[numTrain3:]...)
	return train, test, nil
}

// SortQueries orders queries deterministically (by term count, then
// lexicographically); useful for stable golden files and tests.
func SortQueries(qs []Query) {
	sort.Slice(qs, func(i, j int) bool {
		if len(qs[i].Terms) != len(qs[j].Terms) {
			return len(qs[i].Terms) < len(qs[j].Terms)
		}
		return qs[i].String() < qs[j].String()
	})
}
