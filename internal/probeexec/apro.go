package probeexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"metaprobe/internal/core"
	"metaprobe/internal/obs/span"
)

// ProbeFunc issues the live probe to database i under ctx.
type ProbeFunc func(ctx context.Context, i int) (float64, error)

// Result is the outcome of a context-aware APro run. Backend failures
// do not fail the selection: a database whose probe failed (or whose
// circuit breaker rejected the probe) is treated as serving nothing
// for this query — its RD collapses to relevancy zero, pushing it out
// of the best set whenever a live alternative exists — and the
// selection over the remaining databases is returned with Degraded
// set.
type Result struct {
	core.Outcome
	// Degraded reports that one or more backends were excluded
	// (probe failure or open circuit breaker), so the selection was
	// computed over a reduced testbed.
	Degraded bool
	// Excluded lists the excluded database indices, ascending.
	Excluded []int
}

// APro runs the adaptive probing loop (paper Figure 11) through the
// executor, with speculative prefetch. Every iteration folds exactly
// the database the policy picks — the paper's sequential trajectory,
// byte for byte, at any Speculation level — but when Speculation > 1
// and the policy implements core.Ranker, probes for the next
// lower-ranked candidates are dispatched in the background. If a later
// iteration picks a prefetched database its result is already in
// flight (or done), hiding that probe's latency; prefetches the policy
// never picks are cancelled when the selection finishes and counted as
// speculative waste. With Speculation ≤ 1 — or a policy that is not a
// Ranker — no prefetch happens and the loop is exactly the sequential
// algorithm.
//
// name maps a database index to the backend name used for breaker and
// per-backend pool accounting. The returned error is reserved for bad
// arguments, policy failures and caller cancellation; probe failures
// degrade the result instead (see Result).
func (e *Executor) APro(ctx context.Context, s *core.Selection, name func(i int) string, probe ProbeFunc, policy core.Policy, t float64, maxProbes int) (Result, error) {
	if t < 0 || t > 1 {
		return Result{}, fmt.Errorf("probeexec: certainty threshold %v outside [0,1]", t)
	}
	if probe == nil || policy == nil || name == nil {
		return Result{}, fmt.Errorf("probeexec: APro needs a probe function, a policy and a name mapping")
	}
	m := e.cfg.Speculation
	if m < 1 {
		m = 1
	}
	ranker, _ := policy.(core.Ranker)

	var res Result
	out := &res.Outcome
	var excluded []int

	// Speculative prefetches run under one context for the whole
	// selection. finish cancels and drains them, so every probe has
	// returned — and its pool slot is released — before APro does.
	type probeResult struct {
		v   float64
		err error
	}
	sp := span.FromContext(ctx) // selection root (nil when tracing is off)
	specCtx, cancelSpec := context.WithCancel(ctx)
	pending := make(map[int]chan probeResult)
	dispatch := func(i int) {
		ch := make(chan probeResult, 1)
		pending[i] = ch
		go func() {
			v, err := e.Probe(specCtx, name(i), func(c context.Context) (float64, error) {
				return probe(c, i)
			})
			ch <- probeResult{v: v, err: err}
		}()
	}
	finish := func() Result {
		cancelSpec()
		if len(pending) > 0 {
			sp.AddEvent("speculation_cancelled", "count", strconv.Itoa(len(pending)))
		}
		for _, ch := range pending {
			<-ch
			e.specWaste.Inc()
		}
		if len(excluded) > 0 {
			res.Degraded = true
			sort.Ints(excluded)
			res.Excluded = excluded
		}
		return res
	}

	first := true
	for {
		mark := s.BeginStage()
		set, cur := s.BestView()
		s.EndStage(mark, core.StageECorDP)
		out.Set = append(out.Set[:0], set...)
		out.Certainty = cur
		if first {
			out.Initial = cur
			first = false
		} else if n := len(out.Steps); n > 0 {
			out.Steps[n-1].CertaintyAfter = cur
		}
		if cur >= t {
			out.Reached = true
			if res.Degraded = len(excluded) > 0; res.Degraded {
				e.degraded.Inc()
			}
			return finish(), nil
		}
		if err := ctx.Err(); err != nil {
			return finish(), fmt.Errorf("probeexec: selection abandoned: %w", err)
		}
		if len(s.UnprobedView()) == 0 || (maxProbes >= 0 && out.Probes() >= maxProbes) {
			if len(excluded) > 0 {
				e.degraded.Inc()
			}
			return finish(), nil
		}

		// SelectDb: the head of the ranking is this iteration's probe —
		// exactly the choice the sequential loop would make through the
		// same policy. The tail (requires a Ranker) is only prefetched.
		var cands []int
		useful := make(map[int]float64)
		mark = s.BeginStage()
		if m == 1 || ranker == nil {
			i, err := policy.Next(s, t)
			if err != nil {
				if errors.Is(err, core.ErrNoInformativeProbe) {
					// Every remaining unprobed RD is an impulse — stop
					// with the best available set instead of issuing
					// informationless probes (Reached stays false).
					if len(excluded) > 0 {
						e.degraded.Inc()
					}
					return finish(), nil
				}
				return finish(), fmt.Errorf("probeexec: probe policy %s: %w", policy.Name(), err)
			}
			if s.Probed(i) {
				return finish(), fmt.Errorf("probeexec: policy %s chose already-probed database %d", policy.Name(), i)
			}
			cands = []int{i}
			if ur, ok := policy.(core.UsefulnessReporter); ok {
				useful[i] = ur.LastUsefulness()
			}
		} else {
			dbs, us, err := ranker.Rank(s, t, m)
			if err != nil {
				if errors.Is(err, core.ErrNoInformativeProbe) {
					if len(excluded) > 0 {
						e.degraded.Inc()
					}
					return finish(), nil
				}
				return finish(), fmt.Errorf("probeexec: probe policy %s: %w", policy.Name(), err)
			}
			for idx, i := range dbs {
				if s.Probed(i) {
					return finish(), fmt.Errorf("probeexec: policy %s ranked already-probed database %d", policy.Name(), i)
				}
				useful[i] = us[idx]
			}
			cands = dbs
		}
		s.EndStage(mark, core.StageRank)
		if maxProbes >= 0 {
			if remaining := maxProbes - out.Probes(); len(cands) > remaining {
				cands = cands[:remaining]
			}
		}

		// Dispatch this iteration's probe plus any prefetch candidates
		// not already in flight; only this goroutine touches s. A probe
		// prefetched in an earlier iteration and picked now folds from
		// its pending channel — its latency already (partly) paid.
		for _, i := range cands {
			if _, ok := pending[i]; !ok {
				dispatch(i)
				if i != cands[0] {
					sp.AddEvent("speculative_prefetch", "backend", name(i))
				}
			}
		}
		// The probe stage here is the time this loop spends *blocked*
		// on the probe it needs next — under speculation the wire time
		// may be longer, but only the blocking tail delays the
		// selection, and that is what a waterfall should show.
		head := cands[0]
		mark = s.BeginStage()
		r := <-pending[head]
		s.EndStage(mark, core.StageProbe)
		delete(pending, head)
		if r.err != nil {
			if ctx.Err() != nil {
				return finish(), fmt.Errorf("probeexec: selection abandoned: %w", ctx.Err())
			}
			// Degrade: an unreachable backend serves nothing for this
			// query, so its effective relevancy is zero — collapsing
			// the RD pushes it out of the best set whenever a live
			// alternative exists (unlike core.APro's best-effort,
			// which keeps the estimated RD of failed databases).
			s.ApplyProbe(head, 0)
			excluded = append(excluded, head)
			out.ProbeErrs = append(out.ProbeErrs, r.err)
			sp.AddEvent("backend_excluded", "backend", name(head), "error", r.err.Error())
		} else {
			s.ApplyProbe(head, r.v)
		}
		mark = s.BeginStage()
		_, after := s.BestView()
		s.EndStage(mark, core.StageECorDP)
		out.Steps = append(out.Steps, core.ProbeStep{
			DB: head, Value: r.v, Err: r.err, Usefulness: useful[head], CertaintyAfter: after,
		})
	}
}

// IsBreakerOpen reports whether err is (or wraps) a breaker rejection.
func IsBreakerOpen(err error) bool { return errors.Is(err, ErrBreakerOpen) }
