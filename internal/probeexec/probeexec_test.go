package probeexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"metaprobe/internal/core"
	"metaprobe/internal/leakcheck"
	"metaprobe/internal/obs"
	"metaprobe/internal/stats"
)

func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second}, func() time.Time { return now })

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Failures below the threshold keep it closed; a success resets.
	b.Record(probeFailure)
	b.Record(probeFailure)
	b.Record(probeSuccess)
	b.Record(probeFailure)
	b.Record(probeFailure)
	if b.State() != BreakerClosed {
		t.Fatalf("state after interleaved failures = %v, want closed", b.State())
	}
	// Third consecutive failure opens it.
	b.Record(probeFailure)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a probe before cooldown")
	}
	// After the cooldown, exactly one half-open trial is admitted.
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open trial")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while trial in flight")
	}
	// A cancelled trial releases the slot without moving the state.
	b.Record(probeCancelled)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("cancelled trial moved state to %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("slot not released after cancelled trial")
	}
	// A failed trial reopens for a full cooldown.
	b.Record(probeFailure)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("failed trial should reopen; state = %v", b.State())
	}
	// Next trial succeeds and closes the breaker.
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("no trial after second cooldown")
	}
	b.Record(probeSuccess)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after trial success", b.State())
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Disabled: true, FailureThreshold: 1}, nil)
	for i := 0; i < 10; i++ {
		b.Record(probeFailure)
	}
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("disabled breaker must always admit")
	}
}

func TestPoolSaturation(t *testing.T) {
	leakcheck.Check(t)
	e := NewExecutor(Config{Limits: Limits{Global: 2}})
	gate := make(chan struct{})
	started := make(chan struct{}, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Probe(context.Background(), "db", func(ctx context.Context) (float64, error) {
				started <- struct{}{}
				<-gate
				return 1, nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Only two probes may enter; the third waits for a slot.
	<-started
	<-started
	deadline := time.After(200 * time.Millisecond)
	select {
	case <-started:
		t.Fatal("third probe ran with Global=2")
	case <-deadline:
	}
	if got := e.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	close(gate)
	<-started
	wg.Wait()
	if got := e.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d", got)
	}
}

func TestPoolAcquireHonorsContext(t *testing.T) {
	leakcheck.Check(t)
	e := NewExecutor(Config{Limits: Limits{Global: 1}})
	gate := make(chan struct{})
	defer close(gate)
	entered := make(chan struct{})
	go e.Probe(context.Background(), "db", func(ctx context.Context) (float64, error) {
		close(entered)
		<-gate
		return 1, nil
	})
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Probe(ctx, "db", func(ctx context.Context) (float64, error) { return 1, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("saturated acquire under cancelled ctx: err = %v", err)
	}
}

func TestHedgeWinsAndCancelsOriginal(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewExecutor(Config{HedgeAfter: 10 * time.Millisecond, Metrics: reg})
	var mu sync.Mutex
	calls := 0
	originalCancelled := make(chan struct{})
	v, err := e.Probe(context.Background(), "slow", func(ctx context.Context) (float64, error) {
		mu.Lock()
		n := calls
		calls++
		mu.Unlock()
		if n == 0 {
			// Original attempt: hang until the executor cancels it.
			<-ctx.Done()
			close(originalCancelled)
			return 0, ctx.Err()
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("v=%v err=%v, want hedge's 42", v, err)
	}
	select {
	case <-originalCancelled:
	case <-time.After(time.Second):
		t.Fatal("losing attempt was not cancelled")
	}
	if got := reg.Counter("mp_probe_hedges_total", nil).Value(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := reg.Counter("mp_probe_hedge_wins_total", nil).Value(); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}
	// The winner's success must leave the backend healthy.
	if s := e.BreakerState("slow"); s != BreakerClosed {
		t.Errorf("breaker = %v after hedge win", s)
	}
}

func TestProbeBreakerOpensAndRejects(t *testing.T) {
	e := NewExecutor(Config{Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}})
	fail := func(ctx context.Context) (float64, error) { return 0, fmt.Errorf("backend down") }
	for i := 0; i < 2; i++ {
		if _, err := e.Probe(context.Background(), "down", fail); err == nil {
			t.Fatal("want failure")
		}
	}
	if s := e.BreakerState("down"); s != BreakerOpen {
		t.Fatalf("breaker = %v, want open", s)
	}
	called := false
	_, err := e.Probe(context.Background(), "down", func(ctx context.Context) (float64, error) {
		called = true
		return 1, nil
	})
	if !IsBreakerOpen(err) {
		t.Fatalf("err = %v, want breaker-open", err)
	}
	if called {
		t.Fatal("open breaker still contacted the backend")
	}
}

func TestProbeCallerCancellationIsNeutral(t *testing.T) {
	e := NewExecutor(Config{Breaker: BreakerConfig{FailureThreshold: 1}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := e.Probe(ctx, "db", func(c context.Context) (float64, error) {
			<-c.Done()
			return 0, c.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-done
	// Even with FailureThreshold=1 the breaker stays closed: the caller
	// walked away, the backend did nothing wrong.
	if s := e.BreakerState("db"); s != BreakerClosed {
		t.Fatalf("breaker = %v after caller cancellation", s)
	}
}

// randomRDs builds n multi-value RDs from a seeded RNG.
func randomRDs(rng *stats.RNG, n int) []*core.RD {
	rds := make([]*core.RD, n)
	for i := range rds {
		m := 2 + rng.Intn(3)
		vals := make([]float64, m)
		probs := make([]float64, m)
		for j := range vals {
			vals[j] = float64(rng.Intn(80)) + float64(j)*0.01
			probs[j] = rng.Float64() + 0.05
		}
		rds[i] = core.MustRD(vals, probs)
	}
	return rds
}

// TestM1MatchesSequentialAPro is the paper-faithfulness guarantee:
// with Speculation=1 the executor's APro must be byte-identical to
// core.APro — same probe sequence, values, usefulness, certainty
// trajectory and final set — across many random testbeds.
func TestM1MatchesSequentialAPro(t *testing.T) {
	rng := stats.NewRNG(7)
	e := NewExecutor(Config{Speculation: 1})
	name := func(i int) string { return fmt.Sprintf("db%d", i) }
	for trial := 0; trial < 25; trial++ {
		rds := randomRDs(rng, 4+rng.Intn(3))
		observe := make([]float64, len(rds))
		for i := range observe {
			rd := rds[i]
			observe[i] = rd.Value(rng.Intn(rd.Len()))
		}
		threshold := 0.9 + 0.1*rng.Float64()

		seqSel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
		seqOut, err := core.APro(seqSel, func(i int) (float64, error) { return observe[i], nil }, &core.Greedy{}, threshold, -1)
		if err != nil {
			t.Fatal(err)
		}

		ctxSel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
		res, err := e.APro(context.Background(), ctxSel, name,
			func(ctx context.Context, i int) (float64, error) { return observe[i], nil },
			&core.Greedy{}, threshold, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded || len(res.Excluded) != 0 {
			t.Fatalf("trial %d: clean run reported degraded", trial)
		}
		if fmt.Sprintf("%v", res.Set) != fmt.Sprintf("%v", seqOut.Set) {
			t.Fatalf("trial %d: set %v != sequential %v", trial, res.Set, seqOut.Set)
		}
		if res.Certainty != seqOut.Certainty || res.Initial != seqOut.Initial || res.Reached != seqOut.Reached {
			t.Fatalf("trial %d: certainty/initial/reached diverge: %+v vs %+v", trial, res.Outcome, seqOut)
		}
		if len(res.Steps) != len(seqOut.Steps) {
			t.Fatalf("trial %d: %d steps != sequential %d", trial, len(res.Steps), len(seqOut.Steps))
		}
		for si, step := range res.Steps {
			want := seqOut.Steps[si]
			if step.DB != want.DB || step.Value != want.Value ||
				step.Usefulness != want.Usefulness || step.CertaintyAfter != want.CertaintyAfter {
				t.Fatalf("trial %d step %d: %+v != sequential %+v", trial, si, step, want)
			}
		}
	}
}

func TestAProDegradesOnDeadBackend(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewExecutor(Config{Metrics: reg})
	rds := []*core.RD{
		core.MustRD([]float64{10, 90}, []float64{0.5, 0.5}),
		core.MustRD([]float64{20, 80}, []float64{0.5, 0.5}),
		core.MustRD([]float64{30, 70}, []float64{0.5, 0.5}),
	}
	sel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
	dead := 1
	probe := func(ctx context.Context, i int) (float64, error) {
		if i == dead {
			return 0, fmt.Errorf("connection refused")
		}
		// Live probes observe their low value, so the loop keeps probing
		// (and hits the dead backend) before certainty settles.
		return rds[i].Value(0), nil
	}
	res, err := e.APro(context.Background(), sel, func(i int) string { return fmt.Sprintf("db%d", i) },
		probe, &core.Greedy{}, 0.99, -1)
	if err != nil {
		t.Fatalf("degraded selection must not error: %v", err)
	}
	if len(res.Set) != 1 {
		t.Fatalf("no selection returned: %+v", res)
	}
	for _, db := range res.Set {
		if db == dead {
			t.Fatalf("dead backend selected: %+v", res)
		}
	}
	foundExcluded := false
	for _, db := range res.Excluded {
		if db == dead {
			foundExcluded = true
		}
	}
	if !res.Degraded || !foundExcluded {
		t.Fatalf("degradation not reported: %+v", res)
	}
	if got := reg.Counter("mp_selections_degraded_total", nil).Value(); got != 1 {
		t.Errorf("mp_selections_degraded_total = %d, want 1", got)
	}
}

func TestAProSpeculationCancelsLosers(t *testing.T) {
	reg := obs.NewRegistry()
	e := NewExecutor(Config{Speculation: 2, Metrics: reg})
	rds := randomRDs(stats.NewRNG(31), 5)
	sel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
	// Results fold in rank order, so the decisive answer must come from
	// the round's top-ranked candidate: ask the policy which that is.
	winner, err := (&core.Greedy{}).Next(core.NewSelectionFromRDs(rds, core.Absolute, 1), 0.999)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	cancelled := 0
	probe := func(ctx context.Context, i int) (float64, error) {
		// The top-ranked probe answers instantly with a decisive value;
		// the other candidate in the round hangs until cancelled.
		if i == winner {
			return 1000, nil
		}
		<-ctx.Done()
		mu.Lock()
		cancelled++
		mu.Unlock()
		return 0, ctx.Err()
	}
	res, err := e.APro(context.Background(), sel, func(i int) string { return fmt.Sprintf("db%d", i) },
		probe, &core.Greedy{}, 0.999, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("decisive probe did not reach threshold: %+v", res)
	}
	if res.Degraded {
		t.Fatalf("cancelled speculation must not degrade the result: %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if cancelled == 0 {
		t.Fatal("speculative loser was never cancelled")
	}
	// The losers stay healthy: round cancellation is neutral.
	for i := 0; i < len(rds); i++ {
		if i == winner {
			continue
		}
		if s := e.BreakerState(fmt.Sprintf("db%d", i)); s != BreakerClosed {
			t.Errorf("db%d breaker = %v after round cancellation", i, s)
		}
	}
}

func TestAProSpeculationM2ReachesSameSet(t *testing.T) {
	// m=2 probes more but must land on the same quality of answer:
	// threshold reached, certainty no lower than sequential.
	rng := stats.NewRNG(13)
	name := func(i int) string { return fmt.Sprintf("db%d", i) }
	for trial := 0; trial < 10; trial++ {
		rds := randomRDs(rng, 5)
		observe := make([]float64, len(rds))
		for i := range observe {
			observe[i] = rds[i].Value(rng.Intn(rds[i].Len()))
		}
		seqSel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
		seqOut, err := core.APro(seqSel, func(i int) (float64, error) { return observe[i], nil }, &core.Greedy{}, 0.95, -1)
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(Config{Speculation: 2})
		sel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
		res, err := e.APro(context.Background(), sel, name,
			func(ctx context.Context, i int) (float64, error) { return observe[i], nil },
			&core.Greedy{}, 0.95, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached != seqOut.Reached {
			t.Fatalf("trial %d: reached %v != sequential %v", trial, res.Reached, seqOut.Reached)
		}
		if res.Reached && res.Certainty < 0.95 {
			t.Fatalf("trial %d: certainty %v below threshold", trial, res.Certainty)
		}
	}
}

func TestAProCallerCancellation(t *testing.T) {
	e := NewExecutor(Config{})
	rds := randomRDs(stats.NewRNG(77), 4)
	sel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
	ctx, cancel := context.WithCancel(context.Background())
	probe := func(c context.Context, i int) (float64, error) {
		cancel() // the user walks away mid-probe
		<-c.Done()
		return 0, c.Err()
	}
	_, err := e.APro(ctx, sel, func(i int) string { return "db" }, probe, &core.Greedy{}, 0.999, -1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want caller cancellation", err)
	}
}

func TestAProValidatesArguments(t *testing.T) {
	e := NewExecutor(Config{})
	sel := core.NewSelectionFromRDs(randomRDs(stats.NewRNG(1), 3), core.Absolute, 1)
	if _, err := e.APro(context.Background(), sel, func(int) string { return "x" }, nil, &core.Greedy{}, 0.5, -1); err == nil {
		t.Error("nil probe accepted")
	}
	probe := func(ctx context.Context, i int) (float64, error) { return 1, nil }
	if _, err := e.APro(context.Background(), sel, func(int) string { return "x" }, probe, nil, 0.5, -1); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := e.APro(context.Background(), sel, nil, probe, &core.Greedy{}, 0.5, -1); err == nil {
		t.Error("nil name mapping accepted")
	}
	if _, err := e.APro(context.Background(), sel, func(int) string { return "x" }, probe, &core.Greedy{}, 1.5, -1); err == nil {
		t.Error("threshold above 1 accepted")
	}
}

func TestAProMaxProbesBudget(t *testing.T) {
	e := NewExecutor(Config{Speculation: 2})
	rds := randomRDs(stats.NewRNG(5), 6)
	sel := core.NewSelectionFromRDs(rds, core.Absolute, 1)
	probes := 0
	var mu sync.Mutex
	probe := func(ctx context.Context, i int) (float64, error) {
		mu.Lock()
		probes++
		mu.Unlock()
		return rds[i].Value(0), nil
	}
	res, err := e.APro(context.Background(), sel, func(i int) string { return fmt.Sprintf("db%d", i) },
		probe, &core.Greedy{}, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes() > 3 {
		t.Fatalf("budget exceeded: %d successful probes", res.Probes())
	}
}
