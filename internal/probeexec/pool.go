package probeexec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"metaprobe/internal/obs"
)

// Limits bounds probe concurrency. The global cap is shared by every
// selection running on the executor, so a burst of concurrent queries
// cannot stampede the backends; the per-backend cap additionally keeps
// any single database from absorbing the whole pool.
type Limits struct {
	// Global is the maximum number of probes in flight across all
	// backends and all selections (default 16).
	Global int
	// PerBackend is the maximum number of probes in flight against any
	// single backend; 0 means no per-backend cap.
	PerBackend int
}

// withDefaults fills zero fields.
func (l Limits) withDefaults() Limits {
	if l.Global <= 0 {
		l.Global = 16
	}
	return l
}

// pool is a two-level counting semaphore: a global slot must be held
// for every in-flight probe, plus a per-backend slot when PerBackend
// is set. Acquisition is context-aware so a cancelled selection stops
// waiting for capacity immediately.
type pool struct {
	limits  Limits
	global  chan struct{}
	mu      sync.Mutex
	backend map[string]chan struct{}

	inflight     atomic.Int64
	inflightG    *obs.Gauge
	inflightHist *obs.Histogram
}

// newPool builds the pool, exporting mp_probe_inflight (current) and
// mp_probe_inflight_at_acquire (distribution, for p99s) to reg. A nil
// registry is fine.
func newPool(limits Limits, reg *obs.Registry) *pool {
	limits = limits.withDefaults()
	p := &pool{
		limits:       limits,
		global:       make(chan struct{}, limits.Global),
		backend:      make(map[string]chan struct{}),
		inflightG:    reg.Gauge("mp_probe_inflight", nil),
		inflightHist: reg.Histogram("mp_probe_inflight_at_acquire", nil),
	}
	reg.Help("mp_probe_inflight", "Probes currently in flight across all backends.")
	reg.Help("mp_probe_inflight_at_acquire", "In-flight probe count sampled as each probe acquires its slot.")
	return p
}

// backendSlots returns the semaphore for name, creating it lazily.
func (p *pool) backendSlots(name string) chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, ok := p.backend[name]
	if !ok {
		ch = make(chan struct{}, p.limits.PerBackend)
		p.backend[name] = ch
	}
	return ch
}

// acquire claims a slot for one probe against name, blocking until
// capacity frees up or ctx is done. The returned release must be
// called exactly once, after the underlying call returns — a hedged
// attempt keeps its slot for as long as the request is actually
// outstanding.
func (p *pool) acquire(ctx context.Context, name string) (release func(), err error) {
	select {
	case p.global <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("probeexec: waiting for probe slot: %w", ctx.Err())
	}
	var per chan struct{}
	if p.limits.PerBackend > 0 {
		per = p.backendSlots(name)
		select {
		case per <- struct{}{}:
		case <-ctx.Done():
			<-p.global
			return nil, fmt.Errorf("probeexec: waiting for %s slot: %w", name, ctx.Err())
		}
	}
	n := p.inflight.Add(1)
	p.inflightG.Set(float64(n))
	p.inflightHist.Observe(float64(n))
	var once sync.Once
	return func() {
		once.Do(func() {
			p.inflightG.Set(float64(p.inflight.Add(-1)))
			if per != nil {
				<-per
			}
			<-p.global
		})
	}, nil
}

// Inflight returns the number of probes currently holding slots.
func (p *pool) Inflight() int64 { return p.inflight.Load() }
