package probeexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// ErrBreakerOpen is returned (wrapped) when a backend's circuit
// breaker rejects a probe without contacting the backend.
var ErrBreakerOpen = errors.New("probeexec: circuit breaker open")

// Config tunes an Executor.
type Config struct {
	// Limits bounds probe concurrency (see Limits).
	Limits Limits
	// Speculation is the number of policy candidates each APro round
	// probes concurrently; 0 or 1 reproduces the paper's sequential
	// greedy loop exactly.
	Speculation int
	// HedgeAfter, when positive, launches a second attempt for a probe
	// that has not answered after this long; the first answer wins and
	// the loser is cancelled. 0 disables hedging.
	HedgeAfter time.Duration
	// ProbeTimeout bounds each probe (including its hedge) end to end;
	// 0 means no per-probe deadline beyond the caller's context.
	ProbeTimeout time.Duration
	// Breaker tunes the per-backend circuit breakers.
	Breaker BreakerConfig
	// Metrics receives executor metrics; nil disables them.
	Metrics *obs.Registry
}

// Executor runs probes with pooling, breakers and hedging. It is safe
// for concurrent use by any number of selections; breakers and pool
// slots are shared across them, keyed by backend name.
type Executor struct {
	cfg  Config
	pool *pool
	now  func() time.Time

	mu       sync.Mutex
	breakers map[string]*breaker

	hedges    *obs.Counter
	hedgeWins *obs.Counter
	degraded  *obs.Counter
	specWaste *obs.Counter
}

// NewExecutor builds an executor from cfg, registering its metrics
// (mp_probe_inflight, mp_breaker_state per backend, mp_probe_hedges_total,
// mp_selections_degraded_total) in cfg.Metrics.
func NewExecutor(cfg Config) *Executor {
	reg := cfg.Metrics
	e := &Executor{
		cfg:       cfg,
		pool:      newPool(cfg.Limits, reg),
		now:       time.Now,
		breakers:  make(map[string]*breaker),
		hedges:    reg.Counter("mp_probe_hedges_total", nil),
		hedgeWins: reg.Counter("mp_probe_hedge_wins_total", nil),
		degraded:  reg.Counter("mp_selections_degraded_total", nil),
		specWaste: reg.Counter("mp_probes_speculative_cancelled_total", nil),
	}
	reg.Help("mp_probe_hedges_total", "Hedged (second) probe attempts launched after HedgeAfter.")
	reg.Help("mp_probe_hedge_wins_total", "Probes whose hedged attempt answered before the original.")
	reg.Help("mp_selections_degraded_total", "Selections completed with one or more backends excluded.")
	reg.Help("mp_probes_speculative_cancelled_total", "Speculative probes cancelled because the round reached its threshold early.")
	reg.Help("mp_breaker_state", "Circuit-breaker state per backend: 0 closed, 1 half-open, 2 open.")
	return e
}

// breakerFor returns the breaker for name, creating it (and its state
// gauge) on first use.
func (e *Executor) breakerFor(name string) *breaker {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.breakers[name]
	if !ok {
		b = newBreaker(e.cfg.Breaker, e.now)
		e.breakers[name] = b
		e.cfg.Metrics.GaugeFunc("mp_breaker_state", obs.Labels{"backend": name}, func() float64 {
			return float64(b.State())
		})
	}
	return b
}

// BreakerState reports the current breaker state for a backend
// (BreakerClosed for backends never probed).
func (e *Executor) BreakerState(name string) BreakerState {
	e.mu.Lock()
	b := e.breakers[name]
	e.mu.Unlock()
	if b == nil {
		return BreakerClosed
	}
	return b.State()
}

// Inflight returns the number of probes currently in flight.
func (e *Executor) Inflight() int64 { return e.pool.Inflight() }

// attemptResult is one attempt's answer.
type attemptResult struct {
	v     float64
	err   error
	hedge bool
}

// Probe runs fn against the named backend under the executor's
// resilience machinery: the breaker must admit it, a pool slot bounds
// it, ProbeTimeout caps it, and with hedging enabled a second attempt
// races the first after HedgeAfter. The winning attempt's answer is
// returned; the loser is cancelled and its (eventual) result
// discarded. One outcome per call is fed back to the breaker —
// caller cancellation is recorded as neutral, not as a backend
// failure.
func (e *Executor) Probe(ctx context.Context, name string, fn func(ctx context.Context) (float64, error)) (float64, error) {
	acct := obs.CostFromContext(ctx)
	ctx, ps := span.Start(ctx, "probe")
	ps.SetAttr("backend", name)
	br := e.breakerFor(name)
	stateBefore := br.State()
	if !br.Allow() {
		err := fmt.Errorf("probeexec: %s: %w", name, ErrBreakerOpen)
		ps.AddEvent("breaker_rejected", "state", br.State().String())
		ps.EndErr(err)
		return 0, err
	}
	parent := ctx
	if e.cfg.ProbeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.ProbeTimeout)
		defer cancel()
	}
	attemptCtx, cancelAttempts := context.WithCancel(ctx)
	defer cancelAttempts()

	// record feeds the breaker and closes the probe span, emitting a
	// breaker_transition event when this probe's outcome moved the
	// state machine.
	record := func(o probeOutcome, err error) {
		br.Record(o)
		if after := br.State(); after != stateBefore {
			ps.AddEvent("breaker_transition", "from", stateBefore.String(), "to", after.String())
		}
		ps.EndErr(err)
	}

	// Buffered to both attempts: a loser can always deliver and exit.
	results := make(chan attemptResult, 2)
	launch := func(hedge bool) {
		go func() {
			start := time.Now()
			actx, as := span.Start(attemptCtx, "probe.attempt")
			if hedge {
				as.SetAttr("hedge", "true")
			}
			release, err := e.pool.acquire(actx, name)
			if err != nil {
				acct.AddProbe(name, time.Since(start), true)
				as.EndErr(err)
				results <- attemptResult{err: err, hedge: hedge}
				return
			}
			defer release()
			v, err := fn(actx)
			acct.AddProbe(name, time.Since(start), err != nil)
			as.EndErr(err)
			results <- attemptResult{v: v, err: err, hedge: hedge}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if e.cfg.HedgeAfter > 0 {
		t := time.NewTimer(e.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := 1
	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedge {
					e.hedgeWins.Inc()
					acct.AddHedgeWin()
					ps.SetAttr("hedge_won", "true")
				}
				record(probeSuccess, nil)
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding > 0 {
				// The other attempt may still succeed.
				continue
			}
			record(classify(parent, firstErr), firstErr)
			return 0, firstErr
		case <-hedgeC:
			hedgeC = nil
			outstanding++
			e.hedges.Inc()
			acct.AddHedge()
			ps.AddEvent("hedge_launched")
			launch(true)
		}
	}
}

// classify maps a probe error to its breaker outcome: errors caused by
// the caller's own context going away are neutral; everything else —
// including a ProbeTimeout deadline, which is the backend being slow —
// counts against the backend.
func classify(parent context.Context, err error) probeOutcome {
	if parent.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return probeCancelled
	}
	return probeFailure
}
