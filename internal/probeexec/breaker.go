// Package probeexec is the concurrent probe-execution engine: it owns
// how live probes reach hidden databases — bounded worker pools,
// per-backend circuit breakers, optional request hedging — and runs a
// speculative variant of the paper's APro loop on top. With
// speculation m=1 (the default) the engine reproduces the sequential
// greedy algorithm exactly; m>1 trades extra probes for wall-clock
// latency. Backend failures degrade the selection gracefully instead
// of failing it: broken databases are excluded and the result is
// flagged Degraded.
package probeexec

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state for one backend.
type BreakerState int32

const (
	// BreakerClosed admits all probes (healthy backend).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits one trial probe after the cooldown.
	BreakerHalfOpen
	// BreakerOpen rejects probes until the cooldown elapses.
	BreakerOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-backend circuit breakers.
type BreakerConfig struct {
	// Disabled turns breakers off entirely (every probe is admitted).
	Disabled bool
	// FailureThreshold is the number of consecutive failures that opens
	// the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects probes before
	// admitting a half-open trial (default 30s).
	Cooldown time.Duration
	// HalfOpenSuccesses is the number of consecutive trial successes
	// that close a half-open breaker (default 1).
	HalfOpenSuccesses int
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 1
	}
	return c
}

// probeOutcome classifies how a probe ended for breaker accounting.
type probeOutcome int

const (
	probeSuccess probeOutcome = iota
	probeFailure
	// probeCancelled means the caller abandoned the probe (hedge loser,
	// speculation cancelled, selection done). It says nothing about the
	// backend's health and must not move the breaker.
	probeCancelled
)

// breaker is a closed → open → half-open circuit breaker for one
// backend. Consecutive failures open it; while open, probes are
// rejected without touching the backend; after the cooldown a single
// trial probe is admitted at a time, and enough trial successes close
// it again.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures (closed state)
	successes int       // consecutive trial successes (half-open state)
	openedAt  time.Time // when the breaker last opened
	inTrial   bool      // a half-open trial probe is in flight
}

// newBreaker returns a closed breaker; now defaults to time.Now.
func newBreaker(cfg BreakerConfig, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{cfg: cfg.withDefaults(), now: now}
}

// Allow reports whether a probe may proceed, transitioning an expired
// open breaker to half-open. A true return from a half-open breaker
// claims the single trial slot; the caller must invoke Record with the
// probe's outcome to release it.
func (b *breaker) Allow() bool {
	if b.cfg.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.successes = 0
		b.inTrial = true
		return true
	case BreakerHalfOpen:
		if b.inTrial {
			return false
		}
		b.inTrial = true
		return true
	}
	return false
}

// Record feeds one probe outcome back. Cancelled probes release the
// trial slot without moving the state: a hedge loser or an abandoned
// speculation is not evidence about the backend.
func (b *breaker) Record(o probeOutcome) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.inTrial = false
	}
	switch o {
	case probeCancelled:
		return
	case probeSuccess:
		switch b.state {
		case BreakerClosed:
			b.failures = 0
		case BreakerHalfOpen:
			b.successes++
			if b.successes >= b.cfg.HalfOpenSuccesses {
				b.state = BreakerClosed
				b.failures = 0
			}
		}
	case probeFailure:
		switch b.state {
		case BreakerClosed:
			b.failures++
			if b.failures >= b.cfg.FailureThreshold {
				b.open()
			}
		case BreakerHalfOpen:
			// The trial failed: back to a full cooldown.
			b.open()
		}
	}
}

// open transitions to the open state (mu held).
func (b *breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.successes = 0
	b.inTrial = false
}

// State returns the current state without transitioning it.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
