package probeexec

import (
	"context"
	"sync"
	"testing"
	"time"

	"metaprobe/internal/obs"
	"metaprobe/internal/obs/span"
)

// TestProbeSpanPropagationAcrossPool verifies that the trace context
// survives the pool handoff: the probe function runs on an executor
// goroutine, yet the span it sees via ctx must belong to the caller's
// trace, and the recorded tree must nest probe.attempt under probe
// under the caller's root. Run with -race: many concurrent selections
// share one tracer.
func TestProbeSpanPropagationAcrossPool(t *testing.T) {
	tr := span.NewTracer(0)
	e := NewExecutor(Config{Limits: Limits{Global: 4}})
	const callers = 8
	seen := make([]string, callers) // trace ID observed inside the probe fn
	roots := make([]string, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, root := tr.Start(context.Background(), "selection")
			roots[c] = root.Trace()
			_, err := e.Probe(ctx, "db", func(ctx context.Context) (float64, error) {
				seen[c] = span.FromContext(ctx).Trace()
				return 1, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
			}
			root.End()
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if seen[c] == "" || seen[c] != roots[c] {
			t.Errorf("caller %d: probe fn saw trace %q, want %q", c, seen[c], roots[c])
		}
		spans := tr.TraceSpans(roots[c])
		byName := map[string]*span.Span{}
		for _, s := range spans {
			byName[s.Name] = s
		}
		probe, attempt := byName["probe"], byName["probe.attempt"]
		if probe == nil || attempt == nil {
			t.Fatalf("caller %d: trace holds %d spans, missing probe/probe.attempt", c, len(spans))
		}
		if probe.Attrs["backend"] != "db" {
			t.Errorf("caller %d: probe backend attr = %q", c, probe.Attrs["backend"])
		}
		if attempt.ParentID != probe.SpanID {
			t.Errorf("caller %d: attempt parented to %q, want probe %q", c, attempt.ParentID, probe.SpanID)
		}
	}
}

// TestHedgedDuplicateSpansShareTrace verifies that a hedged probe's
// two attempts record as sibling probe.attempt spans of one trace —
// the loser included, even though it ends after the probe returns —
// and that the hedge is charged to the context's cost account.
func TestHedgedDuplicateSpansShareTrace(t *testing.T) {
	tr := span.NewTracer(0)
	acct := obs.NewCostAccount()
	e := NewExecutor(Config{HedgeAfter: 5 * time.Millisecond})
	ctx, root := tr.Start(context.Background(), "selection")
	ctx = obs.WithCost(ctx, acct)
	var mu sync.Mutex
	calls := 0
	v, err := e.Probe(ctx, "slow", func(ctx context.Context) (float64, error) {
		mu.Lock()
		n := calls
		calls++
		mu.Unlock()
		if n == 0 {
			<-ctx.Done() // original hangs until the hedge wins
			return 0, ctx.Err()
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("v=%v err=%v, want hedge's 42", v, err)
	}
	root.End()

	// The losing attempt's span ends on its own goroutine after Probe
	// returns; wait for both attempts to land in the store.
	var attempts []*span.Span
	deadline := time.Now().Add(2 * time.Second)
	for {
		attempts = attempts[:0]
		for _, s := range tr.TraceSpans(root.Trace()) {
			if s.Name == "probe.attempt" {
				attempts = append(attempts, s)
			}
		}
		if len(attempts) == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if len(attempts) != 2 {
		t.Fatalf("recorded %d probe.attempt spans, want 2", len(attempts))
	}
	hedged := 0
	for _, a := range attempts {
		if a.Attrs["hedge"] == "true" {
			hedged++
		}
		if a.TraceID != root.Trace() {
			t.Errorf("attempt on trace %q, want %q", a.TraceID, root.Trace())
		}
	}
	if hedged != 1 {
		t.Errorf("hedge-marked attempts = %d, want 1", hedged)
	}
	sum := acct.Summary()
	if sum.HedgesLaunched != 1 || sum.HedgesWon != 1 || sum.HedgesWasted != 0 {
		t.Errorf("cost account hedges = %+v, want 1 launched, 1 won", sum)
	}
	// Both attempts issued a wire call; each is charged.
	if sum.ProbesIssued != 2 {
		t.Errorf("probes issued = %d, want 2 (original + hedge)", sum.ProbesIssued)
	}
}
