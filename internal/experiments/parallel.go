package experiments

import (
	"runtime"
	"sync"
)

// evalParallel runs f(i, add) for i in [0, n) across GOMAXPROCS
// workers. The add callback serializes result accumulation: updates
// passed to it run under a shared mutex, so worker bodies can stay
// lock-free and fold their results in one critical section.
func evalParallel(n int, f func(i int, add func(update func()))) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var mu sync.Mutex
	add := func(update func()) {
		mu.Lock()
		defer mu.Unlock()
		update()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i, add)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i, add)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
