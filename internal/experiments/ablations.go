package experiments

import (
	"fmt"

	"metaprobe/internal/core"
	"metaprobe/internal/eval"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// AblationPolicies (A1) compares probe policies: for a fixed certainty
// threshold, the average number of probes each policy spends and the
// realized correctness. The greedy policy should dominate the naive
// baselines; the exact optimal policy is run on a truncated testbed
// (its cost is factorial, Section 5.3).
func AblationPolicies(env *Env, t float64, k int) (*Table, error) {
	table := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Ablation A1: probe policies (t=%.2f, k=%d, %s metric)", t, k, core.Absolute),
		Columns: []string{"policy", "avg probes", "Avg(Cor_a)", "Avg(Cor_p)", "reached t"},
	}
	policies := []core.Policy{
		&core.Greedy{},
		&core.Random{RNG: stats.NewRNG(env.Cfg.Seed).Fork(99)},
		core.ByEstimate{},
		core.MaxEntropy{},
	}
	for _, policy := range policies {
		row, err := runPolicy(env, policy, t, k)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// runPolicy evaluates one policy over the golden standard.
func runPolicy(env *Env, policy core.Policy, t float64, k int) ([]string, error) {
	var probes, corA, corP, reached float64
	var firstErr error
	evalParallel(len(env.Golden), func(qi int, add func(update func())) {
		g := env.Golden[qi]
		sel := env.Selection(g.Query, core.Absolute, k)
		out, err := core.APro(sel, env.Probe(g.Query.String()), policy, t, -1)
		if err != nil {
			add(func() { firstErr = err })
			return
		}
		topk := core.TopKByScore(g.Actual, k)
		ca, cp := eval.CorA(out.Set, topk), eval.CorP(out.Set, topk)
		p := float64(out.Probes())
		r := 0.0
		if out.Reached {
			r = 1
		}
		add(func() { probes += p; corA += ca; corP += cp; reached += r })
	})
	if firstErr != nil {
		return nil, firstErr
	}
	n := float64(len(env.Golden))
	return []string{policy.Name(), f2(probes / n), f3(corA / n), f3(corP / n), f3(reached / n)}, nil
}

// AblationOptimalPolicy (A1b) compares the greedy policy against the
// exact expectimin-optimal policy (Section 5.3: cost O(n!), so the
// testbed is truncated to a handful of databases). The shape to
// observe: greedy spends nearly as few probes as optimal at a tiny
// fraction of the computational cost.
func AblationOptimalPolicy(base Config, numDBs int, t float64) (*Table, error) {
	if numDBs <= 0 || numDBs > 7 {
		numDBs = 5
	}
	cfg := base
	cfg.MaxDatabases = numDBs
	// The optimal policy's recursion is exponential in support sizes;
	// keep the evaluation set modest.
	if cfg.Test2 > 40 {
		cfg.Test2 = 40
	}
	if cfg.Test3 > 40 {
		cfg.Test3 = 40
	}
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "A1b",
		Title:   fmt.Sprintf("Ablation A1b: greedy vs. exact optimal probing (%d databases, t=%.2f, k=1)", numDBs, t),
		Columns: []string{"policy", "avg probes", "Avg(Cor_a)", "Avg(Cor_p)", "reached t"},
		Notes:   []string{"the optimal policy is expectimin over probe orders and outcomes — O(n!) as the paper notes"},
	}
	policies := []core.Policy{
		&core.Greedy{},
		&core.Optimal{MaxDBs: numDBs},
		&core.Random{RNG: stats.NewRNG(cfg.Seed).Fork(123)},
	}
	for _, policy := range policies {
		row, err := runPolicy(env, policy, t, 1)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// AblationTypeThreshold (A2) re-trains the model with different
// query-type split thresholds θ (Section 4.1 studied this choice) and
// reports RD-based selection quality for each.
func AblationTypeThreshold(env *Env, thresholds []float64, k int) (*Table, error) {
	table := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Ablation A2: query-type threshold θ (RD-based, k=%d)", k),
		Columns: []string{"θ", "Avg(Cor_a)", "Avg(Cor_p)"},
		Notes:   []string{"the paper found θ=100 a good split on full-size collections; scaled testbeds shift the sweet spot"},
	}
	for _, th := range thresholds {
		cfg := env.Cfg.Model
		cfg.Classifier = core.Classifier{Threshold: th, MaxTerms: cfg.Classifier.MaxTerms}
		model, err := core.Train(env.Testbed, env.Summaries, env.Rel, env.Train, cfg)
		if err != nil {
			return nil, err
		}
		score, err := scoreRDSelection(env, model, k)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%g", th), f3(score.AvgCorA), f3(score.AvgCorP))
	}
	return table, nil
}

// AblationEDBins (A3) varies the histogram resolution and the bin
// representative (per-bin mean vs midpoint).
func AblationEDBins(env *Env, k int) (*Table, error) {
	table := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Ablation A3: ED binning (RD-based, k=%d)", k),
		Columns: []string{"bins", "representative", "Avg(Cor_a)", "Avg(Cor_p)"},
	}
	coarse := []float64{-1, -0.5, 0, 0.5, 1.5, 1e18}
	standard := core.DefaultErrorEdges()
	fine := []float64{-1, -0.95, -0.9, -0.8, -0.7, -0.6, -0.5, -0.4, -0.3, -0.2, -0.1, -0.03,
		0.03, 0.1, 0.2, 0.35, 0.5, 0.75, 1, 1.5, 2, 3, 4, 6, 1e18}
	cases := []struct {
		label   string
		edges   []float64
		binMean bool
	}{
		{"coarse (5)", coarse, true},
		{"default (12)", standard, true},
		{"fine (24)", fine, true},
		{"default (12)", standard, false},
	}
	for _, c := range cases {
		cfg := env.Cfg.Model
		cfg.ErrorEdges = c.edges
		cfg.UseBinMean = c.binMean
		model, err := core.Train(env.Testbed, env.Summaries, env.Rel, env.Train, cfg)
		if err != nil {
			return nil, err
		}
		score, err := scoreRDSelection(env, model, k)
		if err != nil {
			return nil, err
		}
		rep := "bin mean"
		if !c.binMean {
			rep = "midpoint"
		}
		table.AddRow(c.label, rep, f3(score.AvgCorA), f3(score.AvgCorP))
	}
	return table, nil
}

// AblationTrainingSize (A4) trains on nested prefixes of the training
// set, the end-to-end counterpart of the Figure 7/8 sampling study.
func AblationTrainingSize(env *Env, sizes []int, k int) (*Table, error) {
	table := &Table{
		ID:      "A4",
		Title:   fmt.Sprintf("Ablation A4: training-set size (RD-based, k=%d)", k),
		Columns: []string{"training queries", "Avg(Cor_a)", "Avg(Cor_p)"},
	}
	for _, size := range sizes {
		if size > len(env.Train) {
			size = len(env.Train)
		}
		model, err := core.Train(env.Testbed, env.Summaries, env.Rel, env.Train[:size], env.Cfg.Model)
		if err != nil {
			return nil, err
		}
		score, err := scoreRDSelection(env, model, k)
		if err != nil {
			return nil, err
		}
		table.AddRow(fmt.Sprintf("%d", size), f3(score.AvgCorA), f3(score.AvgCorP))
	}
	return table, nil
}

// AblationProbeCosts (A5) assigns synthetic per-database probe costs
// (large databases cost more, as real ones do) and compares the
// cost-aware greedy against the cost-blind one on total probing cost.
func AblationProbeCosts(env *Env, t float64, k int) (*Table, error) {
	costs := make([]float64, env.Testbed.Len())
	for i := range costs {
		// Cost grows with collection size: 1 + log10(size).
		size := env.Summaries.Summaries[i].Size
		costs[i] = 1
		for s := size; s >= 10; s /= 10 {
			costs[i]++
		}
	}
	table := &Table{
		ID:      "A5",
		Title:   fmt.Sprintf("Ablation A5: non-uniform probe costs (t=%.2f, k=%d)", t, k),
		Columns: []string{"policy", "avg probes", "avg cost", "Avg(Cor_a)"},
		Notes:   []string{"probe cost per database: 1 + ⌊log10(size)⌋"},
	}
	for _, c := range []struct {
		label  string
		policy core.Policy
	}{
		{"greedy (cost-blind)", &core.Greedy{}},
		{"greedy (cost-aware)", &core.Greedy{Cost: func(i int) float64 { return costs[i] }}},
	} {
		var probes, cost, corA float64
		var firstErr error
		evalParallel(len(env.Golden), func(qi int, add func(update func())) {
			g := env.Golden[qi]
			sel := env.Selection(g.Query, core.Absolute, k)
			out, err := core.APro(sel, env.Probe(g.Query.String()), c.policy, t, -1)
			if err != nil {
				add(func() { firstErr = err })
				return
			}
			var qc float64
			for _, s := range out.Steps {
				if s.Err == nil {
					qc += costs[s.DB]
				}
			}
			ca := eval.CorA(out.Set, core.TopKByScore(g.Actual, k))
			p := float64(out.Probes())
			add(func() { probes += p; cost += qc; corA += ca })
		})
		if firstErr != nil {
			return nil, firstErr
		}
		n := float64(len(env.Golden))
		table.AddRow(c.label, f2(probes/n), f2(cost/n), f3(corA/n))
	}
	return table, nil
}

// scoreRDSelection scores a model's RD-based (no probing) selection on
// the environment's golden standard.
func scoreRDSelection(env *Env, model *core.Model, k int) (eval.MethodScore, error) {
	return eval.Score(env.Golden, k, func(q queries.Query) ([]int, int, error) {
		sel := model.NewSelection(q.String(), q.NumTerms(), core.Absolute, k).
			WithBestSetOptions(env.Cfg.BestSetOpts)
		set, _ := sel.Best()
		return set, 0, nil
	})
}
