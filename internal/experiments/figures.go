package experiments

import (
	"errors"
	"fmt"
	"sort"

	"metaprobe/internal/core"
	"metaprobe/internal/eval"
	"metaprobe/internal/queries"
	"metaprobe/internal/stats"
)

// Figure14 reproduces the testbed inventory table ("Sample Web
// databases used in our experiment"): name, category, collection size
// and vocabulary size per mediated database.
func Figure14(env *Env) *Table {
	t := &Table{
		ID:      "F14",
		Title:   "Figure 14: databases mediated by the metasearcher",
		Columns: []string{"database", "category", "documents", "distinct terms"},
		Notes: []string{
			fmt.Sprintf("sizes scaled by %g from the paper's 300–160000 range", env.Cfg.Scale),
		},
	}
	for i, spec := range env.Specs {
		sum := env.Summaries.Summaries[i]
		t.AddRow(spec.Name, spec.Category, fmt.Sprintf("%d", sum.Size), fmt.Sprintf("%d", len(sum.DF)))
	}
	return t
}

// Figure9 reproduces the per-type error distributions of one database
// (Figure 9's decision-tree leaves): for each query type, the number
// of training observations and the ED's bin probabilities.
func Figure9(env *Env, dbName string) (*Table, error) {
	idx := env.Testbed.IndexOf(dbName)
	if idx < 0 {
		return nil, fmt.Errorf("experiments: unknown database %q", dbName)
	}
	dm := env.Model.DBs[idx]
	t := &Table{
		ID:      "F9",
		Title:   fmt.Sprintf("Figure 9: per-query-type error distributions on %s", dbName),
		Columns: []string{"query type", "observations", "mean err", "P(err<-5%)", "P(|err|<=5%)", "P(err>5%)"},
		Notes: []string{
			"zero-band rows report the distribution of absolute relevancy instead of relative error",
		},
	}
	keys := make([]core.TypeKey, 0, len(dm.EDs))
	for key := range dm.EDs {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Terms != keys[j].Terms {
			return keys[i].Terms < keys[j].Terms
		}
		return keys[i].Band < keys[j].Band
	})
	for _, key := range keys {
		ed := dm.EDs[key]
		var lo, mid, hi, mean, mass float64
		for i := 0; i < ed.Hist.Bins(); i++ {
			p := ed.Hist.Prob(i)
			if p == 0 {
				continue
			}
			rep := ed.Hist.BinMean(i)
			mean += p * rep
			mass += p
			switch {
			case rep < -0.05:
				lo += p
			case rep <= 0.05:
				mid += p
			default:
				hi += p
			}
		}
		t.AddRow(key.String(), fmt.Sprintf("%d", ed.Observations()),
			f3(mean), f3(lo), f3(mid), f3(hi))
	}
	return t, nil
}

// Figure15 reproduces the headline comparison table: the
// term-independence estimator baseline versus RD-based selection
// (no probing), reporting Avg(Cor_a) and Avg(Cor_p) for each k.
func Figure15(env *Env, ks []int) (*Table, error) {
	t := &Table{
		ID:      "F15",
		Title:   "Figure 15: RD-based database selection vs. the term-independence estimator",
		Columns: []string{"method", "k", "Avg(Cor_a)", "Avg(Cor_p)"},
		Notes: []string{
			fmt.Sprintf("%d test queries; paper (k=1): baseline 0.507 → RD-based 0.700 (+38.2%%)", len(env.Golden)),
		},
	}
	for _, k := range ks {
		base, err := eval.Score(env.Golden, k, func(q queries.Query) ([]int, int, error) {
			sel := env.Selection(q, core.Absolute, k)
			return sel.BaselineSelect(), 0, nil
		})
		if err != nil {
			return nil, err
		}
		// The RD-based method optimizes the metric it is scored on; as
		// in the paper, report the absolute-optimizing variant's CorA
		// and the partial-optimizing variant's CorP.
		rdAbs, err := eval.Score(env.Golden, k, func(q queries.Query) ([]int, int, error) {
			sel := env.Selection(q, core.Absolute, k)
			set, _ := sel.Best()
			return set, 0, nil
		})
		if err != nil {
			return nil, err
		}
		rdPart, err := eval.Score(env.Golden, k, func(q queries.Query) ([]int, int, error) {
			sel := env.Selection(q, core.Partial, k)
			set, _ := sel.Best()
			return set, 0, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow("term-independence (baseline)", fmt.Sprintf("%d", k), f3(base.AvgCorA), f3(base.AvgCorP))
		t.AddRow("RD-based, no probing", fmt.Sprintf("%d", k), f3(rdAbs.AvgCorA), f3(rdPart.AvgCorP))

		// Paired significance: is the RD-based improvement real?
		baseHits := make([]bool, len(env.Golden))
		rdHits := make([]bool, len(env.Golden))
		for qi, g := range env.Golden {
			topk := g.TopK(k)
			sel := env.Selection(g.Query, core.Absolute, k)
			baseHits[qi] = eval.CorA(sel.BaselineSelect(), topk) == 1
			set, _ := sel.Best()
			rdHits[qi] = eval.CorA(set, topk) == 1
		}
		mn, err := stats.McNemar(baseHits, rdHits)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"k=%d McNemar: RD fixed %d baseline errors, introduced %d (p = %.2g)",
			k, mn.Discordant01, mn.Discordant10, mn.PValue))

		// Bootstrap error bars on the headline number.
		rdVals := make([]float64, len(rdHits))
		for i, h := range rdHits {
			if h {
				rdVals[i] = 1
			}
		}
		lo, hi, err := stats.BootstrapCI(rdVals, 0.95, 1000, stats.NewRNG(7))
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("k=%d RD-based Cor_a 95%% CI: [%.3f, %.3f]", k, lo, hi))
	}
	return t, nil
}

// figure16Panel identifies one panel of Figure 16.
type figure16Panel struct {
	label  string
	k      int
	metric core.Metric
}

// Figure16 reproduces the probing-impact curves: average correctness
// of APro's current best answer after 0, 1, ..., maxProbes probes,
// with the flat term-independence baseline for comparison. Panels:
// (a) k=1, (b) k=3 absolute, (c) k=3 partial.
func Figure16(env *Env, maxProbes int) (*Table, error) {
	panels := []figure16Panel{
		{"(a) k=1", 1, core.Absolute},
		{"(b) k=3 absolute", 3, core.Absolute},
		{"(c) k=3 partial", 3, core.Partial},
	}
	cols := []string{"series"}
	for p := 0; p <= maxProbes; p++ {
		cols = append(cols, fmt.Sprintf("%d", p))
	}
	t := &Table{
		ID:      "F16",
		Title:   "Figure 16: average correctness vs. number of probes (greedy policy)",
		Columns: cols,
		Notes: []string{
			"column p = average correctness of the best set after p probes",
			"baseline rows are flat: the estimator ignores probing",
		},
	}
	for _, panel := range panels {
		curve, baseline, err := probingCurve(env, panel.k, panel.metric, maxProbes)
		if err != nil {
			return nil, err
		}
		row := []string{panel.label + " APro"}
		for _, v := range curve {
			row = append(row, f3(v))
		}
		t.Rows = append(t.Rows, row)
		base := []string{panel.label + " baseline"}
		for range curve {
			base = append(base, f3(baseline))
		}
		t.Rows = append(t.Rows, base)
	}
	return t, nil
}

// probingCurve computes, for one (k, metric) panel, the average
// correctness of the reported best set after each probe count, plus
// the flat baseline average.
func probingCurve(env *Env, k int, metric core.Metric, maxProbes int) ([]float64, float64, error) {
	sums := make([]float64, maxProbes+1)
	var baselineSum float64
	cor := func(set, topk []int) float64 {
		if metric == core.Absolute {
			return eval.CorA(set, topk)
		}
		return eval.CorP(set, topk)
	}
	var firstErr error
	evalParallel(len(env.Golden), func(qi int, add func(update func())) {
		g := env.Golden[qi]
		topk := core.TopKByScore(g.Actual, k)
		sel := env.Selection(g.Query, metric, k)
		baseCor := cor(sel.BaselineSelect(), topk)

		greedy := &core.Greedy{}
		curve := make([]float64, maxProbes+1)
		probe := env.Probe(g.Query.String())
		for p := 0; p <= maxProbes; p++ {
			set, _ := sel.Best()
			curve[p] = cor(set, topk)
			if p == maxProbes {
				break
			}
			unprobed := sel.Unprobed()
			if len(unprobed) == 0 {
				for rest := p + 1; rest <= maxProbes; rest++ {
					curve[rest] = curve[p]
				}
				break
			}
			i, err := greedy.Next(sel, 1)
			if errors.Is(err, core.ErrNoInformativeProbe) {
				// Every remaining unprobed RD is an impulse: further
				// probes cannot move the selection, so the curve stays
				// flat for the rest of the budget.
				for rest := p + 1; rest <= maxProbes; rest++ {
					curve[rest] = curve[p]
				}
				break
			}
			if err != nil {
				add(func() { firstErr = err })
				return
			}
			v, err := probe(i)
			if err != nil {
				add(func() { firstErr = err })
				return
			}
			sel.ApplyProbe(i, v)
		}
		add(func() {
			baselineSum += baseCor
			for p := range curve {
				sums[p] += curve[p]
			}
		})
	})
	if firstErr != nil {
		return nil, 0, firstErr
	}
	n := float64(len(env.Golden))
	for p := range sums {
		sums[p] /= n
	}
	return sums, baselineSum / n, nil
}

// Figure17 reproduces the cost-of-certainty curve: the average number
// of probes APro needs to reach each user-required threshold t.
func Figure17(env *Env, thresholds []float64) (*Table, error) {
	if len(thresholds) == 0 {
		thresholds = []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95}
	}
	cols := []string{"series"}
	for _, t := range thresholds {
		cols = append(cols, f2(t))
	}
	table := &Table{
		ID:      "F17",
		Title:   "Figure 17: average number of probes to reach the user-required certainty t",
		Columns: cols,
	}
	series := []figure16Panel{
		{"k=1", 1, core.Absolute},
		{"k=3 absolute", 3, core.Absolute},
		{"k=3 partial", 3, core.Partial},
	}
	for _, s := range series {
		row := []string{s.label}
		for _, th := range thresholds {
			avg, err := avgProbesAtThreshold(env, s.k, s.metric, th)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(avg))
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// avgProbesAtThreshold runs APro over the test set at one threshold and
// returns the average number of successful probes.
func avgProbesAtThreshold(env *Env, k int, metric core.Metric, t float64) (float64, error) {
	var total float64
	var firstErr error
	evalParallel(len(env.Golden), func(qi int, add func(update func())) {
		g := env.Golden[qi]
		sel := env.Selection(g.Query, metric, k)
		out, err := core.APro(sel, env.Probe(g.Query.String()), &core.Greedy{}, t, -1)
		if err != nil {
			add(func() { firstErr = err })
			return
		}
		p := float64(out.Probes())
		add(func() { total += p })
	})
	if firstErr != nil {
		return 0, firstErr
	}
	return total / float64(len(env.Golden)), nil
}
