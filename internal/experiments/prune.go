package experiments

import (
	"fmt"

	"metaprobe/internal/core"
	"metaprobe/internal/eval"
	"metaprobe/internal/queries"
	"metaprobe/internal/summary"
)

// PrunedSummariesStudy (E-PRUNE) measures the cost of bounding summary
// storage: a metasearcher mediating hundreds of thousands of sources
// cannot keep every source's full vocabulary, so summaries keep only
// their top-N terms. For each budget, the model is retrained on the
// pruned summaries and RD-based selection is scored (k=1). The error
// model partially compensates for the terms the estimator can no
// longer see (they fall into the learned zero-estimate band).
func PrunedSummariesStudy(env *Env, budgets []int) (*Table, error) {
	if len(budgets) == 0 {
		budgets = []int{100, 250, 500, 1000, 0}
	}
	table := &Table{
		ID:      "EPRUNE",
		Title:   "E-PRUNE: selection quality vs summary term budget (RD-based, k=1)",
		Columns: []string{"terms per summary", "baseline Cor_a", "RD-based Cor_a", "avg stored terms"},
		Notes: []string{
			"budget 'full' keeps the entire vocabulary (the Figure 15 setting)",
		},
	}
	for _, budget := range budgets {
		pruned := &summary.Set{Summaries: make([]*summary.Summary, len(env.Summaries.Summaries))}
		var stored int
		for i, s := range env.Summaries.Summaries {
			pruned.Summaries[i] = s.Prune(budget)
			stored += len(pruned.Summaries[i].DF)
		}
		model, err := core.Train(env.Testbed, pruned, env.Rel, env.Train, env.Cfg.Model)
		if err != nil {
			return nil, err
		}
		baseScore, err := eval.Score(env.Golden, 1, func(q queries.Query) ([]int, int, error) {
			ests := make([]float64, env.Testbed.Len())
			for i := range ests {
				ests[i] = env.Rel.Estimate(pruned.Summaries[i], q.String())
			}
			return core.TopKByScore(ests, 1), 0, nil
		})
		if err != nil {
			return nil, err
		}
		rdScore, err := eval.Score(env.Golden, 1, func(q queries.Query) ([]int, int, error) {
			sel := model.NewSelection(q.String(), q.NumTerms(), core.Absolute, 1).
				WithBestSetOptions(env.Cfg.BestSetOpts)
			set, _ := sel.Best()
			return set, 0, nil
		})
		if err != nil {
			return nil, err
		}
		label := "full"
		if budget > 0 {
			label = fmt.Sprintf("%d", budget)
		}
		table.AddRow(label, f3(baseScore.AvgCorA), f3(rdScore.AvgCorA),
			fmt.Sprintf("%d", stored/len(pruned.Summaries)))
	}
	return table, nil
}
