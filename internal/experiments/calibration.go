package experiments

import (
	"fmt"
	"math"

	"metaprobe/internal/core"
	"metaprobe/internal/eval"
)

// CalibrationStudy (E-CAL) validates the semantic heart of the paper:
// the expected correctness returned with an answer is meant to be a
// *probability the user can rely on* ("suppose we select the top-1
// database for 100 queries each with 0.85 certainty ... for around 85
// queries we have got the correct answer", Section 3.3). We bucket the
// RD-based answers by their reported certainty and compare the bucket's
// promise with its empirical accuracy.
func CalibrationStudy(env *Env, k int, numBuckets int) (*Table, error) {
	if numBuckets <= 0 {
		numBuckets = 5
	}
	type bucket struct {
		n        int
		promised float64
		correct  float64
	}
	buckets := make([]bucket, numBuckets)
	var firstErr error
	evalParallel(len(env.Golden), func(qi int, add func(update func())) {
		g := env.Golden[qi]
		sel := env.Selection(g.Query, core.Absolute, k)
		set, certainty := sel.Best()
		cor := eval.CorA(set, core.TopKByScore(g.Actual, k))
		bi := int(certainty * float64(numBuckets))
		if bi >= numBuckets {
			bi = numBuckets - 1
		}
		add(func() {
			buckets[bi].n++
			buckets[bi].promised += certainty
			buckets[bi].correct += cor
		})
	})
	if firstErr != nil {
		return nil, firstErr
	}

	table := &Table{
		ID:      "ECAL",
		Title:   fmt.Sprintf("E-CAL: certainty calibration of RD-based selection (k=%d, no probing)", k),
		Columns: []string{"certainty bucket", "queries", "mean promised", "empirical Cor_a", "gap"},
		Notes: []string{
			"well-calibrated certainty: empirical accuracy ≈ mean promised certainty per bucket",
		},
	}
	var worstGap float64
	for bi, b := range buckets {
		lo := float64(bi) / float64(numBuckets)
		hi := float64(bi+1) / float64(numBuckets)
		label := fmt.Sprintf("[%.2f, %.2f)", lo, hi)
		if b.n == 0 {
			table.AddRow(label, "0", "n/a", "n/a", "n/a")
			continue
		}
		promised := b.promised / float64(b.n)
		empirical := b.correct / float64(b.n)
		gap := empirical - promised
		if math.Abs(gap) > math.Abs(worstGap) && b.n >= 20 {
			worstGap = gap
		}
		table.AddRow(label, fmt.Sprintf("%d", b.n), f3(promised), f3(empirical), fmt.Sprintf("%+.3f", gap))
	}
	table.Notes = append(table.Notes, fmt.Sprintf("worst gap over buckets with ≥20 queries: %+.3f", worstGap))
	return table, nil
}
