package experiments

import (
	"fmt"

	"metaprobe/internal/core"
	"metaprobe/internal/corpus"
	"metaprobe/internal/eval"
	"metaprobe/internal/hidden"
	"metaprobe/internal/stats"
	"metaprobe/internal/textindex"
)

// DriftStudy (E-DRIFT) exercises the online-refinement extension
// (Section 8's future-work direction, implemented as
// core.Model.ObserveProbe): one database's content drifts after
// training — here a news site suddenly saturating with oncology
// coverage, the scenario the paper's "daily news websites that have
// constant update on health-related topics" framing invites — while
// the metasearcher's summary and error model go stale. We measure
// RD-based selection accuracy before the drift, after it, and after
// the model has absorbed live-probe observations.
func DriftStudy(cfg Config, driftDB string, growth float64, refreshProbes int) (*Table, error) {
	env, err := Setup(cfg)
	if err != nil {
		return nil, err
	}
	dbIdx := env.Testbed.IndexOf(driftDB)
	if dbIdx < 0 {
		return nil, fmt.Errorf("experiments: unknown drift database %q", driftDB)
	}
	local, ok := env.Testbed.DB(dbIdx).(*hidden.Local)
	if !ok {
		return nil, fmt.Errorf("experiments: drift database %q is not local", driftDB)
	}

	table := &Table{
		ID:      "EDRIFT",
		Title:   fmt.Sprintf("E-DRIFT: online refinement under content drift (%s grows %.0f%%, k=1)", driftDB, growth*100),
		Columns: []string{"phase", "overall Cor_a", "affected-query Cor_a", "affected queries"},
		Notes: []string{
			"summaries and estimates stay stale throughout; only the error model refreshes",
			fmt.Sprintf("refinement: %d live-probe observations on the drifted database", refreshProbes),
			"affected queries: those whose true top-1 is the drifted database after the drift",
		},
	}
	// record scores the stale/refreshed model overall and on the
	// queries the drift actually re-ranked.
	record := func(phase string, golden []eval.Golden) error {
		var overallN, overallHit, affectedN, affectedHit int
		for _, g := range golden {
			topk := g.TopK(1)
			sel := env.Model.NewSelection(g.Query.String(), g.Query.NumTerms(), core.Absolute, 1).
				WithBestSetOptions(env.Cfg.BestSetOpts)
			set, _ := sel.Best()
			hit := eval.CorA(set, topk) == 1
			overallN++
			if hit {
				overallHit++
			}
			if topk[0] == dbIdx {
				affectedN++
				if hit {
					affectedHit++
				}
			}
		}
		affected := "n/a"
		if affectedN > 0 {
			affected = f3(float64(affectedHit) / float64(affectedN))
		}
		table.AddRow(phase, f3(float64(overallHit)/float64(overallN)), affected, fmt.Sprintf("%d", affectedN))
		return nil
	}

	// Phase 1: before the drift.
	if err := record("before drift", env.Golden); err != nil {
		return nil, err
	}

	// The drift: the database gains growth×size new documents with a
	// sharply different topic profile.
	driftSpec := corpus.DatabaseSpec{
		Name:            driftDB + "-drift",
		NumDocs:         int(float64(local.Size())*growth) + 1,
		MeanDocLen:      25,
		TopicWeights:    map[string]float64{"oncology": 6, "infectious": 2},
		ConceptAffinity: 0.5,
	}
	newDocs, err := env.World.Generate(driftSpec, stats.NewRNG(cfg.Seed).Fork(999))
	if err != nil {
		return nil, err
	}
	// Index the new documents exactly like hidden.BuildLocal does:
	// generator terms normalized into the shared term space.
	tok := textindex.DefaultTokenizer()
	for _, d := range newDocs {
		terms := make([]string, 0, len(d.Terms))
		for _, t := range d.Terms {
			terms = append(terms, tok.Tokenize(t)...)
		}
		local.Index().AddTerms(d.ID, terms)
		local.StoreText(d.ID, d.Text())
	}

	// Phase 2: after the drift, stale model, fresh ground truth.
	postGolden, err := eval.BuildGolden(env.Testbed, env.Rel, env.Test)
	if err != nil {
		return nil, err
	}
	if err := record("after drift (stale model)", postGolden); err != nil {
		return nil, err
	}

	// Phase 3: online refinement — live probes on the drifted database
	// feed the error model (as Config.OnlineRefinement does during
	// normal operation). Refresh queries come from the training pool.
	refreshed := 0
	for _, q := range env.Train {
		if refreshed >= refreshProbes {
			break
		}
		actual, err := env.Rel.Probe(local, q.String())
		if err != nil {
			return nil, err
		}
		if err := env.Model.ObserveProbe(dbIdx, q.String(), q.NumTerms(), actual); err != nil {
			return nil, err
		}
		refreshed++
	}
	if err := record("after online refinement", postGolden); err != nil {
		return nil, err
	}
	return table, nil
}
